# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(ringdde_sim_table "/root/repo/build/tools/ringdde_sim" "--peers=128" "--items=5000" "--dist=zipf" "--probes=64")
set_tests_properties(ringdde_sim_table PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(ringdde_sim_json "/root/repo/build/tools/ringdde_sim" "--peers=128" "--items=5000" "--dist=mixture" "--probes=64" "--adaptive" "--json")
set_tests_properties(ringdde_sim_json PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(ringdde_sim_churn_loss "/root/repo/build/tools/ringdde_sim" "--peers=128" "--items=5000" "--dist=normal" "--probes=64" "--churn-session=300" "--duration=120" "--loss=0.1")
set_tests_properties(ringdde_sim_churn_loss PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
