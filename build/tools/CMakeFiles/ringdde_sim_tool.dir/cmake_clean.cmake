file(REMOVE_RECURSE
  "CMakeFiles/ringdde_sim_tool.dir/ringdde_sim.cc.o"
  "CMakeFiles/ringdde_sim_tool.dir/ringdde_sim.cc.o.d"
  "ringdde_sim"
  "ringdde_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ringdde_sim_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
