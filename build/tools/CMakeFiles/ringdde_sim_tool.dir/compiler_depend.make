# Empty compiler generated dependencies file for ringdde_sim_tool.
# This may be replaced when dependencies are built.
