file(REMOVE_RECURSE
  "CMakeFiles/load_balance_demo.dir/load_balance_demo.cpp.o"
  "CMakeFiles/load_balance_demo.dir/load_balance_demo.cpp.o.d"
  "load_balance_demo"
  "load_balance_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/load_balance_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
