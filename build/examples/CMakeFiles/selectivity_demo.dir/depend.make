# Empty dependencies file for selectivity_demo.
# This may be replaced when dependencies are built.
