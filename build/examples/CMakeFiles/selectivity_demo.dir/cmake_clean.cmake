file(REMOVE_RECURSE
  "CMakeFiles/selectivity_demo.dir/selectivity_demo.cpp.o"
  "CMakeFiles/selectivity_demo.dir/selectivity_demo.cpp.o.d"
  "selectivity_demo"
  "selectivity_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selectivity_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
