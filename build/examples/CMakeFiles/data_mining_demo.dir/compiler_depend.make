# Empty compiler generated dependencies file for data_mining_demo.
# This may be replaced when dependencies are built.
