file(REMOVE_RECURSE
  "CMakeFiles/data_mining_demo.dir/data_mining_demo.cpp.o"
  "CMakeFiles/data_mining_demo.dir/data_mining_demo.cpp.o.d"
  "data_mining_demo"
  "data_mining_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_mining_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
