file(REMOVE_RECURSE
  "CMakeFiles/e9_load_balance.dir/e9_load_balance.cc.o"
  "CMakeFiles/e9_load_balance.dir/e9_load_balance.cc.o.d"
  "e9_load_balance"
  "e9_load_balance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e9_load_balance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
