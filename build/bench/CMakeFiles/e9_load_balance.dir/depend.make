# Empty dependencies file for e9_load_balance.
# This may be replaced when dependencies are built.
