# Empty dependencies file for e5_churn.
# This may be replaced when dependencies are built.
