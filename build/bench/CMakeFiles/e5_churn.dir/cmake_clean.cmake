file(REMOVE_RECURSE
  "CMakeFiles/e5_churn.dir/e5_churn.cc.o"
  "CMakeFiles/e5_churn.dir/e5_churn.cc.o.d"
  "e5_churn"
  "e5_churn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e5_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
