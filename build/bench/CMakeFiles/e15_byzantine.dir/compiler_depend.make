# Empty compiler generated dependencies file for e15_byzantine.
# This may be replaced when dependencies are built.
