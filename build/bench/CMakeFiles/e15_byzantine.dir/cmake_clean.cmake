file(REMOVE_RECURSE
  "CMakeFiles/e15_byzantine.dir/e15_byzantine.cc.o"
  "CMakeFiles/e15_byzantine.dir/e15_byzantine.cc.o.d"
  "e15_byzantine"
  "e15_byzantine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e15_byzantine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
