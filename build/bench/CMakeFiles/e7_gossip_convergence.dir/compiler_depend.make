# Empty compiler generated dependencies file for e7_gossip_convergence.
# This may be replaced when dependencies are built.
