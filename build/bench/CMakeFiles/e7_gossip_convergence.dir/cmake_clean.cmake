file(REMOVE_RECURSE
  "CMakeFiles/e7_gossip_convergence.dir/e7_gossip_convergence.cc.o"
  "CMakeFiles/e7_gossip_convergence.dir/e7_gossip_convergence.cc.o.d"
  "e7_gossip_convergence"
  "e7_gossip_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e7_gossip_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
