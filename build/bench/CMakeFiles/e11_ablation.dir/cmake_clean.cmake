file(REMOVE_RECURSE
  "CMakeFiles/e11_ablation.dir/e11_ablation.cc.o"
  "CMakeFiles/e11_ablation.dir/e11_ablation.cc.o.d"
  "e11_ablation"
  "e11_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e11_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
