# Empty dependencies file for e11_ablation.
# This may be replaced when dependencies are built.
