# Empty compiler generated dependencies file for e3_accuracy_vs_skew.
# This may be replaced when dependencies are built.
