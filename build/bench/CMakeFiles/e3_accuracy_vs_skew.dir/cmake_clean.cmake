file(REMOVE_RECURSE
  "CMakeFiles/e3_accuracy_vs_skew.dir/e3_accuracy_vs_skew.cc.o"
  "CMakeFiles/e3_accuracy_vs_skew.dir/e3_accuracy_vs_skew.cc.o.d"
  "e3_accuracy_vs_skew"
  "e3_accuracy_vs_skew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e3_accuracy_vs_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
