file(REMOVE_RECURSE
  "CMakeFiles/e4_cost.dir/e4_cost.cc.o"
  "CMakeFiles/e4_cost.dir/e4_cost.cc.o.d"
  "e4_cost"
  "e4_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e4_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
