
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/e4_cost.cc" "bench/CMakeFiles/e4_cost.dir/e4_cost.cc.o" "gcc" "bench/CMakeFiles/e4_cost.dir/e4_cost.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/ringdde_bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ringdde_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ringdde_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ringdde_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ringdde_ring.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ringdde_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ringdde_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ringdde_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ringdde_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
