# Empty dependencies file for e4_cost.
# This may be replaced when dependencies are built.
