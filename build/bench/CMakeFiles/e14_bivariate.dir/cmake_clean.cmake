file(REMOVE_RECURSE
  "CMakeFiles/e14_bivariate.dir/e14_bivariate.cc.o"
  "CMakeFiles/e14_bivariate.dir/e14_bivariate.cc.o.d"
  "e14_bivariate"
  "e14_bivariate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e14_bivariate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
