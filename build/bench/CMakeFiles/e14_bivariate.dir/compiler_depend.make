# Empty compiler generated dependencies file for e14_bivariate.
# This may be replaced when dependencies are built.
