# Empty dependencies file for e6_data_volume.
# This may be replaced when dependencies are built.
