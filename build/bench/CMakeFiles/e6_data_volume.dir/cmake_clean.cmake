file(REMOVE_RECURSE
  "CMakeFiles/e6_data_volume.dir/e6_data_volume.cc.o"
  "CMakeFiles/e6_data_volume.dir/e6_data_volume.cc.o.d"
  "e6_data_volume"
  "e6_data_volume.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e6_data_volume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
