# Empty dependencies file for e8_selectivity.
# This may be replaced when dependencies are built.
