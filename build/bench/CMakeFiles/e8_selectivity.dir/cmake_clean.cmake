file(REMOVE_RECURSE
  "CMakeFiles/e8_selectivity.dir/e8_selectivity.cc.o"
  "CMakeFiles/e8_selectivity.dir/e8_selectivity.cc.o.d"
  "e8_selectivity"
  "e8_selectivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e8_selectivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
