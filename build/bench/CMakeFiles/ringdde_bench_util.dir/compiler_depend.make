# Empty compiler generated dependencies file for ringdde_bench_util.
# This may be replaced when dependencies are built.
