file(REMOVE_RECURSE
  "libringdde_bench_util.a"
)
