file(REMOVE_RECURSE
  "CMakeFiles/ringdde_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/ringdde_bench_util.dir/bench_util.cc.o.d"
  "libringdde_bench_util.a"
  "libringdde_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ringdde_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
