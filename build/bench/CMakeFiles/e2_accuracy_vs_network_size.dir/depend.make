# Empty dependencies file for e2_accuracy_vs_network_size.
# This may be replaced when dependencies are built.
