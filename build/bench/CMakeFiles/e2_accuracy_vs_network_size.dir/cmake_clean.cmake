file(REMOVE_RECURSE
  "CMakeFiles/e2_accuracy_vs_network_size.dir/e2_accuracy_vs_network_size.cc.o"
  "CMakeFiles/e2_accuracy_vs_network_size.dir/e2_accuracy_vs_network_size.cc.o.d"
  "e2_accuracy_vs_network_size"
  "e2_accuracy_vs_network_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e2_accuracy_vs_network_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
