file(REMOVE_RECURSE
  "CMakeFiles/e12_replication.dir/e12_replication.cc.o"
  "CMakeFiles/e12_replication.dir/e12_replication.cc.o.d"
  "e12_replication"
  "e12_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e12_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
