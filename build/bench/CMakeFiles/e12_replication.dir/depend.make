# Empty dependencies file for e12_replication.
# This may be replaced when dependencies are built.
