file(REMOVE_RECURSE
  "CMakeFiles/e13_adaptive.dir/e13_adaptive.cc.o"
  "CMakeFiles/e13_adaptive.dir/e13_adaptive.cc.o.d"
  "e13_adaptive"
  "e13_adaptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e13_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
