# Empty dependencies file for e13_adaptive.
# This may be replaced when dependencies are built.
