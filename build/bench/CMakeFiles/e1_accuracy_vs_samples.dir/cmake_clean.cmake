file(REMOVE_RECURSE
  "CMakeFiles/e1_accuracy_vs_samples.dir/e1_accuracy_vs_samples.cc.o"
  "CMakeFiles/e1_accuracy_vs_samples.dir/e1_accuracy_vs_samples.cc.o.d"
  "e1_accuracy_vs_samples"
  "e1_accuracy_vs_samples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e1_accuracy_vs_samples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
