# Empty compiler generated dependencies file for e1_accuracy_vs_samples.
# This may be replaced when dependencies are built.
