# Empty dependencies file for ringdde_core.
# This may be replaced when dependencies are built.
