file(REMOVE_RECURSE
  "CMakeFiles/ringdde_core.dir/core/bivariate.cc.o"
  "CMakeFiles/ringdde_core.dir/core/bivariate.cc.o.d"
  "CMakeFiles/ringdde_core.dir/core/density_estimator.cc.o"
  "CMakeFiles/ringdde_core.dir/core/density_estimator.cc.o.d"
  "CMakeFiles/ringdde_core.dir/core/dissemination.cc.o"
  "CMakeFiles/ringdde_core.dir/core/dissemination.cc.o.d"
  "CMakeFiles/ringdde_core.dir/core/global_cdf.cc.o"
  "CMakeFiles/ringdde_core.dir/core/global_cdf.cc.o.d"
  "CMakeFiles/ringdde_core.dir/core/inversion_sampler.cc.o"
  "CMakeFiles/ringdde_core.dir/core/inversion_sampler.cc.o.d"
  "CMakeFiles/ringdde_core.dir/core/local_summary.cc.o"
  "CMakeFiles/ringdde_core.dir/core/local_summary.cc.o.d"
  "CMakeFiles/ringdde_core.dir/core/maintenance.cc.o"
  "CMakeFiles/ringdde_core.dir/core/maintenance.cc.o.d"
  "CMakeFiles/ringdde_core.dir/core/probe.cc.o"
  "CMakeFiles/ringdde_core.dir/core/probe.cc.o.d"
  "CMakeFiles/ringdde_core.dir/core/theory.cc.o"
  "CMakeFiles/ringdde_core.dir/core/theory.cc.o.d"
  "CMakeFiles/ringdde_core.dir/core/wire.cc.o"
  "CMakeFiles/ringdde_core.dir/core/wire.cc.o.d"
  "CMakeFiles/ringdde_core.dir/core/workload_stream.cc.o"
  "CMakeFiles/ringdde_core.dir/core/workload_stream.cc.o.d"
  "libringdde_core.a"
  "libringdde_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ringdde_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
