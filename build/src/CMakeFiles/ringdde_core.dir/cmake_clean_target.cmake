file(REMOVE_RECURSE
  "libringdde_core.a"
)
