
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bivariate.cc" "src/CMakeFiles/ringdde_core.dir/core/bivariate.cc.o" "gcc" "src/CMakeFiles/ringdde_core.dir/core/bivariate.cc.o.d"
  "/root/repo/src/core/density_estimator.cc" "src/CMakeFiles/ringdde_core.dir/core/density_estimator.cc.o" "gcc" "src/CMakeFiles/ringdde_core.dir/core/density_estimator.cc.o.d"
  "/root/repo/src/core/dissemination.cc" "src/CMakeFiles/ringdde_core.dir/core/dissemination.cc.o" "gcc" "src/CMakeFiles/ringdde_core.dir/core/dissemination.cc.o.d"
  "/root/repo/src/core/global_cdf.cc" "src/CMakeFiles/ringdde_core.dir/core/global_cdf.cc.o" "gcc" "src/CMakeFiles/ringdde_core.dir/core/global_cdf.cc.o.d"
  "/root/repo/src/core/inversion_sampler.cc" "src/CMakeFiles/ringdde_core.dir/core/inversion_sampler.cc.o" "gcc" "src/CMakeFiles/ringdde_core.dir/core/inversion_sampler.cc.o.d"
  "/root/repo/src/core/local_summary.cc" "src/CMakeFiles/ringdde_core.dir/core/local_summary.cc.o" "gcc" "src/CMakeFiles/ringdde_core.dir/core/local_summary.cc.o.d"
  "/root/repo/src/core/maintenance.cc" "src/CMakeFiles/ringdde_core.dir/core/maintenance.cc.o" "gcc" "src/CMakeFiles/ringdde_core.dir/core/maintenance.cc.o.d"
  "/root/repo/src/core/probe.cc" "src/CMakeFiles/ringdde_core.dir/core/probe.cc.o" "gcc" "src/CMakeFiles/ringdde_core.dir/core/probe.cc.o.d"
  "/root/repo/src/core/theory.cc" "src/CMakeFiles/ringdde_core.dir/core/theory.cc.o" "gcc" "src/CMakeFiles/ringdde_core.dir/core/theory.cc.o.d"
  "/root/repo/src/core/wire.cc" "src/CMakeFiles/ringdde_core.dir/core/wire.cc.o" "gcc" "src/CMakeFiles/ringdde_core.dir/core/wire.cc.o.d"
  "/root/repo/src/core/workload_stream.cc" "src/CMakeFiles/ringdde_core.dir/core/workload_stream.cc.o" "gcc" "src/CMakeFiles/ringdde_core.dir/core/workload_stream.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ringdde_ring.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ringdde_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ringdde_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ringdde_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ringdde_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
