# Empty dependencies file for ringdde_stats.
# This may be replaced when dependencies are built.
