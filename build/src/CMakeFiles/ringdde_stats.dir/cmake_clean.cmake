file(REMOVE_RECURSE
  "CMakeFiles/ringdde_stats.dir/stats/bounds.cc.o"
  "CMakeFiles/ringdde_stats.dir/stats/bounds.cc.o.d"
  "CMakeFiles/ringdde_stats.dir/stats/ecdf.cc.o"
  "CMakeFiles/ringdde_stats.dir/stats/ecdf.cc.o.d"
  "CMakeFiles/ringdde_stats.dir/stats/gk_sketch.cc.o"
  "CMakeFiles/ringdde_stats.dir/stats/gk_sketch.cc.o.d"
  "CMakeFiles/ringdde_stats.dir/stats/histogram.cc.o"
  "CMakeFiles/ringdde_stats.dir/stats/histogram.cc.o.d"
  "CMakeFiles/ringdde_stats.dir/stats/kde.cc.o"
  "CMakeFiles/ringdde_stats.dir/stats/kde.cc.o.d"
  "CMakeFiles/ringdde_stats.dir/stats/metrics.cc.o"
  "CMakeFiles/ringdde_stats.dir/stats/metrics.cc.o.d"
  "CMakeFiles/ringdde_stats.dir/stats/piecewise_cdf.cc.o"
  "CMakeFiles/ringdde_stats.dir/stats/piecewise_cdf.cc.o.d"
  "libringdde_stats.a"
  "libringdde_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ringdde_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
