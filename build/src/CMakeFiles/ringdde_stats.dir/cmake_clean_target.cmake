file(REMOVE_RECURSE
  "libringdde_stats.a"
)
