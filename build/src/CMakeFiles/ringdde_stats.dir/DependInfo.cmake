
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/bounds.cc" "src/CMakeFiles/ringdde_stats.dir/stats/bounds.cc.o" "gcc" "src/CMakeFiles/ringdde_stats.dir/stats/bounds.cc.o.d"
  "/root/repo/src/stats/ecdf.cc" "src/CMakeFiles/ringdde_stats.dir/stats/ecdf.cc.o" "gcc" "src/CMakeFiles/ringdde_stats.dir/stats/ecdf.cc.o.d"
  "/root/repo/src/stats/gk_sketch.cc" "src/CMakeFiles/ringdde_stats.dir/stats/gk_sketch.cc.o" "gcc" "src/CMakeFiles/ringdde_stats.dir/stats/gk_sketch.cc.o.d"
  "/root/repo/src/stats/histogram.cc" "src/CMakeFiles/ringdde_stats.dir/stats/histogram.cc.o" "gcc" "src/CMakeFiles/ringdde_stats.dir/stats/histogram.cc.o.d"
  "/root/repo/src/stats/kde.cc" "src/CMakeFiles/ringdde_stats.dir/stats/kde.cc.o" "gcc" "src/CMakeFiles/ringdde_stats.dir/stats/kde.cc.o.d"
  "/root/repo/src/stats/metrics.cc" "src/CMakeFiles/ringdde_stats.dir/stats/metrics.cc.o" "gcc" "src/CMakeFiles/ringdde_stats.dir/stats/metrics.cc.o.d"
  "/root/repo/src/stats/piecewise_cdf.cc" "src/CMakeFiles/ringdde_stats.dir/stats/piecewise_cdf.cc.o" "gcc" "src/CMakeFiles/ringdde_stats.dir/stats/piecewise_cdf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ringdde_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ringdde_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
