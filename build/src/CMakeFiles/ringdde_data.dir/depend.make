# Empty dependencies file for ringdde_data.
# This may be replaced when dependencies are built.
