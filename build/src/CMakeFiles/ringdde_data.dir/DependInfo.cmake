
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/dataset.cc" "src/CMakeFiles/ringdde_data.dir/data/dataset.cc.o" "gcc" "src/CMakeFiles/ringdde_data.dir/data/dataset.cc.o.d"
  "/root/repo/src/data/distribution.cc" "src/CMakeFiles/ringdde_data.dir/data/distribution.cc.o" "gcc" "src/CMakeFiles/ringdde_data.dir/data/distribution.cc.o.d"
  "/root/repo/src/data/placement.cc" "src/CMakeFiles/ringdde_data.dir/data/placement.cc.o" "gcc" "src/CMakeFiles/ringdde_data.dir/data/placement.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ringdde_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
