file(REMOVE_RECURSE
  "libringdde_data.a"
)
