file(REMOVE_RECURSE
  "CMakeFiles/ringdde_data.dir/data/dataset.cc.o"
  "CMakeFiles/ringdde_data.dir/data/dataset.cc.o.d"
  "CMakeFiles/ringdde_data.dir/data/distribution.cc.o"
  "CMakeFiles/ringdde_data.dir/data/distribution.cc.o.d"
  "CMakeFiles/ringdde_data.dir/data/placement.cc.o"
  "CMakeFiles/ringdde_data.dir/data/placement.cc.o.d"
  "libringdde_data.a"
  "libringdde_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ringdde_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
