
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/gossip_histogram.cc" "src/CMakeFiles/ringdde_baselines.dir/baselines/gossip_histogram.cc.o" "gcc" "src/CMakeFiles/ringdde_baselines.dir/baselines/gossip_histogram.cc.o.d"
  "/root/repo/src/baselines/parametric.cc" "src/CMakeFiles/ringdde_baselines.dir/baselines/parametric.cc.o" "gcc" "src/CMakeFiles/ringdde_baselines.dir/baselines/parametric.cc.o.d"
  "/root/repo/src/baselines/random_walk_sampler.cc" "src/CMakeFiles/ringdde_baselines.dir/baselines/random_walk_sampler.cc.o" "gcc" "src/CMakeFiles/ringdde_baselines.dir/baselines/random_walk_sampler.cc.o.d"
  "/root/repo/src/baselines/tree_aggregation.cc" "src/CMakeFiles/ringdde_baselines.dir/baselines/tree_aggregation.cc.o" "gcc" "src/CMakeFiles/ringdde_baselines.dir/baselines/tree_aggregation.cc.o.d"
  "/root/repo/src/baselines/uniform_peer_sampler.cc" "src/CMakeFiles/ringdde_baselines.dir/baselines/uniform_peer_sampler.cc.o" "gcc" "src/CMakeFiles/ringdde_baselines.dir/baselines/uniform_peer_sampler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ringdde_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ringdde_ring.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ringdde_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ringdde_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ringdde_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ringdde_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
