file(REMOVE_RECURSE
  "CMakeFiles/ringdde_baselines.dir/baselines/gossip_histogram.cc.o"
  "CMakeFiles/ringdde_baselines.dir/baselines/gossip_histogram.cc.o.d"
  "CMakeFiles/ringdde_baselines.dir/baselines/parametric.cc.o"
  "CMakeFiles/ringdde_baselines.dir/baselines/parametric.cc.o.d"
  "CMakeFiles/ringdde_baselines.dir/baselines/random_walk_sampler.cc.o"
  "CMakeFiles/ringdde_baselines.dir/baselines/random_walk_sampler.cc.o.d"
  "CMakeFiles/ringdde_baselines.dir/baselines/tree_aggregation.cc.o"
  "CMakeFiles/ringdde_baselines.dir/baselines/tree_aggregation.cc.o.d"
  "CMakeFiles/ringdde_baselines.dir/baselines/uniform_peer_sampler.cc.o"
  "CMakeFiles/ringdde_baselines.dir/baselines/uniform_peer_sampler.cc.o.d"
  "libringdde_baselines.a"
  "libringdde_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ringdde_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
