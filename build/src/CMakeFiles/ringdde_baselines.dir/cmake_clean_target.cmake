file(REMOVE_RECURSE
  "libringdde_baselines.a"
)
