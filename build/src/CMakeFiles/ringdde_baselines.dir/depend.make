# Empty dependencies file for ringdde_baselines.
# This may be replaced when dependencies are built.
