
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ring/chord_ring.cc" "src/CMakeFiles/ringdde_ring.dir/ring/chord_ring.cc.o" "gcc" "src/CMakeFiles/ringdde_ring.dir/ring/chord_ring.cc.o.d"
  "/root/repo/src/ring/churn.cc" "src/CMakeFiles/ringdde_ring.dir/ring/churn.cc.o" "gcc" "src/CMakeFiles/ringdde_ring.dir/ring/churn.cc.o.d"
  "/root/repo/src/ring/finger_table.cc" "src/CMakeFiles/ringdde_ring.dir/ring/finger_table.cc.o" "gcc" "src/CMakeFiles/ringdde_ring.dir/ring/finger_table.cc.o.d"
  "/root/repo/src/ring/node.cc" "src/CMakeFiles/ringdde_ring.dir/ring/node.cc.o" "gcc" "src/CMakeFiles/ringdde_ring.dir/ring/node.cc.o.d"
  "/root/repo/src/ring/replication.cc" "src/CMakeFiles/ringdde_ring.dir/ring/replication.cc.o" "gcc" "src/CMakeFiles/ringdde_ring.dir/ring/replication.cc.o.d"
  "/root/repo/src/ring/ring_stats.cc" "src/CMakeFiles/ringdde_ring.dir/ring/ring_stats.cc.o" "gcc" "src/CMakeFiles/ringdde_ring.dir/ring/ring_stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ringdde_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ringdde_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
