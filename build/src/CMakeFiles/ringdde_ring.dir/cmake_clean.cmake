file(REMOVE_RECURSE
  "CMakeFiles/ringdde_ring.dir/ring/chord_ring.cc.o"
  "CMakeFiles/ringdde_ring.dir/ring/chord_ring.cc.o.d"
  "CMakeFiles/ringdde_ring.dir/ring/churn.cc.o"
  "CMakeFiles/ringdde_ring.dir/ring/churn.cc.o.d"
  "CMakeFiles/ringdde_ring.dir/ring/finger_table.cc.o"
  "CMakeFiles/ringdde_ring.dir/ring/finger_table.cc.o.d"
  "CMakeFiles/ringdde_ring.dir/ring/node.cc.o"
  "CMakeFiles/ringdde_ring.dir/ring/node.cc.o.d"
  "CMakeFiles/ringdde_ring.dir/ring/replication.cc.o"
  "CMakeFiles/ringdde_ring.dir/ring/replication.cc.o.d"
  "CMakeFiles/ringdde_ring.dir/ring/ring_stats.cc.o"
  "CMakeFiles/ringdde_ring.dir/ring/ring_stats.cc.o.d"
  "libringdde_ring.a"
  "libringdde_ring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ringdde_ring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
