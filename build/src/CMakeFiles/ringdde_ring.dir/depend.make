# Empty dependencies file for ringdde_ring.
# This may be replaced when dependencies are built.
