file(REMOVE_RECURSE
  "libringdde_ring.a"
)
