
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/counters.cc" "src/CMakeFiles/ringdde_sim.dir/sim/counters.cc.o" "gcc" "src/CMakeFiles/ringdde_sim.dir/sim/counters.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/CMakeFiles/ringdde_sim.dir/sim/event_queue.cc.o" "gcc" "src/CMakeFiles/ringdde_sim.dir/sim/event_queue.cc.o.d"
  "/root/repo/src/sim/latency_model.cc" "src/CMakeFiles/ringdde_sim.dir/sim/latency_model.cc.o" "gcc" "src/CMakeFiles/ringdde_sim.dir/sim/latency_model.cc.o.d"
  "/root/repo/src/sim/network.cc" "src/CMakeFiles/ringdde_sim.dir/sim/network.cc.o" "gcc" "src/CMakeFiles/ringdde_sim.dir/sim/network.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ringdde_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
