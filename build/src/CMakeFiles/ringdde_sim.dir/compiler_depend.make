# Empty compiler generated dependencies file for ringdde_sim.
# This may be replaced when dependencies are built.
