file(REMOVE_RECURSE
  "CMakeFiles/ringdde_sim.dir/sim/counters.cc.o"
  "CMakeFiles/ringdde_sim.dir/sim/counters.cc.o.d"
  "CMakeFiles/ringdde_sim.dir/sim/event_queue.cc.o"
  "CMakeFiles/ringdde_sim.dir/sim/event_queue.cc.o.d"
  "CMakeFiles/ringdde_sim.dir/sim/latency_model.cc.o"
  "CMakeFiles/ringdde_sim.dir/sim/latency_model.cc.o.d"
  "CMakeFiles/ringdde_sim.dir/sim/network.cc.o"
  "CMakeFiles/ringdde_sim.dir/sim/network.cc.o.d"
  "libringdde_sim.a"
  "libringdde_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ringdde_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
