file(REMOVE_RECURSE
  "libringdde_sim.a"
)
