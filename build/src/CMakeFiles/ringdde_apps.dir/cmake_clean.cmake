file(REMOVE_RECURSE
  "CMakeFiles/ringdde_apps.dir/apps/density_mining.cc.o"
  "CMakeFiles/ringdde_apps.dir/apps/density_mining.cc.o.d"
  "CMakeFiles/ringdde_apps.dir/apps/equidepth_partitioner.cc.o"
  "CMakeFiles/ringdde_apps.dir/apps/equidepth_partitioner.cc.o.d"
  "CMakeFiles/ringdde_apps.dir/apps/load_balance.cc.o"
  "CMakeFiles/ringdde_apps.dir/apps/load_balance.cc.o.d"
  "CMakeFiles/ringdde_apps.dir/apps/selectivity.cc.o"
  "CMakeFiles/ringdde_apps.dir/apps/selectivity.cc.o.d"
  "libringdde_apps.a"
  "libringdde_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ringdde_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
