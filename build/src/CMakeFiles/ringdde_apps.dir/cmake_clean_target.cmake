file(REMOVE_RECURSE
  "libringdde_apps.a"
)
