# Empty compiler generated dependencies file for ringdde_apps.
# This may be replaced when dependencies are built.
