file(REMOVE_RECURSE
  "libringdde_common.a"
)
