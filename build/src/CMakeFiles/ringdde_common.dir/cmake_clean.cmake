file(REMOVE_RECURSE
  "CMakeFiles/ringdde_common.dir/common/codec.cc.o"
  "CMakeFiles/ringdde_common.dir/common/codec.cc.o.d"
  "CMakeFiles/ringdde_common.dir/common/id.cc.o"
  "CMakeFiles/ringdde_common.dir/common/id.cc.o.d"
  "CMakeFiles/ringdde_common.dir/common/logging.cc.o"
  "CMakeFiles/ringdde_common.dir/common/logging.cc.o.d"
  "CMakeFiles/ringdde_common.dir/common/math_util.cc.o"
  "CMakeFiles/ringdde_common.dir/common/math_util.cc.o.d"
  "CMakeFiles/ringdde_common.dir/common/rng.cc.o"
  "CMakeFiles/ringdde_common.dir/common/rng.cc.o.d"
  "CMakeFiles/ringdde_common.dir/common/status.cc.o"
  "CMakeFiles/ringdde_common.dir/common/status.cc.o.d"
  "libringdde_common.a"
  "libringdde_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ringdde_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
