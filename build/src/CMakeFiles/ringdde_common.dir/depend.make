# Empty dependencies file for ringdde_common.
# This may be replaced when dependencies are built.
