
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/adaptive_test.cc" "tests/CMakeFiles/ringdde_tests.dir/adaptive_test.cc.o" "gcc" "tests/CMakeFiles/ringdde_tests.dir/adaptive_test.cc.o.d"
  "/root/repo/tests/apps_test.cc" "tests/CMakeFiles/ringdde_tests.dir/apps_test.cc.o" "gcc" "tests/CMakeFiles/ringdde_tests.dir/apps_test.cc.o.d"
  "/root/repo/tests/baselines_test.cc" "tests/CMakeFiles/ringdde_tests.dir/baselines_test.cc.o" "gcc" "tests/CMakeFiles/ringdde_tests.dir/baselines_test.cc.o.d"
  "/root/repo/tests/bivariate_test.cc" "tests/CMakeFiles/ringdde_tests.dir/bivariate_test.cc.o" "gcc" "tests/CMakeFiles/ringdde_tests.dir/bivariate_test.cc.o.d"
  "/root/repo/tests/bounds_test.cc" "tests/CMakeFiles/ringdde_tests.dir/bounds_test.cc.o" "gcc" "tests/CMakeFiles/ringdde_tests.dir/bounds_test.cc.o.d"
  "/root/repo/tests/byzantine_test.cc" "tests/CMakeFiles/ringdde_tests.dir/byzantine_test.cc.o" "gcc" "tests/CMakeFiles/ringdde_tests.dir/byzantine_test.cc.o.d"
  "/root/repo/tests/churn_test.cc" "tests/CMakeFiles/ringdde_tests.dir/churn_test.cc.o" "gcc" "tests/CMakeFiles/ringdde_tests.dir/churn_test.cc.o.d"
  "/root/repo/tests/codec_test.cc" "tests/CMakeFiles/ringdde_tests.dir/codec_test.cc.o" "gcc" "tests/CMakeFiles/ringdde_tests.dir/codec_test.cc.o.d"
  "/root/repo/tests/dataset_placement_test.cc" "tests/CMakeFiles/ringdde_tests.dir/dataset_placement_test.cc.o" "gcc" "tests/CMakeFiles/ringdde_tests.dir/dataset_placement_test.cc.o.d"
  "/root/repo/tests/density_estimator_test.cc" "tests/CMakeFiles/ringdde_tests.dir/density_estimator_test.cc.o" "gcc" "tests/CMakeFiles/ringdde_tests.dir/density_estimator_test.cc.o.d"
  "/root/repo/tests/density_mining_test.cc" "tests/CMakeFiles/ringdde_tests.dir/density_mining_test.cc.o" "gcc" "tests/CMakeFiles/ringdde_tests.dir/density_mining_test.cc.o.d"
  "/root/repo/tests/dissemination_test.cc" "tests/CMakeFiles/ringdde_tests.dir/dissemination_test.cc.o" "gcc" "tests/CMakeFiles/ringdde_tests.dir/dissemination_test.cc.o.d"
  "/root/repo/tests/distribution_test.cc" "tests/CMakeFiles/ringdde_tests.dir/distribution_test.cc.o" "gcc" "tests/CMakeFiles/ringdde_tests.dir/distribution_test.cc.o.d"
  "/root/repo/tests/ecdf_test.cc" "tests/CMakeFiles/ringdde_tests.dir/ecdf_test.cc.o" "gcc" "tests/CMakeFiles/ringdde_tests.dir/ecdf_test.cc.o.d"
  "/root/repo/tests/edge_cases_test.cc" "tests/CMakeFiles/ringdde_tests.dir/edge_cases_test.cc.o" "gcc" "tests/CMakeFiles/ringdde_tests.dir/edge_cases_test.cc.o.d"
  "/root/repo/tests/event_queue_test.cc" "tests/CMakeFiles/ringdde_tests.dir/event_queue_test.cc.o" "gcc" "tests/CMakeFiles/ringdde_tests.dir/event_queue_test.cc.o.d"
  "/root/repo/tests/gk_sketch_test.cc" "tests/CMakeFiles/ringdde_tests.dir/gk_sketch_test.cc.o" "gcc" "tests/CMakeFiles/ringdde_tests.dir/gk_sketch_test.cc.o.d"
  "/root/repo/tests/global_cdf_test.cc" "tests/CMakeFiles/ringdde_tests.dir/global_cdf_test.cc.o" "gcc" "tests/CMakeFiles/ringdde_tests.dir/global_cdf_test.cc.o.d"
  "/root/repo/tests/histogram_test.cc" "tests/CMakeFiles/ringdde_tests.dir/histogram_test.cc.o" "gcc" "tests/CMakeFiles/ringdde_tests.dir/histogram_test.cc.o.d"
  "/root/repo/tests/id_test.cc" "tests/CMakeFiles/ringdde_tests.dir/id_test.cc.o" "gcc" "tests/CMakeFiles/ringdde_tests.dir/id_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/ringdde_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/ringdde_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/inversion_sampler_test.cc" "tests/CMakeFiles/ringdde_tests.dir/inversion_sampler_test.cc.o" "gcc" "tests/CMakeFiles/ringdde_tests.dir/inversion_sampler_test.cc.o.d"
  "/root/repo/tests/kde_test.cc" "tests/CMakeFiles/ringdde_tests.dir/kde_test.cc.o" "gcc" "tests/CMakeFiles/ringdde_tests.dir/kde_test.cc.o.d"
  "/root/repo/tests/local_summary_test.cc" "tests/CMakeFiles/ringdde_tests.dir/local_summary_test.cc.o" "gcc" "tests/CMakeFiles/ringdde_tests.dir/local_summary_test.cc.o.d"
  "/root/repo/tests/loss_test.cc" "tests/CMakeFiles/ringdde_tests.dir/loss_test.cc.o" "gcc" "tests/CMakeFiles/ringdde_tests.dir/loss_test.cc.o.d"
  "/root/repo/tests/maintenance_test.cc" "tests/CMakeFiles/ringdde_tests.dir/maintenance_test.cc.o" "gcc" "tests/CMakeFiles/ringdde_tests.dir/maintenance_test.cc.o.d"
  "/root/repo/tests/math_util_test.cc" "tests/CMakeFiles/ringdde_tests.dir/math_util_test.cc.o" "gcc" "tests/CMakeFiles/ringdde_tests.dir/math_util_test.cc.o.d"
  "/root/repo/tests/metrics_test.cc" "tests/CMakeFiles/ringdde_tests.dir/metrics_test.cc.o" "gcc" "tests/CMakeFiles/ringdde_tests.dir/metrics_test.cc.o.d"
  "/root/repo/tests/network_test.cc" "tests/CMakeFiles/ringdde_tests.dir/network_test.cc.o" "gcc" "tests/CMakeFiles/ringdde_tests.dir/network_test.cc.o.d"
  "/root/repo/tests/piecewise_cdf_test.cc" "tests/CMakeFiles/ringdde_tests.dir/piecewise_cdf_test.cc.o" "gcc" "tests/CMakeFiles/ringdde_tests.dir/piecewise_cdf_test.cc.o.d"
  "/root/repo/tests/probe_test.cc" "tests/CMakeFiles/ringdde_tests.dir/probe_test.cc.o" "gcc" "tests/CMakeFiles/ringdde_tests.dir/probe_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/ringdde_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/ringdde_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/replication_test.cc" "tests/CMakeFiles/ringdde_tests.dir/replication_test.cc.o" "gcc" "tests/CMakeFiles/ringdde_tests.dir/replication_test.cc.o.d"
  "/root/repo/tests/resilience_property_test.cc" "tests/CMakeFiles/ringdde_tests.dir/resilience_property_test.cc.o" "gcc" "tests/CMakeFiles/ringdde_tests.dir/resilience_property_test.cc.o.d"
  "/root/repo/tests/ring_stats_test.cc" "tests/CMakeFiles/ringdde_tests.dir/ring_stats_test.cc.o" "gcc" "tests/CMakeFiles/ringdde_tests.dir/ring_stats_test.cc.o.d"
  "/root/repo/tests/ring_test.cc" "tests/CMakeFiles/ringdde_tests.dir/ring_test.cc.o" "gcc" "tests/CMakeFiles/ringdde_tests.dir/ring_test.cc.o.d"
  "/root/repo/tests/rng_test.cc" "tests/CMakeFiles/ringdde_tests.dir/rng_test.cc.o" "gcc" "tests/CMakeFiles/ringdde_tests.dir/rng_test.cc.o.d"
  "/root/repo/tests/status_test.cc" "tests/CMakeFiles/ringdde_tests.dir/status_test.cc.o" "gcc" "tests/CMakeFiles/ringdde_tests.dir/status_test.cc.o.d"
  "/root/repo/tests/theory_test.cc" "tests/CMakeFiles/ringdde_tests.dir/theory_test.cc.o" "gcc" "tests/CMakeFiles/ringdde_tests.dir/theory_test.cc.o.d"
  "/root/repo/tests/wire_test.cc" "tests/CMakeFiles/ringdde_tests.dir/wire_test.cc.o" "gcc" "tests/CMakeFiles/ringdde_tests.dir/wire_test.cc.o.d"
  "/root/repo/tests/workload_stream_test.cc" "tests/CMakeFiles/ringdde_tests.dir/workload_stream_test.cc.o" "gcc" "tests/CMakeFiles/ringdde_tests.dir/workload_stream_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ringdde_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ringdde_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ringdde_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ringdde_ring.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ringdde_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ringdde_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ringdde_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ringdde_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
