# Empty dependencies file for ringdde_tests.
# This may be replaced when dependencies are built.
