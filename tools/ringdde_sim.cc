// ringdde_sim — command-line scenario driver.
//
// Builds a ring, loads a workload, optionally churns it, runs the
// estimator (fixed-budget or adaptive), and reports accuracy, cost, and
// application-level results, as a table or as JSON for scripting.
//
//   ringdde_sim --peers=4096 --items=200000 --dist=zipf --zipf-theta=0.9
//               --probes=256 --churn-session=600 --duration=300 --json
//   (one line; wrapped here for width)
//
// Run with --help for the full flag list.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "apps/density_mining.h"
#include "apps/load_balance.h"
#include "apps/selectivity.h"
#include "core/density_estimator.h"
#include "data/dataset.h"
#include "data/distribution.h"
#include "ring/churn.h"
#include "ring/chord_ring.h"
#include "ring/ring_stats.h"
#include "sim/network.h"
#include "stats/metrics.h"

namespace {

using namespace ringdde;

struct Flags {
  size_t peers = 1024;
  size_t items = 100000;
  std::string dist = "normal";
  double zipf_theta = 0.9;
  double normal_sigma = 0.15;
  size_t probes = 256;
  bool adaptive = false;
  double churn_session = 0.0;  // 0 = static network
  double duration = 300.0;     // churn warm-up, virtual seconds
  double loss = 0.0;
  uint64_t seed = 42;
  bool json = false;
  bool help = false;
};

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    *out = arg + len + 1;
    return true;
  }
  return false;
}

Flags ParseFlags(int argc, char** argv) {
  Flags f;
  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (ParseFlag(argv[i], "--peers", &v)) {
      f.peers = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--items", &v)) {
      f.items = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--dist", &v)) {
      f.dist = v;
    } else if (ParseFlag(argv[i], "--zipf-theta", &v)) {
      f.zipf_theta = std::strtod(v.c_str(), nullptr);
    } else if (ParseFlag(argv[i], "--normal-sigma", &v)) {
      f.normal_sigma = std::strtod(v.c_str(), nullptr);
    } else if (ParseFlag(argv[i], "--probes", &v)) {
      f.probes = std::strtoull(v.c_str(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--adaptive") == 0) {
      f.adaptive = true;
    } else if (ParseFlag(argv[i], "--churn-session", &v)) {
      f.churn_session = std::strtod(v.c_str(), nullptr);
    } else if (ParseFlag(argv[i], "--duration", &v)) {
      f.duration = std::strtod(v.c_str(), nullptr);
    } else if (ParseFlag(argv[i], "--loss", &v)) {
      f.loss = std::strtod(v.c_str(), nullptr);
    } else if (ParseFlag(argv[i], "--seed", &v)) {
      f.seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--json") == 0) {
      f.json = true;
    } else if (std::strcmp(argv[i], "--help") == 0 ||
               std::strcmp(argv[i], "-h") == 0) {
      f.help = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s (try --help)\n", argv[i]);
      std::exit(2);
    }
  }
  return f;
}

void PrintHelp() {
  std::printf(
      "ringdde_sim — run one density-estimation scenario\n\n"
      "  --peers=N           ring size (default 1024)\n"
      "  --items=N           dataset size (default 100000)\n"
      "  --dist=KIND         uniform|normal|zipf|exp|mixture (default "
      "normal)\n"
      "  --zipf-theta=T      Zipf skew (default 0.9)\n"
      "  --normal-sigma=S    Normal stddev (default 0.15)\n"
      "  --probes=M          probe budget (default 256)\n"
      "  --adaptive          self-tuning budget instead of fixed M\n"
      "  --churn-session=S   mean peer session seconds; 0 = static\n"
      "  --duration=S        churn warm-up before estimating (default "
      "300)\n"
      "  --loss=P            per-message loss probability (default 0)\n"
      "  --seed=N            master seed (default 42)\n"
      "  --json              machine-readable output\n");
}

std::unique_ptr<Distribution> MakeDist(const Flags& f) {
  if (f.dist == "uniform") return std::make_unique<UniformDistribution>();
  if (f.dist == "normal") {
    return std::make_unique<TruncatedNormalDistribution>(0.5,
                                                         f.normal_sigma);
  }
  if (f.dist == "zipf") {
    return std::make_unique<ZipfDistribution>(1000, f.zipf_theta);
  }
  if (f.dist == "exp") {
    return std::make_unique<TruncatedExponentialDistribution>(5.0);
  }
  if (f.dist == "mixture") {
    return std::make_unique<GaussianMixtureDistribution>(
        std::vector<GaussianMixtureDistribution::Component>{
            {0.4, 0.2, 0.05}, {0.35, 0.55, 0.08}, {0.25, 0.85, 0.04}},
        "Mixture3");
  }
  std::fprintf(stderr, "unknown --dist=%s\n", f.dist.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = ParseFlags(argc, argv);
  if (flags.help) {
    PrintHelp();
    return 0;
  }

  NetworkOptions nopts;
  nopts.loss_probability = flags.loss;
  nopts.seed = flags.seed ^ 0xFEED;
  Network network(nopts);
  RingOptions ropts;
  ropts.seed = flags.seed;
  ChordRing ring(&network, ropts);
  if (Status s = ring.CreateNetwork(flags.peers); !s.ok()) {
    std::fprintf(stderr, "create: %s\n", s.ToString().c_str());
    return 1;
  }
  auto dist = MakeDist(flags);
  Rng rng(flags.seed ^ 0xDA7A);
  ring.InsertDatasetBulk(GenerateDataset(*dist, flags.items, rng).keys);

  std::unique_ptr<ChurnProcess> churn;
  if (flags.churn_session > 0.0) {
    ChurnOptions copts;
    copts.mean_session_seconds = flags.churn_session;
    copts.seed = flags.seed ^ 0xC4;
    churn = std::make_unique<ChurnProcess>(&ring, copts);
    churn->Start();
    network.events().RunUntil(flags.duration);
  }

  DdeOptions dopts;
  dopts.num_probes = flags.probes;
  dopts.seed = flags.seed ^ 0xE5;
  DistributionFreeEstimator estimator(&ring, dopts);
  Result<NodeAddr> querier = ring.RandomAliveNode(rng);
  if (!querier.ok()) return 1;
  Result<DensityEstimate> estimate =
      flags.adaptive ? estimator.EstimateAdaptive(*querier, AdaptiveOptions{})
                     : estimator.Estimate(*querier);
  if (!estimate.ok()) {
    std::fprintf(stderr, "estimate: %s\n",
                 estimate.status().ToString().c_str());
    return 1;
  }

  const AccuracyReport acc = CompareCdfToTruth(estimate->cdf, *dist);
  const RingStatsSummary rs = ComputeRingStats(ring);
  const LoadBalanceReport lb_exact = ExactLoadBalance(ring);
  const LoadBalanceReport lb_pred = PredictLoadBalance(
      ring, estimate->cdf, estimate->estimated_total_items);
  Rng qrng(flags.seed ^ 0x7);
  const SelectivityEvalResult sel = EvaluateSelectivity(
      estimate->cdf, ring, GenerateRangeQueries(200, 0.1, qrng));
  auto modes = DetectModes(*estimate);

  if (flags.json) {
    std::printf("{\n");
    std::printf("  \"peers\": %zu,\n", ring.AliveCount());
    std::printf("  \"items\": %llu,\n",
                (unsigned long long)ring.TotalItems());
    std::printf("  \"workload\": \"%s\",\n", dist->Name().c_str());
    std::printf("  \"ks\": %.6f,\n", acc.ks);
    std::printf("  \"l1_cdf\": %.6f,\n", acc.l1_cdf);
    std::printf("  \"estimated_total\": %.1f,\n",
                estimate->estimated_total_items);
    std::printf("  \"peers_probed\": %zu,\n", estimate->peers_probed);
    std::printf("  \"messages\": %llu,\n",
                (unsigned long long)estimate->cost.messages);
    std::printf("  \"bytes\": %llu,\n",
                (unsigned long long)estimate->cost.bytes);
    std::printf("  \"failed_probes\": %llu,\n",
                (unsigned long long)estimate->failed_probes);
    std::printf("  \"selectivity_mean_abs_err\": %.6f,\n",
                sel.mean_abs_error);
    std::printf("  \"load_gini_exact\": %.4f,\n", lb_exact.gini);
    std::printf("  \"load_gini_predicted\": %.4f,\n", lb_pred.gini);
    std::printf("  \"modes\": %zu\n", modes.ok() ? modes->size() : 0);
    std::printf("}\n");
    return 0;
  }

  std::printf("workload           : %s, %llu items on %zu peers\n",
              dist->Name().c_str(), (unsigned long long)ring.TotalItems(),
              ring.AliveCount());
  if (churn) {
    std::printf("churn              : %llu events over %.0fs (session "
                "%.0fs)\n",
                (unsigned long long)(churn->joins() + churn->leaves() +
                                     churn->crashes()),
                flags.duration, flags.churn_session);
  }
  std::printf("estimator          : %s, %zu peers probed, %llu messages "
              "(%.1f KiB)\n",
              flags.adaptive ? "adaptive" : "fixed budget",
              estimate->peers_probed,
              (unsigned long long)estimate->cost.messages,
              estimate->cost.bytes / 1024.0);
  std::printf("accuracy           : KS %.4f, L1 %.4f, N̂ %.0f\n", acc.ks,
              acc.l1_cdf, estimate->estimated_total_items);
  std::printf("selectivity (200q) : mean |err| %.4f, p95 %.4f\n",
              sel.mean_abs_error, sel.p95_abs_error);
  std::printf("load balance       : gini exact %.3f vs predicted %.3f "
              "(max/avg %.1f vs %.1f)\n",
              lb_exact.gini, lb_pred.gini, lb_exact.max_over_avg,
              lb_pred.max_over_avg);
  std::printf("ring               : mean load %.1f, load gini %.3f\n",
              rs.mean_load, rs.load_gini);
  if (modes.ok()) {
    std::printf("density modes      : %zu\n", modes->size());
    for (const DensityMode& m : *modes) {
      std::printf("  %s\n", m.ToString().c_str());
    }
  }
  return 0;
}
