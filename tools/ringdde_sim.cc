// ringdde_sim — command-line scenario driver.
//
// Builds a ring, loads a workload, optionally churns it, runs the
// estimator (fixed-budget or adaptive), and reports accuracy, cost, and
// application-level results, as a table or as JSON for scripting.
//
//   ringdde_sim --peers=4096 --items=200000 --dist=zipf --zipf-theta=0.9
//               --probes=256 --churn-session=600 --duration=300 --json
//   (one line; wrapped here for width)
//
// With --reps=N the whole scenario (including churn warm-up) is rebuilt
// and re-run N times with per-trial derived seeds; trials run concurrently
// on the RINGDDE_THREADS-sized pool and the report aggregates them. The
// aggregate is bit-identical for every thread count.
//
// Run with --help for the full flag list.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "apps/density_mining.h"
#include "apps/load_balance.h"
#include "apps/selectivity.h"
#include "common/thread_pool.h"
#include "core/density_estimator.h"
#include "data/dataset.h"
#include "data/distribution.h"
#include "ring/churn.h"
#include "ring/chord_ring.h"
#include "ring/ring_stats.h"
#include "sim/network.h"
#include "stats/metrics.h"

namespace {

using namespace ringdde;

struct Flags {
  size_t peers = 1024;
  size_t items = 100000;
  std::string dist = "normal";
  double zipf_theta = 0.9;
  double normal_sigma = 0.15;
  size_t probes = 256;
  bool adaptive = false;
  double churn_session = 0.0;  // 0 = static network
  double duration = 300.0;     // churn warm-up, virtual seconds
  double loss = 0.0;
  uint64_t seed = 42;
  int reps = 1;
  bool json = false;
  bool help = false;
};

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    *out = arg + len + 1;
    return true;
  }
  return false;
}

Flags ParseFlags(int argc, char** argv) {
  Flags f;
  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (ParseFlag(argv[i], "--peers", &v)) {
      f.peers = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--items", &v)) {
      f.items = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--dist", &v)) {
      f.dist = v;
    } else if (ParseFlag(argv[i], "--zipf-theta", &v)) {
      f.zipf_theta = std::strtod(v.c_str(), nullptr);
    } else if (ParseFlag(argv[i], "--normal-sigma", &v)) {
      f.normal_sigma = std::strtod(v.c_str(), nullptr);
    } else if (ParseFlag(argv[i], "--probes", &v)) {
      f.probes = std::strtoull(v.c_str(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--adaptive") == 0) {
      f.adaptive = true;
    } else if (ParseFlag(argv[i], "--churn-session", &v)) {
      f.churn_session = std::strtod(v.c_str(), nullptr);
    } else if (ParseFlag(argv[i], "--duration", &v)) {
      f.duration = std::strtod(v.c_str(), nullptr);
    } else if (ParseFlag(argv[i], "--loss", &v)) {
      f.loss = std::strtod(v.c_str(), nullptr);
    } else if (ParseFlag(argv[i], "--seed", &v)) {
      f.seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--reps", &v)) {
      f.reps = static_cast<int>(std::strtol(v.c_str(), nullptr, 10));
      if (f.reps < 1) {
        std::fprintf(stderr, "--reps must be >= 1\n");
        std::exit(2);
      }
    } else if (std::strcmp(argv[i], "--json") == 0) {
      f.json = true;
    } else if (std::strcmp(argv[i], "--help") == 0 ||
               std::strcmp(argv[i], "-h") == 0) {
      f.help = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s (try --help)\n", argv[i]);
      std::exit(2);
    }
  }
  return f;
}

void PrintHelp() {
  std::printf(
      "ringdde_sim — run one density-estimation scenario\n\n"
      "  --peers=N           ring size (default 1024)\n"
      "  --items=N           dataset size (default 100000)\n"
      "  --dist=KIND         uniform|normal|zipf|exp|mixture (default "
      "normal)\n"
      "  --zipf-theta=T      Zipf skew (default 0.9)\n"
      "  --normal-sigma=S    Normal stddev (default 0.15)\n"
      "  --probes=M          probe budget (default 256)\n"
      "  --adaptive          self-tuning budget instead of fixed M\n"
      "  --churn-session=S   mean peer session seconds; 0 = static\n"
      "  --duration=S        churn warm-up before estimating (default "
      "300)\n"
      "  --loss=P            per-message loss probability (default 0)\n"
      "  --seed=N            master seed (default 42)\n"
      "  --reps=N            independent trials (default 1); each trial\n"
      "                      rebuilds the scenario with a seed derived\n"
      "                      from --seed, trials run concurrently on\n"
      "                      RINGDDE_THREADS workers, and the report\n"
      "                      aggregates them\n"
      "  --json              machine-readable output\n");
}

std::unique_ptr<Distribution> MakeDist(const Flags& f) {
  if (f.dist == "uniform") return std::make_unique<UniformDistribution>();
  if (f.dist == "normal") {
    return std::make_unique<TruncatedNormalDistribution>(0.5,
                                                         f.normal_sigma);
  }
  if (f.dist == "zipf") {
    return std::make_unique<ZipfDistribution>(1000, f.zipf_theta);
  }
  if (f.dist == "exp") {
    return std::make_unique<TruncatedExponentialDistribution>(5.0);
  }
  if (f.dist == "mixture") {
    return std::make_unique<GaussianMixtureDistribution>(
        std::vector<GaussianMixtureDistribution::Component>{
            {0.4, 0.2, 0.05}, {0.35, 0.55, 0.08}, {0.25, 0.85, 0.04}},
        "Mixture3");
  }
  std::fprintf(stderr, "unknown --dist=%s\n", f.dist.c_str());
  std::exit(2);
}

/// One fully built and estimated scenario. Heavy state is kept so the
/// single-trial report can dig into it; the multi-trial path extracts a
/// TrialSummary and drops it.
struct Scenario {
  std::unique_ptr<Network> net;
  std::unique_ptr<ChordRing> ring;
  std::unique_ptr<Distribution> dist;
  std::unique_ptr<ChurnProcess> churn;
  std::optional<DensityEstimate> estimate;
  std::string error;  // non-empty when the build or estimate failed
};

/// Builds the flags' scenario from `seed` and runs one estimation. The
/// whole construction depends only on (flags, seed), which is what makes
/// --reps runs reproducible at any thread count.
Scenario RunScenario(const Flags& flags, uint64_t seed) {
  Scenario sc;
  NetworkOptions nopts;
  nopts.loss_probability = flags.loss;
  nopts.seed = seed ^ 0xFEED;
  sc.net = std::make_unique<Network>(nopts);
  RingOptions ropts;
  ropts.seed = seed;
  sc.ring = std::make_unique<ChordRing>(sc.net.get(), ropts);
  if (Status s = sc.ring->CreateNetwork(flags.peers); !s.ok()) {
    sc.error = "create: " + s.ToString();
    return sc;
  }
  sc.dist = MakeDist(flags);
  Rng rng(seed ^ 0xDA7A);
  sc.ring->InsertDatasetBulk(
      GenerateDataset(*sc.dist, flags.items, rng).keys);

  if (flags.churn_session > 0.0) {
    ChurnOptions copts;
    copts.mean_session_seconds = flags.churn_session;
    copts.seed = seed ^ 0xC4;
    sc.churn = std::make_unique<ChurnProcess>(sc.ring.get(), copts);
    sc.churn->Start();
    sc.net->events().RunUntil(flags.duration);
  }

  DdeOptions dopts;
  dopts.num_probes = flags.probes;
  dopts.seed = seed ^ 0xE5;
  DistributionFreeEstimator estimator(sc.ring.get(), dopts);
  Result<NodeAddr> querier = sc.ring->RandomAliveNode(rng);
  if (!querier.ok()) {
    sc.error = "no alive querier";
    return sc;
  }
  Result<DensityEstimate> estimate =
      flags.adaptive
          ? estimator.EstimateAdaptive(*querier, AdaptiveOptions{})
          : estimator.Estimate(*querier);
  if (!estimate.ok()) {
    sc.error = "estimate: " + estimate.status().ToString();
    return sc;
  }
  sc.estimate = std::move(*estimate);
  return sc;
}

/// The numbers the aggregate --reps report is built from.
struct TrialSummary {
  bool ok = false;
  uint64_t seed = 0;
  double ks = 0.0;
  double l1_cdf = 0.0;
  double estimated_total = 0.0;
  double peers_probed = 0.0;
  double messages = 0.0;
  double bytes = 0.0;
  double failed_probes = 0.0;
  double sel_mean_abs_err = 0.0;
  double gini_exact = 0.0;
  double gini_pred = 0.0;
};

TrialSummary Summarize(const Flags& flags, uint64_t seed,
                       const Scenario& sc) {
  TrialSummary t;
  t.seed = seed;
  if (!sc.error.empty()) return t;
  const DensityEstimate& e = *sc.estimate;
  const AccuracyReport acc = CompareCdfToTruth(e.cdf, *sc.dist);
  t.ok = true;
  t.ks = acc.ks;
  t.l1_cdf = acc.l1_cdf;
  t.estimated_total = e.estimated_total_items;
  t.peers_probed = static_cast<double>(e.peers_probed);
  t.messages = static_cast<double>(e.cost.messages);
  t.bytes = static_cast<double>(e.cost.bytes);
  t.failed_probes = static_cast<double>(e.failed_probes);
  Rng qrng(flags.seed ^ 0x7);
  t.sel_mean_abs_err =
      EvaluateSelectivity(e.cdf, *sc.ring, GenerateRangeQueries(200, 0.1, qrng))
          .mean_abs_error;
  t.gini_exact = ExactLoadBalance(*sc.ring).gini;
  t.gini_pred =
      PredictLoadBalance(*sc.ring, e.cdf, e.estimated_total_items).gini;
  return t;
}

int RunSingle(const Flags& flags) {
  const Scenario sc = RunScenario(flags, flags.seed);
  if (!sc.error.empty()) {
    std::fprintf(stderr, "%s\n", sc.error.c_str());
    return 1;
  }
  const DensityEstimate& estimate = *sc.estimate;
  const AccuracyReport acc = CompareCdfToTruth(estimate.cdf, *sc.dist);
  const RingStatsSummary rs = ComputeRingStats(*sc.ring);
  const LoadBalanceReport lb_exact = ExactLoadBalance(*sc.ring);
  const LoadBalanceReport lb_pred = PredictLoadBalance(
      *sc.ring, estimate.cdf, estimate.estimated_total_items);
  Rng qrng(flags.seed ^ 0x7);
  const SelectivityEvalResult sel = EvaluateSelectivity(
      estimate.cdf, *sc.ring, GenerateRangeQueries(200, 0.1, qrng));
  auto modes = DetectModes(estimate);

  if (flags.json) {
    std::printf("{\n");
    std::printf("  \"peers\": %zu,\n", sc.ring->AliveCount());
    std::printf("  \"items\": %llu,\n",
                (unsigned long long)sc.ring->TotalItems());
    std::printf("  \"workload\": \"%s\",\n", sc.dist->Name().c_str());
    std::printf("  \"ks\": %.6f,\n", acc.ks);
    std::printf("  \"l1_cdf\": %.6f,\n", acc.l1_cdf);
    std::printf("  \"estimated_total\": %.1f,\n",
                estimate.estimated_total_items);
    std::printf("  \"peers_probed\": %zu,\n", estimate.peers_probed);
    std::printf("  \"messages\": %llu,\n",
                (unsigned long long)estimate.cost.messages);
    std::printf("  \"bytes\": %llu,\n",
                (unsigned long long)estimate.cost.bytes);
    std::printf("  \"failed_probes\": %llu,\n",
                (unsigned long long)estimate.failed_probes);
    std::printf("  \"selectivity_mean_abs_err\": %.6f,\n",
                sel.mean_abs_error);
    std::printf("  \"load_gini_exact\": %.4f,\n", lb_exact.gini);
    std::printf("  \"load_gini_predicted\": %.4f,\n", lb_pred.gini);
    std::printf("  \"modes\": %zu\n", modes.ok() ? modes->size() : 0);
    std::printf("}\n");
    return 0;
  }

  std::printf("workload           : %s, %llu items on %zu peers\n",
              sc.dist->Name().c_str(),
              (unsigned long long)sc.ring->TotalItems(),
              sc.ring->AliveCount());
  if (sc.churn) {
    std::printf("churn              : %llu events over %.0fs (session "
                "%.0fs)\n",
                (unsigned long long)(sc.churn->joins() + sc.churn->leaves() +
                                     sc.churn->crashes()),
                flags.duration, flags.churn_session);
  }
  std::printf("estimator          : %s, %zu peers probed, %llu messages "
              "(%.1f KiB)\n",
              flags.adaptive ? "adaptive" : "fixed budget",
              estimate.peers_probed,
              (unsigned long long)estimate.cost.messages,
              estimate.cost.bytes / 1024.0);
  std::printf("accuracy           : KS %.4f, L1 %.4f, N̂ %.0f\n", acc.ks,
              acc.l1_cdf, estimate.estimated_total_items);
  std::printf("selectivity (200q) : mean |err| %.4f, p95 %.4f\n",
              sel.mean_abs_error, sel.p95_abs_error);
  std::printf("load balance       : gini exact %.3f vs predicted %.3f "
              "(max/avg %.1f vs %.1f)\n",
              lb_exact.gini, lb_pred.gini, lb_exact.max_over_avg,
              lb_pred.max_over_avg);
  std::printf("ring               : mean load %.1f, load gini %.3f\n",
              rs.mean_load, rs.load_gini);
  if (modes.ok()) {
    std::printf("density modes      : %zu\n", modes->size());
    for (const DensityMode& m : *modes) {
      std::printf("  %s\n", m.ToString().c_str());
    }
  }
  return 0;
}

int RunRepeated(const Flags& flags) {
  // Trial 0 reuses the master seed (so its numbers match a --reps=1 run of
  // the same flags); later trials derive statistically independent seeds.
  const auto trial_seed = [&](size_t i) {
    return i == 0 ? flags.seed : DeriveTaskSeed(flags.seed, i);
  };
  std::vector<TrialSummary> trials(static_cast<size_t>(flags.reps));
  ThreadPool::Global().ParallelFor(
      0, trials.size(), [&](size_t i) {
        trials[i] = Summarize(flags, trial_seed(i),
                              RunScenario(flags, trial_seed(i)));
      });

  // Aggregate in trial order — identical arithmetic at any thread count.
  TrialSummary sum;
  double ks_min = 1.0, ks_max = 0.0;
  int ok = 0;
  for (const TrialSummary& t : trials) {
    if (!t.ok) continue;
    ++ok;
    sum.ks += t.ks;
    sum.l1_cdf += t.l1_cdf;
    sum.estimated_total += t.estimated_total;
    sum.peers_probed += t.peers_probed;
    sum.messages += t.messages;
    sum.bytes += t.bytes;
    sum.failed_probes += t.failed_probes;
    sum.sel_mean_abs_err += t.sel_mean_abs_err;
    sum.gini_exact += t.gini_exact;
    sum.gini_pred += t.gini_pred;
    ks_min = std::min(ks_min, t.ks);
    ks_max = std::max(ks_max, t.ks);
  }
  if (ok == 0) {
    std::fprintf(stderr, "all %d trials failed\n", flags.reps);
    return 1;
  }
  const double n = static_cast<double>(ok);

  if (flags.json) {
    std::printf("{\n");
    std::printf("  \"reps\": %d,\n", flags.reps);
    std::printf("  \"ok_trials\": %d,\n", ok);
    std::printf("  \"ks_mean\": %.6f,\n", sum.ks / n);
    std::printf("  \"ks_min\": %.6f,\n", ks_min);
    std::printf("  \"ks_max\": %.6f,\n", ks_max);
    std::printf("  \"l1_cdf_mean\": %.6f,\n", sum.l1_cdf / n);
    std::printf("  \"estimated_total_mean\": %.1f,\n",
                sum.estimated_total / n);
    std::printf("  \"peers_probed_mean\": %.1f,\n", sum.peers_probed / n);
    std::printf("  \"messages_mean\": %.1f,\n", sum.messages / n);
    std::printf("  \"bytes_mean\": %.1f,\n", sum.bytes / n);
    std::printf("  \"failed_probes_mean\": %.2f,\n",
                sum.failed_probes / n);
    std::printf("  \"selectivity_mean_abs_err\": %.6f,\n",
                sum.sel_mean_abs_err / n);
    std::printf("  \"load_gini_exact_mean\": %.4f,\n", sum.gini_exact / n);
    std::printf("  \"load_gini_predicted_mean\": %.4f,\n",
                sum.gini_pred / n);
    std::printf("  \"trials\": [");
    for (size_t i = 0; i < trials.size(); ++i) {
      std::printf("%s\n    {\"seed\": %llu, \"ok\": %s, \"ks\": %.6f}",
                  i ? "," : "", (unsigned long long)trials[i].seed,
                  trials[i].ok ? "true" : "false", trials[i].ks);
    }
    std::printf("\n  ]\n}\n");
    return 0;
  }

  std::printf("reps               : %d trials (%d ok), seeds derived from "
              "%llu\n",
              flags.reps, ok, (unsigned long long)flags.seed);
  std::printf("accuracy           : KS mean %.4f [%.4f, %.4f], L1 mean "
              "%.4f, N̂ mean %.0f\n",
              sum.ks / n, ks_min, ks_max, sum.l1_cdf / n,
              sum.estimated_total / n);
  std::printf("cost               : mean %.0f messages (%.1f KiB), %.1f "
              "peers probed, %.2f failed probes\n",
              sum.messages / n, sum.bytes / n / 1024.0,
              sum.peers_probed / n, sum.failed_probes / n);
  std::printf("selectivity (200q) : mean |err| %.4f\n",
              sum.sel_mean_abs_err / n);
  std::printf("load balance       : gini exact %.3f vs predicted %.3f "
              "(means)\n",
              sum.gini_exact / n, sum.gini_pred / n);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = ParseFlags(argc, argv);
  if (flags.help) {
    PrintHelp();
    return 0;
  }
  return flags.reps == 1 ? RunSingle(flags) : RunRepeated(flags);
}
