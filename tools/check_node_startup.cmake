# Launches one ringdde_node, waits for its LISTENING line, then SIGTERMs
# it and checks the exit is clean. Usage:
#   cmake -DNODE_BIN=<path> -P check_node_startup.cmake
if(NOT DEFINED NODE_BIN)
  message(FATAL_ERROR "NODE_BIN not set")
endif()

set(log "${CMAKE_CURRENT_BINARY_DIR}/ringdde_node_startup.log")
execute_process(
  COMMAND bash -c "\
    set -e; \
    '${NODE_BIN}' --peers=8 --ring-seed=3 --net-seed=9 > '${log}' & \
    pid=$!; \
    for i in $(seq 1 100); do \
      grep -q 'RINGDDE_NODE LISTENING port=' '${log}' 2>/dev/null && break; \
      sleep 0.1; \
    done; \
    grep -q 'RINGDDE_NODE LISTENING port=' '${log}'; \
    kill -TERM $pid; \
    wait $pid"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  file(READ "${log}" contents)
  message(FATAL_ERROR "ringdde_node startup failed (rc=${rc}): ${contents}")
endif()
message(STATUS "ringdde_node startup OK")
