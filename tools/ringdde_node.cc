// ringdde_node: one socket-served ring process.
//
// Builds a deterministic ring deployment from command-line parameters
// (every process launched with the same parameters builds bit-identical
// state — the replica-shard model, see core/ring_service.h), binds an
// ephemeral local TCP port, prints one LISTENING line for the launcher to
// parse, and serves framed RPCs until a kShutdown frame or SIGTERM/SIGINT.
//
// Quick start (two-process ring, 8 peers each):
//   ./ringdde_node --peers=8 --ring-seed=1 --net-seed=7 &
//   ./ringdde_node --peers=8 --ring-seed=1 --net-seed=7 &
//   # each prints: RINGDDE_NODE LISTENING port=<p> peers=8 fingerprint=<hex>
// then drive them with RingClient over SocketRpcChannel(port) — joins,
// stabilization, bulk inserts (broadcast to both), probe/estimate RPCs
// (to either).

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "core/ring_service.h"
#include "sim/rpc_server.h"

namespace {

volatile std::sig_atomic_t g_signaled = 0;

void OnSignal(int) { g_signaled = 1; }

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

void Usage(const char* prog) {
  std::fprintf(
      stderr,
      "usage: %s [--peers=N] [--ring-seed=S] [--net-seed=S]\n"
      "          [--probes=M] [--rounds=R] [--quantiles=Q] [--retries=A]\n"
      "          [--sketch-levels=K]\n"
      "          [--listen-host=ADDR] [--server-mode=epoll|threads]\n"
      "          [--loop-threads=N]\n"
      "          [--fault-drop=P] [--fault-crash=P] [--fault-seed=S]\n"
      "          [--wire-drop=P] [--wire-delay=P] [--wire-delay-mean=SEC]\n"
      "          [--wire-seed=S]\n"
      "Serves a deterministic ring deployment over framed RPCs on an\n"
      "ephemeral port bound to --listen-host (default 127.0.0.1; use\n"
      "0.0.0.0 to serve other hosts), printed as RINGDDE_NODE LISTENING.\n",
      prog);
}

}  // namespace

int main(int argc, char** argv) {
  ringdde::DeploymentSpec spec;
  ringdde::RpcServerOptions server_options;
  double wire_drop = 0.0, wire_delay = 0.0, wire_delay_mean = 0.01;
  uint64_t wire_seed = 0x3173;

  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (ParseFlag(argv[i], "--peers", &v)) {
      spec.peers = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--ring-seed", &v)) {
      spec.ring_seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--net-seed", &v)) {
      spec.net_seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--probes", &v)) {
      spec.num_probes = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--rounds", &v)) {
      spec.refinement_rounds =
          static_cast<uint32_t>(std::strtoul(v.c_str(), nullptr, 10));
    } else if (ParseFlag(argv[i], "--quantiles", &v)) {
      spec.local_quantiles =
          static_cast<uint32_t>(std::strtoul(v.c_str(), nullptr, 10));
    } else if (ParseFlag(argv[i], "--retries", &v)) {
      spec.retry_max_attempts =
          static_cast<uint32_t>(std::strtoul(v.c_str(), nullptr, 10));
    } else if (ParseFlag(argv[i], "--sketch-levels", &v)) {
      spec.sketch_levels =
          static_cast<uint32_t>(std::strtoul(v.c_str(), nullptr, 10));
    } else if (ParseFlag(argv[i], "--listen-host", &v)) {
      server_options.bind_host = v;
    } else if (ParseFlag(argv[i], "--server-mode", &v)) {
      if (v == "epoll") {
        server_options.mode = ringdde::RpcServerMode::kEventLoop;
      } else if (v == "threads") {
        server_options.mode = ringdde::RpcServerMode::kThreadPerConnection;
      } else {
        Usage(argv[0]);
        return 2;
      }
    } else if (ParseFlag(argv[i], "--loop-threads", &v)) {
      server_options.event_loop_threads =
          static_cast<int>(std::strtol(v.c_str(), nullptr, 10));
    } else if (ParseFlag(argv[i], "--fault-drop", &v)) {
      spec.faults_enabled = true;
      spec.faults.drop_probability = std::strtod(v.c_str(), nullptr);
    } else if (ParseFlag(argv[i], "--fault-crash", &v)) {
      spec.faults_enabled = true;
      spec.faults.crash_probability = std::strtod(v.c_str(), nullptr);
    } else if (ParseFlag(argv[i], "--fault-seed", &v)) {
      spec.faults.seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--wire-drop", &v)) {
      wire_drop = std::strtod(v.c_str(), nullptr);
    } else if (ParseFlag(argv[i], "--wire-delay", &v)) {
      wire_delay = std::strtod(v.c_str(), nullptr);
    } else if (ParseFlag(argv[i], "--wire-delay-mean", &v)) {
      wire_delay_mean = std::strtod(v.c_str(), nullptr);
    } else if (ParseFlag(argv[i], "--wire-seed", &v)) {
      wire_seed = std::strtoull(v.c_str(), nullptr, 10);
    } else {
      Usage(argv[0]);
      return 2;
    }
  }

  ringdde::RingRpcService service(spec);
  ringdde::Status init = service.Init();
  if (!init.ok()) {
    std::fprintf(stderr, "ringdde_node: %s\n", init.ToString().c_str());
    return 1;
  }

  ringdde::RpcServer server(
      [&service](const ringdde::Frame& request, ringdde::Frame* reply) {
        return service.Handle(request, reply);
      },
      server_options);

  // Wire-level faults reuse the deterministic fault-plan hashing: the
  // verdict for rpc i is a pure function of (wire_seed, i), realized as a
  // REAL connection close (drop) or a REAL sleep (delay). See
  // sim/rpc_server.h for the exactly-once argument.
  if (wire_drop > 0.0 || wire_delay > 0.0) {
    ringdde::FaultOptions wire_faults;
    wire_faults.drop_probability = wire_drop;
    wire_faults.delay_probability = wire_delay;
    wire_faults.delay_mean_seconds = wire_delay_mean;
    wire_faults.seed = wire_seed;
    auto injector = std::make_shared<ringdde::FaultInjector>(wire_faults);
    server.set_wire_fault_hook([injector](uint64_t rpc_seq) {
      ringdde::MessageFault fault = injector->DecideMessage(rpc_seq);
      ringdde::WireFault wire;
      wire.drop = fault.drop;
      wire.extra_delay_seconds = fault.extra_delay_seconds;
      return wire;
    });
  }

  ringdde::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "ringdde_node: %s\n", started.ToString().c_str());
    return 1;
  }

  std::signal(SIGTERM, OnSignal);
  std::signal(SIGINT, OnSignal);

  // The launcher greps this exact line for the ephemeral port (`port=` and
  // the fields before it are load-bearing; host= is appended info).
  std::printf(
      "RINGDDE_NODE LISTENING port=%u peers=%llu fingerprint=%016llx "
      "host=%s\n",
      server.port(), static_cast<unsigned long long>(spec.peers),
      static_cast<unsigned long long>(service.Fingerprint()),
      server_options.bind_host.c_str());
  std::fflush(stdout);

  while (!g_signaled && !service.shutdown_requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  server.Stop();
  return 0;
}
