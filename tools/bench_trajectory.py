#!/usr/bin/env python3
"""Collate BENCH_*.json perf reports into one BENCH_trajectory.json series.

Every bench binary drops a BENCH_<experiment>.json with the
{experiment, threads, wall_clock_ms, counters} schema (enforced by
bench/check_bench_json.cmake). This tool stitches those point-in-time
reports into a per-experiment time series so counter trends (estimates/sec,
staleness percentiles, cache hit rates, peak RSS, ...) can be tracked
across commits:

  - every committed revision of any BENCH_*.json in git history becomes one
    sample, stamped with its commit hash and commit time;
  - uncommitted reports from --scan-dir directories (typically the build's
    bench/ output dir) are appended as "worktree" samples.

Output schema:

  {
    "schema": "ringdde-bench-trajectory-v1",
    "series": {
      "<experiment>": [
        {"commit": "<hash>|null", "commit_time": <epoch>|null,
         "source": "<path>", "threads": N, "wall_clock_ms": X,
         "counters": {...}},
        ...                         # ascending commit_time, worktree last
      ]
    }
  }

Stdlib only; requires git in PATH only when history collation is enabled
(default; --no-git skips it).
"""

import argparse
import json
import subprocess
import sys
from pathlib import Path


def run_git(repo, *args):
    """Returns git stdout or None if git/repo is unavailable."""
    try:
        proc = subprocess.run(
            ["git", "-C", str(repo), *args],
            capture_output=True,
            text=True,
            check=False,
        )
    except OSError:
        return None
    if proc.returncode != 0:
        return None
    return proc.stdout


def parse_report(text, source, commit=None, commit_time=None):
    """One trajectory sample from a BENCH_*.json payload, or None."""
    try:
        doc = json.loads(text)
    except (json.JSONDecodeError, UnicodeDecodeError):
        return None
    if not isinstance(doc, dict) or "experiment" not in doc:
        return None
    return {
        "experiment": doc["experiment"],
        "sample": {
            "commit": commit,
            "commit_time": commit_time,
            "source": source,
            "threads": doc.get("threads"),
            "wall_clock_ms": doc.get("wall_clock_ms"),
            "counters": doc.get("counters", {}),
        },
    }


def history_samples(repo):
    """Every committed revision of every BENCH_*.json, oldest first."""
    log = run_git(
        repo,
        "log",
        "--reverse",
        "--format=%x01%H %ct",
        "--name-only",
        "--",
        "*BENCH_*.json",
    )
    if log is None:
        return []
    samples = []
    commit = None
    commit_time = None
    for line in log.splitlines():
        if line.startswith("\x01"):
            commit, _, stamp = line[1:].partition(" ")
            commit_time = int(stamp) if stamp.strip().isdigit() else None
            continue
        path = line.strip()
        if not path or "BENCH_" not in Path(path).name:
            continue
        if not Path(path).name.endswith(".json"):
            continue
        blob = run_git(repo, "show", f"{commit}:{path}")
        if blob is None:
            continue  # deleted or renamed in this commit
        parsed = parse_report(blob, path, commit=commit,
                              commit_time=commit_time)
        if parsed is not None:
            samples.append(parsed)
    return samples


def worktree_samples(scan_dirs):
    samples = []
    for d in scan_dirs:
        for path in sorted(Path(d).glob("BENCH_*.json")):
            if path.name == "BENCH_trajectory.json":
                continue
            try:
                text = path.read_text()
            except OSError:
                continue
            parsed = parse_report(text, str(path))
            if parsed is not None:
                samples.append(parsed)
    return samples


def main(argv=None):
    ap = argparse.ArgumentParser(
        description="Collate BENCH_*.json reports into BENCH_trajectory.json")
    ap.add_argument("--repo", default=str(Path(__file__).resolve().parent.parent),
                    help="git repository to mine for committed reports")
    ap.add_argument("--scan-dir", action="append", default=[],
                    help="directory with uncommitted BENCH_*.json reports "
                         "(repeatable)")
    ap.add_argument("--output", default="BENCH_trajectory.json",
                    help="output path")
    ap.add_argument("--no-git", action="store_true",
                    help="skip git history; collate only --scan-dir reports")
    args = ap.parse_args(argv)

    samples = []
    if not args.no_git:
        samples.extend(history_samples(args.repo))
    samples.extend(worktree_samples(args.scan_dir))

    series = {}
    for entry in samples:
        series.setdefault(entry["experiment"], []).append(entry["sample"])
    for points in series.values():
        # History is already oldest-first; keep worktree samples last.
        points.sort(key=lambda p: (p["commit_time"] is None,
                                   p["commit_time"] or 0))

    out = {
        "schema": "ringdde-bench-trajectory-v1",
        "experiments": sorted(series),
        "series": series,
    }
    Path(args.output).write_text(json.dumps(out, indent=2, sort_keys=True)
                                 + "\n")
    total = sum(len(p) for p in series.values())
    print(f"wrote {args.output}: {len(series)} experiments, "
          f"{total} samples")
    return 0


if __name__ == "__main__":
    sys.exit(main())
