// E17 — Concurrent query throughput: shared-snapshot vs replicated trials.
//
// The estimation path is read-only on ring state and charges a per-query
// CostContext, so RepeatDde runs every parallel trial against ONE shared
// deployment. This experiment quantifies what that buys over the legacy
// engine (RepeatDdeReplicated: one full deployment rebuild per trial):
// estimates/sec versus thread count for both engines, and the per-trial
// setup cost each pays. It also re-checks, at every measured thread
// count, that both engines reproduce the serial trial outputs bit for bit
// and that the shared engine performs zero Env::Replicate() calls — the
// paper-facing numbers stay exact; only the wall clock moves.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "bench_util.h"

namespace ringdde::bench {
namespace {

using Clock = std::chrono::steady_clock;

double ElapsedSeconds(Clock::time_point begin, Clock::time_point end) {
  return std::chrono::duration<double>(end - begin).count();
}

bool SameResult(const RepeatedResult& a, const RepeatedResult& b) {
  return a.accuracy.ks == b.accuracy.ks &&
         a.accuracy.l1_cdf == b.accuracy.l1_cdf &&
         a.accuracy.l2_cdf == b.accuracy.l2_cdf &&
         a.accuracy.l1_pdf == b.accuracy.l1_pdf &&
         a.mean_messages == b.mean_messages && a.mean_hops == b.mean_hops &&
         a.mean_bytes == b.mean_bytes &&
         a.mean_total_error == b.mean_total_error &&
         a.mean_peers == b.mean_peers;
}

void Run() {
  const size_t kPeers = Scaled(2048, 128);
  const size_t kItems = Scaled(100000, 4000);
  const int kReps = ScaledInt(32, 6);
  const uint64_t kSeedBase = 1700;

  auto env = BuildEnv(kPeers,
                      std::make_unique<TruncatedNormalDistribution>(0.5, 0.15),
                      kItems, 23);
  DdeOptions opts;
  opts.num_probes = Scaled(256, 32);

  // Per-trial setup cost of each engine. The replica engine rebuilds the
  // deployment before every trial; the shared engine warms the read caches
  // once, amortized over all trials of the batch.
  const Clock::time_point rep_begin = Clock::now();
  { std::unique_ptr<Env> replica = env->Replicate(); }
  const double replica_setup_us =
      1e6 * ElapsedSeconds(rep_begin, Clock::now());
  const Clock::time_point warm_begin = Clock::now();
  env->ring->PrepareConcurrentReads();
  const double shared_setup_us =
      1e6 * ElapsedSeconds(warm_begin, Clock::now()) /
      static_cast<double>(kReps);
  BenchReporter::Global().RecordCounter("setup_us_per_trial_replica",
                                        replica_setup_us);
  BenchReporter::Global().RecordCounter("setup_us_per_trial_shared",
                                        shared_setup_us);

  // Serial reference outputs: both engines must reproduce these exactly at
  // every thread count.
  ThreadPool serial(0);
  const RepeatedResult reference =
      RepeatDde(*env, opts, kReps, kSeedBase, &serial);

  Table table(Fmt("E17 concurrent queries — n=%zu, N=%zu, m=%zu, reps=%d",
                  kPeers, kItems, opts.num_probes, kReps),
              {"threads", "engine", "wall_ms", "est_per_sec",
               "replicate_calls", "bit_identical"});

  const std::vector<size_t> concurrency =
      SmokeMode() ? std::vector<size_t>{1, 4} : std::vector<size_t>{1, 4, 16};
  double shared_eps_best = 0.0;
  double replica_eps_best = 0.0;
  for (size_t threads : concurrency) {
    ThreadPool pool(threads - 1);

    const uint64_t shared_replicates_before = ReplicateCalls();
    Clock::time_point begin = Clock::now();
    const RepeatedResult shared =
        RepeatDde(*env, opts, kReps, kSeedBase, &pool);
    const double shared_s = ElapsedSeconds(begin, Clock::now());
    const uint64_t shared_replicates =
        ReplicateCalls() - shared_replicates_before;
    if (shared_replicates != 0) {
      std::fprintf(stderr,
                   "E17: shared engine replicated %llu deployments\n",
                   (unsigned long long)shared_replicates);
      std::abort();
    }

    const uint64_t replica_replicates_before = ReplicateCalls();
    begin = Clock::now();
    const RepeatedResult replicated =
        RepeatDdeReplicated(*env, opts, kReps, kSeedBase, &pool);
    const double replica_s = ElapsedSeconds(begin, Clock::now());
    const uint64_t replica_replicates =
        ReplicateCalls() - replica_replicates_before;

    if (!SameResult(shared, reference) || !SameResult(replicated, reference)) {
      std::fprintf(stderr, "E17: engines diverged at %zu threads\n", threads);
      std::abort();
    }
    const double shared_eps = static_cast<double>(kReps) / shared_s;
    const double replica_eps = static_cast<double>(kReps) / replica_s;
    shared_eps_best = std::max(shared_eps_best, shared_eps);
    replica_eps_best = std::max(replica_eps_best, replica_eps);

    table.AddRow({Fmt("%zu", threads), "shared", Fmt("%.1f", 1e3 * shared_s),
                  Fmt("%.1f", shared_eps), "0", "yes"});
    table.AddRow({Fmt("%zu", threads), "replica",
                  Fmt("%.1f", 1e3 * replica_s), Fmt("%.1f", replica_eps),
                  Fmt("%llu", (unsigned long long)replica_replicates),
                  "yes"});
  }
  table.Print();

  BenchReporter::Global().RecordCounter("estimates_per_sec_shared",
                                        shared_eps_best);
  BenchReporter::Global().RecordCounter("estimates_per_sec_replica",
                                        replica_eps_best);
  ReportDeploymentCacheCounters();
}

}  // namespace
}  // namespace ringdde::bench

int main() {
  ringdde::bench::BenchRun run("e17_concurrent_queries");
  ringdde::bench::Run();
  return 0;
}
