// E21 — Mergeable-sketch aggregation: accuracy per byte and per message.
//
// (a) Head-to-head across the E1–E3 workload skews (uniform, normal,
// zipf): the hierarchical DensitySketch convergecast vs the m-probe DDE
// estimator vs the exact TreeAggregator anchor. Two cost framings are
// reported honestly:
//   - ring_kbytes: what the ring pays to BUILD one estimate (convergecast
//     or probe traffic). The sketch path spends ~2(n−1) constant-size
//     messages here — more than m probes at large n, by design.
//   - frame_bytes: what each peer pays to HOLD the estimate — the encoded
//     frame dissemination ships per peer (core/wire.h). This is where the
//     sketch wins: a fixed (K+1)-knot frame vs a dense CDF knot list that
//     grows with probe resolution. One aggregation + one broadcast serves
//     all n peers, so frame_bytes is the per-estimate serving cost.
// Expected shape: at equal-or-better KS on uniform, the K=64 sketch frame
// is >= 5x smaller than the m=256 probe estimator's frame (the acceptance
// gate; the recorded bytes_per_estimate / probe_bytes_per_estimate
// counters pin the ratio).
//
// (b) Fault-injected degradation: drop-rate sweep over the sketch
// convergecast with single-attempt vs retrying edges. An edge that
// exhausts its retries orphans its subtree, so covered_fraction falls and
// the confidence bound widens — accuracy degrades gracefully, and retries
// buy coverage back at message cost (the PR3 machinery, inherited).
#include <memory>
#include <vector>

#include "baselines/tree_aggregation.h"
#include "bench_util.h"
#include "core/sketch_aggregation.h"
#include "core/wire.h"
#include "sim/fault_injector.h"

namespace ringdde::bench {
namespace {

/// BuildEnv with a fault plan attached (e16 idiom): an all-zero plan
/// reproduces the fault-free deployment bit-for-bit.
std::unique_ptr<Env> BuildFaultEnv(size_t n,
                                   std::unique_ptr<Distribution> dist,
                                   size_t items, uint64_t seed,
                                   const FaultOptions& fopts) {
  auto env = std::make_unique<Env>();
  NetworkOptions nopts;
  nopts.faults = std::make_shared<FaultInjector>(fopts);
  env->net = std::make_unique<Network>(nopts);
  RingOptions ropts;
  ropts.seed = seed;
  env->ring = std::make_unique<ChordRing>(env->net.get(), ropts);
  Status s = env->ring->CreateNetwork(n);
  if (!s.ok()) {
    std::fprintf(stderr, "BuildFaultEnv failed: %s\n", s.ToString().c_str());
    std::abort();
  }
  env->dist = std::move(dist);
  env->items = items;
  env->peers = n;
  env->seed = seed;
  Rng rng(seed ^ 0xDA7A);
  env->ring->InsertDatasetBulk(GenerateDataset(*env->dist, items, rng).keys);
  return env;
}

struct MethodResult {
  double ks = 0.0;
  uint64_t messages = 0;
  uint64_t ring_bytes = 0;
  size_t frame_bytes = 0;
  double covered = 0.0;
};

MethodResult RunSketch(Env& e, uint32_t levels, uint64_t seed) {
  SketchAggregationOptions opts;
  opts.sketch_levels = levels;
  opts.seed = seed;
  Rng rng(seed);
  SketchAggregator agg(e.ring.get(), opts);
  auto est = agg.Estimate(*e.ring->RandomAliveNode(rng));
  MethodResult r;
  if (!est.ok()) return r;
  r.ks = CompareCdfToTruth(est->cdf, *e.dist).ks;
  r.messages = est->cost.messages;
  r.ring_bytes = est->cost.bytes;
  r.frame_bytes = EncodedEstimateSize(*est);
  r.covered = est->covered_fraction;
  return r;
}

MethodResult RunProbe(Env& e, size_t m, uint64_t seed) {
  DdeOptions opts;
  opts.num_probes = m;
  opts.seed = seed;
  Rng rng(seed);
  DistributionFreeEstimator estimator(e.ring.get(), opts);
  auto est = estimator.Estimate(*e.ring->RandomAliveNode(rng));
  MethodResult r;
  if (!est.ok()) return r;
  r.ks = CompareCdfToTruth(est->cdf, *e.dist).ks;
  r.messages = est->cost.messages;
  r.ring_bytes = est->cost.bytes;
  r.frame_bytes = EncodedEstimateSize(*est);
  r.covered = est->covered_fraction;
  return r;
}

MethodResult RunTreeExact(Env& e, uint64_t seed) {
  Rng rng(seed);
  TreeAggregator agg(e.ring.get(), TreeAggregationOptions{});
  auto est = agg.Estimate(*e.ring->RandomAliveNode(rng));
  MethodResult r;
  if (!est.ok()) return r;
  r.ks = CompareCdfToTruth(est->cdf, *e.dist).ks;
  r.messages = est->cost.messages;
  r.ring_bytes = est->cost.bytes;
  r.frame_bytes = EncodedEstimateSize(*est);
  r.covered = est->covered_fraction;
  return r;
}

std::vector<std::string> MethodRow(const char* method,
                                   const MethodResult& r) {
  return {method,
          Fmt("%.4f", r.ks),
          Fmt("%llu", (unsigned long long)r.messages),
          Fmt("%.1f", r.ring_bytes / 1024.0),
          Fmt("%zu", r.frame_bytes),
          Fmt("%.3f", r.covered)};
}

void RunHeadToHead() {
  const size_t kPeers = Scaled(4096, 128);
  const size_t kItems = Scaled(200000, 5000);
  const size_t kProbeBudget = Scaled(256, 64);
  const std::vector<uint32_t> kLevels =
      SmokeMode() ? std::vector<uint32_t>{32, 64}
                  : std::vector<uint32_t>{32, 64, 128};

  // The acceptance-gate counters come from the FIRST workload (uniform —
  // the E1 shape) at K=64 vs m=kProbeBudget.
  bool gate_recorded = false;

  for (auto& dist : StandardBenchmarkDistributions()) {
    const std::string name = dist->Name();
    auto env = BuildEnv(kPeers, std::move(dist), kItems, /*seed=*/21);

    Table table(Fmt("E21a accuracy per byte — workload %s, n=%zu, N=%zu "
                    "(ring_kbytes builds the estimate once; frame_bytes is "
                    "what every holder pays at dissemination)",
                    name.c_str(), kPeers, kItems),
                {"method", "ks", "msgs", "ring_kbytes", "frame_bytes",
                 "covered"});

    // Row tasks are independent estimations against one read-only
    // deployment snapshot; labels are attached after the parallel run.
    std::vector<std::function<MethodResult()>> tasks;
    std::vector<std::string> labels;
    for (uint32_t levels : kLevels) {
      labels.push_back(Fmt("sketch K=%u", levels));
      tasks.push_back([&env, levels] {
        return RunSketch(*env, levels, 0xE21 + levels);
      });
    }
    for (size_t m : {kProbeBudget / 4, kProbeBudget}) {
      labels.push_back(Fmt("probe m=%zu", m));
      tasks.push_back([&env, m] { return RunProbe(*env, m, 0xE21 + m); });
    }
    labels.push_back("tree exact");
    tasks.push_back([&env] { return RunTreeExact(*env, 0xE21); });

    std::vector<MethodResult> results =
        ParallelRows<MethodResult>(tasks.size(),
                                   [&](size_t i) { return tasks[i](); });
    for (size_t i = 0; i < results.size(); ++i) {
      table.AddRow(MethodRow(labels[i].c_str(), results[i]));
    }
    table.Print();

    if (!gate_recorded) {
      // uniform workload: sketch K=64 vs probe m=kProbeBudget.
      const MethodResult& sk =
          results[kLevels.size() > 1 ? 1 : 0];  // K=64 slot
      const MethodResult& probe = results[kLevels.size() + 1];
      BenchReporter::Global().RecordCounter(
          "bytes_per_estimate", static_cast<double>(sk.frame_bytes));
      BenchReporter::Global().RecordCounter(
          "messages_per_estimate", static_cast<double>(sk.messages));
      BenchReporter::Global().RecordCounter("ks_error", sk.ks);
      BenchReporter::Global().RecordCounter(
          "probe_bytes_per_estimate", static_cast<double>(probe.frame_bytes));
      BenchReporter::Global().RecordCounter("probe_ks_error", probe.ks);
      BenchReporter::Global().RecordCounter(
          "bytes_ratio", sk.frame_bytes > 0
                             ? static_cast<double>(probe.frame_bytes) /
                                   static_cast<double>(sk.frame_bytes)
                             : 0.0);
      gate_recorded = true;
    }
  }
}

void RunFaultDegradation() {
  const size_t kPeers = Scaled(1024, 128);
  const size_t kItems = Scaled(100000, 4000);
  const std::vector<double> kDrops =
      SmokeMode() ? std::vector<double>{0.0, 0.1}
                  : std::vector<double>{0.0, 0.02, 0.05, 0.1, 0.2};

  Table table(Fmt("E21b sketch convergecast under message drops — n=%zu, "
                  "K=64, Normal(0.5,0.15); an orphaned edge loses its whole "
                  "subtree, retries buy coverage back",
                  kPeers),
              {"drop", "retries", "covered", "ks", "failed_edges", "msgs",
               "ring_kbytes"});

  struct Case {
    double drop;
    int max_attempts;
  };
  std::vector<Case> cases;
  for (double drop : kDrops) {
    cases.push_back({drop, 1});
    if (drop > 0.0) cases.push_back({drop, 4});
  }

  table.AddRows(ParallelRows<std::vector<std::string>>(
      cases.size(), [&](size_t row) {
        const Case& c = cases[row];
        FaultOptions fopts;
        fopts.drop_probability = c.drop;
        fopts.seed = 0xE21B + row;
        auto env = BuildFaultEnv(
            kPeers,
            std::make_unique<TruncatedNormalDistribution>(0.5, 0.15),
            kItems, /*seed=*/23, fopts);

        SketchAggregationOptions opts;
        opts.sketch_levels = 64;
        opts.retry.max_attempts = c.max_attempts;
        opts.seed = 0x5E21 + row;
        Rng rng(opts.seed);
        SketchAggregator agg(env->ring.get(), opts);
        auto est = agg.Estimate(*env->ring->RandomAliveNode(rng));
        if (!est.ok()) {
          return std::vector<std::string>{Fmt("%.2f", c.drop),
                                          Fmt("%d", c.max_attempts),
                                          "-", "-", "-", "-", "-"};
        }
        return std::vector<std::string>{
            Fmt("%.2f", c.drop),
            Fmt("%d", c.max_attempts),
            Fmt("%.3f", est->covered_fraction),
            Fmt("%.4f", CompareCdfToTruth(est->cdf, *env->dist).ks),
            Fmt("%llu", (unsigned long long)agg.failed_edges()),
            Fmt("%llu", (unsigned long long)est->cost.messages),
            Fmt("%.1f", est->cost.bytes / 1024.0)};
      }));
  table.Print();
}

}  // namespace
}  // namespace ringdde::bench

int main() {
  ringdde::bench::BenchRun run("e21_sketch_aggregation");
  ringdde::bench::RunHeadToHead();
  ringdde::bench::RunFaultDegradation();
  return 0;
}
