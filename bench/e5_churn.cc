// E5 — Dynamics: estimation accuracy under churn, and refresh policies.
//
// (a) One-shot estimation while the network churns at increasing rates:
// accuracy degrades gracefully because probes hit live owners via
// successor-list fallback, and failed probes are skipped. (b) Maintenance
// policies: periodic full re-estimation versus incremental partial
// refresh — staleness/accuracy against message cost.
//
// Every churn rate / policy is a self-contained simulation (own network,
// own churn process), so rows run concurrently on the global thread pool.
#include <memory>

#include "bench_util.h"
#include "core/maintenance.h"
#include "ring/churn.h"

namespace ringdde::bench {
namespace {

void RunChurnAccuracy() {
  const size_t kPeers = Scaled(1024, 128);
  const size_t kItems = Scaled(100000, 4000);

  Table table(Fmt("E5a one-shot accuracy under churn — n=%zu, m=256, "
                  "Normal(0.5,0.15), stabilize every 30s",
                  kPeers),
              {"mean_session_s", "churn_events", "ks", "failed_probes",
               "peers_probed", "msgs"});

  const std::vector<double> sessions =
      SmokeMode() ? std::vector<double>{1e9, 600.0}
                  : std::vector<double>{1e9, 3600.0, 600.0, 120.0, 60.0};
  table.AddRows(ParallelRows<std::vector<std::string>>(
      sessions.size(), [&](size_t row) {
        const double session = sessions[row];
        auto env = BuildEnv(
            kPeers,
            std::make_unique<TruncatedNormalDistribution>(0.5, 0.15),
            kItems, 91 + static_cast<uint64_t>(session));
        ChurnOptions copts;
        copts.mean_session_seconds = session;
        copts.stabilize_interval_seconds = 30.0;
        copts.seed = 3;
        ChurnProcess churn(env->ring.get(), copts);
        churn.Start();
        env->net->events().RunUntil(300.0);

        DdeOptions opts;
        opts.num_probes = 256;
        opts.seed = 5;
        DistributionFreeEstimator est(env->ring.get(), opts);
        Rng rng(6);
        CostScope scope(env->net->counters());
        auto e = est.Estimate(*env->ring->RandomAliveNode(rng));
        const double ks =
            e.ok() ? CompareCdfToTruth(e->cdf, *env->dist).ks : 1.0;
        return std::vector<std::string>{
            session > 1e8 ? std::string("inf") : Fmt("%.0f", session),
            Fmt("%llu", (unsigned long long)(churn.joins() + churn.leaves() +
                                             churn.crashes())),
            Fmt("%.4f", ks),
            Fmt("%llu",
                (unsigned long long)(e.ok() ? e->failed_probes : 0)),
            Fmt("%zu", e.ok() ? e->peers_probed : size_t{0}),
            Fmt("%llu", (unsigned long long)scope.Delta().messages)};
      }));
  table.Print();
}

void RunRefreshPolicies() {
  const size_t kPeers = Scaled(1024, 128);
  const size_t kItems = Scaled(100000, 4000);
  const int kEpochs = ScaledInt(10, 3);

  Table table("E5b refresh policy under churn (session 600s, 600s run) — "
              "accuracy vs maintenance cost",
              {"policy", "period_s", "refreshes", "mean_ks", "staleness_s",
               "total_msgs"});

  struct PolicyCase {
    const char* name;
    double period;
    bool incremental;
  };
  const std::vector<PolicyCase> policies = {
      PolicyCase{"full", 120.0, false}, PolicyCase{"full", 30.0, false},
      PolicyCase{"incremental25%", 30.0, true}};
  table.AddRows(ParallelRows<std::vector<std::string>>(
      policies.size(), [&](size_t row) {
        const PolicyCase& pc = policies[row];
        auto env = BuildEnv(
            kPeers,
            std::make_unique<TruncatedNormalDistribution>(0.5, 0.15),
            kItems, 131);
        ChurnOptions copts;
        copts.mean_session_seconds = 600.0;
        copts.stabilize_interval_seconds = 30.0;
        ChurnProcess churn(env->ring.get(), copts);
        churn.Start();

        DdeOptions dopts;
        dopts.num_probes = 256;
        MaintenanceOptions mopts;
        mopts.refresh_period_seconds = pc.period;
        mopts.incremental = pc.incremental;
        EstimateMaintainer maintainer(env->ring.get(), dopts, mopts);
        Rng rng(7);
        const uint64_t msgs_before = env->net->counters().messages;
        (void)maintainer.Start(*env->ring->RandomAliveNode(rng));

        // Sample the maintained estimate every 60 virtual seconds.
        double ks_sum = 0.0;
        int ks_n = 0;
        for (int epoch = 1; epoch <= kEpochs; ++epoch) {
          env->net->events().RunUntil(epoch * 60.0);
          if (maintainer.current().has_value()) {
            ks_sum +=
                CompareCdfToTruth(maintainer.current()->cdf, *env->dist).ks;
            ++ks_n;
          }
        }
        // Churn traffic is charged to the same network; subtract an
        // identical churn-only run? Simpler: report total incl. churn,
        // comparable across policies because the churn process is seeded
        // identically.
        const uint64_t total = env->net->counters().messages - msgs_before;
        return std::vector<std::string>{
            pc.name, Fmt("%.0f", pc.period),
            Fmt("%llu", (unsigned long long)maintainer.refreshes()),
            Fmt("%.4f", ks_n ? ks_sum / ks_n : 1.0),
            Fmt("%.0f", maintainer.StalenessSeconds()),
            Fmt("%llu", (unsigned long long)total)};
      }));
  table.Print();
}

}  // namespace
}  // namespace ringdde::bench

int main() {
  ringdde::bench::BenchRun run("e5_churn");
  ringdde::bench::RunChurnAccuracy();
  ringdde::bench::RunRefreshPolicies();
  return 0;
}
