#include "bench_reporter.h"

#include <cstdio>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "common/thread_pool.h"

namespace ringdde::bench {

namespace {

/// Escapes a string for embedding in a JSON string literal. Table cells are
/// printf-formatted numbers and short labels, so only the basics matter.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void WriteStringArray(std::FILE* f, const std::vector<std::string>& v) {
  std::fputc('[', f);
  for (size_t i = 0; i < v.size(); ++i) {
    std::fprintf(f, "%s\"%s\"", i ? ", " : "", JsonEscape(v[i]).c_str());
  }
  std::fputc(']', f);
}

}  // namespace

BenchReporter& BenchReporter::Global() {
  static BenchReporter* reporter = new BenchReporter();
  return *reporter;
}

void BenchReporter::SetExperiment(std::string name) {
  std::lock_guard<std::mutex> lock(mu_);
  experiment_ = std::move(name);
  start_ = std::chrono::steady_clock::now();
}

void BenchReporter::RecordTable(std::string title,
                                std::vector<std::string> columns,
                                std::vector<std::vector<std::string>> rows) {
  std::lock_guard<std::mutex> lock(mu_);
  tables_.push_back(
      TableData{std::move(title), std::move(columns), std::move(rows)});
}

void BenchReporter::AddCost(uint64_t messages, uint64_t bytes) {
  messages_.fetch_add(messages, std::memory_order_relaxed);
  bytes_.fetch_add(bytes, std::memory_order_relaxed);
}

void BenchReporter::AddFailureStats(uint64_t failed_probes, uint64_t retries,
                                    uint64_t timeouts) {
  failed_probes_.fetch_add(failed_probes, std::memory_order_relaxed);
  retries_.fetch_add(retries, std::memory_order_relaxed);
  timeouts_.fetch_add(timeouts, std::memory_order_relaxed);
  has_failure_stats_.store(true, std::memory_order_relaxed);
}

void BenchReporter::RecordCounter(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [n, v] : named_counters_) {
    if (n == name) {
      v = value;
      return;
    }
  }
  named_counters_.emplace_back(name, value);
}

double BenchReporter::PeakRssMb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
#if defined(__APPLE__)
  return static_cast<double>(usage.ru_maxrss) / (1024.0 * 1024.0);  // bytes
#else
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // kilobytes
#endif
#else
  return 0.0;
#endif
}

void BenchReporter::RecordPeakRssCounter(const std::string& name) {
  RecordCounter(name, PeakRssMb());
}

bool BenchReporter::WriteJson() {
  std::lock_guard<std::mutex> lock(mu_);
  if (experiment_.empty()) return false;
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start_)
          .count();
  const std::string path = "BENCH_" + experiment_ + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "BenchReporter: cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"experiment\": \"%s\",\n",
               JsonEscape(experiment_).c_str());
  std::fprintf(f, "  \"threads\": %zu,\n", ThreadPool::Global().concurrency());
  std::fprintf(f, "  \"wall_clock_ms\": %.3f,\n", wall_ms);
  std::fprintf(f, "  \"counters\": {\"messages\": %llu, \"bytes\": %llu",
               static_cast<unsigned long long>(messages_.load()),
               static_cast<unsigned long long>(bytes_.load()));
  if (has_failure_stats_.load()) {
    std::fprintf(f,
                 ", \"failed_probes\": %llu, \"retries\": %llu"
                 ", \"timeouts\": %llu",
                 static_cast<unsigned long long>(failed_probes_.load()),
                 static_cast<unsigned long long>(retries_.load()),
                 static_cast<unsigned long long>(timeouts_.load()));
  }
  for (const auto& [name, value] : named_counters_) {
    std::fprintf(f, ", \"%s\": %.3f", JsonEscape(name).c_str(), value);
  }
  std::fprintf(f, "},\n");
  std::fprintf(f, "  \"tables\": [");
  for (size_t t = 0; t < tables_.size(); ++t) {
    const TableData& td = tables_[t];
    std::fprintf(f, "%s\n    {\"title\": \"%s\",\n     \"columns\": ",
                 t ? "," : "", JsonEscape(td.title).c_str());
    WriteStringArray(f, td.columns);
    std::fprintf(f, ",\n     \"rows\": [");
    for (size_t r = 0; r < td.rows.size(); ++r) {
      std::fprintf(f, "%s\n       ", r ? "," : "");
      WriteStringArray(f, td.rows[r]);
    }
    std::fprintf(f, "%s]}", td.rows.empty() ? "" : "\n     ");
  }
  std::fprintf(f, "%s]\n}\n", tables_.empty() ? "" : "\n  ");
  const bool ok = std::fclose(f) == 0;
  // stderr, so stdout tables stay bit-identical across thread counts.
  std::fprintf(stderr, "wrote %s (%.0f ms, %zu threads)\n", path.c_str(),
               wall_ms, ThreadPool::Global().concurrency());
  return ok;
}

BenchRun::BenchRun(std::string experiment) {
  BenchReporter::Global().SetExperiment(std::move(experiment));
}

BenchRun::~BenchRun() { BenchReporter::Global().WriteJson(); }

}  // namespace ringdde::bench
