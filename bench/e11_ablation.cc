// E11 — Ablations of the design choices called out in DESIGN.md §4.
//
// (1) gap-fill policy: neighbor interpolation vs global mean vs none;
// (2) within-arc quantile shape knots on/off;
// (3) inversion-guided refinement rounds;
// (4) local summary resolution.
// Workload: Zipf(1000, 0.9) on 4096 peers — skewed enough that each knob
// visibly matters.
#include <memory>

#include "bench_util.h"
#include "ring/churn.h"

namespace ringdde::bench {
namespace {

constexpr size_t kPeers = 4096;
constexpr size_t kItems = 200000;
constexpr int kReps = 5;

void Run() {
  auto env = BuildEnv(kPeers, std::make_unique<ZipfDistribution>(1000, 0.9),
                      kItems, 301);

  Table gaps("E11a gap-fill policy (m=128)",
             {"policy", "ks", "l1_cdf", "total_rel_err"});
  for (auto [name, policy] :
       std::vector<std::pair<const char*, GapFillPolicy>>{
           {"neighbor", GapFillPolicy::kNeighborInterpolation},
           {"global_mean", GapFillPolicy::kGlobalMean},
           {"zero", GapFillPolicy::kZero}}) {
    DdeOptions opts;
    opts.num_probes = 128;
    opts.reconstruction.gap_fill = policy;
    const RepeatedResult r = RepeatDde(*env, opts, kReps, 11);
    gaps.AddRow({name, Fmt("%.4f", r.accuracy.ks),
                 Fmt("%.4f", r.accuracy.l1_cdf),
                 Fmt("%.3f", r.mean_total_error)});
  }
  gaps.Print();

  Table knots("E11b within-arc quantile shape knots (m=128)",
              {"shape_knots", "ks", "l1_cdf"});
  for (bool use : {true, false}) {
    DdeOptions opts;
    opts.num_probes = 128;
    opts.reconstruction.use_quantile_knots = use;
    const RepeatedResult r = RepeatDde(*env, opts, kReps, 13);
    knots.AddRow({use ? "on" : "off", Fmt("%.4f", r.accuracy.ks),
                  Fmt("%.4f", r.accuracy.l1_cdf)});
  }
  knots.Print();

  Table rounds("E11c inversion-guided refinement rounds (m=128 total)",
               {"rounds", "ks", "l1_cdf", "msgs"});
  for (int rr : {1, 2, 4}) {
    DdeOptions opts;
    opts.num_probes = 128;
    opts.refinement_rounds = rr;
    const RepeatedResult r = RepeatDde(*env, opts, kReps, 17);
    rounds.AddRow({Fmt("%d", rr), Fmt("%.4f", r.accuracy.ks),
                   Fmt("%.4f", r.accuracy.l1_cdf),
                   Fmt("%.0f", r.mean_messages)});
  }
  rounds.Print();

  Table quantiles("E11d local summary resolution (m=128)",
                  {"quantiles", "ks", "kbytes"});
  for (int q : {2, 4, 8, 16, 32}) {
    DdeOptions opts;
    opts.num_probes = 128;
    opts.local_quantiles = q;
    const RepeatedResult r = RepeatDde(*env, opts, kReps, 19);
    quantiles.AddRow({Fmt("%d", q), Fmt("%.4f", r.accuracy.ks),
                      Fmt("%.1f", r.mean_bytes / 1024.0)});
  }
  quantiles.Print();

  // E11e: resolving covered probe targets locally is free accuracy-wise on
  // a stable ring but trusts possibly-stale arcs under churn.
  Table covered("E11e covered-target local resolution (m=256, n=1024, "
                "Normal(0.5,0.15), mean session 60s)",
                {"network", "resolve_covered", "ks", "msgs",
                 "peers_probed"});
  for (bool churned : {false, true}) {
    for (bool resolve : {true, false}) {
      auto env2 = BuildEnv(
          1024, std::make_unique<TruncatedNormalDistribution>(0.5, 0.15),
          100000, 401);
      if (churned) {
        ChurnOptions copts;
        copts.mean_session_seconds = 60.0;
        copts.stabilize_interval_seconds = 30.0;
        ChurnProcess churn(env2->ring.get(), copts);
        churn.Start();
        env2->net->events().RunUntil(300.0);
      }
      DdeOptions opts;
      opts.num_probes = 256;
      opts.resolve_covered_locally = resolve;
      const DensityEstimate e = RunDde(*env2, opts, 23);
      covered.AddRow({churned ? "churning" : "stable",
                      resolve ? "on" : "off",
                      Fmt("%.4f", CompareCdfToTruth(e.cdf, *env2->dist).ks),
                      Fmt("%llu", (unsigned long long)e.cost.messages),
                      Fmt("%zu", e.peers_probed)});
    }
  }
  covered.Print();

  // E11f: exact order-statistic summaries vs GK ε-sketch summaries.
  Table sketch("E11f summary source (m=256, Zipf(1000,0.9), n=4096)",
               {"summary_source", "ks", "l1_cdf"});
  for (double eps : {-1.0, 0.005, 0.02, 0.1}) {
    DdeOptions opts;
    opts.num_probes = 256;
    opts.use_sketch_summaries = eps > 0.0;
    if (eps > 0.0) opts.sketch_epsilon = eps;
    const RepeatedResult r = RepeatDde(*env, opts, kReps, 29);
    sketch.AddRow({eps > 0.0 ? Fmt("gk eps=%.3f", eps)
                             : std::string("exact"),
                   Fmt("%.4f", r.accuracy.ks),
                   Fmt("%.4f", r.accuracy.l1_cdf)});
  }
  sketch.Print();
}

}  // namespace
}  // namespace ringdde::bench

int main() {
  ringdde::bench::Run();
  return 0;
}
