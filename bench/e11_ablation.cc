// E11 — Ablations of the design choices called out in DESIGN.md §4.
//
// (1) gap-fill policy: neighbor interpolation vs global mean vs none;
// (2) within-arc quantile shape knots on/off;
// (3) inversion-guided refinement rounds;
// (4) local summary resolution.
// Workload: Zipf(1000, 0.9) on 4096 peers — skewed enough that each knob
// visibly matters.
//
// All sub-tables ablate independent knobs against the same deployment
// recipe, so their rows run concurrently on the global thread pool
// against private Env replicas.
#include <memory>

#include "bench_util.h"
#include "ring/churn.h"

namespace ringdde::bench {
namespace {

void Run() {
  const size_t kPeers = Scaled(4096, 128);
  const size_t kItems = Scaled(200000, 5000);
  const int kReps = ScaledInt(5, 2);

  auto env = BuildEnv(kPeers, std::make_unique<ZipfDistribution>(1000, 0.9),
                      kItems, 301);

  Table gaps("E11a gap-fill policy (m=128)",
             {"policy", "ks", "l1_cdf", "total_rel_err"});
  const std::vector<std::pair<const char*, GapFillPolicy>> policies{
      {"neighbor", GapFillPolicy::kNeighborInterpolation},
      {"global_mean", GapFillPolicy::kGlobalMean},
      {"zero", GapFillPolicy::kZero}};
  gaps.AddRows(ParallelRows<std::vector<std::string>>(
      policies.size(), [&](size_t row) {
        std::unique_ptr<Env> storage;
        Env& e = RowEnv(*env, storage);
        DdeOptions opts;
        opts.num_probes = 128;
        opts.reconstruction.gap_fill = policies[row].second;
        const RepeatedResult r = RepeatDde(e, opts, kReps, 11);
        return std::vector<std::string>{
            policies[row].first, Fmt("%.4f", r.accuracy.ks),
            Fmt("%.4f", r.accuracy.l1_cdf),
            Fmt("%.3f", r.mean_total_error)};
      }));
  gaps.Print();

  Table knots("E11b within-arc quantile shape knots (m=128)",
              {"shape_knots", "ks", "l1_cdf"});
  knots.AddRows(ParallelRows<std::vector<std::string>>(2, [&](size_t row) {
    const bool use = row == 0;
    std::unique_ptr<Env> storage;
    Env& e = RowEnv(*env, storage);
    DdeOptions opts;
    opts.num_probes = 128;
    opts.reconstruction.use_quantile_knots = use;
    const RepeatedResult r = RepeatDde(e, opts, kReps, 13);
    return std::vector<std::string>{use ? "on" : "off",
                                    Fmt("%.4f", r.accuracy.ks),
                                    Fmt("%.4f", r.accuracy.l1_cdf)};
  }));
  knots.Print();

  Table rounds("E11c inversion-guided refinement rounds (m=128 total)",
               {"rounds", "ks", "l1_cdf", "msgs"});
  const std::vector<int> refine_rounds{1, 2, 4};
  rounds.AddRows(ParallelRows<std::vector<std::string>>(
      refine_rounds.size(), [&](size_t row) {
        std::unique_ptr<Env> storage;
        Env& e = RowEnv(*env, storage);
        DdeOptions opts;
        opts.num_probes = 128;
        opts.refinement_rounds = refine_rounds[row];
        const RepeatedResult r = RepeatDde(e, opts, kReps, 17);
        return std::vector<std::string>{
            Fmt("%d", refine_rounds[row]), Fmt("%.4f", r.accuracy.ks),
            Fmt("%.4f", r.accuracy.l1_cdf), Fmt("%.0f", r.mean_messages)};
      }));
  rounds.Print();

  Table quantiles("E11d local summary resolution (m=128)",
                  {"quantiles", "ks", "kbytes"});
  const std::vector<int> resolutions{2, 4, 8, 16, 32};
  quantiles.AddRows(ParallelRows<std::vector<std::string>>(
      resolutions.size(), [&](size_t row) {
        std::unique_ptr<Env> storage;
        Env& e = RowEnv(*env, storage);
        DdeOptions opts;
        opts.num_probes = 128;
        opts.local_quantiles = resolutions[row];
        const RepeatedResult r = RepeatDde(e, opts, kReps, 19);
        return std::vector<std::string>{Fmt("%d", resolutions[row]),
                                        Fmt("%.4f", r.accuracy.ks),
                                        Fmt("%.1f", r.mean_bytes / 1024.0)};
      }));
  quantiles.Print();

  // E11e: resolving covered probe targets locally is free accuracy-wise on
  // a stable ring but trusts possibly-stale arcs under churn. Each cell is
  // a self-contained deployment (the churned ones mutate their ring).
  const size_t kChurnPeers = Scaled(1024, 128);
  const size_t kChurnItems = Scaled(100000, 4000);
  Table covered(Fmt("E11e covered-target local resolution (m=256, n=%zu, "
                    "Normal(0.5,0.15), mean session 60s)",
                    kChurnPeers),
                {"network", "resolve_covered", "ks", "msgs",
                 "peers_probed"});
  struct CoveredCase {
    bool churned;
    bool resolve;
  };
  const std::vector<CoveredCase> cases{
      {false, true}, {false, false}, {true, true}, {true, false}};
  covered.AddRows(ParallelRows<std::vector<std::string>>(
      cases.size(), [&](size_t row) {
        const auto [churned, resolve] = cases[row];
        auto env2 = BuildEnv(
            kChurnPeers,
            std::make_unique<TruncatedNormalDistribution>(0.5, 0.15),
            kChurnItems, 401);
        if (churned) {
          ChurnOptions copts;
          copts.mean_session_seconds = 60.0;
          copts.stabilize_interval_seconds = 30.0;
          ChurnProcess churn(env2->ring.get(), copts);
          churn.Start();
          env2->net->events().RunUntil(300.0);
        }
        DdeOptions opts;
        opts.num_probes = 256;
        opts.resolve_covered_locally = resolve;
        const DensityEstimate e = RunDde(*env2, opts, 23);
        return std::vector<std::string>{
            churned ? "churning" : "stable", resolve ? "on" : "off",
            Fmt("%.4f", CompareCdfToTruth(e.cdf, *env2->dist).ks),
            Fmt("%llu", (unsigned long long)e.cost.messages),
            Fmt("%zu", e.peers_probed)};
      }));
  covered.Print();

  // E11f: exact order-statistic summaries vs GK ε-sketch summaries.
  Table sketch(Fmt("E11f summary source (m=256, Zipf(1000,0.9), n=%zu)",
                   kPeers),
               {"summary_source", "ks", "l1_cdf"});
  const std::vector<double> epsilons{-1.0, 0.005, 0.02, 0.1};
  sketch.AddRows(ParallelRows<std::vector<std::string>>(
      epsilons.size(), [&](size_t row) {
        const double eps = epsilons[row];
        std::unique_ptr<Env> storage;
        Env& e = RowEnv(*env, storage);
        DdeOptions opts;
        opts.num_probes = 256;
        opts.use_sketch_summaries = eps > 0.0;
        if (eps > 0.0) opts.sketch_epsilon = eps;
        const RepeatedResult r = RepeatDde(e, opts, kReps, 29);
        return std::vector<std::string>{
            eps > 0.0 ? Fmt("gk eps=%.3f", eps) : std::string("exact"),
            Fmt("%.4f", r.accuracy.ks), Fmt("%.4f", r.accuracy.l1_cdf)};
      }));
  sketch.Print();
}

}  // namespace
}  // namespace ringdde::bench

int main() {
  ringdde::bench::BenchRun run("e11_ablation");
  ringdde::bench::Run();
  return 0;
}
