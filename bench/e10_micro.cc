// E10 — Microbenchmarks of the core operations (google-benchmark).
//
// Throughput/latency of the building blocks: overlay lookups, local
// summary computation, global CDF reconstruction, inversion sampling,
// GK sketch maintenance, and KDE evaluation.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <memory>

#include "bench_util.h"
#include "core/global_cdf.h"
#include "core/inversion_sampler.h"
#include "core/probe.h"
#include "stats/gk_sketch.h"
#include "stats/kde.h"

namespace ringdde::bench {
namespace {

// ---------------------------------------------------------------------------
// Kernel microbenchmarks: the fused accuracy report and the snapshot-based
// StabilizeAll, each against a legacy-shaped baseline, so the before/after of
// the two rewrites stays measurable in-tree.
// ---------------------------------------------------------------------------

/// A ~`knots`-knot piecewise-linear estimate of `dist` (the shape an
/// estimator's stitched global CDF has after Resampled()).
PiecewiseLinearCdf BuildEstimate(const Distribution& dist, size_t knots,
                                 uint64_t seed) {
  Rng rng(seed);
  std::vector<double> samples;
  samples.reserve(knots * 4);
  for (size_t i = 0; i < knots * 4; ++i) samples.push_back(dist.Sample(rng));
  auto cdf = PiecewiseLinearCdf::FromSamples(std::move(samples));
  if (!cdf.ok()) std::abort();
  return cdf.value().Resampled(knots);
}

/// The pre-fusion CompareCdfToTruth shape: five independent passes, each
/// re-evaluating both functions through std::function indirection and a
/// binary search per point, plus the knot-refinement KS pass.
AccuracyReport LegacyCompareCdfToTruth(const PiecewiseLinearCdf& estimate,
                                       const Distribution& truth, int grid) {
  const RealFn est_cdf = [&](double x) { return estimate.Evaluate(x); };
  const RealFn est_pdf = [&](double x) { return estimate.DensityAt(x); };
  const RealFn true_cdf = [&](double x) { return truth.Cdf(x); };
  const RealFn true_pdf = [&](double x) { return truth.Pdf(x); };
  std::vector<double> knot_xs;
  knot_xs.reserve(estimate.knots().size());
  for (const auto& k : estimate.knots()) knot_xs.push_back(k.x);
  AccuracyReport r;
  r.ks = SupDistance(est_cdf, true_cdf, 0.0, 1.0, grid, knot_xs);
  r.l1_cdf = L1Distance(est_cdf, true_cdf, 0.0, 1.0, grid);
  r.l2_cdf = L2Distance(est_cdf, true_cdf, 0.0, 1.0, grid);
  r.l1_pdf = L1Distance(est_pdf, true_pdf, 0.0, 1.0, grid);
  return r;
}

void BM_InsertDatasetBulk(benchmark::State& state) {
  auto env = BuildEnv(4096, std::make_unique<UniformDistribution>(), 0, 77);
  Rng rng(78);
  std::vector<double> keys;
  keys.reserve(100000);
  for (int i = 0; i < 100000; ++i) keys.push_back(rng.UniformDouble());
  for (auto _ : state) {
    state.PauseTiming();
    auto fresh = env->Replicate();  // keys must land on an empty deployment
    state.ResumeTiming();
    fresh->ring->InsertDatasetBulk(keys);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(keys.size()));
}
BENCHMARK(BM_InsertDatasetBulk)->Unit(benchmark::kMillisecond);

void BM_AccuracyReportFused(benchmark::State& state) {
  const TruncatedNormalDistribution truth(0.5, 0.15);
  const PiecewiseLinearCdf est = BuildEstimate(truth, 256, 21);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CompareCdfToTruth(est, truth, 2048));
  }
}
BENCHMARK(BM_AccuracyReportFused);

void BM_AccuracyReportLegacy(benchmark::State& state) {
  const TruncatedNormalDistribution truth(0.5, 0.15);
  const PiecewiseLinearCdf est = BuildEstimate(truth, 256, 21);
  for (auto _ : state) {
    benchmark::DoNotOptimize(LegacyCompareCdfToTruth(est, truth, 2048));
  }
}
BENCHMARK(BM_AccuracyReportLegacy);

void BM_StabilizeAllSnapshotSerial(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto env = BuildEnv(n, std::make_unique<UniformDistribution>(), 0, 31);
  ThreadPool serial(0);
  for (auto _ : state) {
    env->ring->StabilizeAll(&serial);
  }
}
BENCHMARK(BM_StabilizeAllSnapshotSerial)
    ->Arg(1024)
    ->Arg(10240)
    ->Arg(102400)
    ->Unit(benchmark::kMillisecond);

void BM_StabilizeAllSnapshotParallel(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto env = BuildEnv(n, std::make_unique<UniformDistribution>(), 0, 31);
  for (auto _ : state) {
    env->ring->StabilizeAll();  // global pool (RINGDDE_THREADS)
  }
}
BENCHMARK(BM_StabilizeAllSnapshotParallel)
    ->Arg(1024)
    ->Arg(10240)
    ->Arg(102400)
    ->Unit(benchmark::kMillisecond);

void BM_StabilizeAllLegacy(benchmark::State& state) {
  // The pre-snapshot shape: one StabilizeNode per alive node, each walking
  // the std::map membership index per successor-list entry and per finger.
  const size_t n = static_cast<size_t>(state.range(0));
  auto env = BuildEnv(n, std::make_unique<UniformDistribution>(), 0, 31);
  const auto addrs = env->ring->AliveAddrs();
  for (auto _ : state) {
    for (NodeAddr a : addrs) env->ring->StabilizeNode(a);
  }
}
BENCHMARK(BM_StabilizeAllLegacy)
    ->Arg(1024)
    ->Arg(10240)
    ->Arg(102400)
    ->Unit(benchmark::kMillisecond);

void BM_ChordLookup(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto env = BuildEnv(n, std::make_unique<UniformDistribution>(), 0, 1);
  Rng rng(2);
  const auto addrs = env->ring->AliveAddrs();
  for (auto _ : state) {
    const NodeAddr from = addrs[rng.UniformU64(addrs.size())];
    auto owner = env->ring->Lookup(from, RingId(rng.NextU64()));
    benchmark::DoNotOptimize(owner);
  }
}
BENCHMARK(BM_ChordLookup)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_ProbeWithSummary(benchmark::State& state) {
  auto env =
      BuildEnv(4096, std::make_unique<ZipfDistribution>(1000, 0.9), 200000,
               3);
  CdfProber prober(env->ring.get());
  Rng rng(4);
  const NodeAddr q = env->ring->AliveAddrs()[0];
  for (auto _ : state) {
    auto s = prober.Probe(q, RingId(rng.NextU64()));
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_ProbeWithSummary);

void BM_ReconstructGlobalCdf(benchmark::State& state) {
  const size_t m = static_cast<size_t>(state.range(0));
  auto env =
      BuildEnv(4096, std::make_unique<ZipfDistribution>(1000, 0.9), 200000,
               5);
  CdfProber prober(env->ring.get());
  Rng rng(6);
  std::vector<LocalSummary> summaries;
  prober.ProbeUniform(env->ring->AliveAddrs()[0], m, rng, &summaries);
  for (auto _ : state) {
    auto r = ReconstructGlobalCdf(summaries);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(summaries.size()));
}
BENCHMARK(BM_ReconstructGlobalCdf)->Arg(64)->Arg(256)->Arg(1024);

void BM_FullEstimation(benchmark::State& state) {
  const size_t m = static_cast<size_t>(state.range(0));
  auto env =
      BuildEnv(4096, std::make_unique<ZipfDistribution>(1000, 0.9), 200000,
               7);
  uint64_t seed = 1;
  for (auto _ : state) {
    DdeOptions opts;
    opts.num_probes = m;
    const DensityEstimate e = RunDde(*env, opts, seed++);
    benchmark::DoNotOptimize(e);
  }
}
BENCHMARK(BM_FullEstimation)->Arg(64)->Arg(256);

void BM_InversionSampling(benchmark::State& state) {
  auto env =
      BuildEnv(1024, std::make_unique<ZipfDistribution>(1000, 0.9), 100000,
               8);
  DdeOptions opts;
  opts.num_probes = 256;
  const DensityEstimate e = RunDde(*env, opts, 9);
  InversionSampler sampler(&e.cdf);
  Rng rng(10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.Sample(rng));
  }
}
BENCHMARK(BM_InversionSampling);

void BM_GkSketchAdd(benchmark::State& state) {
  Rng rng(11);
  GkSketch sketch(0.01);
  for (auto _ : state) {
    sketch.Add(rng.UniformDouble());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GkSketchAdd);

void BM_GkSketchQuantile(benchmark::State& state) {
  Rng rng(12);
  GkSketch sketch(0.01);
  for (int i = 0; i < 100000; ++i) sketch.Add(rng.UniformDouble());
  double p = 0.0;
  for (auto _ : state) {
    p += 0.1;
    if (p > 1.0) p = 0.05;
    benchmark::DoNotOptimize(sketch.Quantile(p));
  }
}
BENCHMARK(BM_GkSketchQuantile);

void BM_KdePdf(benchmark::State& state) {
  Rng rng(13);
  std::vector<double> xs;
  for (int i = 0; i < 1024; ++i) xs.push_back(rng.UniformDouble());
  auto kde = KernelDensityEstimator::Build(xs, KernelType::kEpanechnikov);
  double x = 0.0;
  for (auto _ : state) {
    x += 0.001;
    if (x > 1.0) x = 0.0;
    benchmark::DoNotOptimize(kde->Pdf(x));
  }
}
BENCHMARK(BM_KdePdf);

void BM_NodeJoin(benchmark::State& state) {
  auto env =
      BuildEnv(1024, std::make_unique<UniformDistribution>(), 100000, 14);
  for (auto _ : state) {
    auto fresh = env->ring->Join(env->ring->AliveAddrs()[0]);
    benchmark::DoNotOptimize(fresh);
  }
}
BENCHMARK(BM_NodeJoin);

}  // namespace

/// Times the fused-vs-legacy kernel pairs directly (independent of any
/// --benchmark_filter) and records the measured microseconds plus speedups
/// as named counters in BENCH_e10_micro.json, so every run leaves the
/// before/after trajectory of both rewrites on disk. Under RINGDDE_SMOKE
/// the rep counts and ring size shrink to keep ctest fast.
void RecordKernelCounters() {
  using Clock = std::chrono::steady_clock;
  // Per-call microseconds, taken as the best of several batches: the
  // minimum is robust against interference from other processes, which a
  // mean over one long run is not.
  auto time_us = [](int reps, auto&& fn) {
    fn();  // warm caches (and, for StabilizeAll, converge the ring) once
    constexpr int kBatches = 5;
    const int per_batch = std::max(1, reps / kBatches);
    double best = 0.0;
    for (int b = 0; b < kBatches; ++b) {
      const auto t0 = Clock::now();
      for (int i = 0; i < per_batch; ++i) fn();
      const double us =
          std::chrono::duration<double, std::micro>(Clock::now() - t0)
              .count() /
          per_batch;
      if (b == 0 || us < best) best = us;
    }
    return best;
  };
  BenchReporter& reporter = BenchReporter::Global();

  // Accuracy report: grid=2048, ~256-knot estimate (the issue's acceptance
  // configuration). The equality check doubles as a sanity guard that the
  // fused kernel is measuring the same computation it replaced.
  {
    const TruncatedNormalDistribution truth(0.5, 0.15);
    const PiecewiseLinearCdf est = BuildEstimate(truth, 256, 21);
    const int grid = 2048;
    const AccuracyReport fused = CompareCdfToTruth(est, truth, grid);
    const AccuracyReport legacy = LegacyCompareCdfToTruth(est, truth, grid);
    if (fused.ks != legacy.ks || fused.l1_cdf != legacy.l1_cdf ||
        fused.l2_cdf != legacy.l2_cdf || fused.l1_pdf != legacy.l1_pdf) {
      std::abort();  // the fused kernel must measure the same computation
    }
    const int reps = ScaledInt(200, 5);
    const double fused_us = time_us(
        reps, [&] { benchmark::DoNotOptimize(CompareCdfToTruth(est, truth, grid)); });
    const double legacy_us = time_us(reps, [&] {
      benchmark::DoNotOptimize(LegacyCompareCdfToTruth(est, truth, grid));
    });
    reporter.RecordCounter("compare_cdf_fused_us", fused_us);
    reporter.RecordCounter("compare_cdf_legacy_us", legacy_us);
    reporter.RecordCounter("compare_cdf_speedup", legacy_us / fused_us);
  }

  // StabilizeAll at n=10k (acceptance: >= 5x serial vs legacy sweep).
  {
    const size_t n = Scaled(10240, 1024);
    auto env = BuildEnv(n, std::make_unique<UniformDistribution>(), 0, 31);
    ThreadPool serial(0);
    const auto addrs = env->ring->AliveAddrs();
    const int reps = ScaledInt(10, 2);
    const double snapshot_us =
        time_us(reps, [&] { env->ring->StabilizeAll(&serial); });
    const double parallel_us = time_us(reps, [&] { env->ring->StabilizeAll(); });
    const double legacy_us = time_us(reps, [&] {
      for (NodeAddr a : addrs) env->ring->StabilizeNode(a);
    });
    reporter.RecordCounter("stabilize_all_nodes", static_cast<double>(n));
    reporter.RecordCounter("stabilize_all_snapshot_serial_us", snapshot_us);
    reporter.RecordCounter("stabilize_all_snapshot_parallel_us", parallel_us);
    reporter.RecordCounter("stabilize_all_legacy_us", legacy_us);
    reporter.RecordCounter("stabilize_all_serial_speedup",
                           legacy_us / snapshot_us);
    reporter.RecordCounter("stabilize_all_parallel_speedup",
                           legacy_us / parallel_us);
  }
}

}  // namespace ringdde::bench

// Expanded BENCHMARK_MAIN() so the run is wrapped in a BenchRun: the
// google-benchmark output stays on stdout and the wall clock / cost
// counters land in BENCH_e10_micro.json like every other experiment.
int main(int argc, char** argv) {
  ringdde::bench::BenchRun run("e10_micro");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  ringdde::bench::RecordKernelCounters();
  benchmark::Shutdown();
  return 0;
}
