// E10 — Microbenchmarks of the core operations (google-benchmark).
//
// Throughput/latency of the building blocks: overlay lookups, local
// summary computation, global CDF reconstruction, inversion sampling,
// GK sketch maintenance, and KDE evaluation.
#include <benchmark/benchmark.h>

#include <memory>

#include "bench_util.h"
#include "core/global_cdf.h"
#include "core/inversion_sampler.h"
#include "core/probe.h"
#include "stats/gk_sketch.h"
#include "stats/kde.h"

namespace ringdde::bench {
namespace {

void BM_ChordLookup(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto env = BuildEnv(n, std::make_unique<UniformDistribution>(), 0, 1);
  Rng rng(2);
  const auto addrs = env->ring->AliveAddrs();
  for (auto _ : state) {
    const NodeAddr from = addrs[rng.UniformU64(addrs.size())];
    auto owner = env->ring->Lookup(from, RingId(rng.NextU64()));
    benchmark::DoNotOptimize(owner);
  }
}
BENCHMARK(BM_ChordLookup)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_ProbeWithSummary(benchmark::State& state) {
  auto env =
      BuildEnv(4096, std::make_unique<ZipfDistribution>(1000, 0.9), 200000,
               3);
  CdfProber prober(env->ring.get());
  Rng rng(4);
  const NodeAddr q = env->ring->AliveAddrs()[0];
  for (auto _ : state) {
    auto s = prober.Probe(q, RingId(rng.NextU64()));
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_ProbeWithSummary);

void BM_ReconstructGlobalCdf(benchmark::State& state) {
  const size_t m = static_cast<size_t>(state.range(0));
  auto env =
      BuildEnv(4096, std::make_unique<ZipfDistribution>(1000, 0.9), 200000,
               5);
  CdfProber prober(env->ring.get());
  Rng rng(6);
  std::vector<LocalSummary> summaries;
  prober.ProbeUniform(env->ring->AliveAddrs()[0], m, rng, &summaries);
  for (auto _ : state) {
    auto r = ReconstructGlobalCdf(summaries);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(summaries.size()));
}
BENCHMARK(BM_ReconstructGlobalCdf)->Arg(64)->Arg(256)->Arg(1024);

void BM_FullEstimation(benchmark::State& state) {
  const size_t m = static_cast<size_t>(state.range(0));
  auto env =
      BuildEnv(4096, std::make_unique<ZipfDistribution>(1000, 0.9), 200000,
               7);
  uint64_t seed = 1;
  for (auto _ : state) {
    DdeOptions opts;
    opts.num_probes = m;
    const DensityEstimate e = RunDde(*env, opts, seed++);
    benchmark::DoNotOptimize(e);
  }
}
BENCHMARK(BM_FullEstimation)->Arg(64)->Arg(256);

void BM_InversionSampling(benchmark::State& state) {
  auto env =
      BuildEnv(1024, std::make_unique<ZipfDistribution>(1000, 0.9), 100000,
               8);
  DdeOptions opts;
  opts.num_probes = 256;
  const DensityEstimate e = RunDde(*env, opts, 9);
  InversionSampler sampler(&e.cdf);
  Rng rng(10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.Sample(rng));
  }
}
BENCHMARK(BM_InversionSampling);

void BM_GkSketchAdd(benchmark::State& state) {
  Rng rng(11);
  GkSketch sketch(0.01);
  for (auto _ : state) {
    sketch.Add(rng.UniformDouble());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GkSketchAdd);

void BM_GkSketchQuantile(benchmark::State& state) {
  Rng rng(12);
  GkSketch sketch(0.01);
  for (int i = 0; i < 100000; ++i) sketch.Add(rng.UniformDouble());
  double p = 0.0;
  for (auto _ : state) {
    p += 0.1;
    if (p > 1.0) p = 0.05;
    benchmark::DoNotOptimize(sketch.Quantile(p));
  }
}
BENCHMARK(BM_GkSketchQuantile);

void BM_KdePdf(benchmark::State& state) {
  Rng rng(13);
  std::vector<double> xs;
  for (int i = 0; i < 1024; ++i) xs.push_back(rng.UniformDouble());
  auto kde = KernelDensityEstimator::Build(xs, KernelType::kEpanechnikov);
  double x = 0.0;
  for (auto _ : state) {
    x += 0.001;
    if (x > 1.0) x = 0.0;
    benchmark::DoNotOptimize(kde->Pdf(x));
  }
}
BENCHMARK(BM_KdePdf);

void BM_NodeJoin(benchmark::State& state) {
  auto env =
      BuildEnv(1024, std::make_unique<UniformDistribution>(), 100000, 14);
  for (auto _ : state) {
    auto fresh = env->ring->Join(env->ring->AliveAddrs()[0]);
    benchmark::DoNotOptimize(fresh);
  }
}
BENCHMARK(BM_NodeJoin);

}  // namespace
}  // namespace ringdde::bench

// Expanded BENCHMARK_MAIN() so the run is wrapped in a BenchRun: the
// google-benchmark output stays on stdout and the wall clock / cost
// counters land in BENCH_e10_micro.json like every other experiment.
int main(int argc, char** argv) {
  ringdde::bench::BenchRun run("e10_micro");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
