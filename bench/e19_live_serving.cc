// E19 — Live estimate serving over epoch-rotated snapshots.
//
// The epoch engine decouples estimate serving from ring maintenance: the
// mutator thread applies churn and publishes immutable EpochViews while
// reader threads drain queries against their pinned epoch, re-pinning only
// when the head sequence advances. This experiment measures what that
// sustains — estimates/sec at 1/4/16 reader threads under E5-style churn —
// and what it costs in freshness: staleness (how many epochs behind head an
// answer completed) and KS drift against the frozen-ring oracle.
//
// Before any serving, the quiescent-ring gate re-checks at every measured
// thread count that the epoch engine reproduces the PR4 shared-snapshot
// engine bit for bit (the same SameResult predicate e17 uses, abort on
// divergence): rotation must cost exactness nothing when nothing mutates.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "ring/churn.h"

namespace ringdde::bench {
namespace {

using Clock = std::chrono::steady_clock;

bool SameResult(const RepeatedResult& a, const RepeatedResult& b) {
  return a.accuracy.ks == b.accuracy.ks &&
         a.accuracy.l1_cdf == b.accuracy.l1_cdf &&
         a.accuracy.l2_cdf == b.accuracy.l2_cdf &&
         a.accuracy.l1_pdf == b.accuracy.l1_pdf &&
         a.mean_messages == b.mean_messages && a.mean_hops == b.mean_hops &&
         a.mean_bytes == b.mean_bytes &&
         a.mean_total_error == b.mean_total_error &&
         a.mean_peers == b.mean_peers;
}

void Run() {
  const size_t kPeers = Scaled(1024, 128);
  const size_t kItems = Scaled(100000, 4000);
  const int kReps = ScaledInt(16, 6);
  const uint64_t kSeedBase = 1900;
  const uint64_t kEnvSeed = 29;
  const size_t kSeedCycle = 16;
  const double kServeSeconds = SmokeMode() ? 0.4 : 2.0;

  DdeOptions opts;
  opts.num_probes = Scaled(256, 32);

  const TruncatedNormalDistribution dist(0.5, 0.15);

  // ---- Quiescent gate: epoch engine == shared-snapshot engine, bit for
  // bit, at every thread count. Runtime re-check of what the concurrency
  // tests assert.
  auto env = BuildEnv(kPeers, dist.Clone(), kItems, kEnvSeed);
  SnapshotManager manager(env->ring.get());
  std::shared_ptr<const EpochView> view0 = manager.Publish();

  ThreadPool serial(0);
  const RepeatedResult reference =
      RepeatDde(*env, opts, kReps, kSeedBase, &serial);

  const std::vector<size_t> concurrency =
      SmokeMode() ? std::vector<size_t>{1, 4} : std::vector<size_t>{1, 4, 16};
  for (size_t threads : concurrency) {
    ThreadPool pool(threads - 1);
    const RepeatedResult epoch =
        RepeatDdeEpoch(*env, *view0, opts, kReps, kSeedBase, &pool);
    if (!SameResult(epoch, reference)) {
      std::fprintf(stderr,
                   "E19: epoch engine diverged from live engine at %zu "
                   "threads on a quiescent ring\n",
                   threads);
      std::abort();
    }
  }
  BenchReporter::Global().RecordCounter("quiescent_bit_identical", 1.0);

  // ---- Frozen-ring oracle: one estimate per seed-cycle index against the
  // initial epoch. Live serving replays exactly these seeds, so each served
  // estimate has a frozen-ring answer to diff against; the calibration also
  // yields the mean per-query latency the publisher paces itself by.
  std::vector<PiecewiseLinearCdf> oracle;
  oracle.reserve(kSeedCycle);
  double oracle_seconds = 0.0;
  for (size_t i = 0; i < kSeedCycle; ++i) {
    const Clock::time_point t0 = Clock::now();
    DensityEstimate e =
        RunDdeEpoch(*view0, opts, kSeedBase + static_cast<uint64_t>(i) * 7919);
    oracle_seconds +=
        std::chrono::duration<double>(Clock::now() - t0).count();
    oracle.push_back(std::move(e.cdf));
  }
  const double mean_query_seconds =
      oracle_seconds / static_cast<double>(kSeedCycle);
  // A reader finishes its pinned query within ~1 publish interval when the
  // interval covers a few query latencies — that is what keeps p99
  // staleness within the ≤ 2 epoch contract. The floor absorbs OS
  // scheduling jitter when queries are far faster than a timeslice.
  const double publish_interval =
      std::max(3.0 * mean_query_seconds, 5e-3);

  Table table(
      Fmt("E19 live serving — n=%zu, N=%zu, m=%zu, cycle=%zu", kPeers,
          kItems, opts.num_probes, kSeedCycle),
      {"session_s", "threads", "est_per_sec", "epochs", "stale_p50",
       "stale_p99", "stale_max", "ks_vs_oracle", "reuse_frac"});

  const std::vector<double> sessions =
      SmokeMode() ? std::vector<double>{600.0}
                  : std::vector<double>{600.0, 60.0};
  double best_eps = 0.0;
  double worst_stale_p50 = 0.0;
  double worst_stale_p99 = 0.0;
  double worst_ks = 0.0;
  uint64_t total_estimates = 0;
  for (double session : sessions) {
    for (size_t threads : concurrency) {
      // Fresh deployment from the SAME recipe: its first epoch equals the
      // oracle's ring state, so the per-seed oracle CDFs stay valid and
      // measured KS is pure churn drift.
      auto live = BuildEnv(kPeers, dist.Clone(), kItems, kEnvSeed);
      ChurnOptions copts;
      copts.mean_session_seconds = session;
      ChurnProcess churn(live->ring.get(), copts);
      churn.Start();

      SnapshotManager mgr(live->ring.get());
      mgr.Publish();

      ServingEngine::Options sopts;
      sopts.dde = opts;
      sopts.threads = static_cast<int>(threads);
      sopts.seed_base = kSeedBase;
      sopts.seed_cycle = kSeedCycle;
      sopts.oracle_cdfs = &oracle;
      ServingEngine engine(&mgr, sopts);
      engine.Start();

      // Mutator loop (this thread): advance virtual churn time a slice per
      // tick, publish the new epoch, then pace the next rotation against
      // actual drain progress. Waiting until every reader completed two
      // queries past its pre-publish mark guarantees each reader both
      // finished the query that may have pinned the superseded epoch AND
      // re-pinned the new head — that is what bounds p99 staleness ≤ 2
      // even when the crew oversubscribes the machine and threads stall
      // mid-query. A deadline keeps the publisher live if a reader is
      // starved outright (the staleness counters then show the miss).
      const double dv =
          2.0 * session / static_cast<double>(kPeers);  // ~2 departures/epoch
      const Clock::time_point serve_end =
          Clock::now() + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(kServeSeconds));
      uint64_t epochs_published = 0;
      while (Clock::now() < serve_end) {
        live->net->events().RunUntil(live->net->Now() + dv);
        const std::vector<uint64_t> marks = engine.Completions();
        mgr.Publish();
        ++epochs_published;
        std::this_thread::sleep_for(
            std::chrono::duration<double>(publish_interval));
        const Clock::time_point gate_deadline =
            Clock::now() + std::chrono::milliseconds(100);
        for (;;) {
          const std::vector<uint64_t> done = engine.Completions();
          bool drained = true;
          for (size_t w = 0; w < done.size(); ++w) {
            if (done[w] < marks[w] + 2) {
              drained = false;
              break;
            }
          }
          if (drained || Clock::now() >= gate_deadline ||
              Clock::now() >= serve_end) {
            break;
          }
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
      }
      const ServingEngine::Stats stats = engine.Stop();

      const SnapshotManager::Stats& ms = mgr.stats();
      const double captures =
          static_cast<double>(ms.node_views_built + ms.node_views_reused);
      const double reuse_frac =
          captures > 0.0
              ? static_cast<double>(ms.node_views_reused) / captures
              : 0.0;

      table.AddRow({Fmt("%.0f", session), Fmt("%zu", threads),
                    Fmt("%.1f", stats.estimates_per_sec),
                    Fmt("%llu", (unsigned long long)epochs_published),
                    Fmt("%.0f", stats.staleness_p50),
                    Fmt("%.0f", stats.staleness_p99),
                    Fmt("%.0f", stats.staleness_max),
                    Fmt("%.4f", stats.mean_ks_vs_oracle),
                    Fmt("%.3f", reuse_frac)});

      best_eps = std::max(best_eps, stats.estimates_per_sec);
      worst_stale_p50 = std::max(worst_stale_p50, stats.staleness_p50);
      worst_stale_p99 = std::max(worst_stale_p99, stats.staleness_p99);
      worst_ks = std::max(worst_ks, stats.mean_ks_vs_oracle);
      total_estimates += stats.estimates;

      if (mgr.live_views() > threads + 1) {
        std::fprintf(stderr,
                     "E19: %zu live views outlived %zu readers — epoch "
                     "reclamation is leaking\n",
                     mgr.live_views(), threads);
        std::abort();
      }
      if (stats.staleness_p99 > 2.0) {
        // Freshness contract miss: publish pacing was outrun (loaded
        // machine, tiny smoke params). Report it loudly but keep the data —
        // the counter below is what trend tracking watches.
        std::fprintf(stderr,
                     "E19: WARNING p99 staleness %.0f epochs exceeds the "
                     "<= 2 contract (session=%.0f, threads=%zu)\n",
                     stats.staleness_p99, session, threads);
      }
    }
  }
  table.Print();

  BenchReporter& rep = BenchReporter::Global();
  rep.RecordCounter("estimates_per_sec", best_eps);
  rep.RecordCounter("served_estimates", static_cast<double>(total_estimates));
  rep.RecordCounter("staleness_epochs_p50", worst_stale_p50);
  rep.RecordCounter("staleness_epochs_p99", worst_stale_p99);
  rep.RecordCounter("ks_vs_oracle", worst_ks);
  rep.RecordCounter("publish_interval_ms", 1e3 * publish_interval);
  ReportDeploymentCacheCounters();
  rep.RecordPeakRssCounter("peak_rss_mb");
}

}  // namespace
}  // namespace ringdde::bench

int main() {
  ringdde::bench::BenchRun run("e19_live_serving");
  ringdde::bench::Run();
  return 0;
}
