// E1 — Estimation accuracy versus probe budget m, per workload.
//
// Reconstructs the paper's headline accuracy/cost curve: the
// distribution-free estimator's KS error shrinks with the number of
// sampled peers on EVERY workload, while the item-sampling baselines hit
// bias floors that depend on the data's shape. Expected shape: DDE error
// falls roughly as 1/sqrt(m) (DKW column), B1 flattens out on skewed data,
// B2 tracks truth but at a bias floor, B5 only wins when the data really
// is normal.
//
// Rows (one per probe budget) are independent trials and run concurrently
// on the global thread pool, each against a private Env replica; see
// bench_util.h for the determinism contract.
#include <memory>

#include "baselines/parametric.h"
#include "baselines/random_walk_sampler.h"
#include "baselines/uniform_peer_sampler.h"
#include "bench_util.h"
#include "stats/bounds.h"

namespace ringdde::bench {
namespace {

double MeanKs(const std::vector<double>& v) {
  double s = 0.0;
  for (double x : v) s += x;
  return v.empty() ? 0.0 : s / static_cast<double>(v.size());
}

void RunWorkload(std::unique_ptr<Distribution> dist) {
  const size_t kPeers = Scaled(4096, 128);
  const size_t kItems = Scaled(200000, 5000);
  const int kReps = ScaledInt(3, 2);
  const std::vector<size_t> budgets =
      SmokeMode() ? std::vector<size_t>{16, 64}
                  : std::vector<size_t>{16, 32, 64, 128, 256, 512, 1024};

  const std::string name = dist->Name();
  auto env = BuildEnv(kPeers, std::move(dist), kItems, /*seed=*/17);

  Table table("E1 accuracy vs probe budget — workload " + name +
                  Fmt(", n=%zu peers, N=%zu items, %d reps", kPeers, kItems,
                      kReps),
              {"m", "dde_ks", "dde_l1cdf", "dde_msgs", "b1_peer_ks",
               "b2_walk_ks", "b5_param_ks", "dkw_eps(d=.05)"});

  table.AddRows(ParallelRows<std::vector<std::string>>(
      budgets.size(), [&](size_t row) {
        const size_t m = budgets[row];
        std::unique_ptr<Env> storage;
        Env& e = RowEnv(*env, storage);

        DdeOptions opts;
        opts.num_probes = m;
        const RepeatedResult dde = RepeatDde(e, opts, kReps, 1000 + m);

        std::vector<double> b1_ks, b2_ks, b5_ks;
        for (int r = 0; r < kReps; ++r) {
          Rng rng(42 + r);
          const NodeAddr q = *e.ring->RandomAliveNode(rng);

          UniformPeerSamplerOptions b1o;
          b1o.num_peers = m;
          b1o.seed = 7 + r;
          UniformPeerSampler b1(e.ring.get(), b1o);
          if (auto est = b1.Estimate(q); est.ok()) {
            b1_ks.push_back(CompareCdfToTruth(est->cdf, *e.dist).ks);
          }

          RandomWalkSamplerOptions b2o;
          b2o.num_samples = m;
          b2o.seed = 11 + r;
          RandomWalkSampler b2(e.ring.get(), b2o);
          if (auto est = b2.Estimate(q); est.ok()) {
            b2_ks.push_back(CompareCdfToTruth(est->cdf, *e.dist).ks);
          }

          ParametricFitOptions b5o;
          b5o.num_peers = m;
          b5o.seed = 13 + r;
          ParametricFitEstimator b5(e.ring.get(), b5o);
          if (auto est = b5.Estimate(q); est.ok()) {
            b5_ks.push_back(
                CompareCdfToTruth(est->ToPiecewiseCdf(), *e.dist).ks);
          }
        }

        return std::vector<std::string>{
            Fmt("%zu", m), Fmt("%.4f", dde.accuracy.ks),
            Fmt("%.4f", dde.accuracy.l1_cdf), Fmt("%.0f", dde.mean_messages),
            Fmt("%.4f", MeanKs(b1_ks)), Fmt("%.4f", MeanKs(b2_ks)),
            Fmt("%.4f", MeanKs(b5_ks)), Fmt("%.4f", DkwEpsilon(m, 0.05))};
      }));
  table.Print();
}

}  // namespace
}  // namespace ringdde::bench

int main() {
  ringdde::bench::BenchRun run("e1_accuracy_vs_samples");
  for (auto& dist : ringdde::StandardBenchmarkDistributions()) {
    ringdde::bench::RunWorkload(std::move(dist));
  }
  return 0;
}
