// E1 — Estimation accuracy versus probe budget m, per workload.
//
// Reconstructs the paper's headline accuracy/cost curve: the
// distribution-free estimator's KS error shrinks with the number of
// sampled peers on EVERY workload, while the item-sampling baselines hit
// bias floors that depend on the data's shape. Expected shape: DDE error
// falls roughly as 1/sqrt(m) (DKW column), B1 flattens out on skewed data,
// B2 tracks truth but at a bias floor, B5 only wins when the data really
// is normal.
#include <memory>

#include "baselines/parametric.h"
#include "baselines/random_walk_sampler.h"
#include "baselines/uniform_peer_sampler.h"
#include "bench_util.h"
#include "stats/bounds.h"

namespace ringdde::bench {
namespace {

constexpr size_t kPeers = 4096;
constexpr size_t kItems = 200000;
constexpr int kReps = 3;

double MeanKs(const std::vector<double>& v) {
  double s = 0.0;
  for (double x : v) s += x;
  return v.empty() ? 0.0 : s / static_cast<double>(v.size());
}

void RunWorkload(std::unique_ptr<Distribution> dist) {
  const std::string name = dist->Name();
  auto env = BuildEnv(kPeers, std::move(dist), kItems, /*seed=*/17);

  Table table("E1 accuracy vs probe budget — workload " + name +
                  Fmt(", n=%zu peers, N=%zu items, %d reps", kPeers, kItems,
                      kReps),
              {"m", "dde_ks", "dde_l1cdf", "dde_msgs", "b1_peer_ks",
               "b2_walk_ks", "b5_param_ks", "dkw_eps(d=.05)"});

  for (size_t m : {16, 32, 64, 128, 256, 512, 1024}) {
    DdeOptions opts;
    opts.num_probes = m;
    const RepeatedResult dde = RepeatDde(*env, opts, kReps, 1000 + m);

    std::vector<double> b1_ks, b2_ks, b5_ks;
    for (int r = 0; r < kReps; ++r) {
      Rng rng(42 + r);
      const NodeAddr q = *env->ring->RandomAliveNode(rng);

      UniformPeerSamplerOptions b1o;
      b1o.num_peers = m;
      b1o.seed = 7 + r;
      UniformPeerSampler b1(env->ring.get(), b1o);
      if (auto e = b1.Estimate(q); e.ok()) {
        b1_ks.push_back(CompareCdfToTruth(e->cdf, *env->dist).ks);
      }

      RandomWalkSamplerOptions b2o;
      b2o.num_samples = m;
      b2o.seed = 11 + r;
      RandomWalkSampler b2(env->ring.get(), b2o);
      if (auto e = b2.Estimate(q); e.ok()) {
        b2_ks.push_back(CompareCdfToTruth(e->cdf, *env->dist).ks);
      }

      ParametricFitOptions b5o;
      b5o.num_peers = m;
      b5o.seed = 13 + r;
      ParametricFitEstimator b5(env->ring.get(), b5o);
      if (auto e = b5.Estimate(q); e.ok()) {
        b5_ks.push_back(
            CompareCdfToTruth(e->ToPiecewiseCdf(), *env->dist).ks);
      }
    }

    table.AddRow({Fmt("%zu", m), Fmt("%.4f", dde.accuracy.ks),
                  Fmt("%.4f", dde.accuracy.l1_cdf),
                  Fmt("%.0f", dde.mean_messages), Fmt("%.4f", MeanKs(b1_ks)),
                  Fmt("%.4f", MeanKs(b2_ks)), Fmt("%.4f", MeanKs(b5_ks)),
                  Fmt("%.4f", DkwEpsilon(m, 0.05))});
  }
  table.Print();
}

}  // namespace
}  // namespace ringdde::bench

int main() {
  for (auto& dist : ringdde::StandardBenchmarkDistributions()) {
    ringdde::bench::RunWorkload(std::move(dist));
  }
  return 0;
}
