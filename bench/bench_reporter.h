#ifndef RINGDDE_BENCH_BENCH_REPORTER_H_
#define RINGDDE_BENCH_BENCH_REPORTER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace ringdde::bench {

/// Collects everything one benchmark binary produced — its tables, the
/// aggregate communication-cost counters of every estimation run, the
/// wall-clock time, and the thread count — and writes it as
/// `BENCH_<experiment>.json` next to the process's working directory, so
/// each experiment leaves a machine-readable perf trajectory alongside its
/// human-readable text tables.
///
/// Schema:
/// {
///   "experiment": "e1_accuracy_vs_samples",
///   "threads": 8,
///   "wall_clock_ms": 1234.5,
///   "counters": {"messages": 123, "bytes": 456},
///   "tables": [
///     {"title": "...", "columns": ["a", "b"], "rows": [["1", "2"]]}
///   ]
/// }
///
/// All recording entry points are thread-safe: trial tasks running on the
/// pool add their cost counters concurrently; tables are registered from
/// the main thread when they are printed.
class BenchReporter {
 public:
  /// Process-wide instance used by bench_util and the Table printer.
  static BenchReporter& Global();

  /// Names the experiment and starts the wall clock. Without a call to
  /// SetExperiment, WriteJson is a no-op (library users outside the bench
  /// binaries never accidentally drop files).
  void SetExperiment(std::string name);

  /// Registers one finished table (title, column names, row cells).
  void RecordTable(std::string title, std::vector<std::string> columns,
                   std::vector<std::vector<std::string>> rows);

  /// Adds one estimation run's communication cost to the process totals.
  void AddCost(uint64_t messages, uint64_t bytes);

  /// Adds one estimation run's fault-tolerance stats to the process totals.
  /// The "failed_probes"/"retries"/"timeouts" counters appear in the JSON
  /// only once this has been called at least once (even with all zeros), so
  /// fault-free benchmarks keep their pre-fault-layer byte-identical
  /// reports.
  void AddFailureStats(uint64_t failed_probes, uint64_t retries,
                       uint64_t timeouts);

  /// Records one named scalar counter into the JSON "counters" object
  /// (e.g. a microbenchmark's measured microseconds). Re-recording a name
  /// overwrites its value; emission preserves first-recorded order.
  void RecordCounter(const std::string& name, double value);

  /// Records the process's peak resident set size (MB, from getrusage) as
  /// counter `name`. Call at the high-water point of interest; the value is
  /// a lifetime maximum, so later calls can only report more, never less.
  void RecordPeakRssCounter(const std::string& name);

  /// Peak resident set size of this process in MB (0.0 if unavailable).
  static double PeakRssMb();

  /// Writes BENCH_<experiment>.json into the current directory. Returns
  /// false (after printing a warning) if the file cannot be written.
  bool WriteJson();

  uint64_t total_messages() const { return messages_.load(); }
  uint64_t total_bytes() const { return bytes_.load(); }

 private:
  struct TableData {
    std::string title;
    std::vector<std::string> columns;
    std::vector<std::vector<std::string>> rows;
  };

  std::mutex mu_;
  std::string experiment_;
  std::vector<TableData> tables_;
  std::vector<std::pair<std::string, double>> named_counters_;
  std::chrono::steady_clock::time_point start_;
  std::atomic<uint64_t> messages_{0};
  std::atomic<uint64_t> bytes_{0};
  std::atomic<uint64_t> failed_probes_{0};
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> timeouts_{0};
  std::atomic<bool> has_failure_stats_{false};
};

/// RAII wrapper for a bench binary's main(): names the experiment on entry
/// and writes the JSON report on scope exit.
///
///   int main() {
///     ringdde::bench::BenchRun run("e1_accuracy_vs_samples");
///     ...
///   }
struct BenchRun {
  explicit BenchRun(std::string experiment);
  ~BenchRun();
};

}  // namespace ringdde::bench

#endif  // RINGDDE_BENCH_BENCH_REPORTER_H_
