#ifndef RINGDDE_BENCH_BENCH_UTIL_H_
#define RINGDDE_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_reporter.h"
#include "common/thread_pool.h"
#include "core/density_estimator.h"
#include "data/dataset.h"
#include "data/distribution.h"
#include "ring/chord_ring.h"
#include "sim/network.h"
#include "stats/metrics.h"

namespace ringdde::bench {

/// One simulated deployment: network fabric + overlay + workload truth.
///
/// An Env is deterministic in its build recipe (peers, distribution,
/// items, seed): Replicate() rebuilds an independent, bit-identical copy,
/// which is how concurrent trials get private deployments without sharing
/// mutable simulator state (network counters, latency streams, lazily
/// sorted node stores) across threads.
struct Env {
  std::unique_ptr<Network> net;
  std::unique_ptr<ChordRing> ring;
  std::unique_ptr<Distribution> dist;
  size_t items = 0;

  // Build recipe, kept for Replicate().
  size_t peers = 0;
  uint64_t seed = 0;

  /// Rebuilds an independent deployment from the same recipe. The replica
  /// is bit-identical: same node ids, same routing state, same key
  /// placement, fresh (zeroed) cost counters.
  std::unique_ptr<Env> Replicate() const;
};

/// Builds an n-peer ring loaded with `items` draws from `dist`.
std::unique_ptr<Env> BuildEnv(size_t n, std::unique_ptr<Distribution> dist,
                              size_t items, uint64_t seed);

/// Runs one DDE estimation from a random querier; returns the estimate.
/// Aborts the process on failure (benchmarks run on healthy rings).
DensityEstimate RunDde(Env& env, const DdeOptions& options, uint64_t seed);

/// Mean accuracy and cost of `reps` independent DDE runs.
struct RepeatedResult {
  AccuracyReport accuracy;
  double mean_messages = 0.0;
  double mean_hops = 0.0;
  double mean_bytes = 0.0;
  double mean_total_error = 0.0;  ///< mean |N̂ - N| / N
  double mean_peers = 0.0;
};

/// Runs `reps` independent DDE trials and averages them. Trials run
/// concurrently on `pool` (default: the global pool), each against its own
/// Env replica; per-trial seeds depend only on (seed_base, trial index)
/// and the reduction is performed in trial order, so the result is
/// bit-identical for every thread count. Calls from inside a pool worker
/// (e.g. from a ParallelRows row task) degrade to the serial path against
/// the given env directly.
RepeatedResult RepeatDde(Env& env, DdeOptions options, int reps,
                         uint64_t seed_base, ThreadPool* pool = nullptr);

/// Runs `count` independent row tasks — `fn(row_index) -> RowT` — on the
/// pool and returns the results in row order. Row tasks must not share
/// mutable simulator state: build (or Replicate()) a private Env inside
/// the task. Determinism contract: fn is a pure function of its index, so
/// the returned vector (and any table built from it) is identical for
/// every thread count.
template <typename RowT, typename Fn>
std::vector<RowT> ParallelRows(size_t count, Fn&& fn,
                               ThreadPool* pool = nullptr) {
  std::vector<RowT> rows(count);
  ThreadPool& p = pool != nullptr ? *pool : ThreadPool::Global();
  p.ParallelFor(0, count, [&](size_t i) { rows[i] = fn(i); });
  return rows;
}

/// The Env a ParallelRows row task should run against: `base` itself when
/// the global pool is serial (no concurrent rows possible, no replica
/// cost), otherwise a private replica parked in `storage`. Either way the
/// row sees bit-identical deployment state.
Env& RowEnv(Env& base, std::unique_ptr<Env>& storage);

/// True when RINGDDE_SMOKE is set in the environment: bench binaries then
/// shrink to seconds-scale parameters so ctest can exercise every code
/// path (parallel rows, replicas, the JSON reporter) on every build.
bool SmokeMode();

/// `full` normally, `smoke` under RINGDDE_SMOKE.
size_t Scaled(size_t full, size_t smoke);
int ScaledInt(int full, int smoke);

/// Aligned table printer: emits a `# title` line, a header row, then rows,
/// tab-separated (easy to grep/plot, readable in a terminal). Print() also
/// registers the table with BenchReporter::Global() so it lands in the
/// experiment's BENCH_*.json.
class Table {
 public:
  Table(std::string title, std::vector<std::string> columns);

  /// Adds one row; cells are pre-formatted strings.
  void AddRow(std::vector<std::string> cells);

  /// Adds many pre-built rows in order (the ParallelRows hand-off).
  void AddRows(std::vector<std::vector<std::string>> rows);

  /// Prints header + rows to stdout and records the table in the global
  /// BenchReporter.
  void Print() const;

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style helper returning std::string; no length limit.
std::string Fmt(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace ringdde::bench

#endif  // RINGDDE_BENCH_BENCH_UTIL_H_
