#ifndef RINGDDE_BENCH_BENCH_UTIL_H_
#define RINGDDE_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "bench_reporter.h"
#include "common/thread_pool.h"
#include "core/density_estimator.h"
#include "data/dataset.h"
#include "data/distribution.h"
#include "ring/chord_ring.h"
#include "sim/network.h"
#include "stats/metrics.h"

namespace ringdde::bench {

/// One simulated deployment: network fabric + overlay + workload truth.
///
/// An Env is deterministic in its build recipe (peers, distribution,
/// items, seed): Replicate() rebuilds an independent, bit-identical copy,
/// which is how concurrent trials get private deployments without sharing
/// mutable simulator state (network counters, latency streams, lazily
/// sorted node stores) across threads.
struct Env {
  std::unique_ptr<Network> net;
  std::unique_ptr<ChordRing> ring;
  std::unique_ptr<Distribution> dist;
  size_t items = 0;

  // Build recipe, kept for Replicate().
  size_t peers = 0;
  uint64_t seed = 0;

  /// Rebuilds an independent deployment from the same recipe. The replica
  /// is bit-identical: same node ids, same routing state, same key
  /// placement, fresh (zeroed) cost counters.
  std::unique_ptr<Env> Replicate() const;
};

/// Builds an n-peer ring loaded with `items` draws from `dist`.
std::unique_ptr<Env> BuildEnv(size_t n, std::unique_ptr<Distribution> dist,
                              size_t items, uint64_t seed);

/// Process-wide count of Env::Replicate() calls (deployment rebuilds).
/// The regression guard for the zero-copy trial engine: a read-only
/// parallel RepeatDde must leave this unchanged.
uint64_t ReplicateCalls();

/// Returns a cached deployment for the recipe (n, dist, items, seed),
/// building (and cache-warming via PrepareConcurrentReads) it on first
/// use. Keyed by the distribution's parameter-carrying Name(), so two
/// distributions compare equal iff they generate the same dataset.
/// Cached deployments are SHARED — callers must treat them as read-only
/// snapshots (run estimations, never Join/Leave/insert); a bench row that
/// mutates must Replicate() or build privately instead.
std::shared_ptr<Env> CachedDeployment(size_t n, const Distribution& dist,
                                      size_t items, uint64_t seed);

/// Drops all cached deployments (frees memory between experiments).
void ClearDeploymentCache();

/// Cache telemetry for BENCH_*.json counters.
uint64_t DeploymentCacheHits();
uint64_t DeploymentCacheMisses();

/// A small pool of leased deployment replicas for MUTATING repeated
/// workloads (churn rows, routed updates): at most one replica per
/// concurrent lease is ever built, leases are returned to a free list,
/// and a returned replica is rebuilt on its next Acquire() only if the
/// leaseholder actually dirtied it (detected via ChordRing::mutation_epoch
/// and the event clock) — "build once per worker, reset between trials"
/// instead of one full rebuild per trial.
class ReplicaPool {
 public:
  explicit ReplicaPool(const Env& base) : base_(&base) {}

  /// RAII lease: hands the replica back to the pool on destruction.
  class Lease {
   public:
    Lease(ReplicaPool* pool, std::unique_ptr<Env> env, uint64_t clean_epoch,
          double clean_now)
        : pool_(pool),
          env_(std::move(env)),
          clean_epoch_(clean_epoch),
          clean_now_(clean_now) {}
    Lease(Lease&&) = default;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease();

    Env& env() { return *env_; }

   private:
    ReplicaPool* pool_;
    std::unique_ptr<Env> env_;
    uint64_t clean_epoch_;
    double clean_now_;
  };

  /// Obtains a pristine replica: a pooled one if a clean lease was
  /// returned, a rebuilt one if the returned lease was dirtied, a freshly
  /// built one if the pool is empty. Thread-safe.
  Lease Acquire();

  /// Replicas built over the pool's lifetime (cache-efficiency telemetry).
  uint64_t builds() const { return builds_; }

 private:
  friend class Lease;
  struct Slot {
    std::unique_ptr<Env> env;
    uint64_t clean_epoch = 0;
    double clean_now = 0.0;
    bool dirty = false;
  };
  void Release(Slot slot);

  const Env* base_;
  std::mutex mu_;
  std::vector<Slot> free_;
  uint64_t builds_ = 0;
};

/// Runs one DDE estimation from a random querier; returns the estimate.
/// Aborts the process on failure (benchmarks run on healthy rings).
DensityEstimate RunDde(Env& env, const DdeOptions& options, uint64_t seed);

/// Mean accuracy and cost of `reps` independent DDE runs.
struct RepeatedResult {
  AccuracyReport accuracy;
  double mean_messages = 0.0;
  double mean_hops = 0.0;
  double mean_bytes = 0.0;
  double mean_total_error = 0.0;  ///< mean |N̂ - N| / N
  double mean_peers = 0.0;
};

/// Runs `reps` independent DDE trials and averages them. Trials run
/// concurrently on `pool` (default: the global pool), ALL against the
/// given env as one shared read-only snapshot — estimation charges only
/// its per-query CostContext, so no replica deployments are built
/// (ReplicateCalls() is unchanged). Per-trial seeds depend only on
/// (seed_base, trial index) and the reduction is performed in trial
/// order, so the result is bit-identical for every thread count and
/// equal to the serial path. Calls from inside a pool worker (e.g. from
/// a ParallelRows row task) degrade to the serial path.
RepeatedResult RepeatDde(Env& env, DdeOptions options, int reps,
                         uint64_t seed_base, ThreadPool* pool = nullptr);

/// The pre-shared-snapshot trial engine: every parallel trial rebuilds a
/// private Env replica. Kept as the bit-identity reference (the
/// concurrency tests pin RepeatDde == RepeatDdeReplicated) and as the
/// setup-cost baseline e17 measures against.
RepeatedResult RepeatDdeReplicated(Env& env, DdeOptions options, int reps,
                                   uint64_t seed_base,
                                   ThreadPool* pool = nullptr);

/// Repeated trials for MUTATING workloads: before each trial,
/// `prepare(env, rep)` may mutate the leased deployment (churn, routed
/// updates); the pool then lazily restores a pristine replica for the
/// next leaseholder. Replicas are leased from `pool_of_replicas` —
/// typically one build per concurrent worker rather than one per trial.
/// Same seed schedule and trial-order reduction as RepeatDde.
RepeatedResult RepeatDdeMutating(ReplicaPool& pool_of_replicas,
                                 DdeOptions options, int reps,
                                 uint64_t seed_base,
                                 const std::function<void(Env&, int)>& prepare,
                                 ThreadPool* pool = nullptr);

/// Runs `count` independent row tasks — `fn(row_index) -> RowT` — on the
/// pool and returns the results in row order. Row tasks must not share
/// mutable simulator state: build (or Replicate()) a private Env inside
/// the task. Determinism contract: fn is a pure function of its index, so
/// the returned vector (and any table built from it) is identical for
/// every thread count.
template <typename RowT, typename Fn>
std::vector<RowT> ParallelRows(size_t count, Fn&& fn,
                               ThreadPool* pool = nullptr) {
  std::vector<RowT> rows(count);
  ThreadPool& p = pool != nullptr ? *pool : ThreadPool::Global();
  p.ParallelFor(0, count, [&](size_t i) { rows[i] = fn(i); });
  return rows;
}

/// The Env a ParallelRows row task should run against: `base` itself when
/// the global pool is serial (no concurrent rows possible, no replica
/// cost), otherwise a private replica parked in `storage`. Either way the
/// row sees bit-identical deployment state.
Env& RowEnv(Env& base, std::unique_ptr<Env>& storage);

/// True when RINGDDE_SMOKE is set in the environment: bench binaries then
/// shrink to seconds-scale parameters so ctest can exercise every code
/// path (parallel rows, replicas, the JSON reporter) on every build.
bool SmokeMode();

/// `full` normally, `smoke` under RINGDDE_SMOKE.
size_t Scaled(size_t full, size_t smoke);
int ScaledInt(int full, int smoke);

/// Aligned table printer: emits a `# title` line, a header row, then rows,
/// tab-separated (easy to grep/plot, readable in a terminal). Print() also
/// registers the table with BenchReporter::Global() so it lands in the
/// experiment's BENCH_*.json.
class Table {
 public:
  Table(std::string title, std::vector<std::string> columns);

  /// Adds one row; cells are pre-formatted strings.
  void AddRow(std::vector<std::string> cells);

  /// Adds many pre-built rows in order (the ParallelRows hand-off).
  void AddRows(std::vector<std::vector<std::string>> rows);

  /// Prints header + rows to stdout and records the table in the global
  /// BenchReporter.
  void Print() const;

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style helper returning std::string; no length limit.
std::string Fmt(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace ringdde::bench

#endif  // RINGDDE_BENCH_BENCH_UTIL_H_
