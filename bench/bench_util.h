#ifndef RINGDDE_BENCH_BENCH_UTIL_H_
#define RINGDDE_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/density_estimator.h"
#include "data/dataset.h"
#include "data/distribution.h"
#include "ring/chord_ring.h"
#include "sim/network.h"
#include "stats/metrics.h"

namespace ringdde::bench {

/// One simulated deployment: network fabric + overlay + workload truth.
struct Env {
  std::unique_ptr<Network> net;
  std::unique_ptr<ChordRing> ring;
  std::unique_ptr<Distribution> dist;
  size_t items = 0;
};

/// Builds an n-peer ring loaded with `items` draws from `dist`.
std::unique_ptr<Env> BuildEnv(size_t n, std::unique_ptr<Distribution> dist,
                              size_t items, uint64_t seed);

/// Runs one DDE estimation from a random querier; returns the estimate.
/// Aborts the process on failure (benchmarks run on healthy rings).
DensityEstimate RunDde(Env& env, const DdeOptions& options, uint64_t seed);

/// Mean accuracy and cost of `reps` independent DDE runs.
struct RepeatedResult {
  AccuracyReport accuracy;
  double mean_messages = 0.0;
  double mean_hops = 0.0;
  double mean_bytes = 0.0;
  double mean_total_error = 0.0;  ///< mean |N̂ - N| / N
  double mean_peers = 0.0;
};

RepeatedResult RepeatDde(Env& env, DdeOptions options, int reps,
                         uint64_t seed_base);

/// Aligned table printer: emits a `# title` line, a header row, then rows,
/// tab-separated (easy to grep/plot, readable in a terminal).
class Table {
 public:
  Table(std::string title, std::vector<std::string> columns);

  /// Adds one row; cells are pre-formatted strings.
  void AddRow(std::vector<std::string> cells);

  /// Prints header + rows to stdout.
  void Print() const;

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style helper returning std::string.
std::string Fmt(const char* fmt, ...);

}  // namespace ringdde::bench

#endif  // RINGDDE_BENCH_BENCH_UTIL_H_
