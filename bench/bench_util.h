#ifndef RINGDDE_BENCH_BENCH_UTIL_H_
#define RINGDDE_BENCH_BENCH_UTIL_H_

#include <atomic>
#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_reporter.h"
#include "common/thread_pool.h"
#include "core/density_estimator.h"
#include "data/dataset.h"
#include "data/distribution.h"
#include "ring/chord_ring.h"
#include "ring/epoch_snapshot.h"
#include "sim/network.h"
#include "stats/metrics.h"

namespace ringdde::bench {

/// One simulated deployment: network fabric + overlay + workload truth.
///
/// An Env is deterministic in its build recipe (peers, distribution,
/// items, seed): Replicate() rebuilds an independent, bit-identical copy,
/// which is how concurrent trials get private deployments without sharing
/// mutable simulator state (network counters, latency streams, lazily
/// sorted node stores) across threads.
struct Env {
  std::unique_ptr<Network> net;
  std::unique_ptr<ChordRing> ring;
  std::unique_ptr<Distribution> dist;
  size_t items = 0;

  // Build recipe, kept for Replicate().
  size_t peers = 0;
  uint64_t seed = 0;

  /// Rebuilds an independent deployment from the same recipe. The replica
  /// is bit-identical: same node ids, same routing state, same key
  /// placement, fresh (zeroed) cost counters.
  std::unique_ptr<Env> Replicate() const;
};

/// Builds an n-peer ring loaded with `items` draws from `dist`.
std::unique_ptr<Env> BuildEnv(size_t n, std::unique_ptr<Distribution> dist,
                              size_t items, uint64_t seed);

/// Process-wide count of Env::Replicate() calls (deployment rebuilds).
/// The regression guard for the zero-copy trial engine: a read-only
/// parallel RepeatDde must leave this unchanged.
uint64_t ReplicateCalls();

/// Returns a cached deployment for the recipe (n, dist, items, seed),
/// building (and cache-warming via PrepareConcurrentReads) it on first
/// use. Keyed by the distribution's parameter-carrying Name(), so two
/// distributions compare equal iff they generate the same dataset.
/// Cached deployments are SHARED — callers must treat them as read-only
/// snapshots (run estimations, never Join/Leave/insert); a bench row that
/// mutates must Replicate() or build privately instead.
std::shared_ptr<Env> CachedDeployment(size_t n, const Distribution& dist,
                                      size_t items, uint64_t seed);

/// Drops all cached deployments (frees memory between experiments). The
/// dropped entries count as evictions; their hit/miss history survives in
/// the per-shard stats (see AggregateDeploymentCacheStats).
void ClearDeploymentCache();

/// Aggregated telemetry of the 16-way sharded deployment cache: one
/// counter set summed across every shard. Per-shard counters live beside
/// (not inside) each shard's entry map, so evicting or clearing entries
/// never loses history — the numbers are monotone over the process.
struct DeploymentCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  /// Deployments currently resident across all shards (not monotone).
  uint64_t entries = 0;
};
DeploymentCacheStats AggregateDeploymentCacheStats();

/// Records the aggregated cache stats as deployment_cache_* counters in
/// BenchReporter::Global() — the single reported counter set every bench
/// binary emits the same way.
void ReportDeploymentCacheCounters();

/// Cache telemetry for BENCH_*.json counters (aggregate across shards).
uint64_t DeploymentCacheHits();
uint64_t DeploymentCacheMisses();

/// A small pool of leased deployment replicas for MUTATING repeated
/// workloads (churn rows, routed updates): at most one replica per
/// concurrent lease is ever built, leases are returned to a free list,
/// and a returned replica is rebuilt on its next Acquire() only if the
/// leaseholder actually dirtied it (detected via ChordRing::mutation_epoch
/// and the event clock) — "build once per worker, reset between trials"
/// instead of one full rebuild per trial.
class ReplicaPool {
 public:
  explicit ReplicaPool(const Env& base) : base_(&base) {}

  /// RAII lease: hands the replica back to the pool on destruction.
  class Lease {
   public:
    Lease(ReplicaPool* pool, std::unique_ptr<Env> env, uint64_t clean_epoch,
          double clean_now)
        : pool_(pool),
          env_(std::move(env)),
          clean_epoch_(clean_epoch),
          clean_now_(clean_now) {}
    Lease(Lease&&) = default;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease();

    Env& env() { return *env_; }

   private:
    ReplicaPool* pool_;
    std::unique_ptr<Env> env_;
    uint64_t clean_epoch_;
    double clean_now_;
  };

  /// Obtains a pristine replica: a pooled one if a clean lease was
  /// returned, a rebuilt one if the returned lease was dirtied, a freshly
  /// built one if the pool is empty. Thread-safe.
  Lease Acquire();

  /// Replicas built over the pool's lifetime (cache-efficiency telemetry).
  uint64_t builds() const { return builds_; }

 private:
  friend class Lease;
  struct Slot {
    std::unique_ptr<Env> env;
    uint64_t clean_epoch = 0;
    double clean_now = 0.0;
    bool dirty = false;
  };
  void Release(Slot slot);

  const Env* base_;
  std::mutex mu_;
  std::vector<Slot> free_;
  uint64_t builds_ = 0;
};

/// Runs one DDE estimation from a random querier; returns the estimate.
/// Aborts the process on failure (benchmarks run on healthy rings).
DensityEstimate RunDde(Env& env, const DdeOptions& options, uint64_t seed);

/// As RunDde, but the whole query (querier selection, routing, summaries)
/// runs against the pinned epoch `view` instead of live ring state. Same
/// seed schedule, same reporting; bit-identical to RunDde on a quiescent
/// ring.
DensityEstimate RunDdeEpoch(const EpochView& view, const DdeOptions& options,
                            uint64_t seed);

/// Mean accuracy and cost of `reps` independent DDE runs.
struct RepeatedResult {
  AccuracyReport accuracy;
  double mean_messages = 0.0;
  double mean_hops = 0.0;
  double mean_bytes = 0.0;
  double mean_total_error = 0.0;  ///< mean |N̂ - N| / N
  double mean_peers = 0.0;
};

/// Runs `reps` independent DDE trials and averages them. Trials run
/// concurrently on `pool` (default: the global pool), ALL against the
/// given env as one shared read-only snapshot — estimation charges only
/// its per-query CostContext, so no replica deployments are built
/// (ReplicateCalls() is unchanged). Per-trial seeds depend only on
/// (seed_base, trial index) and the reduction is performed in trial
/// order, so the result is bit-identical for every thread count and
/// equal to the serial path. Calls from inside a pool worker (e.g. from
/// a ParallelRows row task) degrade to the serial path.
RepeatedResult RepeatDde(Env& env, DdeOptions options, int reps,
                         uint64_t seed_base, ThreadPool* pool = nullptr);

/// RepeatDde over a pinned epoch view: every trial (serial or parallel)
/// resolves routing/liveness/summaries against `view`; `env` supplies only
/// the ground-truth distribution for accuracy scoring. Same seed schedule
/// and trial-order reduction as RepeatDde, so on a quiescent ring the
/// result is bit-identical to RepeatDde at every thread count — the gate
/// the epoch tests and e19 assert before serving under live churn.
RepeatedResult RepeatDdeEpoch(Env& env, const EpochView& view,
                              DdeOptions options, int reps,
                              uint64_t seed_base, ThreadPool* pool = nullptr);

/// The pre-shared-snapshot trial engine: every parallel trial rebuilds a
/// private Env replica. Kept as the bit-identity reference (the
/// concurrency tests pin RepeatDde == RepeatDdeReplicated) and as the
/// setup-cost baseline e17 measures against.
RepeatedResult RepeatDdeReplicated(Env& env, DdeOptions options, int reps,
                                   uint64_t seed_base,
                                   ThreadPool* pool = nullptr);

/// Repeated trials for MUTATING workloads: before each trial,
/// `prepare(env, rep)` may mutate the leased deployment (churn, routed
/// updates); the pool then lazily restores a pristine replica for the
/// next leaseholder. Replicas are leased from `pool_of_replicas` —
/// typically one build per concurrent worker rather than one per trial.
/// Same seed schedule and trial-order reduction as RepeatDde.
RepeatedResult RepeatDdeMutating(ReplicaPool& pool_of_replicas,
                                 DdeOptions options, int reps,
                                 uint64_t seed_base,
                                 const std::function<void(Env&, int)>& prepare,
                                 ThreadPool* pool = nullptr);

/// Sustained estimate serving over rotating epoch snapshots: a fixed crew
/// of reader threads drains queries against the SnapshotManager's head
/// epoch while the CALLER's thread keeps mutating the ring (churn, data
/// updates) and publishing new epochs.
///
/// Probe scheduling is pipelined per epoch rather than per trial: a reader
/// pins one view and issues every query (each with its own CostContext and
/// seed) against that same pin until head_sequence() reports a newer
/// epoch — one atomic load per query, no lock, no re-pin churn. Staleness
/// is measured per finished estimate as head_sequence() minus the pinned
/// view's sequence at completion; an optional per-seed oracle CDF set
/// (estimates of the initial frozen epoch) yields KS-vs-oracle drift.
class ServingEngine {
 public:
  struct Options {
    DdeOptions dde;
    /// Reader threads to spawn (>= 1).
    int threads = 1;
    /// Per-query seeds follow the RepeatDde trial schedule, cycling over
    /// `seed_cycle` indices so each query seed has a precomputable oracle.
    uint64_t seed_base = 0;
    size_t seed_cycle = 16;
    /// Oracle CDFs parallel to the seed cycle (oracle_cdfs[i] pairs with
    /// seed index i). Null disables KS tracking.
    const std::vector<PiecewiseLinearCdf>* oracle_cdfs = nullptr;
  };

  struct Stats {
    uint64_t estimates = 0;
    uint64_t failed = 0;
    double wall_seconds = 0.0;
    double estimates_per_sec = 0.0;
    double staleness_p50 = 0.0;
    double staleness_p99 = 0.0;
    double staleness_max = 0.0;
    /// Mean KS distance of served estimates vs their seed's oracle (0 when
    /// no oracle set was supplied).
    double mean_ks_vs_oracle = 0.0;
    /// Mean wall-clock seconds per estimate (pacing input for publishers).
    double mean_query_seconds = 0.0;
  };

  /// The manager must outlive the engine; Start()..Stop() brackets the
  /// serving window. The caller thread remains the mutator/publisher.
  ServingEngine(SnapshotManager* manager, Options options);
  ~ServingEngine();

  /// Spawns the reader crew (requires a published head epoch).
  void Start();

  /// Signals the crew, joins it, and reduces the per-thread logs.
  Stats Stop();

  /// Per-worker completed-query counters (successful or failed), one slot
  /// per thread. The publisher samples these to pace rotation against
  /// actual drain progress: waiting until every worker advanced past its
  /// pre-publish mark bounds reader staleness even when the crew
  /// oversubscribes the machine and threads stall mid-query.
  std::vector<uint64_t> Completions() const;

 private:
  struct WorkerLog {
    std::vector<uint32_t> staleness;
    double ks_sum = 0.0;
    double query_seconds_sum = 0.0;
    uint64_t count = 0;
    uint64_t failed = 0;
  };
  void WorkerLoop(WorkerLog* log, std::atomic<uint64_t>* completed);

  SnapshotManager* manager_;
  Options options_;
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> query_counter_{0};
  std::vector<std::thread> workers_;
  std::vector<WorkerLog> logs_;
  /// unique_ptr per slot: atomics are not movable, logs_ may reallocate.
  std::vector<std::unique_ptr<std::atomic<uint64_t>>> completed_;
  std::chrono::steady_clock::time_point started_;
};

/// Runs `count` independent row tasks — `fn(row_index) -> RowT` — on the
/// pool and returns the results in row order. Row tasks must not share
/// mutable simulator state: build (or Replicate()) a private Env inside
/// the task. Determinism contract: fn is a pure function of its index, so
/// the returned vector (and any table built from it) is identical for
/// every thread count.
template <typename RowT, typename Fn>
std::vector<RowT> ParallelRows(size_t count, Fn&& fn,
                               ThreadPool* pool = nullptr) {
  std::vector<RowT> rows(count);
  ThreadPool& p = pool != nullptr ? *pool : ThreadPool::Global();
  p.ParallelFor(0, count, [&](size_t i) { rows[i] = fn(i); });
  return rows;
}

/// The Env a ParallelRows row task should run against: `base` itself when
/// the global pool is serial (no concurrent rows possible, no replica
/// cost), otherwise a private replica parked in `storage`. Either way the
/// row sees bit-identical deployment state.
Env& RowEnv(Env& base, std::unique_ptr<Env>& storage);

/// True when RINGDDE_SMOKE is set in the environment: bench binaries then
/// shrink to seconds-scale parameters so ctest can exercise every code
/// path (parallel rows, replicas, the JSON reporter) on every build.
bool SmokeMode();

/// `full` normally, `smoke` under RINGDDE_SMOKE.
size_t Scaled(size_t full, size_t smoke);
int ScaledInt(int full, int smoke);

/// Aligned table printer: emits a `# title` line, a header row, then rows,
/// tab-separated (easy to grep/plot, readable in a terminal). Print() also
/// registers the table with BenchReporter::Global() so it lands in the
/// experiment's BENCH_*.json.
class Table {
 public:
  Table(std::string title, std::vector<std::string> columns);

  /// Adds one row; cells are pre-formatted strings.
  void AddRow(std::vector<std::string> cells);

  /// Adds many pre-built rows in order (the ParallelRows hand-off).
  void AddRows(std::vector<std::vector<std::string>> rows);

  /// Prints header + rows to stdout and records the table in the global
  /// BenchReporter.
  void Print() const;

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style helper returning std::string; no length limit.
std::string Fmt(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace ringdde::bench

#endif  // RINGDDE_BENCH_BENCH_UTIL_H_
