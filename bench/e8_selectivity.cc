// E8 — Application: range-query selectivity estimation.
//
// The query-processing application from the paper's motivation. A peer
// estimates once, then answers arbitrary range-selectivity questions
// locally. Rows report mean / p95 absolute selectivity error over a
// 500-query workload, per workload distribution and per method.
#include <memory>

#include "apps/selectivity.h"
#include "baselines/parametric.h"
#include "baselines/uniform_peer_sampler.h"
#include "bench_util.h"

namespace ringdde::bench {
namespace {

constexpr size_t kPeers = 2048;
constexpr size_t kItems = 200000;

void Run() {
  Table table(Fmt("E8 selectivity estimation error — n=%zu, N=%zu, 500 "
                  "range queries (mean width 0.1), m=256",
                  kPeers, kItems),
              {"workload", "method", "mean_abs_err", "p95_abs_err",
               "mean_rel_err"});

  for (auto& dist : StandardBenchmarkDistributions()) {
    const std::string name = dist->Name();
    auto env = BuildEnv(kPeers, std::move(dist), kItems, 181);
    Rng wrng(9);
    const auto queries = GenerateRangeQueries(500, 0.1, wrng);
    Rng rng(10);
    const NodeAddr q = *env->ring->RandomAliveNode(rng);

    {
      DdeOptions opts;
      opts.num_probes = 256;
      const DensityEstimate e = RunDde(*env, opts, 301);
      const auto r = EvaluateSelectivity(e.cdf, *env->ring, queries);
      table.AddRow({name, "DDE", Fmt("%.4f", r.mean_abs_error),
                    Fmt("%.4f", r.p95_abs_error),
                    Fmt("%.3f", r.mean_rel_error)});
    }
    {
      UniformPeerSamplerOptions o;
      o.num_peers = 256;
      auto e = UniformPeerSampler(env->ring.get(), o).Estimate(q);
      if (e.ok()) {
        const auto r = EvaluateSelectivity(e->cdf, *env->ring, queries);
        table.AddRow({name, "B1-peers", Fmt("%.4f", r.mean_abs_error),
                      Fmt("%.4f", r.p95_abs_error),
                      Fmt("%.3f", r.mean_rel_error)});
      }
    }
    {
      ParametricFitOptions o;
      o.num_peers = 256;
      auto e = ParametricFitEstimator(env->ring.get(), o).Estimate(q);
      if (e.ok()) {
        const PiecewiseLinearCdf cdf = e->ToPiecewiseCdf();
        const auto r = EvaluateSelectivity(cdf, *env->ring, queries);
        table.AddRow({name, "B5-param", Fmt("%.4f", r.mean_abs_error),
                      Fmt("%.4f", r.p95_abs_error),
                      Fmt("%.3f", r.mean_rel_error)});
      }
    }
  }
  table.Print();

  // Query-width sensitivity for DDE.
  Table table2("E8b DDE selectivity error vs query width — Zipf(1000,0.9)",
               {"mean_width", "mean_abs_err", "p95_abs_err"});
  auto env = BuildEnv(kPeers, std::make_unique<ZipfDistribution>(1000, 0.9),
                      kItems, 191);
  DdeOptions opts;
  opts.num_probes = 256;
  const DensityEstimate e = RunDde(*env, opts, 401);
  for (double width : {0.01, 0.05, 0.1, 0.25, 0.5}) {
    Rng wrng(static_cast<uint64_t>(width * 1000));
    const auto queries = GenerateRangeQueries(500, width, wrng);
    const auto r = EvaluateSelectivity(e.cdf, *env->ring, queries);
    table2.AddRow({Fmt("%.2f", width), Fmt("%.4f", r.mean_abs_error),
                   Fmt("%.4f", r.p95_abs_error)});
  }
  table2.Print();
}

}  // namespace
}  // namespace ringdde::bench

int main() {
  ringdde::bench::Run();
  return 0;
}
