// E8 — Application: range-query selectivity estimation.
//
// The query-processing application from the paper's motivation. A peer
// estimates once, then answers arbitrary range-selectivity questions
// locally. Rows report mean / p95 absolute selectivity error over a
// range-query workload, per workload distribution and per method.
//
// Workloads are independent deployments and run concurrently on the
// global thread pool; each contributes its three method rows.
#include <memory>

#include "apps/selectivity.h"
#include "baselines/parametric.h"
#include "baselines/uniform_peer_sampler.h"
#include "bench_util.h"

namespace ringdde::bench {
namespace {

void Run() {
  const size_t kPeers = Scaled(2048, 128);
  const size_t kItems = Scaled(200000, 5000);
  const size_t kQueries = Scaled(500, 100);

  Table table(Fmt("E8 selectivity estimation error — n=%zu, N=%zu, %zu "
                  "range queries (mean width 0.1), m=256",
                  kPeers, kItems, kQueries),
              {"workload", "method", "mean_abs_err", "p95_abs_err",
               "mean_rel_err"});

  auto dists = StandardBenchmarkDistributions();
  const auto groups = ParallelRows<std::vector<std::vector<std::string>>>(
      dists.size(), [&](size_t w) {
        const std::string name = dists[w]->Name();
        auto env = BuildEnv(kPeers, std::move(dists[w]), kItems, 181);
        Rng wrng(9);
        const auto queries = GenerateRangeQueries(kQueries, 0.1, wrng);
        Rng rng(10);
        const NodeAddr q = *env->ring->RandomAliveNode(rng);

        std::vector<std::vector<std::string>> rows;
        {
          DdeOptions opts;
          opts.num_probes = 256;
          const DensityEstimate e = RunDde(*env, opts, 301);
          const auto r = EvaluateSelectivity(e.cdf, *env->ring, queries);
          rows.push_back({name, "DDE", Fmt("%.4f", r.mean_abs_error),
                          Fmt("%.4f", r.p95_abs_error),
                          Fmt("%.3f", r.mean_rel_error)});
        }
        {
          UniformPeerSamplerOptions o;
          o.num_peers = 256;
          auto e = UniformPeerSampler(env->ring.get(), o).Estimate(q);
          if (e.ok()) {
            const auto r = EvaluateSelectivity(e->cdf, *env->ring, queries);
            rows.push_back({name, "B1-peers", Fmt("%.4f", r.mean_abs_error),
                            Fmt("%.4f", r.p95_abs_error),
                            Fmt("%.3f", r.mean_rel_error)});
          }
        }
        {
          ParametricFitOptions o;
          o.num_peers = 256;
          auto e = ParametricFitEstimator(env->ring.get(), o).Estimate(q);
          if (e.ok()) {
            const PiecewiseLinearCdf cdf = e->ToPiecewiseCdf();
            const auto r = EvaluateSelectivity(cdf, *env->ring, queries);
            rows.push_back({name, "B5-param", Fmt("%.4f", r.mean_abs_error),
                            Fmt("%.4f", r.p95_abs_error),
                            Fmt("%.3f", r.mean_rel_error)});
          }
        }
        return rows;
      });
  for (const auto& g : groups) table.AddRows(g);
  table.Print();

  // Query-width sensitivity for DDE: one deployment, one estimate, five
  // local evaluations — cheap, stays serial.
  Table table2("E8b DDE selectivity error vs query width — Zipf(1000,0.9)",
               {"mean_width", "mean_abs_err", "p95_abs_err"});
  auto env = BuildEnv(kPeers, std::make_unique<ZipfDistribution>(1000, 0.9),
                      kItems, 191);
  DdeOptions opts;
  opts.num_probes = 256;
  const DensityEstimate e = RunDde(*env, opts, 401);
  for (double width : {0.01, 0.05, 0.1, 0.25, 0.5}) {
    Rng wrng(static_cast<uint64_t>(width * 1000));
    const auto queries = GenerateRangeQueries(kQueries, width, wrng);
    const auto r = EvaluateSelectivity(e.cdf, *env->ring, queries);
    table2.AddRow({Fmt("%.2f", width), Fmt("%.4f", r.mean_abs_error),
                   Fmt("%.4f", r.p95_abs_error)});
  }
  table2.Print();
}

}  // namespace
}  // namespace ringdde::bench

int main() {
  ringdde::bench::BenchRun run("e8_selectivity");
  ringdde::bench::Run();
  return 0;
}
