// E2 — Scalability: accuracy versus network size.
//
// Two regimes: (a) fixed absolute budget m=256 — error stays roughly flat
// as n grows because accuracy is governed by the number of CDF sample
// points, not by n; (b) fixed sampling RATIO m=n/16 — error improves with
// n. Message cost grows only logarithmically per probe (hops column).
//
// Each network size is an independent deployment, so the rows (which
// dominate the runtime — the biggest ring is 64x the smallest) run
// concurrently on the global thread pool.
#include "bench_util.h"

namespace ringdde::bench {
namespace {

/// Both tables' cells for one network size.
struct SizeRow {
  std::vector<std::string> fixed_m;
  std::vector<std::string> ratio_m;
};

void Run() {
  const size_t kItems = Scaled(200000, 5000);
  const int kReps = ScaledInt(3, 2);
  const std::vector<size_t> sizes =
      SmokeMode() ? std::vector<size_t>{256, 512}
                  : std::vector<size_t>{256, 512, 1024, 2048, 4096, 8192,
                                        16384};

  Table fixed_m(Fmt("E2a accuracy vs network size — fixed budget m=256, "
                    "Zipf(1000,0.9), N=%zu",
                    kItems),
                {"n", "ks", "l1_cdf", "msgs", "hops_per_probe",
                 "total_err"});
  Table ratio_m("E2b accuracy vs network size — fixed ratio m=n/16",
                {"n", "m", "ks", "l1_cdf", "msgs"});

  const std::vector<SizeRow> rows = ParallelRows<SizeRow>(
      sizes.size(), [&](size_t row) {
        const size_t n = sizes[row];
        auto env = BuildEnv(n, std::make_unique<ZipfDistribution>(1000, 0.9),
                            kItems, 23 + n);
        SizeRow out;
        {
          DdeOptions opts;
          opts.num_probes = 256;
          const RepeatedResult r = RepeatDde(*env, opts, kReps, n);
          out.fixed_m = {Fmt("%zu", n), Fmt("%.4f", r.accuracy.ks),
                         Fmt("%.4f", r.accuracy.l1_cdf),
                         Fmt("%.0f", r.mean_messages),
                         Fmt("%.2f", r.mean_hops / 256.0),
                         Fmt("%.3f", r.mean_total_error)};
        }
        {
          DdeOptions opts;
          opts.num_probes = std::max<size_t>(n / 16, 8);
          const RepeatedResult r = RepeatDde(*env, opts, kReps, n * 3);
          out.ratio_m = {Fmt("%zu", n), Fmt("%zu", opts.num_probes),
                         Fmt("%.4f", r.accuracy.ks),
                         Fmt("%.4f", r.accuracy.l1_cdf),
                         Fmt("%.0f", r.mean_messages)};
        }
        return out;
      });

  for (const SizeRow& r : rows) {
    fixed_m.AddRow(r.fixed_m);
    ratio_m.AddRow(r.ratio_m);
  }
  fixed_m.Print();
  ratio_m.Print();
}

}  // namespace
}  // namespace ringdde::bench

int main() {
  ringdde::bench::BenchRun run("e2_accuracy_vs_network_size");
  ringdde::bench::Run();
  return 0;
}
