// E2 — Scalability: accuracy versus network size.
//
// Two regimes: (a) fixed absolute budget m=256 — error stays roughly flat
// as n grows because accuracy is governed by the number of CDF sample
// points, not by n; (b) fixed sampling RATIO m=n/16 — error improves with
// n. Message cost grows only logarithmically per probe (hops column).
#include "bench_util.h"

namespace ringdde::bench {
namespace {

constexpr size_t kItems = 200000;
constexpr int kReps = 3;

void Run() {
  Table fixed_m("E2a accuracy vs network size — fixed budget m=256, "
                "Zipf(1000,0.9), N=200000",
                {"n", "ks", "l1_cdf", "msgs", "hops_per_probe",
                 "total_err"});
  Table ratio_m("E2b accuracy vs network size — fixed ratio m=n/16",
                {"n", "m", "ks", "l1_cdf", "msgs"});

  for (size_t n : {256, 512, 1024, 2048, 4096, 8192, 16384}) {
    auto env = BuildEnv(n, std::make_unique<ZipfDistribution>(1000, 0.9),
                        kItems, 23 + n);
    {
      DdeOptions opts;
      opts.num_probes = 256;
      const RepeatedResult r = RepeatDde(*env, opts, kReps, n);
      fixed_m.AddRow({Fmt("%zu", n), Fmt("%.4f", r.accuracy.ks),
                      Fmt("%.4f", r.accuracy.l1_cdf),
                      Fmt("%.0f", r.mean_messages),
                      Fmt("%.2f", r.mean_hops / 256.0),
                      Fmt("%.3f", r.mean_total_error)});
    }
    {
      DdeOptions opts;
      opts.num_probes = std::max<size_t>(n / 16, 8);
      const RepeatedResult r = RepeatDde(*env, opts, kReps, n * 3);
      ratio_m.AddRow({Fmt("%zu", n), Fmt("%zu", opts.num_probes),
                      Fmt("%.4f", r.accuracy.ks),
                      Fmt("%.4f", r.accuracy.l1_cdf),
                      Fmt("%.0f", r.mean_messages)});
    }
  }
  fixed_m.Print();
  ratio_m.Print();
}

}  // namespace
}  // namespace ringdde::bench

int main() {
  ringdde::bench::Run();
  return 0;
}
