// E20 — Wire cost: the E4 cost curves replayed over the socket backend.
//
// Each probe budget m runs the estimation protocol inside a socket-served
// ring process model (RingRpcService behind a real local-TCP RpcServer)
// and compares what the simulator CHARGES for in-ring traffic (the
// CostCounters byte model) with what the wire actually CARRIES for the
// query RPCs (framed request + reply bytes), plus the real RPC latency
// distribution. Expected shape: both grow with m (more probes means more
// summaries and a denser reconstructed CDF), but the wire carries an
// order of magnitude less than the sim charges — the ring pays per PROBE
// for m summary exchanges, while the wire ships only the final digest
// per QUERY.
#include <algorithm>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "core/ring_service.h"
#include "sim/rpc_server.h"
#include "sim/socket_transport.h"

namespace ringdde::bench {
namespace {

double PercentileMs(const std::vector<double>& seconds, double p) {
  return 1000.0 * PercentileOf(seconds, p);
}

void Run() {
  const uint64_t kPeers = Scaled(4096, 128);
  const uint64_t kItems = Scaled(200000, 5000);
  const int kQueries = ScaledInt(16, 4);
  const std::vector<uint64_t> kBudgets =
      SmokeMode() ? std::vector<uint64_t>{32, 64}
                  : std::vector<uint64_t>{256, 1024};

  Table table(Fmt("E20 sim-charged vs wire-carried cost — n=%llu, "
                  "Zipf(1000,0.9), N=%llu, %d estimate RPCs per row",
                  (unsigned long long)kPeers, (unsigned long long)kItems,
                  kQueries),
              {"m", "sim_msgs", "sim_kbytes", "wire_kbytes_tx",
               "wire_kbytes_rx", "rpc_ms_p50", "rpc_ms_p99"});

  // Totals across every row's channel, reported as the BENCH counters the
  // schema gate pins (wire_bytes_* / rpc_latency_*).
  uint64_t total_wire_tx = 0;
  uint64_t total_wire_rx = 0;
  std::vector<double> all_latencies;

  for (uint64_t m : kBudgets) {
    DeploymentSpec spec;
    spec.peers = kPeers;
    spec.ring_seed = 71;
    spec.net_seed = 0xE20;
    spec.num_probes = m;

    RingRpcService service(spec);
    if (!service.Init().ok()) {
      table.AddRow({Fmt("%llu", (unsigned long long)m), "-", "-", "-", "-",
                    "-", "-"});
      continue;
    }
    RpcServer server([&service](const Frame& f, Frame* reply) {
      return service.Handle(f, reply);
    });
    if (!server.Start().ok()) {
      table.AddRow({Fmt("%llu", (unsigned long long)m), "-", "-", "-", "-",
                    "-", "-"});
      continue;
    }
    {
      // Setup traffic (insert/stabilize) is not part of the query cost
      // curve: run setup on its own channel, then query on a FRESH one so
      // its stats are purely query traffic.
      bool setup_ok = true;
      {
        SocketRpcChannel setup_channel(server.port());
        RingClient setup_client(&setup_channel);
        InsertSpec ins;
        ins.dist_kind = 2;  // zipf(values, theta)
        ins.param_a = 1000;
        ins.param_b = 0.9;
        ins.count = kItems;
        ins.data_seed = 71;
        setup_ok = setup_client.Insert(ins).ok() &&
                   setup_client.Stabilize().ok();
        total_wire_tx += setup_channel.stats().wire_bytes_sent;
        total_wire_rx += setup_channel.stats().wire_bytes_received;
      }
      if (!setup_ok) {
        server.Stop();
        table.AddRow({Fmt("%llu", (unsigned long long)m), "-", "-", "-",
                      "-", "-", "-"});
        continue;
      }

      SocketRpcChannel channel(server.port());
      RingClient client(&channel);
      uint64_t sim_messages = 0;
      uint64_t sim_bytes = 0;
      for (int q = 0; q < kQueries; ++q) {
        const NodeAddr querier = static_cast<NodeAddr>(q + 1);
        auto est = client.Estimate(querier, DeriveTaskSeed(0xE20 + m, q));
        if (!est.ok()) continue;
        sim_messages += est->cost.messages;
        sim_bytes += est->cost.bytes;
      }

      const uint64_t wire_tx = channel.stats().wire_bytes_sent;
      const uint64_t wire_rx = channel.stats().wire_bytes_received;
      const std::vector<double>& latencies =
          channel.stats().rpc_latency_seconds.samples();

      table.AddRow({Fmt("%llu", (unsigned long long)m),
                    Fmt("%llu", (unsigned long long)sim_messages),
                    Fmt("%.1f", sim_bytes / 1024.0),
                    Fmt("%.1f", wire_tx / 1024.0),
                    Fmt("%.1f", wire_rx / 1024.0),
                    Fmt("%.3f", PercentileMs(latencies, 0.50)),
                    Fmt("%.3f", PercentileMs(latencies, 0.99))});

      total_wire_tx += wire_tx;
      total_wire_rx += wire_rx;
      all_latencies.insert(all_latencies.end(), latencies.begin(),
                           latencies.end());
      BenchReporter::Global().AddCost(sim_messages, sim_bytes);
    }
    server.Stop();
  }
  table.Print();

  BenchReporter::Global().RecordCounter("wire_bytes_sent",
                                        static_cast<double>(total_wire_tx));
  BenchReporter::Global().RecordCounter("wire_bytes_received",
                                        static_cast<double>(total_wire_rx));
  BenchReporter::Global().RecordCounter("rpc_latency_ms_p50",
                                        PercentileMs(all_latencies, 0.50));
  BenchReporter::Global().RecordCounter("rpc_latency_ms_p99",
                                        PercentileMs(all_latencies, 0.99));
}

}  // namespace
}  // namespace ringdde::bench

int main() {
  ringdde::bench::BenchRun run("e20_wire_cost");
  ringdde::bench::Run();
  return 0;
}
