# Schema check for the machine-readable perf reports: every BENCH_*.json in
# BENCH_DIR must parse as JSON and carry the {experiment, threads,
# wall_clock_ms} keys the perf-trajectory tooling relies on. The
# fault-tolerance experiment must additionally report its failure counters
# (counters.failed_probes / retries / timeouts) — the fault layer's
# observability contract.
#
# Usage: cmake -DBENCH_DIR=<dir> -P check_bench_json.cmake
# Requires CMake >= 3.19 for string(JSON); the caller gates on that.
if(NOT DEFINED BENCH_DIR)
  message(FATAL_ERROR "BENCH_DIR not set")
endif()

file(GLOB reports "${BENCH_DIR}/BENCH_*.json")
if(reports STREQUAL "")
  message(FATAL_ERROR "no BENCH_*.json files found in ${BENCH_DIR}")
endif()

foreach(report ${reports})
  file(READ "${report}" contents)
  foreach(key experiment threads wall_clock_ms)
    string(JSON value ERROR_VARIABLE err GET "${contents}" ${key})
    if(NOT err STREQUAL "NOTFOUND")
      message(FATAL_ERROR "${report}: missing or unreadable '${key}': ${err}")
    endif()
  endforeach()
  if(report MATCHES "BENCH_e16_fault_tolerance\\.json$")
    foreach(key failed_probes retries timeouts)
      string(JSON value ERROR_VARIABLE err GET "${contents}" counters ${key})
      if(NOT err STREQUAL "NOTFOUND")
        message(FATAL_ERROR
          "${report}: missing or unreadable 'counters.${key}': ${err}")
      endif()
    endforeach()
  endif()
  # The concurrent-query experiment must report both engines' throughput
  # and per-trial setup cost — the shared-snapshot engine's observability
  # contract (before/after evidence that the replica-build cost is gone).
  if(report MATCHES "BENCH_e17_concurrent_queries\\.json$")
    foreach(key setup_us_per_trial_replica setup_us_per_trial_shared
                estimates_per_sec_shared estimates_per_sec_replica)
      string(JSON value ERROR_VARIABLE err GET "${contents}" counters ${key})
      if(NOT err STREQUAL "NOTFOUND")
        message(FATAL_ERROR
          "${report}: missing or unreadable 'counters.${key}': ${err}")
      endif()
    endforeach()
  endif()
  # The scale experiment must report the million-peer gate counters: the
  # deploy/stabilize timings (struct-of-arrays AND the legacy-layout
  # baseline), the lookup hop/latency percentiles, throughput, and the
  # process peak RSS — the scale-regression observability contract.
  if(report MATCHES "BENCH_e18\\.json$")
    foreach(key deploy_us stabilize_us_soa stabilize_us_legacy
                lookup_hops_p50 lookup_hops_p99 lookup_us_p50 lookup_us_p99
                lookups_per_sec peak_rss_mb)
      string(JSON value ERROR_VARIABLE err GET "${contents}" counters ${key})
      if(NOT err STREQUAL "NOTFOUND")
        message(FATAL_ERROR
          "${report}: missing or unreadable 'counters.${key}': ${err}")
      endif()
    endforeach()
  endif()
  # The live-serving experiment must report the epoch engine's serving
  # contract: sustained throughput, the staleness percentiles (the
  # freshness side of the staleness-vs-error trade), and the KS drift
  # against the frozen-ring oracle.
  if(report MATCHES "BENCH_e19_live_serving\\.json$")
    foreach(key estimates_per_sec staleness_epochs_p50 staleness_epochs_p99
                ks_vs_oracle)
      string(JSON value ERROR_VARIABLE err GET "${contents}" counters ${key})
      if(NOT err STREQUAL "NOTFOUND")
        message(FATAL_ERROR
          "${report}: missing or unreadable 'counters.${key}': ${err}")
      endif()
    endforeach()
  endif()
  # The wire-cost experiment must report the socket backend's transport
  # contract: real bytes on the wire in both directions and the RPC
  # latency percentiles — the sim-charged-vs-wire-carried evidence pair.
  if(report MATCHES "BENCH_e20_wire_cost\\.json$")
    foreach(key wire_bytes_sent wire_bytes_received
                rpc_latency_ms_p50 rpc_latency_ms_p99)
      string(JSON value ERROR_VARIABLE err GET "${contents}" counters ${key})
      if(NOT err STREQUAL "NOTFOUND")
        message(FATAL_ERROR
          "${report}: missing or unreadable 'counters.${key}': ${err}")
      endif()
    endforeach()
  endif()
  # The sketch-aggregation experiment must report the accuracy-per-byte
  # contract: the per-holder frame size, the convergecast message count,
  # and the realized KS error of the hierarchical sketch estimate (the
  # evidence triple behind the "fewer bytes per estimate at
  # equal-or-better error" claim).
  if(report MATCHES "BENCH_e21_sketch_aggregation\\.json$")
    foreach(key bytes_per_estimate messages_per_estimate ks_error)
      string(JSON value ERROR_VARIABLE err GET "${contents}" counters ${key})
      if(NOT err STREQUAL "NOTFOUND")
        message(FATAL_ERROR
          "${report}: missing or unreadable 'counters.${key}': ${err}")
      endif()
    endforeach()
  endif()
  # The RPC-throughput experiment must report the transport-rewrite
  # contract: the baseline and epoll+pipelined throughputs, both p99
  # latencies, and the steady-state allocation rate — the evidence that
  # the event loop + pipelining + buffer reuse actually paid off.
  if(report MATCHES "BENCH_e22_rpc_throughput\\.json$")
    foreach(key rpcs_per_sec_baseline rpcs_per_sec_epoll_pipelined
                rpc_latency_p99_ms_baseline rpc_latency_p99_ms_epoll_pipelined
                allocs_per_rpc)
      string(JSON value ERROR_VARIABLE err GET "${contents}" counters ${key})
      if(NOT err STREQUAL "NOTFOUND")
        message(FATAL_ERROR
          "${report}: missing or unreadable 'counters.${key}': ${err}")
      endif()
    endforeach()
  endif()
  message(STATUS "${report}: schema OK")
endforeach()
