#include "bench_util.h"

#include <cstdarg>
#include <cstdlib>

namespace ringdde::bench {

std::unique_ptr<Env> BuildEnv(size_t n, std::unique_ptr<Distribution> dist,
                              size_t items, uint64_t seed) {
  auto env = std::make_unique<Env>();
  env->net = std::make_unique<Network>();
  RingOptions ropts;
  ropts.seed = seed;
  env->ring = std::make_unique<ChordRing>(env->net.get(), ropts);
  Status s = env->ring->CreateNetwork(n);
  if (!s.ok()) {
    std::fprintf(stderr, "BuildEnv failed: %s\n", s.ToString().c_str());
    std::abort();
  }
  env->dist = std::move(dist);
  env->items = items;
  Rng rng(seed ^ 0xDA7A);
  env->ring->InsertDatasetBulk(
      GenerateDataset(*env->dist, items, rng).keys);
  return env;
}

DensityEstimate RunDde(Env& env, const DdeOptions& options, uint64_t seed) {
  DdeOptions opts = options;
  opts.seed = seed;
  DistributionFreeEstimator estimator(env.ring.get(), opts);
  Rng rng(seed ^ 0x5EED);
  Result<NodeAddr> querier = env.ring->RandomAliveNode(rng);
  if (!querier.ok()) {
    std::fprintf(stderr, "no alive querier\n");
    std::abort();
  }
  Result<DensityEstimate> est = estimator.Estimate(*querier);
  if (!est.ok()) {
    std::fprintf(stderr, "estimate failed: %s\n",
                 est.status().ToString().c_str());
    std::abort();
  }
  return std::move(*est);
}

RepeatedResult RepeatDde(Env& env, DdeOptions options, int reps,
                         uint64_t seed_base) {
  RepeatedResult out;
  std::vector<AccuracyReport> reports;
  for (int r = 0; r < reps; ++r) {
    const DensityEstimate e = RunDde(env, options, seed_base + r * 7919);
    reports.push_back(CompareCdfToTruth(e.cdf, *env.dist));
    out.mean_messages += static_cast<double>(e.cost.messages);
    out.mean_hops += static_cast<double>(e.cost.hops);
    out.mean_bytes += static_cast<double>(e.cost.bytes);
    out.mean_peers += static_cast<double>(e.peers_probed);
    const double n_true = static_cast<double>(env.ring->TotalItems());
    if (n_true > 0) {
      out.mean_total_error +=
          std::abs(e.estimated_total_items - n_true) / n_true;
    }
  }
  const double r = static_cast<double>(reps);
  out.accuracy = MeanReport(reports);
  out.mean_messages /= r;
  out.mean_hops /= r;
  out.mean_bytes /= r;
  out.mean_peers /= r;
  out.mean_total_error /= r;
  return out;
}

Table::Table(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {}

void Table::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void Table::Print() const {
  std::printf("# %s\n", title_.c_str());
  // Column widths from header + cells.
  std::vector<size_t> width(columns_.size(), 0);
  for (size_t c = 0; c < columns_.size(); ++c) {
    width[c] = columns_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < width.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      std::printf("%-*s%s", static_cast<int>(width[c]), cells[c].c_str(),
                  c + 1 == cells.size() ? "\n" : "  ");
    }
  };
  print_row(columns_);
  for (const auto& row : rows_) print_row(row);
  std::printf("\n");
}

std::string Fmt(const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  return std::string(buf);
}

}  // namespace ringdde::bench
