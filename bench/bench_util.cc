#include "bench_util.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdarg>
#include <cstdlib>
#include <map>

namespace ringdde::bench {

namespace {
std::atomic<uint64_t> g_replicate_calls{0};

// The deployment cache is sharded by recipe-key hash: builds of *different*
// recipes proceed concurrently (each holds only its shard's lock for the
// whole build), while concurrent first requests for the *same* recipe still
// collapse onto one build. 16 shards comfortably cover the handful of
// distinct recipes a bench binary requests.
constexpr size_t kDeployCacheShards = 16;

struct DeployCacheShard {
  std::mutex mu;
  std::map<std::string, std::shared_ptr<Env>> cache;
  // Telemetry lives beside the entry map, guarded by the same mutex every
  // touch already holds: clearing or evicting entries never discards the
  // shard's history, so the aggregate counters are monotone process-wide.
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
};

DeployCacheShard* DeployCacheShards() {
  static auto* shards = new DeployCacheShard[kDeployCacheShards];
  return shards;
}

DeployCacheShard& DeploymentCacheShard(const std::string& key) {
  return DeployCacheShards()[std::hash<std::string>{}(key) %
                             kDeployCacheShards];
}
}  // namespace

uint64_t ReplicateCalls() { return g_replicate_calls.load(); }

DeploymentCacheStats AggregateDeploymentCacheStats() {
  DeploymentCacheStats out;
  DeployCacheShard* shards = DeployCacheShards();
  for (size_t i = 0; i < kDeployCacheShards; ++i) {
    std::lock_guard<std::mutex> lock(shards[i].mu);
    out.hits += shards[i].hits;
    out.misses += shards[i].misses;
    out.insertions += shards[i].insertions;
    out.evictions += shards[i].evictions;
    out.entries += shards[i].cache.size();
  }
  return out;
}

void ReportDeploymentCacheCounters() {
  const DeploymentCacheStats s = AggregateDeploymentCacheStats();
  BenchReporter& r = BenchReporter::Global();
  r.RecordCounter("deployment_cache_hits", static_cast<double>(s.hits));
  r.RecordCounter("deployment_cache_misses", static_cast<double>(s.misses));
  r.RecordCounter("deployment_cache_insertions",
                  static_cast<double>(s.insertions));
  r.RecordCounter("deployment_cache_evictions",
                  static_cast<double>(s.evictions));
  r.RecordCounter("deployment_cache_entries", static_cast<double>(s.entries));
}

uint64_t DeploymentCacheHits() { return AggregateDeploymentCacheStats().hits; }
uint64_t DeploymentCacheMisses() {
  return AggregateDeploymentCacheStats().misses;
}

std::unique_ptr<Env> BuildEnv(size_t n, std::unique_ptr<Distribution> dist,
                              size_t items, uint64_t seed) {
  auto env = std::make_unique<Env>();
  env->net = std::make_unique<Network>();
  RingOptions ropts;
  ropts.seed = seed;
  env->ring = std::make_unique<ChordRing>(env->net.get(), ropts);
  Status s = env->ring->CreateNetwork(n);
  if (!s.ok()) {
    std::fprintf(stderr, "BuildEnv failed: %s\n", s.ToString().c_str());
    std::abort();
  }
  env->dist = std::move(dist);
  env->items = items;
  env->peers = n;
  env->seed = seed;
  Rng rng(seed ^ 0xDA7A);
  env->ring->InsertDatasetBulk(
      GenerateDataset(*env->dist, items, rng).keys);
  return env;
}

std::unique_ptr<Env> Env::Replicate() const {
  g_replicate_calls.fetch_add(1, std::memory_order_relaxed);
  return BuildEnv(peers, dist->Clone(), items, seed);
}

std::shared_ptr<Env> CachedDeployment(size_t n, const Distribution& dist,
                                      size_t items, uint64_t seed) {
  const std::string key =
      Fmt("%zu|%s|%zu|%llu", n, dist.Name().c_str(), items,
          static_cast<unsigned long long>(seed));
  // Build under the shard lock: concurrent first requests for one recipe
  // must not each pay the (expensive) build — exactly what the cache
  // exists to avoid. Different recipes almost always land on different
  // shards, so concurrent builds of distinct deployments no longer
  // serialize behind one global mutex.
  DeployCacheShard& shard = DeploymentCacheShard(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.cache.find(key);
  if (it != shard.cache.end()) {
    ++shard.hits;
    return it->second;
  }
  ++shard.misses;
  std::shared_ptr<Env> env = BuildEnv(n, dist.Clone(), items, seed);
  // Shared deployments serve concurrent read-only queries; warm the lazy
  // caches now so no reader ever writes.
  env->ring->PrepareConcurrentReads();
  shard.cache.emplace(key, env);
  ++shard.insertions;
  return env;
}

void ClearDeploymentCache() {
  DeployCacheShard* shards = DeployCacheShards();
  for (size_t i = 0; i < kDeployCacheShards; ++i) {
    std::lock_guard<std::mutex> lock(shards[i].mu);
    shards[i].evictions += shards[i].cache.size();
    shards[i].cache.clear();
  }
}

ReplicaPool::Lease ReplicaPool::Acquire() {
  std::unique_ptr<Env> env;
  {
    std::lock_guard<std::mutex> lock(mu_);
    while (!free_.empty() && env == nullptr) {
      Slot slot = std::move(free_.back());
      free_.pop_back();
      // A leaseholder mutated this replica: discard and rebuild below.
      // (A reverse-delta reset would be cheaper still, but rebuild-on-dirty
      // already caps builds at one per DIRTYING trial instead of one per
      // trial, and clean read-only trials reuse replicas for free.)
      if (!slot.dirty) env = std::move(slot.env);
    }
  }
  if (env == nullptr) {
    env = base_->Replicate();
    std::lock_guard<std::mutex> lock(mu_);
    ++builds_;
  }
  const uint64_t clean_epoch = env->ring->mutation_epoch();
  const double clean_now = env->net->Now();
  return Lease(this, std::move(env), clean_epoch, clean_now);
}

void ReplicaPool::Release(Slot slot) {
  std::lock_guard<std::mutex> lock(mu_);
  free_.push_back(std::move(slot));
}

ReplicaPool::Lease::~Lease() {
  if (env_ == nullptr || pool_ == nullptr) return;
  Slot slot;
  slot.clean_epoch = clean_epoch_;
  slot.clean_now = clean_now_;
  slot.dirty = env_->ring->mutation_epoch() != clean_epoch_ ||
               env_->net->Now() != clean_now_;
  slot.env = std::move(env_);
  pool_->Release(std::move(slot));
}

DensityEstimate RunDde(Env& env, const DdeOptions& options, uint64_t seed) {
  DdeOptions opts = options;
  opts.seed = seed;
  DistributionFreeEstimator estimator(env.ring.get(), opts);
  Rng rng(seed ^ 0x5EED);
  Result<NodeAddr> querier = env.ring->RandomAliveNode(rng);
  if (!querier.ok()) {
    std::fprintf(stderr, "no alive querier\n");
    std::abort();
  }
  Result<DensityEstimate> est = estimator.Estimate(*querier);
  if (!est.ok()) {
    std::fprintf(stderr, "estimate failed: %s\n",
                 est.status().ToString().c_str());
    std::abort();
  }
  BenchReporter::Global().AddCost(est->cost.messages, est->cost.bytes);
  // Forward failure stats only when something actually failed: a fault-free
  // run must leave the reporter untouched so its JSON stays byte-identical
  // to pre-fault-layer builds.
  if (est->failed_probes != 0 || est->retries != 0 || est->timeouts != 0) {
    BenchReporter::Global().AddFailureStats(est->failed_probes, est->retries,
                                            est->timeouts);
  }
  return std::move(*est);
}

DensityEstimate RunDdeEpoch(const EpochView& view, const DdeOptions& options,
                            uint64_t seed) {
  // Mirrors RunDde step for step (same seed derivations, same reporting),
  // with every ring read resolved against the pinned epoch.
  DdeOptions opts = options;
  opts.seed = seed;
  DistributionFreeEstimator estimator(&view, opts);
  Rng rng(seed ^ 0x5EED);
  Result<NodeAddr> querier = view.RandomAliveNode(rng);
  if (!querier.ok()) {
    std::fprintf(stderr, "no alive querier\n");
    std::abort();
  }
  Result<DensityEstimate> est = estimator.Estimate(*querier);
  if (!est.ok()) {
    std::fprintf(stderr, "estimate failed: %s\n",
                 est.status().ToString().c_str());
    std::abort();
  }
  BenchReporter::Global().AddCost(est->cost.messages, est->cost.bytes);
  if (est->failed_probes != 0 || est->retries != 0 || est->timeouts != 0) {
    BenchReporter::Global().AddFailureStats(est->failed_probes, est->retries,
                                            est->timeouts);
  }
  return std::move(*est);
}

namespace {

/// Everything RepeatDde needs from one trial, gathered before reduction.
struct TrialOutcome {
  AccuracyReport accuracy;
  CostCounters cost;
  size_t peers_probed = 0;
  double total_error = 0.0;
};

TrialOutcome RunTrial(Env& env, const DdeOptions& options, uint64_t seed) {
  TrialOutcome out;
  const DensityEstimate e = RunDde(env, options, seed);
  out.accuracy = CompareCdfToTruth(e.cdf, *env.dist);
  out.cost = e.cost;
  out.peers_probed = e.peers_probed;
  const double n_true = static_cast<double>(env.ring->TotalItems());
  if (n_true > 0) {
    out.total_error = std::abs(e.estimated_total_items - n_true) / n_true;
  }
  return out;
}

/// RunTrial against a pinned epoch: accuracy is still scored against the
/// env's ground-truth distribution, but the population total the count
/// error normalizes by is the VIEW's (what the frozen epoch held), so the
/// score stays a pure function of (view, seed) under concurrent mutation.
TrialOutcome RunTrialEpoch(Env& env, const EpochView& view,
                           const DdeOptions& options, uint64_t seed) {
  TrialOutcome out;
  const DensityEstimate e = RunDdeEpoch(view, options, seed);
  out.accuracy = CompareCdfToTruth(e.cdf, *env.dist);
  out.cost = e.cost;
  out.peers_probed = e.peers_probed;
  const double n_true = static_cast<double>(view.total_items());
  if (n_true > 0) {
    out.total_error = std::abs(e.estimated_total_items - n_true) / n_true;
  }
  return out;
}

/// Historical per-trial seed schedule, kept so tables match runs of
/// earlier revisions rep for rep.
uint64_t TrialSeed(uint64_t seed_base, int r) {
  return seed_base + static_cast<uint64_t>(r) * 7919;
}

/// Reduces trial outcomes in trial order — identical arithmetic for every
/// thread count.
RepeatedResult ReduceTrials(const std::vector<TrialOutcome>& trials) {
  RepeatedResult out;
  std::vector<AccuracyReport> reports;
  reports.reserve(trials.size());
  for (const TrialOutcome& t : trials) {
    reports.push_back(t.accuracy);
    out.mean_messages += static_cast<double>(t.cost.messages);
    out.mean_hops += static_cast<double>(t.cost.hops);
    out.mean_bytes += static_cast<double>(t.cost.bytes);
    out.mean_peers += static_cast<double>(t.peers_probed);
    out.mean_total_error += t.total_error;
  }
  const double r = trials.empty() ? 1.0 : static_cast<double>(trials.size());
  out.accuracy = MeanReport(reports);
  out.mean_messages /= r;
  out.mean_hops /= r;
  out.mean_bytes /= r;
  out.mean_peers /= r;
  out.mean_total_error /= r;
  return out;
}

}  // namespace

RepeatedResult RepeatDde(Env& env, DdeOptions options, int reps,
                         uint64_t seed_base, ThreadPool* pool) {
  ThreadPool& p = pool != nullptr ? *pool : ThreadPool::Global();
  std::vector<TrialOutcome> trials(static_cast<size_t>(reps));
  if (p.worker_count() == 0 || reps <= 1 || ThreadPool::InWorker()) {
    // Serial path: trials share `env` directly.
    for (int r = 0; r < reps; ++r) {
      trials[static_cast<size_t>(r)] =
          RunTrial(env, options, TrialSeed(seed_base, r));
    }
  } else {
    // Zero-copy parallel path: estimation is read-only on ring state and
    // charges a per-query CostContext, so every trial runs against the
    // SAME deployment snapshot — no replicas, no per-trial setup. Warm the
    // lazy caches first so concurrent readers never write, then fan out.
    // Each trial's outcome is a pure function of (deployment, trial seed),
    // identical to what the serial loop above produces.
    env.ring->PrepareConcurrentReads();
    p.ParallelFor(0, static_cast<size_t>(reps), [&](size_t r) {
      trials[r] = RunTrial(env, options,
                           TrialSeed(seed_base, static_cast<int>(r)));
    });
  }
  return ReduceTrials(trials);
}

RepeatedResult RepeatDdeEpoch(Env& env, const EpochView& view,
                              DdeOptions options, int reps,
                              uint64_t seed_base, ThreadPool* pool) {
  ThreadPool& p = pool != nullptr ? *pool : ThreadPool::Global();
  std::vector<TrialOutcome> trials(static_cast<size_t>(reps));
  if (p.worker_count() == 0 || reps <= 1 || ThreadPool::InWorker()) {
    for (int r = 0; r < reps; ++r) {
      trials[static_cast<size_t>(r)] =
          RunTrialEpoch(env, view, options, TrialSeed(seed_base, r));
    }
  } else {
    // Unlike RepeatDde's shared-snapshot path, no PrepareConcurrentReads
    // warm-up is needed: trials touch only the immutable view (plus the
    // network's atomics), never lazy live-ring caches.
    p.ParallelFor(0, static_cast<size_t>(reps), [&](size_t r) {
      trials[r] = RunTrialEpoch(env, view, options,
                                TrialSeed(seed_base, static_cast<int>(r)));
    });
  }
  return ReduceTrials(trials);
}

RepeatedResult RepeatDdeReplicated(Env& env, DdeOptions options, int reps,
                                   uint64_t seed_base, ThreadPool* pool) {
  ThreadPool& p = pool != nullptr ? *pool : ThreadPool::Global();
  std::vector<TrialOutcome> trials(static_cast<size_t>(reps));
  if (p.worker_count() == 0 || reps <= 1 || ThreadPool::InWorker()) {
    for (int r = 0; r < reps; ++r) {
      trials[static_cast<size_t>(r)] =
          RunTrial(env, options, TrialSeed(seed_base, r));
    }
  } else {
    // Each trial rebuilds a private deterministic replica of the
    // deployment — the pre-shared-snapshot engine, preserved as the
    // reference implementation and the e17 setup-cost baseline.
    p.ParallelFor(0, static_cast<size_t>(reps), [&](size_t r) {
      std::unique_ptr<Env> replica = env.Replicate();
      trials[r] = RunTrial(*replica, options,
                           TrialSeed(seed_base, static_cast<int>(r)));
    });
  }
  return ReduceTrials(trials);
}

RepeatedResult RepeatDdeMutating(
    ReplicaPool& pool_of_replicas, DdeOptions options, int reps,
    uint64_t seed_base, const std::function<void(Env&, int)>& prepare,
    ThreadPool* pool) {
  ThreadPool& p = pool != nullptr ? *pool : ThreadPool::Global();
  std::vector<TrialOutcome> trials(static_cast<size_t>(reps));
  const auto run_one = [&](size_t r) {
    // Every trial — serial or parallel — starts from a pristine leased
    // replica, mutates it via `prepare`, and hands it back; the pool
    // rebuilds lazily only when the trial actually dirtied it.
    ReplicaPool::Lease lease = pool_of_replicas.Acquire();
    if (prepare) prepare(lease.env(), static_cast<int>(r));
    trials[r] = RunTrial(lease.env(), options,
                         TrialSeed(seed_base, static_cast<int>(r)));
  };
  if (p.worker_count() == 0 || reps <= 1 || ThreadPool::InWorker()) {
    for (size_t r = 0; r < static_cast<size_t>(reps); ++r) run_one(r);
  } else {
    p.ParallelFor(0, static_cast<size_t>(reps), run_one);
  }
  return ReduceTrials(trials);
}

Env& RowEnv(Env& base, std::unique_ptr<Env>& storage) {
  if (ThreadPool::Global().worker_count() == 0) return base;
  storage = base.Replicate();
  return *storage;
}

ServingEngine::ServingEngine(SnapshotManager* manager, Options options)
    : manager_(manager), options_(std::move(options)) {}

ServingEngine::~ServingEngine() {
  if (!workers_.empty()) Stop();
}

void ServingEngine::Start() {
  stop_.store(false, std::memory_order_release);
  logs_.assign(static_cast<size_t>(options_.threads), WorkerLog{});
  completed_.clear();
  for (int t = 0; t < options_.threads; ++t) {
    completed_.push_back(std::make_unique<std::atomic<uint64_t>>(0));
  }
  started_ = std::chrono::steady_clock::now();
  workers_.reserve(static_cast<size_t>(options_.threads));
  for (int t = 0; t < options_.threads; ++t) {
    WorkerLog* log = &logs_[static_cast<size_t>(t)];
    std::atomic<uint64_t>* completed = completed_[static_cast<size_t>(t)].get();
    workers_.emplace_back(
        [this, log, completed] { WorkerLoop(log, completed); });
  }
}

std::vector<uint64_t> ServingEngine::Completions() const {
  std::vector<uint64_t> out;
  out.reserve(completed_.size());
  for (const auto& c : completed_) {
    out.push_back(c->load(std::memory_order_acquire));
  }
  return out;
}

void ServingEngine::WorkerLoop(WorkerLog* log,
                               std::atomic<uint64_t>* completed) {
  // Pin once, then serve every query against the same pin until the head
  // sequence reports a newer epoch: probe scheduling is batched per epoch
  // (one lock-free atomic load per query), not re-pinned per trial.
  std::shared_ptr<const EpochView> view = manager_->Current();
  while (!stop_.load(std::memory_order_acquire)) {
    if (manager_->head_sequence() != view->sequence()) {
      view = manager_->Current();
    }
    const uint64_t i =
        query_counter_.fetch_add(1, std::memory_order_relaxed);
    const size_t cycle = static_cast<size_t>(i % options_.seed_cycle);
    const uint64_t seed = TrialSeed(options_.seed_base,
                                    static_cast<int>(cycle));
    const auto t0 = std::chrono::steady_clock::now();

    DdeOptions opts = options_.dde;
    opts.seed = seed;
    DistributionFreeEstimator estimator(view.get(), opts);
    Rng rng(seed ^ 0x5EED);
    Result<NodeAddr> querier = view->RandomAliveNode(rng);
    if (!querier.ok()) {
      ++log->failed;
      completed->fetch_add(1, std::memory_order_acq_rel);
      continue;
    }
    Result<DensityEstimate> est = estimator.Estimate(*querier);
    if (!est.ok()) {
      ++log->failed;
      completed->fetch_add(1, std::memory_order_acq_rel);
      continue;
    }

    // Staleness at COMPLETION: how many publishes the head advanced past
    // the epoch this answer was computed from.
    const uint64_t head = manager_->head_sequence();
    log->staleness.push_back(
        static_cast<uint32_t>(head - view->sequence()));
    log->query_seconds_sum +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (options_.oracle_cdfs != nullptr) {
      log->ks_sum += SupDistanceCdf(
          est->cdf, (*options_.oracle_cdfs)[cycle], 0.0, 1.0);
    }
    ++log->count;
    completed->fetch_add(1, std::memory_order_acq_rel);
  }
}

ServingEngine::Stats ServingEngine::Stop() {
  stop_.store(true, std::memory_order_release);
  for (std::thread& w : workers_) w.join();
  workers_.clear();
  Stats s;
  s.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started_)
          .count();
  std::vector<uint32_t> staleness;
  double ks_sum = 0.0;
  double query_seconds_sum = 0.0;
  for (const WorkerLog& log : logs_) {
    s.estimates += log.count;
    s.failed += log.failed;
    ks_sum += log.ks_sum;
    query_seconds_sum += log.query_seconds_sum;
    staleness.insert(staleness.end(), log.staleness.begin(),
                     log.staleness.end());
  }
  if (s.wall_seconds > 0.0) {
    s.estimates_per_sec = static_cast<double>(s.estimates) / s.wall_seconds;
  }
  if (!staleness.empty()) {
    std::sort(staleness.begin(), staleness.end());
    const auto nearest_rank = [&](double p) {
      const size_t idx = std::min(
          staleness.size() - 1,
          static_cast<size_t>(p * static_cast<double>(staleness.size())));
      return static_cast<double>(staleness[idx]);
    };
    s.staleness_p50 = nearest_rank(0.50);
    s.staleness_p99 = nearest_rank(0.99);
    s.staleness_max = static_cast<double>(staleness.back());
  }
  if (s.estimates > 0) {
    s.mean_ks_vs_oracle = ks_sum / static_cast<double>(s.estimates);
    s.mean_query_seconds =
        query_seconds_sum / static_cast<double>(s.estimates);
  }
  return s;
}

bool SmokeMode() {
  static const bool smoke = std::getenv("RINGDDE_SMOKE") != nullptr;
  return smoke;
}

size_t Scaled(size_t full, size_t smoke) {
  return SmokeMode() ? smoke : full;
}

int ScaledInt(int full, int smoke) { return SmokeMode() ? smoke : full; }

Table::Table(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {}

void Table::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void Table::AddRows(std::vector<std::vector<std::string>> rows) {
  for (auto& row : rows) rows_.push_back(std::move(row));
}

void Table::Print() const {
  std::printf("# %s\n", title_.c_str());
  // Column widths from header + cells.
  std::vector<size_t> width(columns_.size(), 0);
  for (size_t c = 0; c < columns_.size(); ++c) {
    width[c] = columns_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < width.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      std::printf("%-*s%s", static_cast<int>(width[c]), cells[c].c_str(),
                  c + 1 == cells.size() ? "\n" : "  ");
    }
  };
  print_row(columns_);
  for (const auto& row : rows_) print_row(row);
  std::printf("\n");
  BenchReporter::Global().RecordTable(title_, columns_, rows_);
}

std::string Fmt(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list sized;
  va_copy(sized, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, sized);
  va_end(sized);
  if (needed < 0) {
    va_end(args);
    return std::string();
  }
  std::string out(static_cast<size_t>(needed), '\0');
  // C++11 strings are contiguous and writable through &out[0]; vsnprintf
  // writes the terminating NUL into the byte past `needed`, which data()
  // guarantees to exist.
  std::vsnprintf(out.data(), static_cast<size_t>(needed) + 1, fmt, args);
  va_end(args);
  return out;
}

}  // namespace ringdde::bench
