#include "bench_util.h"

#include <cstdarg>
#include <cstdlib>

namespace ringdde::bench {

std::unique_ptr<Env> BuildEnv(size_t n, std::unique_ptr<Distribution> dist,
                              size_t items, uint64_t seed) {
  auto env = std::make_unique<Env>();
  env->net = std::make_unique<Network>();
  RingOptions ropts;
  ropts.seed = seed;
  env->ring = std::make_unique<ChordRing>(env->net.get(), ropts);
  Status s = env->ring->CreateNetwork(n);
  if (!s.ok()) {
    std::fprintf(stderr, "BuildEnv failed: %s\n", s.ToString().c_str());
    std::abort();
  }
  env->dist = std::move(dist);
  env->items = items;
  env->peers = n;
  env->seed = seed;
  Rng rng(seed ^ 0xDA7A);
  env->ring->InsertDatasetBulk(
      GenerateDataset(*env->dist, items, rng).keys);
  return env;
}

std::unique_ptr<Env> Env::Replicate() const {
  return BuildEnv(peers, dist->Clone(), items, seed);
}

DensityEstimate RunDde(Env& env, const DdeOptions& options, uint64_t seed) {
  DdeOptions opts = options;
  opts.seed = seed;
  DistributionFreeEstimator estimator(env.ring.get(), opts);
  Rng rng(seed ^ 0x5EED);
  Result<NodeAddr> querier = env.ring->RandomAliveNode(rng);
  if (!querier.ok()) {
    std::fprintf(stderr, "no alive querier\n");
    std::abort();
  }
  Result<DensityEstimate> est = estimator.Estimate(*querier);
  if (!est.ok()) {
    std::fprintf(stderr, "estimate failed: %s\n",
                 est.status().ToString().c_str());
    std::abort();
  }
  BenchReporter::Global().AddCost(est->cost.messages, est->cost.bytes);
  // Forward failure stats only when something actually failed: a fault-free
  // run must leave the reporter untouched so its JSON stays byte-identical
  // to pre-fault-layer builds.
  if (est->failed_probes != 0 || est->retries != 0 || est->timeouts != 0) {
    BenchReporter::Global().AddFailureStats(est->failed_probes, est->retries,
                                            est->timeouts);
  }
  return std::move(*est);
}

namespace {

/// Everything RepeatDde needs from one trial, gathered before reduction.
struct TrialOutcome {
  AccuracyReport accuracy;
  CostCounters cost;
  size_t peers_probed = 0;
  double total_error = 0.0;
};

TrialOutcome RunTrial(Env& env, const DdeOptions& options, uint64_t seed) {
  TrialOutcome out;
  const DensityEstimate e = RunDde(env, options, seed);
  out.accuracy = CompareCdfToTruth(e.cdf, *env.dist);
  out.cost = e.cost;
  out.peers_probed = e.peers_probed;
  const double n_true = static_cast<double>(env.ring->TotalItems());
  if (n_true > 0) {
    out.total_error = std::abs(e.estimated_total_items - n_true) / n_true;
  }
  return out;
}

}  // namespace

RepeatedResult RepeatDde(Env& env, DdeOptions options, int reps,
                         uint64_t seed_base, ThreadPool* pool) {
  ThreadPool& p = pool != nullptr ? *pool : ThreadPool::Global();
  std::vector<TrialOutcome> trials(static_cast<size_t>(reps));
  const auto trial_seed = [seed_base](int r) {
    // Keep the historical arithmetic seed schedule so tables match runs of
    // earlier revisions rep for rep.
    return seed_base + static_cast<uint64_t>(r) * 7919;
  };
  if (p.worker_count() == 0 || reps <= 1 || ThreadPool::InWorker()) {
    // Serial path: trials share `env` directly. Trials are independent —
    // estimation only reads ring state and charges the (unreported
    // per-trial) shared counters — so this equals the parallel path.
    for (int r = 0; r < reps; ++r) {
      trials[static_cast<size_t>(r)] = RunTrial(env, options, trial_seed(r));
    }
  } else {
    // Parallel path: each trial runs against a private deterministic
    // replica of the deployment, so no simulator state is shared between
    // threads and every trial sees exactly the state a serial run would.
    p.ParallelFor(0, static_cast<size_t>(reps), [&](size_t r) {
      std::unique_ptr<Env> replica = env.Replicate();
      trials[r] = RunTrial(*replica, options, trial_seed(static_cast<int>(r)));
    });
  }

  // Reduce in trial order — identical arithmetic for every thread count.
  RepeatedResult out;
  std::vector<AccuracyReport> reports;
  reports.reserve(trials.size());
  for (const TrialOutcome& t : trials) {
    reports.push_back(t.accuracy);
    out.mean_messages += static_cast<double>(t.cost.messages);
    out.mean_hops += static_cast<double>(t.cost.hops);
    out.mean_bytes += static_cast<double>(t.cost.bytes);
    out.mean_peers += static_cast<double>(t.peers_probed);
    out.mean_total_error += t.total_error;
  }
  const double r = static_cast<double>(reps);
  out.accuracy = MeanReport(reports);
  out.mean_messages /= r;
  out.mean_hops /= r;
  out.mean_bytes /= r;
  out.mean_peers /= r;
  out.mean_total_error /= r;
  return out;
}

Env& RowEnv(Env& base, std::unique_ptr<Env>& storage) {
  if (ThreadPool::Global().worker_count() == 0) return base;
  storage = base.Replicate();
  return *storage;
}

bool SmokeMode() {
  static const bool smoke = std::getenv("RINGDDE_SMOKE") != nullptr;
  return smoke;
}

size_t Scaled(size_t full, size_t smoke) {
  return SmokeMode() ? smoke : full;
}

int ScaledInt(int full, int smoke) { return SmokeMode() ? smoke : full; }

Table::Table(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {}

void Table::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void Table::AddRows(std::vector<std::vector<std::string>> rows) {
  for (auto& row : rows) rows_.push_back(std::move(row));
}

void Table::Print() const {
  std::printf("# %s\n", title_.c_str());
  // Column widths from header + cells.
  std::vector<size_t> width(columns_.size(), 0);
  for (size_t c = 0; c < columns_.size(); ++c) {
    width[c] = columns_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < width.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      std::printf("%-*s%s", static_cast<int>(width[c]), cells[c].c_str(),
                  c + 1 == cells.size() ? "\n" : "  ");
    }
  };
  print_row(columns_);
  for (const auto& row : rows_) print_row(row);
  std::printf("\n");
  BenchReporter::Global().RecordTable(title_, columns_, rows_);
}

std::string Fmt(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list sized;
  va_copy(sized, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, sized);
  va_end(sized);
  if (needed < 0) {
    va_end(args);
    return std::string();
  }
  std::string out(static_cast<size_t>(needed), '\0');
  // C++11 strings are contiguous and writable through &out[0]; vsnprintf
  // writes the terminating NUL into the byte past `needed`, which data()
  // guarantees to exist.
  std::vsnprintf(out.data(), static_cast<size_t>(needed) + 1, fmt, args);
  va_end(args);
  return out;
}

}  // namespace ringdde::bench
