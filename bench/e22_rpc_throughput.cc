// E22 — RPC transport throughput: the event-loop server and pipelined
// channel against the thread-per-connection / blocking-call baseline.
//
// A 256-byte echo RPC is driven through every cell of the matrix
// {1,16,64} clients x {blocking, pipelined} channel x {thread-per-conn,
// epoll} server, one client thread per channel (connections are the
// contended resource, not CPU — the machine may have a single core).
// Expected shape: the epoll server holds throughput roughly flat as
// clients grow where thread-per-connection pays a thread per socket, and
// pipelining (window 32 over one connection) multiplies RPCs per
// syscall round-trip on both servers. The acceptance gate is
// epoll+pipelined >= 3x threadconn+blocking at the largest client count.
//
// The run also fits CalibratedLatency to the measured epoll+pipelined
// latency reservoir and replays the fitted model through Monte Carlo
// draws — closing the loop between the wire and the simulator's latency
// model (calibration error at p50/p99 is reported as a counter).
//
// Allocation hygiene: a global operator new override counts allocations
// (client AND in-process server) across a steady-state pipelined window;
// buffer reuse in the channel, server, and codec should hold
// allocs_per_rpc to a small constant.
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <new>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "sim/latency_model.h"
#include "sim/latency_reservoir.h"
#include "sim/rpc_server.h"
#include "sim/socket_transport.h"

namespace {
std::atomic<uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace ringdde::bench {
namespace {

constexpr size_t kPayloadBytes = 256;
constexpr size_t kPipelineWindow = 32;

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Frame EchoRequest() {
  Frame req;
  req.type = static_cast<uint8_t>(RpcType::kHello);
  req.payload.assign(kPayloadBytes, 0xAB);
  return req;
}

struct CellResult {
  bool ok = false;
  double rpcs_per_sec = 0.0;
  uint64_t wire_bytes = 0;
  std::vector<double> latencies;
};

/// One client thread: `total` sequential blocking calls on its own
/// connection.
void DriveBlocking(uint16_t port, int total, std::mutex* mu, CellResult* out) {
  SocketRpcChannel channel(port);
  const Frame req = EchoRequest();
  bool ok = true;
  for (int i = 0; i < total; ++i) {
    Result<Frame> reply = channel.Call(req);
    if (!reply.ok() || reply->payload.size() != kPayloadBytes) {
      ok = false;
      break;
    }
  }
  std::lock_guard<std::mutex> lock(*mu);
  out->ok = out->ok && ok;
  out->wire_bytes += channel.stats().wire_bytes_sent +
                     channel.stats().wire_bytes_received;
  const std::vector<double>& lat =
      channel.stats().rpc_latency_seconds.samples();
  out->latencies.insert(out->latencies.end(), lat.begin(), lat.end());
}

/// One client thread: `total` calls pipelined through one multiplexed
/// connection, at most kPipelineWindow outstanding.
void DrivePipelined(uint16_t port, int total, std::mutex* mu,
                    CellResult* out) {
  MultiplexedRpcChannel channel(port);
  const Frame req = EchoRequest();
  std::deque<uint64_t> window;
  Frame reply;
  bool ok = true;
  for (int i = 0; i < total && ok; ++i) {
    Result<uint64_t> cid = channel.Start(req);
    if (!cid.ok()) {
      ok = false;
      break;
    }
    window.push_back(*cid);
    if (window.size() >= kPipelineWindow) {
      ok = channel.Await(window.front(), &reply).ok() &&
           reply.payload.size() == kPayloadBytes;
      window.pop_front();
    }
  }
  while (ok && !window.empty()) {
    ok = channel.Await(window.front(), &reply).ok();
    window.pop_front();
  }
  std::lock_guard<std::mutex> lock(*mu);
  out->ok = out->ok && ok;
  out->wire_bytes += channel.stats().wire_bytes_sent +
                     channel.stats().wire_bytes_received;
  const std::vector<double>& lat =
      channel.stats().rpc_latency_seconds.samples();
  out->latencies.insert(out->latencies.end(), lat.begin(), lat.end());
}

CellResult RunCell(uint16_t port, int clients, bool pipelined,
                   int total_rpcs) {
  CellResult result;
  result.ok = true;
  std::mutex mu;
  const int per_client = total_rpcs / clients;
  const double start = NowSeconds();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back(pipelined ? DrivePipelined : DriveBlocking, port,
                         per_client, &mu, &result);
  }
  for (std::thread& t : threads) t.join();
  const double elapsed = NowSeconds() - start;
  const double done = static_cast<double>(per_client) * clients;
  result.rpcs_per_sec = elapsed > 0.0 ? done / elapsed : 0.0;
  return result;
}

/// Steady-state allocations per RPC on the epoll+pipelined path: warm one
/// channel past its buffer-growth phase, then count global operator-new
/// calls (client and in-process server together) across a measured batch.
double MeasureAllocsPerRpc(uint16_t port, int measured_rpcs) {
  MultiplexedRpcChannel channel(port);
  const Frame req = EchoRequest();
  Frame reply;
  for (int i = 0; i < 128; ++i) {
    if (!channel.Call(req).ok()) return -1.0;
  }
  std::deque<uint64_t> window;
  const uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  for (int i = 0; i < measured_rpcs; ++i) {
    Result<uint64_t> cid = channel.Start(req);
    if (!cid.ok()) return -1.0;
    window.push_back(*cid);
    if (window.size() >= kPipelineWindow) {
      if (!channel.Await(window.front(), &reply).ok()) return -1.0;
      window.pop_front();
    }
  }
  while (!window.empty()) {
    if (!channel.Await(window.front(), &reply).ok()) return -1.0;
    window.pop_front();
  }
  const uint64_t after = g_alloc_count.load(std::memory_order_relaxed);
  return static_cast<double>(after - before) / measured_rpcs;
}

void Run() {
  const int kTotalRpcs = ScaledInt(16000, 800);
  const std::vector<int> kClients =
      SmokeMode() ? std::vector<int>{1, 4} : std::vector<int>{1, 16, 64};
  const int max_clients = kClients.back();

  Table table(Fmt("E22 RPC throughput — %zu-byte echo, %d RPCs per cell, "
                  "pipeline window %zu",
                  kPayloadBytes, kTotalRpcs, kPipelineWindow),
              {"server", "channel", "clients", "rpcs_per_sec", "p50_ms",
               "p99_ms", "wire_kb"});

  auto echo = [](const Frame& request, Frame* reply) {
    reply->type = request.type;
    reply->payload = request.payload;
    return Status::OK();
  };

  double baseline_rps = 0.0, epoll_pipelined_rps = 0.0;
  double baseline_p99_ms = 0.0, epoll_pipelined_p99_ms = 0.0;
  std::vector<double> calibration_samples;
  uint64_t total_rpcs_run = 0;
  uint64_t total_wire_bytes = 0;

  const struct {
    const char* name;
    RpcServerMode mode;
  } kServers[] = {{"threadconn", RpcServerMode::kThreadPerConnection},
                  {"epoll", RpcServerMode::kEventLoop}};
  for (const auto& srv : kServers) {
    RpcServerOptions options;
    options.mode = srv.mode;
    RpcServer server(echo, options);
    if (!server.Start().ok()) {
      table.AddRow({srv.name, "-", "-", "-", "-", "-", "-"});
      continue;
    }
    for (bool pipelined : {false, true}) {
      for (int clients : kClients) {
        CellResult cell =
            RunCell(server.port(), clients, pipelined, kTotalRpcs);
        const char* channel_name = pipelined ? "pipelined" : "blocking";
        if (!cell.ok) {
          table.AddRow({srv.name, channel_name, Fmt("%d", clients), "FAIL",
                        "-", "-", "-"});
          continue;
        }
        const double p50_ms = 1000.0 * PercentileOf(cell.latencies, 0.50);
        const double p99_ms = 1000.0 * PercentileOf(cell.latencies, 0.99);
        table.AddRow({srv.name, channel_name, Fmt("%d", clients),
                      Fmt("%.0f", cell.rpcs_per_sec), Fmt("%.3f", p50_ms),
                      Fmt("%.3f", p99_ms),
                      Fmt("%.1f", cell.wire_bytes / 1024.0)});
        total_rpcs_run += static_cast<uint64_t>(kTotalRpcs);
        total_wire_bytes += cell.wire_bytes;
        if (clients == max_clients) {
          if (!pipelined && srv.mode == RpcServerMode::kThreadPerConnection) {
            baseline_rps = cell.rpcs_per_sec;
            baseline_p99_ms = p99_ms;
          }
          if (pipelined && srv.mode == RpcServerMode::kEventLoop) {
            epoll_pipelined_rps = cell.rpcs_per_sec;
            epoll_pipelined_p99_ms = p99_ms;
            calibration_samples = cell.latencies;
          }
        }
      }
    }
    if (srv.mode == RpcServerMode::kEventLoop) {
      const double allocs_per_rpc =
          MeasureAllocsPerRpc(server.port(), ScaledInt(2000, 400));
      BenchReporter::Global().RecordCounter("allocs_per_rpc", allocs_per_rpc);
    }
    server.Stop();
  }
  table.Print();

  // Wire-calibrated latency model: fit a log-normal to the measured
  // epoll+pipelined reservoir, then check that Monte Carlo draws from the
  // fitted model reproduce the measured percentiles.
  double measured_p50_ms = 0.0, measured_p99_ms = 0.0;
  double calibrated_p50_ms = 0.0, calibrated_p99_ms = 0.0;
  double err_p50 = 1.0, err_p99 = 1.0;
  if (!calibration_samples.empty()) {
    measured_p50_ms = 1000.0 * PercentileOf(calibration_samples, 0.50);
    measured_p99_ms = 1000.0 * PercentileOf(calibration_samples, 0.99);
    const CalibratedLatency model =
        CalibratedLatency::FitFromSamples(calibration_samples);
    Rng rng(0xE22);
    std::vector<double> draws;
    draws.reserve(20000);
    for (int i = 0; i < 20000; ++i) draws.push_back(model.Sample(rng, 0, 1));
    calibrated_p50_ms = 1000.0 * PercentileOf(draws, 0.50);
    calibrated_p99_ms = 1000.0 * PercentileOf(draws, 0.99);
    if (measured_p50_ms > 0.0) {
      err_p50 = std::abs(calibrated_p50_ms - measured_p50_ms) / measured_p50_ms;
    }
    if (measured_p99_ms > 0.0) {
      err_p99 = std::abs(calibrated_p99_ms - measured_p99_ms) / measured_p99_ms;
    }
    std::printf(
        "calibration: measured p50=%.3fms p99=%.3fms | fitted model "
        "p50=%.3fms p99=%.3fms | err p50=%.1f%% p99=%.1f%%\n\n",
        measured_p50_ms, measured_p99_ms, calibrated_p50_ms,
        calibrated_p99_ms, 100.0 * err_p50, 100.0 * err_p99);
  }

  BenchReporter::Global().AddCost(total_rpcs_run, total_wire_bytes);
  BenchReporter::Global().RecordCounter("rpcs_per_sec_baseline",
                                        baseline_rps);
  BenchReporter::Global().RecordCounter("rpcs_per_sec_epoll_pipelined",
                                        epoll_pipelined_rps);
  BenchReporter::Global().RecordCounter(
      "rpc_speedup_pipelined_vs_baseline",
      baseline_rps > 0.0 ? epoll_pipelined_rps / baseline_rps : 0.0);
  BenchReporter::Global().RecordCounter("rpc_latency_p99_ms_baseline",
                                        baseline_p99_ms);
  BenchReporter::Global().RecordCounter("rpc_latency_p99_ms_epoll_pipelined",
                                        epoll_pipelined_p99_ms);
  BenchReporter::Global().RecordCounter("measured_p50_ms", measured_p50_ms);
  BenchReporter::Global().RecordCounter("measured_p99_ms", measured_p99_ms);
  BenchReporter::Global().RecordCounter("calibrated_p50_ms",
                                        calibrated_p50_ms);
  BenchReporter::Global().RecordCounter("calibrated_p99_ms",
                                        calibrated_p99_ms);
  BenchReporter::Global().RecordCounter("calibration_err_p50", err_p50);
  BenchReporter::Global().RecordCounter("calibration_err_p99", err_p99);
}

}  // namespace
}  // namespace ringdde::bench

int main() {
  ringdde::bench::BenchRun run("e22_rpc_throughput");
  ringdde::bench::Run();
  return 0;
}
