// E16 — Fault tolerance: estimation accuracy and cost under injected
// faults (message drops, fail-stop crashes).
//
// (a) Drop-rate × crash-rate sweep at a fixed probe budget: the estimator
// degrades gracefully — it reconstructs from the m' < m probes that
// succeeded, widens its DKW bound accordingly (ConfidenceEpsilon), and
// reports how many probes failed, how many retries the RetryPolicy spent,
// and how many send attempts timed out. (b) Convergence under a harsh
// fixed fault mix: KS still falls as the probe budget m grows, i.e. faults
// cost accuracy per probe but not the distribution-free guarantee itself.
//
// Every row is a self-contained deployment (own Network with its own
// FaultInjector), so rows run concurrently on the global thread pool and
// the realized fault schedule is a pure function of the row's seeds.
#include <memory>

#include "bench_util.h"
#include "sim/fault_injector.h"

namespace ringdde::bench {
namespace {

/// BuildEnv with a fault plan attached to the network fabric. Mirrors the
/// BuildEnv recipe exactly (same ring seed, same dataset stream), so a row
/// with an all-zero FaultOptions reproduces the fault-free deployment.
std::unique_ptr<Env> BuildFaultEnv(size_t n,
                                   std::unique_ptr<Distribution> dist,
                                   size_t items, uint64_t seed,
                                   const FaultOptions& fopts) {
  auto env = std::make_unique<Env>();
  NetworkOptions nopts;
  nopts.faults = std::make_shared<FaultInjector>(fopts);
  env->net = std::make_unique<Network>(nopts);
  RingOptions ropts;
  ropts.seed = seed;
  env->ring = std::make_unique<ChordRing>(env->net.get(), ropts);
  Status s = env->ring->CreateNetwork(n);
  if (!s.ok()) {
    std::fprintf(stderr, "BuildFaultEnv failed: %s\n", s.ToString().c_str());
    std::abort();
  }
  env->dist = std::move(dist);
  env->items = items;
  env->peers = n;
  env->seed = seed;
  Rng rng(seed ^ 0xDA7A);
  env->ring->InsertDatasetBulk(GenerateDataset(*env->dist, items, rng).keys);
  return env;
}

/// The retry schedule every faulted estimation in this experiment uses:
/// up to 4 attempts, 50 ms initial backoff doubling to 2 s, 10% jitter.
RetryPolicy BenchRetryPolicy() {
  RetryPolicy retry;
  retry.max_attempts = 4;
  return retry;
}

void RunFaultSweep() {
  const size_t kPeers = Scaled(1024, 128);
  const size_t kItems = Scaled(100000, 4000);
  const size_t kProbes = Scaled(256, 64);

  Table table(
      Fmt("E16a accuracy under faults — n=%zu, m=%zu, Normal(0.5,0.15), "
          "retry<=4",
          kPeers, kProbes),
      {"drop", "crash", "ks", "eps_dkw", "ok_probes", "failed_probes",
       "retries", "timeouts", "msgs"});

  struct FaultCase {
    double drop;
    double crash;
  };
  const std::vector<FaultCase> cases =
      SmokeMode() ? std::vector<FaultCase>{{0.0, 0.0}, {0.2, 0.05}}
                  : std::vector<FaultCase>{{0.0, 0.0},  {0.05, 0.0},
                                           {0.1, 0.0},  {0.2, 0.0},
                                           {0.0, 0.05}, {0.0, 0.1},
                                           {0.2, 0.05}, {0.3, 0.1}};
  table.AddRows(ParallelRows<std::vector<std::string>>(
      cases.size(), [&](size_t row) {
        const FaultCase& fc = cases[row];
        FaultOptions fopts;
        fopts.drop_probability = fc.drop;
        fopts.crash_probability = fc.crash;
        fopts.seed = 0xFA17 + row;
        auto env = BuildFaultEnv(
            kPeers,
            std::make_unique<TruncatedNormalDistribution>(0.5, 0.15),
            kItems, 161, fopts);

        DdeOptions opts;
        opts.num_probes = kProbes;
        opts.seed = 163;
        opts.retry = BenchRetryPolicy();
        DistributionFreeEstimator est(env->ring.get(), opts);
        Rng rng(167);
        auto e = est.Estimate(*env->ring->RandomAliveNode(rng));
        if (!e.ok()) {
          // Total outage (possible at extreme rates): report the vacuous
          // bound so the row stays comparable.
          return std::vector<std::string>{
              Fmt("%.2f", fc.drop), Fmt("%.2f", fc.crash), "1.0000",
              "1.0000", "0",        "-",                   "-",
              "-",                  "-"};
        }
        BenchReporter::Global().AddFailureStats(e->failed_probes, e->retries,
                                                e->timeouts);
        const double ks = CompareCdfToTruth(e->cdf, *env->dist).ks;
        const size_t ok_probes =
            e->probes_requested - static_cast<size_t>(e->failed_probes);
        return std::vector<std::string>{
            Fmt("%.2f", fc.drop),
            Fmt("%.2f", fc.crash),
            Fmt("%.4f", ks),
            Fmt("%.4f", e->ConfidenceEpsilon()),
            Fmt("%zu", ok_probes),
            Fmt("%llu", (unsigned long long)e->failed_probes),
            Fmt("%llu", (unsigned long long)e->retries),
            Fmt("%llu", (unsigned long long)e->timeouts),
            Fmt("%llu", (unsigned long long)e->cost.messages)};
      }));
  table.Print();
}

void RunConvergenceUnderFaults() {
  const size_t kPeers = Scaled(1024, 128);
  const size_t kItems = Scaled(100000, 4000);

  Table table(Fmt("E16b convergence under faults — n=%zu, drop=0.20, "
                  "crash=0.05, KS vs probe budget",
                  kPeers),
              {"m", "ks", "eps_dkw", "ok_probes", "failed_probes",
               "retries", "msgs"});

  const std::vector<size_t> budgets =
      SmokeMode() ? std::vector<size_t>{32, 64}
                  : std::vector<size_t>{32, 64, 128, 256, 512, 1024};
  table.AddRows(ParallelRows<std::vector<std::string>>(
      budgets.size(), [&](size_t row) {
        const size_t m = budgets[row];
        FaultOptions fopts;
        fopts.drop_probability = 0.2;
        fopts.crash_probability = 0.05;
        fopts.seed = 0xFA17;
        auto env = BuildFaultEnv(
            kPeers,
            std::make_unique<TruncatedNormalDistribution>(0.5, 0.15),
            kItems, 171, fopts);

        DdeOptions opts;
        opts.num_probes = m;
        opts.seed = 173 + m;
        opts.retry = BenchRetryPolicy();
        DistributionFreeEstimator est(env->ring.get(), opts);
        Rng rng(179);
        auto e = est.Estimate(*env->ring->RandomAliveNode(rng));
        if (!e.ok()) {
          return std::vector<std::string>{Fmt("%zu", m), "1.0000", "1.0000",
                                          "0",           "-",      "-",
                                          "-"};
        }
        BenchReporter::Global().AddFailureStats(e->failed_probes, e->retries,
                                                e->timeouts);
        const double ks = CompareCdfToTruth(e->cdf, *env->dist).ks;
        const size_t ok_probes =
            e->probes_requested - static_cast<size_t>(e->failed_probes);
        return std::vector<std::string>{
            Fmt("%zu", m),
            Fmt("%.4f", ks),
            Fmt("%.4f", e->ConfidenceEpsilon()),
            Fmt("%zu", ok_probes),
            Fmt("%llu", (unsigned long long)e->failed_probes),
            Fmt("%llu", (unsigned long long)e->retries),
            Fmt("%llu", (unsigned long long)e->cost.messages)};
      }));
  table.Print();
}

}  // namespace
}  // namespace ringdde::bench

int main() {
  ringdde::bench::BenchRun run("e16_fault_tolerance");
  // Register the failure counters up front: BENCH_e16_fault_tolerance.json
  // must carry them even if a (smoke) run happens to realize zero faults.
  ringdde::bench::BenchReporter::Global().AddFailureStats(0, 0, 0);
  ringdde::bench::RunFaultSweep();
  ringdde::bench::RunConvergenceUnderFaults();
  return 0;
}
