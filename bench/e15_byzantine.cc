// E15 — Robustness against lying probe responders (extension).
//
// A fraction of peers inflate their reported item counts 50x (e.g. to
// attract query traffic or poison a load balancer). Sweep the Byzantine
// fraction and compare plain reconstruction against density-winsorized
// reconstruction (ReconstructionOptions::density_winsor_fraction). The
// flip side — a genuine hotspot flattened by winsorization — is measured
// in ByzantineTest.GenuineSpikesAreTheCost.
//
// Byzantine fractions are independent deployments; rows run concurrently
// on the global thread pool.
#include <memory>
#include <unordered_set>

#include "bench_util.h"
#include "core/global_cdf.h"
#include "core/probe.h"

namespace ringdde::bench {
namespace {

void Run() {
  const size_t kPeers = Scaled(2048, 128);
  const size_t kItems = Scaled(200000, 5000);
  const size_t kProbes = Scaled(256, 64);

  Table table(Fmt("E15 lying responders (50x count inflation) — n=%zu, "
                  "N=%zu, m=%zu, Normal(0.5,0.15)",
                  kPeers, kItems, kProbes),
              {"byzantine_frac", "plain_ks", "plain_total_err",
               "winsor_ks", "winsor_total_err"});

  const std::vector<double> fractions =
      SmokeMode() ? std::vector<double>{0.0, 0.10}
                  : std::vector<double>{0.0, 0.01, 0.05, 0.10, 0.20};
  table.AddRows(ParallelRows<std::vector<std::string>>(
      fractions.size(), [&](size_t row) {
        const double frac = fractions[row];
        auto env = BuildEnv(
            kPeers,
            std::make_unique<TruncatedNormalDistribution>(0.5, 0.15),
            kItems, 601);
        // Choose the liars.
        Rng brng(7);
        std::unordered_set<NodeAddr> liars;
        const auto addrs = env->ring->AliveAddrs();
        for (NodeAddr a : addrs) {
          if (brng.Bernoulli(frac)) liars.insert(a);
        }
        // Collect probe responses, corrupting the liars' counts.
        CdfProber prober(env->ring.get());
        Rng prng(11);
        std::vector<LocalSummary> summaries;
        prober.ProbeUniform(*env->ring->RandomAliveNode(prng), kProbes,
                            prng, &summaries);
        for (LocalSummary& s : summaries) {
          if (liars.contains(s.addr)) s.item_count *= 50;
        }

        auto evaluate = [&](const ReconstructionOptions& opts, double* ks,
                            double* total_err) {
          auto r = ReconstructGlobalCdf(summaries, opts);
          if (!r.ok()) {
            *ks = 1.0;
            *total_err = 1.0;
            return;
          }
          *ks = CompareCdfToTruth(r->cdf, *env->dist).ks;
          *total_err =
              std::abs(r->estimated_total - double(kItems)) / kItems;
        };
        double pk, pe, wk, we;
        evaluate({}, &pk, &pe);
        ReconstructionOptions robust;
        robust.density_winsor_fraction = 0.05;
        evaluate(robust, &wk, &we);
        return std::vector<std::string>{Fmt("%.2f", frac), Fmt("%.4f", pk),
                                        Fmt("%.3f", pe), Fmt("%.4f", wk),
                                        Fmt("%.3f", we)};
      }));
  table.Print();
}

}  // namespace
}  // namespace ringdde::bench

int main() {
  ringdde::bench::BenchRun run("e15_byzantine");
  ringdde::bench::Run();
  return 0;
}
