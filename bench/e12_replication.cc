// E12 — Data durability: survival and traffic vs replication factor.
//
// Extension experiment (not in the paper's abstract): the estimator's
// input is the data itself, so under fail-stop churn the replication
// substrate decides how much distribution there is left to estimate.
// Sweep replication factor x maintenance cadence over a fixed crash/join
// schedule and report key survival, recovery+sync traffic, and the
// estimator's post-churn accuracy.
//
// Every scenario is a fully self-contained simulation (own network, own
// ring, own crash schedule), so the rows run concurrently on the global
// thread pool.
#include <memory>

#include "bench_util.h"
#include "ring/replication.h"

namespace ringdde::bench {
namespace {

struct Scenario {
  const char* label;
  uint32_t factor;      // 0 = no replication
  int maintain_every;   // crashes between stabilize+sync cycles
};

void Run() {
  const size_t kPeers = Scaled(512, 96);
  const size_t kItems = Scaled(100000, 4000);
  const int kCrashes = ScaledInt(100, 12);

  Table table(Fmt("E12 data survival under %d crash/join pairs — n=%zu, "
                  "N=%zu, durable_data=off",
                  kCrashes, kPeers, kItems),
              {"scenario", "survived", "lost", "recovered", "repl_msgs",
               "repl_MB", "post_ks"});

  const std::vector<Scenario> scenarios{
      Scenario{"none", 0, 1},      Scenario{"r=1 tight", 1, 1},
      Scenario{"r=1 lazy", 1, 10}, Scenario{"r=2 tight", 2, 1},
      Scenario{"r=2 lazy", 2, 10}, Scenario{"r=4 tight", 4, 1}};
  table.AddRows(ParallelRows<std::vector<std::string>>(
      scenarios.size(), [&](size_t row) {
        const Scenario& sc = scenarios[row];
        auto net = std::make_unique<Network>();
        RingOptions ropts;
        ropts.durable_data = false;
        ChordRing ring(net.get(), ropts);
        if (!ring.CreateNetwork(kPeers).ok()) {
          return std::vector<std::string>{sc.label, "-", "-", "-", "-",
                                          "-", "-"};
        }
        auto dist = std::make_unique<ZipfDistribution>(1000, 0.9);
        Rng rng(271);
        ring.InsertDatasetBulk(GenerateDataset(*dist, kItems, rng).keys);

        std::unique_ptr<ReplicationManager> repl;
        const uint64_t msgs_before = net->counters().messages;
        const uint64_t bytes_before = net->counters().bytes;
        if (sc.factor > 0) {
          ReplicationOptions opts;
          opts.replication_factor = sc.factor;
          repl = std::make_unique<ReplicationManager>(&ring, opts);
          repl->FullSync();
        }

        Rng crng(31);
        for (int i = 0; i < kCrashes; ++i) {
          Result<NodeAddr> victim = ring.RandomAliveNode(crng);
          if (sc.factor > 0) {
            (void)repl->CrashWithRecovery(*victim);
          } else {
            (void)ring.Crash(*victim);
          }
          Result<NodeAddr> bootstrap = ring.RandomAliveNode(crng);
          (void)ring.Join(*bootstrap);
          if ((i + 1) % sc.maintain_every == 0) {
            ring.StabilizeAll();
            if (repl) repl->IncrementalSync();
          }
        }
        const uint64_t repl_msgs = net->counters().messages - msgs_before;
        const uint64_t repl_bytes = net->counters().bytes - bytes_before;

        // How well can the surviving data still be estimated?
        DdeOptions dopts;
        dopts.num_probes = 256;
        dopts.seed = 5;
        DistributionFreeEstimator est(&ring, dopts);
        auto e = est.Estimate(*ring.RandomAliveNode(crng));
        const double ks = e.ok() ? CompareCdfToTruth(e->cdf, *dist).ks : 1.0;

        return std::vector<std::string>{
            sc.label,
            Fmt("%.1f%%", 100.0 * double(ring.TotalItems()) / double(kItems)),
            Fmt("%llu",
                (unsigned long long)(repl ? repl->keys_lost()
                                          : kItems - ring.TotalItems())),
            Fmt("%llu",
                (unsigned long long)(repl ? repl->keys_recovered() : 0)),
            Fmt("%llu", (unsigned long long)repl_msgs),
            Fmt("%.1f", repl_bytes / (1024.0 * 1024.0)), Fmt("%.4f", ks)};
      }));
  table.Print();
}

}  // namespace
}  // namespace ringdde::bench

int main() {
  ringdde::bench::BenchRun run("e12_replication");
  ringdde::bench::Run();
  return 0;
}
