// E13 — Self-tuning probe budget (extension experiment).
//
// The fixed-m estimator needs its budget chosen per deployment; the
// adaptive variant probes in blended batches until consecutive
// reconstructions agree. This table shows it spending its budget where the
// data is hard: roughly the same accuracy everywhere, with the message
// bill scaling with the workload's difficulty instead of a worst-case m.
//
// Workloads are independent deployments; each runs as one concurrent row
// task contributing its fixed + adaptive rows.
#include <memory>

#include "bench_util.h"

namespace ringdde::bench {
namespace {

void Run() {
  const size_t kPeers = Scaled(2048, 128);
  const size_t kItems = Scaled(200000, 5000);

  Table table(Fmt("E13 adaptive vs fixed budget — n=%zu, N=%zu, "
                  "tolerance=0.01",
                  kPeers, kItems),
              {"workload", "mode", "ks", "messages", "peers"});
  auto dists = StandardBenchmarkDistributions();
  const auto groups = ParallelRows<std::vector<std::vector<std::string>>>(
      dists.size(), [&](size_t w) {
        const std::string name = dists[w]->Name();
        auto env = BuildEnv(kPeers, std::move(dists[w]), kItems, 501);
        std::vector<std::vector<std::string>> rows;
        {
          DdeOptions opts;
          opts.num_probes = 256;
          opts.seed = 61;
          const DensityEstimate e = RunDde(*env, opts, 61);
          rows.push_back(
              {name, "fixed m=256",
               Fmt("%.4f", CompareCdfToTruth(e.cdf, *env->dist).ks),
               Fmt("%llu", (unsigned long long)e.cost.messages),
               Fmt("%zu", e.peers_probed)});
        }
        {
          DdeOptions opts;
          opts.seed = 62;
          DistributionFreeEstimator est(env->ring.get(), opts);
          Rng rng(63);
          AdaptiveOptions aopts;
          auto e = est.EstimateAdaptive(*env->ring->RandomAliveNode(rng),
                                        aopts);
          if (e.ok()) {
            rows.push_back(
                {name, "adaptive",
                 Fmt("%.4f", CompareCdfToTruth(e->cdf, *env->dist).ks),
                 Fmt("%llu", (unsigned long long)e->cost.messages),
                 Fmt("%zu", e->peers_probed)});
          }
        }
        return rows;
      });
  for (const auto& g : groups) table.AddRows(g);
  table.Print();
}

}  // namespace
}  // namespace ringdde::bench

int main() {
  ringdde::bench::BenchRun run("e13_adaptive");
  ringdde::bench::Run();
  return 0;
}
