// E13 — Self-tuning probe budget (extension experiment).
//
// The fixed-m estimator needs its budget chosen per deployment; the
// adaptive variant probes in blended batches until consecutive
// reconstructions agree. This table shows it spending its budget where the
// data is hard: roughly the same accuracy everywhere, with the message
// bill scaling with the workload's difficulty instead of a worst-case m.
#include <memory>

#include "bench_util.h"

namespace ringdde::bench {
namespace {

constexpr size_t kPeers = 2048;
constexpr size_t kItems = 200000;

void Run() {
  Table table(Fmt("E13 adaptive vs fixed budget — n=%zu, N=%zu, "
                  "tolerance=0.01",
                  kPeers, kItems),
              {"workload", "mode", "ks", "messages", "peers"});
  for (auto& dist : StandardBenchmarkDistributions()) {
    const std::string name = dist->Name();
    auto env = BuildEnv(kPeers, std::move(dist), kItems, 501);
    {
      DdeOptions opts;
      opts.num_probes = 256;
      opts.seed = 61;
      const DensityEstimate e = RunDde(*env, opts, 61);
      table.AddRow({name, "fixed m=256",
                    Fmt("%.4f", CompareCdfToTruth(e.cdf, *env->dist).ks),
                    Fmt("%llu", (unsigned long long)e.cost.messages),
                    Fmt("%zu", e.peers_probed)});
    }
    {
      DdeOptions opts;
      opts.seed = 62;
      DistributionFreeEstimator est(env->ring.get(), opts);
      Rng rng(63);
      AdaptiveOptions aopts;
      auto e = est.EstimateAdaptive(*env->ring->RandomAliveNode(rng),
                                    aopts);
      if (!e.ok()) continue;
      table.AddRow({name, "adaptive",
                    Fmt("%.4f", CompareCdfToTruth(e->cdf, *env->dist).ks),
                    Fmt("%llu", (unsigned long long)e->cost.messages),
                    Fmt("%zu", e->peers_probed)});
    }
  }
  table.Print();
}

}  // namespace
}  // namespace ringdde::bench

int main() {
  ringdde::bench::Run();
  return 0;
}
