// E6 — Accuracy versus dataset size.
//
// The estimator's error is governed by the probe budget, not by how much
// data sits behind it: KS stays flat from 10^4 to 10^6 items while the
// per-probe payload stays constant (quantile summaries, not raw items).
// The N̂ relative error also stays flat.
#include <memory>

#include "bench_util.h"

namespace ringdde::bench {
namespace {

void Run() {
  Table table("E6 accuracy vs dataset size — n=2048 peers, m=256, "
              "Mixture3 workload, 3 reps",
              {"items", "items_per_peer", "ks", "l1_cdf", "total_rel_err",
               "probe_kbytes"});
  for (size_t items : {10000, 50000, 100000, 500000, 1000000}) {
    auto env = BuildEnv(
        2048,
        std::make_unique<GaussianMixtureDistribution>(
            std::vector<GaussianMixtureDistribution::Component>{
                {0.4, 0.2, 0.05}, {0.35, 0.55, 0.08}, {0.25, 0.85, 0.04}},
            "Mixture3"),
        items, 151 + items);
    DdeOptions opts;
    opts.num_probes = 256;
    const RepeatedResult r = RepeatDde(*env, opts, 3, items);
    table.AddRow({Fmt("%zu", items), Fmt("%.0f", items / 2048.0),
                  Fmt("%.4f", r.accuracy.ks),
                  Fmt("%.4f", r.accuracy.l1_cdf),
                  Fmt("%.3f", r.mean_total_error),
                  Fmt("%.1f", r.mean_bytes / 1024.0)});
  }
  table.Print();

  // Local-summary resolution interacts with volume: with more items per
  // peer, within-arc shape matters more.
  Table table2("E6b local quantile resolution at 10^6 items — n=2048, m=256",
               {"quantiles_per_probe", "ks", "probe_kbytes"});
  auto env = BuildEnv(
      2048, std::make_unique<ZipfDistribution>(1000, 0.9), 1000000, 161);
  for (int q : {2, 4, 8, 16, 32}) {
    DdeOptions opts;
    opts.num_probes = 256;
    opts.local_quantiles = q;
    const RepeatedResult r = RepeatDde(*env, opts, 3, q);
    table2.AddRow({Fmt("%d", q), Fmt("%.4f", r.accuracy.ks),
                   Fmt("%.1f", r.mean_bytes / 1024.0)});
  }
  table2.Print();
}

}  // namespace
}  // namespace ringdde::bench

int main() {
  ringdde::bench::Run();
  return 0;
}
