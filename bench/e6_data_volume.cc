// E6 — Accuracy versus dataset size.
//
// The estimator's error is governed by the probe budget, not by how much
// data sits behind it: KS stays flat from 10^4 to 10^6 items while the
// per-probe payload stays constant (quantile summaries, not raw items).
// The N̂ relative error also stays flat.
//
// Dataset sizes are independent deployments; rows (dominated by the
// biggest builds) run concurrently on the global thread pool.
#include <memory>

#include "bench_util.h"

namespace ringdde::bench {
namespace {

void Run() {
  const size_t kPeers = Scaled(2048, 128);
  const int kReps = ScaledInt(3, 2);

  Table table(Fmt("E6 accuracy vs dataset size — n=%zu peers, m=256, "
                  "Mixture3 workload, %d reps",
                  kPeers, kReps),
              {"items", "items_per_peer", "ks", "l1_cdf", "total_rel_err",
               "probe_kbytes"});
  const std::vector<size_t> volumes =
      SmokeMode()
          ? std::vector<size_t>{10000, 50000}
          : std::vector<size_t>{10000, 50000, 100000, 500000, 1000000};
  table.AddRows(ParallelRows<std::vector<std::string>>(
      volumes.size(), [&](size_t row) {
        const size_t items = volumes[row];
        auto env = BuildEnv(
            kPeers,
            std::make_unique<GaussianMixtureDistribution>(
                std::vector<GaussianMixtureDistribution::Component>{
                    {0.4, 0.2, 0.05},
                    {0.35, 0.55, 0.08},
                    {0.25, 0.85, 0.04}},
                "Mixture3"),
            items, 151 + items);
        DdeOptions opts;
        opts.num_probes = 256;
        const RepeatedResult r = RepeatDde(*env, opts, kReps, items);
        return std::vector<std::string>{
            Fmt("%zu", items),
            Fmt("%.0f", double(items) / double(kPeers)),
            Fmt("%.4f", r.accuracy.ks),
            Fmt("%.4f", r.accuracy.l1_cdf),
            Fmt("%.3f", r.mean_total_error),
            Fmt("%.1f", r.mean_bytes / 1024.0)};
      }));
  table.Print();

  // Local-summary resolution interacts with volume: with more items per
  // peer, within-arc shape matters more. One shared big deployment;
  // resolution rows get private replicas.
  const size_t kBigItems = Scaled(1000000, 20000);
  Table table2(Fmt("E6b local quantile resolution at %zu items — n=%zu, "
                   "m=256",
                   kBigItems, kPeers),
               {"quantiles_per_probe", "ks", "probe_kbytes"});
  auto env = BuildEnv(kPeers, std::make_unique<ZipfDistribution>(1000, 0.9),
                      kBigItems, 161);
  const std::vector<int> resolutions =
      SmokeMode() ? std::vector<int>{2, 16}
                  : std::vector<int>{2, 4, 8, 16, 32};
  table2.AddRows(ParallelRows<std::vector<std::string>>(
      resolutions.size(), [&](size_t row) {
        const int q = resolutions[row];
        std::unique_ptr<Env> storage;
        Env& e = RowEnv(*env, storage);
        DdeOptions opts;
        opts.num_probes = 256;
        opts.local_quantiles = q;
        const RepeatedResult r = RepeatDde(e, opts, kReps, q);
        return std::vector<std::string>{Fmt("%d", q),
                                        Fmt("%.4f", r.accuracy.ks),
                                        Fmt("%.1f", r.mean_bytes / 1024.0)};
      }));
  table2.Print();
}

}  // namespace
}  // namespace ringdde::bench

int main() {
  ringdde::bench::BenchRun run("e6_data_volume");
  ringdde::bench::Run();
  return 0;
}
