// E18: million-peer scale — deployment, stabilization, and lookup cost of
// the struct-of-arrays ring core.
//
// Rows sweep the ring size (full: 100k and 1M peers; smoke: 10k) and
// measure, per size:
//   - deploy: CreateNetwork (id assignment + RingIndex build + the initial
//     full stabilization) plus the bulk dataset load (n keys).
//   - stabilize: one full StabilizeAll sweep on the struct-of-arrays
//     snapshot vs the PR2-era legacy layout (std::map walk into fresh flat
//     arrays, then the identical chunked sweep) — same math, same
//     parallelism, only the membership layout differs. The legacy mirror's
//     construction is excluded from its timing.
//   - lookups: iterative routed lookups from random alive origins to
//     uniform targets, each with a private CostContext; hop and latency
//     percentiles over the batch.
//
// The largest row's numbers are also emitted as BENCH_e18.json counters
// (deploy_us, stabilize_us_soa, stabilize_us_legacy, lookup hop/µs
// percentiles, lookups_per_sec, peak_rss_mb) — the scale regression gate —
// together with the RingIndex segment-cache telemetry (flat hits vs
// partial/full rebuilds, shard spans copied, invalidations).

#include <algorithm>
#include <chrono>
#include <cmath>
#include <vector>

#include "bench_util.h"
#include "ring/reference_stabilize.h"

namespace {

using namespace ringdde;
using namespace ringdde::bench;
using Clock = std::chrono::steady_clock;

double ElapsedUs(Clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(Clock::now() - t0).count();
}

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const double idx = p * static_cast<double>(v.size() - 1);
  return v[static_cast<size_t>(std::llround(idx))];
}

struct ScaleRow {
  size_t n = 0;
  double deploy_us = 0.0;        // CreateNetwork + bulk key load
  double stab_soa_us = 0.0;      // one StabilizeAll sweep, SoA layout
  double stab_legacy_us = 0.0;   // one sweep, legacy map layout
  double hops_p50 = 0.0, hops_p99 = 0.0;
  double us_p50 = 0.0, us_p99 = 0.0;
  double lookups_per_sec = 0.0;
};

ScaleRow RunScale(size_t n, size_t lookups, int sweep_reps, uint64_t seed) {
  ScaleRow row;
  row.n = n;

  // --- Deploy: peers + initial convergence + bulk dataset load. ---------
  auto net = std::make_unique<Network>();
  RingOptions ropts;
  ropts.seed = seed;
  ChordRing ring(net.get(), ropts);
  const auto t_deploy = Clock::now();
  Status s = ring.CreateNetwork(n);
  if (!s.ok()) {
    std::fprintf(stderr, "e18: CreateNetwork failed: %s\n",
                 s.ToString().c_str());
    std::abort();
  }
  {
    Rng data_rng(seed ^ 0x9e3779b97f4a7c15ULL);
    std::vector<double> keys(n);
    for (double& k : keys) k = data_rng.UniformDouble();
    ring.InsertDatasetBulk(keys);
  }
  row.deploy_us = ElapsedUs(t_deploy);

  // --- StabilizeAll: SoA sweep vs the legacy-layout sweep. --------------
  for (int rep = 0; rep < sweep_reps; ++rep) {
    const auto t0 = Clock::now();
    ring.StabilizeAll();
    const double us = ElapsedUs(t0);
    row.stab_soa_us = rep == 0 ? us : std::min(row.stab_soa_us, us);
  }
  {
    // Mirror construction (the map build) is setup, not sweep cost.
    const LegacyMembership legacy = MirrorMembership(ring);
    for (int rep = 0; rep < sweep_reps; ++rep) {
      const auto t0 = Clock::now();
      ReferenceStabilizeAllSnapshot(legacy, ring.options().successor_list_size);
      const double us = ElapsedUs(t0);
      row.stab_legacy_us = rep == 0 ? us : std::min(row.stab_legacy_us, us);
    }
  }
  // Both sweeps write identical routing state, so the ring is converged
  // regardless of which ran last.

  // --- Lookup batch: random origins, uniform targets. -------------------
  ring.PrepareConcurrentReads();
  Rng lookup_rng(seed ^ 0xda942042e4dd58b5ULL);
  std::vector<double> hop_samples;
  std::vector<double> us_samples;
  hop_samples.reserve(lookups);
  us_samples.reserve(lookups);
  const auto t_batch = Clock::now();
  for (size_t q = 0; q < lookups; ++q) {
    const Result<NodeAddr> from = ring.RandomAliveNode(lookup_rng);
    const RingId target(lookup_rng.NextU64());
    CostContext ctx = net->MakeQueryContext(q);
    const auto t0 = Clock::now();
    const Result<NodeAddr> owner = ring.Lookup(ctx, *from, target);
    const double us = ElapsedUs(t0);
    if (!owner.ok()) {
      std::fprintf(stderr, "e18: lookup failed: %s\n",
                   owner.status().ToString().c_str());
      std::abort();
    }
    hop_samples.push_back(static_cast<double>(ctx.counters.hops));
    us_samples.push_back(us);
  }
  const double batch_us = ElapsedUs(t_batch);
  row.hops_p50 = Percentile(hop_samples, 0.50);
  row.hops_p99 = Percentile(hop_samples, 0.99);
  row.us_p50 = Percentile(us_samples, 0.50);
  row.us_p99 = Percentile(us_samples, 0.99);
  row.lookups_per_sec =
      batch_us > 0.0 ? static_cast<double>(lookups) / (batch_us * 1e-6) : 0.0;

  // Segment-cache telemetry from the largest ring (overwritten per row;
  // rows run smallest to largest).
  const RingIndex::CacheStats& cs = ring.index().cache_stats();
  BenchReporter& rep = BenchReporter::Global();
  rep.RecordCounter("ring_flat_hits", static_cast<double>(cs.flat_hits));
  rep.RecordCounter("ring_flat_rebuilds",
                    static_cast<double>(cs.flat_rebuilds));
  rep.RecordCounter("ring_flat_full_rebuilds",
                    static_cast<double>(cs.flat_full_rebuilds));
  rep.RecordCounter("ring_flat_shards_copied",
                    static_cast<double>(cs.flat_shards_copied));
  rep.RecordCounter("ring_shard_invalidations",
                    static_cast<double>(cs.shard_invalidations));
  return row;
}

}  // namespace

int main() {
  BenchRun run("e18");

  std::vector<size_t> sizes;
  if (SmokeMode()) {
    sizes = {10'000};
  } else {
    sizes = {100'000, 1'000'000};
  }
  const size_t lookups = Scaled(20'000, 1'000);
  const int sweep_reps = ScaledInt(3, 2);

  Table table("E18: ring scale — deploy, stabilize, lookup",
              {"peers", "deploy_ms", "stabilize_ms_soa", "stabilize_ms_legacy",
               "legacy/soa", "hops_p50", "hops_p99", "lookup_us_p50",
               "lookup_us_p99", "lookups/s"});
  ScaleRow last;
  for (size_t n : sizes) {
    last = RunScale(n, lookups, sweep_reps, /*seed=*/18);
    table.AddRow({Fmt("%zu", last.n), Fmt("%.1f", last.deploy_us / 1e3),
                  Fmt("%.1f", last.stab_soa_us / 1e3),
                  Fmt("%.1f", last.stab_legacy_us / 1e3),
                  Fmt("%.2f", last.stab_soa_us > 0.0
                                  ? last.stab_legacy_us / last.stab_soa_us
                                  : 0.0),
                  Fmt("%.0f", last.hops_p50), Fmt("%.0f", last.hops_p99),
                  Fmt("%.2f", last.us_p50), Fmt("%.2f", last.us_p99),
                  Fmt("%.0f", last.lookups_per_sec)});
  }
  table.Print();

  // Scale-gate counters from the largest ring.
  BenchReporter& rep = BenchReporter::Global();
  rep.RecordCounter("scale_peers", static_cast<double>(last.n));
  rep.RecordCounter("deploy_us", last.deploy_us);
  rep.RecordCounter("stabilize_us_soa", last.stab_soa_us);
  rep.RecordCounter("stabilize_us_legacy", last.stab_legacy_us);
  rep.RecordCounter("lookup_hops_p50", last.hops_p50);
  rep.RecordCounter("lookup_hops_p99", last.hops_p99);
  rep.RecordCounter("lookup_us_p50", last.us_p50);
  rep.RecordCounter("lookup_us_p99", last.us_p99);
  rep.RecordCounter("lookups_per_sec", last.lookups_per_sec);
  rep.RecordPeakRssCounter("peak_rss_mb");
  return 0;
}
