// E9 — Application: load-balancing analysis.
//
// A peer predicts the whole network's storage-load distribution from its
// density estimate plus the membership's arcs (no load collection). Rows
// compare predicted vs exact imbalance statistics, and the equi-depth
// partition advisor's quality against naive equal-width splits.
//
// Each workload is an independent deployment; both tables' rows run
// concurrently on the global thread pool.
#include <memory>

#include "apps/equidepth_partitioner.h"
#include "apps/load_balance.h"
#include "bench_util.h"

namespace ringdde::bench {
namespace {

void Run() {
  const size_t kPeers = Scaled(2048, 128);
  const size_t kItems = Scaled(200000, 5000);

  Table table(Fmt("E9a predicted vs exact load balance — n=%zu, N=%zu, "
                  "m=256",
                  kPeers, kItems),
              {"workload", "gini_exact", "gini_pred", "max/avg_exact",
               "max/avg_pred", "per_peer_err"});

  auto dists_a = StandardBenchmarkDistributions();
  table.AddRows(ParallelRows<std::vector<std::string>>(
      dists_a.size(), [&](size_t w) {
        const std::string name = dists_a[w]->Name();
        auto env = BuildEnv(kPeers, std::move(dists_a[w]), kItems, 201);
        DdeOptions opts;
        opts.num_probes = 256;
        const DensityEstimate e = RunDde(*env, opts, 501);
        const LoadBalanceReport exact = ExactLoadBalance(*env->ring);
        const LoadBalanceReport pred =
            PredictLoadBalance(*env->ring, e.cdf, e.estimated_total_items);
        return std::vector<std::string>{
            name, Fmt("%.3f", exact.gini), Fmt("%.3f", pred.gini),
            Fmt("%.2f", exact.max_over_avg), Fmt("%.2f", pred.max_over_avg),
            Fmt("%.3f", MeanLoadPredictionError(*env->ring, e.cdf,
                                                e.estimated_total_items))};
      }));
  table.Print();

  Table table2(
      "E9b equi-depth partition advisor — 16 partitions, ideal share "
      "0.0625, m=256",
      {"workload", "dde_max_share", "dde_imbalance", "equalwidth_max_share",
       "equalwidth_imbalance"});
  auto dists_b = StandardBenchmarkDistributions();
  table2.AddRows(ParallelRows<std::vector<std::string>>(
      dists_b.size(), [&](size_t w) {
        const std::string name = dists_b[w]->Name();
        auto env = BuildEnv(kPeers, std::move(dists_b[w]), kItems, 211);
        DdeOptions opts;
        opts.num_probes = 256;
        const DensityEstimate e = RunDde(*env, opts, 601);
        const auto bounds = ProposePartitionBoundaries(e.cdf, 16);
        const PartitionQuality dde_q = EvaluatePartitionShares(
            MeasurePartitionShares(*env->ring, bounds));
        std::vector<double> naive;
        for (int i = 1; i < 16; ++i) naive.push_back(i / 16.0);
        const PartitionQuality naive_q = EvaluatePartitionShares(
            MeasurePartitionShares(*env->ring, naive));
        return std::vector<std::string>{
            name, Fmt("%.4f", dde_q.max_share), Fmt("%.2f", dde_q.imbalance),
            Fmt("%.4f", naive_q.max_share), Fmt("%.2f", naive_q.imbalance)};
      }));
  table2.Print();
}

}  // namespace
}  // namespace ringdde::bench

int main() {
  ringdde::bench::BenchRun run("e9_load_balance");
  ringdde::bench::Run();
  return 0;
}
