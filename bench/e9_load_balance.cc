// E9 — Application: load-balancing analysis.
//
// A peer predicts the whole network's storage-load distribution from its
// density estimate plus the membership's arcs (no load collection). Rows
// compare predicted vs exact imbalance statistics, and the equi-depth
// partition advisor's quality against naive equal-width splits.
#include <memory>

#include "apps/equidepth_partitioner.h"
#include "apps/load_balance.h"
#include "bench_util.h"

namespace ringdde::bench {
namespace {

constexpr size_t kPeers = 2048;
constexpr size_t kItems = 200000;

void Run() {
  Table table(Fmt("E9a predicted vs exact load balance — n=%zu, N=%zu, "
                  "m=256",
                  kPeers, kItems),
              {"workload", "gini_exact", "gini_pred", "max/avg_exact",
               "max/avg_pred", "per_peer_err"});

  for (auto& dist : StandardBenchmarkDistributions()) {
    const std::string name = dist->Name();
    auto env = BuildEnv(kPeers, std::move(dist), kItems, 201);
    DdeOptions opts;
    opts.num_probes = 256;
    const DensityEstimate e = RunDde(*env, opts, 501);
    const LoadBalanceReport exact = ExactLoadBalance(*env->ring);
    const LoadBalanceReport pred =
        PredictLoadBalance(*env->ring, e.cdf, e.estimated_total_items);
    table.AddRow(
        {name, Fmt("%.3f", exact.gini), Fmt("%.3f", pred.gini),
         Fmt("%.2f", exact.max_over_avg), Fmt("%.2f", pred.max_over_avg),
         Fmt("%.3f", MeanLoadPredictionError(*env->ring, e.cdf,
                                             e.estimated_total_items))});
  }
  table.Print();

  Table table2(
      "E9b equi-depth partition advisor — 16 partitions, ideal share "
      "0.0625, m=256",
      {"workload", "dde_max_share", "dde_imbalance", "equalwidth_max_share",
       "equalwidth_imbalance"});
  for (auto& dist : StandardBenchmarkDistributions()) {
    const std::string name = dist->Name();
    auto env = BuildEnv(kPeers, std::move(dist), kItems, 211);
    DdeOptions opts;
    opts.num_probes = 256;
    const DensityEstimate e = RunDde(*env, opts, 601);
    const auto bounds = ProposePartitionBoundaries(e.cdf, 16);
    const PartitionQuality dde_q =
        EvaluatePartitionShares(MeasurePartitionShares(*env->ring, bounds));
    std::vector<double> naive;
    for (int i = 1; i < 16; ++i) naive.push_back(i / 16.0);
    const PartitionQuality naive_q = EvaluatePartitionShares(
        MeasurePartitionShares(*env->ring, naive));
    table2.AddRow({name, Fmt("%.4f", dde_q.max_share),
                   Fmt("%.2f", dde_q.imbalance),
                   Fmt("%.4f", naive_q.max_share),
                   Fmt("%.2f", naive_q.imbalance)});
  }
  table2.Print();
}

}  // namespace
}  // namespace ringdde::bench

int main() {
  ringdde::bench::Run();
  return 0;
}
