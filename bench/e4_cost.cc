// E4 — Estimation cost: messages / hops / bytes per method.
//
// The cost side of the accuracy/cost trade-off. Expected shape: DDE pays
// O(m log n) messages; random walks pay an order of magnitude more for
// comparable sample counts; gossip pays n messages PER ROUND (but serves
// every peer); the finger-tree convergecast pays ~2n for an exact answer.
//
// Each method row runs on the global thread pool against a private Env
// replica (the querier is re-derived inside the row from the same seed, so
// every replica picks the identical peer).
#include <memory>

#include "baselines/gossip_histogram.h"
#include "baselines/random_walk_sampler.h"
#include "baselines/tree_aggregation.h"
#include "baselines/uniform_peer_sampler.h"
#include "bench_util.h"
#include "core/theory.h"

namespace ringdde::bench {
namespace {

std::vector<std::string> CostRow(const std::string& method, double ks,
                                 const CostCounters& c,
                                 const char* serves) {
  return {method, Fmt("%.4f", ks),
          Fmt("%llu", (unsigned long long)c.messages),
          Fmt("%llu", (unsigned long long)c.hops),
          Fmt("%.1f", c.bytes / 1024.0), serves};
}

void Run() {
  const size_t kPeers = Scaled(4096, 128);
  const size_t kItems = Scaled(200000, 5000);
  const size_t kBudgetLo = Scaled(256, 32);
  const size_t kBudgetHi = Scaled(1024, 64);

  auto env = BuildEnv(kPeers, std::make_unique<ZipfDistribution>(1000, 0.9),
                      kItems, 71);

  Table table(Fmt("E4 cost per method — n=%zu, Zipf(1000,0.9), N=%zu",
                  kPeers, kItems),
              {"method", "ks", "messages", "hops", "kbytes",
               "serves"});

  table.AddRows(ParallelRows<std::vector<std::string>>(6, [&](size_t row) {
    std::unique_ptr<Env> storage;
    Env& e = RowEnv(*env, storage);
    Rng rng(5);
    const NodeAddr q = *e.ring->RandomAliveNode(rng);
    switch (row) {
      case 0: {
        DdeOptions opts;
        opts.num_probes = kBudgetLo;
        const DensityEstimate est = RunDde(e, opts, 101);
        return CostRow(Fmt("DDE m=%zu", kBudgetLo),
                       CompareCdfToTruth(est.cdf, *e.dist).ks, est.cost,
                       "1 querier");
      }
      case 1: {
        DdeOptions opts;
        opts.num_probes = kBudgetHi;
        const DensityEstimate est = RunDde(e, opts, 103);
        return CostRow(Fmt("DDE m=%zu", kBudgetHi),
                       CompareCdfToTruth(est.cdf, *e.dist).ks, est.cost,
                       "1 querier");
      }
      case 2: {
        UniformPeerSamplerOptions o;
        o.num_peers = kBudgetLo;
        auto est = UniformPeerSampler(e.ring.get(), o).Estimate(q);
        return CostRow(Fmt("B1 peers=%zu", kBudgetLo),
                       CompareCdfToTruth(est->cdf, *e.dist).ks, est->cost,
                       "1 querier");
      }
      case 3: {
        RandomWalkSamplerOptions o;
        o.num_samples = kBudgetLo;
        auto est = RandomWalkSampler(e.ring.get(), o).Estimate(q);
        return CostRow(Fmt("B2 walks=%zu", kBudgetLo),
                       CompareCdfToTruth(est->cdf, *e.dist).ks, est->cost,
                       "1 querier");
      }
      case 4: {
        GossipHistogramAggregator gossip(e.ring.get());
        gossip.Initialize();
        CostScope scope(e.net->counters());
        for (int r = 0; r < 30; ++r) gossip.Step();
        auto cdf = gossip.EstimateAtPeer(q);
        return CostRow("B3 gossip r=30",
                       CompareCdfToTruth(*cdf, *e.dist).ks, scope.Delta(),
                       "ALL peers");
      }
      default: {
        // 512 bins so the "exact" anchor is not limited by bin resolution
        // on this heavily skewed workload (gossip above keeps the
        // deployable 64-bin payload and pays for it in within-bin error).
        TreeAggregationOptions topts;
        topts.bins = 512;
        auto est = TreeAggregator(e.ring.get(), topts).Estimate(q);
        return CostRow("B4 tree exact",
                       CompareCdfToTruth(est->cdf, *e.dist).ks, est->cost,
                       "1 querier");
      }
    }
  }));
  table.Print();

  // Cost scaling of DDE itself, against the analytic prediction. Every
  // (n, m) cell is an independent deployment → independent row task.
  Table scaling("E4b DDE cost scaling vs theory (messages per run)",
                {"n", "m", "measured", "theory_2mE[hops]+2m"});
  const std::vector<size_t> scale_n =
      SmokeMode() ? std::vector<size_t>{256}
                  : std::vector<size_t>{1024, 4096, 16384};
  const std::vector<size_t> scale_m =
      SmokeMode() ? std::vector<size_t>{16, 64}
                  : std::vector<size_t>{64, 256};
  struct Cell {
    size_t n, m;
  };
  std::vector<Cell> cells;
  for (size_t n : scale_n) {
    for (size_t m : scale_m) cells.push_back({n, m});
  }
  scaling.AddRows(ParallelRows<std::vector<std::string>>(
      cells.size(), [&](size_t row) {
        const auto [n, m] = cells[row];
        // The (n, m) grid rebuilds the same deployment for every m; the
        // cache builds each n-peer ring once and shares it read-only
        // across the rows (trials never mutate it).
        const UniformDistribution uniform;
        std::shared_ptr<Env> env2 =
            CachedDeployment(n, uniform, Scaled(50000, 4000), n + 7);
        DdeOptions opts;
        opts.num_probes = m;
        const RepeatedResult r = RepeatDde(*env2, opts, 3, n + m);
        return std::vector<std::string>{
            Fmt("%zu", n), Fmt("%zu", m), Fmt("%.0f", r.mean_messages),
            Fmt("%.0f", ExpectedEstimationMessages(m, n))};
      }));
  scaling.Print();

  // Lossy channels: reliable delivery inflates cost by ~1/(1-p) but leaves
  // accuracy untouched. Each loss rate builds its own network → row task.
  const size_t kLossyPeers = Scaled(1024, 128);
  const size_t kLossyItems = Scaled(100000, 4000);
  Table lossy(Fmt("E4c DDE under packet loss — n=%zu, m=%zu", kLossyPeers,
                  kBudgetLo),
              {"loss_p", "ks", "messages", "lost", "mean_latency_ms"});
  const std::vector<double> losses =
      SmokeMode() ? std::vector<double>{0.0, 0.2}
                  : std::vector<double>{0.0, 0.05, 0.1, 0.2, 0.4};
  lossy.AddRows(ParallelRows<std::vector<std::string>>(
      losses.size(), [&](size_t row) {
        const double p = losses[row];
        NetworkOptions nopts;
        nopts.loss_probability = p;
        nopts.seed = 77;
        auto net3 = std::make_unique<Network>(nopts);
        ChordRing ring3(net3.get());
        if (!ring3.CreateNetwork(kLossyPeers).ok()) {
          return std::vector<std::string>{Fmt("%.2f", p), "-", "-", "-",
                                          "-"};
        }
        Rng lrng(5);
        auto dist3 =
            std::make_unique<TruncatedNormalDistribution>(0.5, 0.15);
        ring3.InsertDatasetBulk(
            GenerateDataset(*dist3, kLossyItems, lrng).keys);
        DdeOptions opts;
        opts.num_probes = kBudgetLo;
        opts.seed = 81;
        DistributionFreeEstimator est3(&ring3, opts);
        auto e = est3.Estimate(*ring3.RandomAliveNode(lrng));
        if (!e.ok()) {
          return std::vector<std::string>{Fmt("%.2f", p), "-", "-", "-",
                                          "-"};
        }
        return std::vector<std::string>{
            Fmt("%.2f", p),
            Fmt("%.4f", CompareCdfToTruth(e->cdf, *dist3).ks),
            Fmt("%llu", (unsigned long long)e->cost.messages),
            Fmt("%llu", (unsigned long long)net3->lost_messages()),
            Fmt("%.1f", e->cost.messages > 0
                            ? 1000.0 * e->cost.latency_sum / e->cost.messages
                            : 0.0)};
      }));
  lossy.Print();
}

}  // namespace
}  // namespace ringdde::bench

int main() {
  ringdde::bench::BenchRun run("e4_cost");
  ringdde::bench::Run();
  return 0;
}
