// E4 — Estimation cost: messages / hops / bytes per method.
//
// The cost side of the accuracy/cost trade-off. Expected shape: DDE pays
// O(m log n) messages; random walks pay an order of magnitude more for
// comparable sample counts; gossip pays n messages PER ROUND (but serves
// every peer); the finger-tree convergecast pays ~2n for an exact answer.
#include <memory>

#include "baselines/gossip_histogram.h"
#include "baselines/random_walk_sampler.h"
#include "baselines/tree_aggregation.h"
#include "baselines/uniform_peer_sampler.h"
#include "bench_util.h"
#include "core/theory.h"

namespace ringdde::bench {
namespace {

constexpr size_t kPeers = 4096;
constexpr size_t kItems = 200000;

void Run() {
  auto env = BuildEnv(kPeers, std::make_unique<ZipfDistribution>(1000, 0.9),
                      kItems, 71);
  Rng rng(5);
  const NodeAddr q = *env->ring->RandomAliveNode(rng);

  Table table(Fmt("E4 cost per method — n=%zu, Zipf(1000,0.9), N=%zu",
                  kPeers, kItems),
              {"method", "ks", "messages", "hops", "kbytes",
               "serves"});

  {
    DdeOptions opts;
    opts.num_probes = 256;
    const DensityEstimate e = RunDde(*env, opts, 101);
    table.AddRow({"DDE m=256", Fmt("%.4f", CompareCdfToTruth(e.cdf, *env->dist).ks),
                  Fmt("%llu", (unsigned long long)e.cost.messages),
                  Fmt("%llu", (unsigned long long)e.cost.hops),
                  Fmt("%.1f", e.cost.bytes / 1024.0), "1 querier"});
  }
  {
    DdeOptions opts;
    opts.num_probes = 1024;
    const DensityEstimate e = RunDde(*env, opts, 103);
    table.AddRow({"DDE m=1024", Fmt("%.4f", CompareCdfToTruth(e.cdf, *env->dist).ks),
                  Fmt("%llu", (unsigned long long)e.cost.messages),
                  Fmt("%llu", (unsigned long long)e.cost.hops),
                  Fmt("%.1f", e.cost.bytes / 1024.0), "1 querier"});
  }
  {
    UniformPeerSamplerOptions o;
    o.num_peers = 256;
    auto e = UniformPeerSampler(env->ring.get(), o).Estimate(q);
    table.AddRow({"B1 peers=256",
                  Fmt("%.4f", CompareCdfToTruth(e->cdf, *env->dist).ks),
                  Fmt("%llu", (unsigned long long)e->cost.messages),
                  Fmt("%llu", (unsigned long long)e->cost.hops),
                  Fmt("%.1f", e->cost.bytes / 1024.0), "1 querier"});
  }
  {
    RandomWalkSamplerOptions o;
    o.num_samples = 256;
    auto e = RandomWalkSampler(env->ring.get(), o).Estimate(q);
    table.AddRow({"B2 walks=256",
                  Fmt("%.4f", CompareCdfToTruth(e->cdf, *env->dist).ks),
                  Fmt("%llu", (unsigned long long)e->cost.messages),
                  Fmt("%llu", (unsigned long long)e->cost.hops),
                  Fmt("%.1f", e->cost.bytes / 1024.0), "1 querier"});
  }
  {
    GossipHistogramAggregator gossip(env->ring.get());
    gossip.Initialize();
    CostScope scope(env->net->counters());
    for (int r = 0; r < 30; ++r) gossip.Step();
    Rng grng(9);
    auto cdf = gossip.EstimateAtPeer(q);
    const CostCounters c = scope.Delta();
    table.AddRow({"B3 gossip r=30",
                  Fmt("%.4f", CompareCdfToTruth(*cdf, *env->dist).ks),
                  Fmt("%llu", (unsigned long long)c.messages),
                  Fmt("%llu", (unsigned long long)c.hops),
                  Fmt("%.1f", c.bytes / 1024.0), "ALL peers"});
  }
  {
    // 512 bins so the "exact" anchor is not limited by bin resolution on
    // this heavily skewed workload (gossip above keeps the deployable
    // 64-bin payload and pays for it in within-bin error).
    TreeAggregationOptions topts;
    topts.bins = 512;
    TreeAggregator tree(env->ring.get(), topts);
    auto e = tree.Estimate(q);
    table.AddRow({"B4 tree exact",
                  Fmt("%.4f", CompareCdfToTruth(e->cdf, *env->dist).ks),
                  Fmt("%llu", (unsigned long long)e->cost.messages),
                  Fmt("%llu", (unsigned long long)e->cost.hops),
                  Fmt("%.1f", e->cost.bytes / 1024.0), "1 querier"});
  }
  table.Print();

  // Cost scaling of DDE itself, against the analytic prediction.
  Table scaling("E4b DDE cost scaling vs theory (messages per run)",
                {"n", "m", "measured", "theory_2mE[hops]+2m"});
  for (size_t n : {1024, 4096, 16384}) {
    auto env2 = BuildEnv(n, std::make_unique<UniformDistribution>(), 50000,
                         n + 7);
    for (size_t m : {64, 256}) {
      DdeOptions opts;
      opts.num_probes = m;
      const RepeatedResult r = RepeatDde(*env2, opts, 3, n + m);
      scaling.AddRow({Fmt("%zu", n), Fmt("%zu", m),
                      Fmt("%.0f", r.mean_messages),
                      Fmt("%.0f", ExpectedEstimationMessages(m, n))});
    }
  }
  scaling.Print();

  // Lossy channels: reliable delivery inflates cost by ~1/(1-p) but leaves
  // accuracy untouched.
  Table lossy("E4c DDE under packet loss — n=1024, m=256",
              {"loss_p", "ks", "messages", "lost", "mean_latency_ms"});
  for (double p : {0.0, 0.05, 0.1, 0.2, 0.4}) {
    NetworkOptions nopts;
    nopts.loss_probability = p;
    nopts.seed = 77;
    auto net3 = std::make_unique<Network>(nopts);
    ChordRing ring3(net3.get());
    if (!ring3.CreateNetwork(1024).ok()) return;
    Rng lrng(5);
    auto dist3 = std::make_unique<TruncatedNormalDistribution>(0.5, 0.15);
    ring3.InsertDatasetBulk(GenerateDataset(*dist3, 100000, lrng).keys);
    DdeOptions opts;
    opts.num_probes = 256;
    opts.seed = 81;
    DistributionFreeEstimator est3(&ring3, opts);
    auto e = est3.Estimate(*ring3.RandomAliveNode(lrng));
    if (!e.ok()) continue;
    lossy.AddRow(
        {Fmt("%.2f", p), Fmt("%.4f", CompareCdfToTruth(e->cdf, *dist3).ks),
         Fmt("%llu", (unsigned long long)e->cost.messages),
         Fmt("%llu", (unsigned long long)net3->lost_messages()),
         Fmt("%.1f", e->cost.messages > 0
                         ? 1000.0 * e->cost.latency_sum / e->cost.messages
                         : 0.0)});
  }
  lossy.Print();
}

}  // namespace
}  // namespace ringdde::bench

int main() {
  ringdde::bench::Run();
  return 0;
}
