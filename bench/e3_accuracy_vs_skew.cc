// E3 — Distribution-freeness: accuracy versus data skew.
//
// The paper's central claim: DDE's error is (nearly) flat as the data
// grows more skewed, because it samples the CDF in domain space with
// inversion-guided refinement, while item-sampling baselines degrade —
// B1's equal-items-per-peer pooling collapses toward a uniform estimate
// (error grows with skew) and B5's model misspecification explodes.
//
// Every skew level is an independent deployment; rows run concurrently on
// the global thread pool.
#include <memory>

#include "baselines/parametric.h"
#include "baselines/random_walk_sampler.h"
#include "baselines/uniform_peer_sampler.h"
#include "bench_util.h"

namespace ringdde::bench {
namespace {

void Run() {
  const size_t kPeers = Scaled(2048, 128);
  const size_t kItems = Scaled(200000, 5000);
  const size_t kBudget = Scaled(256, 64);
  const int kReps = ScaledInt(3, 2);

  Table table(Fmt("E3 accuracy vs Zipf skew — n=%zu, m=%zu, N=%zu, %d reps",
                  kPeers, kBudget, kItems, kReps),
              {"theta", "dde_ks", "b1_peer_ks", "b2_walk_ks",
               "b5_param_ks"});

  const std::vector<double> thetas =
      SmokeMode() ? std::vector<double>{0.0, 0.9}
                  : std::vector<double>{0.0, 0.3, 0.6, 0.9, 1.2};
  table.AddRows(ParallelRows<std::vector<std::string>>(
      thetas.size(), [&](size_t row) {
        const double theta = thetas[row];
        auto env =
            BuildEnv(kPeers, std::make_unique<ZipfDistribution>(1000, theta),
                     kItems, 31 + static_cast<uint64_t>(theta * 100));

        DdeOptions opts;
        opts.num_probes = kBudget;
        const RepeatedResult dde = RepeatDde(*env, opts, kReps, 500);

        double b1 = 0.0, b2 = 0.0, b5 = 0.0;
        int b1n = 0, b2n = 0, b5n = 0;
        for (int r = 0; r < kReps; ++r) {
          Rng rng(42 + r);
          const NodeAddr q = *env->ring->RandomAliveNode(rng);

          UniformPeerSamplerOptions b1o;
          b1o.num_peers = kBudget;
          b1o.seed = 7 + r;
          if (auto e = UniformPeerSampler(env->ring.get(), b1o).Estimate(q);
              e.ok()) {
            b1 += CompareCdfToTruth(e->cdf, *env->dist).ks;
            ++b1n;
          }
          RandomWalkSamplerOptions b2o;
          b2o.num_samples = kBudget;
          b2o.seed = 11 + r;
          if (auto e = RandomWalkSampler(env->ring.get(), b2o).Estimate(q);
              e.ok()) {
            b2 += CompareCdfToTruth(e->cdf, *env->dist).ks;
            ++b2n;
          }
          ParametricFitOptions b5o;
          b5o.num_peers = kBudget;
          b5o.seed = 13 + r;
          if (auto e =
                  ParametricFitEstimator(env->ring.get(), b5o).Estimate(q);
              e.ok()) {
            b5 += CompareCdfToTruth(e->ToPiecewiseCdf(), *env->dist).ks;
            ++b5n;
          }
        }
        return std::vector<std::string>{
            Fmt("%.1f", theta), Fmt("%.4f", dde.accuracy.ks),
            Fmt("%.4f", b1n ? b1 / b1n : 0.0),
            Fmt("%.4f", b2n ? b2 / b2n : 0.0),
            Fmt("%.4f", b5n ? b5 / b5n : 0.0)};
      }));
  table.Print();

  // Secondary sweep: narrowing normals (another skew axis).
  Table table2(Fmt("E3b accuracy vs Normal concentration — n=%zu, m=%zu",
                   kPeers, kBudget),
               {"sigma", "dde_ks", "dde_l1cdf"});
  const std::vector<double> sigmas =
      SmokeMode() ? std::vector<double>{0.3, 0.04}
                  : std::vector<double>{0.3, 0.15, 0.08, 0.04, 0.02};
  table2.AddRows(ParallelRows<std::vector<std::string>>(
      sigmas.size(), [&](size_t row) {
        const double sigma = sigmas[row];
        auto env = BuildEnv(
            kPeers,
            std::make_unique<TruncatedNormalDistribution>(0.5, sigma),
            kItems, 57 + static_cast<uint64_t>(sigma * 1000));
        DdeOptions opts;
        opts.num_probes = kBudget;
        const RepeatedResult dde = RepeatDde(*env, opts, kReps, 900);
        return std::vector<std::string>{Fmt("%.2f", sigma),
                                        Fmt("%.4f", dde.accuracy.ks),
                                        Fmt("%.4f", dde.accuracy.l1_cdf)};
      }));
  table2.Print();
}

}  // namespace
}  // namespace ringdde::bench

int main() {
  ringdde::bench::BenchRun run("e3_accuracy_vs_skew");
  ringdde::bench::Run();
  return 0;
}
