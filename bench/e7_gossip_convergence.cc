// E7 — Gossip convergence versus one-shot DDE at equal message budget.
//
// Push-sum converges exponentially in rounds, but every round costs n
// messages. The table shows per-round gossip error alongside what DDE
// achieves if handed the same CUMULATIVE message budget as probes. Shape:
// for a single querier DDE reaches low error with a fraction of one gossip
// round's traffic; gossip only amortizes when all n peers need estimates.
#include <cmath>
#include <memory>

#include "baselines/gossip_histogram.h"
#include "bench_util.h"
#include "core/dissemination.h"

namespace ringdde::bench {
namespace {

constexpr size_t kPeers = 1024;
constexpr size_t kItems = 100000;

void Run() {
  auto env = BuildEnv(kPeers, std::make_unique<ZipfDistribution>(1000, 0.9),
                      kItems, 171);
  GossipHistogramAggregator gossip(env->ring.get());
  gossip.Initialize();

  Table table(Fmt("E7 gossip convergence vs DDE — n=%zu, Zipf(1000,0.9)",
                  kPeers),
              {"round", "gossip_mean_ks", "cum_msgs",
               "dde_ks_at_same_msgs", "dde_m"});

  Rng rng(3);
  uint64_t cum_msgs = 0;
  // Average hops per lookup ~ 0.5 log2 n; messages per probe ~ 2 hops + 2.
  const double per_probe = std::log2(double(kPeers)) + 2.0;
  for (int round = 0; round <= 12; ++round) {
    if (round > 0) cum_msgs += gossip.Step();
    const double gks = gossip.MeanDisagreement(64, rng);

    std::string dde_ks = "-";
    std::string dde_m = "-";
    if (cum_msgs > 0) {
      const size_t m = std::max<size_t>(
          4, static_cast<size_t>(double(cum_msgs) / per_probe));
      DdeOptions opts;
      opts.num_probes = std::min<size_t>(m, 4096);
      const RepeatedResult r = RepeatDde(*env, opts, 2, 700 + round);
      dde_ks = Fmt("%.4f", r.accuracy.ks);
      dde_m = Fmt("%zu", opts.num_probes);
    }
    table.AddRow({Fmt("%d", round), Fmt("%.4f", gks),
                  Fmt("%llu", (unsigned long long)cum_msgs), dde_ks,
                  dde_m});
  }
  table.Print();

  // Serving ALL peers: probe once + broadcast the estimate over the finger
  // tree versus gossiping until convergence.
  Table all_peers(Fmt("E7b serve-every-peer strategies — n=%zu", kPeers),
                  {"strategy", "peer_mean_ks", "holders", "total_msgs",
                   "total_MB"});
  for (size_t shipped_knots : {size_t{0}, size_t{128}}) {
    CostScope scope(env->net->counters());
    DdeOptions opts;
    opts.num_probes = 256;
    DensityEstimate e = RunDde(*env, opts, 909);
    std::string label = "DDE m=256 + broadcast (full)";
    if (shipped_knots > 0) {
      // Downsample the CDF before shipping: ~1/knots CDF error for a
      // fraction of the bytes.
      e.cdf = e.cdf.Resampled(shipped_knots);
      label = Fmt("DDE m=256 + broadcast (%zu knots)", shipped_knots);
    }
    EstimateDisseminator diss(env->ring.get());
    Rng drng(11);
    auto holders = diss.Broadcast(*env->ring->RandomAliveNode(drng), e);
    const CostCounters c = scope.Delta();
    all_peers.AddRow(
        {label, Fmt("%.4f", CompareCdfToTruth(e.cdf, *env->dist).ks),
         Fmt("%zu", holders.value_or(0)),
         Fmt("%llu", (unsigned long long)c.messages),
         Fmt("%.1f", c.bytes / (1024.0 * 1024.0))});
  }
  {
    GossipHistogramAggregator gossip2(env->ring.get());
    gossip2.Initialize();
    CostScope scope(env->net->counters());
    for (int r = 0; r < 40; ++r) gossip2.Step();
    Rng grng(12);
    const CostCounters c = scope.Delta();
    all_peers.AddRow({"gossip 40 rounds",
                      Fmt("%.4f", gossip2.MeanDisagreement(64, grng)),
                      Fmt("%zu", env->ring->AliveCount()),
                      Fmt("%llu", (unsigned long long)c.messages),
                      Fmt("%.1f", c.bytes / (1024.0 * 1024.0))});
  }
  all_peers.Print();
}

}  // namespace
}  // namespace ringdde::bench

int main() {
  ringdde::bench::Run();
  return 0;
}
