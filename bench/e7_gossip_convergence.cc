// E7 — Gossip convergence versus one-shot DDE at equal message budget.
//
// Push-sum converges exponentially in rounds, but every round costs n
// messages. The table shows per-round gossip error alongside what DDE
// achieves if handed the same CUMULATIVE message budget as probes. Shape:
// for a single querier DDE reaches low error with a fraction of one gossip
// round's traffic; gossip only amortizes when all n peers need estimates.
//
// The gossip rounds are inherently sequential, so phase 1 steps the
// aggregator serially and records per-round state; phase 2 then runs the
// independent DDE-at-equal-budget column concurrently, one Env replica
// per round.
#include <cmath>
#include <memory>

#include "baselines/gossip_histogram.h"
#include "bench_util.h"
#include "core/dissemination.h"

namespace ringdde::bench {
namespace {

void Run() {
  const size_t kPeers = Scaled(1024, 128);
  const size_t kItems = Scaled(100000, 4000);
  const int kRounds = ScaledInt(12, 4);

  auto env = BuildEnv(kPeers, std::make_unique<ZipfDistribution>(1000, 0.9),
                      kItems, 171);
  GossipHistogramAggregator gossip(env->ring.get());
  gossip.Initialize();

  Table table(Fmt("E7 gossip convergence vs DDE — n=%zu, Zipf(1000,0.9)",
                  kPeers),
              {"round", "gossip_mean_ks", "cum_msgs",
               "dde_ks_at_same_msgs", "dde_m"});

  // Phase 1 (serial): the round r state depends on round r-1, and the
  // disagreement probe shares one rng stream across rounds.
  struct RoundState {
    double gossip_ks = 0.0;
    uint64_t cum_msgs = 0;
  };
  std::vector<RoundState> rounds(static_cast<size_t>(kRounds) + 1);
  Rng rng(3);
  uint64_t cum_msgs = 0;
  for (int round = 0; round <= kRounds; ++round) {
    if (round > 0) cum_msgs += gossip.Step();
    rounds[static_cast<size_t>(round)] = {gossip.MeanDisagreement(64, rng),
                                          cum_msgs};
  }

  // Phase 2 (parallel): each round's equal-budget DDE run is independent.
  // Average hops per lookup ~ 0.5 log2 n; messages per probe ~ 2 hops + 2.
  const double per_probe = std::log2(double(kPeers)) + 2.0;
  table.AddRows(ParallelRows<std::vector<std::string>>(
      rounds.size(), [&](size_t row) {
        const RoundState& rs = rounds[row];
        std::string dde_ks = "-";
        std::string dde_m = "-";
        if (rs.cum_msgs > 0) {
          std::unique_ptr<Env> storage;
          Env& e = RowEnv(*env, storage);
          const size_t m = std::max<size_t>(
              4, static_cast<size_t>(double(rs.cum_msgs) / per_probe));
          DdeOptions opts;
          opts.num_probes = std::min<size_t>(m, 4096);
          const RepeatedResult r =
              RepeatDde(e, opts, 2, 700 + static_cast<uint64_t>(row));
          dde_ks = Fmt("%.4f", r.accuracy.ks);
          dde_m = Fmt("%zu", opts.num_probes);
        }
        return std::vector<std::string>{
            Fmt("%zu", row), Fmt("%.4f", rs.gossip_ks),
            Fmt("%llu", (unsigned long long)rs.cum_msgs), dde_ks, dde_m};
      }));
  table.Print();

  // Serving ALL peers: probe once + broadcast the estimate over the finger
  // tree versus gossiping until convergence. Three self-contained
  // strategies → three concurrent rows on private replicas.
  const int kGossipRounds = ScaledInt(40, 8);
  Table all_peers(Fmt("E7b serve-every-peer strategies — n=%zu", kPeers),
                  {"strategy", "peer_mean_ks", "holders", "total_msgs",
                   "total_MB"});
  all_peers.AddRows(ParallelRows<std::vector<std::string>>(
      3, [&](size_t row) {
        std::unique_ptr<Env> storage;
        Env& e = RowEnv(*env, storage);
        if (row < 2) {
          const size_t shipped_knots = row == 0 ? 0 : 128;
          CostScope scope(e.net->counters());
          DdeOptions opts;
          opts.num_probes = 256;
          DensityEstimate est = RunDde(e, opts, 909);
          std::string label = "DDE m=256 + broadcast (full)";
          if (shipped_knots > 0) {
            // Downsample the CDF before shipping: ~1/knots CDF error for a
            // fraction of the bytes.
            est.cdf = est.cdf.Resampled(shipped_knots);
            label = Fmt("DDE m=256 + broadcast (%zu knots)", shipped_knots);
          }
          EstimateDisseminator diss(e.ring.get());
          Rng drng(11);
          auto holders = diss.Broadcast(*e.ring->RandomAliveNode(drng), est);
          const CostCounters c = scope.Delta();
          return std::vector<std::string>{
              label, Fmt("%.4f", CompareCdfToTruth(est.cdf, *e.dist).ks),
              Fmt("%zu", holders.value_or(0)),
              Fmt("%llu", (unsigned long long)c.messages),
              Fmt("%.1f", c.bytes / (1024.0 * 1024.0))};
        }
        GossipHistogramAggregator gossip2(e.ring.get());
        gossip2.Initialize();
        CostScope scope(e.net->counters());
        for (int r = 0; r < kGossipRounds; ++r) gossip2.Step();
        Rng grng(12);
        const CostCounters c = scope.Delta();
        return std::vector<std::string>{
            Fmt("gossip %d rounds", kGossipRounds),
            Fmt("%.4f", gossip2.MeanDisagreement(64, grng)),
            Fmt("%zu", e.ring->AliveCount()),
            Fmt("%llu", (unsigned long long)c.messages),
            Fmt("%.1f", c.bytes / (1024.0 * 1024.0))};
      }));
  all_peers.Print();
}

}  // namespace
}  // namespace ringdde::bench

int main() {
  ringdde::bench::BenchRun run("e7_gossip_convergence");
  ringdde::bench::Run();
  return 0;
}
