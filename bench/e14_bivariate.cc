// E14 — Two-attribute extension: rectangle selectivity on correlated data.
//
// Extension experiment (future-work direction of the univariate model):
// items carry (x, y); placement stays 1-D on x; probes additionally fetch
// per-arc y quantiles. The joint estimate captures x-y correlation that an
// independence-assuming baseline (product of the two marginals — what a
// system with two univariate estimates would compute) structurally cannot.
//
// Each correlation workload is a self-contained simulation and runs as a
// concurrent row task on the global thread pool.
#include <algorithm>
#include <cmath>
#include <memory>

#include "bench_util.h"
#include "common/math_util.h"
#include "core/bivariate.h"

namespace ringdde::bench {
namespace {

struct Workload {
  const char* name;
  double (*gen_y)(double x, Rng& rng);
};

double IndependentY(double, Rng& rng) {
  return Clamp(0.5 + 0.1 * rng.Normal(), 0.0, 1.0);
}
double LinearY(double x, Rng& rng) {
  return Clamp(x + 0.05 * rng.Normal(), 0.0, 1.0);
}
double InverseY(double x, Rng& rng) {
  return Clamp(1.0 - x + 0.1 * rng.Normal(), 0.0, 1.0);
}

void Run() {
  const size_t kPeers = Scaled(1024, 128);
  const size_t kItems = Scaled(100000, 4000);
  const int kQueries = ScaledInt(200, 60);

  Table table(Fmt("E14 2D rectangle selectivity — n=%zu, N=%zu, m=256, "
                  "%d random rectangles",
                  kPeers, kItems, kQueries),
              {"correlation", "joint_mean_err", "joint_p95_err",
               "indep_mean_err", "indep_p95_err"});

  const std::vector<Workload> workloads{Workload{"independent", IndependentY},
                                        Workload{"y~x", LinearY},
                                        Workload{"y~1-x", InverseY}};
  table.AddRows(ParallelRows<std::vector<std::string>>(
      workloads.size(), [&](size_t row) {
        const Workload& wl = workloads[row];
        const std::vector<std::string> failed{wl.name, "-", "-", "-", "-"};
        Network net;
        ChordRing ring(&net);
        if (!ring.CreateNetwork(kPeers).ok()) return failed;
        BivariateStore store(&ring);
        UniformDistribution ux;
        Rng rng(29);
        std::vector<XY> items;
        items.reserve(kItems);
        for (size_t i = 0; i < kItems; ++i) {
          XY item;
          item.x = ux.Sample(rng);
          item.y = wl.gen_y(item.x, rng);
          items.push_back(item);
        }
        if (!store.BulkLoad(items).ok()) return failed;

        BivariateOptions opts;
        opts.num_probes = 256;
        BivariateEstimator est(&ring, &store, opts);
        auto e = est.Estimate(*ring.RandomAliveNode(rng));
        if (!e.ok()) return failed;

        // Independence baseline: product of the estimated x marginal and
        // the GLOBAL y marginal (built from the same probes' y quantiles
        // via the estimate itself at full width).
        auto indep = [&](double x1, double x2, double y1, double y2) {
          const double px =
              e->x_cdf().Evaluate(x2) - e->x_cdf().Evaluate(x1);
          const double py = e->RectangleMass(0.0, 1.0, y1, y2);
          return px * py;
        };

        Rng qrng(31);
        std::vector<double> joint_err, indep_err;
        for (int q = 0; q < kQueries; ++q) {
          const double x1 = qrng.UniformDouble(0.0, 0.75);
          const double x2 = x1 + qrng.UniformDouble(0.05, 0.25);
          const double y1 = qrng.UniformDouble(0.0, 0.75);
          const double y2 = y1 + qrng.UniformDouble(0.05, 0.25);
          const double exact =
              static_cast<double>(
                  store.ExactRectangleCount(x1, x2, y1, y2)) /
              static_cast<double>(kItems);
          joint_err.push_back(
              std::fabs(e->RectangleMass(x1, x2, y1, y2) - exact));
          indep_err.push_back(std::fabs(indep(x1, x2, y1, y2) - exact));
        }
        return std::vector<std::string>{
            wl.name, Fmt("%.4f", Mean(joint_err)),
            Fmt("%.4f", Quantile(joint_err, 0.95)),
            Fmt("%.4f", Mean(indep_err)),
            Fmt("%.4f", Quantile(indep_err, 0.95))};
      }));
  table.Print();
}

}  // namespace
}  // namespace ringdde::bench

int main() {
  ringdde::bench::BenchRun run("e14_bivariate");
  ringdde::bench::Run();
  return 0;
}
