#include "apps/load_balance.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/math_util.h"
#include "ring/ring_stats.h"

namespace ringdde {

namespace {

LoadBalanceReport ReportFromLoads(std::vector<double> loads) {
  LoadBalanceReport r;
  if (loads.empty()) return r;
  r.mean_load = Mean(loads);
  if (r.mean_load > 0.0) {
    r.max_over_avg =
        *std::max_element(loads.begin(), loads.end()) / r.mean_load;
    r.cv = Stddev(loads) / r.mean_load;
  }
  r.gini = GiniCoefficient(std::move(loads));
  return r;
}

}  // namespace

std::string LoadBalanceReport::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "gini=%.4f max/avg=%.2f cv=%.3f mean=%.1f", gini,
                max_over_avg, cv, mean_load);
  return std::string(buf);
}

LoadBalanceReport ExactLoadBalance(const ChordRing& ring) {
  const std::vector<uint64_t> loads = NodeLoads(ring);
  return ReportFromLoads(std::vector<double>(loads.begin(), loads.end()));
}

std::vector<double> PredictNodeLoads(const ChordRing& ring,
                                     const PiecewiseLinearCdf& cdf,
                                     double estimated_total) {
  const auto& index = ring.index();
  std::vector<double> loads;
  loads.reserve(index.size());
  if (index.empty()) return loads;
  if (index.size() == 1) {
    loads.push_back(estimated_total);
    return loads;
  }
  // Arc boundaries ascend with the node ids, so one sorted cursor sweep
  // evaluates every boundary; node i's arc is (boundary i-1, boundary i]
  // with node 0 wrapping from the last boundary.
  std::vector<double> units;
  units.reserve(index.size());
  index.ForEach(
      [&](uint64_t id, NodeAddr /*addr*/) { units.push_back(RingId(id).ToUnit()); });
  const std::vector<double> f = cdf.EvaluateSorted(units);
  for (size_t i = 0; i < units.size(); ++i) {
    const double lo = i == 0 ? units.back() : units[i - 1];
    const double f_lo = i == 0 ? f.back() : f[i - 1];
    double frac;
    if (lo <= units[i]) {
      frac = f[i] - f_lo;
    } else {
      // Arc wraps the domain boundary: mass above lo plus mass below hi.
      frac = (1.0 - f_lo) + f[i];
    }
    loads.push_back(std::max(frac, 0.0) * estimated_total);
  }
  return loads;
}

LoadBalanceReport PredictLoadBalance(const ChordRing& ring,
                                     const PiecewiseLinearCdf& cdf,
                                     double estimated_total) {
  return ReportFromLoads(PredictNodeLoads(ring, cdf, estimated_total));
}

double MeanLoadPredictionError(const ChordRing& ring,
                               const PiecewiseLinearCdf& cdf,
                               double estimated_total) {
  const std::vector<uint64_t> actual = NodeLoads(ring);
  const std::vector<double> predicted =
      PredictNodeLoads(ring, cdf, estimated_total);
  if (actual.empty() || actual.size() != predicted.size()) return 0.0;
  KahanSum err;
  KahanSum total;
  for (size_t i = 0; i < actual.size(); ++i) {
    err.Add(std::fabs(predicted[i] - static_cast<double>(actual[i])));
    total.Add(static_cast<double>(actual[i]));
  }
  const double mean_load = total.value() / static_cast<double>(actual.size());
  if (mean_load <= 0.0) return 0.0;
  return err.value() / static_cast<double>(actual.size()) / mean_load;
}

}  // namespace ringdde
