#include "apps/density_mining.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "core/inversion_sampler.h"
#include "stats/kde.h"

namespace ringdde {

std::string DensityMode::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "mode@%.3f span=[%.3f,%.3f] mass=%.3f peak=%.2f", center, lo,
                hi, mass, peak_density);
  return std::string(buf);
}

Result<std::vector<DensityMode>> DetectModes(
    const DensityEstimate& estimate, const ModeDetectionOptions& options) {
  if (options.grid < 8) {
    return Status::InvalidArgument("grid too coarse for mode detection");
  }
  // Smooth: KDE over stratified inversion samples of the estimate.
  InversionSampler sampler(&estimate.cdf);
  Rng rng(0x40DE5);  // fixed seed: deterministic mining
  Result<KernelDensityEstimator> kde = KernelDensityEstimator::Build(
      sampler.SampleStratified(options.sample_count, rng),
      KernelType::kGaussian, options.bandwidth);
  if (!kde.ok()) return kde.status();

  // Scan the smoothed density.
  const int g = options.grid;
  std::vector<double> pdf(static_cast<size_t>(g) + 1);
  for (int i = 0; i <= g; ++i) {
    pdf[static_cast<size_t>(i)] =
        kde->Pdf(static_cast<double>(i) / static_cast<double>(g));
  }

  // Peaks: strict local maxima (plateaus take their left edge); the domain
  // edges count when the density slopes away from them.
  std::vector<int> peaks;
  for (int i = 0; i <= g; ++i) {
    const double left = i > 0 ? pdf[i - 1] : -1.0;
    const double right = i < g ? pdf[i + 1] : -1.0;
    if (pdf[static_cast<size_t>(i)] > left &&
        pdf[static_cast<size_t>(i)] >= right) {
      peaks.push_back(i);
    }
  }
  if (peaks.empty()) peaks.push_back(g / 2);  // flat density: one segment

  // Valleys: the minimum between consecutive peaks cuts the domain.
  std::vector<double> cuts{0.0};
  for (size_t p = 0; p + 1 < peaks.size(); ++p) {
    int argmin = peaks[p];
    for (int i = peaks[p]; i <= peaks[p + 1]; ++i) {
      if (pdf[static_cast<size_t>(i)] < pdf[static_cast<size_t>(argmin)]) {
        argmin = i;
      }
    }
    cuts.push_back(static_cast<double>(argmin) / g);
  }
  cuts.push_back(1.0);

  // Assemble modes and merge sub-threshold bumps into the neighbor across
  // their LOWER valley (so noise attaches to the structure it leaks from).
  std::vector<DensityMode> modes;
  // Cuts ascend, so each bound stream walks one monotone segment cursor.
  PiecewiseLinearCdf::Cursor lo_cursor(estimate.cdf);
  PiecewiseLinearCdf::Cursor hi_cursor(estimate.cdf);
  for (size_t s = 0; s + 1 < cuts.size(); ++s) {
    DensityMode m;
    m.lo = cuts[s];
    m.hi = cuts[s + 1];
    m.center = static_cast<double>(peaks[s]) / g;
    m.peak_density = pdf[static_cast<size_t>(peaks[s])];
    m.mass = hi_cursor.Evaluate(m.hi) - lo_cursor.Evaluate(m.lo);
    modes.push_back(m);
  }
  bool merged = true;
  while (merged && modes.size() > 1) {
    merged = false;
    for (size_t i = 0; i < modes.size(); ++i) {
      if (modes[i].mass >= options.min_mass) continue;
      // Merge into the neighbor with the higher shared valley density.
      size_t target;
      if (i == 0) {
        target = 1;
      } else if (i + 1 == modes.size()) {
        target = i - 1;
      } else {
        const double left_valley =
            kde->Pdf(modes[i].lo);  // shared with modes[i-1]
        const double right_valley = kde->Pdf(modes[i].hi);
        target = left_valley >= right_valley ? i - 1 : i + 1;
      }
      DensityMode& t = modes[target];
      t.lo = std::min(t.lo, modes[i].lo);
      t.hi = std::max(t.hi, modes[i].hi);
      t.mass += modes[i].mass;
      if (modes[i].peak_density > t.peak_density) {
        t.peak_density = modes[i].peak_density;
        t.center = modes[i].center;
      }
      modes.erase(modes.begin() + static_cast<ptrdiff_t>(i));
      merged = true;
      break;
    }
  }

  std::sort(modes.begin(), modes.end(),
            [](const DensityMode& a, const DensityMode& b) {
              return a.mass > b.mass;
            });
  return modes;
}

std::vector<RangeMass> HeaviestRanges(const PiecewiseLinearCdf& cdf,
                                      double width, size_t k, int grid) {
  std::vector<RangeMass> candidates;
  candidates.reserve(static_cast<size_t>(grid) + 1);
  // Both window bounds ascend with i: one segment cursor per stream turns
  // the scan into a single O(grid + knots) sweep.
  PiecewiseLinearCdf::Cursor lo_cursor(cdf);
  PiecewiseLinearCdf::Cursor hi_cursor(cdf);
  for (int i = 0; i <= grid; ++i) {
    const double lo = static_cast<double>(i) / grid * (1.0 - width);
    RangeMass r;
    r.lo = lo;
    r.hi = lo + width;
    r.mass = hi_cursor.Evaluate(r.hi) - lo_cursor.Evaluate(r.lo);
    candidates.push_back(r);
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const RangeMass& a, const RangeMass& b) {
              return a.mass > b.mass;
            });
  std::vector<RangeMass> picked;
  for (const RangeMass& c : candidates) {
    if (picked.size() >= k) break;
    bool overlaps = false;
    for (const RangeMass& p : picked) {
      if (c.lo < p.hi && p.lo < c.hi) {
        overlaps = true;
        break;
      }
    }
    if (!overlaps) picked.push_back(c);
  }
  return picked;
}

}  // namespace ringdde
