#ifndef RINGDDE_APPS_SELECTIVITY_H_
#define RINGDDE_APPS_SELECTIVITY_H_

#include <vector>

#include "common/rng.h"
#include "ring/chord_ring.h"
#include "stats/piecewise_cdf.h"

namespace ringdde {

/// Application 1: range-query selectivity estimation (the query-processing
/// use case from the paper's introduction). Once a peer holds a density
/// estimate, any range predicate's selectivity is F̂(hi) - F̂(lo) with zero
/// further network traffic.
class SelectivityEstimator {
 public:
  /// The CDF must outlive the estimator.
  explicit SelectivityEstimator(const PiecewiseLinearCdf* cdf);

  /// Estimated fraction of global items with key in [lo, hi].
  double EstimateFraction(double lo, double hi) const;

  /// Estimated item count given an estimate of the global total.
  double EstimateCount(double lo, double hi, double total_items) const;

 private:
  const PiecewiseLinearCdf* cdf_;
};

/// Exact fraction of items in [lo, hi], from ring ground truth (cost-free
/// oracle scan; the benchmark's reference value).
double ExactSelectivity(const ChordRing& ring, double lo, double hi);

/// One range predicate over the unit key domain.
struct RangeQuery {
  double lo = 0.0;
  double hi = 0.0;
};

/// Random range workload: centers uniform in [0,1], widths exponential with
/// the given mean (clamped into the domain).
std::vector<RangeQuery> GenerateRangeQueries(size_t count, double mean_width,
                                             Rng& rng);

/// Error summary of an estimate against ground truth over a workload.
struct SelectivityEvalResult {
  double mean_abs_error = 0.0;   ///< mean |est - exact| (absolute fraction)
  double p95_abs_error = 0.0;    ///< 95th percentile of absolute error
  double mean_rel_error = 0.0;   ///< mean |est-exact|/max(exact, 1e-4)
};

SelectivityEvalResult EvaluateSelectivity(const PiecewiseLinearCdf& estimate,
                                          const ChordRing& ring,
                                          const std::vector<RangeQuery>& qs);

}  // namespace ringdde

#endif  // RINGDDE_APPS_SELECTIVITY_H_
