#ifndef RINGDDE_APPS_LOAD_BALANCE_H_
#define RINGDDE_APPS_LOAD_BALANCE_H_

#include <string>
#include <vector>

#include "ring/chord_ring.h"
#include "stats/piecewise_cdf.h"

namespace ringdde {

/// Application 2: load-balancing analysis (the paper's other motivating use
/// case). A peer holding a density estimate can predict every peer's
/// storage load from public information alone (the membership's arcs),
/// because load(peer) = N · (F(arc_hi) - F(arc_lo)) under order-preserving
/// placement — no per-peer load collection needed.
struct LoadBalanceReport {
  double gini = 0.0;          ///< Gini coefficient of per-peer loads
  double max_over_avg = 0.0;  ///< max load / mean load
  double cv = 0.0;            ///< coefficient of variation (stddev/mean)
  double mean_load = 0.0;

  std::string ToString() const;
};

/// Ground truth from the ring's actual stores.
LoadBalanceReport ExactLoadBalance(const ChordRing& ring);

/// Predicted report: per-peer loads computed from the estimated CDF over
/// the ring's (oracle) arcs and the estimated total. Identical arcs are
/// used for truth and prediction, so all divergence comes from F̂ vs F.
LoadBalanceReport PredictLoadBalance(const ChordRing& ring,
                                     const PiecewiseLinearCdf& cdf,
                                     double estimated_total);

/// Per-peer predicted loads, in ring order (for finer-grained comparison).
std::vector<double> PredictNodeLoads(const ChordRing& ring,
                                     const PiecewiseLinearCdf& cdf,
                                     double estimated_total);

/// Mean absolute per-peer load prediction error, normalized by the true
/// mean load (0 = perfect prediction).
double MeanLoadPredictionError(const ChordRing& ring,
                               const PiecewiseLinearCdf& cdf,
                               double estimated_total);

}  // namespace ringdde

#endif  // RINGDDE_APPS_LOAD_BALANCE_H_
