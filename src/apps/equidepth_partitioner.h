#ifndef RINGDDE_APPS_EQUIDEPTH_PARTITIONER_H_
#define RINGDDE_APPS_EQUIDEPTH_PARTITIONER_H_

#include <string>
#include <vector>

#include "ring/chord_ring.h"
#include "stats/piecewise_cdf.h"

namespace ringdde {

/// Application 3: equi-depth domain partitioning.
///
/// A load balancer that wants k partitions with equal data mass reads the
/// boundaries straight off the estimated CDF by inversion:
/// boundary_i = F̂⁻¹(i/k). Quality is then judged against ground truth: how
/// evenly did the proposed boundaries actually split the data?
///
/// Boundaries are (k-1) interior cut points; partition i spans
/// [boundary_{i-1}, boundary_i) with the implicit outer bounds 0 and 1.
std::vector<double> ProposePartitionBoundaries(const PiecewiseLinearCdf& cdf,
                                               size_t k);

/// Actual data share of each proposed partition (from ring ground truth).
std::vector<double> MeasurePartitionShares(
    const ChordRing& ring, const std::vector<double>& boundaries);

/// Balance quality of a share vector (each ideally 1/(#partitions)).
struct PartitionQuality {
  double max_share = 0.0;
  double min_share = 0.0;
  double stddev_share = 0.0;
  /// max_share / ideal_share; 1.0 is perfect.
  double imbalance = 0.0;

  std::string ToString() const;
};

PartitionQuality EvaluatePartitionShares(const std::vector<double>& shares);

}  // namespace ringdde

#endif  // RINGDDE_APPS_EQUIDEPTH_PARTITIONER_H_
