#include "apps/equidepth_partitioner.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

#include "apps/selectivity.h"
#include "common/math_util.h"

namespace ringdde {

std::vector<double> ProposePartitionBoundaries(const PiecewiseLinearCdf& cdf,
                                               size_t k) {
  assert(k >= 1);
  std::vector<double> bounds;
  bounds.reserve(k > 0 ? k - 1 : 0);
  for (size_t i = 1; i < k; ++i) {
    bounds.push_back(
        cdf.Inverse(static_cast<double>(i) / static_cast<double>(k)));
  }
  // Inversion of a flat CDF region can emit equal cut points; keep them
  // strictly increasing so partitions stay well-formed.
  for (size_t i = 1; i < bounds.size(); ++i) {
    if (bounds[i] <= bounds[i - 1]) {
      bounds[i] = std::nextafter(bounds[i - 1], 1e300);
    }
  }
  return bounds;
}

std::vector<double> MeasurePartitionShares(
    const ChordRing& ring, const std::vector<double>& boundaries) {
  std::vector<double> shares;
  shares.reserve(boundaries.size() + 1);
  double prev = 0.0;
  for (double b : boundaries) {
    shares.push_back(ExactSelectivity(ring, prev, b));
    prev = b;
  }
  shares.push_back(ExactSelectivity(ring, prev, 1.0));
  return shares;
}

std::string PartitionQuality::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "max=%.4f min=%.4f stddev=%.4f imbalance=%.3f", max_share,
                min_share, stddev_share, imbalance);
  return std::string(buf);
}

PartitionQuality EvaluatePartitionShares(const std::vector<double>& shares) {
  PartitionQuality q;
  if (shares.empty()) return q;
  q.max_share = *std::max_element(shares.begin(), shares.end());
  q.min_share = *std::min_element(shares.begin(), shares.end());
  q.stddev_share = Stddev(shares);
  const double ideal = 1.0 / static_cast<double>(shares.size());
  q.imbalance = q.max_share / ideal;
  return q;
}

}  // namespace ringdde
