#include "apps/selectivity.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/math_util.h"

namespace ringdde {

SelectivityEstimator::SelectivityEstimator(const PiecewiseLinearCdf* cdf)
    : cdf_(cdf) {
  assert(cdf != nullptr);
}

double SelectivityEstimator::EstimateFraction(double lo, double hi) const {
  if (hi < lo) std::swap(lo, hi);
  return Clamp(cdf_->Evaluate(hi) - cdf_->Evaluate(lo), 0.0, 1.0);
}

double SelectivityEstimator::EstimateCount(double lo, double hi,
                                           double total_items) const {
  return EstimateFraction(lo, hi) * total_items;
}

double ExactSelectivity(const ChordRing& ring, double lo, double hi) {
  if (hi < lo) std::swap(lo, hi);
  uint64_t matching = 0;
  uint64_t total = 0;
  ring.index().ForEach([&](uint64_t /*id*/, NodeAddr addr) {
    const Node* node = ring.GetNode(addr);
    total += node->item_count();
    // Sorted keys: rank difference counts keys in [lo, hi].
    matching += node->RankOf(std::nextafter(hi, 1e300)) - node->RankOf(lo);
  });
  if (total == 0) return 0.0;
  return static_cast<double>(matching) / static_cast<double>(total);
}

std::vector<RangeQuery> GenerateRangeQueries(size_t count, double mean_width,
                                             Rng& rng) {
  assert(mean_width > 0.0);
  std::vector<RangeQuery> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const double center = rng.UniformDouble();
    const double width = rng.Exponential(1.0 / mean_width);
    RangeQuery q;
    q.lo = Clamp(center - width / 2, 0.0, 1.0);
    q.hi = Clamp(center + width / 2, 0.0, 1.0);
    out.push_back(q);
  }
  return out;
}

SelectivityEvalResult EvaluateSelectivity(const PiecewiseLinearCdf& estimate,
                                          const ChordRing& ring,
                                          const std::vector<RangeQuery>& qs) {
  SelectivityEvalResult r;
  if (qs.empty()) return r;
  // Batch-evaluate the estimate at all query endpoints through one sorted
  // cursor sweep (O(q log q + q + knots) instead of a binary search per
  // endpoint), then score the queries in their original order so the
  // error aggregation is unchanged.
  std::vector<size_t> order(2 * qs.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  const auto endpoint = [&qs](size_t i) {
    const RangeQuery& q = qs[i / 2];
    const double lo = std::min(q.lo, q.hi);  // EstimateFraction swaps, too
    const double hi = std::max(q.lo, q.hi);
    return i % 2 == 0 ? lo : hi;
  };
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return endpoint(a) < endpoint(b); });
  std::vector<double> sorted_xs;
  sorted_xs.reserve(order.size());
  for (size_t i : order) sorted_xs.push_back(endpoint(i));
  const std::vector<double> sorted_f = estimate.EvaluateSorted(sorted_xs);
  std::vector<double> f_at(order.size());
  for (size_t rank = 0; rank < order.size(); ++rank) {
    f_at[order[rank]] = sorted_f[rank];
  }

  std::vector<double> abs_errors;
  abs_errors.reserve(qs.size());
  KahanSum rel_acc;
  for (size_t qi = 0; qi < qs.size(); ++qi) {
    const RangeQuery& q = qs[qi];
    const double got = Clamp(f_at[2 * qi + 1] - f_at[2 * qi], 0.0, 1.0);
    const double want = ExactSelectivity(ring, q.lo, q.hi);
    const double abs_err = std::fabs(got - want);
    abs_errors.push_back(abs_err);
    rel_acc.Add(abs_err / std::max(want, 1e-4));
  }
  r.mean_abs_error = Mean(abs_errors);
  r.p95_abs_error = Quantile(abs_errors, 0.95);
  r.mean_rel_error = rel_acc.value() / static_cast<double>(qs.size());
  return r;
}

}  // namespace ringdde
