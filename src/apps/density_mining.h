#ifndef RINGDDE_APPS_DENSITY_MINING_H_
#define RINGDDE_APPS_DENSITY_MINING_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/density_estimator.h"
#include "stats/piecewise_cdf.h"

namespace ringdde {

/// Application 4: data mining on the estimated density (the third use case
/// the paper's abstract motivates). Everything here is network-free: one
/// density estimate in, structure out.

/// A detected density mode (cluster of keys).
struct DensityMode {
  double center = 0.0;        ///< location of the density peak
  double lo = 0.0;            ///< left valley bounding the mode
  double hi = 0.0;            ///< right valley bounding the mode
  double mass = 0.0;          ///< estimated probability mass in [lo, hi]
  double peak_density = 0.0;  ///< smoothed density at the peak

  std::string ToString() const;
};

struct ModeDetectionOptions {
  /// Inversion samples drawn from the estimate for KDE smoothing.
  size_t sample_count = 2048;

  /// KDE bandwidth; <= 0 selects Silverman's rule.
  double bandwidth = 0.0;

  /// Resolution of the density scan over [0, 1].
  int grid = 512;

  /// Modes carrying less estimated mass than this are merged into their
  /// lower-valley neighbor (noise suppression).
  double min_mass = 0.02;
};

/// Finds the modes of the estimated global density: smooths the estimate
/// with a KDE over inversion samples, scans for peaks, cuts the domain at
/// the valleys between them, and merges sub-threshold bumps. Modes are
/// returned sorted by mass, heaviest first; their masses sum to ~1.
Result<std::vector<DensityMode>> DetectModes(
    const DensityEstimate& estimate, const ModeDetectionOptions& options = {});

/// A fixed-width window and its estimated mass.
struct RangeMass {
  double lo = 0.0;
  double hi = 0.0;
  double mass = 0.0;
};

/// The k heaviest pairwise-disjoint windows of the given width (greedy by
/// mass over a fine grid of candidate positions). The "hot ranges" a cache
/// or an index advisor would target.
std::vector<RangeMass> HeaviestRanges(const PiecewiseLinearCdf& cdf,
                                      double width, size_t k,
                                      int grid = 2048);

}  // namespace ringdde

#endif  // RINGDDE_APPS_DENSITY_MINING_H_
