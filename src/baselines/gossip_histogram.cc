#include "baselines/gossip_histogram.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/math_util.h"

namespace ringdde {

GossipHistogramAggregator::GossipHistogramAggregator(ChordRing* ring,
                                                     GossipOptions options)
    : ring_(ring), options_(options), rng_(options.seed) {}

void GossipHistogramAggregator::Initialize() {
  states_.clear();
  rounds_ = 0;
  exact_global_.assign(options_.bins, 0.0);
  ring_->index().ForEach([&](uint64_t /*id*/, NodeAddr addr) {
    const Node* node = ring_->GetNode(addr);
    State st;
    st.mass.assign(options_.bins, 0.0);
    st.weight = 1.0;
    const double b = static_cast<double>(options_.bins);
    for (double key : node->keys()) {
      const size_t bin = std::min(static_cast<size_t>(key * b),
                                  options_.bins - 1);
      st.mass[bin] += 1.0;
      exact_global_[bin] += 1.0;
    }
    states_.emplace(addr, std::move(st));
  });
}

NodeAddr GossipHistogramAggregator::PickPartner(NodeAddr sender) {
  if (options_.uniform_partners) {
    Result<NodeAddr> peer = ring_->RandomAliveNode(rng_);
    return peer.ok() ? *peer : sender;
  }
  const Node* node = ring_->GetNode(sender);
  // Candidate contacts: successors + populated fingers (alive only),
  // DEDUPLICATED — the low fingers all collapse onto the immediate
  // successor, and without dedup gossip degenerates into neighbor-only
  // averaging, which mixes like a line graph instead of an expander.
  std::vector<NodeAddr> candidates;
  std::unordered_set<NodeAddr> seen;
  for (const NodeEntry& e : node->successors()) {
    if (ring_->IsAlive(e.addr) && seen.insert(e.addr).second) {
      candidates.push_back(e.addr);
    }
  }
  for (int k = 0; k < FingerTable::kBits; ++k) {
    const auto& f = node->fingers().Get(k);
    if (f.has_value() && f->addr != sender && ring_->IsAlive(f->addr) &&
        seen.insert(f->addr).second) {
      candidates.push_back(f->addr);
    }
  }
  if (candidates.empty()) return sender;
  return candidates[rng_.UniformU64(candidates.size())];
}

uint64_t GossipHistogramAggregator::Step() {
  // Synchronous push-sum: compute all outgoing shares against the
  // start-of-round state, then deliver.
  struct Delivery {
    NodeAddr to;
    std::vector<double> mass;
    double weight;
  };
  std::vector<Delivery> deliveries;
  deliveries.reserve(states_.size());

  uint64_t messages = 0;
  ring_->index().ForEach([&](uint64_t /*id*/, NodeAddr addr) {
    auto it = states_.find(addr);
    if (it == states_.end()) return;
    State& st = it->second;
    const NodeAddr partner = PickPartner(addr);
    // Halve in place; ship the other half (possibly to self, still one
    // message worth of work unless partner == self).
    for (double& m : st.mass) m *= 0.5;
    st.weight *= 0.5;
    Delivery d;
    d.to = partner;
    d.mass = st.mass;  // the shipped half equals what remains
    d.weight = st.weight;
    if (partner != addr) {
      ring_->network().Send(addr, partner, 8 * options_.bins + 8,
                            /*hop_count=*/1);
      ++messages;
    }
    deliveries.push_back(std::move(d));
  });
  for (Delivery& d : deliveries) {
    auto it = states_.find(d.to);
    if (it == states_.end()) continue;  // partner churned away: share lost
    State& st = it->second;
    for (size_t i = 0; i < st.mass.size(); ++i) st.mass[i] += d.mass[i];
    st.weight += d.weight;
  }
  ++rounds_;
  return messages;
}

Result<PiecewiseLinearCdf> GossipHistogramAggregator::EstimateAtPeer(
    NodeAddr addr) const {
  auto it = states_.find(addr);
  if (it == states_.end()) return Status::NotFound("no gossip state");
  const State& st = it->second;
  EquiWidthHistogram h(0.0, 1.0, options_.bins);
  for (size_t i = 0; i < st.mass.size(); ++i) {
    const double center =
        (static_cast<double>(i) + 0.5) / static_cast<double>(options_.bins);
    h.Add(center, st.mass[i]);
  }
  return h.ToCdf();
}

Result<double> GossipHistogramAggregator::EstimatedTotalAtPeer(
    NodeAddr addr) const {
  auto it = states_.find(addr);
  if (it == states_.end()) return Status::NotFound("no gossip state");
  const State& st = it->second;
  if (st.weight <= 0.0) return Status::Internal("zero push-sum weight");
  // mass/weight converges to the per-peer average; scale by the cohort
  // size captured at Initialize() to estimate the global total.
  return SumPrecise(st.mass) / st.weight *
         static_cast<double>(states_.size());
}

double GossipHistogramAggregator::MeanDisagreement(size_t sample_peers,
                                                   Rng& rng) const {
  const double total = SumPrecise(exact_global_);
  if (total <= 0.0 || states_.empty()) return 0.0;
  // Exact global CDF at bin boundaries.
  std::vector<double> exact_cum(exact_global_.size());
  double run = 0.0;
  for (size_t i = 0; i < exact_global_.size(); ++i) {
    run += exact_global_[i];
    exact_cum[i] = run / total;
  }
  KahanSum err_acc;
  size_t measured = 0;
  for (size_t s = 0; s < sample_peers; ++s) {
    Result<NodeAddr> peer = ring_->RandomAliveNode(rng);
    if (!peer.ok()) break;
    auto it = states_.find(*peer);
    if (it == states_.end()) continue;
    const State& st = it->second;
    const double local_total = SumPrecise(st.mass);
    if (local_total <= 0.0) {
      err_acc.Add(1.0);
      ++measured;
      continue;
    }
    double ks = 0.0;
    double cum = 0.0;
    for (size_t i = 0; i < st.mass.size(); ++i) {
      cum += st.mass[i];
      ks = std::max(ks, std::fabs(cum / local_total - exact_cum[i]));
    }
    err_acc.Add(ks);
    ++measured;
  }
  return measured == 0 ? 0.0 : err_acc.value() / static_cast<double>(measured);
}

}  // namespace ringdde
