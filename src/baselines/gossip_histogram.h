#ifndef RINGDDE_BASELINES_GOSSIP_HISTOGRAM_H_
#define RINGDDE_BASELINES_GOSSIP_HISTOGRAM_H_

#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "ring/chord_ring.h"
#include "stats/histogram.h"
#include "stats/piecewise_cdf.h"

namespace ringdde {

/// Baseline B3: push-sum gossip aggregation of equi-width histograms.
///
/// Every peer starts with (its local histogram, weight 1) and each
/// synchronous round sends half of both to one gossip partner. The ratio
/// histogram/weight converges (exponentially in rounds) to the global
/// average histogram at EVERY peer, i.e. gossip buys all-peers knowledge,
/// while DDE serves one querier. The per-round cost is n messages of B
/// bins each; E7 plots error versus rounds against DDE at an equal message
/// budget.
struct GossipOptions {
  size_t bins = 64;

  /// If true, partners are drawn uniformly from the membership (idealized
  /// gossip); if false, from the sender's finger table (deployable gossip,
  /// slightly slower mixing).
  bool uniform_partners = false;

  uint64_t seed = 2024;
};

class GossipHistogramAggregator {
 public:
  GossipHistogramAggregator(ChordRing* ring, GossipOptions options = {});

  /// Snapshots every alive peer's local data into its gossip state.
  /// Call once before stepping (re-call to restart).
  void Initialize();

  /// Executes one synchronous push-sum round (every alive peer sends once).
  /// Returns the number of messages sent.
  uint64_t Step();

  /// Number of completed rounds since Initialize().
  uint64_t rounds() const { return rounds_; }

  /// The estimate held at one peer: its histogram/weight ratio, as a CDF.
  /// Fails if the peer is unknown or its state is still empty.
  Result<PiecewiseLinearCdf> EstimateAtPeer(NodeAddr addr) const;

  /// That peer's estimate of the global item count: (mass/weight) × n.
  Result<double> EstimatedTotalAtPeer(NodeAddr addr) const;

  /// Mean KS-style disagreement of per-peer CDF estimates against the
  /// exact global histogram CDF, averaged over `sample_peers` random peers
  /// (convergence diagnostic for E7).
  double MeanDisagreement(size_t sample_peers, Rng& rng) const;

 private:
  struct State {
    std::vector<double> mass;  // histogram bins
    double weight = 0.0;
  };

  NodeAddr PickPartner(NodeAddr sender);

  ChordRing* ring_;
  GossipOptions options_;
  Rng rng_;
  uint64_t rounds_ = 0;
  std::unordered_map<NodeAddr, State> states_;
  std::vector<double> exact_global_;  // ground truth bins at Initialize()
};

}  // namespace ringdde

#endif  // RINGDDE_BASELINES_GOSSIP_HISTOGRAM_H_
