#include "baselines/random_walk_sampler.h"

#include <algorithm>
#include <unordered_set>

namespace ringdde {

RandomWalkSampler::RandomWalkSampler(ChordRing* ring,
                                     RandomWalkSamplerOptions options)
    : ring_(ring), options_(options), rng_(options.seed) {}

std::vector<NodeAddr> RandomWalkSampler::NeighborsOf(NodeAddr addr) const {
  std::vector<NodeAddr> out;
  const Node* node = ring_->GetNode(addr);
  if (node == nullptr) return out;
  std::unordered_set<NodeAddr> seen;
  for (const NodeEntry& e : node->successors()) {
    if (ring_->IsAlive(e.addr) && seen.insert(e.addr).second) {
      out.push_back(e.addr);
    }
  }
  for (int k = 0; k < FingerTable::kBits; ++k) {
    const auto& f = node->fingers().Get(k);
    if (f.has_value() && f->addr != addr && ring_->IsAlive(f->addr) &&
        seen.insert(f->addr).second) {
      out.push_back(f->addr);
    }
  }
  return out;
}

NodeAddr RandomWalkSampler::Walk(NodeAddr start) {
  NodeAddr cur = start;
  size_t cur_degree = NeighborsOf(cur).size();
  for (size_t step = 0; step < options_.walk_length; ++step) {
    const std::vector<NodeAddr> nbrs = NeighborsOf(cur);
    if (nbrs.empty()) break;
    const NodeAddr cand = nbrs[rng_.UniformU64(nbrs.size())];
    const size_t cand_degree = NeighborsOf(cand).size();
    // Degree query + (possible) move: 2 messages either way, matching an
    // MH implementation that always contacts the candidate.
    ring_->network().Send(cur, cand, 16, /*hop_count=*/1);
    ring_->network().Send(cand, cur, 16, /*hop_count=*/0);
    // MH acceptance for uniform stationary distribution: min(1, d(x)/d(y)).
    if (cand_degree == 0) continue;
    const double accept = std::min(
        1.0, static_cast<double>(cur_degree) /
                 static_cast<double>(cand_degree));
    if (rng_.Bernoulli(accept)) {
      cur = cand;
      cur_degree = cand_degree;
    }
  }
  return cur;
}

Result<DensityEstimate> RandomWalkSampler::Estimate(NodeAddr querier) {
  if (!ring_->IsAlive(querier)) {
    return Status::InvalidArgument("querier is not an alive peer");
  }
  CostScope scope(ring_->network().counters());

  std::vector<double> items;
  items.reserve(options_.num_samples);
  double max_load_seen = 1.0;
  size_t peers_contacted = 0;
  double count_sum = 0.0;

  // Calibration pass: a handful of walks just to seed max_load_seen, so
  // the rejection step is not systematically lenient on the first samples.
  for (size_t i = 0; i < 16; ++i) {
    const NodeAddr peer = Walk(querier);
    Node* node = ring_->GetNode(peer);
    if (node == nullptr || !node->alive()) continue;
    ring_->network().Send(querier, peer, 16, /*hop_count=*/1);
    ring_->network().Send(peer, querier, 16, /*hop_count=*/0);
    max_load_seen =
        std::max(max_load_seen, static_cast<double>(node->item_count()));
  }

  for (size_t i = 0; i < options_.num_samples; ++i) {
    bool accepted = false;
    for (size_t attempt = 0;
         attempt < options_.max_rejections && !accepted; ++attempt) {
      const NodeAddr peer = Walk(querier);
      Node* node = ring_->GetNode(peer);
      if (node == nullptr || !node->alive()) continue;
      // Fetch the load (1 round trip).
      ring_->network().Send(querier, peer, 16, /*hop_count=*/1);
      ring_->network().Send(peer, querier, 16, /*hop_count=*/0);
      ++peers_contacted;
      const double load = static_cast<double>(node->item_count());
      count_sum += load;
      max_load_seen = std::max(max_load_seen, load);
      // Load-proportional rejection: uniform-peer -> uniform-item.
      if (load <= 0.0 || !rng_.Bernoulli(load / max_load_seen)) continue;
      items.push_back(node->keys()[rng_.UniformU64(node->item_count())]);
      ring_->network().Send(querier, peer, 16, /*hop_count=*/1);
      ring_->network().Send(peer, querier, 16, /*hop_count=*/0);
      accepted = true;
    }
  }
  if (items.size() < 2) {
    return Status::Unavailable("too few items collected by random walks");
  }

  Result<PiecewiseLinearCdf> cdf = PiecewiseLinearCdf::FromSamples(items);
  if (!cdf.ok()) return cdf.status();

  DensityEstimate est;
  est.cdf = std::move(*cdf);
  est.estimated_total_items =
      peers_contacted == 0
          ? 0.0
          : count_sum / static_cast<double>(peers_contacted) *
                static_cast<double>(ring_->AliveCount());
  est.peers_probed = peers_contacted;
  est.cost = scope.Delta();
  est.produced_at = ring_->network().Now();
  return est;
}

}  // namespace ringdde
