#include "baselines/uniform_peer_sampler.h"

#include <algorithm>
#include <unordered_set>

namespace ringdde {

UniformPeerSampler::UniformPeerSampler(ChordRing* ring,
                                       UniformPeerSamplerOptions options)
    : ring_(ring), options_(options), rng_(options.seed) {}

Result<DensityEstimate> UniformPeerSampler::Estimate(NodeAddr querier) {
  if (!ring_->IsAlive(querier)) {
    return Status::InvalidArgument("querier is not an alive peer");
  }
  CostScope scope(ring_->network().counters());

  std::vector<double> pooled;
  std::unordered_set<NodeAddr> seen;
  double count_sum = 0.0;
  for (size_t i = 0; i < options_.num_peers; ++i) {
    Result<NodeAddr> owner = ring_->Lookup(querier, RingId(rng_.NextU64()));
    if (!owner.ok()) continue;
    Node* node = ring_->GetNode(*owner);
    if (node == nullptr || !node->alive()) continue;
    if (!seen.insert(*owner).second) continue;  // repeat peer: no new info
    count_sum += static_cast<double>(node->item_count());
    // Fetch up to items_per_peer random local items: request + response.
    const size_t take =
        std::min<size_t>(options_.items_per_peer, node->item_count());
    for (size_t j = 0; j < take; ++j) {
      pooled.push_back(node->keys()[rng_.UniformU64(node->item_count())]);
    }
    ring_->network().Send(querier, *owner, 16, /*hop_count=*/1);
    ring_->network().Send(*owner, querier, 8 * take + 8, /*hop_count=*/0);
  }
  if (pooled.size() < 2) {
    return Status::Unavailable("too few items collected");
  }

  Result<PiecewiseLinearCdf> cdf = PiecewiseLinearCdf::FromSamples(pooled);
  if (!cdf.ok()) return cdf.status();

  DensityEstimate est;
  est.cdf = std::move(*cdf);
  // Scale the per-peer mean count by the membership size. Knowing n is a
  // concession every baseline gets for free; the DDE estimator does not
  // need it.
  est.estimated_total_items =
      seen.empty() ? 0.0
                   : count_sum / static_cast<double>(seen.size()) *
                         static_cast<double>(ring_->AliveCount());
  est.peers_probed = seen.size();
  est.cost = scope.Delta();
  est.produced_at = ring_->network().Now();
  return est;
}

}  // namespace ringdde
