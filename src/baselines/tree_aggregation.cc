#include "baselines/tree_aggregation.h"

#include <unordered_set>
#include <vector>

namespace ringdde {

namespace {
constexpr int kMaxDepth = 80;
}  // namespace

TreeAggregator::TreeAggregator(ChordRing* ring,
                               TreeAggregationOptions options)
    : ring_(ring), options_(options) {}

Result<DensityEstimate> TreeAggregator::Estimate(NodeAddr querier) {
  if (!ring_->IsAlive(querier)) {
    return Status::InvalidArgument("querier is not an alive peer");
  }
  CostScope scope(ring_->network().counters());
  peers_reached_ = 0;
  visited_.clear();

  EquiWidthHistogram sink(0.0, 1.0, options_.bins);
  const Node* root = ring_->GetNode(querier);
  // The querier covers the full ring: (own id, own id] wraps all the way
  // around, so every alive peer falls in exactly one delegated sub-arc.
  Aggregate(querier, root->id(), root->id(), &sink, 0);

  Result<PiecewiseLinearCdf> cdf = sink.ToCdf();
  if (!cdf.ok()) return cdf.status();

  DensityEstimate est;
  est.cdf = std::move(*cdf);
  est.estimated_total_items = sink.TotalMass();
  est.peers_probed = peers_reached_;
  est.cost = scope.Delta();
  est.produced_at = ring_->network().Now();
  return est;
}

void TreeAggregator::Aggregate(NodeAddr coordinator, RingId after,
                               RingId until, EquiWidthHistogram* sink,
                               int depth) {
  (void)after;
  if (depth > kMaxDepth) return;
  Node* node = ring_->GetNode(coordinator);
  if (node == nullptr || !node->alive()) return;
  // Stale finger tables after churn can hand overlapping sub-arcs to two
  // children; a real protocol dedupes by query id, we dedupe by visit.
  if (!visited_.insert(coordinator).second) return;
  ++peers_reached_;
  // The coordinator contributes its own data...
  sink->AddAll(node->keys());

  // ...and delegates disjoint sub-arcs of (self, until) to its fingers, in
  // ascending clockwise order; each child covers up to the next child.
  // On the root call until == self, so InArcOpenOpen spans the full ring.
  std::vector<NodeEntry> children;
  std::unordered_set<NodeAddr> dedup;
  for (int k = 0; k < FingerTable::kBits; ++k) {
    const auto& f = node->fingers().Get(k);
    if (!f.has_value() || f->addr == coordinator) continue;
    if (!InArcOpenOpen(f->id, node->id(), until)) continue;
    if (!ring_->IsAlive(f->addr)) continue;
    if (dedup.insert(f->addr).second) children.push_back(*f);
  }
  for (size_t i = 0; i < children.size(); ++i) {
    const RingId bound =
        i + 1 < children.size() ? children[i + 1].id : until;
    // Request down, aggregated histogram back up.
    ring_->network().Send(coordinator, children[i].addr, 24,
                          /*hop_count=*/1);
    Aggregate(children[i].addr, children[i].id, bound, sink, depth + 1);
    ring_->network().Send(children[i].addr, coordinator,
                          8 * options_.bins + 8, /*hop_count=*/0);
  }
}

}  // namespace ringdde
