#ifndef RINGDDE_BASELINES_RANDOM_WALK_SAMPLER_H_
#define RINGDDE_BASELINES_RANDOM_WALK_SAMPLER_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/density_estimator.h"
#include "ring/chord_ring.h"

namespace ringdde {

/// Baseline B2: Metropolis–Hastings random-walk item sampling.
///
/// The classical *unbiased* alternative: an MH walk over the overlay graph
/// (successors + fingers, degree-corrected) mixes to the uniform
/// distribution over peers; load-proportional rejection then turns uniform
/// peers into (near-)uniform items. Statistically sound for any skew, but
/// each accepted item costs a whole walk — the cost gap against DDE is the
/// point of E4.
struct RandomWalkSamplerOptions {
  /// Items to collect.
  size_t num_samples = 512;

  /// MH steps per walk; O(log n)-ish multiples govern mixing quality.
  size_t walk_length = 24;

  /// Cap on load-rejection retries per sample (each retry is a fresh walk).
  size_t max_rejections = 16;

  uint64_t seed = 123;
};

class RandomWalkSampler {
 public:
  RandomWalkSampler(ChordRing* ring, RandomWalkSamplerOptions options = {});

  Result<DensityEstimate> Estimate(NodeAddr querier);

 private:
  /// One MH walk from `start`; returns the endpoint. Charges 2 messages per
  /// step (degree query + move).
  NodeAddr Walk(NodeAddr start);

  /// Alive overlay neighbors (successors + distinct fingers).
  std::vector<NodeAddr> NeighborsOf(NodeAddr addr) const;

  ChordRing* ring_;
  RandomWalkSamplerOptions options_;
  Rng rng_;
};

}  // namespace ringdde

#endif  // RINGDDE_BASELINES_RANDOM_WALK_SAMPLER_H_
