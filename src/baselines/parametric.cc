#include "baselines/parametric.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/math_util.h"

namespace ringdde {

PiecewiseLinearCdf ParametricEstimate::ToPiecewiseCdf() const {
  std::vector<PiecewiseLinearCdf::Knot> knots;
  constexpr int kKnots = 257;
  knots.reserve(kKnots);
  for (int i = 0; i < kKnots; ++i) {
    const double x = static_cast<double>(i) / (kKnots - 1);
    knots.push_back({x, fitted->Cdf(x)});
  }
  PiecewiseLinearCdf::MakeMonotone(knots);
  knots.front().f = 0.0;
  knots.back().f = 1.0;
  Result<PiecewiseLinearCdf> cdf = PiecewiseLinearCdf::FromKnots(knots);
  return cdf.ok() ? std::move(*cdf) : PiecewiseLinearCdf();
}

ParametricFitEstimator::ParametricFitEstimator(ChordRing* ring,
                                               ParametricFitOptions options)
    : ring_(ring), options_(options), rng_(options.seed) {}

Result<ParametricEstimate> ParametricFitEstimator::Estimate(
    NodeAddr querier) {
  if (!ring_->IsAlive(querier)) {
    return Status::InvalidArgument("querier is not an alive peer");
  }
  CostScope scope(ring_->network().counters());

  // Hansen–Hurwitz weighting: random-id lookups select a peer with
  // probability proportional to its arc, so each peer's EXACT local moment
  // summary (count, Σx, Σx²) is scaled by 1/arc before combining. The
  // ratio estimates of mean and variance are then unbiased; the remaining
  // failure mode of this baseline is the model assumption itself, not the
  // sampling.
  std::unordered_set<NodeAddr> seen;
  double count_sum = 0.0;
  KahanSum wn, wx, wxx;
  for (size_t i = 0; i < options_.num_peers; ++i) {
    Result<NodeAddr> owner = ring_->Lookup(querier, RingId(rng_.NextU64()));
    if (!owner.ok()) continue;
    Node* node = ring_->GetNode(*owner);
    if (node == nullptr || !node->alive()) continue;
    if (!seen.insert(*owner).second) continue;
    count_sum += static_cast<double>(node->item_count());
    const double arc = node->OwnedArcFraction();
    if (arc > 0.0) {
      const double inv = 1.0 / arc;
      KahanSum sx, sxx;
      for (double x : node->keys()) {
        sx.Add(x);
        sxx.Add(x * x);
      }
      wn.Add(inv * static_cast<double>(node->item_count()));
      wx.Add(inv * sx.value());
      wxx.Add(inv * sxx.value());
    }
    ring_->network().Send(querier, *owner, 16, /*hop_count=*/1);
    ring_->network().Send(*owner, querier, 24, /*hop_count=*/0);
  }
  if (seen.size() < 2 || wn.value() <= 0.0) {
    return Status::Unavailable("too few moment summaries for the fit");
  }

  // Weighted method of moments for Normal(mu, sigma); floor sigma so a
  // degenerate sample still yields a proper model.
  const double mu = wx.value() / wn.value();
  const double var = std::max(wxx.value() / wn.value() - mu * mu, 0.0);
  const double sigma = std::max(std::sqrt(var), 1e-4);

  ParametricEstimate est;
  est.fitted = std::make_unique<TruncatedNormalDistribution>(mu, sigma);
  est.estimated_total_items =
      seen.empty() ? 0.0
                   : count_sum / static_cast<double>(seen.size()) *
                         static_cast<double>(ring_->AliveCount());
  est.peers_probed = seen.size();
  est.cost = scope.Delta();
  return est;
}

}  // namespace ringdde
