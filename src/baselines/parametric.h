#ifndef RINGDDE_BASELINES_PARAMETRIC_H_
#define RINGDDE_BASELINES_PARAMETRIC_H_

#include <memory>

#include "common/status.h"
#include "core/density_estimator.h"
#include "data/distribution.h"
#include "ring/chord_ring.h"

namespace ringdde {

/// Baseline B5: parametric moment fitting.
///
/// Assume a model family (truncated normal here), collect exact local
/// moment summaries (count, Σx, Σx²; 24 bytes) from a few random peers,
/// combine them Hansen–Hurwitz-weighted (peers are hit proportionally to
/// arc, so each summary is scaled by 1/arc), and read the CDF off the
/// fitted model. Very cheap and very accurate when the model assumption
/// holds — and arbitrarily wrong when it does not, which is the motivating
/// contrast for the paper's "regardless of distribution models of the
/// underlying data" claim (E1: compare its Normal row to its Zipf row).
struct ParametricFitOptions {
  size_t num_peers = 16;
  uint64_t seed = 314;
};

struct ParametricEstimate {
  /// The fitted model.
  std::unique_ptr<Distribution> fitted;
  double estimated_total_items = 0.0;
  size_t peers_probed = 0;
  CostCounters cost;

  /// Fitted CDF sampled onto a piecewise-linear form, for uniform
  /// comparison with the other estimators (257 knots).
  PiecewiseLinearCdf ToPiecewiseCdf() const;
};

class ParametricFitEstimator {
 public:
  ParametricFitEstimator(ChordRing* ring, ParametricFitOptions options = {});

  Result<ParametricEstimate> Estimate(NodeAddr querier);

 private:
  ChordRing* ring_;
  ParametricFitOptions options_;
  Rng rng_;
};

}  // namespace ringdde

#endif  // RINGDDE_BASELINES_PARAMETRIC_H_
