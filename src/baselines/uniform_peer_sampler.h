#ifndef RINGDDE_BASELINES_UNIFORM_PEER_SAMPLER_H_
#define RINGDDE_BASELINES_UNIFORM_PEER_SAMPLER_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/density_estimator.h"
#include "ring/chord_ring.h"

namespace ringdde {

/// Baseline B1: naive peer-sampling item collector.
///
/// The straightforward approach the paper's model improves on: look up k
/// random ring ids, and from each owner pull a fixed number of random local
/// items; the pooled items' empirical CDF is the estimate. It is biased
/// twice over — random-id lookups hit peers proportionally to arc length,
/// and taking the same number of items from every peer under-weights
/// heavily loaded peers — and the bias grows with data skew (measured in
/// E3).
struct UniformPeerSamplerOptions {
  size_t num_peers = 64;
  size_t items_per_peer = 16;
  uint64_t seed = 99;
};

class UniformPeerSampler {
 public:
  UniformPeerSampler(ChordRing* ring, UniformPeerSamplerOptions options = {});

  /// Collects the pooled item sample and returns its ECDF-based estimate.
  Result<DensityEstimate> Estimate(NodeAddr querier);

 private:
  ChordRing* ring_;
  UniformPeerSamplerOptions options_;
  Rng rng_;
};

}  // namespace ringdde

#endif  // RINGDDE_BASELINES_UNIFORM_PEER_SAMPLER_H_
