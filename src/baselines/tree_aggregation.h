#ifndef RINGDDE_BASELINES_TREE_AGGREGATION_H_
#define RINGDDE_BASELINES_TREE_AGGREGATION_H_

#include <unordered_set>

#include "common/status.h"
#include "core/density_estimator.h"
#include "ring/chord_ring.h"
#include "stats/histogram.h"

namespace ringdde {

/// Baseline B4: exact histogram via finger-tree convergecast.
///
/// Chord's broadcast trick run in reverse: the querier partitions the ring
/// among its fingers, each finger recursively aggregates its sub-arc, and
/// equi-width histograms merge on the way back. Touches every alive peer —
/// ~2(n-1) messages — and returns the *exact* global histogram (up to bin
/// resolution and churn-induced subtree loss). The "spare no expense"
/// upper-accuracy anchor in E1/E4.
struct TreeAggregationOptions {
  size_t bins = 64;
};

class TreeAggregator {
 public:
  TreeAggregator(ChordRing* ring, TreeAggregationOptions options = {});

  Result<DensityEstimate> Estimate(NodeAddr querier);

  /// Peers reached by the last Estimate() call.
  size_t peers_reached() const { return peers_reached_; }

 private:
  /// Recursively aggregates the histogram of every alive peer whose id lies
  /// in (after, until], coordinated by `coordinator`.
  void Aggregate(NodeAddr coordinator, RingId after, RingId until,
                 EquiWidthHistogram* sink, int depth);

  ChordRing* ring_;
  TreeAggregationOptions options_;
  size_t peers_reached_ = 0;
  std::unordered_set<NodeAddr> visited_;
};

}  // namespace ringdde

#endif  // RINGDDE_BASELINES_TREE_AGGREGATION_H_
