#include "stats/ecdf.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ringdde {

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples)
    : sorted_(std::move(samples)) {
  assert(!sorted_.empty());
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::Evaluate(double x) const {
  auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double EmpiricalCdf::Quantile(double p) const {
  if (p <= 0.0) return sorted_.front();
  if (p >= 1.0) return sorted_.back();
  const double target = p * static_cast<double>(sorted_.size());
  size_t idx = static_cast<size_t>(std::ceil(target));
  if (idx == 0) idx = 1;
  if (idx > sorted_.size()) idx = sorted_.size();
  return sorted_[idx - 1];
}

Result<PiecewiseLinearCdf> EmpiricalCdf::ToPiecewiseLinear() const {
  return PiecewiseLinearCdf::FromSamples(sorted_);
}

}  // namespace ringdde
