#ifndef RINGDDE_STATS_KDE_H_
#define RINGDDE_STATS_KDE_H_

#include <vector>

#include "common/status.h"

namespace ringdde {

/// Smoothing kernel for density estimation.
enum class KernelType {
  kGaussian,
  kEpanechnikov,
};

/// Classic kernel density estimator over a one-dimensional sample.
///
/// Used as the smoothing stage of the density pipeline: the inversion
/// sampler produces (pseudo-)samples from the estimated global CDF, and a
/// KDE over them gives a smooth density for presentation and for pdf-based
/// accuracy metrics. Evaluation is O(n) per query — fine for the sample
/// sizes the estimators use (hundreds to a few thousand points).
class KernelDensityEstimator {
 public:
  /// `bandwidth` <= 0 selects Silverman's rule of thumb.
  /// Requires a non-empty sample.
  static Result<KernelDensityEstimator> Build(
      std::vector<double> samples, KernelType kernel = KernelType::kGaussian,
      double bandwidth = 0.0);

  /// Density estimate at x.
  double Pdf(double x) const;

  /// Smoothed CDF at x (sum of per-sample kernel CDFs).
  double Cdf(double x) const;

  double bandwidth() const { return bandwidth_; }
  KernelType kernel() const { return kernel_; }
  size_t sample_size() const { return samples_.size(); }

  /// Silverman's rule: 0.9 * min(stddev, IQR/1.34) * n^(-1/5), floored at a
  /// tiny positive value so degenerate samples still yield a valid KDE.
  static double SilvermanBandwidth(const std::vector<double>& samples);

 private:
  KernelDensityEstimator(std::vector<double> samples, KernelType kernel,
                         double bandwidth)
      : samples_(std::move(samples)),
        kernel_(kernel),
        bandwidth_(bandwidth) {}

  std::vector<double> samples_;
  KernelType kernel_;
  double bandwidth_;
};

}  // namespace ringdde

#endif  // RINGDDE_STATS_KDE_H_
