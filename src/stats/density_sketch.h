#ifndef RINGDDE_STATS_DENSITY_SKETCH_H_
#define RINGDDE_STATS_DENSITY_SKETCH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/codec.h"
#include "common/status.h"
#include "stats/piecewise_cdf.h"

namespace ringdde {

/// Mergeable fixed-size density summary: a K-level quantile grid.
///
/// A sketch over n values stores K+1 knots where knots[i] approximates the
/// i/K quantile of the summarized data (knots[0] = min, knots[K] = max),
/// plus the exact count. The encoded size is a fixed byte budget chosen by
/// K alone — it does NOT grow with n, unlike the exact quantile arrays in
/// LocalSummary or the data-dependent tuple list in GkSketch. That fixed
/// size is what makes hierarchical aggregation pay O(log n) hops of
/// CONSTANT-size messages (see core/sketch_aggregation.h).
///
/// Merge is the weighted CDF mixture: given sketches A (count na) and B
/// (count nb), the merged CDF is G(x) = (na·A(x) + nb·B(x)) / (na + nb)
/// evaluated exactly on the union of both knot sets (where G is piecewise
/// linear), then re-compacted to K+1 knots by inverting G at i/K. The
/// compaction is deterministic and the mixture arithmetic is symmetric, so
/// Merge is bitwise COMMUTATIVE; associativity holds within the error
/// bound (each compaction re-grids, losing up to 1/K of rank resolution).
///
/// Error contract (the accuracy-per-byte contract DESIGN.md documents):
/// after d levels of merging, any rank query is within
/// (d + 1)/K · N of truth — so a K=128 sketch merged up a depth-12 finger
/// tree still answers within ~10% rank error for ~2 KB per message.
class DensitySketch {
 public:
  /// An empty sketch with the given grid resolution. `levels` >= 2.
  explicit DensitySketch(uint32_t levels = 64);

  /// Builds a depth-0 sketch from an ascending-sorted value array using
  /// the same order-statistic interpolation as Node::LocalQuantile, so a
  /// peer's sketch knots are bit-identical to its exact quantile replies.
  static DensitySketch FromSorted(const std::vector<double>& sorted,
                                  uint32_t levels);

  /// Builds a depth-0 sketch directly from precomputed quantile knots
  /// (knots[i] = quantile at i/levels; size must be levels+1, ascending)
  /// and the count they summarize. This is how ring peers build sketches
  /// without copying their key arrays.
  static Result<DensitySketch> FromQuantileKnots(uint64_t count,
                                                 std::vector<double> knots);

  /// Merges `other` into this sketch (weighted CDF mixture + deterministic
  /// re-compaction). Requires identical `levels()`; merging an empty
  /// sketch is the identity. Commutative to the bit; associative within
  /// the error bound.
  Status Merge(const DensitySketch& other);

  /// Value at cumulative fraction p (clamped to [0,1]). 0 on empty.
  double Quantile(double p) const;

  /// Approximate rank of x: count of summarized values <= x.
  uint64_t RankOf(double x) const;

  /// Approximate CDF at x, in [0,1]. Right-continuous at knot atoms.
  double CdfAt(double x) const;

  /// The sketch's CDF as a reconstruction-ready piecewise-linear curve.
  /// InvalidArgument on an empty sketch.
  Result<PiecewiseLinearCdf> ToCdf() const;

  /// Worst-case rank-error fraction: (merge_depth + 1) / levels, capped
  /// at 1. Depth-0 sketches built from exact order statistics already
  /// carry up to 1/levels of grid rounding.
  double ErrorBound() const;

  uint32_t levels() const { return levels_; }
  uint64_t count() const { return count_; }
  uint32_t merge_depth() const { return merge_depth_; }
  bool empty() const { return count_ == 0; }
  const std::vector<double>& knots() const { return knots_; }

  /// Appends the serialized sketch; EncodedBytes() is exactly the number
  /// of bytes this appends (tests pin the identity).
  void EncodeTo(Encoder* enc) const;
  uint64_t EncodedBytes() const;

  /// Decodes a sketch previously written by EncodeTo. Validates grid
  /// shape, knot monotonicity, and finiteness.
  static Result<DensitySketch> DecodeFrom(Decoder* dec);

  bool operator==(const DensitySketch& other) const {
    return levels_ == other.levels_ && count_ == other.count_ &&
           merge_depth_ == other.merge_depth_ && knots_ == other.knots_;
  }

 private:
  uint32_t levels_;
  uint64_t count_ = 0;
  uint32_t merge_depth_ = 0;
  std::vector<double> knots_;  // empty, or exactly levels_+1 ascending
};

}  // namespace ringdde

#endif  // RINGDDE_STATS_DENSITY_SKETCH_H_
