#ifndef RINGDDE_STATS_ECDF_H_
#define RINGDDE_STATS_ECDF_H_

#include <vector>

#include "common/status.h"
#include "stats/piecewise_cdf.h"

namespace ringdde {

/// Classical step-function empirical CDF of a sample.
class EmpiricalCdf {
 public:
  /// Takes ownership of the samples (sorted on construction).
  /// Must be non-empty.
  explicit EmpiricalCdf(std::vector<double> samples);

  /// Fraction of samples <= x (right-continuous step function).
  double Evaluate(double x) const;

  /// p-quantile: the smallest sample x with F(x) >= p.
  double Quantile(double p) const;

  size_t size() const { return sorted_.size(); }
  const std::vector<double>& sorted_samples() const { return sorted_; }

  /// Linearly interpolated version (needs >= 2 samples).
  Result<PiecewiseLinearCdf> ToPiecewiseLinear() const;

 private:
  std::vector<double> sorted_;
};

}  // namespace ringdde

#endif  // RINGDDE_STATS_ECDF_H_
