#include "stats/gk_sketch.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ringdde {

GkSketch::GkSketch(double epsilon) : epsilon_(epsilon) {
  assert(epsilon > 0.0 && epsilon < 0.5);
}

void GkSketch::Add(double x) {
  // Find insertion point: first tuple with value >= x.
  auto it = std::lower_bound(
      tuples_.begin(), tuples_.end(), x,
      [](const Tuple& t, double v) { return t.value < v; });

  uint64_t delta = 0;
  if (it != tuples_.begin() && it != tuples_.end()) {
    // Interior insert: delta = floor(2 eps n) - 1 per the GK paper.
    const double cap = 2.0 * epsilon_ * static_cast<double>(count_);
    delta = cap >= 1.0 ? static_cast<uint64_t>(cap) - 1 : 0;
  }
  tuples_.insert(it, Tuple{x, 1, delta});
  ++count_;

  // Compress every 1/(2 eps) inserts, the standard schedule.
  if (++since_compress_ >= static_cast<uint64_t>(1.0 / (2.0 * epsilon_))) {
    Compress();
    since_compress_ = 0;
  }
}

void GkSketch::AddAll(const std::vector<double>& xs) {
  for (double x : xs) Add(x);
}

void GkSketch::Compress() {
  if (tuples_.size() < 3) return;
  const double threshold = 2.0 * epsilon_ * static_cast<double>(count_);
  std::vector<Tuple> out;
  out.reserve(tuples_.size());
  out.push_back(tuples_.front());
  // Merge tuple i into its successor when the combined uncertainty stays
  // under the 2 eps n band. The last tuple is always kept (max value).
  for (size_t i = 1; i + 1 < tuples_.size(); ++i) {
    const Tuple& cur = tuples_[i];
    const Tuple& next = tuples_[i + 1];
    if (static_cast<double>(cur.g + next.g + next.delta) < threshold) {
      // Fold cur's gap into next (mutating our working copy).
      tuples_[i + 1].g += cur.g;
    } else {
      out.push_back(cur);
    }
  }
  out.push_back(tuples_.back());
  tuples_ = std::move(out);
}

double GkSketch::Quantile(double p) const {
  if (tuples_.empty()) return 0.0;
  p = std::min(std::max(p, 0.0), 1.0);
  const double target = p * static_cast<double>(count_);
  const double slack = epsilon_ * static_cast<double>(count_);
  uint64_t rmin = 0;
  for (const Tuple& t : tuples_) {
    rmin += t.g;
    const double rmax = static_cast<double>(rmin + t.delta);
    if (rmax >= target - slack &&
        static_cast<double>(rmin) <= target + slack) {
      return t.value;
    }
    if (static_cast<double>(rmin) > target + slack) return t.value;
  }
  return tuples_.back().value;
}

double GkSketch::CdfAt(double x) const {
  if (count_ == 0) return 0.0;
  return static_cast<double>(RankOf(x)) / static_cast<double>(count_);
}

void GkSketch::Merge(const GkSketch& other) {
  if (other.count_ == 0) {
    epsilon_ = std::max(epsilon_, other.epsilon_);
    return;
  }
  if (count_ == 0) {
    epsilon_ = std::max(epsilon_, other.epsilon_);
    tuples_ = other.tuples_;
    count_ = other.count_;
    since_compress_ = 0;
    Compress();
    return;
  }

  // Interleave by value. A tuple taken from one sketch inherits extra rank
  // uncertainty from the next-not-yet-consumed tuple of the OTHER sketch:
  // delta' = delta + (next.g + next.delta − 1). This is the standard
  // mergeable-summaries combine for GK and keeps every tuple's rank band
  // within εa·Na + εb·Nb of truth.
  std::vector<Tuple> merged;
  merged.reserve(tuples_.size() + other.tuples_.size());
  size_t ia = 0, ib = 0;
  while (ia < tuples_.size() || ib < other.tuples_.size()) {
    const bool take_a =
        ib >= other.tuples_.size() ||
        (ia < tuples_.size() && tuples_[ia].value <= other.tuples_[ib].value);
    Tuple t = take_a ? tuples_[ia] : other.tuples_[ib];
    const std::vector<Tuple>& opposite = take_a ? other.tuples_ : tuples_;
    const size_t inext = take_a ? ib : ia;
    if (inext < opposite.size()) {
      // g >= 1 for every stored tuple, so the subtraction cannot wrap.
      t.delta += opposite[inext].g + opposite[inext].delta - 1;
    }
    merged.push_back(t);
    if (take_a) {
      ++ia;
    } else {
      ++ib;
    }
  }

  tuples_ = std::move(merged);
  count_ += other.count_;
  epsilon_ = std::max(epsilon_, other.epsilon_);
  since_compress_ = 0;
  Compress();
}

void GkSketch::EncodeTo(Encoder* enc) const {
  enc->PutDouble(epsilon_);
  enc->PutVarint64(count_);
  enc->PutVarint64(tuples_.size());
  for (const Tuple& t : tuples_) {
    enc->PutDouble(t.value);
    enc->PutVarint64(t.g);
    enc->PutVarint64(t.delta);
  }
}

uint64_t GkSketch::EncodedBytes() const {
  uint64_t bytes = 8 + VarintLength(count_) + VarintLength(tuples_.size());
  for (const Tuple& t : tuples_) {
    bytes += 8 + VarintLength(t.g) + VarintLength(t.delta);
  }
  return bytes;
}

Result<GkSketch> GkSketch::DecodeFrom(Decoder* dec) {
  double epsilon = 0.0;
  uint64_t count = 0, ntuples = 0;
  Status s = dec->GetDouble(&epsilon);
  if (s.ok()) s = dec->GetVarint64(&count);
  if (s.ok()) s = dec->GetVarint64(&ntuples);
  if (!s.ok()) return s;
  if (!(epsilon > 0.0 && epsilon < 0.5)) {
    return Status::InvalidArgument("gk sketch epsilon out of range");
  }
  if (ntuples > count) {
    return Status::InvalidArgument("gk sketch has more tuples than items");
  }
  GkSketch out(epsilon);
  out.count_ = count;
  out.tuples_.resize(ntuples);
  uint64_t gsum = 0;
  for (uint64_t i = 0; i < ntuples; ++i) {
    Tuple& t = out.tuples_[i];
    s = dec->GetDouble(&t.value);
    if (s.ok()) s = dec->GetVarint64(&t.g);
    if (s.ok()) s = dec->GetVarint64(&t.delta);
    if (!s.ok()) return s;
    if (!std::isfinite(t.value) || t.g == 0) {
      return Status::InvalidArgument("gk sketch tuple invalid");
    }
    if (i > 0 && t.value < out.tuples_[i - 1].value) {
      return Status::InvalidArgument("gk sketch tuples must be ascending");
    }
    gsum += t.g;
  }
  if (gsum != count) {
    return Status::InvalidArgument("gk sketch gap sum != count");
  }
  return out;
}

uint64_t GkSketch::RankOf(double x) const {
  // Midpoint of the [rmin, rmax] band of the last tuple with value <= x.
  uint64_t rmin = 0;
  uint64_t best = 0;
  bool found = false;
  for (const Tuple& t : tuples_) {
    rmin += t.g;
    if (t.value <= x) {
      best = rmin + t.delta / 2;
      found = true;
    } else {
      break;
    }
  }
  return found ? best : 0;
}

}  // namespace ringdde
