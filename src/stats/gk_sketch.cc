#include "stats/gk_sketch.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ringdde {

GkSketch::GkSketch(double epsilon) : epsilon_(epsilon) {
  assert(epsilon > 0.0 && epsilon < 0.5);
}

void GkSketch::Add(double x) {
  // Find insertion point: first tuple with value >= x.
  auto it = std::lower_bound(
      tuples_.begin(), tuples_.end(), x,
      [](const Tuple& t, double v) { return t.value < v; });

  uint64_t delta = 0;
  if (it != tuples_.begin() && it != tuples_.end()) {
    // Interior insert: delta = floor(2 eps n) - 1 per the GK paper.
    const double cap = 2.0 * epsilon_ * static_cast<double>(count_);
    delta = cap >= 1.0 ? static_cast<uint64_t>(cap) - 1 : 0;
  }
  tuples_.insert(it, Tuple{x, 1, delta});
  ++count_;

  // Compress every 1/(2 eps) inserts, the standard schedule.
  if (++since_compress_ >= static_cast<uint64_t>(1.0 / (2.0 * epsilon_))) {
    Compress();
    since_compress_ = 0;
  }
}

void GkSketch::AddAll(const std::vector<double>& xs) {
  for (double x : xs) Add(x);
}

void GkSketch::Compress() {
  if (tuples_.size() < 3) return;
  const double threshold = 2.0 * epsilon_ * static_cast<double>(count_);
  std::vector<Tuple> out;
  out.reserve(tuples_.size());
  out.push_back(tuples_.front());
  // Merge tuple i into its successor when the combined uncertainty stays
  // under the 2 eps n band. The last tuple is always kept (max value).
  for (size_t i = 1; i + 1 < tuples_.size(); ++i) {
    const Tuple& cur = tuples_[i];
    const Tuple& next = tuples_[i + 1];
    if (static_cast<double>(cur.g + next.g + next.delta) < threshold) {
      // Fold cur's gap into next (mutating our working copy).
      tuples_[i + 1].g += cur.g;
    } else {
      out.push_back(cur);
    }
  }
  out.push_back(tuples_.back());
  tuples_ = std::move(out);
}

double GkSketch::Quantile(double p) const {
  if (tuples_.empty()) return 0.0;
  p = std::min(std::max(p, 0.0), 1.0);
  const double target = p * static_cast<double>(count_);
  const double slack = epsilon_ * static_cast<double>(count_);
  uint64_t rmin = 0;
  for (const Tuple& t : tuples_) {
    rmin += t.g;
    const double rmax = static_cast<double>(rmin + t.delta);
    if (rmax >= target - slack &&
        static_cast<double>(rmin) <= target + slack) {
      return t.value;
    }
    if (static_cast<double>(rmin) > target + slack) return t.value;
  }
  return tuples_.back().value;
}

uint64_t GkSketch::RankOf(double x) const {
  // Midpoint of the [rmin, rmax] band of the last tuple with value <= x.
  uint64_t rmin = 0;
  uint64_t best = 0;
  bool found = false;
  for (const Tuple& t : tuples_) {
    rmin += t.g;
    if (t.value <= x) {
      best = rmin + t.delta / 2;
      found = true;
    } else {
      break;
    }
  }
  return found ? best : 0;
}

}  // namespace ringdde
