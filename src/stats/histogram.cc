#include "stats/histogram.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/math_util.h"

namespace ringdde {

EquiWidthHistogram::EquiWidthHistogram(double lo, double hi, size_t bins)
    : lo_(lo), hi_(hi), mass_(bins, 0.0) {
  assert(lo < hi);
  assert(bins >= 1);
}

size_t EquiWidthHistogram::BinOf(double x) const {
  if (x <= lo_) return 0;
  if (x >= hi_) return mass_.size() - 1;
  const double t = (x - lo_) / (hi_ - lo_);
  return std::min(static_cast<size_t>(t * static_cast<double>(mass_.size())),
                  mass_.size() - 1);
}

void EquiWidthHistogram::Add(double x, double weight) {
  mass_[BinOf(x)] += weight;
}

void EquiWidthHistogram::AddAll(const std::vector<double>& xs) {
  for (double x : xs) Add(x);
}

Status EquiWidthHistogram::Merge(const EquiWidthHistogram& other) {
  if (other.lo_ != lo_ || other.hi_ != hi_ ||
      other.mass_.size() != mass_.size()) {
    return Status::InvalidArgument("histogram geometries differ");
  }
  for (size_t i = 0; i < mass_.size(); ++i) mass_[i] += other.mass_[i];
  return Status::OK();
}

void EquiWidthHistogram::Scale(double factor) {
  for (double& m : mass_) m *= factor;
}

double EquiWidthHistogram::TotalMass() const { return SumPrecise(mass_); }

double EquiWidthHistogram::PdfAt(double x) const {
  if (x < lo_ || x > hi_) return 0.0;
  const double total = TotalMass();
  if (total <= 0.0) return 0.0;
  return mass_[BinOf(x)] / (total * bin_width());
}

double EquiWidthHistogram::CdfAt(double x) const {
  if (x <= lo_) return 0.0;
  if (x >= hi_) return 1.0;
  const double total = TotalMass();
  if (total <= 0.0) return 0.0;
  const size_t bin = BinOf(x);
  double below = 0.0;
  for (size_t i = 0; i < bin; ++i) below += mass_[i];
  const double bin_lo = lo_ + static_cast<double>(bin) * bin_width();
  const double frac = (x - bin_lo) / bin_width();
  return (below + frac * mass_[bin]) / total;
}

Result<PiecewiseLinearCdf> EquiWidthHistogram::ToCdf() const {
  const double total = TotalMass();
  if (total <= 0.0) {
    return Status::FailedPrecondition("empty histogram has no CDF");
  }
  std::vector<PiecewiseLinearCdf::Knot> knots;
  knots.reserve(mass_.size() + 1);
  knots.push_back({lo_, 0.0});
  double run = 0.0;
  for (size_t i = 0; i < mass_.size(); ++i) {
    run += mass_[i];
    knots.push_back({lo_ + static_cast<double>(i + 1) * bin_width(),
                     Clamp(run / total, 0.0, 1.0)});
  }
  knots.back().f = 1.0;
  return PiecewiseLinearCdf::FromKnots(std::move(knots));
}

Result<EquiDepthHistogram> EquiDepthHistogram::Build(
    std::vector<double> samples, size_t buckets) {
  if (samples.empty()) {
    return Status::InvalidArgument("cannot build from empty sample");
  }
  if (buckets < 1) return Status::InvalidArgument("need >= 1 bucket");
  std::sort(samples.begin(), samples.end());
  std::vector<double> bounds;
  bounds.reserve(buckets + 1);
  const double n1 = static_cast<double>(samples.size() - 1);
  for (size_t b = 0; b <= buckets; ++b) {
    const double h = n1 * static_cast<double>(b) / static_cast<double>(buckets);
    const size_t lo = static_cast<size_t>(h);
    const size_t hi = std::min(lo + 1, samples.size() - 1);
    bounds.push_back(
        Lerp(samples[lo], samples[hi], h - static_cast<double>(lo)));
  }
  // Equal boundary values (heavy duplicates) would break the
  // uniform-within-bucket interpolation; nudge them apart minimally.
  for (size_t i = 1; i < bounds.size(); ++i) {
    if (bounds[i] <= bounds[i - 1]) {
      bounds[i] = std::nextafter(bounds[i - 1], 1e300);
    }
  }
  return EquiDepthHistogram(std::move(bounds));
}

double EquiDepthHistogram::CdfAt(double x) const {
  if (x <= boundaries_.front()) return 0.0;
  if (x >= boundaries_.back()) return 1.0;
  auto it = std::upper_bound(boundaries_.begin(), boundaries_.end(), x);
  const size_t b = static_cast<size_t>(it - boundaries_.begin()) - 1;
  const double lo = boundaries_[b];
  const double hi = boundaries_[b + 1];
  const double within = (x - lo) / (hi - lo);
  const double per_bucket = 1.0 / static_cast<double>(buckets());
  return (static_cast<double>(b) + within) * per_bucket;
}

double EquiDepthHistogram::EstimateSelectivity(double a, double b) const {
  if (b < a) std::swap(a, b);
  return CdfAt(b) - CdfAt(a);
}

}  // namespace ringdde
