#ifndef RINGDDE_STATS_METRICS_H_
#define RINGDDE_STATS_METRICS_H_

#include <functional>
#include <string>
#include <vector>

#include "data/distribution.h"
#include "stats/piecewise_cdf.h"

namespace ringdde {

/// A real function of one variable, used so metrics accept analytic
/// distributions, estimates, or ad-hoc lambdas interchangeably.
using RealFn = std::function<double(double)>;

/// sup_x |f(x) - g(x)| over `grid` evenly spaced points in [lo, hi] plus the
/// supplied extra evaluation points (pass CDF breakpoints here — the sup of
/// a step/piecewise function against a smooth one is attained at its knots).
double SupDistance(const RealFn& f, const RealFn& g, double lo, double hi,
                   int grid = 2048, const std::vector<double>& extra = {});

/// ∫|f - g| dx over [lo, hi] via the trapezoid rule on `grid` intervals.
double L1Distance(const RealFn& f, const RealFn& g, double lo, double hi,
                  int grid = 2048);

/// sqrt(∫ (f-g)^2 dx) over [lo, hi].
double L2Distance(const RealFn& f, const RealFn& g, double lo, double hi,
                  int grid = 2048);

/// KL(p || q) = ∫ p log(p/q) dx with both densities floored at `floor_eps`
/// to keep the integrand finite where the estimate has zero mass.
double KlDivergence(const RealFn& p, const RealFn& q, double lo, double hi,
                    int grid = 2048, double floor_eps = 1e-9);

/// sup |a - b| between two piecewise-linear CDFs over `grid` evenly spaced
/// points in [lo, hi]. Same evaluation points and arithmetic as SupDistance
/// on wrapped lambdas — the result is bit-identical — but both functions are
/// walked with monotone segment cursors instead of a binary search per
/// point. This is the convergence-movement kernel of the adaptive
/// estimator's stitching loop.
double SupDistanceCdf(const PiecewiseLinearCdf& a, const PiecewiseLinearCdf& b,
                      double lo, double hi, int grid = 2048);

/// The standard accuracy bundle every experiment reports.
struct AccuracyReport {
  double ks = 0.0;      ///< Kolmogorov–Smirnov: sup |F̂ - F|
  double l1_cdf = 0.0;  ///< ∫ |F̂ - F| (a.k.a. Wasserstein-1 distance)
  double l2_cdf = 0.0;  ///< sqrt(∫ (F̂ - F)^2) (Cramér–von Mises flavor)
  double l1_pdf = 0.0;  ///< ∫ |f̂ - f| (total variation ×2)

  std::string ToString() const;
};

/// Compares an estimated CDF against analytic truth over the truth's
/// support. The pdf term uses the estimate's piecewise-constant implied
/// density.
AccuracyReport CompareCdfToTruth(const PiecewiseLinearCdf& estimate,
                                 const Distribution& truth, int grid = 2048);

/// Compares an arbitrary estimated CDF function (and optionally its density)
/// against analytic truth.
AccuracyReport CompareFnToTruth(const RealFn& est_cdf, const RealFn& est_pdf,
                                const Distribution& truth, int grid = 2048);

/// Mean over a vector of reports (for repetition averaging).
AccuracyReport MeanReport(const std::vector<AccuracyReport>& reports);

}  // namespace ringdde

#endif  // RINGDDE_STATS_METRICS_H_
