#ifndef RINGDDE_STATS_PIECEWISE_CDF_H_
#define RINGDDE_STATS_PIECEWISE_CDF_H_

#include <vector>

#include "common/status.h"

namespace ringdde {

/// Monotone piecewise-linear cumulative distribution function.
///
/// This is the library's central representation of an estimated global
/// distribution: probe results are stitched into one of these, accuracy
/// metrics compare it against analytic truth, and the inversion sampler
/// inverts it. Between knots the CDF is linear (so the implied density is
/// piecewise constant); outside the knot range it is clamped to the first /
/// last value.
class PiecewiseLinearCdf {
 public:
  struct Knot {
    double x;  ///< domain position
    double f;  ///< CDF value in [0,1]
  };

  /// Default: the uniform CDF on [0, 1].
  PiecewiseLinearCdf() : knots_{{0.0, 0.0}, {1.0, 1.0}} {}

  /// Builds from knots. Requirements: at least 2 knots, x strictly
  /// increasing, f nondecreasing, all f in [0,1]. Violations yield
  /// InvalidArgument. Callers producing noisy estimates should call
  /// MakeMonotone() on their knot vector first.
  static Result<PiecewiseLinearCdf> FromKnots(std::vector<Knot> knots);

  /// Builds the linearly-interpolated empirical CDF of a sample: knot i at
  /// (x_(i), (i+1)/n) over the sorted distinct values, prepended with
  /// (x_(0), 1/n)'s left anchor so F starts near 0. Requires >= 2 samples.
  static Result<PiecewiseLinearCdf> FromSamples(std::vector<double> samples);

  /// In-place repair for noisy estimates: sorts by x, merges duplicate x
  /// (keeping the max f), clamps f into [0,1], and applies a running max so
  /// f is nondecreasing.
  static void MakeMonotone(std::vector<Knot>& knots);

  /// F(x); clamped to [first.f, last.f] outside the knot span.
  double Evaluate(double x) const;

  /// Quantile: smallest x with F(x) >= p (by linear interpolation).
  /// p below first.f returns the first knot's x; p above last.f the last's.
  double Inverse(double p) const;

  /// Implied density at x: the slope of the segment containing x (0 outside
  /// the knot span, and at exact flat segments).
  double DensityAt(double x) const;

  /// True if the first knot is at F=0 and the last at F=1 (within 1e-9).
  bool IsNormalized() const;

  /// Rescales f linearly so the first knot maps to 0 and the last to 1.
  /// No-op on an already-normalized or degenerate (flat) function.
  void Normalize();

  /// Monotone segment cursor for batch evaluation.
  ///
  /// Callers that evaluate the CDF at an ascending sequence of abscissae
  /// (metric sweeps, range-mass scans, sorted query batches) pay one
  /// binary search per point through Evaluate()/DensityAt(). A Cursor
  /// instead remembers the segment the previous query landed in and only
  /// walks forward, so a whole sorted sweep costs O(grid + knots) segment
  /// advances in total. Results are bit-identical to the scalar methods:
  /// the cursor selects the same segment and applies the same arithmetic.
  ///
  /// Queries must be nondecreasing across *all* calls on one cursor
  /// (Evaluate and DensityAt share the position). The cursor must not
  /// outlive the PiecewiseLinearCdf, and knot mutations invalidate it.
  class Cursor {
   public:
    explicit Cursor(const PiecewiseLinearCdf& cdf) : knots_(&cdf.knots_) {}

    /// F(x); same clamping contract as PiecewiseLinearCdf::Evaluate.
    double Evaluate(double x);

    /// Implied density at x; same contract as
    /// PiecewiseLinearCdf::DensityAt.
    double DensityAt(double x);

   private:
    /// Advances so seg_ indexes the upper knot of the segment that the
    /// scalar methods' upper_bound would select for x (clamped to the
    /// last segment).
    void AdvanceTo(double x) {
      const std::vector<Knot>& k = *knots_;
      while (seg_ + 1 < k.size() && k[seg_].x <= x) ++seg_;
    }

    const std::vector<Knot>* knots_;
    size_t seg_ = 1;  // index of the current segment's upper knot
  };

  /// Batch F(x) over an ascending query vector; element i equals
  /// Evaluate(xs[i]) exactly. Asserts (debug) on unsorted input.
  std::vector<double> EvaluateSorted(const std::vector<double>& xs) const;

  /// Batch DensityAt over an ascending query vector; element i equals
  /// DensityAt(xs[i]) exactly.
  std::vector<double> DensityAtSorted(const std::vector<double>& xs) const;

  /// A compact approximation with at most `max_knots` knots, placed at
  /// evenly spaced probability levels (mass-adaptive: steep regions keep
  /// more x-resolution). Used to cheapen estimate shipping; max error is
  /// ~1/max_knots in CDF value. Requires max_knots >= 2; a function that
  /// already fits is returned unchanged.
  PiecewiseLinearCdf Resampled(size_t max_knots) const;

  double x_min() const { return knots_.front().x; }
  double x_max() const { return knots_.back().x; }
  const std::vector<Knot>& knots() const { return knots_; }

 private:
  explicit PiecewiseLinearCdf(std::vector<Knot> knots)
      : knots_(std::move(knots)) {}

  std::vector<Knot> knots_;
};

}  // namespace ringdde

#endif  // RINGDDE_STATS_PIECEWISE_CDF_H_
