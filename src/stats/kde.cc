#include "stats/kde.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"

namespace ringdde {

namespace {

double GaussianKernelPdf(double u) { return StandardNormalPdf(u); }
double GaussianKernelCdf(double u) { return StandardNormalCdf(u); }

double EpanechnikovKernelPdf(double u) {
  if (u < -1.0 || u > 1.0) return 0.0;
  return 0.75 * (1.0 - u * u);
}

double EpanechnikovKernelCdf(double u) {
  if (u <= -1.0) return 0.0;
  if (u >= 1.0) return 1.0;
  // Integral of 0.75(1-t^2) from -1 to u.
  return 0.25 * (2.0 + 3.0 * u - u * u * u);
}

}  // namespace

double KernelDensityEstimator::SilvermanBandwidth(
    const std::vector<double>& samples) {
  const double sd = Stddev(samples);
  std::vector<double> copy = samples;
  const double q75 = Quantile(copy, 0.75);
  const double q25 = Quantile(copy, 0.25);
  const double iqr = (q75 - q25) / 1.34;
  double spread = sd;
  if (iqr > 0.0) spread = std::min(spread, iqr);
  if (spread <= 0.0) spread = 1e-3;  // degenerate sample
  const double n = static_cast<double>(std::max<size_t>(samples.size(), 1));
  return 0.9 * spread * std::pow(n, -0.2);
}

Result<KernelDensityEstimator> KernelDensityEstimator::Build(
    std::vector<double> samples, KernelType kernel, double bandwidth) {
  if (samples.empty()) {
    return Status::InvalidArgument("KDE needs at least one sample");
  }
  if (bandwidth <= 0.0) bandwidth = SilvermanBandwidth(samples);
  std::sort(samples.begin(), samples.end());
  return KernelDensityEstimator(std::move(samples), kernel, bandwidth);
}

double KernelDensityEstimator::Pdf(double x) const {
  const double h = bandwidth_;
  KahanSum acc;
  if (kernel_ == KernelType::kEpanechnikov) {
    // Compact support: only samples within [x-h, x+h] contribute.
    auto lo = std::lower_bound(samples_.begin(), samples_.end(), x - h);
    auto hi = std::upper_bound(samples_.begin(), samples_.end(), x + h);
    for (auto it = lo; it != hi; ++it) {
      acc.Add(EpanechnikovKernelPdf((x - *it) / h));
    }
  } else {
    for (double s : samples_) acc.Add(GaussianKernelPdf((x - s) / h));
  }
  return acc.value() / (static_cast<double>(samples_.size()) * h);
}

double KernelDensityEstimator::Cdf(double x) const {
  const double h = bandwidth_;
  KahanSum acc;
  if (kernel_ == KernelType::kEpanechnikov) {
    auto hi = std::upper_bound(samples_.begin(), samples_.end(), x + h);
    // Samples entirely below x-h contribute exactly 1 each.
    auto lo = std::lower_bound(samples_.begin(), samples_.end(), x - h);
    acc.Add(static_cast<double>(lo - samples_.begin()));
    for (auto it = lo; it != hi; ++it) {
      acc.Add(EpanechnikovKernelCdf((x - *it) / h));
    }
  } else {
    for (double s : samples_) acc.Add(GaussianKernelCdf((x - s) / h));
  }
  return acc.value() / static_cast<double>(samples_.size());
}

}  // namespace ringdde
