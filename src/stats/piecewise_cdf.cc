#include "stats/piecewise_cdf.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/math_util.h"

namespace ringdde {

Result<PiecewiseLinearCdf> PiecewiseLinearCdf::FromKnots(
    std::vector<Knot> knots) {
  if (knots.size() < 2) {
    return Status::InvalidArgument("need at least 2 knots");
  }
  for (size_t i = 0; i < knots.size(); ++i) {
    if (knots[i].f < -1e-12 || knots[i].f > 1.0 + 1e-12) {
      return Status::InvalidArgument("CDF value outside [0,1]");
    }
    knots[i].f = Clamp(knots[i].f, 0.0, 1.0);
    if (i > 0) {
      if (knots[i].x <= knots[i - 1].x) {
        return Status::InvalidArgument("knot x not strictly increasing");
      }
      if (knots[i].f < knots[i - 1].f) {
        return Status::InvalidArgument("CDF values not monotone");
      }
    }
  }
  return PiecewiseLinearCdf(std::move(knots));
}

Result<PiecewiseLinearCdf> PiecewiseLinearCdf::FromSamples(
    std::vector<double> samples) {
  if (samples.size() < 2) {
    return Status::InvalidArgument("need at least 2 samples");
  }
  std::sort(samples.begin(), samples.end());
  const double n = static_cast<double>(samples.size());
  std::vector<Knot> knots;
  knots.reserve(samples.size() + 1);
  // Left anchor a hair below the minimum with F = 0, then a knot at each
  // distinct value x carrying the fraction of samples <= x. Atoms become
  // near-vertical ramps; F is exactly 0 below the data and 1 above it.
  const double span = samples.back() - samples.front();
  const double eps =
      std::max({1e-12, std::fabs(samples.front()) * 1e-12, span * 1e-9});
  knots.push_back(Knot{samples.front() - eps, 0.0});
  size_t i = 0;
  while (i < samples.size()) {
    size_t j = i;
    while (j + 1 < samples.size() && samples[j + 1] == samples[i]) ++j;
    knots.push_back(Knot{samples[i], static_cast<double>(j + 1) / n});
    i = j + 1;
  }
  knots.back().f = 1.0;
  return FromKnots(std::move(knots));
}

void PiecewiseLinearCdf::MakeMonotone(std::vector<Knot>& knots) {
  std::sort(knots.begin(), knots.end(),
            [](const Knot& a, const Knot& b) { return a.x < b.x; });
  // Merge duplicate x, keeping the largest f.
  std::vector<Knot> merged;
  merged.reserve(knots.size());
  for (const Knot& k : knots) {
    if (!merged.empty() && merged.back().x == k.x) {
      merged.back().f = std::max(merged.back().f, k.f);
    } else {
      merged.push_back(k);
    }
  }
  // Clamp and running-max for monotonicity.
  double run = 0.0;
  for (Knot& k : merged) {
    k.f = Clamp(k.f, 0.0, 1.0);
    run = std::max(run, k.f);
    k.f = run;
  }
  knots = std::move(merged);
}

double PiecewiseLinearCdf::Cursor::Evaluate(double x) {
  const std::vector<Knot>& k = *knots_;
  if (x <= k.front().x) return k.front().f;
  if (x >= k.back().x) return k.back().f;
  AdvanceTo(x);
  const Knot& hi = k[seg_];
  const Knot& lo = k[seg_ - 1];
  const double t = (x - lo.x) / (hi.x - lo.x);
  return Lerp(lo.f, hi.f, t);
}

double PiecewiseLinearCdf::Cursor::DensityAt(double x) {
  const std::vector<Knot>& k = *knots_;
  if (x < k.front().x || x > k.back().x) return 0.0;
  AdvanceTo(x);
  const Knot& hi = k[seg_];
  const Knot& lo = k[seg_ - 1];
  return (hi.f - lo.f) / (hi.x - lo.x);
}

std::vector<double> PiecewiseLinearCdf::EvaluateSorted(
    const std::vector<double>& xs) const {
  assert(std::is_sorted(xs.begin(), xs.end()));
  std::vector<double> out;
  out.reserve(xs.size());
  Cursor cursor(*this);
  for (double x : xs) out.push_back(cursor.Evaluate(x));
  return out;
}

std::vector<double> PiecewiseLinearCdf::DensityAtSorted(
    const std::vector<double>& xs) const {
  assert(std::is_sorted(xs.begin(), xs.end()));
  std::vector<double> out;
  out.reserve(xs.size());
  Cursor cursor(*this);
  for (double x : xs) out.push_back(cursor.DensityAt(x));
  return out;
}

double PiecewiseLinearCdf::Evaluate(double x) const {
  if (x <= knots_.front().x) return knots_.front().f;
  if (x >= knots_.back().x) return knots_.back().f;
  // Binary search for the segment containing x.
  auto it = std::upper_bound(
      knots_.begin(), knots_.end(), x,
      [](double v, const Knot& k) { return v < k.x; });
  const Knot& hi = *it;
  const Knot& lo = *(it - 1);
  const double t = (x - lo.x) / (hi.x - lo.x);
  return Lerp(lo.f, hi.f, t);
}

double PiecewiseLinearCdf::Inverse(double p) const {
  if (p <= knots_.front().f) return knots_.front().x;
  if (p >= knots_.back().f) return knots_.back().x;
  auto it = std::lower_bound(
      knots_.begin(), knots_.end(), p,
      [](const Knot& k, double v) { return k.f < v; });
  const Knot& hi = *it;
  const Knot& lo = *(it - 1);
  if (hi.f == lo.f) return lo.x;  // flat segment: leftmost point
  const double t = (p - lo.f) / (hi.f - lo.f);
  return Lerp(lo.x, hi.x, t);
}

double PiecewiseLinearCdf::DensityAt(double x) const {
  if (x < knots_.front().x || x > knots_.back().x) return 0.0;
  auto it = std::upper_bound(
      knots_.begin(), knots_.end(), x,
      [](double v, const Knot& k) { return v < k.x; });
  if (it == knots_.end()) --it;       // x == last knot: use last segment
  if (it == knots_.begin()) ++it;     // x == first knot: use first segment
  const Knot& hi = *it;
  const Knot& lo = *(it - 1);
  return (hi.f - lo.f) / (hi.x - lo.x);
}

bool PiecewiseLinearCdf::IsNormalized() const {
  return std::fabs(knots_.front().f) < 1e-9 &&
         std::fabs(knots_.back().f - 1.0) < 1e-9;
}

PiecewiseLinearCdf PiecewiseLinearCdf::Resampled(size_t max_knots) const {
  if (max_knots < 2) max_knots = 2;
  if (knots_.size() <= max_knots) return *this;
  const double f_lo = knots_.front().f;
  const double f_hi = knots_.back().f;
  std::vector<Knot> out;
  out.reserve(max_knots);
  out.push_back(knots_.front());
  for (size_t i = 1; i + 1 < max_knots; ++i) {
    const double p =
        Lerp(f_lo, f_hi,
             static_cast<double>(i) / static_cast<double>(max_knots - 1));
    const double x = Inverse(p);
    if (x > out.back().x) out.push_back(Knot{x, p});
  }
  if (knots_.back().x > out.back().x) {
    out.push_back(knots_.back());
  } else {
    out.back() = knots_.back();
  }
  if (out.size() < 2) return *this;  // degenerate flat function
  Result<PiecewiseLinearCdf> result = FromKnots(std::move(out));
  return result.ok() ? std::move(*result) : *this;
}

void PiecewiseLinearCdf::Normalize() {
  const double lo = knots_.front().f;
  const double hi = knots_.back().f;
  if (hi - lo < 1e-15) return;  // degenerate: nothing sensible to do
  for (Knot& k : knots_) k.f = (k.f - lo) / (hi - lo);
}

}  // namespace ringdde
