#ifndef RINGDDE_STATS_HISTOGRAM_H_
#define RINGDDE_STATS_HISTOGRAM_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "stats/piecewise_cdf.h"

namespace ringdde {

/// Equi-width histogram over [lo, hi] with weighted counts.
///
/// Mergeable (bin-wise addition), which is what the gossip and tree
/// aggregation baselines exchange: every peer's local histogram uses the
/// same (lo, hi, bins) geometry, so merging is exact.
class EquiWidthHistogram {
 public:
  /// Requires lo < hi and bins >= 1.
  EquiWidthHistogram(double lo, double hi, size_t bins);

  /// Adds `weight` mass at x. Out-of-range x clamps into the edge bins.
  void Add(double x, double weight = 1.0);

  /// Adds every value with weight 1.
  void AddAll(const std::vector<double>& xs);

  /// Bin-wise merge; geometries must match exactly.
  Status Merge(const EquiWidthHistogram& other);

  /// Multiplies every bin mass by `factor` (push-sum style reweighting).
  void Scale(double factor);

  double TotalMass() const;

  /// Normalized density at x; 0 outside [lo, hi], 0 if the histogram is
  /// empty.
  double PdfAt(double x) const;

  /// Normalized CDF at x, linear within bins; 0 if empty.
  double CdfAt(double x) const;

  /// Piecewise-linear CDF with a knot at every bin boundary.
  /// Fails if the histogram is empty.
  Result<PiecewiseLinearCdf> ToCdf() const;

  double lo() const { return lo_; }
  double hi() const { return hi_; }
  size_t bins() const { return mass_.size(); }
  const std::vector<double>& bin_masses() const { return mass_; }
  double bin_width() const { return (hi_ - lo_) / static_cast<double>(bins()); }

  /// Serialized payload size if shipped over the network: 8 bytes per bin.
  uint64_t EncodedBytes() const { return 8 * mass_.size(); }

 private:
  size_t BinOf(double x) const;

  double lo_, hi_;
  std::vector<double> mass_;
};

/// Equi-depth (equi-height) histogram: `buckets` buckets each holding the
/// same number of samples; boundaries are sample quantiles. The classic
/// selectivity-estimation summary.
class EquiDepthHistogram {
 public:
  /// Builds from a sample (copied & sorted). Requires a non-empty sample
  /// and buckets >= 1.
  static Result<EquiDepthHistogram> Build(std::vector<double> samples,
                                          size_t buckets);

  /// Estimated fraction of data in [a, b] (uniform-within-bucket
  /// assumption).
  double EstimateSelectivity(double a, double b) const;

  double CdfAt(double x) const;

  /// Bucket boundaries, size buckets()+1, ascending.
  const std::vector<double>& boundaries() const { return boundaries_; }
  size_t buckets() const { return boundaries_.size() - 1; }

 private:
  explicit EquiDepthHistogram(std::vector<double> boundaries)
      : boundaries_(std::move(boundaries)) {}

  std::vector<double> boundaries_;
};

}  // namespace ringdde

#endif  // RINGDDE_STATS_HISTOGRAM_H_
