#include "stats/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/math_util.h"

namespace ringdde {

double SupDistance(const RealFn& f, const RealFn& g, double lo, double hi,
                   int grid, const std::vector<double>& extra) {
  double sup = 0.0;
  for (int i = 0; i <= grid; ++i) {
    const double x = Lerp(lo, hi, static_cast<double>(i) / grid);
    sup = std::max(sup, std::fabs(f(x) - g(x)));
  }
  for (double x : extra) {
    if (x < lo || x > hi) continue;
    sup = std::max(sup, std::fabs(f(x) - g(x)));
  }
  return sup;
}

double L1Distance(const RealFn& f, const RealFn& g, double lo, double hi,
                  int grid) {
  const double h = (hi - lo) / grid;
  KahanSum acc;
  double prev = std::fabs(f(lo) - g(lo));
  for (int i = 1; i <= grid; ++i) {
    const double x = Lerp(lo, hi, static_cast<double>(i) / grid);
    const double cur = std::fabs(f(x) - g(x));
    acc.Add(0.5 * (prev + cur) * h);
    prev = cur;
  }
  return acc.value();
}

double L2Distance(const RealFn& f, const RealFn& g, double lo, double hi,
                  int grid) {
  const double h = (hi - lo) / grid;
  KahanSum acc;
  double d0 = f(lo) - g(lo);
  double prev = d0 * d0;
  for (int i = 1; i <= grid; ++i) {
    const double x = Lerp(lo, hi, static_cast<double>(i) / grid);
    const double d = f(x) - g(x);
    const double cur = d * d;
    acc.Add(0.5 * (prev + cur) * h);
    prev = cur;
  }
  return std::sqrt(acc.value());
}

double KlDivergence(const RealFn& p, const RealFn& q, double lo, double hi,
                    int grid, double floor_eps) {
  const double h = (hi - lo) / grid;
  KahanSum acc;
  auto integrand = [&](double x) {
    const double pv = std::max(p(x), floor_eps);
    const double qv = std::max(q(x), floor_eps);
    return pv * std::log(pv / qv);
  };
  double prev = integrand(lo);
  for (int i = 1; i <= grid; ++i) {
    const double x = Lerp(lo, hi, static_cast<double>(i) / grid);
    const double cur = integrand(x);
    acc.Add(0.5 * (prev + cur) * h);
    prev = cur;
  }
  return acc.value();
}

std::string AccuracyReport::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "ks=%.5f l1_cdf=%.5f l2_cdf=%.5f l1_pdf=%.5f", ks, l1_cdf,
                l2_cdf, l1_pdf);
  return std::string(buf);
}

AccuracyReport CompareFnToTruth(const RealFn& est_cdf, const RealFn& est_pdf,
                                const Distribution& truth, int grid) {
  // Evaluate over the full unit domain, not just the truth support: an
  // estimate that puts mass outside the support must be penalized.
  const double lo = 0.0;
  const double hi = 1.0;
  RealFn true_cdf = [&truth](double x) { return truth.Cdf(x); };
  AccuracyReport r;
  r.ks = SupDistance(est_cdf, true_cdf, lo, hi, grid);
  r.l1_cdf = L1Distance(est_cdf, true_cdf, lo, hi, grid);
  r.l2_cdf = L2Distance(est_cdf, true_cdf, lo, hi, grid);
  if (est_pdf) {
    RealFn true_pdf = [&truth](double x) { return truth.Pdf(x); };
    r.l1_pdf = L1Distance(est_pdf, true_pdf, lo, hi, grid);
  }
  return r;
}

AccuracyReport CompareCdfToTruth(const PiecewiseLinearCdf& estimate,
                                 const Distribution& truth, int grid) {
  RealFn est_cdf = [&estimate](double x) { return estimate.Evaluate(x); };
  RealFn est_pdf = [&estimate](double x) { return estimate.DensityAt(x); };
  AccuracyReport r = CompareFnToTruth(est_cdf, est_pdf, truth, grid);
  // Refine KS with the estimate's knots: sup of PWL vs smooth truth can
  // fall between grid points but is bracketed by knot positions.
  std::vector<double> knot_xs;
  knot_xs.reserve(estimate.knots().size());
  for (const auto& k : estimate.knots()) knot_xs.push_back(k.x);
  RealFn true_cdf = [&truth](double x) { return truth.Cdf(x); };
  r.ks = std::max(r.ks,
                  SupDistance(est_cdf, true_cdf, 0.0, 1.0, grid, knot_xs));
  return r;
}

AccuracyReport MeanReport(const std::vector<AccuracyReport>& reports) {
  AccuracyReport m;
  if (reports.empty()) return m;
  for (const AccuracyReport& r : reports) {
    m.ks += r.ks;
    m.l1_cdf += r.l1_cdf;
    m.l2_cdf += r.l2_cdf;
    m.l1_pdf += r.l1_pdf;
  }
  const double n = static_cast<double>(reports.size());
  m.ks /= n;
  m.l1_cdf /= n;
  m.l2_cdf /= n;
  m.l1_pdf /= n;
  return m;
}

}  // namespace ringdde
