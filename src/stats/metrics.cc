#include "stats/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/math_util.h"

namespace ringdde {

double SupDistance(const RealFn& f, const RealFn& g, double lo, double hi,
                   int grid, const std::vector<double>& extra) {
  double sup = 0.0;
  for (int i = 0; i <= grid; ++i) {
    const double x = Lerp(lo, hi, static_cast<double>(i) / grid);
    sup = std::max(sup, std::fabs(f(x) - g(x)));
  }
  for (double x : extra) {
    if (x < lo || x > hi) continue;
    sup = std::max(sup, std::fabs(f(x) - g(x)));
  }
  return sup;
}

double L1Distance(const RealFn& f, const RealFn& g, double lo, double hi,
                  int grid) {
  const double h = (hi - lo) / grid;
  KahanSum acc;
  double prev = std::fabs(f(lo) - g(lo));
  for (int i = 1; i <= grid; ++i) {
    const double x = Lerp(lo, hi, static_cast<double>(i) / grid);
    const double cur = std::fabs(f(x) - g(x));
    acc.Add(0.5 * (prev + cur) * h);
    prev = cur;
  }
  return acc.value();
}

double L2Distance(const RealFn& f, const RealFn& g, double lo, double hi,
                  int grid) {
  const double h = (hi - lo) / grid;
  KahanSum acc;
  double d0 = f(lo) - g(lo);
  double prev = d0 * d0;
  for (int i = 1; i <= grid; ++i) {
    const double x = Lerp(lo, hi, static_cast<double>(i) / grid);
    const double d = f(x) - g(x);
    const double cur = d * d;
    acc.Add(0.5 * (prev + cur) * h);
    prev = cur;
  }
  return std::sqrt(acc.value());
}

double KlDivergence(const RealFn& p, const RealFn& q, double lo, double hi,
                    int grid, double floor_eps) {
  const double h = (hi - lo) / grid;
  KahanSum acc;
  auto integrand = [&](double x) {
    const double pv = std::max(p(x), floor_eps);
    const double qv = std::max(q(x), floor_eps);
    return pv * std::log(pv / qv);
  };
  double prev = integrand(lo);
  for (int i = 1; i <= grid; ++i) {
    const double x = Lerp(lo, hi, static_cast<double>(i) / grid);
    const double cur = integrand(x);
    acc.Add(0.5 * (prev + cur) * h);
    prev = cur;
  }
  return acc.value();
}

double SupDistanceCdf(const PiecewiseLinearCdf& a, const PiecewiseLinearCdf& b,
                      double lo, double hi, int grid) {
  PiecewiseLinearCdf::Cursor ca(a);
  PiecewiseLinearCdf::Cursor cb(b);
  double sup = 0.0;
  for (int i = 0; i <= grid; ++i) {
    const double x = Lerp(lo, hi, static_cast<double>(i) / grid);
    sup = std::max(sup, std::fabs(ca.Evaluate(x) - cb.Evaluate(x)));
  }
  return sup;
}

std::string AccuracyReport::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "ks=%.5f l1_cdf=%.5f l2_cdf=%.5f l1_pdf=%.5f", ks, l1_cdf,
                l2_cdf, l1_pdf);
  return std::string(buf);
}

AccuracyReport CompareFnToTruth(const RealFn& est_cdf, const RealFn& est_pdf,
                                const Distribution& truth, int grid) {
  // Evaluate over the full unit domain, not just the truth support: an
  // estimate that puts mass outside the support must be penalized.
  //
  // All four metrics share one sweep: each abscissa evaluates the estimate
  // and the truth exactly once instead of once per metric. Per-metric
  // accumulation (max for KS, one Kahan trapezoid sum each for the
  // integrals, added in grid order) matches the standalone SupDistance /
  // L1Distance / L2Distance passes term for term, so the report is
  // bit-identical to running them separately.
  const double lo = 0.0;
  const double hi = 1.0;
  const double h = (hi - lo) / grid;
  const bool have_pdf = static_cast<bool>(est_pdf);
  AccuracyReport r;
  KahanSum l1_cdf;
  KahanSum l2_cdf;
  KahanSum l1_pdf;
  double prev_abs = 0.0;
  double prev_sq = 0.0;
  double prev_pd = 0.0;
  for (int i = 0; i <= grid; ++i) {
    const double x = Lerp(lo, hi, static_cast<double>(i) / grid);
    const double d = est_cdf(x) - truth.Cdf(x);
    const double abs_d = std::fabs(d);
    const double sq_d = d * d;
    r.ks = std::max(r.ks, abs_d);
    const double pd = have_pdf ? std::fabs(est_pdf(x) - truth.Pdf(x)) : 0.0;
    if (i > 0) {
      l1_cdf.Add(0.5 * (prev_abs + abs_d) * h);
      l2_cdf.Add(0.5 * (prev_sq + sq_d) * h);
      if (have_pdf) l1_pdf.Add(0.5 * (prev_pd + pd) * h);
    }
    prev_abs = abs_d;
    prev_sq = sq_d;
    prev_pd = pd;
  }
  r.l1_cdf = l1_cdf.value();
  r.l2_cdf = std::sqrt(l2_cdf.value());
  if (have_pdf) r.l1_pdf = l1_pdf.value();
  return r;
}

AccuracyReport CompareCdfToTruth(const PiecewiseLinearCdf& estimate,
                                 const Distribution& truth, int grid) {
  // One merged sweep over grid points ∪ estimate knots, the estimate walked
  // with a monotone segment cursor: O(grid + knots) instead of five
  // independent passes at O(grid · log knots) each. Knots refine the KS sup
  // only — between consecutive merged abscissae the estimate is linear, so
  // max |est − truth| over the union is exactly the sup the legacy
  // grid-then-knot-refinement pair of passes computed — while the integral
  // metrics keep their legacy grid-only trapezoid abscissae. Every value is
  // computed with the same arithmetic as the scalar Evaluate/DensityAt
  // path, so the report is bit-identical to the unfused implementation.
  const double lo = 0.0;
  const double hi = 1.0;
  const double h = (hi - lo) / grid;
  const std::vector<PiecewiseLinearCdf::Knot>& knots = estimate.knots();
  PiecewiseLinearCdf::Cursor cursor(estimate);
  AccuracyReport r;
  KahanSum l1_cdf;
  KahanSum l2_cdf;
  KahanSum l1_pdf;
  double prev_abs = 0.0;
  double prev_sq = 0.0;
  double prev_pd = 0.0;
  size_t ki = 0;  // next knot to merge into the sweep
  for (int i = 0; i <= grid; ++i) {
    const double x = Lerp(lo, hi, static_cast<double>(i) / grid);
    for (; ki < knots.size() && knots[ki].x < x; ++ki) {
      const double kx = knots[ki].x;
      if (kx < lo) continue;  // outside the domain: no KS contribution
      r.ks = std::max(r.ks, std::fabs(cursor.Evaluate(kx) - truth.Cdf(kx)));
    }
    const double d = cursor.Evaluate(x) - truth.Cdf(x);
    const double abs_d = std::fabs(d);
    const double sq_d = d * d;
    r.ks = std::max(r.ks, abs_d);
    const double pd = std::fabs(cursor.DensityAt(x) - truth.Pdf(x));
    if (i > 0) {
      l1_cdf.Add(0.5 * (prev_abs + abs_d) * h);
      l2_cdf.Add(0.5 * (prev_sq + sq_d) * h);
      l1_pdf.Add(0.5 * (prev_pd + pd) * h);
    }
    prev_abs = abs_d;
    prev_sq = sq_d;
    prev_pd = pd;
  }
  for (; ki < knots.size() && knots[ki].x <= hi; ++ki) {
    const double kx = knots[ki].x;
    r.ks = std::max(r.ks, std::fabs(cursor.Evaluate(kx) - truth.Cdf(kx)));
  }
  r.l1_cdf = l1_cdf.value();
  r.l2_cdf = std::sqrt(l2_cdf.value());
  r.l1_pdf = l1_pdf.value();
  return r;
}

AccuracyReport MeanReport(const std::vector<AccuracyReport>& reports) {
  AccuracyReport m;
  if (reports.empty()) return m;
  for (const AccuracyReport& r : reports) {
    m.ks += r.ks;
    m.l1_cdf += r.l1_cdf;
    m.l2_cdf += r.l2_cdf;
    m.l1_pdf += r.l1_pdf;
  }
  const double n = static_cast<double>(reports.size());
  m.ks /= n;
  m.l1_cdf /= n;
  m.l2_cdf /= n;
  m.l1_pdf /= n;
  return m;
}

}  // namespace ringdde
