#include "stats/bounds.h"

#include <cassert>
#include <cmath>

namespace ringdde {

size_t DkwRequiredSamples(double epsilon, double delta) {
  assert(epsilon > 0.0 && epsilon < 1.0);
  assert(delta > 0.0 && delta < 1.0);
  const double m = std::log(2.0 / delta) / (2.0 * epsilon * epsilon);
  return static_cast<size_t>(std::ceil(m));
}

double DkwEpsilon(size_t m, double delta) {
  assert(m > 0);
  assert(delta > 0.0 && delta < 1.0);
  return std::sqrt(std::log(2.0 / delta) / (2.0 * static_cast<double>(m)));
}

double DkwConfidence(size_t m, double epsilon) {
  assert(epsilon > 0.0);
  const double tail =
      2.0 * std::exp(-2.0 * static_cast<double>(m) * epsilon * epsilon);
  return tail >= 1.0 ? 0.0 : 1.0 - tail;
}

double DkwEpsilonDegraded(size_t requested, size_t succeeded, double delta) {
  assert(succeeded <= requested);
  (void)requested;
  if (succeeded == 0) return 1.0;
  const double eps = DkwEpsilon(succeeded, delta);
  return eps > 1.0 ? 1.0 : eps;
}

size_t HoeffdingRequiredSamples(double epsilon, double delta, double range) {
  assert(range > 0.0);
  return DkwRequiredSamples(epsilon / range, delta);
}

}  // namespace ringdde
