#ifndef RINGDDE_STATS_BOUNDS_H_
#define RINGDDE_STATS_BOUNDS_H_

#include <cstddef>

namespace ringdde {

/// Distribution-free concentration bounds backing the estimator's
/// "accuracy regardless of the data distribution" guarantee.
///
/// Dvoretzky–Kiefer–Wolfowitz (with Massart's tight constant):
///   P( sup_x |F_m(x) - F(x)| > eps ) <= 2 exp(-2 m eps^2)
/// for the empirical CDF F_m of m i.i.d. samples of ANY distribution F.
/// Because the estimator samples the global CDF directly (rather than items
/// through a biased peer process), the bound applies verbatim to it.

/// Smallest m with 2 exp(-2 m eps^2) <= delta, i.e. the CDF sample count
/// guaranteeing KS error <= eps with probability >= 1 - delta.
/// Requires eps in (0,1) and delta in (0,1).
size_t DkwRequiredSamples(double epsilon, double delta);

/// The eps guaranteed by m samples at confidence 1 - delta:
///   eps = sqrt( ln(2/delta) / (2 m) ).
double DkwEpsilon(size_t m, double delta);

/// Confidence 1 - 2 exp(-2 m eps^2) that m samples achieve KS error <= eps
/// (clamped below at 0).
double DkwConfidence(size_t m, double epsilon);

/// The widened DKW epsilon of a DEGRADED probe run: of `requested` CDF
/// samples only `succeeded` returned (timeouts, crashed owners, exhausted
/// retry budgets), so the bound must be computed from the m' samples the
/// estimator actually holds. Returns DkwEpsilon(succeeded, delta) clamped
/// to 1.0, and exactly 1.0 (vacuous) when nothing succeeded. `succeeded`
/// must not exceed `requested`.
double DkwEpsilonDegraded(size_t requested, size_t succeeded, double delta);

/// Hoeffding bound for estimating the mean of a [0, range]-valued quantity
/// (e.g. the total item count from per-probe density observations):
/// smallest m with 2 exp(-2 m (eps/range)^2) <= delta.
size_t HoeffdingRequiredSamples(double epsilon, double delta,
                                double range = 1.0);

}  // namespace ringdde

#endif  // RINGDDE_STATS_BOUNDS_H_
