#include "stats/density_sketch.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ringdde {
namespace {

// Same interpolation as Node::LocalQuantile: fractional order statistic
// h = p·(n−1) with linear interpolation between neighbours. Keeping the
// arithmetic identical means a peer's depth-0 sketch knots match its exact
// quantile replies bit-for-bit (the transport conformance tests rely on
// deterministic byte-level agreement between sim and wire paths).
double SortedQuantile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  p = std::min(std::max(p, 0.0), 1.0);
  const double h = p * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(h);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double t = h - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * t;
}

bool KnotsValid(const std::vector<double>& knots) {
  for (size_t i = 0; i < knots.size(); ++i) {
    if (!std::isfinite(knots[i])) return false;
    if (i > 0 && knots[i] < knots[i - 1]) return false;
  }
  return true;
}

}  // namespace

DensitySketch::DensitySketch(uint32_t levels) : levels_(levels) {
  assert(levels >= 2);
}

DensitySketch DensitySketch::FromSorted(const std::vector<double>& sorted,
                                        uint32_t levels) {
  DensitySketch s(levels);
  if (sorted.empty()) return s;
  s.count_ = sorted.size();
  s.knots_.reserve(levels + 1);
  for (uint32_t i = 0; i <= levels; ++i) {
    s.knots_.push_back(SortedQuantile(
        sorted, static_cast<double>(i) / static_cast<double>(levels)));
  }
  return s;
}

Result<DensitySketch> DensitySketch::FromQuantileKnots(
    uint64_t count, std::vector<double> knots) {
  if (knots.size() < 3) {
    return Status::InvalidArgument("density sketch needs >= 3 knots");
  }
  if (count == 0) {
    return Status::InvalidArgument("density sketch knots require count > 0");
  }
  if (!KnotsValid(knots)) {
    return Status::InvalidArgument("density sketch knots must be ascending");
  }
  DensitySketch s(static_cast<uint32_t>(knots.size() - 1));
  s.count_ = count;
  s.knots_ = std::move(knots);
  return s;
}

double DensitySketch::CdfAt(double x) const {
  if (count_ == 0) return 0.0;
  if (x <= knots_.front()) return 0.0;
  if (x >= knots_.back()) return 1.0;
  // First knot strictly greater than x; segment [knots[i-1], knots[i]]
  // spans levels (i-1)/K .. i/K. upper_bound skips runs of equal knots, so
  // the CDF is right-continuous at value atoms (repeated keys).
  const auto it = std::upper_bound(knots_.begin(), knots_.end(), x);
  const size_t i = static_cast<size_t>(it - knots_.begin());
  const double lo = knots_[i - 1];
  const double hi = knots_[i];
  const double t = hi > lo ? (x - lo) / (hi - lo) : 0.0;
  return (static_cast<double>(i - 1) + t) / static_cast<double>(levels_);
}

uint64_t DensitySketch::RankOf(double x) const {
  if (count_ == 0) return 0;
  return static_cast<uint64_t>(
      std::llround(CdfAt(x) * static_cast<double>(count_)));
}

double DensitySketch::Quantile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::min(std::max(p, 0.0), 1.0);
  const double h = p * static_cast<double>(levels_);
  const size_t lo = static_cast<size_t>(h);
  const size_t hi = std::min<size_t>(lo + 1, levels_);
  const double t = h - static_cast<double>(lo);
  return knots_[lo] + (knots_[hi] - knots_[lo]) * t;
}

Status DensitySketch::Merge(const DensitySketch& other) {
  if (levels_ != other.levels_) {
    return Status::InvalidArgument("cannot merge sketches with mixed levels");
  }
  if (other.count_ == 0) return Status::OK();
  if (count_ == 0) {
    *this = other;
    return Status::OK();
  }

  // Union of both knot sets: the mixture CDF G is piecewise linear
  // exactly between these breakpoints, so evaluating it there and
  // inverting by linear interpolation is exact (no extra grid error
  // beyond the one re-compaction charged to merge_depth_).
  std::vector<double> xs;
  xs.reserve(knots_.size() + other.knots_.size());
  std::merge(knots_.begin(), knots_.end(), other.knots_.begin(),
             other.knots_.end(), std::back_inserter(xs));
  xs.erase(std::unique(xs.begin(), xs.end()), xs.end());

  // Mixture weights and values. The arithmetic is symmetric in (this,
  // other) — IEEE addition and multiplication commute bitwise — so
  // Merge(a,b) and Merge(b,a) produce identical knots.
  const double wa = static_cast<double>(count_);
  const double wb = static_cast<double>(other.count_);
  const double wt = wa + wb;
  std::vector<double> g(xs.size());
  for (size_t i = 0; i < xs.size(); ++i) {
    g[i] = (wa * CdfAt(xs[i]) + wb * other.CdfAt(xs[i])) / wt;
  }

  // Re-compact: invert G at each grid level i/K. g is nondecreasing, so a
  // single forward sweep suffices.
  std::vector<double> merged;
  merged.reserve(levels_ + 1);
  merged.push_back(xs.front());
  size_t j = 0;
  for (uint32_t i = 1; i < levels_; ++i) {
    const double target = static_cast<double>(i) / static_cast<double>(levels_);
    while (j + 1 < xs.size() && g[j + 1] < target) ++j;
    // Segment (xs[j], xs[j+1]] brackets target: g[j] < target <= g[j+1]
    // (or we ran off the end and clamp to the max).
    if (j + 1 >= xs.size()) {
      merged.push_back(xs.back());
      continue;
    }
    const double glo = g[j];
    const double ghi = g[j + 1];
    const double t = ghi > glo ? (target - glo) / (ghi - glo) : 1.0;
    merged.push_back(xs[j] + (xs[j + 1] - xs[j]) * t);
  }
  merged.push_back(xs.back());

  // Numerical guard: the inversion is monotone in exact arithmetic; clamp
  // any float-rounding inversions so knots stay a valid ascending grid.
  for (size_t i = 1; i < merged.size(); ++i) {
    merged[i] = std::max(merged[i], merged[i - 1]);
  }

  count_ += other.count_;
  merge_depth_ = std::max(merge_depth_, other.merge_depth_) + 1;
  knots_ = std::move(merged);
  return Status::OK();
}

Result<PiecewiseLinearCdf> DensitySketch::ToCdf() const {
  if (count_ == 0) {
    return Status::InvalidArgument("empty density sketch has no CDF");
  }
  std::vector<PiecewiseLinearCdf::Knot> knots;
  knots.reserve(knots_.size());
  for (uint32_t i = 0; i <= levels_; ++i) {
    knots.push_back(
        {knots_[i], static_cast<double>(i) / static_cast<double>(levels_)});
  }
  PiecewiseLinearCdf::MakeMonotone(knots);
  return PiecewiseLinearCdf::FromKnots(std::move(knots));
}

double DensitySketch::ErrorBound() const {
  return std::min(
      1.0, static_cast<double>(merge_depth_ + 1) / static_cast<double>(levels_));
}

void DensitySketch::EncodeTo(Encoder* enc) const {
  enc->PutVarint64(levels_);
  enc->PutVarint64(count_);
  enc->PutVarint64(merge_depth_);
  enc->PutVarint64(knots_.size());
  for (double k : knots_) enc->PutDouble(k);
}

uint64_t DensitySketch::EncodedBytes() const {
  return VarintLength(levels_) + VarintLength(count_) +
         VarintLength(merge_depth_) + VarintLength(knots_.size()) +
         8 * knots_.size();
}

Result<DensitySketch> DensitySketch::DecodeFrom(Decoder* dec) {
  uint64_t levels = 0, count = 0, depth = 0, nknots = 0;
  Status s = dec->GetVarint64(&levels);
  if (s.ok()) s = dec->GetVarint64(&count);
  if (s.ok()) s = dec->GetVarint64(&depth);
  if (s.ok()) s = dec->GetVarint64(&nknots);
  if (!s.ok()) return s;
  if (levels < 2 || levels > (1u << 20)) {
    return Status::InvalidArgument("density sketch levels out of range");
  }
  if (nknots != 0 && nknots != levels + 1) {
    return Status::InvalidArgument("density sketch knot count != levels+1");
  }
  if ((count == 0) != (nknots == 0)) {
    return Status::InvalidArgument("density sketch count/knots mismatch");
  }
  DensitySketch out(static_cast<uint32_t>(levels));
  out.count_ = count;
  out.merge_depth_ = static_cast<uint32_t>(depth);
  out.knots_.resize(nknots);
  for (uint64_t i = 0; i < nknots; ++i) {
    s = dec->GetDouble(&out.knots_[i]);
    if (!s.ok()) return s;
  }
  if (!KnotsValid(out.knots_)) {
    return Status::InvalidArgument("density sketch knots must be ascending");
  }
  return out;
}

}  // namespace ringdde
