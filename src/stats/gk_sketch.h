#ifndef RINGDDE_STATS_GK_SKETCH_H_
#define RINGDDE_STATS_GK_SKETCH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/codec.h"
#include "common/status.h"

namespace ringdde {

/// Greenwald–Khanna ε-approximate quantile sketch.
///
/// Peers with large local stores use this to answer probe requests with a
/// compact summary instead of shipping raw quantile arrays computed from all
/// keys. Any rank query is answered within ±ε·N of the true rank using
/// O((1/ε)·log(εN)) stored tuples.
class GkSketch {
 public:
  /// `epsilon` in (0, 0.5): the rank-error guarantee.
  explicit GkSketch(double epsilon = 0.01);

  /// Inserts one value. Amortized O(log(1/ε)) with periodic compression.
  void Add(double x);

  /// Inserts all values.
  void AddAll(const std::vector<double>& xs);

  /// Value whose rank is within ε·N of ceil(p·N). Returns 0 on an empty
  /// sketch.
  double Quantile(double p) const;

  /// Approximate rank of x (count of inserted values <= x), within ε·N.
  uint64_t RankOf(double x) const;

  /// Approximate CDF at x: RankOf(x) / count. 0 on an empty sketch.
  double CdfAt(double x) const;

  /// Merges `other` into this sketch (mergeable-summaries interleave rule:
  /// each surviving tuple absorbs the rank uncertainty of its successor
  /// from the other sketch, then one Compress pass re-compacts). The
  /// merged sketch answers rank queries within εa·Na + εb·Nb
  /// <= max(εa,εb)·(Na+Nb), so the ε·N guarantee is preserved; epsilon()
  /// becomes the max of the two inputs.
  void Merge(const GkSketch& other);

  uint64_t count() const { return count_; }
  size_t tuple_count() const { return tuples_.size(); }
  double epsilon() const { return epsilon_; }

  /// Appends the serialized sketch; EncodedBytes() is exactly the number
  /// of bytes this appends, and is what CostCounters charges when a GK
  /// summary ships over the network.
  void EncodeTo(Encoder* enc) const;
  uint64_t EncodedBytes() const;

  /// Decodes a sketch previously written by EncodeTo. Validates value
  /// ordering, per-tuple gaps, and the count/gap-sum identity.
  static Result<GkSketch> DecodeFrom(Decoder* dec);

 private:
  struct Tuple {
    double value;     ///< sample value v_i
    uint64_t g;       ///< rank(v_i) - rank(v_{i-1}) lower-bound gap
    uint64_t delta;   ///< uncertainty of the rank of v_i
  };

  void Compress();

  double epsilon_;
  uint64_t count_ = 0;
  uint64_t since_compress_ = 0;
  std::vector<Tuple> tuples_;  // ordered by value
};

}  // namespace ringdde

#endif  // RINGDDE_STATS_GK_SKETCH_H_
