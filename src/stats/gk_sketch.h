#ifndef RINGDDE_STATS_GK_SKETCH_H_
#define RINGDDE_STATS_GK_SKETCH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ringdde {

/// Greenwald–Khanna ε-approximate quantile sketch.
///
/// Peers with large local stores use this to answer probe requests with a
/// compact summary instead of shipping raw quantile arrays computed from all
/// keys. Any rank query is answered within ±ε·N of the true rank using
/// O((1/ε)·log(εN)) stored tuples.
class GkSketch {
 public:
  /// `epsilon` in (0, 0.5): the rank-error guarantee.
  explicit GkSketch(double epsilon = 0.01);

  /// Inserts one value. Amortized O(log(1/ε)) with periodic compression.
  void Add(double x);

  /// Inserts all values.
  void AddAll(const std::vector<double>& xs);

  /// Value whose rank is within ε·N of ceil(p·N). Returns 0 on an empty
  /// sketch.
  double Quantile(double p) const;

  /// Approximate rank of x (count of inserted values <= x), within ε·N.
  uint64_t RankOf(double x) const;

  uint64_t count() const { return count_; }
  size_t tuple_count() const { return tuples_.size(); }
  double epsilon() const { return epsilon_; }

  /// Serialized payload size if shipped over the network: each tuple is a
  /// (value, g, delta) triple ≈ 20 bytes.
  uint64_t EncodedBytes() const { return 20 * tuples_.size(); }

 private:
  struct Tuple {
    double value;     ///< sample value v_i
    uint64_t g;       ///< rank(v_i) - rank(v_{i-1}) lower-bound gap
    uint64_t delta;   ///< uncertainty of the rank of v_i
  };

  void Compress();

  double epsilon_;
  uint64_t count_ = 0;
  uint64_t since_compress_ = 0;
  std::vector<Tuple> tuples_;  // ordered by value
};

}  // namespace ringdde

#endif  // RINGDDE_STATS_GK_SKETCH_H_
