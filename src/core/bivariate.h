#ifndef RINGDDE_CORE_BIVARIATE_H_
#define RINGDDE_CORE_BIVARIATE_H_

#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/local_summary.h"
#include "ring/chord_ring.h"
#include "stats/piecewise_cdf.h"

namespace ringdde {

/// Extension: two-attribute density estimation (the "multi-dimensional
/// data" future-work direction of the single-attribute model).
///
/// Items are (x, y) pairs in the unit square. Placement stays
/// one-dimensional and order-preserving on x — so the ring still
/// materializes the x-marginal CDF — and every probed peer additionally
/// returns quantiles of the y values it stores. The reconstruction glues
/// those into conditional CDFs G(y | x), anchored at the probed arcs and
/// interpolated between them, which together with the x-marginal gives the
/// joint distribution: F(x, y) = ∫₀ˣ f_X(t)·G(y | t) dt.
///
/// Scope: static rings (the companion store does not migrate attribute
/// values through churn; the univariate estimator remains the dynamic
/// workhorse).

/// One two-attribute item.
struct XY {
  double x = 0.0;
  double y = 0.0;
};

/// Side table holding each peer's (x, y) items, assigned by x placement.
/// Companion to ChordRing, which itself stores only the x keys.
class BivariateStore {
 public:
  explicit BivariateStore(ChordRing* ring);

  /// Assigns every item to the owner of its x position and ALSO loads the
  /// x keys into the ring (so ring state and side table agree).
  Status BulkLoad(const std::vector<XY>& items);

  /// Items held by one peer (empty vector for unknown peers).
  const std::vector<XY>& ItemsAt(NodeAddr addr) const;

  /// Exact count of items with x in [x1,x2] and y in [y1,y2] (ground-truth
  /// oracle scan for evaluation).
  uint64_t ExactRectangleCount(double x1, double x2, double y1,
                               double y2) const;

  uint64_t total_items() const { return total_items_; }

 private:
  ChordRing* ring_;
  std::unordered_map<NodeAddr, std::vector<XY>> items_;
  std::vector<XY> empty_;
  uint64_t total_items_ = 0;
};

/// A probed peer's two-attribute response: its x-slice of the global CDF
/// plus quantiles of its local y values.
struct BivariateSummary {
  LocalSummary x;                   ///< arc, count, x quantiles
  std::vector<double> y_quantiles;  ///< q evenly spaced local y quantiles

  uint64_t EncodedBytes() const {
    return x.EncodedBytes() + 8 * y_quantiles.size();
  }
};

/// The reconstructed joint estimate.
class BivariateEstimate {
 public:
  /// Marginal CDF of x.
  const PiecewiseLinearCdf& x_cdf() const { return x_cdf_; }

  /// Estimated global item count.
  double estimated_total() const { return estimated_total_; }

  /// Conditional CDF G(y | x): the y-CDFs of the two probed arcs
  /// bracketing x, linearly blended by x position.
  double ConditionalYCdf(double x, double y) const;

  /// Joint CDF F(x, y), by integrating the conditional against the
  /// x-marginal.
  double JointCdf(double x, double y) const;

  /// Estimated fraction of items in the rectangle [x1,x2] x [y1,y2].
  double RectangleMass(double x1, double x2, double y1, double y2) const;

  /// Number of conditional slices backing the estimate.
  size_t slice_count() const { return slices_.size(); }

  CostCounters cost;
  size_t peers_probed = 0;

 private:
  friend class BivariateEstimator;

  struct Slice {
    double x_center = 0.0;
    PiecewiseLinearCdf y_cdf;
  };

  PiecewiseLinearCdf x_cdf_;
  double estimated_total_ = 0.0;
  std::vector<Slice> slices_;  // ascending by x_center
};

struct BivariateOptions {
  size_t num_probes = 256;
  int x_quantiles = 8;
  int y_quantiles = 8;
  uint64_t seed = 77;
};

/// The two-attribute estimator: probes like the univariate estimator and
/// additionally collects per-arc y-quantiles from the BivariateStore.
class BivariateEstimator {
 public:
  BivariateEstimator(ChordRing* ring, const BivariateStore* store,
                     BivariateOptions options = {});

  Result<BivariateEstimate> Estimate(NodeAddr querier);

 private:
  ChordRing* ring_;
  const BivariateStore* store_;
  BivariateOptions options_;
  Rng rng_;
};

}  // namespace ringdde

#endif  // RINGDDE_CORE_BIVARIATE_H_
