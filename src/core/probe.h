#ifndef RINGDDE_CORE_PROBE_H_
#define RINGDDE_CORE_PROBE_H_

#include <map>
#include <vector>

#include "common/retry_policy.h"
#include "common/rng.h"
#include "common/status.h"
#include "core/local_summary.h"
#include "ring/chord_ring.h"
#include "ring/epoch_snapshot.h"

namespace ringdde {

/// Probe-protocol knobs.
struct ProbeOptions {
  /// Quantile knots per probe response (including the local min and max).
  /// More knots = better within-arc CDF shape = bigger responses.
  int num_quantiles = 8;

  /// If true, a probe target that falls inside an already-fetched arc is
  /// resolved locally (no messages). Under heavy churn the fetched arcs can
  /// be stale and overlapping, so this optimization trades accuracy for
  /// cost; E11e quantifies the trade. Correct and significantly cheaper on
  /// stable rings.
  bool skip_covered_targets = true;

  /// If true, probed peers answer from a Greenwald–Khanna ε-sketch instead
  /// of exact order statistics (peers that do not keep sorted stores).
  /// Fidelity cost ablated in E11f.
  bool use_sketch_summaries = false;

  /// Rank-error bound of the peer sketches when use_sketch_summaries.
  double sketch_epsilon = 0.02;

  /// When > 0, probed peers answer with a fixed-size mergeable
  /// DensitySketch of this many grid levels instead of a quantile array
  /// (stats/density_sketch.h): responses stop growing with num_quantiles,
  /// and downstream aggregators can merge them. Takes precedence over
  /// use_sketch_summaries. 0 = classic quantile-array responses.
  uint32_t density_sketch_levels = 0;

  /// Retry schedule for transient probe failures (lookup Unavailable /
  /// TimedOut, dropped summary exchange, crashed owner). The default is a
  /// single attempt — exactly the historical skip-on-failure behavior —
  /// so only fault-aware callers pay for retries. Backoff time is charged
  /// to the network's latency_sum (the querier waits it out).
  RetryPolicy retry;
};

/// Union of clockwise ring arcs (lo, hi], answering membership in
/// O(log k) for k disjoint covered stretches.
///
/// Internally each arc becomes one or two closed uint64 intervals
/// ((lo, hi] = [lo+1, hi], split at the 2^64 wrap), kept as a sorted map of
/// disjoint, non-touching [start, end] ranges. Contains() is then a single
/// upper_bound plus one comparison — the binary-search replacement for the
/// per-target linear scan over all fetched summaries (O(m²) per estimate).
/// Membership is EXACTLY "some added arc contains t" per InArcOpenClosed,
/// including the lo == hi full-ring convention.
class ArcCoverageSet {
 public:
  /// Adds the clockwise arc (lo, hi]; lo == hi covers the whole ring.
  void Add(RingId lo, RingId hi);

  /// True iff any added arc contains `t`.
  bool Contains(RingId t) const;

  void Clear() { intervals_.clear(); }
  size_t interval_count() const { return intervals_.size(); }

 private:
  /// Unions the closed interval [a, b] (a <= b) into the set.
  void AddClosed(uint64_t a, uint64_t b);

  std::map<uint64_t, uint64_t> intervals_;  // start -> end, disjoint
};

/// The CDF-sampling primitive: route to the owner of a ring position and
/// fetch its LocalSummary.
///
/// Cost model per probe: one iterative lookup (charged by ChordRing) plus a
/// summary request (16 bytes) and response (summary.EncodedBytes()), both
/// sent over the fallible Network::TrySend path. Under an attached
/// FaultInjector either exchange can fail; the configured RetryPolicy then
/// governs bounded re-attempts with deterministic backoff. A probe that
/// exhausts its attempts (or its backoff budget) returns the last error
/// and is counted in failed_probes().
///
/// All probing is read-only on ring and network state: cost is charged to
/// the CostContext the caller passes (the context-free overloads use the
/// network's shared context, preserving historical single-threaded
/// behavior). A prober instance itself is NOT thread-safe — it carries the
/// per-query probe sequence and failure tallies — so concurrent queries
/// each use their own prober, all over one shared ring.
class CdfProber {
 public:
  CdfProber(ChordRing* ring, ProbeOptions options = {});

  /// Epoch-pinned prober: every lookup, liveness check, and summary read
  /// resolves against the immutable `view` instead of live ring state, so
  /// probing proceeds (lock-free) while mutators rewrite the ring. Cost
  /// still lands in the caller's CostContext over the view's Network. The
  /// view must outlive the prober (callers hold the pin). On a quiescent
  /// ring this mode is bit-identical to the live-ring mode.
  explicit CdfProber(const EpochView* view, ProbeOptions options = {});

  /// Probes the owner of `target` starting from `querier`, retrying
  /// transient failures per options().retry. Cost lands in `ctx`.
  Result<LocalSummary> Probe(CostContext& ctx, NodeAddr querier,
                             RingId target);
  Result<LocalSummary> Probe(NodeAddr querier, RingId target) {
    return Probe(net().shared_context(), querier, target);
  }

  /// Draws `m` ring positions uniformly at random and probes each; this is
  /// the distribution-free CDF-sampling step. Repeat owners are fetched
  /// only once (a duplicate position adds no information); failed probes
  /// (churn) are skipped. Appends to `out`, skipping owners already present.
  void ProbeUniform(CostContext& ctx, NodeAddr querier, size_t m, Rng& rng,
                    std::vector<LocalSummary>* out);
  void ProbeUniform(NodeAddr querier, size_t m, Rng& rng,
                    std::vector<LocalSummary>* out) {
    ProbeUniform(net().shared_context(), querier, m, rng, out);
  }

  /// Probes the owners of explicit ring positions (used by the inversion-
  /// guided refinement rounds). Same dedup/failure semantics.
  void ProbeTargets(CostContext& ctx, NodeAddr querier,
                    const std::vector<RingId>& targets,
                    std::vector<LocalSummary>* out);
  void ProbeTargets(NodeAddr querier, const std::vector<RingId>& targets,
                    std::vector<LocalSummary>* out) {
    ProbeTargets(net().shared_context(), querier, targets, out);
  }

  const ProbeOptions& options() const { return options_; }

  /// Number of probes that failed (routing Unavailable/TimedOut, crashed
  /// owner, or exhausted retry budget) since construction.
  uint64_t failed_probes() const { return failed_probes_; }

  /// Retry attempts spent recovering probes since construction.
  uint64_t retries() const { return retries_; }

 private:
  /// One full probe attempt: lookup, then summary request/response over
  /// TrySend. No retrying at this level.
  Result<LocalSummary> ProbeOnce(CostContext& ctx, NodeAddr querier,
                                 RingId target);

  /// The message fabric of whichever state source this prober reads, typed
  /// as the Transport interface: the probe protocol only uses the
  /// accounting surface, never Network's sim-only machinery.
  Transport& net() const {
    return view_ != nullptr ? view_->network() : ring_->network();
  }

  /// Null in epoch mode.
  ChordRing* ring_;
  /// Null in live mode; the pinned epoch otherwise.
  const EpochView* view_ = nullptr;
  ProbeOptions options_;
  uint64_t failed_probes_ = 0;
  uint64_t retries_ = 0;
  /// Monotone probe id: the jitter stream's task index, so every probe's
  /// backoff sequence is unique and reproducible.
  uint64_t probe_seq_ = 0;
};

}  // namespace ringdde

#endif  // RINGDDE_CORE_PROBE_H_
