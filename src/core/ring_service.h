#ifndef RINGDDE_CORE_RING_SERVICE_H_
#define RINGDDE_CORE_RING_SERVICE_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/codec.h"
#include "common/status.h"
#include "core/density_estimator.h"
#include "data/distribution.h"
#include "ring/chord_ring.h"
#include "sim/network.h"
#include "sim/socket_transport.h"
#include "sim/transport.h"

namespace ringdde {

/// Everything needed to build one ring deployment deterministically.
///
/// The multi-process model is DETERMINISTIC REPLICA SHARDS: every
/// `ringdde_node` process builds the identical deployment from the same
/// spec, and the driving client broadcasts every mutating command (join /
/// stabilize / insert) to all processes in the same order. State then
/// stays bit-identical everywhere (verified by fingerprint), so read RPCs
/// (probe / estimate) can be partitioned across processes arbitrarily —
/// and their results and CostCounters match the in-process sim oracle
/// exactly, because the server runs the very same protocol code over the
/// very same seeds.
struct DeploymentSpec {
  /// Initial CreateNetwork size (>= 1).
  uint64_t peers = 8;
  /// RingOptions::seed (node ids, protocol randomness).
  uint64_t ring_seed = 1;
  /// NetworkOptions::seed (latency/loss/query-context derivation).
  uint64_t net_seed = 0xC0FFEE;
  /// In-ring fault plan. Probabilities of 0 with empty windows means no
  /// injector is attached at all (TrySend degenerates to Send exactly).
  bool faults_enabled = false;
  FaultOptions faults;
  /// Estimation options applied by kEstimate (seed comes per-request).
  uint64_t num_probes = 64;
  uint32_t refinement_rounds = 2;
  uint32_t local_quantiles = 8;
  uint32_t retry_max_attempts = 1;
  /// Sketch grid resolution applied by kSketchEstimate (the hierarchical
  /// convergecast path). Probe/estimate RPCs are unaffected by it.
  uint32_t sketch_levels = 64;
};

/// Dataset synthesis request, shipped in kInsert: the server generates the
/// keys itself (same distribution + seed => same keys in every process)
/// rather than shipping the raw values.
struct InsertSpec {
  /// 0 uniform(a,b) · 1 normal(mean=a, stddev=b) · 2 zipf(values=a,
  /// theta=b) · 3 exponential(rate=a) · 4 pareto(alpha=a, lo=b).
  uint8_t dist_kind = 0;
  double param_a = 0.0;
  double param_b = 1.0;
  uint64_t count = 0;
  uint64_t data_seed = 7;
};

/// Builds the distribution named by an InsertSpec. InvalidArgument on an
/// unknown kind.
Result<std::unique_ptr<Distribution>> MakeSpecDistribution(
    const InsertSpec& spec);

/// One process-local deployment built from a spec: the fabric plus the
/// ring, constructed in a fixed order so two Deployments from equal specs
/// are bit-identical.
struct Deployment {
  std::unique_ptr<Network> network;
  std::unique_ptr<ChordRing> ring;
};

Result<std::unique_ptr<Deployment>> BuildDeployment(
    const DeploymentSpec& spec);

/// Order-sensitive digest of all replicated ring state: alive membership
/// (ids + addrs in ring order) and every node's stored key count. Two
/// processes that executed the same command sequence from the same spec
/// MUST agree on it; the conformance harness checks it after every
/// mutating step.
uint64_t RingFingerprint(const ChordRing& ring);

/// Per-request payload codecs (sim/transport.h frames carry these). Each
/// has an Encoder-appending form (for scratch-encoder reuse on the serving
/// path) and a whole-vector convenience form.
void EncodeDeploymentSpec(const DeploymentSpec& spec, Encoder* enc);
void EncodeDeploymentSpec(const DeploymentSpec& spec,
                          std::vector<uint8_t>* out);
Result<DeploymentSpec> DecodeDeploymentSpec(const std::vector<uint8_t>& in);
void EncodeInsertSpec(const InsertSpec& spec, Encoder* enc);
void EncodeInsertSpec(const InsertSpec& spec, std::vector<uint8_t>* out);
Result<InsertSpec> DecodeInsertSpec(const std::vector<uint8_t>& in);

/// What kEstimate returns: the estimate itself plus the degradation and
/// cost accounting the conformance/fault-parity tests compare against the
/// sim oracle.
struct EstimateReply {
  DensityEstimate estimate;
};
void EncodeEstimateReply(const DensityEstimate& estimate, Encoder* enc);
void EncodeEstimateReply(const DensityEstimate& estimate,
                         std::vector<uint8_t>* out);
Result<DensityEstimate> DecodeEstimateReply(const std::vector<uint8_t>& in);

/// kCounters reply: deployment-wide totals.
struct CountersReply {
  CostCounters counters;
  uint64_t lost_messages = 0;
};
void EncodeCountersReply(const CountersReply& reply, Encoder* enc);
void EncodeCountersReply(const CountersReply& reply,
                         std::vector<uint8_t>* out);
Result<CountersReply> DecodeCountersReply(const std::vector<uint8_t>& in);

/// The ring node's RPC dispatch: owns one Deployment and executes frames
/// against it. Handler-thread-safe (one big mutex — correctness over
/// concurrency; the conformance corpus is sequential anyway and the bench
/// drives one channel per client thread against distinct ops).
class RingRpcService {
 public:
  explicit RingRpcService(DeploymentSpec spec);

  /// Builds the deployment. Must be called (and succeed) before Handle.
  Status Init();

  /// Executes one request frame into `*reply` (success echoes the request
  /// type; errors surface as a non-ok Status, which socket servers turn
  /// into kError frames). Allocation-lean serving path: the reply payload
  /// is built in a member Encoder scratch and copied into `reply->payload`
  /// reusing its capacity — pair it with RpcServer's connection-owned
  /// reply frames for steady-state-allocation-free serving.
  Status Handle(const Frame& request, Frame* reply);

  /// Convenience wrapper over the two-arg form (fresh Frame per call).
  Result<Frame> Handle(const Frame& request);

  /// True once a kShutdown frame was served.
  bool shutdown_requested() const { return shutdown_requested_; }

  /// State digest of the current deployment (test/diagnostic use).
  uint64_t Fingerprint() const;

  const DeploymentSpec& spec() const { return spec_; }
  Deployment* deployment() { return deployment_.get(); }

 private:
  Status HandleHello(Frame* reply);
  Status HandleJoin(const Frame& request, Frame* reply);
  Status HandleStabilize(Frame* reply);
  Status HandleInsert(const Frame& request, Frame* reply);
  Status HandleProbe(const Frame& request, Frame* reply);
  Status HandleEstimate(const Frame& request, Frame* reply);
  Status HandleSketchEstimate(const Frame& request, Frame* reply);
  Status HandleCounters(Frame* reply);

  DeploymentSpec spec_;
  std::unique_ptr<Deployment> deployment_;
  mutable std::mutex mu_;
  /// Reply-payload scratch, guarded by mu_ like the deployment itself.
  Encoder enc_;
  bool shutdown_requested_ = false;
};

/// Client-side convenience wrappers over any RpcChannel, mirroring the
/// service ops one to one. Each returns the decoded reply.
class RingClient {
 public:
  explicit RingClient(RpcChannel* channel) : channel_(channel) {}

  struct HelloReply {
    uint64_t alive_count = 0;
    uint64_t total_items = 0;
    uint64_t fingerprint = 0;
  };
  Result<HelloReply> Hello();

  /// Joins `k` fresh peers (bootstrap chosen deterministically server-side)
  /// and returns the post-join fingerprint.
  Result<uint64_t> Join(uint64_t k);

  /// Full stabilization sweep; returns the post-sweep fingerprint.
  Result<uint64_t> Stabilize();

  /// Synthesizes + bulk-loads a dataset; returns total items stored.
  Result<uint64_t> Insert(const InsertSpec& spec);

  /// One CDF probe from `querier` toward `target` with a fresh query
  /// context derived from `ctx_seed`; returns the summary.
  Result<LocalSummary> Probe(NodeAddr querier, RingId target,
                             uint64_t ctx_seed);

  /// Full estimation run from `querier` with DdeOptions.seed = query_seed.
  Result<DensityEstimate> Estimate(NodeAddr querier, uint64_t query_seed);

  /// Hierarchical sketch convergecast from `querier` with the spec's
  /// sketch_levels and SketchAggregationOptions.seed = query_seed. The
  /// reply ships the compact sketch frame; the decoded estimate's CDF is
  /// regenerated from it bit-identically to the server's.
  Result<DensityEstimate> SketchEstimate(NodeAddr querier,
                                         uint64_t query_seed);

  Result<CountersReply> Counters();

  Status Shutdown();

 private:
  RpcChannel* channel_;
};

}  // namespace ringdde

#endif  // RINGDDE_CORE_RING_SERVICE_H_
