#ifndef RINGDDE_CORE_SKETCH_AGGREGATION_H_
#define RINGDDE_CORE_SKETCH_AGGREGATION_H_

#include <unordered_set>

#include "common/retry_policy.h"
#include "common/status.h"
#include "core/density_estimator.h"
#include "ring/chord_ring.h"
#include "stats/density_sketch.h"

namespace ringdde {

/// Hierarchical density estimation: a finger-tree convergecast of mergeable
/// fixed-size sketches.
///
/// Generalizes the TreeAggregator baseline (baselines/tree_aggregation.h)
/// from "ship every key into an exact histogram" to "merge constant-size
/// DensitySketches up the tree": the querier partitions the ring among its
/// fingers, each child recursively aggregates its sub-arc into ONE sketch,
/// and parents merge child sketches on the way back up. Depth is O(log n),
/// message count ~2(n−1), and — the point — every message is the same
/// fixed sketch frame regardless of how much data the subtree holds, so
/// the byte cost per estimate is ~2(n−1)·|sketch| instead of growing with
/// data volume or probe resolution.
///
/// Fault behavior reuses the PR3 degradation machinery: every edge is a
/// fallible TrySend with a per-edge RetryPolicy; an edge that exhausts its
/// retries orphans that child's whole subtree (its peers' data is simply
/// absent from the root sketch), and the returned estimate reports
/// probes_requested = alive peers, failed_probes = peers not merged — so
/// DensityEstimate::ConfidenceEpsilon() widens exactly as it does for
/// failed probes.
struct SketchAggregationOptions {
  /// Grid resolution K of every sketch in the tree: messages carry K+1
  /// knots, and rank error after depth-d merging is ≤ (d+1)/K.
  uint32_t sketch_levels = 64;

  /// Per-edge retry schedule (default: single attempt).
  RetryPolicy retry;

  /// Seed of the aggregator's private cost/fault context.
  uint64_t seed = 42;
};

class SketchAggregator {
 public:
  SketchAggregator(ChordRing* ring, SketchAggregationOptions options = {});

  /// Runs one full convergecast from `querier`. The returned estimate
  /// carries the merged sketch (estimate.sketch) and its CDF
  /// (estimate.cdf == sketch.ToCdf()), so wire encoding ships the compact
  /// sketch frame.
  Result<DensityEstimate> Estimate(NodeAddr querier);

  /// Peers whose data reached the root in the last Estimate() call.
  size_t peers_merged() const { return peers_merged_; }

  /// Tree edges that exhausted their retries in the last call (each
  /// orphans one subtree).
  uint64_t failed_edges() const { return failed_edges_; }

  const SketchAggregationOptions& options() const { return options_; }

  /// The per-query cost context this aggregator charges (PR4 model: all
  /// traffic lands here, then folds into the network totals per run).
  const CostContext& context() const { return ctx_; }

 private:
  /// Aggregates the sub-arc (coordinator, until] rooted at `coordinator`
  /// into `sink`; returns the number of peers merged into it.
  size_t Aggregate(NodeAddr coordinator, RingId until, DensitySketch* sink,
                   int depth);

  /// One fallible edge with the configured retry schedule. False once the
  /// attempts (or the backoff budget) are exhausted.
  bool SendWithRetry(NodeAddr from, NodeAddr to, uint64_t payload_bytes,
                     uint64_t hop_count);

  ChordRing* ring_;
  SketchAggregationOptions options_;
  size_t peers_merged_ = 0;
  uint64_t failed_edges_ = 0;
  uint64_t edge_seq_ = 0;
  std::unordered_set<NodeAddr> visited_;
  CostContext ctx_;
};

}  // namespace ringdde

#endif  // RINGDDE_CORE_SKETCH_AGGREGATION_H_
