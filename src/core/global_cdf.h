#ifndef RINGDDE_CORE_GLOBAL_CDF_H_
#define RINGDDE_CORE_GLOBAL_CDF_H_

#include <vector>

#include "common/status.h"
#include "core/local_summary.h"
#include "stats/piecewise_cdf.h"

namespace ringdde {

/// How to estimate the item mass of ring regions no probe covered.
enum class GapFillPolicy {
  /// Gap density = average of the two adjacent probed arcs' densities
  /// (wrapping at the domain boundary). Default: locally adaptive, so
  /// skewed distributions keep their shape between probes.
  kNeighborInterpolation,
  /// Gap density = global ratio estimate (total probed count over total
  /// probed width). Lower variance per gap but flattens local structure.
  kGlobalMean,
  /// Gaps carry zero mass. Ablation only: quantifies how much of the
  /// estimate is interpolation.
  kZero,
};

struct ReconstructionOptions {
  GapFillPolicy gap_fill = GapFillPolicy::kNeighborInterpolation;

  /// If true, each probed arc contributes its local quantile knots so the
  /// CDF is shaped *within* arcs; if false, each arc is a single linear
  /// ramp (count-only reconstruction — the E11 ablation).
  bool use_quantile_knots = true;

  /// Robustness against faulty or lying peers: when > 0, per-arc densities
  /// are winsorized at the [f, 1-f] quantiles of all observed densities —
  /// an arc claiming a density above the (1-f)-quantile has its count
  /// capped to that bound (and below-bound symmetric for deflation), and
  /// the clamped densities also drive gap filling. Bounds the damage any
  /// o(f·m) coalition of Byzantine responders can do, at the cost of
  /// clipping genuine extreme spikes (E15 quantifies both sides).
  /// 0 disables (trust all responses). Sensible values: 0.01–0.1.
  double density_winsor_fraction = 0.0;
};

/// Output of stitching probe responses into a global estimate.
struct ReconstructionResult {
  PiecewiseLinearCdf cdf;        ///< normalized estimate of the global CDF
  double estimated_total = 0.0;  ///< N̂: estimated global item count
  double covered_fraction = 0.0; ///< ring fraction the probes covered
  size_t segment_count = 0;      ///< arcs used (after split/clip/dedup)
};

/// Stitches probed arc summaries into a monotone piecewise-linear estimate
/// of the global CDF over the unit key domain.
///
/// Steps: (1) split the (at most one) arc wrapping the domain boundary into
/// two linear segments, apportioning its count by its local quantiles;
/// (2) sort segments and clip any stale-state overlaps; (3) lay down exact
/// cumulative increments across probed segments, with quantile shape knots;
/// (4) fill unprobed gaps per `gap_fill`; (5) normalize. The unnormalized
/// final mass is the Horvitz–Thompson-style estimate N̂ of the global item
/// count.
///
/// Fails on an empty summary set. A set whose counts are all zero yields
/// the uniform CDF with estimated_total = 0.
Result<ReconstructionResult> ReconstructGlobalCdf(
    const std::vector<LocalSummary>& summaries,
    const ReconstructionOptions& options = {});

}  // namespace ringdde

#endif  // RINGDDE_CORE_GLOBAL_CDF_H_
