#include "core/density_estimator.h"

#include <algorithm>
#include <cassert>

#include "core/inversion_sampler.h"
#include "stats/bounds.h"
#include "stats/metrics.h"

namespace ringdde {

double DensityEstimate::ConfidenceEpsilon(double delta) const {
  const size_t succeeded =
      probes_requested > failed_probes
          ? probes_requested - static_cast<size_t>(failed_probes)
          : 0;
  return DkwEpsilonDegraded(probes_requested, succeeded, delta);
}

Result<KernelDensityEstimator> DensityEstimate::SmoothedPdf(
    size_t samples, KernelType kernel) const {
  InversionSampler sampler(&cdf);
  Rng rng(0xD0E5);  // deterministic: same estimate -> same smooth view
  return KernelDensityEstimator::Build(
      sampler.SampleStratified(samples, rng), kernel);
}

DistributionFreeEstimator::DistributionFreeEstimator(ChordRing* ring,
                                                     DdeOptions options)
    : ring_(ring),
      options_(options),
      prober_(ring, ProbeOptions{options.local_quantiles,
                                 options.resolve_covered_locally,
                                 options.use_sketch_summaries,
                                 options.sketch_epsilon,
                                 options.density_sketch_levels,
                                 options.retry}),
      rng_(options.seed),
      ctx_(ring->network().MakeQueryContext(options.seed)) {
  assert(ring != nullptr);
  assert(options_.num_probes > 0);
  assert(options_.refinement_rounds >= 1);
}

DistributionFreeEstimator::DistributionFreeEstimator(const EpochView* view,
                                                     DdeOptions options)
    : ring_(nullptr),
      view_(view),
      options_(options),
      prober_(view, ProbeOptions{options.local_quantiles,
                                 options.resolve_covered_locally,
                                 options.use_sketch_summaries,
                                 options.sketch_epsilon,
                                 options.density_sketch_levels,
                                 options.retry}),
      rng_(options.seed),
      ctx_(view->network().MakeQueryContext(options.seed)) {
  assert(view != nullptr);
  assert(options_.num_probes > 0);
  assert(options_.refinement_rounds >= 1);
  // Fault windows are judged at the epoch's publish instant: the verdict
  // stream of a pinned query must not depend on how far a concurrent
  // mutator has advanced the (mutator-owned) virtual clock.
  ctx_.frozen_now = view->published_at();
}

Result<DensityEstimate> DistributionFreeEstimator::Estimate(
    NodeAddr querier) {
  std::vector<LocalSummary> summaries;
  return EstimateWith(querier, &summaries, options_.num_probes);
}

Result<DensityEstimate> DistributionFreeEstimator::EstimateAdaptive(
    NodeAddr querier, const AdaptiveOptions& adaptive) {
  if (!QuerierAlive(querier)) {
    return Status::InvalidArgument("querier is not an alive peer");
  }
  assert(adaptive.batch_size > 0);
  assert(adaptive.tolerance > 0.0);
  const CostCounters cost_before = ctx_.counters;
  const uint64_t lost_before = ctx_.lost_messages;
  const uint64_t failed_before = prober_.failed_probes();

  std::vector<LocalSummary> summaries;
  Result<ReconstructionResult> recon =
      Status::Internal("no batches executed");
  PiecewiseLinearCdf previous;  // uniform start
  bool have_previous = false;
  int calm_batches = 0;
  size_t probes_spent = 0;

  while (probes_spent < adaptive.max_probes) {
    const size_t batch =
        std::min(adaptive.batch_size, adaptive.max_probes - probes_spent);
    if (!have_previous) {
      // First batch: unbiased uniform positions.
      prober_.ProbeUniform(ctx_, querier, batch, rng_, &summaries);
    } else {
      // Later batches blend exploitation with exploration: half the
      // targets come from inversion on the current estimate (sharpen the
      // mass), half stay uniform (keep discovering what the estimate does
      // not know about yet). Pure inversion would re-hit covered arcs and
      // stall the movement signal into premature convergence.
      InversionSampler sampler(&previous);
      const size_t guided = batch / 2;
      std::vector<double> keys = sampler.SampleStratified(guided, rng_);
      std::vector<RingId> targets;
      targets.reserve(batch);
      for (double k : keys) targets.push_back(RingId::FromUnit(k));
      for (size_t i = guided; i < batch; ++i) {
        targets.push_back(RingId(rng_.NextU64()));
      }
      prober_.ProbeTargets(ctx_, querier, targets, &summaries);
    }
    probes_spent += batch;
    if (summaries.empty()) {
      return Status::Unavailable("all probes failed; no summaries");
    }
    recon = ReconstructGlobalCdf(summaries, options_.reconstruction);
    if (!recon.ok()) return recon.status();

    if (have_previous) {
      const double movement =
          SupDistanceCdf(recon->cdf, previous, 0.0, 1.0, /*grid=*/512);
      calm_batches = movement <= adaptive.tolerance ? calm_batches + 1 : 0;
      if (calm_batches >= adaptive.patience) break;
    }
    previous = recon->cdf;
    have_previous = true;
  }
  if (!recon.ok()) return recon.status();  // max_probes == 0

  DensityEstimate estimate;
  estimate.cdf = std::move(recon->cdf);
  estimate.estimated_total_items = recon->estimated_total;
  estimate.peers_probed = summaries.size();
  estimate.covered_fraction = recon->covered_fraction;
  estimate.cost = ctx_.counters - cost_before;
  estimate.probes_requested = probes_spent;
  estimate.failed_probes = prober_.failed_probes() - failed_before;
  estimate.retries = estimate.cost.retries;
  estimate.timeouts = estimate.cost.timeouts;
  estimate.produced_at = ProducedAt();
  // Fold this run's cost into the deployment-wide totals so shared-counter
  // observers still account for all traffic.
  net().Accumulate(estimate.cost, ctx_.lost_messages - lost_before);
  return estimate;
}

Result<DensityEstimate> DistributionFreeEstimator::EstimateWith(
    NodeAddr querier, std::vector<LocalSummary>* carry_over,
    size_t fresh_probes) {
  if (!QuerierAlive(querier)) {
    return Status::InvalidArgument("querier is not an alive peer");
  }
  const CostCounters cost_before = ctx_.counters;
  const uint64_t lost_before = ctx_.lost_messages;
  const uint64_t failed_before = prober_.failed_probes();

  const int rounds = options_.refinement_rounds;
  // Split the budget evenly across rounds; round 1 gets the remainder.
  const size_t per_round = fresh_probes / static_cast<size_t>(rounds);
  const size_t first_round =
      fresh_probes - per_round * static_cast<size_t>(rounds - 1);

  // Round 1: uniform positions.
  prober_.ProbeUniform(ctx_, querier, first_round, rng_, carry_over);
  if (carry_over->empty()) {
    return Status::Unavailable("all probes failed; no summaries collected");
  }
  Result<ReconstructionResult> recon =
      ReconstructGlobalCdf(*carry_over, options_.reconstruction);
  if (!recon.ok()) return recon.status();

  // Refinement rounds: inversion-guided targets from the current estimate.
  for (int r = 1; r < rounds && per_round > 0; ++r) {
    InversionSampler sampler(&recon->cdf);
    const std::vector<double> keys =
        sampler.SampleStratified(per_round, rng_);
    std::vector<RingId> targets;
    targets.reserve(keys.size());
    for (double k : keys) targets.push_back(RingId::FromUnit(k));
    const size_t before = carry_over->size();
    prober_.ProbeTargets(ctx_, querier, targets, carry_over);
    if (carry_over->size() == before) continue;  // everything was covered
    recon = ReconstructGlobalCdf(*carry_over, options_.reconstruction);
    if (!recon.ok()) return recon.status();
  }

  DensityEstimate estimate;
  estimate.cdf = std::move(recon->cdf);
  estimate.estimated_total_items = recon->estimated_total;
  estimate.peers_probed = carry_over->size();
  estimate.covered_fraction = recon->covered_fraction;
  estimate.cost = ctx_.counters - cost_before;
  estimate.probes_requested = fresh_probes;
  estimate.failed_probes = prober_.failed_probes() - failed_before;
  estimate.retries = estimate.cost.retries;
  estimate.timeouts = estimate.cost.timeouts;
  estimate.produced_at = ProducedAt();
  // Fold this run's cost into the deployment-wide totals so shared-counter
  // observers still account for all traffic.
  net().Accumulate(estimate.cost, ctx_.lost_messages - lost_before);
  return estimate;
}

}  // namespace ringdde
