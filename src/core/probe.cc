#include "core/probe.h"

#include <cassert>
#include <unordered_set>

#include "core/wire.h"

namespace ringdde {

CdfProber::CdfProber(ChordRing* ring, ProbeOptions options)
    : ring_(ring), options_(options) {
  assert(ring != nullptr);
  assert(options_.num_quantiles >= 2);
}

Result<LocalSummary> CdfProber::Probe(NodeAddr querier, RingId target) {
  Result<NodeAddr> owner = ring_->Lookup(querier, target);
  if (!owner.ok()) {
    ++failed_probes_;
    return owner.status();
  }
  Node* node = ring_->GetNode(*owner);
  if (node == nullptr || !node->alive()) {
    // The lookup's final answer went stale before we could contact it.
    ++failed_probes_;
    return Status::Unavailable("probed owner died");
  }
  LocalSummary summary =
      options_.use_sketch_summaries
          ? ComputeLocalSummarySketched(*node, options_.num_quantiles,
                                        options_.sketch_epsilon)
          : ComputeLocalSummary(*node, options_.num_quantiles);
  // Summary request + response, charged at the response's REAL wire size.
  ring_->network().Send(querier, *owner, 16, /*hop_count=*/1);
  ring_->network().Send(*owner, querier, EncodedSummarySize(summary),
                        /*hop_count=*/0);
  return summary;
}

void CdfProber::ProbeTargets(NodeAddr querier,
                             const std::vector<RingId>& targets,
                             std::vector<LocalSummary>* out) {
  std::unordered_set<NodeAddr> seen;
  seen.reserve(out->size() + targets.size());
  for (const LocalSummary& s : *out) seen.insert(s.addr);
  for (RingId t : targets) {
    // Skip positions whose owner we already hold: the owner is resolvable
    // locally against fetched arcs, so no message is spent.
    if (options_.skip_covered_targets) {
      bool covered = false;
      for (const LocalSummary& s : *out) {
        if (InArcOpenClosed(t, s.arc_lo, s.arc_hi)) {
          covered = true;
          break;
        }
      }
      if (covered) continue;
    }
    Result<LocalSummary> r = Probe(querier, t);
    if (!r.ok()) continue;
    if (seen.insert(r->addr).second) {
      out->push_back(std::move(*r));
    } else {
      // Re-probed peer: keep the fresher summary (matters when covered
      // targets are probed anyway under churn).
      for (LocalSummary& s : *out) {
        if (s.addr == r->addr) {
          s = std::move(*r);
          break;
        }
      }
    }
  }
}

void CdfProber::ProbeUniform(NodeAddr querier, size_t m, Rng& rng,
                             std::vector<LocalSummary>* out) {
  std::vector<RingId> targets;
  targets.reserve(m);
  for (size_t i = 0; i < m; ++i) targets.push_back(RingId(rng.NextU64()));
  ProbeTargets(querier, targets, out);
}

}  // namespace ringdde
