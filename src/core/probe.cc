#include "core/probe.h"

#include <cassert>
#include <unordered_set>

#include "core/wire.h"

namespace ringdde {

CdfProber::CdfProber(ChordRing* ring, ProbeOptions options)
    : ring_(ring), options_(options) {
  assert(ring != nullptr);
  assert(options_.num_quantiles >= 2);
}

namespace {

/// Only transient failures are worth re-attempting; InvalidArgument (dead
/// querier) or an empty ring will not heal with backoff.
bool IsTransient(const Status& s) {
  return s.IsUnavailable() || s.IsTimedOut();
}

}  // namespace

Result<LocalSummary> CdfProber::ProbeOnce(NodeAddr querier, RingId target) {
  Result<NodeAddr> owner = ring_->Lookup(querier, target);
  if (!owner.ok()) return owner.status();
  Node* node = ring_->GetNode(*owner);
  if (node == nullptr || !node->alive()) {
    // The lookup's final answer went stale before we could contact it.
    return Status::Unavailable("probed owner died");
  }
  LocalSummary summary =
      options_.use_sketch_summaries
          ? ComputeLocalSummarySketched(*node, options_.num_quantiles,
                                        options_.sketch_epsilon)
          : ComputeLocalSummary(*node, options_.num_quantiles);
  // Summary request + response, charged at the response's REAL wire size.
  // Both legs are fallible: a fault-crashed owner or a dropped packet
  // surfaces here as a non-ok Result instead of free retransmission.
  Result<double> req = ring_->network().TrySend(querier, *owner, 16,
                                                /*hop_count=*/1);
  if (!req.ok()) return req.status();
  Result<double> resp = ring_->network().TrySend(
      *owner, querier, EncodedSummarySize(summary), /*hop_count=*/0);
  if (!resp.ok()) return resp.status();
  return summary;
}

Result<LocalSummary> CdfProber::Probe(NodeAddr querier, RingId target) {
  const RetryPolicy& retry = options_.retry;
  const uint64_t task = probe_seq_++;
  double waited = 0.0;
  Status last = Status::Internal("probe made no attempt");
  for (int attempt = 1; attempt <= retry.max_attempts; ++attempt) {
    if (attempt > 1) {
      const double backoff = retry.BackoffSeconds(task, attempt - 1);
      if (waited + backoff > retry.budget_seconds) {
        last = Status::TimedOut("probe retry budget exhausted");
        break;
      }
      waited += backoff;
      ++retries_;
      ring_->network().RecordRetry();
      ring_->network().ChargeWait(backoff);
    }
    Result<LocalSummary> r = ProbeOnce(querier, target);
    if (r.ok()) return r;
    last = r.status();
    if (!IsTransient(last)) break;
  }
  ++failed_probes_;
  ring_->network().RecordFailedProbe();
  return last;
}

void CdfProber::ProbeTargets(NodeAddr querier,
                             const std::vector<RingId>& targets,
                             std::vector<LocalSummary>* out) {
  std::unordered_set<NodeAddr> seen;
  seen.reserve(out->size() + targets.size());
  for (const LocalSummary& s : *out) seen.insert(s.addr);
  for (RingId t : targets) {
    // Skip positions whose owner we already hold: the owner is resolvable
    // locally against fetched arcs, so no message is spent.
    if (options_.skip_covered_targets) {
      bool covered = false;
      for (const LocalSummary& s : *out) {
        if (InArcOpenClosed(t, s.arc_lo, s.arc_hi)) {
          covered = true;
          break;
        }
      }
      if (covered) continue;
    }
    Result<LocalSummary> r = Probe(querier, t);
    if (!r.ok()) continue;
    if (seen.insert(r->addr).second) {
      out->push_back(std::move(*r));
    } else {
      // Re-probed peer: keep the fresher summary (matters when covered
      // targets are probed anyway under churn).
      for (LocalSummary& s : *out) {
        if (s.addr == r->addr) {
          s = std::move(*r);
          break;
        }
      }
    }
  }
}

void CdfProber::ProbeUniform(NodeAddr querier, size_t m, Rng& rng,
                             std::vector<LocalSummary>* out) {
  std::vector<RingId> targets;
  targets.reserve(m);
  for (size_t i = 0; i < m; ++i) targets.push_back(RingId(rng.NextU64()));
  ProbeTargets(querier, targets, out);
}

}  // namespace ringdde
