#include "core/probe.h"

#include <cassert>
#include <unordered_set>

#include "core/wire.h"

namespace ringdde {

void ArcCoverageSet::AddClosed(uint64_t a, uint64_t b) {
  // Absorb a predecessor interval overlapping or touching [a, b]...
  auto it = intervals_.lower_bound(a);
  if (it != intervals_.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= a || (a > 0 && prev->second == a - 1)) {
      a = prev->first;
      if (prev->second > b) b = prev->second;
      intervals_.erase(prev);
      it = intervals_.lower_bound(a);
    }
  }
  // ...and every successor starting inside or just past it.
  while (it != intervals_.end() &&
         (it->first <= b || (b < UINT64_MAX && it->first == b + 1))) {
    if (it->second > b) b = it->second;
    it = intervals_.erase(it);
  }
  intervals_.emplace(a, b);
}

void ArcCoverageSet::Add(RingId lo, RingId hi) {
  if (lo == hi) {
    // InArcOpenClosed convention: a degenerate arc covers the full ring.
    intervals_.clear();
    intervals_.emplace(0, UINT64_MAX);
    return;
  }
  if (lo.value < hi.value) {
    AddClosed(lo.value + 1, hi.value);
  } else {
    // The arc wraps past 2^64: (lo, MAX] ∪ [0, hi].
    if (lo.value != UINT64_MAX) AddClosed(lo.value + 1, UINT64_MAX);
    AddClosed(0, hi.value);
  }
}

bool ArcCoverageSet::Contains(RingId t) const {
  auto it = intervals_.upper_bound(t.value);
  if (it == intervals_.begin()) return false;
  --it;
  return t.value <= it->second;
}

CdfProber::CdfProber(ChordRing* ring, ProbeOptions options)
    : ring_(ring), options_(options) {
  assert(ring != nullptr);
  assert(options_.num_quantiles >= 2);
}

CdfProber::CdfProber(const EpochView* view, ProbeOptions options)
    : ring_(nullptr), view_(view), options_(options) {
  assert(view != nullptr);
  assert(options_.num_quantiles >= 2);
}

namespace {

/// Only transient failures are worth re-attempting; InvalidArgument (dead
/// querier) or an empty ring will not heal with backoff.
bool IsTransient(const Status& s) {
  return s.IsUnavailable() || s.IsTimedOut();
}

}  // namespace

Result<LocalSummary> CdfProber::ProbeOnce(CostContext& ctx, NodeAddr querier,
                                          RingId target) {
  // Resolve the owner and compute its summary against whichever state
  // source this prober reads — the live ring, or an immutable epoch view.
  // Both branches run the same lookup algorithm and the same summary
  // arithmetic (ComputeLocalSummaryOf instantiated over Node respectively
  // EpochNodeView), so on a quiescent ring they are bit-identical.
  NodeAddr owner_addr = 0;
  LocalSummary summary;
  if (view_ != nullptr) {
    Result<NodeAddr> owner = view_->Lookup(ctx, querier, target);
    if (!owner.ok()) return owner.status();
    const EpochNodeView* node = view_->ViewOf(*owner);
    if (node == nullptr) {
      return Status::Unavailable("probed owner died");
    }
    owner_addr = *owner;
    summary =
        options_.density_sketch_levels > 0
            ? ComputeLocalSummaryWithDensitySketchOf(
                  *node, options_.density_sketch_levels)
            : options_.use_sketch_summaries
                  ? ComputeLocalSummarySketchedOf(*node, options_.num_quantiles,
                                                  options_.sketch_epsilon)
                  : ComputeLocalSummaryOf(*node, options_.num_quantiles);
  } else {
    Result<NodeAddr> owner = ring_->Lookup(ctx, querier, target);
    if (!owner.ok()) return owner.status();
    const Node* node =
        static_cast<const ChordRing*>(ring_)->GetNode(*owner);
    if (node == nullptr || !node->alive()) {
      // The lookup's final answer went stale before we could contact it.
      return Status::Unavailable("probed owner died");
    }
    owner_addr = *owner;
    summary =
        options_.density_sketch_levels > 0
            ? ComputeLocalSummaryWithDensitySketch(
                  *node, options_.density_sketch_levels)
            : options_.use_sketch_summaries
                  ? ComputeLocalSummarySketched(*node, options_.num_quantiles,
                                                options_.sketch_epsilon)
                  : ComputeLocalSummary(*node, options_.num_quantiles);
  }
  // Summary request + response, charged at the response's REAL wire size.
  // Both legs are fallible: a fault-crashed owner or a dropped packet
  // surfaces here as a non-ok Result instead of free retransmission.
  Result<double> req = net().TrySend(ctx, querier, owner_addr, 16,
                                     /*hop_count=*/1);
  if (!req.ok()) return req.status();
  Result<double> resp = net().TrySend(
      ctx, owner_addr, querier, EncodedSummarySize(summary), /*hop_count=*/0);
  if (!resp.ok()) return resp.status();
  return summary;
}

Result<LocalSummary> CdfProber::Probe(CostContext& ctx, NodeAddr querier,
                                      RingId target) {
  const RetryPolicy& retry = options_.retry;
  const uint64_t task = probe_seq_++;
  double waited = 0.0;
  Status last = Status::Internal("probe made no attempt");
  for (int attempt = 1; attempt <= retry.max_attempts; ++attempt) {
    if (attempt > 1) {
      const double backoff = retry.BackoffSeconds(task, attempt - 1);
      if (waited + backoff > retry.budget_seconds) {
        last = Status::TimedOut("probe retry budget exhausted");
        break;
      }
      waited += backoff;
      ++retries_;
      net().RecordRetry(ctx);
      net().ChargeWait(ctx, backoff);
    }
    Result<LocalSummary> r = ProbeOnce(ctx, querier, target);
    if (r.ok()) return r;
    last = r.status();
    if (!IsTransient(last)) break;
  }
  ++failed_probes_;
  net().RecordFailedProbe(ctx);
  return last;
}

void CdfProber::ProbeTargets(CostContext& ctx, NodeAddr querier,
                             const std::vector<RingId>& targets,
                             std::vector<LocalSummary>* out) {
  std::unordered_set<NodeAddr> seen;
  seen.reserve(out->size() + targets.size());
  // Coverage of all currently held arcs, maintained incrementally: a
  // target inside it resolves locally, exactly as the old per-target scan
  // over *out decided — but in O(log m) instead of O(m).
  ArcCoverageSet covered;
  for (const LocalSummary& s : *out) {
    seen.insert(s.addr);
    covered.Add(s.arc_lo, s.arc_hi);
  }
  for (RingId t : targets) {
    // Skip positions whose owner we already hold: the owner is resolvable
    // locally against fetched arcs, so no message is spent.
    if (options_.skip_covered_targets && covered.Contains(t)) continue;
    Result<LocalSummary> r = Probe(ctx, querier, t);
    if (!r.ok()) continue;
    if (seen.insert(r->addr).second) {
      covered.Add(r->arc_lo, r->arc_hi);
      out->push_back(std::move(*r));
    } else {
      // Re-probed peer: keep the fresher summary (matters when covered
      // targets are probed anyway under churn).
      for (LocalSummary& s : *out) {
        if (s.addr == r->addr) {
          s = std::move(*r);
          break;
        }
      }
      // The replaced arc may have shrunk (ownership moved under churn);
      // rebuild coverage from scratch so stale stretches are dropped.
      covered.Clear();
      for (const LocalSummary& s : *out) covered.Add(s.arc_lo, s.arc_hi);
    }
  }
}

void CdfProber::ProbeUniform(CostContext& ctx, NodeAddr querier, size_t m,
                             Rng& rng, std::vector<LocalSummary>* out) {
  std::vector<RingId> targets;
  targets.reserve(m);
  for (size_t i = 0; i < m; ++i) targets.push_back(RingId(rng.NextU64()));
  ProbeTargets(ctx, querier, targets, out);
}

}  // namespace ringdde
