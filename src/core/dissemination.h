#ifndef RINGDDE_CORE_DISSEMINATION_H_
#define RINGDDE_CORE_DISSEMINATION_H_

#include <unordered_map>

#include "common/status.h"
#include "core/density_estimator.h"
#include "ring/chord_ring.h"

namespace ringdde {

/// Estimate dissemination: share ONE peer's m-probe investment ring-wide.
///
/// The querier encodes its DensityEstimate (core/wire.h) and broadcasts it
/// over the Chord finger tree: it partitions the ring among its fingers,
/// each finger re-broadcasts within its sub-arc. Every alive peer receives
/// the estimate in O(log n) hops for ~n-1 messages of |encoded cdf| bytes —
/// turning the "gossip serves everyone" argument around: probe once
/// (O(m log n)), broadcast once (O(n)), and everyone holds the SAME
/// consistent estimate, instead of n noisy per-peer gossip views.
///
/// Received estimates are stored per-peer in this object (the simulation
/// stand-in for each peer's application state).
class EstimateDisseminator {
 public:
  explicit EstimateDisseminator(ChordRing* ring);

  /// Broadcasts `estimate` from `origin` to every reachable alive peer.
  /// Returns the number of peers that received it (including the origin).
  /// Charges one message of the encoded estimate's size per tree edge.
  Result<size_t> Broadcast(NodeAddr origin, const DensityEstimate& estimate);

  /// The estimate a peer currently holds, if any. Decoded from the wire
  /// bytes, so what peers hold is exactly what survived encoding.
  const DensityEstimate* EstimateAt(NodeAddr addr) const;

  /// Peers holding an estimate.
  size_t holder_count() const { return received_.size(); }

  /// Drops all delivered estimates (e.g. before re-broadcasting).
  void Clear() { received_.clear(); }

 private:
  void Relay(NodeAddr coordinator, RingId until,
             const std::vector<uint8_t>& payload, int depth,
             size_t* delivered);

  ChordRing* ring_;
  std::unordered_map<NodeAddr, DensityEstimate> received_;
};

}  // namespace ringdde

#endif  // RINGDDE_CORE_DISSEMINATION_H_
