#ifndef RINGDDE_CORE_DISSEMINATION_H_
#define RINGDDE_CORE_DISSEMINATION_H_

#include <unordered_map>

#include "common/retry_policy.h"
#include "common/status.h"
#include "core/density_estimator.h"
#include "ring/chord_ring.h"

namespace ringdde {

/// Estimate dissemination: share ONE peer's m-probe investment ring-wide.
///
/// The querier encodes its DensityEstimate (core/wire.h) and broadcasts it
/// over the Chord finger tree: it partitions the ring among its fingers,
/// each finger re-broadcasts within its sub-arc. Every alive peer receives
/// the estimate in O(log n) hops for ~n-1 messages of |encoded cdf| bytes —
/// turning the "gossip serves everyone" argument around: probe once
/// (O(m log n)), broadcast once (O(n)), and everyone holds the SAME
/// consistent estimate, instead of n noisy per-peer gossip views.
///
/// Received estimates are stored per-peer in this object (the simulation
/// stand-in for each peer's application state).
class EstimateDisseminator {
 public:
  /// `retry` governs re-attempts of failed tree edges under an attached
  /// FaultInjector; the default single-attempt policy reproduces the
  /// historical reliable-broadcast behavior exactly.
  explicit EstimateDisseminator(ChordRing* ring, RetryPolicy retry = {});

  /// Broadcasts `estimate` from `origin` to every reachable alive peer,
  /// charging all edge traffic to `ctx`.
  /// Returns the number of peers that received it (including the origin).
  /// Charges one message of the encoded estimate's size per tree edge.
  /// Under faults, an edge whose retry budget is exhausted orphans its
  /// whole sub-arc: delivery degrades gracefully (holder_count() < n)
  /// instead of blocking — the dropped peers catch up at the next
  /// broadcast. Read-only on ring state; delivery bookkeeping lives in
  /// this object, so concurrent broadcasts need separate disseminators.
  Result<size_t> Broadcast(CostContext& ctx, NodeAddr origin,
                           const DensityEstimate& estimate);
  Result<size_t> Broadcast(NodeAddr origin, const DensityEstimate& estimate) {
    return Broadcast(ring_->transport().shared_context(), origin, estimate);
  }

  /// The estimate a peer currently holds, if any. Decoded from the wire
  /// bytes, so what peers hold is exactly what survived encoding.
  const DensityEstimate* EstimateAt(NodeAddr addr) const;

  /// Peers holding an estimate.
  size_t holder_count() const { return received_.size(); }

  /// Drops all delivered estimates (e.g. before re-broadcasting).
  void Clear() { received_.clear(); }

  /// Tree edges abandoned after exhausting the retry policy (their
  /// sub-arcs went undelivered) since construction.
  uint64_t failed_edges() const { return failed_edges_; }

 private:
  void Relay(CostContext& ctx, NodeAddr coordinator, RingId until,
             const std::vector<uint8_t>& payload, int depth,
             size_t* delivered);

  ChordRing* ring_;
  RetryPolicy retry_;
  uint64_t failed_edges_ = 0;
  /// Jitter task index, one per attempted tree edge.
  uint64_t edge_seq_ = 0;
  std::unordered_map<NodeAddr, DensityEstimate> received_;
};

}  // namespace ringdde

#endif  // RINGDDE_CORE_DISSEMINATION_H_
