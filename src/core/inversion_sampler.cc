#include "core/inversion_sampler.h"

#include <cassert>

namespace ringdde {

InversionSampler::InversionSampler(const PiecewiseLinearCdf* cdf)
    : cdf_(cdf) {
  assert(cdf != nullptr);
}

double InversionSampler::Sample(Rng& rng) const {
  return cdf_->Inverse(rng.UniformDouble());
}

std::vector<double> InversionSampler::SampleMany(size_t k, Rng& rng) const {
  std::vector<double> out;
  out.reserve(k);
  for (size_t i = 0; i < k; ++i) out.push_back(Sample(rng));
  return out;
}

std::vector<double> InversionSampler::SampleStratified(size_t k,
                                                       Rng& rng) const {
  std::vector<double> out;
  out.reserve(k);
  const double kd = static_cast<double>(k);
  for (size_t i = 0; i < k; ++i) {
    const double u = (static_cast<double>(i) + rng.UniformDouble()) / kd;
    out.push_back(cdf_->Inverse(u));
  }
  return out;
}

std::vector<double> InversionSampler::EvenQuantiles(size_t k) const {
  std::vector<double> out;
  out.reserve(k);
  const double kd = static_cast<double>(k);
  for (size_t i = 0; i < k; ++i) {
    out.push_back(cdf_->Inverse((static_cast<double>(i) + 0.5) / kd));
  }
  return out;
}

}  // namespace ringdde
