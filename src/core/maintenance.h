#ifndef RINGDDE_CORE_MAINTENANCE_H_
#define RINGDDE_CORE_MAINTENANCE_H_

#include <optional>
#include <vector>

#include "common/retry_policy.h"
#include "core/density_estimator.h"

namespace ringdde {

/// Refresh policy for keeping an estimate current in a dynamic network.
struct MaintenanceOptions {
  /// Seconds between refreshes.
  double refresh_period_seconds = 60.0;

  /// If true, each refresh re-probes only `incremental_fraction` of the
  /// probe budget and splices the fresh summaries over the oldest cached
  /// ones; if false, every refresh is a full re-estimation.
  bool incremental = false;

  /// Fraction of the probe budget refreshed per period in incremental mode.
  double incremental_fraction = 0.25;

  /// Re-attempt policy for a refresh whose estimation failed transiently
  /// (Unavailable/TimedOut under faults). The default single attempt keeps
  /// the historical fail-and-wait-for-next-period behavior.
  RetryPolicy retry;
};

/// Keeps one peer's density estimate fresh under churn and data updates by
/// re-running the estimator on the shared event queue.
///
/// Incremental mode amortizes cost: summaries age in a FIFO pool and only
/// the oldest slice is re-probed each period, trading staleness for
/// messages (measured in E5). Summaries from peers that have since departed
/// are evicted eagerly on every refresh.
class EstimateMaintainer {
 public:
  EstimateMaintainer(ChordRing* ring, DdeOptions estimator_options,
                     MaintenanceOptions options = {});

  /// Runs the first estimation immediately and schedules periodic
  /// refreshes for `owner`. Call once.
  Status Start(NodeAddr owner);

  /// Latest successful estimate, if any.
  const std::optional<DensityEstimate>& current() const { return current_; }

  /// Seconds since the latest successful estimate (infinity if none).
  double StalenessSeconds() const;

  uint64_t refreshes() const { return refreshes_; }
  uint64_t failed_refreshes() const { return failed_refreshes_; }

 private:
  void Refresh();
  void ScheduleNext();

  ChordRing* ring_;
  DistributionFreeEstimator estimator_;
  MaintenanceOptions options_;
  NodeAddr owner_ = 0;
  bool started_ = false;

  std::optional<DensityEstimate> current_;
  std::vector<LocalSummary> summary_pool_;  // FIFO: oldest first
  uint64_t refreshes_ = 0;
  uint64_t failed_refreshes_ = 0;
  /// Jitter task index, one per refresh invocation.
  uint64_t refresh_seq_ = 0;
};

}  // namespace ringdde

#endif  // RINGDDE_CORE_MAINTENANCE_H_
