#include "core/bivariate.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_set>

#include "common/math_util.h"
#include "core/global_cdf.h"

namespace ringdde {

// --- BivariateStore ---------------------------------------------------------

BivariateStore::BivariateStore(ChordRing* ring) : ring_(ring) {
  assert(ring != nullptr);
}

Status BivariateStore::BulkLoad(const std::vector<XY>& items) {
  std::vector<double> x_keys;
  x_keys.reserve(items.size());
  for (const XY& item : items) {
    Result<NodeAddr> owner =
        ring_->OracleOwner(RingId::FromUnit(item.x));
    if (!owner.ok()) return owner.status();
    items_[*owner].push_back(item);
    x_keys.push_back(item.x);
  }
  ring_->InsertDatasetBulk(x_keys);
  total_items_ += items.size();
  return Status::OK();
}

const std::vector<XY>& BivariateStore::ItemsAt(NodeAddr addr) const {
  auto it = items_.find(addr);
  return it == items_.end() ? empty_ : it->second;
}

uint64_t BivariateStore::ExactRectangleCount(double x1, double x2, double y1,
                                             double y2) const {
  if (x2 < x1) std::swap(x1, x2);
  if (y2 < y1) std::swap(y1, y2);
  uint64_t count = 0;
  for (const auto& [addr, items] : items_) {
    for (const XY& item : items) {
      if (item.x >= x1 && item.x <= x2 && item.y >= y1 && item.y <= y2) {
        ++count;
      }
    }
  }
  return count;
}

// --- BivariateEstimate -------------------------------------------------------

double BivariateEstimate::ConditionalYCdf(double x, double y) const {
  if (slices_.empty()) return Clamp(y, 0.0, 1.0);  // uninformative
  if (x <= slices_.front().x_center) {
    return slices_.front().y_cdf.Evaluate(y);
  }
  if (x >= slices_.back().x_center) {
    return slices_.back().y_cdf.Evaluate(y);
  }
  auto it = std::lower_bound(
      slices_.begin(), slices_.end(), x,
      [](const Slice& s, double v) { return s.x_center < v; });
  const Slice& hi = *it;
  const Slice& lo = *(it - 1);
  const double t = (x - lo.x_center) / (hi.x_center - lo.x_center);
  return Lerp(lo.y_cdf.Evaluate(y), hi.y_cdf.Evaluate(y), t);
}

double BivariateEstimate::JointCdf(double x, double y) const {
  return RectangleMass(0.0, x, 0.0, y);
}

double BivariateEstimate::RectangleMass(double x1, double x2, double y1,
                                        double y2) const {
  if (x2 < x1) std::swap(x1, x2);
  if (y2 < y1) std::swap(y1, y2);
  x1 = Clamp(x1, 0.0, 1.0);
  x2 = Clamp(x2, 0.0, 1.0);
  if (x2 <= x1) return 0.0;
  // ∫ over [x1,x2] of f_X(t)·(G(y2|t) - G(y1|t)) dt, midpoint rule with
  // the x-marginal supplying exact strip masses.
  constexpr int kSteps = 256;
  KahanSum mass;
  double prev_fx = x_cdf_.Evaluate(x1);
  for (int i = 1; i <= kSteps; ++i) {
    const double t_hi = Lerp(x1, x2, static_cast<double>(i) / kSteps);
    const double fx = x_cdf_.Evaluate(t_hi);
    const double strip = fx - prev_fx;
    if (strip > 0.0) {
      const double t_mid =
          Lerp(x1, x2, (static_cast<double>(i) - 0.5) / kSteps);
      mass.Add(strip * (ConditionalYCdf(t_mid, y2) -
                        ConditionalYCdf(t_mid, y1)));
    }
    prev_fx = fx;
  }
  return Clamp(mass.value(), 0.0, 1.0);
}

// --- BivariateEstimator -------------------------------------------------------

BivariateEstimator::BivariateEstimator(ChordRing* ring,
                                       const BivariateStore* store,
                                       BivariateOptions options)
    : ring_(ring), store_(store), options_(options), rng_(options.seed) {
  assert(ring != nullptr && store != nullptr);
  assert(options_.num_probes > 0);
  assert(options_.x_quantiles >= 2 && options_.y_quantiles >= 2);
}

Result<BivariateEstimate> BivariateEstimator::Estimate(NodeAddr querier) {
  if (!ring_->IsAlive(querier)) {
    return Status::InvalidArgument("querier is not an alive peer");
  }
  CostScope scope(ring_->network().counters());

  std::vector<BivariateSummary> summaries;
  std::unordered_set<NodeAddr> seen;
  for (size_t i = 0; i < options_.num_probes; ++i) {
    const RingId target(rng_.NextU64());
    Result<NodeAddr> owner = ring_->Lookup(querier, target);
    if (!owner.ok()) continue;
    Node* node = ring_->GetNode(*owner);
    if (node == nullptr || !node->alive()) continue;
    if (!seen.insert(*owner).second) continue;

    BivariateSummary s;
    s.x = ComputeLocalSummary(*node, options_.x_quantiles);
    std::vector<double> ys;
    for (const XY& item : store_->ItemsAt(*owner)) ys.push_back(item.y);
    if (!ys.empty()) {
      std::sort(ys.begin(), ys.end());
      const double q1 = static_cast<double>(options_.y_quantiles - 1);
      for (int q = 0; q < options_.y_quantiles; ++q) {
        const double h =
            static_cast<double>(q) / q1 * static_cast<double>(ys.size() - 1);
        const size_t lo = static_cast<size_t>(h);
        const size_t hi = std::min(lo + 1, ys.size() - 1);
        s.y_quantiles.push_back(
            Lerp(ys[lo], ys[hi], h - static_cast<double>(lo)));
      }
    }
    ring_->network().Send(querier, *owner, 16, /*hop_count=*/1);
    ring_->network().Send(*owner, querier, s.EncodedBytes(),
                          /*hop_count=*/0);
    summaries.push_back(std::move(s));
  }
  if (summaries.empty()) {
    return Status::Unavailable("all probes failed");
  }

  // Marginal x reconstruction reuses the univariate machinery.
  std::vector<LocalSummary> x_summaries;
  x_summaries.reserve(summaries.size());
  for (const auto& s : summaries) x_summaries.push_back(s.x);
  Result<ReconstructionResult> recon = ReconstructGlobalCdf(x_summaries);
  if (!recon.ok()) return recon.status();

  BivariateEstimate estimate;
  estimate.x_cdf_ = std::move(recon->cdf);
  estimate.estimated_total_ = recon->estimated_total;

  // Conditional slices at the probed arcs' x centers of mass.
  for (const BivariateSummary& s : summaries) {
    if (s.x.item_count == 0 || s.y_quantiles.empty()) continue;
    BivariateEstimate::Slice slice;
    // Center of the peer's x mass: its median x quantile.
    slice.x_center = s.x.quantiles[s.x.quantiles.size() / 2];
    std::vector<PiecewiseLinearCdf::Knot> knots;
    const double q1 = static_cast<double>(s.y_quantiles.size() - 1);
    for (size_t q = 0; q < s.y_quantiles.size(); ++q) {
      knots.push_back(
          {s.y_quantiles[q], static_cast<double>(q) / std::max(q1, 1.0)});
    }
    PiecewiseLinearCdf::MakeMonotone(knots);
    if (knots.size() < 2) {
      // Degenerate (all y identical): a steep ramp at the atom.
      const double y = knots.empty() ? 0.5 : knots.front().x;
      knots = {{y - 1e-9, 0.0}, {y + 1e-9, 1.0}};
    }
    knots.front().f = 0.0;
    knots.back().f = 1.0;
    Result<PiecewiseLinearCdf> y_cdf =
        PiecewiseLinearCdf::FromKnots(std::move(knots));
    if (!y_cdf.ok()) continue;
    slice.y_cdf = std::move(*y_cdf);
    estimate.slices_.push_back(std::move(slice));
  }
  std::sort(estimate.slices_.begin(), estimate.slices_.end(),
            [](const BivariateEstimate::Slice& a,
               const BivariateEstimate::Slice& b) {
              return a.x_center < b.x_center;
            });
  // Equal centers break interpolation; nudge duplicates apart.
  for (size_t i = 1; i < estimate.slices_.size(); ++i) {
    if (estimate.slices_[i].x_center <= estimate.slices_[i - 1].x_center) {
      estimate.slices_[i].x_center =
          std::nextafter(estimate.slices_[i - 1].x_center, 1e300);
    }
  }

  estimate.peers_probed = summaries.size();
  estimate.cost = scope.Delta();
  return estimate;
}

}  // namespace ringdde
