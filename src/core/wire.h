#ifndef RINGDDE_CORE_WIRE_H_
#define RINGDDE_CORE_WIRE_H_

#include "common/codec.h"
#include "common/status.h"
#include "core/density_estimator.h"
#include "core/local_summary.h"
#include "stats/piecewise_cdf.h"

namespace ringdde {

/// Wire formats for the estimation protocol's messages.
///
/// Two purposes: (1) probe responses are charged to the network at their
/// REAL encoded size; (2) a peer can ship its whole density estimate to
/// another peer (estimate dissemination / caching), which is how an
/// application layer would share one m-probe investment ring-wide.
///
/// Formats are versioned with a leading tag byte so they can evolve.

/// Probe response: the peer's CDF slice.
void EncodeLocalSummary(const LocalSummary& summary, Encoder* encoder);
Result<LocalSummary> DecodeLocalSummary(Decoder* decoder);

/// A piecewise-linear CDF (knot list).
void EncodePiecewiseCdf(const PiecewiseLinearCdf& cdf, Encoder* encoder);
Result<PiecewiseLinearCdf> DecodePiecewiseCdf(Decoder* decoder);

/// A full shareable estimate: CDF + N̂ + provenance counters.
void EncodeDensityEstimate(const DensityEstimate& estimate,
                           Encoder* encoder);
Result<DensityEstimate> DecodeDensityEstimate(Decoder* decoder);

/// Convenience: encoded size of a summary without keeping the bytes.
size_t EncodedSummarySize(const LocalSummary& summary);

/// Convenience: encoded size of an estimate without keeping the bytes.
/// Sketch-backed estimates cost the fixed sketch frame; knot-list
/// estimates cost 16 bytes per CDF knot.
size_t EncodedEstimateSize(const DensityEstimate& estimate);

}  // namespace ringdde

#endif  // RINGDDE_CORE_WIRE_H_
