#include "core/ring_service.h"

#include <utility>

#include "common/codec.h"
#include "common/rng.h"
#include "core/probe.h"
#include "core/sketch_aggregation.h"
#include "core/wire.h"
#include "data/dataset.h"

namespace ringdde {

namespace {

/// Digest mixer (SplitMix64 over a running state).
uint64_t MixInto(uint64_t h, uint64_t v) {
  return SplitMix64(h ^ (v + 0x9E3779B97F4A7C15ULL));
}

void EncodeCostCounters(const CostCounters& c, Encoder* enc) {
  enc->PutVarint64(c.messages);
  enc->PutVarint64(c.hops);
  enc->PutVarint64(c.bytes);
  enc->PutDouble(c.latency_sum);
  enc->PutVarint64(c.timeouts);
  enc->PutVarint64(c.retries);
  enc->PutVarint64(c.failed_probes);
}

Status DecodeCostCounters(Decoder* dec, CostCounters* c) {
  RINGDDE_RETURN_IF_ERROR(dec->GetVarint64(&c->messages));
  RINGDDE_RETURN_IF_ERROR(dec->GetVarint64(&c->hops));
  RINGDDE_RETURN_IF_ERROR(dec->GetVarint64(&c->bytes));
  RINGDDE_RETURN_IF_ERROR(dec->GetDouble(&c->latency_sum));
  RINGDDE_RETURN_IF_ERROR(dec->GetVarint64(&c->timeouts));
  RINGDDE_RETURN_IF_ERROR(dec->GetVarint64(&c->retries));
  RINGDDE_RETURN_IF_ERROR(dec->GetVarint64(&c->failed_probes));
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<Distribution>> MakeSpecDistribution(
    const InsertSpec& spec) {
  switch (spec.dist_kind) {
    case 0:
      return std::unique_ptr<Distribution>(
          new UniformDistribution(spec.param_a, spec.param_b));
    case 1:
      return std::unique_ptr<Distribution>(
          new TruncatedNormalDistribution(spec.param_a, spec.param_b));
    case 2:
      return std::unique_ptr<Distribution>(new ZipfDistribution(
          static_cast<size_t>(spec.param_a), spec.param_b));
    case 3:
      return std::unique_ptr<Distribution>(
          new TruncatedExponentialDistribution(spec.param_a));
    case 4:
      return std::unique_ptr<Distribution>(
          new BoundedParetoDistribution(spec.param_a, spec.param_b));
    default:
      return Status::InvalidArgument("unknown distribution kind");
  }
}

Result<std::unique_ptr<Deployment>> BuildDeployment(
    const DeploymentSpec& spec) {
  if (spec.peers == 0) {
    return Status::InvalidArgument("deployment needs >= 1 peer");
  }
  auto deployment = std::make_unique<Deployment>();
  NetworkOptions net_opts;
  net_opts.seed = spec.net_seed;
  if (spec.faults_enabled) {
    net_opts.faults = std::make_shared<FaultInjector>(spec.faults);
  }
  deployment->network = std::make_unique<Network>(net_opts);
  RingOptions ring_opts;
  ring_opts.seed = spec.ring_seed;
  deployment->ring =
      std::make_unique<ChordRing>(deployment->network.get(), ring_opts);
  RINGDDE_RETURN_IF_ERROR(
      deployment->ring->CreateNetwork(static_cast<size_t>(spec.peers)));
  return deployment;
}

uint64_t RingFingerprint(const ChordRing& ring) {
  uint64_t h = 0x52494E47u;  // "RING"
  const RingIndex::FlatView flat = ring.index().Flat();
  h = MixInto(h, flat.size);
  for (size_t i = 0; i < flat.size; ++i) {
    h = MixInto(h, flat.ids[i]);
    h = MixInto(h, flat.addrs[i]);
    const Node* node = ring.GetNode(flat.addrs[i]);
    h = MixInto(h, node != nullptr ? node->keys().size() : 0);
  }
  return h;
}

void EncodeDeploymentSpec(const DeploymentSpec& spec, Encoder* out) {
  Encoder& enc = *out;
  enc.PutVarint64(spec.peers);
  enc.PutFixed64(spec.ring_seed);
  enc.PutFixed64(spec.net_seed);
  enc.PutU8(spec.faults_enabled ? 1 : 0);
  enc.PutDouble(spec.faults.drop_probability);
  enc.PutDouble(spec.faults.duplicate_probability);
  enc.PutDouble(spec.faults.delay_probability);
  enc.PutDouble(spec.faults.delay_mean_seconds);
  enc.PutDouble(spec.faults.crash_probability);
  enc.PutDouble(spec.faults.crash_start_max_seconds);
  enc.PutDouble(spec.faults.crash_duration_seconds);
  enc.PutFixed64(spec.faults.seed);
  enc.PutVarint64(spec.num_probes);
  enc.PutVarint64(spec.refinement_rounds);
  enc.PutVarint64(spec.local_quantiles);
  enc.PutVarint64(spec.retry_max_attempts);
  enc.PutVarint64(spec.sketch_levels);
}

void EncodeDeploymentSpec(const DeploymentSpec& spec,
                          std::vector<uint8_t>* out) {
  Encoder enc;
  EncodeDeploymentSpec(spec, &enc);
  *out = enc.Take();
}

Result<DeploymentSpec> DecodeDeploymentSpec(const std::vector<uint8_t>& in) {
  Decoder dec(in);
  DeploymentSpec spec;
  uint8_t faults = 0;
  uint64_t rounds = 0, quantiles = 0, attempts = 0, sketch_levels = 0;
  RINGDDE_RETURN_IF_ERROR(dec.GetVarint64(&spec.peers));
  RINGDDE_RETURN_IF_ERROR(dec.GetFixed64(&spec.ring_seed));
  RINGDDE_RETURN_IF_ERROR(dec.GetFixed64(&spec.net_seed));
  RINGDDE_RETURN_IF_ERROR(dec.GetU8(&faults));
  RINGDDE_RETURN_IF_ERROR(dec.GetDouble(&spec.faults.drop_probability));
  RINGDDE_RETURN_IF_ERROR(dec.GetDouble(&spec.faults.duplicate_probability));
  RINGDDE_RETURN_IF_ERROR(dec.GetDouble(&spec.faults.delay_probability));
  RINGDDE_RETURN_IF_ERROR(dec.GetDouble(&spec.faults.delay_mean_seconds));
  RINGDDE_RETURN_IF_ERROR(dec.GetDouble(&spec.faults.crash_probability));
  RINGDDE_RETURN_IF_ERROR(dec.GetDouble(&spec.faults.crash_start_max_seconds));
  RINGDDE_RETURN_IF_ERROR(dec.GetDouble(&spec.faults.crash_duration_seconds));
  RINGDDE_RETURN_IF_ERROR(dec.GetFixed64(&spec.faults.seed));
  RINGDDE_RETURN_IF_ERROR(dec.GetVarint64(&spec.num_probes));
  RINGDDE_RETURN_IF_ERROR(dec.GetVarint64(&rounds));
  RINGDDE_RETURN_IF_ERROR(dec.GetVarint64(&quantiles));
  RINGDDE_RETURN_IF_ERROR(dec.GetVarint64(&attempts));
  RINGDDE_RETURN_IF_ERROR(dec.GetVarint64(&sketch_levels));
  spec.faults_enabled = faults != 0;
  spec.refinement_rounds = static_cast<uint32_t>(rounds);
  spec.local_quantiles = static_cast<uint32_t>(quantiles);
  spec.retry_max_attempts = static_cast<uint32_t>(attempts);
  spec.sketch_levels = static_cast<uint32_t>(sketch_levels);
  return spec;
}

void EncodeInsertSpec(const InsertSpec& spec, Encoder* enc) {
  enc->PutU8(spec.dist_kind);
  enc->PutDouble(spec.param_a);
  enc->PutDouble(spec.param_b);
  enc->PutVarint64(spec.count);
  enc->PutFixed64(spec.data_seed);
}

void EncodeInsertSpec(const InsertSpec& spec, std::vector<uint8_t>* out) {
  Encoder enc;
  EncodeInsertSpec(spec, &enc);
  *out = enc.Take();
}

Result<InsertSpec> DecodeInsertSpec(const std::vector<uint8_t>& in) {
  Decoder dec(in);
  InsertSpec spec;
  RINGDDE_RETURN_IF_ERROR(dec.GetU8(&spec.dist_kind));
  RINGDDE_RETURN_IF_ERROR(dec.GetDouble(&spec.param_a));
  RINGDDE_RETURN_IF_ERROR(dec.GetDouble(&spec.param_b));
  RINGDDE_RETURN_IF_ERROR(dec.GetVarint64(&spec.count));
  RINGDDE_RETURN_IF_ERROR(dec.GetFixed64(&spec.data_seed));
  return spec;
}

void EncodeEstimateReply(const DensityEstimate& estimate, Encoder* enc) {
  EncodeDensityEstimate(estimate, enc);
  EncodeCostCounters(estimate.cost, enc);
  enc->PutVarint64(estimate.probes_requested);
  enc->PutVarint64(estimate.failed_probes);
  enc->PutVarint64(estimate.retries);
  enc->PutVarint64(estimate.timeouts);
}

void EncodeEstimateReply(const DensityEstimate& estimate,
                         std::vector<uint8_t>* out) {
  Encoder enc;
  EncodeEstimateReply(estimate, &enc);
  *out = enc.Take();
}

Result<DensityEstimate> DecodeEstimateReply(const std::vector<uint8_t>& in) {
  Decoder dec(in);
  Result<DensityEstimate> decoded = DecodeDensityEstimate(&dec);
  if (!decoded.ok()) return decoded.status();
  DensityEstimate estimate = std::move(*decoded);
  uint64_t requested = 0;
  RINGDDE_RETURN_IF_ERROR(DecodeCostCounters(&dec, &estimate.cost));
  RINGDDE_RETURN_IF_ERROR(dec.GetVarint64(&requested));
  RINGDDE_RETURN_IF_ERROR(dec.GetVarint64(&estimate.failed_probes));
  RINGDDE_RETURN_IF_ERROR(dec.GetVarint64(&estimate.retries));
  RINGDDE_RETURN_IF_ERROR(dec.GetVarint64(&estimate.timeouts));
  estimate.probes_requested = static_cast<size_t>(requested);
  return estimate;
}

void EncodeCountersReply(const CountersReply& reply, Encoder* enc) {
  EncodeCostCounters(reply.counters, enc);
  enc->PutVarint64(reply.lost_messages);
}

void EncodeCountersReply(const CountersReply& reply,
                         std::vector<uint8_t>* out) {
  Encoder enc;
  EncodeCountersReply(reply, &enc);
  *out = enc.Take();
}

Result<CountersReply> DecodeCountersReply(const std::vector<uint8_t>& in) {
  Decoder dec(in);
  CountersReply reply;
  RINGDDE_RETURN_IF_ERROR(DecodeCostCounters(&dec, &reply.counters));
  RINGDDE_RETURN_IF_ERROR(dec.GetVarint64(&reply.lost_messages));
  return reply;
}

RingRpcService::RingRpcService(DeploymentSpec spec) : spec_(std::move(spec)) {}

Status RingRpcService::Init() {
  Result<std::unique_ptr<Deployment>> built = BuildDeployment(spec_);
  if (!built.ok()) return built.status();
  deployment_ = std::move(*built);
  return Status::OK();
}

uint64_t RingRpcService::Fingerprint() const {
  std::lock_guard<std::mutex> lock(mu_);
  return RingFingerprint(*deployment_->ring);
}

Status RingRpcService::Handle(const Frame& request, Frame* reply) {
  std::lock_guard<std::mutex> lock(mu_);
  if (deployment_ == nullptr) {
    return Status::FailedPrecondition("service not initialized");
  }
  enc_.Clear();
  switch (static_cast<RpcType>(request.type)) {
    case RpcType::kHello:
      return HandleHello(reply);
    case RpcType::kJoin:
      return HandleJoin(request, reply);
    case RpcType::kStabilize:
      return HandleStabilize(reply);
    case RpcType::kInsert:
      return HandleInsert(request, reply);
    case RpcType::kProbe:
      return HandleProbe(request, reply);
    case RpcType::kEstimate:
      return HandleEstimate(request, reply);
    case RpcType::kSketchEstimate:
      return HandleSketchEstimate(request, reply);
    case RpcType::kCounters:
      return HandleCounters(reply);
    case RpcType::kShutdown:
      shutdown_requested_ = true;
      reply->type = request.type;
      reply->payload.clear();
      return Status::OK();
    default:
      return Status::InvalidArgument("unknown rpc type");
  }
}

Result<Frame> RingRpcService::Handle(const Frame& request) {
  Frame reply;
  RINGDDE_RETURN_IF_ERROR(Handle(request, &reply));
  return reply;
}

Status RingRpcService::HandleHello(Frame* reply) {
  ChordRing& ring = *deployment_->ring;
  enc_.PutVarint64(ring.AliveCount());
  enc_.PutVarint64(ring.TotalItems());
  enc_.PutFixed64(RingFingerprint(ring));
  reply->type = static_cast<uint8_t>(RpcType::kHello);
  enc_.CopyTo(&reply->payload);
  return Status::OK();
}

Status RingRpcService::HandleJoin(const Frame& request, Frame* reply) {
  Decoder dec(request.payload);
  uint64_t k = 0;
  RINGDDE_RETURN_IF_ERROR(dec.GetVarint64(&k));
  ChordRing& ring = *deployment_->ring;
  for (uint64_t i = 0; i < k; ++i) {
    if (ring.AliveCount() == 0) {
      return Status::FailedPrecondition("no bootstrap peer alive");
    }
    // Deterministic bootstrap: the lowest-id alive peer. Join draws all
    // other randomness from the ring's own seeded rng, so every replica
    // shard performs the identical join.
    Result<NodeAddr> joined = ring.Join(ring.AliveAddrAtRank(0));
    if (!joined.ok()) return joined.status();
  }
  enc_.PutVarint64(ring.AliveCount());
  enc_.PutFixed64(RingFingerprint(ring));
  reply->type = static_cast<uint8_t>(RpcType::kJoin);
  enc_.CopyTo(&reply->payload);
  return Status::OK();
}

Status RingRpcService::HandleStabilize(Frame* reply) {
  ChordRing& ring = *deployment_->ring;
  ring.StabilizeAll();
  enc_.PutFixed64(RingFingerprint(ring));
  reply->type = static_cast<uint8_t>(RpcType::kStabilize);
  enc_.CopyTo(&reply->payload);
  return Status::OK();
}

Status RingRpcService::HandleInsert(const Frame& request, Frame* reply) {
  Result<InsertSpec> spec = DecodeInsertSpec(request.payload);
  if (!spec.ok()) return spec.status();
  Result<std::unique_ptr<Distribution>> dist = MakeSpecDistribution(*spec);
  if (!dist.ok()) return dist.status();
  Rng rng(spec->data_seed);
  Dataset dataset =
      GenerateDataset(**dist, static_cast<size_t>(spec->count), rng);
  ChordRing& ring = *deployment_->ring;
  ring.InsertDatasetBulk(dataset.keys);
  enc_.PutVarint64(ring.TotalItems());
  enc_.PutFixed64(RingFingerprint(ring));
  reply->type = static_cast<uint8_t>(RpcType::kInsert);
  enc_.CopyTo(&reply->payload);
  return Status::OK();
}

Status RingRpcService::HandleProbe(const Frame& request, Frame* reply) {
  Decoder dec(request.payload);
  uint64_t querier = 0, target = 0, ctx_seed = 0;
  RINGDDE_RETURN_IF_ERROR(dec.GetVarint64(&querier));
  RINGDDE_RETURN_IF_ERROR(dec.GetFixed64(&target));
  RINGDDE_RETURN_IF_ERROR(dec.GetFixed64(&ctx_seed));
  ChordRing& ring = *deployment_->ring;
  ProbeOptions popts;
  popts.num_quantiles = static_cast<int>(spec_.local_quantiles);
  popts.retry.max_attempts = static_cast<int>(spec_.retry_max_attempts);
  CdfProber prober(&ring, popts);
  CostContext ctx = deployment_->network->MakeQueryContext(ctx_seed);
  Result<LocalSummary> summary = prober.Probe(ctx, querier, RingId(target));
  if (!summary.ok()) return summary.status();
  deployment_->network->Accumulate(ctx.counters, ctx.lost_messages);
  EncodeLocalSummary(*summary, &enc_);
  EncodeCostCounters(ctx.counters, &enc_);
  reply->type = static_cast<uint8_t>(RpcType::kProbe);
  enc_.CopyTo(&reply->payload);
  return Status::OK();
}

Status RingRpcService::HandleEstimate(const Frame& request, Frame* reply) {
  Decoder dec(request.payload);
  uint64_t querier = 0, query_seed = 0;
  RINGDDE_RETURN_IF_ERROR(dec.GetVarint64(&querier));
  RINGDDE_RETURN_IF_ERROR(dec.GetFixed64(&query_seed));
  DdeOptions opts;
  opts.num_probes = static_cast<size_t>(spec_.num_probes);
  opts.refinement_rounds = static_cast<int>(spec_.refinement_rounds);
  opts.local_quantiles = static_cast<int>(spec_.local_quantiles);
  opts.retry.max_attempts = static_cast<int>(spec_.retry_max_attempts);
  opts.seed = query_seed;
  DistributionFreeEstimator estimator(deployment_->ring.get(), opts);
  Result<DensityEstimate> estimate = estimator.Estimate(querier);
  if (!estimate.ok()) return estimate.status();
  EncodeEstimateReply(*estimate, &enc_);
  reply->type = static_cast<uint8_t>(RpcType::kEstimate);
  enc_.CopyTo(&reply->payload);
  return Status::OK();
}

Status RingRpcService::HandleSketchEstimate(const Frame& request,
                                            Frame* reply) {
  Decoder dec(request.payload);
  uint64_t querier = 0, query_seed = 0;
  RINGDDE_RETURN_IF_ERROR(dec.GetVarint64(&querier));
  RINGDDE_RETURN_IF_ERROR(dec.GetFixed64(&query_seed));
  SketchAggregationOptions opts;
  opts.sketch_levels = spec_.sketch_levels;
  opts.retry.max_attempts = static_cast<int>(spec_.retry_max_attempts);
  opts.seed = query_seed;
  SketchAggregator aggregator(deployment_->ring.get(), opts);
  Result<DensityEstimate> estimate = aggregator.Estimate(querier);
  if (!estimate.ok()) return estimate.status();
  // Same reply layout as kEstimate; the estimate's sketch makes the inner
  // frame the compact kSketchEstimateTag form automatically.
  EncodeEstimateReply(*estimate, &enc_);
  reply->type = static_cast<uint8_t>(RpcType::kSketchEstimate);
  enc_.CopyTo(&reply->payload);
  return Status::OK();
}

Status RingRpcService::HandleCounters(Frame* reply) {
  CountersReply counters;
  counters.counters = deployment_->network->counters();
  counters.lost_messages = deployment_->network->lost_messages();
  EncodeCountersReply(counters, &enc_);
  reply->type = static_cast<uint8_t>(RpcType::kCounters);
  enc_.CopyTo(&reply->payload);
  return Status::OK();
}

// --- RingClient -------------------------------------------------------------

namespace {

Result<Frame> CallExpecting(RpcChannel* channel, RpcType type,
                            const std::vector<uint8_t>& payload) {
  Frame request;
  request.type = static_cast<uint8_t>(type);
  request.payload = payload;
  Result<Frame> reply = channel->Call(request);
  if (!reply.ok()) return reply.status();
  if (reply->type != static_cast<uint8_t>(type)) {
    return Status::Internal("rpc reply type mismatch");
  }
  return reply;
}

}  // namespace

Result<RingClient::HelloReply> RingClient::Hello() {
  Result<Frame> reply = CallExpecting(channel_, RpcType::kHello, {});
  if (!reply.ok()) return reply.status();
  Decoder dec(reply->payload);
  HelloReply out;
  RINGDDE_RETURN_IF_ERROR(dec.GetVarint64(&out.alive_count));
  RINGDDE_RETURN_IF_ERROR(dec.GetVarint64(&out.total_items));
  RINGDDE_RETURN_IF_ERROR(dec.GetFixed64(&out.fingerprint));
  return out;
}

Result<uint64_t> RingClient::Join(uint64_t k) {
  Encoder enc;
  enc.PutVarint64(k);
  Result<Frame> reply = CallExpecting(channel_, RpcType::kJoin, enc.buffer());
  if (!reply.ok()) return reply.status();
  Decoder dec(reply->payload);
  uint64_t alive = 0, fingerprint = 0;
  RINGDDE_RETURN_IF_ERROR(dec.GetVarint64(&alive));
  RINGDDE_RETURN_IF_ERROR(dec.GetFixed64(&fingerprint));
  return fingerprint;
}

Result<uint64_t> RingClient::Stabilize() {
  Result<Frame> reply = CallExpecting(channel_, RpcType::kStabilize, {});
  if (!reply.ok()) return reply.status();
  Decoder dec(reply->payload);
  uint64_t fingerprint = 0;
  RINGDDE_RETURN_IF_ERROR(dec.GetFixed64(&fingerprint));
  return fingerprint;
}

Result<uint64_t> RingClient::Insert(const InsertSpec& spec) {
  std::vector<uint8_t> payload;
  EncodeInsertSpec(spec, &payload);
  Result<Frame> reply = CallExpecting(channel_, RpcType::kInsert, payload);
  if (!reply.ok()) return reply.status();
  Decoder dec(reply->payload);
  uint64_t items = 0, fingerprint = 0;
  RINGDDE_RETURN_IF_ERROR(dec.GetVarint64(&items));
  RINGDDE_RETURN_IF_ERROR(dec.GetFixed64(&fingerprint));
  return items;
}

Result<LocalSummary> RingClient::Probe(NodeAddr querier, RingId target,
                                       uint64_t ctx_seed) {
  Encoder enc;
  enc.PutVarint64(querier);
  enc.PutFixed64(target.value);
  enc.PutFixed64(ctx_seed);
  Result<Frame> reply = CallExpecting(channel_, RpcType::kProbe, enc.buffer());
  if (!reply.ok()) return reply.status();
  Decoder dec(reply->payload);
  return DecodeLocalSummary(&dec);
}

Result<DensityEstimate> RingClient::Estimate(NodeAddr querier,
                                             uint64_t query_seed) {
  Encoder enc;
  enc.PutVarint64(querier);
  enc.PutFixed64(query_seed);
  Result<Frame> reply =
      CallExpecting(channel_, RpcType::kEstimate, enc.buffer());
  if (!reply.ok()) return reply.status();
  return DecodeEstimateReply(reply->payload);
}

Result<DensityEstimate> RingClient::SketchEstimate(NodeAddr querier,
                                                   uint64_t query_seed) {
  Encoder enc;
  enc.PutVarint64(querier);
  enc.PutFixed64(query_seed);
  Result<Frame> reply =
      CallExpecting(channel_, RpcType::kSketchEstimate, enc.buffer());
  if (!reply.ok()) return reply.status();
  return DecodeEstimateReply(reply->payload);
}

Result<CountersReply> RingClient::Counters() {
  Result<Frame> reply = CallExpecting(channel_, RpcType::kCounters, {});
  if (!reply.ok()) return reply.status();
  return DecodeCountersReply(reply->payload);
}

Status RingClient::Shutdown() {
  Result<Frame> reply = CallExpecting(channel_, RpcType::kShutdown, {});
  return reply.ok() ? Status::OK() : reply.status();
}

}  // namespace ringdde
