#ifndef RINGDDE_CORE_INVERSION_SAMPLER_H_
#define RINGDDE_CORE_INVERSION_SAMPLER_H_

#include <vector>

#include "common/rng.h"
#include "stats/piecewise_cdf.h"

namespace ringdde {

/// The inversion method over an estimated CDF: X = F̂⁻¹(U), U ~ Uniform(0,1).
///
/// This is the paper's titular idea applied twice. Downstream consumers use
/// it to draw as many (pseudo-)samples from the estimated global
/// distribution as they like without any further network traffic; and the
/// estimator itself uses the stratified variant to aim refinement probes at
/// where the mass is, which is what makes probing "free from sampling bias"
/// under skew.
class InversionSampler {
 public:
  /// The referenced CDF must outlive the sampler.
  explicit InversionSampler(const PiecewiseLinearCdf* cdf);

  /// One inverse-transform draw.
  double Sample(Rng& rng) const;

  /// `k` i.i.d. draws.
  std::vector<double> SampleMany(size_t k, Rng& rng) const;

  /// `k` stratified draws: u_i = (i + U_i)/k, one per equal-probability
  /// stratum. Same marginal distribution, much lower discrepancy — the
  /// right choice for probe targeting and for quantile summaries.
  std::vector<double> SampleStratified(size_t k, Rng& rng) const;

  /// Deterministic k evenly spaced quantiles F̂⁻¹((i+0.5)/k), i = 0..k-1.
  std::vector<double> EvenQuantiles(size_t k) const;

 private:
  const PiecewiseLinearCdf* cdf_;
};

}  // namespace ringdde

#endif  // RINGDDE_CORE_INVERSION_SAMPLER_H_
