#include "core/local_summary.h"

#include <algorithm>
#include <cassert>

#include "common/math_util.h"
#include "stats/gk_sketch.h"

namespace ringdde {

double LocalSummary::Density() const {
  const double w = ArcWidth();
  if (w <= 0.0) return 0.0;
  return static_cast<double>(item_count) / w;
}

double LocalSummary::InterpolatedRank(double key) const {
  if (item_count == 0 || quantiles.empty()) return 0.0;
  const double c = static_cast<double>(item_count);
  if (quantiles.size() == 1) {
    // Single knot: all mass at one value.
    return key >= quantiles.front() ? c : 0.0;
  }
  if (key < quantiles.front()) return 0.0;
  if (key >= quantiles.back()) return c;
  // quantiles[i] sits at cumulative fraction i/(q-1).
  auto it = std::upper_bound(quantiles.begin(), quantiles.end(), key);
  const size_t i = static_cast<size_t>(it - quantiles.begin());  // >= 1
  const double lo = quantiles[i - 1];
  const double hi = quantiles[i];
  const double q1 = static_cast<double>(quantiles.size() - 1);
  double t = 0.0;
  if (hi > lo) t = (key - lo) / (hi - lo);
  return c * ((static_cast<double>(i - 1) + t) / q1);
}

LocalSummary ComputeLocalSummarySketched(const Node& node, int num_quantiles,
                                         double sketch_epsilon) {
  assert(num_quantiles >= 2);
  LocalSummary s;
  s.addr = node.addr();
  s.arc_lo = node.predecessor().id;
  s.arc_hi = node.id();
  s.item_count = node.item_count();
  if (s.item_count > 0) {
    GkSketch sketch(sketch_epsilon);
    sketch.AddAll(node.keys());
    s.quantiles.reserve(static_cast<size_t>(num_quantiles));
    const double q1 = static_cast<double>(num_quantiles - 1);
    double prev = -1e300;
    for (int i = 0; i < num_quantiles; ++i) {
      double q = sketch.Quantile(static_cast<double>(i) / q1);
      // The sketch's per-query guarantees do not promise joint
      // monotonicity; enforce it so InterpolatedRank stays well-defined.
      q = std::max(q, prev);
      prev = q;
      s.quantiles.push_back(q);
    }
  }
  return s;
}

LocalSummary ComputeLocalSummary(const Node& node, int num_quantiles) {
  assert(num_quantiles >= 2);
  LocalSummary s;
  s.addr = node.addr();
  s.arc_lo = node.predecessor().id;
  s.arc_hi = node.id();
  s.item_count = node.item_count();
  if (s.item_count > 0) {
    s.quantiles.reserve(static_cast<size_t>(num_quantiles));
    const double q1 = static_cast<double>(num_quantiles - 1);
    for (int i = 0; i < num_quantiles; ++i) {
      s.quantiles.push_back(
          node.LocalQuantile(static_cast<double>(i) / q1));
    }
  }
  return s;
}

}  // namespace ringdde
