#include "core/local_summary.h"

#include <algorithm>
#include <cassert>

#include "common/math_util.h"
#include "stats/gk_sketch.h"

namespace ringdde {

double LocalSummary::Density() const {
  const double w = ArcWidth();
  if (w <= 0.0) return 0.0;
  return static_cast<double>(item_count) / w;
}

double LocalSummary::InterpolatedRank(double key) const {
  if (item_count == 0 || quantiles.empty()) return 0.0;
  const double c = static_cast<double>(item_count);
  if (quantiles.size() == 1) {
    // Single knot: all mass at one value.
    return key >= quantiles.front() ? c : 0.0;
  }
  if (key < quantiles.front()) return 0.0;
  if (key >= quantiles.back()) return c;
  // quantiles[i] sits at cumulative fraction i/(q-1).
  auto it = std::upper_bound(quantiles.begin(), quantiles.end(), key);
  const size_t i = static_cast<size_t>(it - quantiles.begin());  // >= 1
  const double lo = quantiles[i - 1];
  const double hi = quantiles[i];
  const double q1 = static_cast<double>(quantiles.size() - 1);
  double t = 0.0;
  if (hi > lo) t = (key - lo) / (hi - lo);
  return c * ((static_cast<double>(i - 1) + t) / q1);
}

LocalSummary ComputeLocalSummarySketched(const Node& node, int num_quantiles,
                                         double sketch_epsilon) {
  return ComputeLocalSummarySketchedOf(node, num_quantiles, sketch_epsilon);
}

LocalSummary ComputeLocalSummary(const Node& node, int num_quantiles) {
  return ComputeLocalSummaryOf(node, num_quantiles);
}

}  // namespace ringdde
