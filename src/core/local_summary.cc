#include "core/local_summary.h"

#include <algorithm>
#include <cassert>

#include "common/math_util.h"
#include "stats/gk_sketch.h"

namespace ringdde {

double LocalSummary::Density() const {
  const double w = ArcWidth();
  if (w <= 0.0) return 0.0;
  return static_cast<double>(item_count) / w;
}

double LocalSummary::InterpolatedRank(double key) const {
  // Works off ShapeKnots so sketch-only summaries (no quantile array)
  // interpolate through the sketch's knot grid with identical arithmetic.
  const std::vector<double>& knots = ShapeKnots();
  if (item_count == 0 || knots.empty()) return 0.0;
  const double c = static_cast<double>(item_count);
  if (knots.size() == 1) {
    // Single knot: all mass at one value.
    return key >= knots.front() ? c : 0.0;
  }
  if (key < knots.front()) return 0.0;
  if (key >= knots.back()) return c;
  // knots[i] sits at cumulative fraction i/(q-1).
  auto it = std::upper_bound(knots.begin(), knots.end(), key);
  const size_t i = static_cast<size_t>(it - knots.begin());  // >= 1
  const double lo = knots[i - 1];
  const double hi = knots[i];
  const double q1 = static_cast<double>(knots.size() - 1);
  double t = 0.0;
  if (hi > lo) t = (key - lo) / (hi - lo);
  return c * ((static_cast<double>(i - 1) + t) / q1);
}

LocalSummary ComputeLocalSummarySketched(const Node& node, int num_quantiles,
                                         double sketch_epsilon) {
  return ComputeLocalSummarySketchedOf(node, num_quantiles, sketch_epsilon);
}

LocalSummary ComputeLocalSummary(const Node& node, int num_quantiles) {
  return ComputeLocalSummaryOf(node, num_quantiles);
}

LocalSummary ComputeLocalSummaryWithDensitySketch(const Node& node,
                                                  uint32_t sketch_levels) {
  return ComputeLocalSummaryWithDensitySketchOf(node, sketch_levels);
}

}  // namespace ringdde
