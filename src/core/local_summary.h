#ifndef RINGDDE_CORE_LOCAL_SUMMARY_H_
#define RINGDDE_CORE_LOCAL_SUMMARY_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/id.h"
#include "ring/node.h"
#include "stats/density_sketch.h"
#include "stats/gk_sketch.h"

namespace ringdde {

/// What a probed peer returns: everything needed to reconstruct its exact
/// slice of the global cumulative distribution function.
///
/// Because placement is order-preserving, the peer's owned arc
/// (arc_lo, arc_hi] *is* a key interval, its item count is the exact CDF
/// increment across that interval, and its local quantiles describe the
/// CDF's shape inside it. A probe response is therefore a lossless (up to
/// quantile resolution) sample of the global CDF restricted to one arc.
struct LocalSummary {
  NodeAddr addr = 0;
  RingId arc_lo;  ///< exclusive lower arc end (the peer's predecessor id)
  RingId arc_hi;  ///< inclusive upper arc end (the peer's own id)
  uint64_t item_count = 0;

  /// `q` evenly spaced local key quantiles at p = i/(q+1), i = 1..q,
  /// ascending. Empty when the peer stores nothing.
  std::vector<double> quantiles;

  /// Optional mergeable density sketch over the same keys (fixed-size,
  /// hierarchy-ready — see stats/density_sketch.h). Sketch-bearing
  /// summaries may drop `quantiles` entirely: the sketch's knot grid uses
  /// the same knot-at-i/(size−1) convention, so it serves as the CDF shape
  /// directly (ShapeKnots below) at a size that does not grow with the
  /// peer's store.
  std::optional<DensitySketch> sketch;

  /// CDF shape knots for reconstruction: the exact quantile array when
  /// present, else the sketch's quantile grid. Empty when neither exists.
  const std::vector<double>& ShapeKnots() const {
    if (!quantiles.empty() || !sketch.has_value()) return quantiles;
    return sketch->knots();
  }

  /// Arc length as a fraction of the ring (= of the unit key domain).
  double ArcWidth() const { return ArcFraction(arc_lo, arc_hi); }

  /// Items per unit of key domain across the arc (the per-probe density
  /// observation; 0-width arcs yield 0).
  double Density() const;

  /// Exact-ish local rank: estimated count of this peer's items <= key,
  /// interpolated through the quantile knots. Clamped to [0, item_count].
  double InterpolatedRank(double key) const;

  /// Serialized probe-response size: arc (16) + count (8) + quantiles (8
  /// each) + the sketch frame (exact codec size) when carried.
  uint64_t EncodedBytes() const {
    uint64_t bytes = 24 + 8 * quantiles.size();
    if (sketch.has_value()) bytes += 1 + sketch->EncodedBytes();
    return bytes;
  }
};

/// Computes the summary a peer would return to a probe, with `num_quantiles`
/// local quantiles (exact order statistics).
///
/// Templated over the peer representation so the live Node and its frozen
/// epoch capture (ring/epoch_snapshot.h) run the *same* arithmetic — the
/// bit-identity of epoch-mode estimates against the live-snapshot engine
/// rests on there being exactly one implementation of this math. `Peer`
/// needs addr()/id()/predecessor()/item_count()/LocalQuantile(p)/keys().
template <typename Peer>
LocalSummary ComputeLocalSummaryOf(const Peer& node, int num_quantiles);

/// As ComputeLocalSummaryOf, but the quantiles are read from a Greenwald–
/// Khanna ε-sketch over the peer's keys instead of exact order statistics —
/// modeling peers whose stores are too large (or too write-hot) to keep
/// sorted, and bounding what sketch-only peers cost in estimate fidelity
/// (ablation E11f). Rank error per quantile is ≤ ε·count.
template <typename Peer>
LocalSummary ComputeLocalSummarySketchedOf(const Peer& node, int num_quantiles,
                                           double sketch_epsilon);

/// As ComputeLocalSummaryOf, but the summary carries a mergeable
/// DensitySketch (stats/density_sketch.h) and NO quantile array: the
/// sketch's knot grid doubles as the CDF shape, so the response size is
/// fixed by `sketch_levels` instead of growing with resolution demands,
/// and downstream aggregators can merge responses without re-reading keys.
template <typename Peer>
LocalSummary ComputeLocalSummaryWithDensitySketchOf(const Peer& node,
                                                    uint32_t sketch_levels);

/// The historical Node entry points (wrappers over the templates above).
LocalSummary ComputeLocalSummary(const Node& node, int num_quantiles);
LocalSummary ComputeLocalSummarySketched(const Node& node, int num_quantiles,
                                         double sketch_epsilon);
LocalSummary ComputeLocalSummaryWithDensitySketch(const Node& node,
                                                  uint32_t sketch_levels);

// --- Template definitions ---------------------------------------------------

template <typename Peer>
LocalSummary ComputeLocalSummaryOf(const Peer& node, int num_quantiles) {
  assert(num_quantiles >= 2);
  LocalSummary s;
  s.addr = node.addr();
  s.arc_lo = node.predecessor().id;
  s.arc_hi = node.id();
  s.item_count = node.item_count();
  if (s.item_count > 0) {
    s.quantiles.reserve(static_cast<size_t>(num_quantiles));
    const double q1 = static_cast<double>(num_quantiles - 1);
    for (int i = 0; i < num_quantiles; ++i) {
      s.quantiles.push_back(
          node.LocalQuantile(static_cast<double>(i) / q1));
    }
  }
  return s;
}

template <typename Peer>
LocalSummary ComputeLocalSummarySketchedOf(const Peer& node, int num_quantiles,
                                           double sketch_epsilon) {
  assert(num_quantiles >= 2);
  LocalSummary s;
  s.addr = node.addr();
  s.arc_lo = node.predecessor().id;
  s.arc_hi = node.id();
  s.item_count = node.item_count();
  if (s.item_count > 0) {
    GkSketch sketch(sketch_epsilon);
    sketch.AddAll(node.keys());
    s.quantiles.reserve(static_cast<size_t>(num_quantiles));
    const double q1 = static_cast<double>(num_quantiles - 1);
    double prev = -1e300;
    for (int i = 0; i < num_quantiles; ++i) {
      double q = sketch.Quantile(static_cast<double>(i) / q1);
      // The sketch's per-query guarantees do not promise joint
      // monotonicity; enforce it so InterpolatedRank stays well-defined.
      q = std::max(q, prev);
      prev = q;
      s.quantiles.push_back(q);
    }
  }
  return s;
}

template <typename Peer>
LocalSummary ComputeLocalSummaryWithDensitySketchOf(const Peer& node,
                                                    uint32_t sketch_levels) {
  assert(sketch_levels >= 2);
  LocalSummary s;
  s.addr = node.addr();
  s.arc_lo = node.predecessor().id;
  s.arc_hi = node.id();
  s.item_count = node.item_count();
  if (s.item_count > 0) {
    // Knot i = the i/levels local quantile — the same LocalQuantile
    // arithmetic as the exact path, so the live Node and its frozen epoch
    // view produce bit-identical sketches.
    std::vector<double> knots;
    knots.reserve(sketch_levels + 1);
    for (uint32_t i = 0; i <= sketch_levels; ++i) {
      knots.push_back(node.LocalQuantile(static_cast<double>(i) /
                                         static_cast<double>(sketch_levels)));
    }
    auto sk = DensitySketch::FromQuantileKnots(s.item_count, std::move(knots));
    assert(sk.ok());
    if (sk.ok()) s.sketch = std::move(*sk);
  } else {
    s.sketch = DensitySketch(sketch_levels);
  }
  return s;
}

}  // namespace ringdde

#endif  // RINGDDE_CORE_LOCAL_SUMMARY_H_
