#ifndef RINGDDE_CORE_THEORY_H_
#define RINGDDE_CORE_THEORY_H_

#include <cstddef>
#include <cstdint>

namespace ringdde {

/// Analytic predictions quoted alongside measurements in the benchmarks.
/// All are the standard results for Chord-style rings; the DKW material is
/// re-exported from stats/bounds.h in estimator terms.

/// Probe budget m achieving KS error <= epsilon with probability >= 1-delta
/// in the idealized (rank-sampling) analysis; a direct DKW application.
size_t RecommendedProbeCount(double epsilon, double delta);

/// The (eps) a budget of m probes buys at confidence 1-delta.
double ProbeCountEpsilon(size_t m, double delta);

/// Expected hops of one Chord lookup in an n-node ring: (1/2)·log2(n).
double ExpectedLookupHops(size_t n);

/// Expected messages of one estimation run with m probes in an n-node
/// ring under this simulator's cost model: per probe, a lookup of
/// E[hops] round trips (2 messages each) plus the summary round trip.
double ExpectedEstimationMessages(size_t m, size_t n);

/// Expected number of DISTINCT peers hit by m uniform position probes in an
/// n-node ring: n·(1 - (1-1/n)^m) under the uniform-arc approximation.
double ExpectedDistinctPeers(size_t m, size_t n);

/// Expected fraction of the ring covered by the arcs of m uniform position
/// probes: with i.i.d. Exponential arcs (the large-n limit of uniform node
/// ids), the probed arcs are size-biased, giving coverage
/// 1 - (1-1/n)^m weighted by... approximated as ExpectedDistinctPeers·2/n
/// (size-biased arcs average twice the mean arc). Used only as a sanity
/// reference column.
double ExpectedCoverage(size_t m, size_t n);

}  // namespace ringdde

#endif  // RINGDDE_CORE_THEORY_H_
