#include "core/theory.h"

#include <algorithm>
#include <cmath>

#include "stats/bounds.h"

namespace ringdde {

size_t RecommendedProbeCount(double epsilon, double delta) {
  return DkwRequiredSamples(epsilon, delta);
}

double ProbeCountEpsilon(size_t m, double delta) {
  return DkwEpsilon(m, delta);
}

double ExpectedLookupHops(size_t n) {
  if (n <= 1) return 0.0;
  return 0.5 * std::log2(static_cast<double>(n));
}

double ExpectedEstimationMessages(size_t m, size_t n) {
  // Per probe: lookup hops, 2 messages each (query + response), plus the
  // summary request/response pair.
  const double per_probe = 2.0 * ExpectedLookupHops(n) + 2.0;
  return static_cast<double>(m) * per_probe;
}

double ExpectedDistinctPeers(size_t m, size_t n) {
  if (n == 0) return 0.0;
  const double nn = static_cast<double>(n);
  const double miss = std::pow(1.0 - 1.0 / nn, static_cast<double>(m));
  return nn * (1.0 - miss);
}

double ExpectedCoverage(size_t m, size_t n) {
  if (n == 0) return 0.0;
  // Size-biased sampling: a uniform position lands in an arc with
  // probability proportional to its length, so probed arcs average ~2x the
  // mean arc (exponential arc-length limit). Clamp to 1.
  const double covered = ExpectedDistinctPeers(m, n) * 2.0 /
                         static_cast<double>(n);
  return std::min(covered, 1.0);
}

}  // namespace ringdde
