#include "core/sketch_aggregation.h"

#include <unordered_set>
#include <vector>

#include "core/local_summary.h"

namespace ringdde {

namespace {
constexpr int kMaxDepth = 80;
/// Down-edge request: query id + delegated arc bounds (same frame the
/// exact TreeAggregator charges).
constexpr uint64_t kDelegateBytes = 24;

bool IsTransient(const Status& s) {
  return s.IsUnavailable() || s.IsTimedOut();
}
}  // namespace

SketchAggregator::SketchAggregator(ChordRing* ring,
                                   SketchAggregationOptions options)
    : ring_(ring),
      options_(options),
      ctx_(ring->network().MakeQueryContext(options.seed)) {}

Result<DensityEstimate> SketchAggregator::Estimate(NodeAddr querier) {
  if (!ring_->IsAlive(querier)) {
    return Status::InvalidArgument("querier is not an alive peer");
  }
  const CostCounters cost_before = ctx_.counters;
  const uint64_t lost_before = ctx_.lost_messages;
  peers_merged_ = 0;
  failed_edges_ = 0;
  visited_.clear();

  DensitySketch sink(options_.sketch_levels);
  const Node* root = ring_->GetNode(querier);
  // The querier covers the full ring: (own id, own id] wraps all the way
  // around, so every alive peer falls in exactly one delegated sub-arc.
  peers_merged_ = Aggregate(querier, root->id(), &sink, 0);

  DensityEstimate est;
  if (!sink.empty()) {
    Result<PiecewiseLinearCdf> cdf = sink.ToCdf();
    if (!cdf.ok()) return cdf.status();
    est.cdf = std::move(*cdf);
  }
  est.sketch = std::move(sink);
  est.estimated_total_items = static_cast<double>(est.sketch->count());
  est.peers_probed = peers_merged_;
  // The convergecast "requests" every alive peer; the ones whose subtree
  // edge failed are exactly the degraded probes the DKW bound widens for.
  const size_t alive = ring_->AliveCount();
  est.probes_requested = alive;
  est.failed_probes =
      alive > peers_merged_ ? static_cast<uint64_t>(alive - peers_merged_) : 0;
  est.covered_fraction =
      alive > 0 ? static_cast<double>(peers_merged_) / alive : 0.0;
  est.cost = ctx_.counters - cost_before;
  est.retries = est.cost.retries;
  est.timeouts = est.cost.timeouts;
  est.produced_at = ring_->network().Now();
  ring_->network().Accumulate(est.cost, ctx_.lost_messages - lost_before);
  return est;
}

bool SketchAggregator::SendWithRetry(NodeAddr from, NodeAddr to,
                                     uint64_t payload_bytes,
                                     uint64_t hop_count) {
  const RetryPolicy& retry = options_.retry;
  const uint64_t task = edge_seq_++;
  double waited = 0.0;
  for (int attempt = 1; attempt <= retry.max_attempts; ++attempt) {
    if (attempt > 1) {
      const double backoff = retry.BackoffSeconds(task, attempt - 1);
      if (waited + backoff > retry.budget_seconds) break;
      waited += backoff;
      ring_->network().RecordRetry(ctx_);
      ring_->network().ChargeWait(ctx_, backoff);
    }
    Result<double> r =
        ring_->network().TrySend(ctx_, from, to, payload_bytes, hop_count);
    if (r.ok()) return true;
    if (!IsTransient(r.status())) break;
  }
  ++failed_edges_;
  return false;
}

size_t SketchAggregator::Aggregate(NodeAddr coordinator, RingId until,
                                   DensitySketch* sink, int depth) {
  if (depth > kMaxDepth) return 0;
  Node* node = ring_->GetNode(coordinator);
  if (node == nullptr || !node->alive()) return 0;
  // Stale finger tables after churn can hand overlapping sub-arcs to two
  // children; a real protocol dedupes by query id, we dedupe by visit.
  if (!visited_.insert(coordinator).second) return 0;

  // The coordinator contributes its own fixed-size sketch — built through
  // the same LocalQuantile arithmetic as sketch-bearing probe responses,
  // so both paths summarize a peer bit-identically.
  size_t merged = 0;
  LocalSummary own =
      ComputeLocalSummaryWithDensitySketch(*node, options_.sketch_levels);
  if (own.sketch.has_value() && sink->Merge(*own.sketch).ok()) {
    merged = 1;
  }

  // Delegate disjoint sub-arcs of (self, until) to fingers, in ascending
  // clockwise order; each child covers up to the next child. On the root
  // call until == self, so InArcOpenOpen spans the full ring.
  std::vector<NodeEntry> children;
  std::unordered_set<NodeAddr> dedup;
  for (int k = 0; k < FingerTable::kBits; ++k) {
    const auto& f = node->fingers().Get(k);
    if (!f.has_value() || f->addr == coordinator) continue;
    if (!InArcOpenOpen(f->id, node->id(), until)) continue;
    if (!ring_->IsAlive(f->addr)) continue;
    if (dedup.insert(f->addr).second) children.push_back(*f);
  }
  for (size_t i = 0; i < children.size(); ++i) {
    const RingId bound = i + 1 < children.size() ? children[i + 1].id : until;
    // Delegation down. A dead edge orphans the child's whole sub-arc:
    // nothing below it reaches the root this round.
    if (!SendWithRetry(coordinator, children[i].addr, kDelegateBytes,
                       /*hop_count=*/1)) {
      continue;
    }
    // The child aggregates its subtree into its OWN sketch first; the
    // subtree only joins the parent's if the up-edge survives, so a
    // failure loses exactly that subtree (partial degradation, not a
    // torn merge).
    DensitySketch subtree(options_.sketch_levels);
    const size_t sub_peers =
        Aggregate(children[i].addr, bound, &subtree, depth + 1);
    if (sub_peers == 0) continue;
    // The up-edge carries the subtree sketch at its REAL encoded size —
    // the constant-size message the hierarchy exists for.
    if (!SendWithRetry(children[i].addr, coordinator, subtree.EncodedBytes(),
                       /*hop_count=*/0)) {
      continue;
    }
    if (sink->Merge(subtree).ok()) merged += sub_peers;
  }
  return merged;
}

}  // namespace ringdde
