#include "core/dissemination.h"

#include <cassert>
#include <unordered_set>
#include <vector>

#include "core/wire.h"

namespace ringdde {

namespace {
constexpr int kMaxDepth = 80;
}  // namespace

EstimateDisseminator::EstimateDisseminator(ChordRing* ring,
                                           RetryPolicy retry)
    : ring_(ring), retry_(retry) {
  assert(ring != nullptr);
}

Result<size_t> EstimateDisseminator::Broadcast(
    CostContext& ctx, NodeAddr origin, const DensityEstimate& estimate) {
  if (!ring_->IsAlive(origin)) {
    return Status::InvalidArgument("origin is not an alive peer");
  }
  Encoder encoder;
  EncodeDensityEstimate(estimate, &encoder);

  const Node* root = ring_->GetNode(origin);
  size_t delivered = 0;
  Relay(ctx, origin, root->id(), encoder.buffer(), 0, &delivered);
  return delivered;
}

void EstimateDisseminator::Relay(CostContext& ctx, NodeAddr coordinator,
                                 RingId until,
                                 const std::vector<uint8_t>& payload,
                                 int depth, size_t* delivered) {
  if (depth > kMaxDepth) return;
  const Node* node = ring_->GetNode(coordinator);
  if (node == nullptr || !node->alive()) return;

  // Deliver locally: decode the wire bytes, exactly as a real peer would.
  Decoder decoder(payload);
  Result<DensityEstimate> decoded = DecodeDensityEstimate(&decoder);
  if (decoded.ok()) {
    received_[coordinator] = std::move(*decoded);
    ++*delivered;
  }

  // Delegate disjoint sub-arcs of (self, until) to ascending fingers; on
  // the root call until == self, which spans the full ring.
  std::vector<NodeEntry> children;
  std::unordered_set<NodeAddr> dedup;
  for (int k = 0; k < FingerTable::kBits; ++k) {
    const auto& f = node->fingers().Get(k);
    if (!f.has_value() || f->addr == coordinator) continue;
    if (!InArcOpenOpen(f->id, node->id(), until)) continue;
    if (!ring_->IsAlive(f->addr)) continue;
    if (dedup.insert(f->addr).second) children.push_back(*f);
  }
  for (size_t i = 0; i < children.size(); ++i) {
    const RingId bound =
        i + 1 < children.size() ? children[i + 1].id : until;
    // Fallible edge: retry per policy, then abandon the child's sub-arc.
    const uint64_t task = edge_seq_++;
    bool sent = false;
    double waited = 0.0;
    for (int attempt = 1; attempt <= retry_.max_attempts; ++attempt) {
      if (attempt > 1) {
        const double backoff = retry_.BackoffSeconds(task, attempt - 1);
        if (waited + backoff > retry_.budget_seconds) break;
        waited += backoff;
        ring_->transport().RecordRetry(ctx);
        ring_->transport().ChargeWait(ctx, backoff);
      }
      if (ring_->transport()
              .TrySend(ctx, coordinator, children[i].addr, payload.size(),
                       /*hop_count=*/1)
              .ok()) {
        sent = true;
        break;
      }
    }
    if (!sent) {
      ++failed_edges_;
      continue;
    }
    Relay(ctx, children[i].addr, bound, payload, depth + 1, delivered);
  }
}

const DensityEstimate* EstimateDisseminator::EstimateAt(
    NodeAddr addr) const {
  auto it = received_.find(addr);
  return it == received_.end() ? nullptr : &it->second;
}

}  // namespace ringdde
