#include "core/wire.h"

namespace ringdde {

namespace {
constexpr uint8_t kSummaryTag = 0x51;
constexpr uint8_t kCdfTag = 0x52;
constexpr uint8_t kEstimateTag = 0x53;
// v2 frames: identical to their v1 counterparts plus a trailing
// DensitySketch frame. Sketchless payloads keep the v1 tags bit-for-bit so
// existing goldens, charges, and cross-version peers are unaffected.
constexpr uint8_t kSketchSummaryTag = 0x54;
constexpr uint8_t kSketchEstimateTag = 0x55;
}  // namespace

void EncodeLocalSummary(const LocalSummary& summary, Encoder* encoder) {
  encoder->PutU8(summary.sketch.has_value() ? kSketchSummaryTag : kSummaryTag);
  encoder->PutVarint64(summary.addr);
  encoder->PutFixed64(summary.arc_lo.value);
  encoder->PutFixed64(summary.arc_hi.value);
  encoder->PutVarint64(summary.item_count);
  encoder->PutVarint64(summary.quantiles.size());
  for (double q : summary.quantiles) encoder->PutDouble(q);
  if (summary.sketch.has_value()) summary.sketch->EncodeTo(encoder);
}

Result<LocalSummary> DecodeLocalSummary(Decoder* decoder) {
  uint8_t tag;
  RINGDDE_RETURN_IF_ERROR(decoder->GetU8(&tag));
  if (tag != kSummaryTag && tag != kSketchSummaryTag) {
    return Status::InvalidArgument("not a LocalSummary payload");
  }
  LocalSummary s;
  uint64_t addr, lo, hi, count, nq;
  RINGDDE_RETURN_IF_ERROR(decoder->GetVarint64(&addr));
  RINGDDE_RETURN_IF_ERROR(decoder->GetFixed64(&lo));
  RINGDDE_RETURN_IF_ERROR(decoder->GetFixed64(&hi));
  RINGDDE_RETURN_IF_ERROR(decoder->GetVarint64(&count));
  RINGDDE_RETURN_IF_ERROR(decoder->GetVarint64(&nq));
  if (nq > decoder->remaining() / 8) {
    return Status::OutOfRange("quantile count exceeds payload");
  }
  s.addr = addr;
  s.arc_lo = RingId(lo);
  s.arc_hi = RingId(hi);
  s.item_count = count;
  s.quantiles.reserve(static_cast<size_t>(nq));
  double prev = -1e300;
  for (uint64_t i = 0; i < nq; ++i) {
    double q;
    RINGDDE_RETURN_IF_ERROR(decoder->GetDouble(&q));
    if (q < prev) {
      return Status::InvalidArgument("quantiles not ascending");
    }
    prev = q;
    s.quantiles.push_back(q);
  }
  if (tag == kSketchSummaryTag) {
    Result<DensitySketch> sk = DensitySketch::DecodeFrom(decoder);
    if (!sk.ok()) return sk.status();
    if (sk->count() != s.item_count) {
      return Status::InvalidArgument("summary sketch count mismatch");
    }
    s.sketch = std::move(*sk);
  }
  return s;
}

void EncodePiecewiseCdf(const PiecewiseLinearCdf& cdf, Encoder* encoder) {
  encoder->PutU8(kCdfTag);
  encoder->PutVarint64(cdf.knots().size());
  for (const auto& knot : cdf.knots()) {
    encoder->PutDouble(knot.x);
    encoder->PutDouble(knot.f);
  }
}

Result<PiecewiseLinearCdf> DecodePiecewiseCdf(Decoder* decoder) {
  uint8_t tag;
  RINGDDE_RETURN_IF_ERROR(decoder->GetU8(&tag));
  if (tag != kCdfTag) {
    return Status::InvalidArgument("not a PiecewiseLinearCdf payload");
  }
  uint64_t n;
  RINGDDE_RETURN_IF_ERROR(decoder->GetVarint64(&n));
  if (n > decoder->remaining() / 16) {
    return Status::OutOfRange("knot count exceeds payload");
  }
  std::vector<PiecewiseLinearCdf::Knot> knots;
  knots.reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    PiecewiseLinearCdf::Knot k;
    RINGDDE_RETURN_IF_ERROR(decoder->GetDouble(&k.x));
    RINGDDE_RETURN_IF_ERROR(decoder->GetDouble(&k.f));
    knots.push_back(k);
  }
  // Validation (monotonicity, [0,1] range) happens in FromKnots; a hostile
  // or corrupt payload is rejected, never trusted.
  return PiecewiseLinearCdf::FromKnots(std::move(knots));
}

void EncodeDensityEstimate(const DensityEstimate& estimate,
                           Encoder* encoder) {
  // Sketch-backed estimates ship the fixed-size sketch INSTEAD of the CDF
  // knot list — the receiver regenerates the identical CDF from it
  // (cdf == sketch.ToCdf() by construction on the aggregation path). This
  // is the dissemination payload shrink: the frame size stops growing
  // with reconstruction resolution.
  if (estimate.sketch.has_value()) {
    encoder->PutU8(kSketchEstimateTag);
    estimate.sketch->EncodeTo(encoder);
  } else {
    encoder->PutU8(kEstimateTag);
    EncodePiecewiseCdf(estimate.cdf, encoder);
  }
  encoder->PutDouble(estimate.estimated_total_items);
  encoder->PutVarint64(estimate.peers_probed);
  encoder->PutDouble(estimate.covered_fraction);
  encoder->PutDouble(estimate.produced_at);
}

Result<DensityEstimate> DecodeDensityEstimate(Decoder* decoder) {
  uint8_t tag;
  RINGDDE_RETURN_IF_ERROR(decoder->GetU8(&tag));
  if (tag != kEstimateTag && tag != kSketchEstimateTag) {
    return Status::InvalidArgument("not a DensityEstimate payload");
  }
  DensityEstimate e;
  if (tag == kSketchEstimateTag) {
    Result<DensitySketch> sk = DensitySketch::DecodeFrom(decoder);
    if (!sk.ok()) return sk.status();
    if (!sk->empty()) {
      Result<PiecewiseLinearCdf> cdf = sk->ToCdf();
      if (!cdf.ok()) return cdf.status();
      e.cdf = std::move(*cdf);
    }
    e.sketch = std::move(*sk);
  } else {
    Result<PiecewiseLinearCdf> cdf = DecodePiecewiseCdf(decoder);
    if (!cdf.ok()) return cdf.status();
    e.cdf = std::move(*cdf);
  }
  uint64_t peers;
  RINGDDE_RETURN_IF_ERROR(decoder->GetDouble(&e.estimated_total_items));
  RINGDDE_RETURN_IF_ERROR(decoder->GetVarint64(&peers));
  RINGDDE_RETURN_IF_ERROR(decoder->GetDouble(&e.covered_fraction));
  RINGDDE_RETURN_IF_ERROR(decoder->GetDouble(&e.produced_at));
  e.peers_probed = static_cast<size_t>(peers);
  if (e.estimated_total_items < 0.0 || e.covered_fraction < 0.0 ||
      e.covered_fraction > 1.0 + 1e-9) {
    return Status::InvalidArgument("estimate fields out of range");
  }
  return e;
}

size_t EncodedSummarySize(const LocalSummary& summary) {
  // tag + varint(addr) + 2 fixed64 + varint(count) + varint(#q) + 8/q,
  // plus the exact sketch frame when one is carried. Tests pin this
  // against EncodeLocalSummary's real output size.
  size_t bytes = 1 + VarintLength(summary.addr) + 16 +
                 VarintLength(summary.item_count) +
                 VarintLength(summary.quantiles.size()) +
                 8 * summary.quantiles.size();
  if (summary.sketch.has_value()) bytes += summary.sketch->EncodedBytes();
  return bytes;
}

size_t EncodedEstimateSize(const DensityEstimate& estimate) {
  size_t bytes = 1 + 24 + VarintLength(estimate.peers_probed);
  if (estimate.sketch.has_value()) {
    bytes += estimate.sketch->EncodedBytes();
  } else {
    bytes += 1 + VarintLength(estimate.cdf.knots().size()) +
             16 * estimate.cdf.knots().size();
  }
  return bytes;
}

}  // namespace ringdde
