#include "core/maintenance.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace ringdde {

EstimateMaintainer::EstimateMaintainer(ChordRing* ring,
                                       DdeOptions estimator_options,
                                       MaintenanceOptions options)
    : ring_(ring), estimator_(ring, estimator_options), options_(options) {
  assert(options_.refresh_period_seconds > 0.0);
  assert(options_.incremental_fraction > 0.0 &&
         options_.incremental_fraction <= 1.0);
}

Status EstimateMaintainer::Start(NodeAddr owner) {
  if (started_) return Status::FailedPrecondition("already started");
  if (!ring_->IsAlive(owner)) {
    return Status::InvalidArgument("owner is not an alive peer");
  }
  owner_ = owner;
  started_ = true;
  Refresh();
  ScheduleNext();
  return Status::OK();
}

double EstimateMaintainer::StalenessSeconds() const {
  if (!current_.has_value()) return std::numeric_limits<double>::infinity();
  return ring_->network().Now() - current_->produced_at;
}

void EstimateMaintainer::Refresh() {
  // The observer role migrates if its host departed.
  if (!ring_->IsAlive(owner_)) {
    Result<NodeAddr> fresh = ring_->RandomAliveNode(ring_->rng());
    if (!fresh.ok()) {
      ++failed_refreshes_;
      return;
    }
    owner_ = *fresh;
  }

  // Evict summaries from departed peers: their arcs no longer exist.
  std::erase_if(summary_pool_, [this](const LocalSummary& s) {
    return !ring_->IsAlive(s.addr);
  });

  size_t fresh_probes;
  if (options_.incremental && current_.has_value()) {
    fresh_probes = static_cast<size_t>(
        std::ceil(options_.incremental_fraction *
                  static_cast<double>(estimator_.options().num_probes)));
    fresh_probes = std::max<size_t>(fresh_probes, 1);
    // Age out the oldest summaries to make room for the fresh slice.
    const size_t cap = estimator_.options().num_probes;
    const size_t keep =
        summary_pool_.size() + fresh_probes > cap
            ? cap - std::min(cap, fresh_probes)
            : summary_pool_.size();
    if (summary_pool_.size() > keep) {
      summary_pool_.erase(summary_pool_.begin(),
                          summary_pool_.begin() +
                              static_cast<ptrdiff_t>(summary_pool_.size() -
                                                     keep));
    }
  } else {
    summary_pool_.clear();
    fresh_probes = estimator_.options().num_probes;
  }

  // Transient failures (crashed owners, exhausted probe budgets under
  // faults) are retried with deterministic backoff; anything else fails
  // the refresh immediately and waits for the next period.
  const RetryPolicy& retry = options_.retry;
  const uint64_t task = refresh_seq_++;
  double waited = 0.0;
  Result<DensityEstimate> est = Status::Internal("no refresh attempted");
  for (int attempt = 1; attempt <= retry.max_attempts; ++attempt) {
    if (attempt > 1) {
      const double backoff = retry.BackoffSeconds(task, attempt - 1);
      if (waited + backoff > retry.budget_seconds) break;
      waited += backoff;
      ring_->network().RecordRetry();
      ring_->network().ChargeWait(backoff);
    }
    est = estimator_.EstimateWith(owner_, &summary_pool_, fresh_probes);
    if (est.ok()) break;
    const Status& s = est.status();
    if (!s.IsUnavailable() && !s.IsTimedOut()) break;
  }
  if (est.ok()) {
    current_ = std::move(*est);
    ++refreshes_;
  } else {
    ++failed_refreshes_;
    RINGDDE_LOG(kDebug) << "refresh failed: " << est.status().ToString();
  }
}

void EstimateMaintainer::ScheduleNext() {
  ring_->network().events().ScheduleAfter(
      options_.refresh_period_seconds, [this] {
        Refresh();
        ScheduleNext();
      });
}

}  // namespace ringdde
