#ifndef RINGDDE_CORE_WORKLOAD_STREAM_H_
#define RINGDDE_CORE_WORKLOAD_STREAM_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "data/distribution.h"
#include "ring/chord_ring.h"

namespace ringdde {

/// A live data-update workload: Poisson insert and delete streams driven on
/// the shared event queue, so estimates are evaluated against a
/// distribution that MOVES (the "data updates" half of a dynamic network,
/// complementing peer churn).
///
/// Inserts draw keys from the current insert distribution (swappable at
/// runtime to model drift); deletes remove uniformly random existing keys.
/// With insert rate == delete rate the dataset size is stationary while its
/// shape drifts toward the insert distribution.
struct WorkloadStreamOptions {
  double inserts_per_second = 50.0;
  double deletes_per_second = 0.0;
  uint64_t seed = 404;
};

class WorkloadStream {
 public:
  /// `initial_insert_dist` supplies keys until SetInsertDistribution
  /// replaces it. The ring must outlive the stream.
  WorkloadStream(ChordRing* ring,
                 std::unique_ptr<Distribution> initial_insert_dist,
                 WorkloadStreamOptions options = {});

  /// Registers already-loaded keys so deletes can target them too.
  void TrackExistingKeys(const std::vector<double>& keys);

  /// Schedules the first insert/delete events. Call once, then run the
  /// event queue.
  void Start();

  /// Swaps the insert distribution (models workload drift).
  void SetInsertDistribution(std::unique_ptr<Distribution> dist);

  uint64_t inserts() const { return inserts_; }
  uint64_t deletes() const { return deletes_; }

  /// Keys currently believed live (inserted or tracked, minus deleted).
  size_t live_keys() const { return live_keys_.size(); }

 private:
  void OnInsert();
  void OnDelete();
  void ScheduleInsert();
  void ScheduleDelete();

  ChordRing* ring_;
  std::unique_ptr<Distribution> insert_dist_;
  WorkloadStreamOptions options_;
  Rng rng_;

  std::vector<double> live_keys_;  // swap-remove pool for delete targets
  uint64_t inserts_ = 0;
  uint64_t deletes_ = 0;
};

}  // namespace ringdde

#endif  // RINGDDE_CORE_WORKLOAD_STREAM_H_
