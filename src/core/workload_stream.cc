#include "core/workload_stream.h"

#include <cassert>
#include <utility>

namespace ringdde {

WorkloadStream::WorkloadStream(ChordRing* ring,
                               std::unique_ptr<Distribution> initial,
                               WorkloadStreamOptions options)
    : ring_(ring),
      insert_dist_(std::move(initial)),
      options_(options),
      rng_(options.seed) {
  assert(ring != nullptr);
  assert(insert_dist_ != nullptr);
}

void WorkloadStream::TrackExistingKeys(const std::vector<double>& keys) {
  live_keys_.insert(live_keys_.end(), keys.begin(), keys.end());
}

void WorkloadStream::Start() {
  if (options_.inserts_per_second > 0.0) ScheduleInsert();
  if (options_.deletes_per_second > 0.0) ScheduleDelete();
}

void WorkloadStream::SetInsertDistribution(
    std::unique_ptr<Distribution> dist) {
  assert(dist != nullptr);
  insert_dist_ = std::move(dist);
}

void WorkloadStream::ScheduleInsert() {
  ring_->network().events().ScheduleAfter(
      rng_.Exponential(options_.inserts_per_second),
      [this] { OnInsert(); });
}

void WorkloadStream::ScheduleDelete() {
  ring_->network().events().ScheduleAfter(
      rng_.Exponential(options_.deletes_per_second),
      [this] { OnDelete(); });
}

void WorkloadStream::OnInsert() {
  const double key = insert_dist_->Sample(rng_);
  if (ring_->InsertKeyBulk(key).ok()) {
    live_keys_.push_back(key);
    ++inserts_;
  }
  ScheduleInsert();
}

void WorkloadStream::OnDelete() {
  // Uniform victim from the live pool, swap-removed. A key may have been
  // lost to a non-durable crash meanwhile; treat that as already deleted.
  while (!live_keys_.empty()) {
    const size_t idx =
        static_cast<size_t>(rng_.UniformU64(live_keys_.size()));
    const double key = live_keys_[idx];
    live_keys_[idx] = live_keys_.back();
    live_keys_.pop_back();
    if (ring_->EraseKeyBulk(key).ok()) {
      ++deletes_;
      break;
    }
  }
  ScheduleDelete();
}

}  // namespace ringdde
