#include "core/global_cdf.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"

namespace ringdde {

namespace {

/// One linear stretch of probed key domain: [lo, hi] with `count` items and
/// optional interior shape knots (x ascending, rel_cum in [0, count]).
struct Segment {
  double lo = 0.0;
  double hi = 0.0;
  double count = 0.0;
  /// Source summary's raw rank at `lo` (non-zero for the high part of a
  /// wrapped arc); needed so clipping can consult InterpolatedRank.
  double rank_offset = 0.0;
  std::vector<PiecewiseLinearCdf::Knot> shape;  // f holds RELATIVE cumulative

  double Width() const { return hi - lo; }
  double Density() const {
    return Width() > 0.0 ? count / Width() : 0.0;
  }
};

/// Builds the interior shape knots of a segment from a summary's quantiles,
/// restricted to keys in [lo, hi], with relative cumulative offset by
/// `cum_at_lo` (the summary's rank at the segment's lower end).
void AddShapeKnots(const LocalSummary& s, double lo, double hi,
                   double cum_at_lo, Segment* seg) {
  // ShapeKnots: the exact quantile array, or the density sketch's knot
  // grid for sketch-only summaries — identical knot-at-i/(q-1) convention.
  const std::vector<double>& qs = s.ShapeKnots();
  if (qs.size() < 2 || s.item_count == 0) return;
  const double c = static_cast<double>(s.item_count);
  const double q1 = static_cast<double>(qs.size() - 1);
  for (size_t i = 0; i < qs.size(); ++i) {
    const double x = qs[i];
    if (x <= lo || x >= hi) continue;
    const double rel = c * static_cast<double>(i) / q1 - cum_at_lo;
    seg->shape.push_back({x, Clamp(rel, 0.0, seg->count)});
  }
}

/// Converts one summary into 1 (normal) or 2 (domain-boundary-wrapping)
/// segments in linear key space.
void SummaryToSegments(const LocalSummary& s, std::vector<Segment>* out) {
  double lo = s.arc_lo.ToUnit();
  double hi = s.arc_hi.ToUnit();
  if (s.arc_lo == s.arc_hi) {
    // Full-ring arc (single-node network).
    Segment seg;
    seg.lo = 0.0;
    seg.hi = 1.0;
    seg.count = static_cast<double>(s.item_count);
    AddShapeKnots(s, 0.0, 1.0, 0.0, &seg);
    out->push_back(std::move(seg));
    return;
  }
  if (lo < hi) {
    Segment seg;
    seg.lo = lo;
    seg.hi = hi;
    seg.count = static_cast<double>(s.item_count);
    AddShapeKnots(s, lo, hi, 0.0, &seg);
    out->push_back(std::move(seg));
    return;
  }
  // Wrapping arc (lo > hi): keys live in [0, hi] ∪ [lo, 1). The raw-sorted
  // quantiles put the [0, hi] keys first, so the rank at `hi` is the low
  // part's count.
  const double low_count = s.InterpolatedRank(hi);
  const double high_count = static_cast<double>(s.item_count) - low_count;
  if (hi > 0.0) {
    Segment seg;
    seg.lo = 0.0;
    seg.hi = hi;
    seg.count = low_count;
    AddShapeKnots(s, 0.0, hi, 0.0, &seg);
    out->push_back(std::move(seg));
  }
  if (lo < 1.0) {
    Segment seg;
    seg.lo = lo;
    seg.hi = 1.0;
    seg.count = high_count;
    seg.rank_offset = low_count;
    AddShapeKnots(s, lo, 1.0, low_count, &seg);
    out->push_back(std::move(seg));
  }
}

/// Clips `seg` so it starts at or after `floor_lo`, rescaling its count by
/// the interpolated mass above the cut. Returns false if nothing remains.
bool ClipSegmentLow(double floor_lo, const LocalSummary* src, Segment* seg) {
  if (seg->lo >= floor_lo) return true;
  if (seg->hi <= floor_lo) return false;
  double cut_rank;
  if (src != nullptr && !src->ShapeKnots().empty()) {
    cut_rank = src->InterpolatedRank(floor_lo) - seg->rank_offset;
  } else {
    // Uniform-within-segment assumption.
    cut_rank = seg->count * (floor_lo - seg->lo) / seg->Width();
  }
  cut_rank = Clamp(cut_rank, 0.0, seg->count);
  seg->count -= cut_rank;
  seg->rank_offset += cut_rank;
  seg->lo = floor_lo;
  std::erase_if(seg->shape, [floor_lo](const PiecewiseLinearCdf::Knot& k) {
    return k.x <= floor_lo;
  });
  for (auto& k : seg->shape) k.f = Clamp(k.f - cut_rank, 0.0, seg->count);
  return true;
}

}  // namespace

Result<ReconstructionResult> ReconstructGlobalCdf(
    const std::vector<LocalSummary>& summaries,
    const ReconstructionOptions& options) {
  if (summaries.empty()) {
    return Status::InvalidArgument("no probe summaries to reconstruct from");
  }

  // 1. Linearize: split wrapping arcs, strip quantile shape if disabled.
  std::vector<Segment> segments;
  std::vector<const LocalSummary*> sources;
  segments.reserve(summaries.size() + 1);
  for (const LocalSummary& s : summaries) {
    const size_t before = segments.size();
    SummaryToSegments(s, &segments);
    for (size_t i = before; i < segments.size(); ++i) sources.push_back(&s);
  }
  if (!options.use_quantile_knots) {
    for (Segment& seg : segments) seg.shape.clear();
  }

  // 2. Sort by position and clip stale-state overlaps.
  std::vector<size_t> order(segments.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return segments[a].lo < segments[b].lo;
  });
  std::vector<Segment> clipped;
  std::vector<const LocalSummary*> clipped_src;
  double frontier = 0.0;
  for (size_t idx : order) {
    Segment seg = segments[idx];
    if (!ClipSegmentLow(frontier, sources[idx], &seg)) continue;
    frontier = std::max(frontier, seg.hi);
    clipped_src.push_back(sources[idx]);
    clipped.push_back(std::move(seg));
  }
  if (clipped.empty()) {
    return Status::Internal("all probed segments clipped away");
  }

  // 3. Optional winsorization: clamp per-arc densities into the
  // [f, 1-f] quantile band of all observed densities, rescaling counts
  // (and shape knots) of out-of-band arcs. A lying responder can then
  // shift the estimate by at most ~the band edge times its arc width.
  if (options.density_winsor_fraction > 0.0 && clipped.size() >= 3) {
    const double f =
        Clamp(options.density_winsor_fraction, 0.0, 0.49);
    std::vector<double> densities;
    densities.reserve(clipped.size());
    for (const Segment& seg : clipped) densities.push_back(seg.Density());
    const double lo_bound = Quantile(densities, f);
    const double hi_bound = Quantile(densities, 1.0 - f);
    for (Segment& seg : clipped) {
      const double d = seg.Density();
      const double clamped = Clamp(d, lo_bound, hi_bound);
      if (clamped == d) continue;
      if (d > 0.0) {
        const double scale = clamped / d;
        seg.count *= scale;
        for (auto& knot : seg.shape) knot.f *= scale;
      } else {
        // Claimed emptiness raised to the lower band: a linear ramp (no
        // shape information to rescale).
        seg.count = clamped * seg.Width();
      }
    }
  }

  // 4. Coverage and the global density ratio estimate.
  double covered = 0.0;
  double counted = 0.0;
  for (const Segment& seg : clipped) {
    covered += seg.Width();
    counted += seg.count;
  }
  const double global_density = covered > 0.0 ? counted / covered : 0.0;

  // Gap density per policy. Edge gaps (before the first and after the last
  // segment) wrap across the domain boundary, so both use the last/first
  // segment pair as neighbors.
  auto gap_density = [&](const Segment* left, const Segment* right) {
    switch (options.gap_fill) {
      case GapFillPolicy::kZero:
        return 0.0;
      case GapFillPolicy::kGlobalMean:
        return global_density;
      case GapFillPolicy::kNeighborInterpolation: {
        double sum = 0.0;
        int n = 0;
        if (left != nullptr) {
          sum += left->Density();
          ++n;
        }
        if (right != nullptr) {
          sum += right->Density();
          ++n;
        }
        return n > 0 ? sum / n : global_density;
      }
    }
    return global_density;
  };

  // 5. Assemble unnormalized cumulative knots.
  std::vector<PiecewiseLinearCdf::Knot> knots;
  knots.reserve(clipped.size() * 4 + 2);
  double running = 0.0;
  knots.push_back({0.0, 0.0});
  const Segment* wrap_left = &clipped.back();    // neighbor across 0
  const Segment* wrap_right = &clipped.front();  // neighbor across 1
  for (size_t i = 0; i < clipped.size(); ++i) {
    const Segment& seg = clipped[i];
    // Gap before this segment.
    const double gap_lo = i == 0 ? 0.0 : clipped[i - 1].hi;
    if (seg.lo > gap_lo) {
      const Segment* left = i == 0 ? wrap_left : &clipped[i - 1];
      running += (seg.lo - gap_lo) * gap_density(left, &seg);
    }
    knots.push_back({seg.lo, running});
    for (const auto& shape_knot : seg.shape) {
      knots.push_back({shape_knot.x, running + shape_knot.f});
    }
    running += seg.count;
    knots.push_back({seg.hi, running});
  }
  // Trailing gap to the domain end.
  const double tail_lo = clipped.back().hi;
  if (tail_lo < 1.0) {
    running += (1.0 - tail_lo) * gap_density(&clipped.back(), wrap_right);
  }
  knots.push_back({1.0, running});

  ReconstructionResult result;
  result.estimated_total = running;
  result.covered_fraction = covered;
  result.segment_count = clipped.size();

  if (running <= 0.0) {
    // Probes saw no data at all: report the uninformative uniform CDF.
    auto uniform = PiecewiseLinearCdf::FromKnots({{0.0, 0.0}, {1.0, 1.0}});
    result.cdf = std::move(*uniform);
    return result;
  }

  for (auto& k : knots) k.f /= running;
  PiecewiseLinearCdf::MakeMonotone(knots);
  knots.back().f = 1.0;
  Result<PiecewiseLinearCdf> cdf = PiecewiseLinearCdf::FromKnots(knots);
  if (!cdf.ok()) return cdf.status();
  result.cdf = std::move(*cdf);
  return result;
}

}  // namespace ringdde
