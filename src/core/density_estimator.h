#ifndef RINGDDE_CORE_DENSITY_ESTIMATOR_H_
#define RINGDDE_CORE_DENSITY_ESTIMATOR_H_

#include <cstdint>
#include <optional>

#include "common/rng.h"
#include "common/status.h"
#include "core/global_cdf.h"
#include "stats/density_sketch.h"
#include "core/probe.h"
#include "ring/chord_ring.h"
#include "ring/epoch_snapshot.h"
#include "sim/counters.h"
#include "stats/kde.h"
#include "stats/piecewise_cdf.h"

namespace ringdde {

/// Configuration of the distribution-free density estimator (the paper's
/// contribution).
struct DdeOptions {
  /// Total probe budget m: the number of ring positions sampled. Drives the
  /// accuracy/cost trade-off; see theory.h for the (ε, δ) calculator.
  size_t num_probes = 256;

  /// Probe rounds. Round 1 always samples positions uniformly (unbiased
  /// over the key domain). Rounds >= 2 draw targets by *inversion* from the
  /// current CDF estimate, concentrating the remaining budget where the
  /// estimated mass is — the adaptive step that keeps accuracy flat under
  /// heavy skew. 1 disables refinement.
  int refinement_rounds = 2;

  /// Quantile knots per probe response (>= 2; includes local min/max).
  int local_quantiles = 8;

  /// Resolve probe targets landing on already-fetched arcs locally (no
  /// messages). See ProbeOptions::skip_covered_targets; ablated in E11e.
  bool resolve_covered_locally = true;

  /// Peers answer probes from GK ε-sketches instead of exact order
  /// statistics. See ProbeOptions::use_sketch_summaries; ablated in E11f.
  bool use_sketch_summaries = false;
  double sketch_epsilon = 0.02;

  /// When > 0, probe responses carry fixed-size mergeable density sketches
  /// instead of quantile arrays (ProbeOptions::density_sketch_levels).
  uint32_t density_sketch_levels = 0;

  ReconstructionOptions reconstruction;

  /// Retry schedule applied to every probe (see ProbeOptions::retry).
  /// Default: single attempt, the historical skip-on-failure behavior.
  RetryPolicy retry;

  /// Seed for probe-target randomness.
  uint64_t seed = 42;
};

/// One complete estimation outcome.
struct DensityEstimate {
  /// The estimated global CDF over the unit key domain.
  PiecewiseLinearCdf cdf;

  /// The mergeable sketch the estimate was derived from, when it came off
  /// the hierarchical aggregation path (core/sketch_aggregation.h). When
  /// present, `cdf` equals sketch.ToCdf() and wire encoding ships the
  /// fixed-size sketch instead of the full knot list — the serving-path
  /// payload shrink (core/dissemination.h charges the smaller frame).
  std::optional<DensitySketch> sketch;

  /// N̂: estimated global item count.
  double estimated_total_items = 0.0;

  /// Distinct peers whose summaries back the estimate.
  size_t peers_probed = 0;

  /// Fraction of the ring directly covered by probed arcs.
  double covered_fraction = 0.0;

  /// Communication cost of this estimation run only.
  CostCounters cost;

  /// Fresh probe positions this run was asked to sample (m). Under faults
  /// only m' = probes_requested - failed_probes of them produced a CDF
  /// sample; the estimate is reconstructed from those m' and the reported
  /// confidence bound widens accordingly (ConfidenceEpsilon()).
  size_t probes_requested = 0;

  /// Probes lost to churn or injected faults (routing failed, the owner
  /// died or crashed mid-probe, or the retry budget ran out) this run.
  uint64_t failed_probes = 0;

  /// Retry attempts spent recovering probes this run.
  uint64_t retries = 0;

  /// Send attempts this run observed as timed out (dropped, crashed or
  /// hung destination, partition).
  uint64_t timeouts = 0;

  /// Virtual time at which the estimate was produced.
  double produced_at = 0.0;

  /// Distribution-free KS half-width at confidence 1 - delta, computed
  /// from the probes that actually SUCCEEDED (m'), not the requested
  /// budget — the honest, widened bound under degraded runs. 1.0 when
  /// nothing succeeded.
  double ConfidenceEpsilon(double delta = 0.05) const;

  /// Density at x implied by the piecewise-linear CDF (piecewise constant).
  double Pdf(double x) const { return cdf.DensityAt(x); }

  /// F̂(x).
  double Cdf(double x) const { return cdf.Evaluate(x); }

  /// F̂⁻¹(p).
  double Quantile(double p) const { return cdf.Inverse(p); }

  /// Smooth density view: a KDE over `samples` stratified inversion draws.
  Result<KernelDensityEstimator> SmoothedPdf(
      size_t samples = 1024,
      KernelType kernel = KernelType::kGaussian) const;
};

/// Self-tuning variant: probe in batches until the estimate stops moving.
struct AdaptiveOptions {
  /// Probes per batch.
  size_t batch_size = 64;

  /// Stop when the sup-distance between consecutive reconstructions falls
  /// below this for `patience` consecutive batches.
  double tolerance = 0.01;
  int patience = 2;

  /// Hard probe ceiling.
  size_t max_probes = 4096;
};

/// The distribution-free data density estimator for ring-based P2P
/// networks.
///
/// Protocol (executed by one querier peer):
///   1. Sample m₁ ring positions uniformly; route to each owner and fetch
///      its LocalSummary (arc, count, local quantiles) — unbiased CDF
///      sampling over the key domain.
///   2. Reconstruct a provisional global CDF (global_cdf.h).
///   3. For each refinement round, draw the next batch of probe targets by
///      stratified inversion from the provisional CDF, probe, and
///      re-reconstruct. Probes landing on already-fetched arcs are resolved
///      locally and cost nothing.
/// Total cost is O(m log n) messages; accuracy follows the distribution-
/// free DKW regime in m (see stats/bounds.h and the E1/E3 benchmarks).
class DistributionFreeEstimator {
 public:
  DistributionFreeEstimator(ChordRing* ring, DdeOptions options = {});

  /// Epoch-pinned estimator: the whole protocol (routing, liveness,
  /// summaries) reads the immutable `view`, so estimates are served while
  /// mutators rewrite the live ring. The query's fault clock is frozen to
  /// the view's publish time (CostContext::frozen_now) and produced_at
  /// reports that same timestamp — a pinned query is a pure function of
  /// (view, options.seed). The view must outlive the estimator. On a
  /// quiescent ring, bit-identical to the live-ring constructor.
  explicit DistributionFreeEstimator(const EpochView* view,
                                     DdeOptions options = {});

  /// Runs the full protocol from `querier` (must be an alive peer).
  Result<DensityEstimate> Estimate(NodeAddr querier);

  /// As Estimate(), but reuses `carry_over` summaries (from a previous run)
  /// as if they were already probed this run; used by incremental
  /// maintenance. New probes are appended to `carry_over`.
  Result<DensityEstimate> EstimateWith(NodeAddr querier,
                                       std::vector<LocalSummary>* carry_over,
                                       size_t fresh_probes);

  /// Self-tuning estimation: probes in batches (first uniform, then
  /// inversion-guided) and stops once consecutive reconstructions agree to
  /// within `adaptive.tolerance` (sup distance) for `patience` batches —
  /// no probe budget to pick. The configured num_probes/refinement_rounds
  /// are ignored; all other options apply.
  Result<DensityEstimate> EstimateAdaptive(NodeAddr querier,
                                           const AdaptiveOptions& adaptive);

  const DdeOptions& options() const { return options_; }

  /// The per-query cost context this estimator charges. Every run's cost
  /// is the context delta across the run (and is also merged back into the
  /// network's shared totals), so estimation never writes shared network
  /// state: one deployment serves any number of concurrent estimators.
  const CostContext& context() const { return ctx_; }

 private:
  /// True if `querier` can originate queries against this estimator's
  /// state source (live liveness, or epoch membership).
  bool QuerierAlive(NodeAddr querier) const {
    return view_ != nullptr ? view_->IsAlive(querier)
                            : ring_->IsAlive(querier);
  }
  Network& net() const {
    return view_ != nullptr ? view_->network() : ring_->network();
  }
  /// The virtual timestamp an estimate reports: the epoch's publish time
  /// in pinned mode (reading the live clock would race the mutator).
  double ProducedAt() const {
    return view_ != nullptr ? view_->published_at() : ring_->network().Now();
  }

  /// Null in epoch mode.
  ChordRing* ring_;
  /// Null in live mode; the pinned epoch otherwise.
  const EpochView* view_ = nullptr;
  DdeOptions options_;
  CdfProber prober_;
  Rng rng_;
  /// Derived from (network seed, options.seed): the estimator's private
  /// accounting/latency/fault stream, independent of all other traffic.
  CostContext ctx_;
};

}  // namespace ringdde

#endif  // RINGDDE_CORE_DENSITY_ESTIMATOR_H_
