#ifndef RINGDDE_SIM_SOCKET_TRANSPORT_H_
#define RINGDDE_SIM_SOCKET_TRANSPORT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "sim/transport.h"

namespace ringdde {

/// Client-side telemetry of one RPC channel. These are the REAL wire
/// numbers the E20 bench reports against the sim's charged byte counts.
struct RpcChannelStats {
  uint64_t rpcs_sent = 0;
  uint64_t rpcs_failed = 0;
  uint64_t wire_bytes_sent = 0;
  uint64_t wire_bytes_received = 0;
  /// Connections (re)established — first connect counts 1; every recovery
  /// after a server-side drop or severed socket adds another.
  uint64_t reconnects = 0;
  /// Wall-clock seconds per completed RPC, in completion order.
  std::vector<double> rpc_latency_seconds;
};

/// One request/response exchange with a ring node service. The request's
/// frame type selects the operation (RpcType); a successful reply echoes
/// the type, a failed one surfaces the server's Status.
class RpcChannel {
 public:
  virtual ~RpcChannel() = default;

  /// Sends `request` and blocks for the matching reply. A kError reply is
  /// decoded into its Status. Transport-level failures (connect refused,
  /// peer EOF after retries, deadline) surface as Unavailable/TimedOut.
  virtual Result<Frame> Call(const Frame& request) = 0;

  virtual const RpcChannelStats& stats() const = 0;
};

struct SocketChannelOptions {
  /// Per-RPC deadline: connect + send + await-reply must finish inside it.
  double rpc_deadline_seconds = 20.0;
  /// Transport-level attempts per Call (reconnect between attempts). The
  /// server's drop-fault closes the socket before dispatch, so a retried
  /// RPC still executes exactly once.
  int max_attempts = 5;
  /// Pause between reconnect attempts.
  double reconnect_backoff_seconds = 0.02;
};

/// Framed RPC over one persistent TCP connection to 127.0.0.1:port, with
/// lazy connect and reconnect-retry. NOT thread-safe: one channel per
/// client thread (matching CostContext ownership rules).
class SocketRpcChannel final : public RpcChannel {
 public:
  SocketRpcChannel(uint16_t port, SocketChannelOptions options = {});
  ~SocketRpcChannel() override;

  SocketRpcChannel(const SocketRpcChannel&) = delete;
  SocketRpcChannel& operator=(const SocketRpcChannel&) = delete;

  Result<Frame> Call(const Frame& request) override;

  const RpcChannelStats& stats() const override { return stats_; }

  /// Drops the connection (next Call reconnects).
  void Disconnect();

 private:
  Status EnsureConnected(double deadline_left_seconds);
  /// One attempt: send the encoded request, read one reply frame.
  Result<Frame> CallOnce(const std::vector<uint8_t>& encoded,
                         double deadline_left_seconds);

  uint16_t port_;
  SocketChannelOptions options_;
  int fd_ = -1;
  std::vector<uint8_t> read_buffer_;
  RpcChannelStats stats_;
};

/// In-process channel: frames are encoded to bytes, decoded back, and
/// dispatched to a handler directly — the full codec path with zero
/// sockets. This is the middle rung of the conformance ladder: it proves
/// the frame/payload codecs are lossless independently of socket
/// mechanics, so a conformance failure localizes to either the codec rung
/// or the socket rung.
class LoopbackChannel final : public RpcChannel {
 public:
  using Handler = std::function<Result<Frame>(const Frame& request)>;

  explicit LoopbackChannel(Handler handler);

  Result<Frame> Call(const Frame& request) override;

  const RpcChannelStats& stats() const override { return stats_; }

 private:
  Handler handler_;
  RpcChannelStats stats_;
};

}  // namespace ringdde

#endif  // RINGDDE_SIM_SOCKET_TRANSPORT_H_
