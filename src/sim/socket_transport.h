#ifndef RINGDDE_SIM_SOCKET_TRANSPORT_H_
#define RINGDDE_SIM_SOCKET_TRANSPORT_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "sim/latency_reservoir.h"
#include "sim/transport.h"

namespace ringdde {

/// Client-side telemetry of one RPC channel. These are the REAL wire
/// numbers the E20/E22 benches report against the sim's charged byte
/// counts.
struct RpcChannelStats {
  uint64_t rpcs_sent = 0;
  uint64_t rpcs_failed = 0;
  uint64_t wire_bytes_sent = 0;
  uint64_t wire_bytes_received = 0;
  /// Connections (re)established — first connect counts 1; every recovery
  /// after a server-side drop or severed socket adds another.
  uint64_t reconnects = 0;
  /// Wall-clock seconds per completed RPC. Bounded: a fixed-capacity
  /// deterministic reservoir (plus exact count/sum), so a channel's
  /// footprint stays constant no matter how many RPCs it issues.
  LatencyReservoir rpc_latency_seconds;
};

/// One request/response exchange with a ring node service. The request's
/// frame type selects the operation (RpcType); a successful reply echoes
/// the type, a failed one surfaces the server's Status.
class RpcChannel {
 public:
  virtual ~RpcChannel() = default;

  /// Sends `request` and blocks for the matching reply. A kError reply is
  /// decoded into its Status. Transport-level failures (connect refused,
  /// peer EOF after retries, deadline) surface as Unavailable/TimedOut.
  virtual Result<Frame> Call(const Frame& request) = 0;

  virtual const RpcChannelStats& stats() const = 0;
};

struct SocketChannelOptions {
  /// Server address (IPv4 dotted quad).
  std::string host = "127.0.0.1";
  /// Per-RPC deadline: connect + send + await-reply must finish inside it.
  double rpc_deadline_seconds = 20.0;
  /// Transport-level attempts per Call (reconnect between attempts). The
  /// server's drop-fault closes the socket before dispatch, so a retried
  /// RPC still executes exactly once.
  int max_attempts = 5;
  /// Pause between reconnect attempts.
  double reconnect_backoff_seconds = 0.02;
};

/// Framed RPC over one persistent TCP connection to host:port, with lazy
/// connect and reconnect-retry. One v1 frame in flight at a time. NOT
/// thread-safe: one channel per client thread (matching CostContext
/// ownership rules).
class SocketRpcChannel final : public RpcChannel {
 public:
  SocketRpcChannel(uint16_t port, SocketChannelOptions options = {});
  ~SocketRpcChannel() override;

  SocketRpcChannel(const SocketRpcChannel&) = delete;
  SocketRpcChannel& operator=(const SocketRpcChannel&) = delete;

  Result<Frame> Call(const Frame& request) override;

  const RpcChannelStats& stats() const override { return stats_; }

  /// Drops the connection (next Call reconnects).
  void Disconnect();

 private:
  Status EnsureConnected(double deadline_left_seconds);
  /// One attempt: send the encoded request, read one reply frame.
  Result<Frame> CallOnce(const std::vector<uint8_t>& encoded,
                         double deadline_left_seconds);

  uint16_t port_;
  SocketChannelOptions options_;
  int fd_ = -1;
  std::vector<uint8_t> read_buffer_;
  /// Request-encoding scratch, reused across Calls (capacity persists).
  std::vector<uint8_t> encode_buffer_;
  RpcChannelStats stats_;
};

/// Pipelined RPC over one persistent TCP connection: many RPCs may be in
/// flight simultaneously, matched to their replies by the v2 frame's
/// correlation id (sim/transport.h). Two usage styles:
///
///   - Start(request) -> cid, then Await(cid, &reply): issue a window of
///     requests back to back, then collect — one connection, one syscall
///     batch, no per-RPC round-trip serialization.
///   - Call(request): Start+Await fused (blocking, drop-in RpcChannel).
///
/// Thread-safe: many threads may Start/Await/Call concurrently over the
/// same channel. There is NO dedicated reader thread — whichever caller is
/// awaiting takes over the socket and pumps replies for everyone (relevant
/// on small machines: 64 channels add zero threads). Failure model is
/// fail-all-on-sever: a malformed frame, EOF, send error, or an Await
/// deadline marks every in-flight RPC failed and drops the connection
/// (no transparent retry — pipelined requests are not re-issued; callers
/// see Unavailable/TimedOut and decide). The next Start reconnects.
class MultiplexedRpcChannel final : public RpcChannel {
 public:
  MultiplexedRpcChannel(uint16_t port, SocketChannelOptions options = {});
  ~MultiplexedRpcChannel() override;

  MultiplexedRpcChannel(const MultiplexedRpcChannel&) = delete;
  MultiplexedRpcChannel& operator=(const MultiplexedRpcChannel&) = delete;

  /// Sends `request` without waiting; the returned correlation id claims
  /// the reply via Await. Connects lazily (with reconnect-backoff).
  Result<uint64_t> Start(const Frame& request);

  /// Blocks until the reply for `correlation_id` arrives (or the RPC
  /// deadline, measured from Start, expires). A kError reply is decoded
  /// into its Status. Each id may be awaited exactly once.
  Status Await(uint64_t correlation_id, Frame* reply);

  /// Start + Await fused.
  Result<Frame> Call(const Frame& request) override;

  /// NOT synchronized with in-flight callers: read after quiescence.
  const RpcChannelStats& stats() const override { return stats_; }

  /// In-flight RPCs (Started, not yet Awaited-and-returned).
  size_t pending() const;

 private:
  struct Pending {
    bool done = false;
    Status status = Status::OK();
    Frame reply;
    double start_seconds = 0.0;
  };

  Status EnsureConnectedLocked();
  /// Reads from the socket (lock released around blocking IO) and resolves
  /// buffered reply frames. Returns an error when the stream is dead.
  Status PumpLocked(std::unique_lock<std::mutex>& lock,
                    double deadline_seconds);
  /// Resolves every buffered complete frame against pending_.
  Status DrainFramesLocked();
  /// Marks every in-flight RPC failed and severs the connection.
  void FailAllLocked(const Status& status);
  void DisconnectLocked();

  uint16_t port_;
  SocketChannelOptions options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool reader_active_ = false;  ///< one awaiting caller pumps the socket
  int fd_ = -1;
  uint64_t next_correlation_id_ = 1;
  std::unordered_map<uint64_t, Pending> pending_;
  /// Read reassembly (bytes [parsed_, in_.size()) await framing) and
  /// encode/decode scratch — all reused across RPCs.
  std::vector<uint8_t> in_;
  size_t parsed_ = 0;
  std::vector<uint8_t> encode_buffer_;
  Frame decode_scratch_;
  RpcChannelStats stats_;
};

/// In-process channel: frames are encoded to bytes, decoded back, and
/// dispatched to a handler directly — the full codec path with zero
/// sockets. This is the middle rung of the conformance ladder: it proves
/// the frame/payload codecs are lossless independently of socket
/// mechanics, so a conformance failure localizes to either the codec rung
/// or the socket rung.
class LoopbackChannel final : public RpcChannel {
 public:
  using Handler = std::function<Result<Frame>(const Frame& request)>;

  explicit LoopbackChannel(Handler handler);

  Result<Frame> Call(const Frame& request) override;

  const RpcChannelStats& stats() const override { return stats_; }

 private:
  Handler handler_;
  RpcChannelStats stats_;
};

}  // namespace ringdde

#endif  // RINGDDE_SIM_SOCKET_TRANSPORT_H_
