#include "sim/event_queue.h"

#include <cassert>
#include <limits>
#include <utility>

namespace ringdde {

EventId EventQueue::ScheduleAt(double when, Callback cb) {
  assert(when >= now_ && "cannot schedule in the past");
  EventId id = next_id_++;
  heap_.push(Entry{when, next_seq_++, id, std::move(cb)});
  return id;
}

EventId EventQueue::ScheduleAfter(double delay, Callback cb) {
  assert(delay >= 0.0);
  return ScheduleAt(now_ + delay, std::move(cb));
}

bool EventQueue::Cancel(EventId id) {
  if (id == 0 || id >= next_id_) return false;
  // We cannot remove from the heap; remember the id and skip it on pop.
  return cancelled_.insert(id).second;
}

bool EventQueue::FireNext(double t_end) {
  while (!heap_.empty()) {
    const Entry& top = heap_.top();
    if (top.when > t_end) return false;
    if (cancelled_.erase(top.id) > 0) {
      heap_.pop();
      continue;
    }
    // Copy out before pop: the callback may schedule new events and
    // invalidate the reference.
    Entry entry{top.when, top.seq, top.id, top.cb};
    heap_.pop();
    now_ = entry.when;
    entry.cb();
    return true;
  }
  return false;
}

uint64_t EventQueue::RunUntil(double t_end) {
  uint64_t fired = 0;
  while (FireNext(t_end)) ++fired;
  if (now_ < t_end) now_ = t_end;
  return fired;
}

uint64_t EventQueue::RunAll(uint64_t max_events) {
  uint64_t fired = 0;
  while (fired < max_events &&
         FireNext(std::numeric_limits<double>::infinity())) {
    ++fired;
  }
  return fired;
}

}  // namespace ringdde
