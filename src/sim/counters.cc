#include "sim/counters.h"

#include <cstdio>

namespace ringdde {

std::string CostCounters::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "messages=%llu hops=%llu bytes=%llu latency_sum=%.6f",
                static_cast<unsigned long long>(messages),
                static_cast<unsigned long long>(hops),
                static_cast<unsigned long long>(bytes), latency_sum);
  return std::string(buf);
}

}  // namespace ringdde
