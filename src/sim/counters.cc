#include "sim/counters.h"

#include <cstdio>

namespace ringdde {

std::string CostCounters::ToString() const {
  char buf[240];
  std::snprintf(buf, sizeof(buf),
                "messages=%llu hops=%llu bytes=%llu latency_sum=%.6f "
                "timeouts=%llu retries=%llu failed_probes=%llu",
                static_cast<unsigned long long>(messages),
                static_cast<unsigned long long>(hops),
                static_cast<unsigned long long>(bytes), latency_sum,
                static_cast<unsigned long long>(timeouts),
                static_cast<unsigned long long>(retries),
                static_cast<unsigned long long>(failed_probes));
  return std::string(buf);
}

}  // namespace ringdde
