#include "sim/transport.h"

#include <string>

#include "common/codec.h"

namespace ringdde {

namespace {

void AppendFrameHeader(uint32_t length, uint8_t version, uint8_t type,
                       std::vector<uint8_t>* out) {
  out->push_back(static_cast<uint8_t>(length & 0xFF));
  out->push_back(static_cast<uint8_t>((length >> 8) & 0xFF));
  out->push_back(static_cast<uint8_t>((length >> 16) & 0xFF));
  out->push_back(static_cast<uint8_t>((length >> 24) & 0xFF));
  out->push_back(version);
  out->push_back(type);
}

}  // namespace

void EncodeFrame(uint8_t type, const uint8_t* payload, size_t payload_len,
                 std::vector<uint8_t>* out) {
  const uint32_t length = static_cast<uint32_t>(payload_len) + 2;
  out->reserve(out->size() + kFrameHeaderBytes + payload_len);
  AppendFrameHeader(length, kWireProtocolVersion, type, out);
  out->insert(out->end(), payload, payload + payload_len);
}

void EncodeMuxFrame(uint8_t type, uint64_t correlation_id,
                    const uint8_t* payload, size_t payload_len,
                    std::vector<uint8_t>* out) {
  // length covers version + type + correlation id + payload.
  const uint32_t length = static_cast<uint32_t>(payload_len) + 10;
  out->reserve(out->size() + kMuxFrameHeaderBytes + payload_len);
  AppendFrameHeader(length, kWireProtocolVersionMux, type, out);
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>((correlation_id >> (8 * i)) & 0xFF));
  }
  out->insert(out->end(), payload, payload + payload_len);
}

Status DecodeFrameInto(const uint8_t* data, size_t len, Frame* frame,
                       size_t* consumed) {
  if (len < 4) return Status::OutOfRange("incomplete frame: short header");
  const uint32_t length = static_cast<uint32_t>(data[0]) |
                          static_cast<uint32_t>(data[1]) << 8 |
                          static_cast<uint32_t>(data[2]) << 16 |
                          static_cast<uint32_t>(data[3]) << 24;
  // length covers at least version + type; anything smaller lies.
  if (length < 2) return Status::InvalidArgument("frame length undersized");
  if (static_cast<size_t>(length) - 2 > kMaxFramePayload + 8) {
    return Status::InvalidArgument("frame payload exceeds kMaxFramePayload");
  }
  if (len < 4 + static_cast<size_t>(length)) {
    return Status::OutOfRange("incomplete frame: short body");
  }
  const uint8_t version = data[4];
  size_t header = 0;
  uint64_t correlation_id = 0;
  if (version == kWireProtocolVersion) {
    header = kFrameHeaderBytes;
  } else if (version == kWireProtocolVersionMux) {
    if (length < 10) {
      return Status::InvalidArgument("mux frame too short for correlation id");
    }
    header = kMuxFrameHeaderBytes;
    for (int i = 0; i < 8; ++i) {
      correlation_id |= static_cast<uint64_t>(data[6 + i]) << (8 * i);
    }
  } else {
    return Status::InvalidArgument("unsupported wire protocol version");
  }
  const size_t payload_len = 4 + static_cast<size_t>(length) - header;
  if (payload_len > kMaxFramePayload) {
    return Status::InvalidArgument("frame payload exceeds kMaxFramePayload");
  }
  frame->type = data[5];
  frame->version = version;
  frame->correlation_id = correlation_id;
  frame->payload.assign(data + header, data + header + payload_len);
  if (consumed != nullptr) *consumed = 4 + static_cast<size_t>(length);
  return Status::OK();
}

Result<Frame> DecodeFrame(const uint8_t* data, size_t len, size_t* consumed) {
  Frame frame;
  RINGDDE_RETURN_IF_ERROR(DecodeFrameInto(data, len, &frame, consumed));
  return frame;
}

void EncodeStatusPayload(const Status& status, std::vector<uint8_t>* out) {
  Encoder enc;
  enc.PutU8(static_cast<uint8_t>(status.code()));
  enc.PutLengthPrefixedBytes(
      reinterpret_cast<const uint8_t*>(status.message().data()),
      status.message().size());
  *out = enc.Take();
}

Status DecodeStatusPayload(const std::vector<uint8_t>& payload) {
  Decoder dec(payload);
  uint8_t code = 0;
  const uint8_t* msg = nullptr;
  size_t msg_len = 0;
  if (!dec.GetU8(&code).ok() ||
      !dec.GetLengthPrefixedBytes(&msg, &msg_len).ok() ||
      code > static_cast<uint8_t>(StatusCode::kInternal) ||
      code == static_cast<uint8_t>(StatusCode::kOk)) {
    return Status::Internal("malformed error payload");
  }
  std::string text(reinterpret_cast<const char*>(msg), msg_len);
  switch (static_cast<StatusCode>(code)) {
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(std::move(text));
    case StatusCode::kNotFound:
      return Status::NotFound(std::move(text));
    case StatusCode::kOutOfRange:
      return Status::OutOfRange(std::move(text));
    case StatusCode::kFailedPrecondition:
      return Status::FailedPrecondition(std::move(text));
    case StatusCode::kUnavailable:
      return Status::Unavailable(std::move(text));
    case StatusCode::kTimedOut:
      return Status::TimedOut(std::move(text));
    default:
      return Status::Internal(std::move(text));
  }
}

}  // namespace ringdde
