#include "sim/transport.h"

#include <string>

#include "common/codec.h"

namespace ringdde {

void EncodeFrame(uint8_t type, const uint8_t* payload, size_t payload_len,
                 std::vector<uint8_t>* out) {
  const uint32_t length = static_cast<uint32_t>(payload_len) + 2;
  out->reserve(out->size() + kFrameHeaderBytes + payload_len);
  out->push_back(static_cast<uint8_t>(length & 0xFF));
  out->push_back(static_cast<uint8_t>((length >> 8) & 0xFF));
  out->push_back(static_cast<uint8_t>((length >> 16) & 0xFF));
  out->push_back(static_cast<uint8_t>((length >> 24) & 0xFF));
  out->push_back(kWireProtocolVersion);
  out->push_back(type);
  out->insert(out->end(), payload, payload + payload_len);
}

Result<Frame> DecodeFrame(const uint8_t* data, size_t len, size_t* consumed) {
  if (len < 4) return Status::OutOfRange("incomplete frame: short header");
  const uint32_t length = static_cast<uint32_t>(data[0]) |
                          static_cast<uint32_t>(data[1]) << 8 |
                          static_cast<uint32_t>(data[2]) << 16 |
                          static_cast<uint32_t>(data[3]) << 24;
  // length covers version + type + payload; anything smaller lies.
  if (length < 2) return Status::InvalidArgument("frame length undersized");
  const size_t payload_len = static_cast<size_t>(length) - 2;
  if (payload_len > kMaxFramePayload) {
    return Status::InvalidArgument("frame payload exceeds kMaxFramePayload");
  }
  if (len < 4 + static_cast<size_t>(length)) {
    return Status::OutOfRange("incomplete frame: short body");
  }
  if (data[4] != kWireProtocolVersion) {
    return Status::InvalidArgument("unsupported wire protocol version");
  }
  Frame frame;
  frame.type = data[5];
  frame.payload.assign(data + kFrameHeaderBytes,
                       data + kFrameHeaderBytes + payload_len);
  if (consumed != nullptr) *consumed = 4 + static_cast<size_t>(length);
  return frame;
}

void EncodeStatusPayload(const Status& status, std::vector<uint8_t>* out) {
  Encoder enc;
  enc.PutU8(static_cast<uint8_t>(status.code()));
  enc.PutLengthPrefixedBytes(
      reinterpret_cast<const uint8_t*>(status.message().data()),
      status.message().size());
  *out = enc.buffer();
}

Status DecodeStatusPayload(const std::vector<uint8_t>& payload) {
  Decoder dec(payload);
  uint8_t code = 0;
  const uint8_t* msg = nullptr;
  size_t msg_len = 0;
  if (!dec.GetU8(&code).ok() ||
      !dec.GetLengthPrefixedBytes(&msg, &msg_len).ok() ||
      code > static_cast<uint8_t>(StatusCode::kInternal) ||
      code == static_cast<uint8_t>(StatusCode::kOk)) {
    return Status::Internal("malformed error payload");
  }
  std::string text(reinterpret_cast<const char*>(msg), msg_len);
  switch (static_cast<StatusCode>(code)) {
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(std::move(text));
    case StatusCode::kNotFound:
      return Status::NotFound(std::move(text));
    case StatusCode::kOutOfRange:
      return Status::OutOfRange(std::move(text));
    case StatusCode::kFailedPrecondition:
      return Status::FailedPrecondition(std::move(text));
    case StatusCode::kUnavailable:
      return Status::Unavailable(std::move(text));
    case StatusCode::kTimedOut:
      return Status::TimedOut(std::move(text));
    default:
      return Status::Internal(std::move(text));
  }
}

}  // namespace ringdde
