#include "sim/latency_reservoir.h"

#include <algorithm>

#include "common/rng.h"

namespace ringdde {

LatencyReservoir::LatencyReservoir(size_t capacity, uint64_t seed)
    : capacity_(capacity == 0 ? 1 : capacity), seed_(seed) {}

void LatencyReservoir::Add(double seconds) {
  sum_ += seconds;
  const uint64_t index = count_++;
  if (samples_.size() < capacity_) {
    samples_.push_back(seconds);
    return;
  }
  // Algorithm R, derandomized: slot choice is a pure function of
  // (seed, index), so the retained subset never depends on timing or
  // thread interleaving of OTHER channels — only on this channel's own
  // observation order.
  const uint64_t r = SplitMix64(seed_ ^ (index * 0x9E3779B97F4A7C15ull));
  const uint64_t slot = r % (index + 1);
  if (slot < capacity_) {
    samples_[static_cast<size_t>(slot)] = seconds;
  }
}

double LatencyReservoir::Percentile(double p) const {
  return PercentileOf(samples_, p);
}

void LatencyReservoir::Reset() {
  count_ = 0;
  sum_ = 0.0;
  samples_.clear();
}

double PercentileOf(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  if (p <= 0.0) return values.front();
  if (p >= 1.0) return values.back();
  const double h = p * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(h);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double t = h - static_cast<double>(lo);
  return values[lo] + (values[hi] - values[lo]) * t;
}

}  // namespace ringdde
