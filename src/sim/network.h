#ifndef RINGDDE_SIM_NETWORK_H_
#define RINGDDE_SIM_NETWORK_H_

#include <memory>

#include "common/rng.h"
#include "common/status.h"
#include "sim/counters.h"
#include "sim/event_queue.h"
#include "sim/fault_injector.h"
#include "sim/latency_model.h"

namespace ringdde {

/// Opaque endpoint address (a node's stable name, NOT its ring id — a node
/// keeps its address across re-joins).
using NodeAddr = uint64_t;

/// Options for the simulated network fabric.
struct NetworkOptions {
  /// One-way message latency model. Null selects MakeDefaultLatencyModel().
  std::shared_ptr<LatencyModel> latency;
  /// Fixed per-message header overhead added to every payload, in bytes.
  uint64_t header_bytes = 40;
  /// Independent per-message loss probability in [0, 1). Protocols are
  /// modeled as reliable-with-retransmission: a lost message is re-sent
  /// after a timeout until it gets through, so loss shows up as extra
  /// messages/bytes/latency rather than as protocol failure.
  double loss_probability = 0.0;
  /// Retransmission timeout charged per lost attempt, in seconds.
  double retransmit_timeout_seconds = 0.2;
  /// Seed for the latency/loss sampling stream.
  uint64_t seed = 0xC0FFEE;
  /// Deterministic fault plan consulted by TrySend(). Null (the default)
  /// disables fault injection entirely: TrySend degenerates to Send and
  /// every protocol behaves bit-identically to a fault-free build.
  std::shared_ptr<FaultInjector> faults;
};

/// The message fabric shared by all peers of one simulated deployment.
///
/// Two usage styles coexist:
///  - Synchronous accounting: request/response protocols (lookups, probes)
///    call Send() per hop; the call records cost and returns the sampled
///    latency so the caller can accumulate the serial completion time.
///  - Event-driven: periodic processes (churn, gossip rounds, maintenance)
///    schedule themselves on the owned EventQueue.
class Network {
 public:
  explicit Network(NetworkOptions options = {});

  /// Records one logical message of `payload_bytes` from `from` to `to`,
  /// counting it as `hop_count` overlay hops (1 for a direct hop). With
  /// loss enabled, lost attempts are retransmitted and every attempt is
  /// charged. Returns the total delivery latency in seconds (including
  /// retransmission timeouts).
  double Send(NodeAddr from, NodeAddr to, uint64_t payload_bytes,
              uint64_t hop_count = 1);

  /// Fallible send: ONE delivery attempt judged by the attached
  /// FaultInjector. A dropped message, a crashed or hung destination, or
  /// an active partition costs the attempt plus one observed timeout
  /// (counters().timeouts) and returns TimedOut/Unavailable — the caller
  /// decides whether to retry (see common/retry_policy.h). Duplicated
  /// messages charge an extra message/bytes; delayed ones inflate the
  /// returned latency. Without an injector this is exactly Send(): same
  /// cost, same rng stream, same return value, wrapped in an OK Result.
  Result<double> TrySend(NodeAddr from, NodeAddr to, uint64_t payload_bytes,
                         uint64_t hop_count = 1);

  /// Records one protocol-level retry / failed probe into the counters
  /// (kept here so CostScope deltas capture them alongside message cost).
  void RecordRetry() { counters_.retries += 1; }
  void RecordFailedProbe() { counters_.failed_probes += 1; }

  /// Charges wall-clock the protocol spent waiting (retry backoff) to the
  /// serial-latency accounting without sending anything.
  void ChargeWait(double seconds) { counters_.latency_sum += seconds; }

  /// Messages lost (and retransmitted or abandoned) since construction or
  /// the last ResetCounters().
  uint64_t lost_messages() const { return lost_messages_; }

  /// The attached fault plan, or null when fault injection is off.
  const FaultInjector* fault_injector() const {
    return options_.faults.get();
  }

  /// Cumulative cost since construction (or the last ResetCounters()).
  const CostCounters& counters() const { return counters_; }
  void ResetCounters() {
    counters_.Reset();
    lost_messages_ = 0;
  }

  EventQueue& events() { return events_; }
  const EventQueue& events() const { return events_; }

  /// Virtual time of the event queue, for convenience.
  double Now() const { return events_.Now(); }

  const LatencyModel& latency_model() const { return *options_.latency; }

 private:
  NetworkOptions options_;
  Rng rng_;
  EventQueue events_;
  CostCounters counters_;
  uint64_t lost_messages_ = 0;
  /// Sequence number of the next TrySend attempt — the message identity
  /// the fault plan hashes. Never reset, so a deployment's fault schedule
  /// is one continuous stream.
  uint64_t send_seq_ = 0;
};

}  // namespace ringdde

#endif  // RINGDDE_SIM_NETWORK_H_
