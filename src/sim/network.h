#ifndef RINGDDE_SIM_NETWORK_H_
#define RINGDDE_SIM_NETWORK_H_

#include <memory>
#include <mutex>

#include "common/rng.h"
#include "common/status.h"
#include "sim/counters.h"
#include "sim/event_queue.h"
#include "sim/fault_injector.h"
#include "sim/latency_model.h"
#include "sim/transport.h"

namespace ringdde {

/// Options for the simulated network fabric.
struct NetworkOptions {
  /// One-way message latency model. Null selects MakeDefaultLatencyModel().
  std::shared_ptr<LatencyModel> latency;
  /// Fixed per-message header overhead added to every payload, in bytes.
  uint64_t header_bytes = 40;
  /// Independent per-message loss probability in [0, 1). Protocols are
  /// modeled as reliable-with-retransmission: a lost message is re-sent
  /// after a timeout until it gets through, so loss shows up as extra
  /// messages/bytes/latency rather than as protocol failure.
  double loss_probability = 0.0;
  /// Retransmission timeout charged per lost attempt, in seconds.
  double retransmit_timeout_seconds = 0.2;
  /// Seed for the latency/loss sampling stream.
  uint64_t seed = 0xC0FFEE;
  /// Deterministic fault plan consulted by TrySend(). Null (the default)
  /// disables fault injection entirely: TrySend degenerates to Send and
  /// every protocol behaves bit-identically to a fault-free build.
  std::shared_ptr<FaultInjector> faults;
};

/// The message fabric shared by all peers of one simulated deployment.
///
/// Three usage styles coexist:
///  - Synchronous accounting against the shared context: request/response
///    protocols driven from one thread (joins, churn, event-queue
///    maintenance) call the legacy Send()/TrySend() overloads, which charge
///    the network-owned CostContext exactly as historical builds did.
///  - Per-query accounting: concurrent read-only queriers (the estimation
///    path) pass their own CostContext to the const Send/TrySend overloads.
///    Nothing shared is written, so any number of queries can run in
///    parallel over one deployment; a finished query merges its context
///    back with Accumulate() so deployment-wide totals stay observable.
///  - Event-driven: periodic processes (churn, gossip rounds, maintenance)
///    schedule themselves on the owned EventQueue.
///
/// Network is the deterministic backend of the Transport interface (the
/// test oracle for the socket backend). It is `final` so code holding a
/// concrete Network* — the ring hot paths — keeps devirtualized direct
/// calls; only code written against Transport& pays a virtual dispatch.
class Network final : public Transport {
 public:
  explicit Network(NetworkOptions options = {});

  /// Records one logical message of `payload_bytes` from `from` to `to`
  /// against `ctx`, counting it as `hop_count` overlay hops (1 for a direct
  /// hop). With loss enabled, lost attempts are retransmitted and every
  /// attempt is charged. Returns the total delivery latency in seconds
  /// (including retransmission timeouts). Read-only on the network: safe to
  /// call concurrently with any other const accounting call as long as each
  /// thread uses its own context.
  double Send(CostContext& ctx, NodeAddr from, NodeAddr to,
              uint64_t payload_bytes, uint64_t hop_count = 1) const override;

  /// Fallible send against `ctx`: ONE delivery attempt judged by the
  /// attached FaultInjector. A dropped message, a crashed or hung
  /// destination, or an active partition costs the attempt plus one
  /// observed timeout (ctx.counters.timeouts) and returns
  /// TimedOut/Unavailable — the caller decides whether to retry (see
  /// common/retry_policy.h). Duplicated messages charge an extra
  /// message/bytes; delayed ones inflate the returned latency. Without an
  /// injector this is exactly Send(): same cost, same rng stream, same
  /// return value, wrapped in an OK Result.
  Result<double> TrySend(CostContext& ctx, NodeAddr from, NodeAddr to,
                         uint64_t payload_bytes,
                         uint64_t hop_count = 1) const override;

  /// Legacy single-threaded entry points: charge the network-owned shared
  /// context (bit-identical to historical builds where these counters and
  /// streams lived directly on the Network).
  double Send(NodeAddr from, NodeAddr to, uint64_t payload_bytes,
              uint64_t hop_count = 1) {
    return Send(shared_ctx_, from, to, payload_bytes, hop_count);
  }
  Result<double> TrySend(NodeAddr from, NodeAddr to, uint64_t payload_bytes,
                         uint64_t hop_count = 1) {
    return TrySend(shared_ctx_, from, to, payload_bytes, hop_count);
  }

  /// Records one protocol-level retry / failed probe into a context (kept
  /// here so CostScope deltas capture them alongside message cost).
  void RecordRetry(CostContext& ctx) const override {
    auto lock = MaybeLock(ctx);
    ctx.counters.retries += 1;
  }
  void RecordFailedProbe(CostContext& ctx) const override {
    auto lock = MaybeLock(ctx);
    ctx.counters.failed_probes += 1;
  }
  void RecordRetry() { RecordRetry(shared_ctx_); }
  void RecordFailedProbe() { RecordFailedProbe(shared_ctx_); }

  /// Charges wall-clock the protocol spent waiting (retry backoff) to the
  /// serial-latency accounting without sending anything.
  void ChargeWait(CostContext& ctx, double seconds) const override {
    auto lock = MaybeLock(ctx);
    ctx.counters.latency_sum += seconds;
  }
  void ChargeWait(double seconds) { ChargeWait(shared_ctx_, seconds); }

  /// The network-owned context behind the legacy overloads. Exposed so
  /// protocol layers can thread it explicitly through context-taking APIs.
  CostContext& shared_context() override { return shared_ctx_; }

  /// Builds an independent per-query context whose latency/loss/fault
  /// streams are a pure function of (network seed, query_seed) — identical
  /// across thread counts and across bit-identical deployment replicas.
  CostContext MakeQueryContext(uint64_t query_seed) const {
    return CostContext(SplitMix64(options_.seed ^ SplitMix64(query_seed)));
  }

  /// Merges a finished per-query context's cost into the shared totals so
  /// deployment-wide observers (CostScope around the shared counters,
  /// lost_messages()) keep seeing all traffic. Thread-safe: concurrent
  /// queries may accumulate simultaneously. `send_seq` is deliberately NOT
  /// merged — the shared context's own fault stream stays continuous.
  void Accumulate(const CostCounters& cost, uint64_t lost) {
    std::lock_guard<std::mutex> lock(merge_mu_);
    shared_ctx_.counters += cost;
    shared_ctx_.lost_messages += lost;
  }

  /// Messages lost (and retransmitted or abandoned) since construction or
  /// the last ResetCounters(), across the shared context and every
  /// Accumulate()d query context.
  uint64_t lost_messages() const { return shared_ctx_.lost_messages; }

  /// The attached fault plan, or null when fault injection is off.
  const FaultInjector* fault_injector() const {
    return options_.faults.get();
  }

  /// Cumulative cost since construction (or the last ResetCounters()).
  const CostCounters& counters() const { return shared_ctx_.counters; }
  void ResetCounters() {
    shared_ctx_.counters.Reset();
    shared_ctx_.lost_messages = 0;
  }

  EventQueue& events() { return events_; }
  const EventQueue& events() const { return events_; }

  /// Virtual time of the event queue, for convenience.
  double Now() const override { return events_.Now(); }

  const LatencyModel& latency_model() const { return *options_.latency; }

 private:
  /// The shared context is written both by the legacy overloads (a mutator
  /// thread driving churn/maintenance) and by Accumulate() on query threads.
  /// Charging it therefore takes merge_mu_; per-query contexts are owned by
  /// exactly one thread and stay lock-free. The pointer comparison is exact:
  /// only the legacy overloads and shared_context() ever hand out
  /// shared_ctx_ itself.
  std::unique_lock<std::mutex> MaybeLock(const CostContext& ctx) const {
    return &ctx == &shared_ctx_ ? std::unique_lock<std::mutex>(merge_mu_)
                                : std::unique_lock<std::mutex>();
  }

  NetworkOptions options_;
  EventQueue events_;
  /// The context charged by the legacy overloads; its rng is the historical
  /// network-seeded stream and its send_seq the historical global sequence.
  CostContext shared_ctx_;
  /// Serializes Accumulate() merges from concurrently finishing queries and
  /// any shared-context charge racing them (see MaybeLock).
  mutable std::mutex merge_mu_;
};

}  // namespace ringdde

#endif  // RINGDDE_SIM_NETWORK_H_
