#ifndef RINGDDE_SIM_LATENCY_RESERVOIR_H_
#define RINGDDE_SIM_LATENCY_RESERVOIR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ringdde {

/// Fixed-capacity latency sample set with exact count/sum.
///
/// RPC channels used to log EVERY completed RPC's latency into an
/// unbounded vector — per-RPC heap growth for the life of the channel and
/// unbounded memory under soak workloads. This reservoir bounds the
/// footprint at `capacity` doubles while keeping:
///  - `count()`/`sum()`/`mean()` EXACT (tracked outside the sample set),
///  - percentile estimates stable: Algorithm R with a DETERMINISTIC
///    SplitMix64 replacement stream keyed by (seed, observation index), so
///    the sampled subset — and therefore every reported percentile — is a
///    pure function of the observation sequence, not of scheduling.
///
/// Below `capacity` observations the reservoir holds every sample and
/// Percentile() is exact, which keeps E20/E21-scale reporting (hundreds to
/// thousands of RPCs against a 4096 default) byte-identical to the old
/// full-vector behavior.
class LatencyReservoir {
 public:
  static constexpr size_t kDefaultCapacity = 4096;

  explicit LatencyReservoir(size_t capacity = kDefaultCapacity,
                            uint64_t seed = 0x1A7E9C5ull);

  /// Records one observation (reservoir-samples past capacity).
  void Add(double seconds);

  /// Exact number of observations ever Add()ed.
  uint64_t count() const { return count_; }

  /// Exact sum of all observations (not just the retained ones).
  double sum() const { return sum_; }

  /// Exact mean over all observations; 0 when empty.
  double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }

  /// The retained samples, in insertion/replacement order.
  const std::vector<double>& samples() const { return samples_; }

  /// Linear-interpolated percentile (p in [0,1]) over the retained
  /// samples; exact while count() <= capacity. 0 when empty.
  double Percentile(double p) const;

  /// Forgets everything (capacity and determinism stream restart too).
  void Reset();

 private:
  size_t capacity_;
  uint64_t seed_;
  uint64_t count_ = 0;
  double sum_ = 0.0;
  std::vector<double> samples_;
};

/// Linear-interpolated percentile over an ad-hoc sample vector (sorted
/// in place). Shared by the reservoir and the bench reporters.
double PercentileOf(std::vector<double> values, double p);

}  // namespace ringdde

#endif  // RINGDDE_SIM_LATENCY_RESERVOIR_H_
