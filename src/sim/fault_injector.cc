#include "sim/fault_injector.h"

#include <cassert>
#include <cmath>

#include "common/rng.h"
#include "common/thread_pool.h"

namespace ringdde {

namespace {

// Domain-separation salts: each query family draws from its own hash
// stream so e.g. the drop decision of message k is independent of the
// duplicate decision of message k and of node k's crash window.
constexpr uint64_t kDropSalt = 0xD709ULL;
constexpr uint64_t kDupSalt = 0xD0B1ULL;
constexpr uint64_t kDelaySalt = 0xDE1AULL;
constexpr uint64_t kCrashSalt = 0xC4A5ULL;
constexpr uint64_t kHangSalt = 0x4A26ULL;
constexpr uint64_t kSideSalt = 0x51DEULL;

/// Uniform double in [0, 1) from 64 well-mixed bits.
double ToUnit(uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// Pure per-query uniform: mixes (seed ^ salt, index) through the same
/// derivation the thread pool uses for task seeds, so fault streams are
/// statistically independent of each other and of any simulation rng.
double UnitHash(uint64_t seed, uint64_t salt, uint64_t index) {
  return ToUnit(DeriveTaskSeed(seed ^ salt, index));
}

}  // namespace

FaultInjector::FaultInjector(FaultOptions options)
    : options_(options) {
  assert(options_.drop_probability >= 0.0 &&
         options_.drop_probability <= 1.0);
  assert(options_.duplicate_probability >= 0.0 &&
         options_.duplicate_probability <= 1.0);
  assert(options_.delay_probability >= 0.0 &&
         options_.delay_probability <= 1.0);
  assert(options_.crash_probability >= 0.0 &&
         options_.crash_probability <= 1.0);
  assert(options_.hang_probability >= 0.0 &&
         options_.hang_probability <= 1.0);
  assert(options_.minority_fraction >= 0.0 &&
         options_.minority_fraction <= 1.0);
}

MessageFault FaultInjector::DecideMessage(uint64_t msg_seq) const {
  MessageFault f;
  const uint64_t seed = options_.seed;
  if (options_.drop_probability > 0.0) {
    f.drop = UnitHash(seed, kDropSalt, msg_seq) < options_.drop_probability;
  }
  if (options_.duplicate_probability > 0.0) {
    f.duplicate =
        UnitHash(seed, kDupSalt, msg_seq) < options_.duplicate_probability;
  }
  if (options_.delay_probability > 0.0 &&
      UnitHash(seed, kDelaySalt, msg_seq) < options_.delay_probability) {
    // Exponential delay by inversion from a second mixing step, so the
    // selection bit and the magnitude stay independent.
    const double u = UnitHash(seed, kDelaySalt + 1, msg_seq);
    f.extra_delay_seconds =
        -options_.delay_mean_seconds * std::log(1.0 - u);
  }
  return f;
}

bool FaultInjector::IsCrashed(uint64_t addr, double now) const {
  if (options_.crash_probability <= 0.0) return false;
  if (UnitHash(options_.seed, kCrashSalt, addr) >=
      options_.crash_probability) {
    return false;
  }
  const double start = options_.crash_start_max_seconds *
                       UnitHash(options_.seed, kCrashSalt + 1, addr);
  return now >= start && now - start < options_.crash_duration_seconds;
}

bool FaultInjector::IsHung(uint64_t addr, double now) const {
  if (options_.hang_probability <= 0.0) return false;
  if (UnitHash(options_.seed, kHangSalt, addr) >=
      options_.hang_probability) {
    return false;
  }
  const double start = options_.hang_start_max_seconds *
                       UnitHash(options_.seed, kHangSalt + 1, addr);
  return now >= start && now - start < options_.hang_duration_seconds;
}

bool FaultInjector::OnMinoritySide(uint64_t addr) const {
  return UnitHash(options_.seed, kSideSalt, addr) <
         options_.minority_fraction;
}

bool FaultInjector::IsPartitioned(uint64_t from, uint64_t to,
                                  double now) const {
  if (options_.partitions.empty()) return false;
  bool active = false;
  for (const PartitionWindow& w : options_.partitions) {
    if (now >= w.start_seconds && now < w.end_seconds) {
      active = true;
      break;
    }
  }
  if (!active) return false;
  return OnMinoritySide(from) != OnMinoritySide(to);
}

}  // namespace ringdde
