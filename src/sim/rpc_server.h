#ifndef RINGDDE_SIM_RPC_SERVER_H_
#define RINGDDE_SIM_RPC_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "sim/transport.h"

namespace ringdde {

/// Wire-level fault verdict for one inbound RPC, decided by the attached
/// WireFaultHook from the server-wide rpc sequence number. This is the
/// socket realization of FaultInjector's message faults:
///  - drop  -> the connection is closed WITHOUT executing the request or
///             sending a reply (the client sees EOF and retries; because
///             the request never dispatched, a retried RPC still executes
///             exactly once).
///  - extra_delay_seconds -> the server sleeps for real before dispatching
///             (the client observes genuinely inflated RPC latency).
struct WireFault {
  bool drop = false;
  double extra_delay_seconds = 0.0;
};

struct RpcServerOptions {
  /// Idle deadline per connection: a peer that goes silent mid-frame for
  /// this long is disconnected (hung-peer guard; keeps ctest from wedging).
  double idle_timeout_seconds = 30.0;
  /// Accept-loop poll granularity; also bounds Stop() latency.
  double poll_interval_seconds = 0.05;
};

/// A minimal framed-RPC server over local TCP.
///
/// Binds 127.0.0.1 on an ephemeral port (port 0 — the OS picks; port()
/// reports it), accepts connections on a background thread, and serves
/// each connection on its own thread: read frames (sim/transport.h
/// framing), dispatch the handler, write the reply frame. A handler error
/// becomes a kError frame carrying the encoded Status; a malformed inbound
/// frame closes the connection. Connections are persistent — one client
/// issues many RPCs over one socket.
///
/// Teardown is deterministic: Stop() closes the listener and every live
/// connection, then joins all threads. The destructor calls Stop().
class RpcServer {
 public:
  /// Dispatch callback. Runs on connection threads — the handler is
  /// responsible for its own synchronization.
  using Handler = std::function<Result<Frame>(const Frame& request)>;

  /// Optional wire-fault hook, consulted once per inbound frame with the
  /// server-wide rpc sequence number (0, 1, 2, ... in arrival order).
  using WireFaultHook = std::function<WireFault(uint64_t rpc_seq)>;

  explicit RpcServer(Handler handler, RpcServerOptions options = {});
  ~RpcServer();

  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  /// Binds + listens + starts the accept loop. Fails if already started or
  /// if no ephemeral port could be bound.
  Status Start();

  /// Stops accepting, severs every connection, joins all threads.
  /// Idempotent.
  void Stop();

  /// The OS-assigned listening port; 0 before Start().
  uint16_t port() const { return port_; }

  void set_wire_fault_hook(WireFaultHook hook) {
    wire_fault_hook_ = std::move(hook);
  }

  /// Cumulative socket-level telemetry (atomics; readable live).
  uint64_t connections_accepted() const { return connections_accepted_; }
  uint64_t frames_served() const { return frames_served_; }
  uint64_t frames_dropped() const { return frames_dropped_; }
  uint64_t wire_bytes_received() const { return wire_bytes_received_; }
  uint64_t wire_bytes_sent() const { return wire_bytes_sent_; }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);
  /// Reaps finished connection threads (called from the accept loop).
  void JoinFinished();

  Handler handler_;
  RpcServerOptions options_;
  WireFaultHook wire_fault_hook_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;

  std::mutex conn_mu_;
  struct Connection {
    int fd;
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };
  std::vector<Connection> connections_;

  std::atomic<uint64_t> rpc_seq_{0};
  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> frames_served_{0};
  std::atomic<uint64_t> frames_dropped_{0};
  std::atomic<uint64_t> wire_bytes_received_{0};
  std::atomic<uint64_t> wire_bytes_sent_{0};
};

}  // namespace ringdde

#endif  // RINGDDE_SIM_RPC_SERVER_H_
