#ifndef RINGDDE_SIM_RPC_SERVER_H_
#define RINGDDE_SIM_RPC_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "sim/transport.h"

namespace ringdde {

/// Wire-level fault verdict for one inbound RPC, decided by the attached
/// WireFaultHook from the server-wide rpc sequence number. This is the
/// socket realization of FaultInjector's message faults:
///  - drop  -> the connection is closed WITHOUT executing the request or
///             sending a reply (the client sees EOF and retries; because
///             the request never dispatched, a retried RPC still executes
///             exactly once).
///  - extra_delay_seconds -> the server sleeps for real before dispatching
///             (the client observes genuinely inflated RPC latency).
struct WireFault {
  bool drop = false;
  double extra_delay_seconds = 0.0;
};

/// How the server realizes concurrency.
enum class RpcServerMode {
  /// Default: a small pool of epoll event-loop threads with nonblocking
  /// sockets. Per-connection read/write reassembly buffers survive across
  /// frames, replies are coalesced into writev batches, and connection
  /// slots are recycled the moment a peer disconnects.
  kEventLoop,
  /// Legacy baseline: one blocking thread per accepted connection. Kept
  /// for the e22 before/after comparison and as a semantics reference.
  kThreadPerConnection,
};

struct RpcServerOptions {
  /// Idle deadline per connection: a peer that goes silent mid-frame for
  /// this long is disconnected (hung-peer guard; keeps ctest from wedging).
  double idle_timeout_seconds = 30.0;
  /// Event/accept-loop poll granularity; also bounds Stop() latency and
  /// the idle-sweep cadence.
  double poll_interval_seconds = 0.05;
  /// Listen address (default loopback; set e.g. "0.0.0.0" to serve other
  /// hosts — `ringdde_node --listen-host`).
  std::string bind_host = "127.0.0.1";
  RpcServerMode mode = RpcServerMode::kEventLoop;
  /// Event-loop worker threads (kEventLoop only). Connections are
  /// assigned round-robin at accept; each is owned by exactly one loop
  /// thread, so per-connection state needs no locking.
  int event_loop_threads = 2;
};

/// A framed-RPC server over TCP.
///
/// Binds `bind_host` on an ephemeral port (port 0 — the OS picks; port()
/// reports it) and serves length-prefixed frames (sim/transport.h): read
/// frames, dispatch the handler, write the reply frame. Both frame
/// versions are served — v1 (blocking channels, byte-identical to the
/// pre-mux wire) and v2 (correlation-id frames from pipelined channels);
/// replies echo the request's version and correlation id, so many requests
/// may be in flight per connection and replies stay attributable. A
/// handler error becomes a kError frame carrying the encoded Status; a
/// malformed inbound frame closes the connection. Connections are
/// persistent — one client issues many RPCs over one socket.
///
/// The default kEventLoop mode runs a small epoll worker pool over
/// nonblocking sockets: per-connection reassembly buffers persist across
/// frames (arbitrary fragmentation is reassembled without re-allocating),
/// encoded replies are recycled through a per-connection free list and
/// flushed as coalesced writev batches, and a disconnect releases the
/// connection slot immediately. kThreadPerConnection serves each
/// connection on a dedicated blocking thread (the pre-event-loop
/// behavior); finished threads are reaped eagerly by the accept loop.
///
/// Teardown is deterministic: Stop() closes the listener and every live
/// connection, then joins all threads. The destructor calls Stop().
class RpcServer {
 public:
  /// Dispatch callback: fill `*reply` (its payload vector is connection-
  /// owned scratch whose capacity is reused across RPCs — assign into it)
  /// or return an error to be sent as a kError frame. Runs on event-loop
  /// or connection threads — the handler is responsible for its own
  /// synchronization.
  using Handler = std::function<Status(const Frame& request, Frame* reply)>;

  /// Optional wire-fault hook, consulted once per inbound frame with the
  /// server-wide rpc sequence number (0, 1, 2, ... in arrival order).
  using WireFaultHook = std::function<WireFault(uint64_t rpc_seq)>;

  explicit RpcServer(Handler handler, RpcServerOptions options = {});
  ~RpcServer();

  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  /// Binds + listens + starts the serving threads. Fails if already
  /// started or if no ephemeral port could be bound.
  Status Start();

  /// Stops accepting, severs every connection, joins all threads.
  /// Idempotent.
  void Stop();

  /// The OS-assigned listening port; 0 before Start().
  uint16_t port() const { return port_; }

  void set_wire_fault_hook(WireFaultHook hook) {
    wire_fault_hook_ = std::move(hook);
  }

  /// Cumulative socket-level telemetry (atomics; readable live).
  uint64_t connections_accepted() const { return connections_accepted_; }
  uint64_t frames_served() const { return frames_served_; }
  uint64_t frames_dropped() const { return frames_dropped_; }
  uint64_t wire_bytes_received() const { return wire_bytes_received_; }
  uint64_t wire_bytes_sent() const { return wire_bytes_sent_; }
  /// Currently-open connections. The slot-recycling regression gate:
  /// after clients disconnect this must return to 0 while the server is
  /// still running, in BOTH modes.
  uint64_t live_connections() const { return live_connections_; }

 private:
  // --- shared -------------------------------------------------------------
  /// One connection's persistent transport state. Owned by exactly one
  /// serving thread; every buffer survives across frames so steady-state
  /// RPC serving allocates nothing.
  struct Conn {
    int fd = -1;
    /// Read reassembly: bytes [parsed, in.size()) await framing. Compacted
    /// by memmove (capacity kept) after each drain.
    std::vector<uint8_t> in;
    size_t parsed = 0;
    /// Decode/dispatch scratch (payload capacity reused per frame).
    Frame request;
    Frame reply;
    /// Encoded replies awaiting the socket, oldest first; out_head is the
    /// byte offset already written of the front buffer.
    std::deque<std::vector<uint8_t>> out;
    size_t out_head = 0;
    /// Recycled reply buffers (bounded free list).
    std::vector<std::vector<uint8_t>> spare;
    /// Event-loop bookkeeping.
    double last_active = 0.0;
    bool want_write = false;
  };

  /// Parses every complete frame in conn->in, dispatches, and queues
  /// encoded replies. Returns false when the connection must close
  /// (malformed frame or wire-fault drop).
  bool DispatchBufferedFrames(Conn* conn);

  /// Takes a recycled (or fresh) buffer for one encoded reply.
  static std::vector<uint8_t> TakeReplyBuffer(Conn* conn);
  static void RecycleReplyBuffer(Conn* conn, std::vector<uint8_t> buffer);

  Status Listen();

  // --- event-loop mode -----------------------------------------------------
  struct EventLoop {
    int epoll_fd = -1;
    int wake_fd = -1;
    std::thread thread;
    /// Guards conns: inserted by the accepting loop thread, owned/erased
    /// by this loop's thread.
    std::mutex mu;
    std::unordered_map<int, std::unique_ptr<Conn>> conns;
  };

  Status StartEventLoops();
  void RunEventLoop(size_t loop_index);
  void AcceptReady(size_t loop_index);
  /// Handles one readable/writable connection; closes it on failure.
  void ServeEvent(EventLoop& loop, Conn* conn, uint32_t events);
  /// Sends as much queued output as the socket accepts (coalesced writev).
  /// Returns false on a dead peer.
  bool FlushWrites(Conn* conn);
  void CloseConn(EventLoop& loop, int fd);
  void SweepIdle(EventLoop& loop, double now_seconds);

  // --- thread-per-connection mode ------------------------------------------
  void AcceptLoopThreaded();
  void ServeConnectionThreaded(int fd);
  /// Reaps finished connection threads (called from the accept loop every
  /// iteration — finished slots recycle eagerly, not only at Stop()).
  void JoinFinished();

  Handler handler_;
  RpcServerOptions options_;
  WireFaultHook wire_fault_hook_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};

  std::vector<std::unique_ptr<EventLoop>> loops_;
  std::atomic<uint64_t> next_loop_{0};

  std::thread accept_thread_;
  std::mutex conn_mu_;
  struct ThreadedConnection {
    int fd;
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };
  std::vector<ThreadedConnection> connections_;

  std::atomic<uint64_t> rpc_seq_{0};
  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> frames_served_{0};
  std::atomic<uint64_t> frames_dropped_{0};
  std::atomic<uint64_t> wire_bytes_received_{0};
  std::atomic<uint64_t> wire_bytes_sent_{0};
  std::atomic<uint64_t> live_connections_{0};
};

}  // namespace ringdde

#endif  // RINGDDE_SIM_RPC_SERVER_H_
