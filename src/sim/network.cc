#include "sim/network.h"

namespace ringdde {

Network::Network(NetworkOptions options)
    : options_(std::move(options)), shared_ctx_(options_.seed) {
  if (!options_.latency) {
    options_.latency = MakeDefaultLatencyModel();
  }
  // A loss rate of 1 would retransmit forever; cap below certainty.
  if (options_.loss_probability < 0.0) options_.loss_probability = 0.0;
  if (options_.loss_probability > 0.99) options_.loss_probability = 0.99;
}

double Network::Send(CostContext& ctx, NodeAddr from, NodeAddr to,
                     uint64_t payload_bytes, uint64_t hop_count) const {
  const auto lock = MaybeLock(ctx);
  double total_latency = 0.0;
  // Reliable delivery over a lossy channel: retransmit until one attempt
  // gets through; every attempt is charged.
  for (;;) {
    const double latency = options_.latency->Sample(ctx.rng, from, to);
    ctx.counters.messages += 1;
    ctx.counters.bytes += payload_bytes + options_.header_bytes;
    ctx.counters.latency_sum += latency;
    if (!ctx.rng.Bernoulli(options_.loss_probability)) {
      total_latency += latency;
      break;
    }
    ++ctx.lost_messages;
    total_latency += options_.retransmit_timeout_seconds;
    ctx.counters.latency_sum += options_.retransmit_timeout_seconds;
  }
  ctx.counters.hops += hop_count;
  return total_latency;
}

Result<double> Network::TrySend(CostContext& ctx, NodeAddr from, NodeAddr to,
                                uint64_t payload_bytes,
                                uint64_t hop_count) const {
  if (options_.faults == nullptr) {
    // Zero-cost-off: identical code path, cost stream, and rng draws as a
    // build without the fault layer.
    return Send(ctx, from, to, payload_bytes, hop_count);
  }
  const FaultInjector& faults = *options_.faults;
  const auto lock = MaybeLock(ctx);
  const uint64_t seq = ctx.send_seq++;
  // Every attempt is charged whether or not it arrives: the sender put the
  // bytes on the wire either way.
  ctx.counters.messages += 1;
  ctx.counters.bytes += payload_bytes + options_.header_bytes;
  ctx.counters.hops += hop_count;
  // Epoch-pinned contexts evaluate fault windows at their frozen timestamp
  // so verdicts never depend on (or race with) the mutator-owned clock.
  const double now = ctx.frozen_now >= 0.0 ? ctx.frozen_now : Now();
  if (faults.IsCrashed(to, now)) {
    ++ctx.lost_messages;
    ++ctx.counters.timeouts;
    ctx.counters.latency_sum += options_.retransmit_timeout_seconds;
    return Status::Unavailable("destination crashed");
  }
  if (faults.IsHung(to, now)) {
    ++ctx.lost_messages;
    ++ctx.counters.timeouts;
    ctx.counters.latency_sum += options_.retransmit_timeout_seconds;
    return Status::TimedOut("destination hung");
  }
  if (faults.IsPartitioned(from, to, now)) {
    ++ctx.lost_messages;
    ++ctx.counters.timeouts;
    ctx.counters.latency_sum += options_.retransmit_timeout_seconds;
    return Status::TimedOut("partition between endpoints");
  }
  const MessageFault fault = faults.DecideMessage(seq);
  if (fault.drop) {
    ++ctx.lost_messages;
    ++ctx.counters.timeouts;
    ctx.counters.latency_sum += options_.retransmit_timeout_seconds;
    return Status::TimedOut("message dropped");
  }
  double latency =
      options_.latency->Sample(ctx.rng, from, to) + fault.extra_delay_seconds;
  if (fault.duplicate) {
    // The duplicate transits (and is charged) but carries no information.
    ctx.counters.messages += 1;
    ctx.counters.bytes += payload_bytes + options_.header_bytes;
  }
  ctx.counters.latency_sum += latency;
  return latency;
}

}  // namespace ringdde
