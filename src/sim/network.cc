#include "sim/network.h"

namespace ringdde {

Network::Network(NetworkOptions options)
    : options_(std::move(options)), rng_(options_.seed) {
  if (!options_.latency) {
    options_.latency = MakeDefaultLatencyModel();
  }
  // A loss rate of 1 would retransmit forever; cap below certainty.
  if (options_.loss_probability < 0.0) options_.loss_probability = 0.0;
  if (options_.loss_probability > 0.99) options_.loss_probability = 0.99;
}

double Network::Send(NodeAddr from, NodeAddr to, uint64_t payload_bytes,
                     uint64_t hop_count) {
  double total_latency = 0.0;
  // Reliable delivery over a lossy channel: retransmit until one attempt
  // gets through; every attempt is charged.
  for (;;) {
    const double latency = options_.latency->Sample(rng_, from, to);
    counters_.messages += 1;
    counters_.bytes += payload_bytes + options_.header_bytes;
    counters_.latency_sum += latency;
    if (!rng_.Bernoulli(options_.loss_probability)) {
      total_latency += latency;
      break;
    }
    ++lost_messages_;
    total_latency += options_.retransmit_timeout_seconds;
    counters_.latency_sum += options_.retransmit_timeout_seconds;
  }
  counters_.hops += hop_count;
  return total_latency;
}

Result<double> Network::TrySend(NodeAddr from, NodeAddr to,
                                uint64_t payload_bytes, uint64_t hop_count) {
  if (options_.faults == nullptr) {
    // Zero-cost-off: identical code path, cost stream, and rng draws as a
    // build without the fault layer.
    return Send(from, to, payload_bytes, hop_count);
  }
  const FaultInjector& faults = *options_.faults;
  const uint64_t seq = send_seq_++;
  // Every attempt is charged whether or not it arrives: the sender put the
  // bytes on the wire either way.
  counters_.messages += 1;
  counters_.bytes += payload_bytes + options_.header_bytes;
  counters_.hops += hop_count;
  const double now = Now();
  if (faults.IsCrashed(to, now)) {
    ++lost_messages_;
    ++counters_.timeouts;
    counters_.latency_sum += options_.retransmit_timeout_seconds;
    return Status::Unavailable("destination crashed");
  }
  if (faults.IsHung(to, now)) {
    ++lost_messages_;
    ++counters_.timeouts;
    counters_.latency_sum += options_.retransmit_timeout_seconds;
    return Status::TimedOut("destination hung");
  }
  if (faults.IsPartitioned(from, to, now)) {
    ++lost_messages_;
    ++counters_.timeouts;
    counters_.latency_sum += options_.retransmit_timeout_seconds;
    return Status::TimedOut("partition between endpoints");
  }
  const MessageFault fault = faults.DecideMessage(seq);
  if (fault.drop) {
    ++lost_messages_;
    ++counters_.timeouts;
    counters_.latency_sum += options_.retransmit_timeout_seconds;
    return Status::TimedOut("message dropped");
  }
  double latency =
      options_.latency->Sample(rng_, from, to) + fault.extra_delay_seconds;
  if (fault.duplicate) {
    // The duplicate transits (and is charged) but carries no information.
    counters_.messages += 1;
    counters_.bytes += payload_bytes + options_.header_bytes;
  }
  counters_.latency_sum += latency;
  return latency;
}

}  // namespace ringdde
