#ifndef RINGDDE_SIM_FAULT_INJECTOR_H_
#define RINGDDE_SIM_FAULT_INJECTOR_H_

#include <cstdint>
#include <vector>

namespace ringdde {

/// A scheduled network split: while active, messages between the two sides
/// are dropped (the sender observes a timeout). Sides are assigned per node
/// by a deterministic hash of its address; `minority_fraction` of the nodes
/// land on the minority side. Partitions heal exactly at `end_seconds`.
struct PartitionWindow {
  double start_seconds = 0.0;
  double end_seconds = 0.0;
};

/// Configuration of one deterministic fault plan.
///
/// Every probability selects faults by pure hashing (see FaultInjector), so
/// the realized schedule is a function of (seed, message sequence number,
/// node address, virtual time) only — never of thread count, scheduling, or
/// evaluation order. Replaying the same simulation replays the same faults.
struct FaultOptions {
  /// Per-message fault probabilities, each decided independently.
  double drop_probability = 0.0;       ///< message vanishes; sender times out
  double duplicate_probability = 0.0;  ///< delivered twice (extra cost)
  double delay_probability = 0.0;      ///< delivered late by an exp. delay
  double delay_mean_seconds = 0.1;     ///< mean of the extra delay

  /// Fraction of nodes that fail-stop during the run. A selected node is
  /// unresponsive (every message to it times out) for the window
  /// [crash_start, crash_start + crash_duration_seconds), where crash_start
  /// is uniform in [0, crash_start_max_seconds]. The defaults make selected
  /// nodes dead from t = 0 forever — the harshest setting.
  double crash_probability = 0.0;
  double crash_start_max_seconds = 0.0;
  double crash_duration_seconds = kForever;

  /// Fraction of nodes that hang (GC pause / overload): unresponsive during
  /// their window but alive again afterwards.
  double hang_probability = 0.0;
  double hang_start_max_seconds = 0.0;
  double hang_duration_seconds = 1.0;

  /// Scheduled network splits; may overlap.
  std::vector<PartitionWindow> partitions;
  /// Fraction of nodes assigned to the partition's minority side.
  double minority_fraction = 0.5;

  /// Master seed; the whole plan derives from it.
  uint64_t seed = 0xFA17;

  static constexpr double kForever = 1e300;
};

/// The per-message verdict of the fault plan.
struct MessageFault {
  bool drop = false;
  bool duplicate = false;
  double extra_delay_seconds = 0.0;
};

/// Deterministic fault oracle for one simulated deployment.
///
/// All queries are const and side-effect free: a decision is a pure hash of
/// the plan seed and the query's identity (message sequence number or node
/// address), via the same SplitMix64 derivation the thread pool uses for
/// task seeds. Two consequences the tests pin down:
///  - the schedule is byte-identical at any thread count and in any
///    evaluation order (fault_injector_test), and
///  - realized fault rates converge to the configured probabilities.
///
/// The injector never mutates ring or network state; it only answers
/// "does THIS attempt fail?". Network::TrySend consults it per attempt.
class FaultInjector {
 public:
  explicit FaultInjector(FaultOptions options = {});

  /// Fault verdict for the `msg_seq`-th message attempt of this network.
  MessageFault DecideMessage(uint64_t msg_seq) const;

  /// True if `addr` is inside its crash window at virtual time `now`.
  bool IsCrashed(uint64_t addr, double now) const;

  /// True if `addr` is inside its hang window at `now`.
  bool IsHung(uint64_t addr, double now) const;

  /// True if an active partition separates `from` and `to` at `now`.
  bool IsPartitioned(uint64_t from, uint64_t to, double now) const;

  /// True if `addr` is on the minority side of the (hash-assigned) split.
  bool OnMinoritySide(uint64_t addr) const;

  const FaultOptions& options() const { return options_; }

 private:
  FaultOptions options_;
};

}  // namespace ringdde

#endif  // RINGDDE_SIM_FAULT_INJECTOR_H_
