#include "sim/rpc_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

namespace ringdde {

namespace {

/// Coalescing width of one writev batch (replies per syscall).
constexpr int kMaxIovecs = 16;

/// Recycled reply buffers kept per connection.
constexpr size_t kMaxSpareBuffers = 8;

double MonotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void SetNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

RpcServer::RpcServer(Handler handler, RpcServerOptions options)
    : handler_(std::move(handler)), options_(std::move(options)) {}

RpcServer::~RpcServer() { Stop(); }

Status RpcServer::Listen() {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal("socket() failed");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  if (::inet_pton(AF_INET, options_.bind_host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("unparseable bind_host \"" +
                                   options_.bind_host + "\"");
  }
  addr.sin_port = 0;  // ephemeral: the OS picks a free port
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::Internal("bind(" + options_.bind_host + ":0) failed");
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) != 0) {
    ::close(fd);
    return Status::Internal("getsockname() failed");
  }
  if (::listen(fd, 128) != 0) {
    ::close(fd);
    return Status::Internal("listen() failed");
  }
  listen_fd_ = fd;
  port_ = ntohs(addr.sin_port);
  return Status::OK();
}

Status RpcServer::Start() {
  if (listen_fd_ >= 0) return Status::FailedPrecondition("already started");
  RINGDDE_RETURN_IF_ERROR(Listen());
  stopping_ = false;
  if (options_.mode == RpcServerMode::kEventLoop) {
    Status started = StartEventLoops();
    if (!started.ok()) {
      Stop();
      return started;
    }
    return Status::OK();
  }
  accept_thread_ = std::thread([this] { AcceptLoopThreaded(); });
  return Status::OK();
}

void RpcServer::Stop() {
  stopping_ = true;

  // Wake every event loop out of epoll_wait, then join.
  for (auto& loop : loops_) {
    if (loop->wake_fd >= 0) {
      uint64_t one = 1;
      [[maybe_unused]] ssize_t n =
          ::write(loop->wake_fd, &one, sizeof(one));
    }
  }
  for (auto& loop : loops_) {
    if (loop->thread.joinable()) loop->thread.join();
  }
  if (accept_thread_.joinable()) accept_thread_.join();

  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }

  for (auto& loop : loops_) {
    for (auto& entry : loop->conns) {
      ::shutdown(entry.second->fd, SHUT_RDWR);
      ::close(entry.second->fd);
      live_connections_ -= 1;
    }
    loop->conns.clear();
    if (loop->epoll_fd >= 0) ::close(loop->epoll_fd);
    if (loop->wake_fd >= 0) ::close(loop->wake_fd);
  }
  loops_.clear();

  std::vector<ThreadedConnection> conns;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    conns.swap(connections_);
  }
  for (ThreadedConnection& c : conns) {
    // Shutdown wakes the connection thread out of poll/recv; it then exits.
    ::shutdown(c.fd, SHUT_RDWR);
    if (c.thread.joinable()) c.thread.join();
    ::close(c.fd);
    live_connections_ -= 1;
  }
}

// --- shared frame pump ------------------------------------------------------

std::vector<uint8_t> RpcServer::TakeReplyBuffer(Conn* conn) {
  if (conn->spare.empty()) return {};
  std::vector<uint8_t> buffer = std::move(conn->spare.back());
  conn->spare.pop_back();
  buffer.clear();
  return buffer;
}

void RpcServer::RecycleReplyBuffer(Conn* conn, std::vector<uint8_t> buffer) {
  if (conn->spare.size() >= kMaxSpareBuffers) return;
  conn->spare.push_back(std::move(buffer));
}

bool RpcServer::DispatchBufferedFrames(Conn* conn) {
  bool alive = true;
  while (alive) {
    size_t consumed = 0;
    Status decoded = DecodeFrameInto(conn->in.data() + conn->parsed,
                                     conn->in.size() - conn->parsed,
                                     &conn->request, &consumed);
    if (!decoded.ok()) {
      if (decoded.code() != StatusCode::kOutOfRange) {
        alive = false;  // malformed framing: never resynchronize
      }
      break;  // incomplete: await more bytes
    }
    conn->parsed += consumed;

    const uint64_t seq = rpc_seq_.fetch_add(1);
    if (wire_fault_hook_) {
      WireFault fault = wire_fault_hook_(seq);
      if (fault.extra_delay_seconds > 0.0 && !stopping_) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(fault.extra_delay_seconds));
      }
      if (fault.drop) {
        // Severed BEFORE dispatch: the request never executes, so the
        // client's retry re-runs it exactly once end to end.
        frames_dropped_ += 1;
        alive = false;
        break;
      }
    }

    conn->reply.type = 0;
    conn->reply.payload.clear();
    Status handled = handler_(conn->request, &conn->reply);
    std::vector<uint8_t> buffer = TakeReplyBuffer(conn);
    const bool mux = conn->request.version == kWireProtocolVersionMux;
    if (handled.ok()) {
      if (mux) {
        EncodeMuxFrame(conn->reply.type, conn->request.correlation_id,
                       conn->reply.payload, &buffer);
      } else {
        EncodeFrame(conn->reply.type, conn->reply.payload, &buffer);
      }
    } else {
      conn->reply.payload.clear();
      EncodeStatusPayload(handled, &conn->reply.payload);
      const uint8_t err = static_cast<uint8_t>(RpcType::kError);
      if (mux) {
        EncodeMuxFrame(err, conn->request.correlation_id,
                       conn->reply.payload, &buffer);
      } else {
        EncodeFrame(err, conn->reply.payload, &buffer);
      }
    }
    conn->out.push_back(std::move(buffer));
    frames_served_ += 1;
  }

  // Compact the reassembly buffer in place: unparsed tail to the front,
  // capacity kept for the next read.
  if (conn->parsed > 0) {
    const size_t remaining = conn->in.size() - conn->parsed;
    if (remaining > 0) {
      std::memmove(conn->in.data(), conn->in.data() + conn->parsed,
                   remaining);
    }
    conn->in.resize(remaining);
    conn->parsed = 0;
  }
  return alive;
}

bool RpcServer::FlushWrites(Conn* conn) {
  while (!conn->out.empty()) {
    iovec iov[kMaxIovecs];
    int iov_count = 0;
    for (auto it = conn->out.begin();
         it != conn->out.end() && iov_count < kMaxIovecs; ++it) {
      const size_t off = iov_count == 0 ? conn->out_head : 0;
      iov[iov_count].iov_base = it->data() + off;
      iov[iov_count].iov_len = it->size() - off;
      ++iov_count;
    }
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = static_cast<size_t>(iov_count);
#ifdef MSG_NOSIGNAL
    ssize_t n = ::sendmsg(conn->fd, &msg, MSG_NOSIGNAL);
#else
    ssize_t n = ::sendmsg(conn->fd, &msg, 0);
#endif
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return true;  // socket full: the caller arms EPOLLOUT
      }
      return false;  // severed peer
    }
    wire_bytes_sent_ += static_cast<uint64_t>(n);
    size_t written = static_cast<size_t>(n);
    while (written > 0) {
      std::vector<uint8_t>& front = conn->out.front();
      const size_t avail = front.size() - conn->out_head;
      if (written >= avail) {
        written -= avail;
        conn->out_head = 0;
        RecycleReplyBuffer(conn, std::move(front));
        conn->out.pop_front();
      } else {
        conn->out_head += written;
        written = 0;
      }
    }
  }
  return true;
}

// --- event-loop mode --------------------------------------------------------

Status RpcServer::StartEventLoops() {
  if (!SetNonBlocking(listen_fd_)) {
    return Status::Internal("failed to set listener nonblocking");
  }
  const int threads =
      options_.event_loop_threads > 0 ? options_.event_loop_threads : 1;
  for (int i = 0; i < threads; ++i) {
    auto loop = std::make_unique<EventLoop>();
    loop->epoll_fd = ::epoll_create1(0);
    if (loop->epoll_fd < 0) return Status::Internal("epoll_create1() failed");
    loop->wake_fd = ::eventfd(0, EFD_NONBLOCK);
    if (loop->wake_fd < 0) return Status::Internal("eventfd() failed");
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = loop->wake_fd;
    if (::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, loop->wake_fd, &ev) != 0) {
      return Status::Internal("epoll_ctl(wake_fd) failed");
    }
    loops_.push_back(std::move(loop));
  }
  // The listener lives in loop 0; accepted fds fan out round-robin.
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  if (::epoll_ctl(loops_[0]->epoll_fd, EPOLL_CTL_ADD, listen_fd_, &ev) != 0) {
    return Status::Internal("epoll_ctl(listen_fd) failed");
  }
  for (size_t i = 0; i < loops_.size(); ++i) {
    loops_[i]->thread = std::thread([this, i] { RunEventLoop(i); });
  }
  return Status::OK();
}

void RpcServer::AcceptReady(size_t loop_index) {
  (void)loop_index;
  while (!stopping_) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN: accepted everything pending
    }
    if (!SetNonBlocking(fd)) {
      ::close(fd);
      continue;
    }
    SetNoDelay(fd);
    connections_accepted_ += 1;
    live_connections_ += 1;

    const size_t target = next_loop_.fetch_add(1) % loops_.size();
    EventLoop& loop = *loops_[target];
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conn->last_active = MonotonicSeconds();
    {
      std::lock_guard<std::mutex> lock(loop.mu);
      loop.conns.emplace(fd, std::move(conn));
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(loop.epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
      CloseConn(loop, fd);
    }
  }
}

void RpcServer::CloseConn(EventLoop& loop, int fd) {
  std::unique_ptr<Conn> conn;
  {
    std::lock_guard<std::mutex> lock(loop.mu);
    auto it = loop.conns.find(fd);
    if (it == loop.conns.end()) return;
    conn = std::move(it->second);
    loop.conns.erase(it);
  }
  ::epoll_ctl(loop.epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  live_connections_ -= 1;
  // `conn` (buffers and all) frees here — the slot recycles immediately,
  // not at Stop().
}

void RpcServer::SweepIdle(EventLoop& loop, double now_seconds) {
  std::vector<int> expired;
  {
    std::lock_guard<std::mutex> lock(loop.mu);
    for (const auto& entry : loop.conns) {
      if (now_seconds - entry.second->last_active >
          options_.idle_timeout_seconds) {
        expired.push_back(entry.first);
      }
    }
  }
  for (int fd : expired) CloseConn(loop, fd);
}

void RpcServer::ServeEvent(EventLoop& loop, Conn* conn, uint32_t events) {
  bool peer_gone = false;
  if ((events & EPOLLIN) != 0) {
    uint8_t chunk[65536];
    while (true) {
      ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n <= 0) {
        peer_gone = true;  // EOF or hard error
        break;
      }
      conn->in.insert(conn->in.end(), chunk, chunk + n);
      wire_bytes_received_ += static_cast<uint64_t>(n);
      if (static_cast<size_t>(n) < sizeof(chunk)) break;
    }
    conn->last_active = MonotonicSeconds();
    // Serve whatever arrived before honoring an EOF: a client that
    // half-closed after its last request still gets its replies.
    const bool framing_ok = DispatchBufferedFrames(conn);
    const bool write_ok = FlushWrites(conn);
    if (!framing_ok || !write_ok || peer_gone) {
      CloseConn(loop, conn->fd);
      return;
    }
  } else if ((events & (EPOLLHUP | EPOLLERR)) != 0) {
    CloseConn(loop, conn->fd);
    return;
  }

  if ((events & EPOLLOUT) != 0) {
    if (!FlushWrites(conn)) {
      CloseConn(loop, conn->fd);
      return;
    }
  }

  const bool want_write = !conn->out.empty();
  if (want_write != conn->want_write) {
    epoll_event ev{};
    ev.events = EPOLLIN | (want_write ? EPOLLOUT : 0);
    ev.data.fd = conn->fd;
    ::epoll_ctl(loop.epoll_fd, EPOLL_CTL_MOD, conn->fd, &ev);
    conn->want_write = want_write;
  }
}

void RpcServer::RunEventLoop(size_t loop_index) {
  EventLoop& loop = *loops_[loop_index];
  const int poll_ms =
      options_.poll_interval_seconds > 0.0
          ? static_cast<int>(options_.poll_interval_seconds * 1000.0)
          : 50;
  epoll_event events[64];
  double last_sweep = MonotonicSeconds();
  while (!stopping_) {
    int n = ::epoll_wait(loop.epoll_fd, events, 64, poll_ms > 0 ? poll_ms : 1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n && !stopping_; ++i) {
      const int fd = events[i].data.fd;
      if (fd == loop.wake_fd) {
        uint64_t drained = 0;
        [[maybe_unused]] ssize_t r =
            ::read(loop.wake_fd, &drained, sizeof(drained));
        continue;
      }
      if (fd == listen_fd_ && loop_index == 0) {
        AcceptReady(loop_index);
        continue;
      }
      Conn* conn = nullptr;
      {
        std::lock_guard<std::mutex> lock(loop.mu);
        auto it = loop.conns.find(fd);
        if (it != loop.conns.end()) conn = it->second.get();
      }
      if (conn != nullptr) ServeEvent(loop, conn, events[i].events);
    }
    const double now = MonotonicSeconds();
    if (now - last_sweep >= options_.poll_interval_seconds) {
      SweepIdle(loop, now);
      last_sweep = now;
    }
  }
}

// --- thread-per-connection mode ---------------------------------------------

void RpcServer::JoinFinished() {
  std::lock_guard<std::mutex> lock(conn_mu_);
  for (size_t i = 0; i < connections_.size();) {
    if (connections_[i].done->load()) {
      if (connections_[i].thread.joinable()) connections_[i].thread.join();
      ::close(connections_[i].fd);
      live_connections_ -= 1;
      connections_[i] = std::move(connections_.back());
      connections_.pop_back();
    } else {
      ++i;
    }
  }
}

void RpcServer::AcceptLoopThreaded() {
  const int poll_ms =
      static_cast<int>(options_.poll_interval_seconds * 1000.0);
  while (!stopping_) {
    // Reap EVERY iteration (not only idle ones): a long accept burst must
    // not let finished-connection slots pile up until Stop().
    JoinFinished();
    pollfd pfd{listen_fd_, POLLIN, 0};
    int rc = ::poll(&pfd, 1, poll_ms > 0 ? poll_ms : 50);
    if (rc < 0 && errno != EINTR) break;
    if (rc <= 0 || (pfd.revents & POLLIN) == 0) continue;
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    SetNoDelay(fd);
    connections_accepted_ += 1;
    live_connections_ += 1;
    auto done = std::make_shared<std::atomic<bool>>(false);
    std::thread t([this, fd, done] {
      ServeConnectionThreaded(fd);
      done->store(true);
    });
    std::lock_guard<std::mutex> lock(conn_mu_);
    connections_.push_back(ThreadedConnection{fd, std::move(t),
                                              std::move(done)});
  }
}

void RpcServer::ServeConnectionThreaded(int fd) {
  Conn conn;
  conn.fd = fd;
  const int idle_ms =
      static_cast<int>(options_.idle_timeout_seconds * 1000.0);
  const int poll_ms =
      static_cast<int>(options_.poll_interval_seconds * 1000.0);
  double idle_budget_ms = idle_ms;

  while (!stopping_) {
    const bool framing_ok = DispatchBufferedFrames(&conn);
    // Blocking socket: FlushWrites drains the whole queue (EAGAIN cannot
    // happen), so replies are fully on the wire before the next read.
    if (!FlushWrites(&conn)) break;
    if (!framing_ok) break;

    pollfd pfd{fd, POLLIN, 0};
    int rc = ::poll(&pfd, 1, poll_ms > 0 ? poll_ms : 50);
    if (rc < 0 && errno != EINTR) break;
    if (rc == 0) {
      idle_budget_ms -= (poll_ms > 0 ? poll_ms : 50);
      if (idle_budget_ms <= 0) break;  // hung peer: disconnect, fail fast
      continue;
    }
    if ((pfd.revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;

    uint8_t chunk[16384];
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // peer closed or error
    conn.in.insert(conn.in.end(), chunk, chunk + n);
    wire_bytes_received_ += static_cast<uint64_t>(n);
    idle_budget_ms = idle_ms;
  }
  ::shutdown(fd, SHUT_RDWR);
}

}  // namespace ringdde
