#include "sim/rpc_server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

namespace ringdde {

namespace {

/// Writes the whole buffer, tolerating partial writes and EINTR. Returns
/// false on a severed peer.
bool WriteAll(int fd, const uint8_t* data, size_t len) {
  size_t off = 0;
  while (off < len) {
#ifdef MSG_NOSIGNAL
    ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
#else
    ssize_t n = ::send(fd, data + off, len - off, 0);
#endif
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

RpcServer::RpcServer(Handler handler, RpcServerOptions options)
    : handler_(std::move(handler)), options_(options) {}

RpcServer::~RpcServer() { Stop(); }

Status RpcServer::Start() {
  if (listen_fd_ >= 0) return Status::FailedPrecondition("already started");
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal("socket() failed");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral: the OS picks a free port
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::Internal("bind(127.0.0.1:0) failed");
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) != 0) {
    ::close(fd);
    return Status::Internal("getsockname() failed");
  }
  if (::listen(fd, 64) != 0) {
    ::close(fd);
    return Status::Internal("listen() failed");
  }
  listen_fd_ = fd;
  port_ = ntohs(addr.sin_port);
  stopping_ = false;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void RpcServer::Stop() {
  stopping_ = true;
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  std::vector<Connection> conns;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    conns.swap(connections_);
  }
  for (Connection& c : conns) {
    // Shutdown wakes the connection thread out of poll/recv; it then exits.
    ::shutdown(c.fd, SHUT_RDWR);
    if (c.thread.joinable()) c.thread.join();
    ::close(c.fd);
  }
}

void RpcServer::JoinFinished() {
  std::lock_guard<std::mutex> lock(conn_mu_);
  for (size_t i = 0; i < connections_.size();) {
    if (connections_[i].done->load()) {
      if (connections_[i].thread.joinable()) connections_[i].thread.join();
      ::close(connections_[i].fd);
      connections_[i] = std::move(connections_.back());
      connections_.pop_back();
    } else {
      ++i;
    }
  }
}

void RpcServer::AcceptLoop() {
  const int poll_ms =
      static_cast<int>(options_.poll_interval_seconds * 1000.0);
  while (!stopping_) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    int rc = ::poll(&pfd, 1, poll_ms > 0 ? poll_ms : 50);
    if (rc < 0 && errno != EINTR) break;
    if (rc <= 0 || (pfd.revents & POLLIN) == 0) {
      JoinFinished();
      continue;
    }
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    connections_accepted_ += 1;
    auto done = std::make_shared<std::atomic<bool>>(false);
    std::thread t([this, fd, done] {
      ServeConnection(fd);
      done->store(true);
    });
    std::lock_guard<std::mutex> lock(conn_mu_);
    connections_.push_back(Connection{fd, std::move(t), std::move(done)});
  }
}

void RpcServer::ServeConnection(int fd) {
  std::vector<uint8_t> buffer;
  const int idle_ms =
      static_cast<int>(options_.idle_timeout_seconds * 1000.0);
  const int poll_ms =
      static_cast<int>(options_.poll_interval_seconds * 1000.0);
  double idle_budget_ms = idle_ms;

  while (!stopping_) {
    // Drain every complete frame already buffered before reading more.
    size_t consumed = 0;
    bool close_conn = false;
    while (true) {
      size_t frame_bytes = 0;
      Result<Frame> frame = DecodeFrame(buffer.data() + consumed,
                                        buffer.size() - consumed,
                                        &frame_bytes);
      if (!frame.ok()) {
        if (frame.status().code() == StatusCode::kOutOfRange) break;
        close_conn = true;  // malformed framing: never resynchronize
        break;
      }
      consumed += frame_bytes;
      idle_budget_ms = idle_ms;

      const uint64_t seq = rpc_seq_.fetch_add(1);
      if (wire_fault_hook_) {
        WireFault fault = wire_fault_hook_(seq);
        if (fault.extra_delay_seconds > 0.0 && !stopping_) {
          std::this_thread::sleep_for(std::chrono::duration<double>(
              fault.extra_delay_seconds));
        }
        if (fault.drop) {
          // Severed BEFORE dispatch: the request never executes, so the
          // client's retry re-runs it exactly once end to end.
          frames_dropped_ += 1;
          close_conn = true;
          break;
        }
      }

      Result<Frame> reply = handler_(*frame);
      std::vector<uint8_t> out;
      if (reply.ok()) {
        EncodeFrame(reply->type, reply->payload, &out);
      } else {
        std::vector<uint8_t> payload;
        EncodeStatusPayload(reply.status(), &payload);
        EncodeFrame(static_cast<uint8_t>(RpcType::kError), payload, &out);
      }
      if (!WriteAll(fd, out.data(), out.size())) {
        close_conn = true;
        break;
      }
      frames_served_ += 1;
      wire_bytes_sent_ += out.size();
    }
    if (consumed > 0) buffer.erase(buffer.begin(), buffer.begin() + consumed);
    if (close_conn) break;

    pollfd pfd{fd, POLLIN, 0};
    int rc = ::poll(&pfd, 1, poll_ms > 0 ? poll_ms : 50);
    if (rc < 0 && errno != EINTR) break;
    if (rc == 0) {
      idle_budget_ms -= (poll_ms > 0 ? poll_ms : 50);
      if (idle_budget_ms <= 0) break;  // hung peer: disconnect, fail fast
      continue;
    }
    if ((pfd.revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;

    uint8_t chunk[16384];
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // peer closed or error
    buffer.insert(buffer.end(), chunk, chunk + n);
    wire_bytes_received_ += static_cast<uint64_t>(n);
  }
  ::shutdown(fd, SHUT_RDWR);
}

}  // namespace ringdde
