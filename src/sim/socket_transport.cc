#include "sim/socket_transport.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <thread>

namespace ringdde {

namespace {

double MonotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool SendAll(int fd, const uint8_t* data, size_t len) {
  size_t off = 0;
  while (off < len) {
#ifdef MSG_NOSIGNAL
    ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
#else
    ssize_t n = ::send(fd, data + off, len - off, 0);
#endif
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

SocketRpcChannel::SocketRpcChannel(uint16_t port, SocketChannelOptions options)
    : port_(port), options_(options) {}

SocketRpcChannel::~SocketRpcChannel() { Disconnect(); }

void SocketRpcChannel::Disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  read_buffer_.clear();
}

Status SocketRpcChannel::EnsureConnected(double deadline_left_seconds) {
  if (fd_ >= 0) return Status::OK();
  if (deadline_left_seconds <= 0.0) {
    return Status::TimedOut("rpc deadline exhausted before connect");
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port_);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::Unavailable("connect(127.0.0.1) refused");
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  read_buffer_.clear();
  stats_.reconnects += 1;
  return Status::OK();
}

Result<Frame> SocketRpcChannel::CallOnce(const std::vector<uint8_t>& encoded,
                                         double deadline_left_seconds) {
  const double deadline = MonotonicSeconds() + deadline_left_seconds;
  RINGDDE_RETURN_IF_ERROR(EnsureConnected(deadline_left_seconds));
  if (!SendAll(fd_, encoded.data(), encoded.size())) {
    Disconnect();
    return Status::Unavailable("peer severed connection on send");
  }
  stats_.wire_bytes_sent += encoded.size();

  // Await exactly one reply frame under the remaining deadline.
  while (true) {
    size_t consumed = 0;
    Result<Frame> frame =
        DecodeFrame(read_buffer_.data(), read_buffer_.size(), &consumed);
    if (frame.ok()) {
      read_buffer_.erase(read_buffer_.begin(),
                         read_buffer_.begin() + consumed);
      return frame;
    }
    if (frame.status().code() != StatusCode::kOutOfRange) {
      Disconnect();  // malformed reply framing: the stream is poisoned
      return frame.status();
    }
    const double left = deadline - MonotonicSeconds();
    if (left <= 0.0) {
      // Fail fast AND sever: a late reply must not be mistaken for the
      // answer to a later request on this stream.
      Disconnect();
      return Status::TimedOut("rpc deadline exceeded awaiting reply");
    }
    pollfd pfd{fd_, POLLIN, 0};
    int rc = ::poll(&pfd, 1, static_cast<int>(left * 1000.0) + 1);
    if (rc < 0 && errno == EINTR) continue;
    if (rc <= 0) {
      Disconnect();
      return Status::TimedOut("rpc deadline exceeded awaiting reply");
    }
    uint8_t chunk[16384];
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      Disconnect();
      return Status::Unavailable("peer closed connection before reply");
    }
    read_buffer_.insert(read_buffer_.end(), chunk, chunk + n);
    stats_.wire_bytes_received += static_cast<uint64_t>(n);
  }
}

Result<Frame> SocketRpcChannel::Call(const Frame& request) {
  std::vector<uint8_t> encoded;
  EncodeFrame(request.type, request.payload, &encoded);

  const double start = MonotonicSeconds();
  const double deadline = start + options_.rpc_deadline_seconds;
  Status last = Status::Unavailable("rpc made no attempt");
  for (int attempt = 1; attempt <= options_.max_attempts; ++attempt) {
    if (attempt > 1) {
      std::this_thread::sleep_for(std::chrono::duration<double>(
          options_.reconnect_backoff_seconds));
    }
    const double left = deadline - MonotonicSeconds();
    if (left <= 0.0) {
      last = Status::TimedOut("rpc deadline exhausted across retries");
      break;
    }
    Result<Frame> reply = CallOnce(encoded, left);
    if (reply.ok()) {
      stats_.rpcs_sent += 1;
      stats_.rpc_latency_seconds.push_back(MonotonicSeconds() - start);
      if (reply->type == static_cast<uint8_t>(RpcType::kError)) {
        return DecodeStatusPayload(reply->payload);
      }
      return reply;
    }
    last = reply.status();
    // Deadline errors are terminal; severed connections are retried (the
    // server's wire drop-fault severs before dispatch, so a retry cannot
    // double-execute).
    if (last.IsTimedOut()) break;
  }
  stats_.rpcs_failed += 1;
  return last;
}

LoopbackChannel::LoopbackChannel(Handler handler)
    : handler_(std::move(handler)) {}

Result<Frame> LoopbackChannel::Call(const Frame& request) {
  // Round-trip through the real framing both ways so this rung certifies
  // the codecs, not just the handler.
  std::vector<uint8_t> encoded;
  EncodeFrame(request.type, request.payload, &encoded);
  stats_.wire_bytes_sent += encoded.size();
  size_t consumed = 0;
  Result<Frame> decoded = DecodeFrame(encoded.data(), encoded.size(),
                                      &consumed);
  if (!decoded.ok()) return decoded.status();

  const double start = MonotonicSeconds();
  Result<Frame> reply = handler_(*decoded);
  std::vector<uint8_t> reply_bytes;
  if (reply.ok()) {
    EncodeFrame(reply->type, reply->payload, &reply_bytes);
  } else {
    std::vector<uint8_t> payload;
    EncodeStatusPayload(reply.status(), &payload);
    EncodeFrame(static_cast<uint8_t>(RpcType::kError), payload,
                &reply_bytes);
  }
  stats_.wire_bytes_received += reply_bytes.size();
  Result<Frame> out =
      DecodeFrame(reply_bytes.data(), reply_bytes.size(), &consumed);
  if (!out.ok()) return out.status();
  stats_.rpcs_sent += 1;
  stats_.rpc_latency_seconds.push_back(MonotonicSeconds() - start);
  if (out->type == static_cast<uint8_t>(RpcType::kError)) {
    // Transport-level success: the error is the operation's, mirroring
    // SocketRpcChannel's accounting.
    return DecodeStatusPayload(out->payload);
  }
  return out;
}

}  // namespace ringdde
