#include "sim/socket_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

namespace ringdde {

namespace {

double MonotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool SendAll(int fd, const uint8_t* data, size_t len) {
  size_t off = 0;
  while (off < len) {
#ifdef MSG_NOSIGNAL
    ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
#else
    ssize_t n = ::send(fd, data + off, len - off, 0);
#endif
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

Status ConnectTo(const std::string& host, uint16_t port, int* out_fd) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("unparseable host \"" + host + "\"");
  }
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::Unavailable("connect(" + host + ") refused");
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  *out_fd = fd;
  return Status::OK();
}

}  // namespace

// --- SocketRpcChannel -------------------------------------------------------

SocketRpcChannel::SocketRpcChannel(uint16_t port, SocketChannelOptions options)
    : port_(port), options_(std::move(options)) {}

SocketRpcChannel::~SocketRpcChannel() { Disconnect(); }

void SocketRpcChannel::Disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  read_buffer_.clear();
}

Status SocketRpcChannel::EnsureConnected(double deadline_left_seconds) {
  if (fd_ >= 0) return Status::OK();
  if (deadline_left_seconds <= 0.0) {
    return Status::TimedOut("rpc deadline exhausted before connect");
  }
  RINGDDE_RETURN_IF_ERROR(ConnectTo(options_.host, port_, &fd_));
  read_buffer_.clear();
  stats_.reconnects += 1;
  return Status::OK();
}

Result<Frame> SocketRpcChannel::CallOnce(const std::vector<uint8_t>& encoded,
                                         double deadline_left_seconds) {
  const double deadline = MonotonicSeconds() + deadline_left_seconds;
  RINGDDE_RETURN_IF_ERROR(EnsureConnected(deadline_left_seconds));
  if (!SendAll(fd_, encoded.data(), encoded.size())) {
    Disconnect();
    return Status::Unavailable("peer severed connection on send");
  }
  stats_.wire_bytes_sent += encoded.size();

  // Await exactly one reply frame under the remaining deadline.
  while (true) {
    size_t consumed = 0;
    Result<Frame> frame =
        DecodeFrame(read_buffer_.data(), read_buffer_.size(), &consumed);
    if (frame.ok()) {
      read_buffer_.erase(read_buffer_.begin(),
                         read_buffer_.begin() + consumed);
      return frame;
    }
    if (frame.status().code() != StatusCode::kOutOfRange) {
      Disconnect();  // malformed reply framing: the stream is poisoned
      return frame.status();
    }
    const double left = deadline - MonotonicSeconds();
    if (left <= 0.0) {
      // Fail fast AND sever: a late reply must not be mistaken for the
      // answer to a later request on this stream.
      Disconnect();
      return Status::TimedOut("rpc deadline exceeded awaiting reply");
    }
    pollfd pfd{fd_, POLLIN, 0};
    int rc = ::poll(&pfd, 1, static_cast<int>(left * 1000.0) + 1);
    if (rc < 0 && errno == EINTR) continue;
    if (rc <= 0) {
      Disconnect();
      return Status::TimedOut("rpc deadline exceeded awaiting reply");
    }
    uint8_t chunk[16384];
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      Disconnect();
      return Status::Unavailable("peer closed connection before reply");
    }
    read_buffer_.insert(read_buffer_.end(), chunk, chunk + n);
    stats_.wire_bytes_received += static_cast<uint64_t>(n);
  }
}

Result<Frame> SocketRpcChannel::Call(const Frame& request) {
  // EncodeFrame APPENDS — clear the reused scratch or stale frames pile up.
  encode_buffer_.clear();
  EncodeFrame(request.type, request.payload, &encode_buffer_);

  const double start = MonotonicSeconds();
  const double deadline = start + options_.rpc_deadline_seconds;
  Status last = Status::Unavailable("rpc made no attempt");
  for (int attempt = 1; attempt <= options_.max_attempts; ++attempt) {
    if (attempt > 1) {
      std::this_thread::sleep_for(std::chrono::duration<double>(
          options_.reconnect_backoff_seconds));
    }
    const double left = deadline - MonotonicSeconds();
    if (left <= 0.0) {
      last = Status::TimedOut("rpc deadline exhausted across retries");
      break;
    }
    Result<Frame> reply = CallOnce(encode_buffer_, left);
    if (reply.ok()) {
      stats_.rpcs_sent += 1;
      stats_.rpc_latency_seconds.Add(MonotonicSeconds() - start);
      if (reply->type == static_cast<uint8_t>(RpcType::kError)) {
        return DecodeStatusPayload(reply->payload);
      }
      return reply;
    }
    last = reply.status();
    // Deadline errors are terminal; severed connections are retried (the
    // server's wire drop-fault severs before dispatch, so a retry cannot
    // double-execute).
    if (last.IsTimedOut()) break;
  }
  stats_.rpcs_failed += 1;
  return last;
}

// --- MultiplexedRpcChannel --------------------------------------------------

MultiplexedRpcChannel::MultiplexedRpcChannel(uint16_t port,
                                             SocketChannelOptions options)
    : port_(port), options_(std::move(options)) {}

MultiplexedRpcChannel::~MultiplexedRpcChannel() {
  std::lock_guard<std::mutex> lock(mu_);
  DisconnectLocked();
}

size_t MultiplexedRpcChannel::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_.size();
}

void MultiplexedRpcChannel::DisconnectLocked() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  in_.clear();
  parsed_ = 0;
}

Status MultiplexedRpcChannel::EnsureConnectedLocked() {
  if (fd_ >= 0) return Status::OK();
  Status last = Status::Unavailable("no connect attempt");
  for (int attempt = 1; attempt <= options_.max_attempts; ++attempt) {
    if (attempt > 1) {
      std::this_thread::sleep_for(std::chrono::duration<double>(
          options_.reconnect_backoff_seconds));
    }
    last = ConnectTo(options_.host, port_, &fd_);
    if (last.ok()) {
      in_.clear();
      parsed_ = 0;
      stats_.reconnects += 1;
      return Status::OK();
    }
    if (last.code() == StatusCode::kInvalidArgument) break;
  }
  return last;
}

void MultiplexedRpcChannel::FailAllLocked(const Status& status) {
  for (auto& entry : pending_) {
    Pending& p = entry.second;
    if (p.done) continue;
    p.done = true;
    p.status = status;
    stats_.rpcs_failed += 1;
  }
  DisconnectLocked();
  cv_.notify_all();
}

Result<uint64_t> MultiplexedRpcChannel::Start(const Frame& request) {
  std::lock_guard<std::mutex> lock(mu_);
  RINGDDE_RETURN_IF_ERROR(EnsureConnectedLocked());
  const uint64_t cid = next_correlation_id_++;
  encode_buffer_.clear();  // EncodeMuxFrame appends into the reused scratch.
  EncodeMuxFrame(request.type, cid, request.payload.data(),
                 request.payload.size(), &encode_buffer_);
  if (!SendAll(fd_, encode_buffer_.data(), encode_buffer_.size())) {
    Status severed = Status::Unavailable("peer severed connection on send");
    FailAllLocked(severed);
    return severed;
  }
  stats_.wire_bytes_sent += encode_buffer_.size();
  Pending p;
  p.start_seconds = MonotonicSeconds();
  pending_.emplace(cid, std::move(p));
  return cid;
}

Status MultiplexedRpcChannel::DrainFramesLocked() {
  const double now = MonotonicSeconds();
  while (true) {
    size_t consumed = 0;
    Status decoded = DecodeFrameInto(in_.data() + parsed_,
                                     in_.size() - parsed_, &decode_scratch_,
                                     &consumed);
    if (!decoded.ok()) {
      if (decoded.code() == StatusCode::kOutOfRange) break;  // incomplete
      return decoded;  // poisoned framing
    }
    parsed_ += consumed;
    auto it = pending_.find(decode_scratch_.correlation_id);
    if (it == pending_.end() || it->second.done) {
      continue;  // stale reply for an abandoned id: discard, stream is fine
    }
    Pending& p = it->second;
    p.reply.version = decode_scratch_.version;
    p.reply.type = decode_scratch_.type;
    p.reply.correlation_id = decode_scratch_.correlation_id;
    p.reply.payload.assign(decode_scratch_.payload.begin(),
                           decode_scratch_.payload.end());
    p.done = true;
    p.status = Status::OK();
    stats_.rpcs_sent += 1;
    stats_.rpc_latency_seconds.Add(now - p.start_seconds);
  }
  if (parsed_ > 0) {
    const size_t remaining = in_.size() - parsed_;
    if (remaining > 0) {
      std::memmove(in_.data(), in_.data() + parsed_, remaining);
    }
    in_.resize(remaining);
    parsed_ = 0;
  }
  return Status::OK();
}

Status MultiplexedRpcChannel::PumpLocked(std::unique_lock<std::mutex>& lock,
                                         double deadline_seconds) {
  const int fd = fd_;
  if (fd < 0) return Status::Unavailable("connection severed");
  lock.unlock();

  // Short poll slices so this caller re-checks its own completion (another
  // frame in the same batch may have resolved it) and honors its deadline.
  const double left = deadline_seconds - MonotonicSeconds();
  const int wait_ms =
      left > 0.0 ? std::min(50, static_cast<int>(left * 1000.0) + 1) : 1;
  pollfd pfd{fd, POLLIN, 0};
  int rc = ::poll(&pfd, 1, wait_ms);
  bool readable = rc > 0 && (pfd.revents & (POLLIN | POLLHUP | POLLERR)) != 0;

  uint8_t chunk[65536];
  ssize_t n = 0;
  bool peer_gone = false;
  if (readable) {
    n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) {
      n = 0;
    } else if (n <= 0) {
      peer_gone = true;
    }
  }

  lock.lock();
  if (fd_ != fd) return Status::OK();  // severed by another caller meanwhile
  if (peer_gone) {
    return Status::Unavailable("peer closed connection with RPCs in flight");
  }
  if (n > 0) {
    in_.insert(in_.end(), chunk, chunk + n);
    stats_.wire_bytes_received += static_cast<uint64_t>(n);
    Status drained = DrainFramesLocked();
    if (!drained.ok()) return drained;
    if (!pending_.empty()) cv_.notify_all();
  }
  return Status::OK();
}

Status MultiplexedRpcChannel::Await(uint64_t correlation_id, Frame* reply) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = pending_.find(correlation_id);
  if (it == pending_.end()) {
    return Status::InvalidArgument("Await on unknown correlation id");
  }
  const double deadline =
      it->second.start_seconds + options_.rpc_deadline_seconds;

  while (!it->second.done) {
    if (MonotonicSeconds() >= deadline) {
      // The whole stream is suspect once one reply is late: fail every
      // in-flight RPC (this one included) and sever.
      FailAllLocked(Status::TimedOut("rpc deadline exceeded awaiting reply"));
      break;
    }
    if (reader_active_) {
      // Someone else is pumping the socket; sleep until they hand off or
      // our reply lands.
      cv_.wait_for(lock, std::chrono::milliseconds(10));
    } else {
      reader_active_ = true;
      Status pumped = PumpLocked(lock, deadline);
      reader_active_ = false;
      cv_.notify_all();
      if (!pumped.ok()) FailAllLocked(pumped);
    }
    // pending_ may have rehashed (Start inserts) while we waited.
    it = pending_.find(correlation_id);
    if (it == pending_.end()) {
      return Status::Internal("pending rpc entry vanished");
    }
  }

  Pending p = std::move(it->second);
  pending_.erase(it);
  if (!p.status.ok()) return p.status;
  if (p.reply.type == static_cast<uint8_t>(RpcType::kError)) {
    return DecodeStatusPayload(p.reply.payload);
  }
  *reply = std::move(p.reply);
  return Status::OK();
}

Result<Frame> MultiplexedRpcChannel::Call(const Frame& request) {
  Result<uint64_t> cid = Start(request);
  if (!cid.ok()) return cid.status();
  Frame reply;
  RINGDDE_RETURN_IF_ERROR(Await(*cid, &reply));
  return reply;
}

// --- LoopbackChannel --------------------------------------------------------

LoopbackChannel::LoopbackChannel(Handler handler)
    : handler_(std::move(handler)) {}

Result<Frame> LoopbackChannel::Call(const Frame& request) {
  // Round-trip through the real framing both ways so this rung certifies
  // the codecs, not just the handler.
  std::vector<uint8_t> encoded;
  EncodeFrame(request.type, request.payload, &encoded);
  stats_.wire_bytes_sent += encoded.size();
  size_t consumed = 0;
  Result<Frame> decoded = DecodeFrame(encoded.data(), encoded.size(),
                                      &consumed);
  if (!decoded.ok()) return decoded.status();

  const double start = MonotonicSeconds();
  Result<Frame> reply = handler_(*decoded);
  std::vector<uint8_t> reply_bytes;
  if (reply.ok()) {
    EncodeFrame(reply->type, reply->payload, &reply_bytes);
  } else {
    std::vector<uint8_t> payload;
    EncodeStatusPayload(reply.status(), &payload);
    EncodeFrame(static_cast<uint8_t>(RpcType::kError), payload,
                &reply_bytes);
  }
  stats_.wire_bytes_received += reply_bytes.size();
  Result<Frame> out =
      DecodeFrame(reply_bytes.data(), reply_bytes.size(), &consumed);
  if (!out.ok()) return out.status();
  stats_.rpcs_sent += 1;
  stats_.rpc_latency_seconds.Add(MonotonicSeconds() - start);
  if (out->type == static_cast<uint8_t>(RpcType::kError)) {
    // Transport-level success: the error is the operation's, mirroring
    // SocketRpcChannel's accounting.
    return DecodeStatusPayload(out->payload);
  }
  return out;
}

}  // namespace ringdde
