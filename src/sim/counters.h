#ifndef RINGDDE_SIM_COUNTERS_H_
#define RINGDDE_SIM_COUNTERS_H_

#include <cstdint>
#include <string>

#include "common/rng.h"

namespace ringdde {

/// Communication-cost accounting for one network (or one experiment phase).
///
/// `messages` counts point-to-point sends, `hops` counts overlay routing
/// steps (a single lookup contributes several hops and the same number of
/// messages in iterative routing), `bytes` sums payload sizes, and
/// `latency_sum` accumulates per-message simulated latency so a caller can
/// compute the serial completion time of a sequential protocol.
struct CostCounters {
  uint64_t messages = 0;
  uint64_t hops = 0;
  uint64_t bytes = 0;
  double latency_sum = 0.0;

  /// Failure-path accounting (all zero unless a FaultInjector is attached
  /// or a protocol runs a retry loop): `timeouts` counts send attempts the
  /// sender observed as lost (dropped, crashed/hung destination, active
  /// partition), `retries` counts re-attempts protocols spent recovering,
  /// and `failed_probes` counts probe operations that exhausted their
  /// retry budget and returned an error.
  uint64_t timeouts = 0;
  uint64_t retries = 0;
  uint64_t failed_probes = 0;

  void Reset() { *this = CostCounters{}; }

  CostCounters operator-(const CostCounters& rhs) const {
    return CostCounters{messages - rhs.messages,
                        hops - rhs.hops,
                        bytes - rhs.bytes,
                        latency_sum - rhs.latency_sum,
                        timeouts - rhs.timeouts,
                        retries - rhs.retries,
                        failed_probes - rhs.failed_probes};
  }
  CostCounters& operator+=(const CostCounters& rhs) {
    messages += rhs.messages;
    hops += rhs.hops;
    bytes += rhs.bytes;
    latency_sum += rhs.latency_sum;
    timeouts += rhs.timeouts;
    retries += rhs.retries;
    failed_probes += rhs.failed_probes;
    return *this;
  }

  std::string ToString() const;
};

/// The complete mutable state one accounted query (or protocol flow)
/// threads through the network fabric: cost counters, the loss/latency
/// sampling stream, and the fault-plan message-identity sequence.
///
/// A Network owns one shared CostContext (the legacy Send/TrySend overloads
/// charge it, preserving historical behavior for event-driven protocols),
/// but any number of additional contexts can be in flight concurrently —
/// every Network accounting method is const over ring/network state and
/// touches only the context it is handed, which is what lets many queriers
/// share one immutable deployment snapshot. Per-context state means a
/// query's realized latency stream and fault schedule are a pure function
/// of the context seed, independent of scheduling or thread count.
struct CostContext {
  explicit CostContext(uint64_t seed) : rng(seed) {}

  CostCounters counters;

  /// Messages lost (dropped, retransmitted, or abandoned) on this context.
  uint64_t lost_messages = 0;

  /// Sequence number of the next TrySend attempt — the message identity
  /// the fault plan hashes. Starts at 0, never resets, so a context's
  /// fault schedule is one continuous reproducible stream.
  uint64_t send_seq = 0;

  /// Latency/loss sampling stream for this context's sends.
  Rng rng;

  /// Virtual timestamp at which fault windows (crash/hang/partition) are
  /// evaluated for this context's sends, or negative for "read the live
  /// clock". Queries pinned to an epoch snapshot freeze this to the
  /// snapshot's publish time: their fault verdicts then depend only on the
  /// (seed, view) pair — not on how far a concurrent mutator has advanced
  /// the event queue — which keeps pinned-view results reproducible and
  /// keeps readers off the mutator-owned clock entirely.
  double frozen_now = -1.0;
};

/// RAII snapshot: construct before a protocol phase, call Delta() after, to
/// get only the cost incurred by that phase.
class CostScope {
 public:
  explicit CostScope(const CostCounters& counters)
      : counters_(counters), start_(counters) {}

  CostCounters Delta() const { return counters_ - start_; }

 private:
  const CostCounters& counters_;
  CostCounters start_;
};

}  // namespace ringdde

#endif  // RINGDDE_SIM_COUNTERS_H_
