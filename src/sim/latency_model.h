#ifndef RINGDDE_SIM_LATENCY_MODEL_H_
#define RINGDDE_SIM_LATENCY_MODEL_H_

#include <memory>

#include "common/rng.h"

namespace ringdde {

/// Per-message one-way latency model for the simulated network.
/// Implementations must be deterministic given the Rng stream.
class LatencyModel {
 public:
  virtual ~LatencyModel() = default;

  /// Latency in seconds for one message between two endpoints. Endpoint
  /// addresses are passed so pairwise-correlated models are possible; the
  /// bundled models ignore them.
  virtual double Sample(Rng& rng, uint64_t from, uint64_t to) const = 0;

  /// Mean latency of the model (used for cost summaries).
  virtual double Mean() const = 0;
};

/// Fixed latency for every message. Good default for message-count studies
/// where only relative costs matter.
class ConstantLatency : public LatencyModel {
 public:
  explicit ConstantLatency(double seconds = 0.05);
  double Sample(Rng& rng, uint64_t from, uint64_t to) const override;
  double Mean() const override { return seconds_; }

 private:
  double seconds_;
};

/// Uniform latency in [lo, hi).
class UniformLatency : public LatencyModel {
 public:
  UniformLatency(double lo, double hi);
  double Sample(Rng& rng, uint64_t from, uint64_t to) const override;
  double Mean() const override { return 0.5 * (lo_ + hi_); }

 private:
  double lo_;
  double hi_;
};

/// Heavy-tailed internet-like latency: log-normal with the given median and
/// sigma (of the underlying normal). The common choice for P2P studies
/// because a small fraction of paths is much slower than the median.
class LogNormalLatency : public LatencyModel {
 public:
  LogNormalLatency(double median_seconds, double sigma);
  double Sample(Rng& rng, uint64_t from, uint64_t to) const override;
  double Mean() const override;

 private:
  double mu_;     ///< log(median)
  double sigma_;
};

/// Convenience factory for the default model used across benchmarks:
/// log-normal, 50 ms median, sigma 0.5.
std::unique_ptr<LatencyModel> MakeDefaultLatencyModel();

}  // namespace ringdde

#endif  // RINGDDE_SIM_LATENCY_MODEL_H_
