#ifndef RINGDDE_SIM_LATENCY_MODEL_H_
#define RINGDDE_SIM_LATENCY_MODEL_H_

#include <memory>
#include <vector>

#include "common/rng.h"

namespace ringdde {

/// Per-message one-way latency model for the simulated network.
/// Implementations must be deterministic given the Rng stream.
class LatencyModel {
 public:
  virtual ~LatencyModel() = default;

  /// Latency in seconds for one message between two endpoints. Endpoint
  /// addresses are passed so pairwise-correlated models are possible; the
  /// bundled models ignore them.
  virtual double Sample(Rng& rng, uint64_t from, uint64_t to) const = 0;

  /// Mean latency of the model (used for cost summaries).
  virtual double Mean() const = 0;
};

/// Fixed latency for every message. Good default for message-count studies
/// where only relative costs matter.
class ConstantLatency : public LatencyModel {
 public:
  explicit ConstantLatency(double seconds = 0.05);
  double Sample(Rng& rng, uint64_t from, uint64_t to) const override;
  double Mean() const override { return seconds_; }

 private:
  double seconds_;
};

/// Uniform latency in [lo, hi).
class UniformLatency : public LatencyModel {
 public:
  UniformLatency(double lo, double hi);
  double Sample(Rng& rng, uint64_t from, uint64_t to) const override;
  double Mean() const override { return 0.5 * (lo_ + hi_); }

 private:
  double lo_;
  double hi_;
};

/// Heavy-tailed internet-like latency: log-normal with the given median and
/// sigma (of the underlying normal). The common choice for P2P studies
/// because a small fraction of paths is much slower than the median.
class LogNormalLatency : public LatencyModel {
 public:
  LogNormalLatency(double median_seconds, double sigma);
  double Sample(Rng& rng, uint64_t from, uint64_t to) const override;
  double Mean() const override;

 private:
  double mu_;     ///< log(median)
  double sigma_;
};

/// A latency model FITTED to measured wire percentiles instead of guessed.
///
/// The sim's per-message latency was always a hand-picked log-normal
/// (MakeDefaultLatencyModel: 50 ms median, sigma 0.5) — fine for relative
/// message-count studies, uncalibrated against what the socket transport
/// actually delivers. CalibratedLatency closes that gap: give it the
/// measured p50/p99 of real RPC latency (bench/e22_rpc_throughput measures
/// them against the event-loop server) and it pins a log-normal through
/// exactly those two quantiles:
///
///   mu    = ln(p50)                      (log-normal median == p50)
///   sigma = ln(p99 / p50) / z_99         (z_99 = Phi^-1(0.99))
///
/// so QuantileSeconds(0.50) == p50 and QuantileSeconds(0.99) == p99 by
/// construction, and Sample() draws a deterministic stream whose empirical
/// percentiles converge to the measured wire percentiles. Degenerate
/// inputs (p99 <= p50, e.g. a constant-latency loopback) collapse to a
/// constant model at p50.
class CalibratedLatency : public LatencyModel {
 public:
  /// Fits through the two measured quantiles (seconds, p50 > 0).
  CalibratedLatency(double measured_p50_seconds, double measured_p99_seconds);

  double Sample(Rng& rng, uint64_t from, uint64_t to) const override;
  double Mean() const override;

  /// The fitted model's analytic quantile at p in (0,1).
  double QuantileSeconds(double p) const;

  double fitted_p50() const { return QuantileSeconds(0.50); }
  double fitted_p99() const { return QuantileSeconds(0.99); }
  double sigma() const { return sigma_; }

  /// Convenience: fit from raw latency samples (takes their empirical
  /// p50/p99). Returns a constant model at 0 when `seconds` is empty.
  static CalibratedLatency FitFromSamples(const std::vector<double>& seconds);

 private:
  double mu_;     ///< ln(p50)
  double sigma_;  ///< 0 for degenerate (constant) fits
};

/// Convenience factory for the default model used across benchmarks:
/// log-normal, 50 ms median, sigma 0.5.
std::unique_ptr<LatencyModel> MakeDefaultLatencyModel();

}  // namespace ringdde

#endif  // RINGDDE_SIM_LATENCY_MODEL_H_
