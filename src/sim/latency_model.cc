#include "sim/latency_model.h"

#include <cassert>
#include <cmath>

namespace ringdde {

ConstantLatency::ConstantLatency(double seconds) : seconds_(seconds) {
  assert(seconds >= 0.0);
}

double ConstantLatency::Sample(Rng& rng, uint64_t from, uint64_t to) const {
  (void)rng;
  (void)from;
  (void)to;
  return seconds_;
}

UniformLatency::UniformLatency(double lo, double hi) : lo_(lo), hi_(hi) {
  assert(0.0 <= lo && lo <= hi);
}

double UniformLatency::Sample(Rng& rng, uint64_t from, uint64_t to) const {
  (void)from;
  (void)to;
  return rng.UniformDouble(lo_, hi_);
}

LogNormalLatency::LogNormalLatency(double median_seconds, double sigma)
    : mu_(std::log(median_seconds)), sigma_(sigma) {
  assert(median_seconds > 0.0 && sigma >= 0.0);
}

double LogNormalLatency::Sample(Rng& rng, uint64_t from, uint64_t to) const {
  (void)from;
  (void)to;
  return std::exp(mu_ + sigma_ * rng.Normal());
}

double LogNormalLatency::Mean() const {
  return std::exp(mu_ + 0.5 * sigma_ * sigma_);
}

std::unique_ptr<LatencyModel> MakeDefaultLatencyModel() {
  return std::make_unique<LogNormalLatency>(0.05, 0.5);
}

}  // namespace ringdde
