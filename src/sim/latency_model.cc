#include "sim/latency_model.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ringdde {

ConstantLatency::ConstantLatency(double seconds) : seconds_(seconds) {
  assert(seconds >= 0.0);
}

double ConstantLatency::Sample(Rng& rng, uint64_t from, uint64_t to) const {
  (void)rng;
  (void)from;
  (void)to;
  return seconds_;
}

UniformLatency::UniformLatency(double lo, double hi) : lo_(lo), hi_(hi) {
  assert(0.0 <= lo && lo <= hi);
}

double UniformLatency::Sample(Rng& rng, uint64_t from, uint64_t to) const {
  (void)from;
  (void)to;
  return rng.UniformDouble(lo_, hi_);
}

LogNormalLatency::LogNormalLatency(double median_seconds, double sigma)
    : mu_(std::log(median_seconds)), sigma_(sigma) {
  assert(median_seconds > 0.0 && sigma >= 0.0);
}

double LogNormalLatency::Sample(Rng& rng, uint64_t from, uint64_t to) const {
  (void)from;
  (void)to;
  return std::exp(mu_ + sigma_ * rng.Normal());
}

double LogNormalLatency::Mean() const {
  return std::exp(mu_ + 0.5 * sigma_ * sigma_);
}

namespace {

/// Phi^-1(0.99) for the two-quantile log-normal fit.
constexpr double kZ99 = 2.3263478740408408;

/// Acklam's rational approximation of the standard normal inverse CDF
/// (relative error < 1.15e-9 — far below the 20% calibration tolerance).
double NormalQuantile(double p) {
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  if (p < plow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p > 1.0 - plow) {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  const double q = p - 0.5;
  const double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
          a[5]) *
         q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

}  // namespace

CalibratedLatency::CalibratedLatency(double measured_p50_seconds,
                                     double measured_p99_seconds) {
  const double p50 = measured_p50_seconds > 0.0 ? measured_p50_seconds : 1e-9;
  mu_ = std::log(p50);
  sigma_ = measured_p99_seconds > p50
               ? std::log(measured_p99_seconds / p50) / kZ99
               : 0.0;
}

double CalibratedLatency::Sample(Rng& rng, uint64_t from, uint64_t to) const {
  (void)from;
  (void)to;
  if (sigma_ == 0.0) {
    (void)rng;
    return std::exp(mu_);
  }
  return std::exp(mu_ + sigma_ * rng.Normal());
}

double CalibratedLatency::Mean() const {
  return std::exp(mu_ + 0.5 * sigma_ * sigma_);
}

double CalibratedLatency::QuantileSeconds(double p) const {
  return std::exp(mu_ + sigma_ * NormalQuantile(p));
}

std::unique_ptr<LatencyModel> MakeDefaultLatencyModel() {
  return std::make_unique<LogNormalLatency>(0.05, 0.5);
}

CalibratedLatency CalibratedLatency::FitFromSamples(
    const std::vector<double>& seconds) {
  if (seconds.empty()) return CalibratedLatency(0.0, 0.0);
  std::vector<double> sorted = seconds;
  std::sort(sorted.begin(), sorted.end());
  auto at = [&sorted](double p) {
    const double h = p * static_cast<double>(sorted.size() - 1);
    const size_t lo = static_cast<size_t>(h);
    const size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double t = h - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * t;
  };
  return CalibratedLatency(at(0.50), at(0.99));
}

}  // namespace ringdde
