#ifndef RINGDDE_SIM_EVENT_QUEUE_H_
#define RINGDDE_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

namespace ringdde {

/// Handle to a scheduled event, usable for cancellation.
using EventId = uint64_t;

/// Discrete-event simulation core: a virtual clock plus a time-ordered queue
/// of callbacks. Single-threaded and deterministic — two events at the same
/// timestamp fire in scheduling order (FIFO tie-break by sequence number).
///
/// Used by the churn process (joins/leaves), gossip rounds, and estimate
/// maintenance timers. Request/response probe traffic is accounted separately
/// through sim::Network, which is cheaper than queueing every hop.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Current virtual time (seconds). Starts at 0.
  double Now() const { return now_; }

  /// Schedules `cb` at absolute time `when` (must be >= Now()).
  /// Returns an id that can be passed to Cancel().
  EventId ScheduleAt(double when, Callback cb);

  /// Schedules `cb` `delay` seconds from now (delay >= 0).
  EventId ScheduleAfter(double delay, Callback cb);

  /// Marks the event cancelled; it will be skipped when its time comes.
  /// Returns false if the id is unknown or already fired.
  bool Cancel(EventId id);

  /// Runs events until the queue is empty or virtual time would exceed
  /// `t_end`. The clock is left at min(t_end, time of last fired event...)
  /// — precisely: at t_end if the run was cut off, else at the last event.
  /// Returns the number of events fired.
  uint64_t RunUntil(double t_end);

  /// Runs every pending event (including ones scheduled by handlers), with a
  /// safety cap on the number fired. Returns the number fired.
  uint64_t RunAll(uint64_t max_events = UINT64_MAX);

  /// Number of pending (non-cancelled) events.
  size_t PendingCount() const { return heap_.size() - cancelled_.size(); }

  bool Empty() const { return PendingCount() == 0; }

 private:
  struct Entry {
    double when;
    uint64_t seq;
    EventId id;
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  /// Pops and fires the earliest event; returns false if none eligible.
  bool FireNext(double t_end);

  double now_ = 0.0;
  uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace ringdde

#endif  // RINGDDE_SIM_EVENT_QUEUE_H_
