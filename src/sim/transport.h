#ifndef RINGDDE_SIM_TRANSPORT_H_
#define RINGDDE_SIM_TRANSPORT_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "sim/counters.h"

namespace ringdde {

/// Opaque endpoint address (a node's stable name, NOT its ring id — a node
/// keeps its address across re-joins).
using NodeAddr = uint64_t;

/// The message-delivery abstraction every protocol layer charges its
/// traffic through.
///
/// Two backends exist:
///  - sim/network.h `Network`: the deterministic in-process fabric. Every
///    send is a function call whose cost (messages, hops, bytes, sampled
///    latency, fault verdicts) is charged to a CostContext. This backend is
///    the test oracle: its behavior is a pure function of seeds.
///  - the socket backend (sim/socket_transport.h + sim/rpc_server.h): the
///    same protocol payloads (core/wire.h codecs) framed over local
///    TCP sockets between real processes. The deterministic protocol logic
///    runs server-side against the identical sim substrate, so the wire
///    deployment remains conformant to the oracle (see
///    tests/transport_conformance_test.cc); the sockets add *real* wire
///    bytes and RPC latency, measured by bench/e20_wire_cost.
///
/// The interface is exactly the accounting surface CdfProber,
/// EstimateDisseminator, and the retry policies use; ChordRing exposes its
/// fabric through it (ChordRing::transport()). Contexts follow the same
/// ownership rules as Network documents: the shared context is
/// mutex-guarded, per-query contexts are single-owner and lock-free.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Records one logical message of `payload_bytes` from `from` to `to`
  /// against `ctx`, counted as `hop_count` overlay hops. Returns the total
  /// delivery latency in seconds.
  virtual double Send(CostContext& ctx, NodeAddr from, NodeAddr to,
                      uint64_t payload_bytes, uint64_t hop_count = 1) const = 0;

  /// Fallible send: ONE delivery attempt. A dropped message, crashed or
  /// hung destination, or active partition costs the attempt plus one
  /// observed timeout and returns TimedOut/Unavailable; the caller decides
  /// whether to retry (common/retry_policy.h).
  virtual Result<double> TrySend(CostContext& ctx, NodeAddr from, NodeAddr to,
                                 uint64_t payload_bytes,
                                 uint64_t hop_count = 1) const = 0;

  /// Records one protocol-level retry / failed probe into a context.
  virtual void RecordRetry(CostContext& ctx) const = 0;
  virtual void RecordFailedProbe(CostContext& ctx) const = 0;

  /// Charges wall-clock the protocol spent waiting (retry backoff) without
  /// sending anything.
  virtual void ChargeWait(CostContext& ctx, double seconds) const = 0;

  /// Virtual time of the fabric.
  virtual double Now() const = 0;

  /// The transport-owned context behind the legacy overloads.
  virtual CostContext& shared_context() = 0;

  /// Legacy single-threaded entry points: charge the shared context.
  double Send(NodeAddr from, NodeAddr to, uint64_t payload_bytes,
              uint64_t hop_count = 1) {
    return Send(shared_context(), from, to, payload_bytes, hop_count);
  }
  Result<double> TrySend(NodeAddr from, NodeAddr to, uint64_t payload_bytes,
                         uint64_t hop_count = 1) {
    return TrySend(shared_context(), from, to, payload_bytes, hop_count);
  }
  void RecordRetry() { RecordRetry(shared_context()); }
  void RecordFailedProbe() { RecordFailedProbe(shared_context()); }
  void ChargeWait(double seconds) { ChargeWait(shared_context(), seconds); }
};

// --- Wire framing -----------------------------------------------------------
//
// Every RPC between ring processes is one frame. Two frame versions share
// the wire:
//
//   v1:  [u32 length LE] [u8 version=1] [u8 type] [payload bytes]
//   v2:  [u32 length LE] [u8 version=2] [u8 type] [u64 correlation id LE]
//        [payload bytes]
//
// `length` counts everything after itself (version + type + optional
// correlation id + payload). Payloads are core/wire.h codec messages and
// are IDENTICAL across versions — v2 only wraps them with a correlation
// id so many RPCs can be in flight on one connection at once (the
// multiplexed channel matches replies to requests by id; replies echo the
// request's version and id). v1 frames stay byte-for-byte what they were
// before v2 existed, so the sim-vs-wire conformance ladder and every
// committed byte charge are untouched. A peer speaking an unknown version
// is rejected at the frame layer, before any payload decoding. Frames are
// bounded (kMaxFramePayload) so a length-lying header can never drive an
// allocation or an over-read.

/// Protocol version stamped into every blocking-channel frame.
inline constexpr uint8_t kWireProtocolVersion = 1;

/// Extension version carrying a correlation id for pipelined RPCs.
inline constexpr uint8_t kWireProtocolVersionMux = 2;

/// Hard ceiling on one frame's payload (16 MiB — a full DensityEstimate at
/// maximal knot counts is ~3 orders of magnitude smaller).
inline constexpr size_t kMaxFramePayload = 16u << 20;

/// v1 frame header bytes on the wire before the payload.
inline constexpr size_t kFrameHeaderBytes = 6;

/// v2 frame header bytes (v1 header + 8-byte correlation id).
inline constexpr size_t kMuxFrameHeaderBytes = 14;

/// Message-type tags. Requests echo their tag in the success response;
/// failures answer with kError carrying an encoded Status.
enum class RpcType : uint8_t {
  kHello = 0x01,      ///< handshake: -> fingerprint, peers, items
  kJoin = 0x02,       ///< k protocol joins -> fingerprint
  kStabilize = 0x03,  ///< StabilizeAll -> fingerprint
  kInsert = 0x04,     ///< bulk-load a dataset spec -> total items
  kProbe = 0x05,      ///< CDF probe -> LocalSummary + cost delta
  kEstimate = 0x06,   ///< full DDE estimation -> estimate + cost
  kCounters = 0x07,   ///< shared network totals snapshot
  kShutdown = 0x08,   ///< orderly stop; reply precedes the stop
  kSketchEstimate = 0x09,  ///< hierarchical sketch convergecast -> estimate
  kError = 0x7F,      ///< response-only: encoded Status payload
};

/// One decoded frame. `version`/`correlation_id` are transport-layer
/// concerns: handlers receive the inner (type, payload) and never see
/// them; servers echo the request's version and id onto the reply frame.
struct Frame {
  uint8_t type = 0;
  std::vector<uint8_t> payload;
  /// Which frame version carried this payload (1 or 2).
  uint8_t version = kWireProtocolVersion;
  /// Meaningful only when version == kWireProtocolVersionMux.
  uint64_t correlation_id = 0;
};

/// Appends the complete on-wire v1 encoding of one frame to `out`.
void EncodeFrame(uint8_t type, const uint8_t* payload, size_t payload_len,
                 std::vector<uint8_t>* out);
inline void EncodeFrame(uint8_t type, const std::vector<uint8_t>& payload,
                        std::vector<uint8_t>* out) {
  EncodeFrame(type, payload.data(), payload.size(), out);
}

/// Appends the complete on-wire v2 (correlation-id) encoding to `out`.
void EncodeMuxFrame(uint8_t type, uint64_t correlation_id,
                    const uint8_t* payload, size_t payload_len,
                    std::vector<uint8_t>* out);
inline void EncodeMuxFrame(uint8_t type, uint64_t correlation_id,
                           const std::vector<uint8_t>& payload,
                           std::vector<uint8_t>* out) {
  EncodeMuxFrame(type, correlation_id, payload.data(), payload.size(), out);
}

/// Encodes `frame` in its own version (v1 or v2, echoing correlation_id).
inline void EncodeFrameAs(const Frame& frame, std::vector<uint8_t>* out) {
  if (frame.version == kWireProtocolVersionMux) {
    EncodeMuxFrame(frame.type, frame.correlation_id, frame.payload, out);
  } else {
    EncodeFrame(frame.type, frame.payload, out);
  }
}

/// Decodes one frame (either version) from the front of [data, data+len).
///  - OutOfRange: the buffer holds a syntactically valid prefix but not the
///    whole frame yet (socket readers keep reading).
///  - InvalidArgument: malformed beyond repair (undersized length, payload
///    over kMaxFramePayload, unknown version) — readers must drop the
///    connection, never resynchronize.
/// On success `*consumed` is the total frame size in bytes.
Result<Frame> DecodeFrame(const uint8_t* data, size_t len, size_t* consumed);

/// Allocation-reusing decode: identical contract to DecodeFrame, but the
/// payload is assigned into `frame->payload` (reusing its capacity) instead
/// of constructing a fresh vector — the per-RPC scratch path the event-loop
/// server and the multiplexed channel decode through.
Status DecodeFrameInto(const uint8_t* data, size_t len, Frame* frame,
                       size_t* consumed);

/// kError frame payload: [u8 code][varint len][message bytes]. Shared by
/// the server (encode) and every channel (decode).
void EncodeStatusPayload(const Status& status, std::vector<uint8_t>* out);
Status DecodeStatusPayload(const std::vector<uint8_t>& payload);

}  // namespace ringdde

#endif  // RINGDDE_SIM_TRANSPORT_H_
