#include "common/math_util.h"

#include <algorithm>
#include <cmath>

namespace ringdde {

void KahanSum::Add(double x) {
  const double y = x - compensation_;
  const double t = sum_ + y;
  compensation_ = (t - sum_) - y;
  sum_ = t;
}

void KahanSum::Reset() {
  sum_ = 0.0;
  compensation_ = 0.0;
}

double SumPrecise(const std::vector<double>& xs) {
  KahanSum acc;
  for (double x : xs) acc.Add(x);
  return acc.value();
}

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  return SumPrecise(xs) / static_cast<double>(xs.size());
}

double Variance(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = Mean(xs);
  KahanSum acc;
  for (double x : xs) acc.Add((x - m) * (x - m));
  return acc.value() / static_cast<double>(xs.size() - 1);
}

double Stddev(const std::vector<double>& xs) { return std::sqrt(Variance(xs)); }

double Lerp(double a, double b, double t) { return a + (b - a) * t; }

double Clamp(double x, double lo, double hi) {
  return std::min(std::max(x, lo), hi);
}

double Quantile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  p = Clamp(p, 0.0, 1.0);
  std::sort(xs.begin(), xs.end());
  const double h = p * static_cast<double>(xs.size() - 1);
  const size_t lo = static_cast<size_t>(h);
  const size_t hi = std::min(lo + 1, xs.size() - 1);
  return Lerp(xs[lo], xs[hi], h - static_cast<double>(lo));
}

ptrdiff_t UpperIndex(const std::vector<double>& sorted_xs, double x) {
  auto it = std::upper_bound(sorted_xs.begin(), sorted_xs.end(), x);
  return static_cast<ptrdiff_t>(it - sorted_xs.begin()) - 1;
}

double Log1pExp(double x) {
  if (x > 35.0) return x;            // exp(-x) underflows relative to x
  if (x < -35.0) return std::exp(x);  // log1p(tiny) == tiny
  return std::log1p(std::exp(x));
}

double StandardNormalCdf(double z) {
  return 0.5 * std::erfc(-z * 0.7071067811865475244);  // z / sqrt(2)
}

double StandardNormalPdf(double z) {
  constexpr double kInvSqrt2Pi = 0.3989422804014326779;
  return kInvSqrt2Pi * std::exp(-0.5 * z * z);
}

double InverseStandardNormalCdf(double p) {
  // Acklam's rational approximation, then one Newton–Raphson polish.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double kLow = 0.02425;

  double x;
  if (p < kLow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - kLow) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
          c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  const double err = StandardNormalCdf(x) - p;
  const double pdf = StandardNormalPdf(x);
  if (pdf > 0.0) x -= err / pdf;
  return x;
}

bool ApproxEqual(double a, double b, double tol) {
  const double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  return std::fabs(a - b) <= tol * scale;
}

}  // namespace ringdde
