#ifndef RINGDDE_COMMON_ID_H_
#define RINGDDE_COMMON_ID_H_

#include <compare>
#include <cstdint>
#include <string>

namespace ringdde {

/// Identifier on the 2^64 ring.
///
/// Both peers and data keys live in the same circular identifier space, as in
/// Chord. All arithmetic wraps modulo 2^64. The unit-interval view
/// (ToUnit/FromUnit) is what makes order-preserving placement work: a data key
/// normalized to [0,1) maps to the ring position `key * 2^64`, so the ring
/// order equals the data order and a peer's arc is a contiguous key range.
struct RingId {
  uint64_t value = 0;

  constexpr RingId() = default;
  constexpr explicit RingId(uint64_t v) : value(v) {}

  /// Ring position as a fraction of the full circle, in [0, 1).
  double ToUnit() const;

  /// Ring id at the given fraction of the circle; `u` is reduced mod 1 and
  /// negative inputs wrap.
  static RingId FromUnit(double u);

  /// Wrapping offset arithmetic.
  constexpr RingId operator+(uint64_t delta) const {
    return RingId(value + delta);
  }
  constexpr RingId operator-(uint64_t delta) const {
    return RingId(value - delta);
  }

  constexpr auto operator<=>(const RingId&) const = default;

  /// Hex string, zero padded to 16 digits.
  std::string ToString() const;
};

/// Clockwise distance from `a` to `b`: number of steps to reach b moving in
/// increasing-id direction, in [0, 2^64). Distance 0 means a == b.
constexpr uint64_t ClockwiseDistance(RingId a, RingId b) {
  return b.value - a.value;  // unsigned wrap does the mod for us
}

/// True iff `x` lies in the clockwise half-open arc (a, b]. By convention an
/// empty direction (a == b) denotes the FULL ring, matching Chord's successor
/// semantics where a single node owns everything.
constexpr bool InArcOpenClosed(RingId x, RingId a, RingId b) {
  if (a == b) return true;
  return ClockwiseDistance(a, x) != 0 &&
         ClockwiseDistance(a, x) <= ClockwiseDistance(a, b);
}

/// True iff `x` lies in the clockwise half-open arc [a, b). a == b again
/// denotes the full ring.
constexpr bool InArcClosedOpen(RingId x, RingId a, RingId b) {
  if (a == b) return true;
  return ClockwiseDistance(a, x) < ClockwiseDistance(a, b);
}

/// True iff `x` lies strictly inside the clockwise open arc (a, b).
/// a == b denotes the full ring minus the point a.
constexpr bool InArcOpenOpen(RingId x, RingId a, RingId b) {
  if (a == b) return x != a;
  return ClockwiseDistance(a, x) != 0 &&
         ClockwiseDistance(a, x) < ClockwiseDistance(a, b);
}

/// Arc length of [a, b) as a fraction of the whole ring. a == b yields 1.0
/// (the full ring), consistent with the single-node-owns-all convention.
double ArcFraction(RingId a, RingId b);

/// Deterministically hashes an arbitrary 64-bit name (e.g. a peer's address)
/// to a well-spread ring id. Used for HASHED placement and for assigning
/// peer ids.
RingId HashToRing(uint64_t name);

}  // namespace ringdde

#endif  // RINGDDE_COMMON_ID_H_
