#ifndef RINGDDE_COMMON_STATUS_H_
#define RINGDDE_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace ringdde {

/// Error categories used across the library. Mirrors the RocksDB-style
/// status-code model: no exceptions cross public API boundaries.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kUnavailable,     ///< Transient: e.g. routing failed because of churn.
  kTimedOut,        ///< A simulated operation exceeded its hop/time budget.
  kInternal,
};

/// Human-readable name of a status code (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// A cheap value-type carrying success or an (code, message) error.
///
/// Usage:
///   Status s = ring.Join(node);
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status TimedOut(std::string msg) {
    return Status(StatusCode::kTimedOut, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsTimedOut() const { return code_ == StatusCode::kTimedOut; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Minimal absl::StatusOr
/// analogue sufficient for this library.
template <typename T>
class Result {
 public:
  /// Implicit from value: allows `return value;` in Result-returning
  /// functions.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status; `status` must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value, or `fallback` on error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;  // OK when value_ is set.
};

/// Propagates a non-OK Status out of the enclosing function.
#define RINGDDE_RETURN_IF_ERROR(expr)       \
  do {                                      \
    ::ringdde::Status _s = (expr);          \
    if (!_s.ok()) return _s;                \
  } while (0)

}  // namespace ringdde

#endif  // RINGDDE_COMMON_STATUS_H_
