#ifndef RINGDDE_COMMON_RNG_H_
#define RINGDDE_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ringdde {

/// Deterministic, splittable pseudo-random number generator.
///
/// The whole simulator is driven by explicit Rng instances (never by global
/// state) so every experiment is reproducible from a single seed. The engine
/// is xoshiro256** seeded through SplitMix64, which is statistically strong
/// enough for simulation workloads and far faster than std::mt19937_64.
class Rng {
 public:
  /// Seeds the engine; the same seed always produces the same stream.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64 random bits.
  uint64_t NextU64();

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses Lemire's
  /// nearly-divisionless rejection method, so the result is exactly uniform.
  uint64_t UniformU64(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1) with 53 bits of entropy.
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Standard normal variate (Box–Muller with caching).
  double Normal();

  /// Normal with the given mean and standard deviation (stddev >= 0).
  double Normal(double mean, double stddev);

  /// Exponential variate with the given rate (rate > 0); mean is 1/rate.
  double Exponential(double rate);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Derives an independent child generator; streams do not overlap in
  /// practice because the child is seeded from fresh output of this engine
  /// passed through SplitMix64.
  Rng Split();

  /// Fisher–Yates shuffle of `v`.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformU64(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Samples k distinct indices from [0, n) in increasing order
  /// (Floyd's algorithm when k << n, otherwise shuffle-prefix).
  std::vector<uint64_t> SampleWithoutReplacement(uint64_t n, uint64_t k);

 private:
  uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// SplitMix64 step: maps an arbitrary 64-bit value to a well-mixed one.
/// Used for seeding and for hashing ids onto the ring.
uint64_t SplitMix64(uint64_t x);

}  // namespace ringdde

#endif  // RINGDDE_COMMON_RNG_H_
