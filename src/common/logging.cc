#include "common/logging.h"

#include <cstdio>

namespace ringdde {

namespace {

LogLevel g_min_level = LogLevel::kWarning;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

/// Strips directories from __FILE__ for compact output.
const char* Basename(const char* path) {
  const char* base = path;
  for (const char* p = path; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  return base;
}

}  // namespace

void SetLogLevel(LogLevel level) { g_min_level = level; }

LogLevel GetLogLevel() { return g_min_level; }

void LogMessage(LogLevel level, const char* file, int line,
                const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_min_level)) return;
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelTag(level), Basename(file),
               line, message.c_str());
}

}  // namespace ringdde
