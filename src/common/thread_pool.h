#ifndef RINGDDE_COMMON_THREAD_POOL_H_
#define RINGDDE_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ringdde {

/// Fixed-size worker pool for embarrassingly parallel simulation work
/// (independent benchmark trials, workload rows).
///
/// Design constraints, in order:
///  1. *Determinism*: ParallelFor guarantees each index runs exactly once
///     and callers store results by index, so reductions are performed in
///     index order and the output is bit-identical for every thread count
///     (including 1). Randomness is never shared across tasks — each task
///     derives its own seed with DeriveTaskSeed().
///  2. *No nested oversubscription*: a ParallelFor issued from inside a
///     worker thread runs inline on that worker (sequentially). Outer
///     parallelism wins; inner loops degrade to serial instead of
///     deadlocking on a saturated queue.
///  3. *Caller participation*: the submitting thread works on the loop too,
///     so a pool of W workers gives W+1-way parallelism and `ThreadPool(0)`
///     degenerates to a plain serial loop.
class ThreadPool {
 public:
  /// Spawns `workers` threads. 0 is valid: everything runs on the caller.
  explicit ThreadPool(size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of pool threads (excluding the participating caller).
  size_t worker_count() const { return threads_.size(); }

  /// Parallelism degree ParallelFor actually uses (workers + caller).
  size_t concurrency() const { return threads_.size() + 1; }

  /// Applies `body` to every index in [begin, end), spread over the pool
  /// plus the calling thread. Blocks until all indices finish. If any body
  /// throws, the remaining un-started indices are abandoned and the first
  /// exception is rethrown on the caller after the in-flight ones drain.
  /// Reentrant calls from worker threads run inline (see class comment).
  void ParallelFor(size_t begin, size_t end,
                   const std::function<void(size_t)>& body);

  /// True when called from one of this process's pool worker threads.
  static bool InWorker();

  /// The process-wide pool used by benchmarks and tools. Sized by the
  /// RINGDDE_THREADS environment variable when set (>= 1, counting the
  /// caller), otherwise by std::thread::hardware_concurrency().
  static ThreadPool& Global();

  /// Thread count Global() would use (RINGDDE_THREADS or hardware).
  static size_t DefaultConcurrency();

 private:
  struct ForLoop;

  void WorkerMain();

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
};

/// Derives the seed of task `task_index` within a run seeded by
/// `base_seed`. Two SplitMix64 mixing steps keep the per-task streams
/// statistically independent of one another and of the base stream, and
/// the derivation depends only on (base_seed, task_index) — never on
/// scheduling — so parallel runs reproduce serial ones exactly.
uint64_t DeriveTaskSeed(uint64_t base_seed, uint64_t task_index);

}  // namespace ringdde

#endif  // RINGDDE_COMMON_THREAD_POOL_H_
