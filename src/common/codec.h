#ifndef RINGDDE_COMMON_CODEC_H_
#define RINGDDE_COMMON_CODEC_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace ringdde {

/// Append-only binary encoder for the simulator's wire formats.
///
/// Fixed-width integers are little-endian; varints are LEB128; doubles are
/// IEEE-754 bit patterns in fixed 8 bytes. The encodings exist so message
/// payload sizes charged to the network are the sizes a real deployment
/// would ship, and so estimates can be exchanged between peers
/// (core/wire.h).
class Encoder {
 public:
  void PutU8(uint8_t v);
  void PutFixed32(uint32_t v);
  void PutFixed64(uint64_t v);
  /// LEB128, 1-10 bytes.
  void PutVarint64(uint64_t v);
  void PutDouble(double v);
  /// Varint length prefix + raw bytes.
  void PutLengthPrefixedBytes(const uint8_t* data, size_t len);

  const std::vector<uint8_t>& buffer() const { return buffer_; }
  size_t size() const { return buffer_.size(); }
  void Clear() { buffer_.clear(); }

  /// Moves the encoded bytes out (the encoder is left empty). The
  /// allocation travels with the result — nothing is copied.
  std::vector<uint8_t> Take() { return std::move(buffer_); }

  /// Copies the encoded bytes into `out`, reusing `out`'s capacity — the
  /// scratch-encoder pattern: one long-lived Encoder per server/connection,
  /// Clear() + encode + CopyTo() per RPC, zero steady-state allocations.
  void CopyTo(std::vector<uint8_t>* out) const {
    out->assign(buffer_.begin(), buffer_.end());
  }

 private:
  std::vector<uint8_t> buffer_;
};

/// Sequential binary decoder over a borrowed byte range. All getters
/// return OutOfRange on truncated input and never read past the end; the
/// referenced bytes must outlive the decoder.
class Decoder {
 public:
  Decoder(const uint8_t* data, size_t len) : data_(data), end_(data + len) {}
  explicit Decoder(const std::vector<uint8_t>& buffer)
      : Decoder(buffer.data(), buffer.size()) {}

  Status GetU8(uint8_t* v);
  Status GetFixed32(uint32_t* v);
  Status GetFixed64(uint64_t* v);
  Status GetVarint64(uint64_t* v);
  Status GetDouble(double* v);
  /// Returns a view into the underlying buffer (no copy).
  Status GetLengthPrefixedBytes(const uint8_t** data, size_t* len);

  size_t remaining() const { return static_cast<size_t>(end_ - data_); }
  bool Done() const { return data_ == end_; }

 private:
  const uint8_t* data_;
  const uint8_t* end_;
};

/// Bytes PutVarint64(v) would append.
size_t VarintLength(uint64_t v);

}  // namespace ringdde

#endif  // RINGDDE_COMMON_CODEC_H_
