#ifndef RINGDDE_COMMON_RETRY_POLICY_H_
#define RINGDDE_COMMON_RETRY_POLICY_H_

#include <cstdint>
#include <limits>

namespace ringdde {

/// Bounded-retry schedule with exponential backoff and deterministic
/// jitter, shared by every protocol that retries over the fallible
/// Network::TrySend path (probing, dissemination, maintenance).
///
/// The default policy is a SINGLE attempt with no backoff: retrying is
/// strictly opt-in, so protocols configured without faults behave (and
/// cost) exactly as before the fault layer existed.
///
/// Jitter is derived with DeriveTaskSeed from (seed, task, attempt) — a
/// pure function, never a shared rng stream — so a retried run replays the
/// identical backoff sequence at any thread count.
struct RetryPolicy {
  /// Total attempts per operation (1 = no retry). Must be >= 1.
  int max_attempts = 1;

  /// Backoff before the first retry; doubles (by `backoff_multiplier`) per
  /// further retry, clamped at `max_backoff_seconds`.
  double initial_backoff_seconds = 0.05;
  double backoff_multiplier = 2.0;
  double max_backoff_seconds = 2.0;

  /// Multiplicative jitter half-width: the realized backoff is
  /// base * (1 + jitter_fraction * (2u - 1)), u deterministic in [0, 1).
  double jitter_fraction = 0.1;

  /// Per-phase budget: once the cumulated backoff of one operation would
  /// exceed this, the operation gives up with TimedOut instead of
  /// sleeping further. Infinite by default.
  double budget_seconds = std::numeric_limits<double>::infinity();

  /// Seed of the jitter stream.
  uint64_t seed = 0xB0FFULL;

  /// Backoff (seconds) to wait before retry number `retry` (1-based: the
  /// wait between attempt `retry` and attempt `retry + 1`) of operation
  /// `task`. Pure function of (seed, task, retry).
  double BackoffSeconds(uint64_t task, int retry) const;

  /// True if a policy ever retries.
  bool enabled() const { return max_attempts > 1; }
};

}  // namespace ringdde

#endif  // RINGDDE_COMMON_RETRY_POLICY_H_
