#include "common/rng.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>
#include <unordered_set>

namespace ringdde {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

Rng::Rng(uint64_t seed) {
  // Seed all four lanes through SplitMix64 per the xoshiro authors' advice.
  uint64_t z = seed;
  for (auto& lane : s_) {
    z = SplitMix64(z);
    lane = z;
    // SplitMix64 output is already well mixed; advance z to decorrelate.
    z += 0x9E3779B97F4A7C15ULL;
  }
  // All-zero state would be a fixed point; guard against a pathological seed.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::NextU64() {
  // xoshiro256**
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::UniformU64(uint64_t bound) {
  assert(bound > 0);
  // Lemire's method: multiply-shift with rejection on the low word.
  uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t threshold = (0 - bound) % bound;
    while (l < threshold) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextU64());  // full 64-bit range
  return lo + static_cast<int64_t>(UniformU64(span));
}

double Rng::UniformDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller. Guard u1 away from 0 so log() stays finite.
  double u1 = UniformDouble();
  while (u1 <= 0.0) u1 = UniformDouble();
  const double u2 = UniformDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  assert(stddev >= 0.0);
  return mean + stddev * Normal();
}

double Rng::Exponential(double rate) {
  assert(rate > 0.0);
  double u = UniformDouble();
  while (u <= 0.0) u = UniformDouble();
  return -std::log(u) / rate;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

Rng Rng::Split() { return Rng(SplitMix64(NextU64())); }

std::vector<uint64_t> Rng::SampleWithoutReplacement(uint64_t n, uint64_t k) {
  assert(k <= n);
  std::vector<uint64_t> out;
  out.reserve(k);
  if (k == 0) return out;
  if (k * 4 >= n) {
    // Dense case: shuffle-prefix over the full range.
    std::vector<uint64_t> all(n);
    for (uint64_t i = 0; i < n; ++i) all[i] = i;
    Shuffle(all);
    all.resize(k);
    std::sort(all.begin(), all.end());
    return all;
  }
  // Sparse case: Floyd's algorithm.
  std::unordered_set<uint64_t> chosen;
  chosen.reserve(k * 2);
  for (uint64_t j = n - k; j < n; ++j) {
    uint64_t t = UniformU64(j + 1);
    if (!chosen.insert(t).second) chosen.insert(j);
  }
  out.assign(chosen.begin(), chosen.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace ringdde
