#include "common/retry_policy.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/thread_pool.h"

namespace ringdde {

double RetryPolicy::BackoffSeconds(uint64_t task, int retry) const {
  assert(retry >= 1);
  double base = initial_backoff_seconds *
                std::pow(backoff_multiplier, static_cast<double>(retry - 1));
  base = std::min(base, max_backoff_seconds);
  if (jitter_fraction <= 0.0) return base;
  // Deterministic jitter: one hashed uniform per (seed, task, retry).
  const uint64_t h =
      DeriveTaskSeed(DeriveTaskSeed(seed, task), static_cast<uint64_t>(retry));
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return base * (1.0 + jitter_fraction * (2.0 * u - 1.0));
}

}  // namespace ringdde
