#include "common/id.h"

#include <cmath>
#include <cstdio>

#include "common/rng.h"

namespace ringdde {

double RingId::ToUnit() const {
  // Use the top 53 bits: converting the full 64-bit value to double rounds
  // UINT64_MAX up to 2^64, which would map to 1.0 — outside the half-open
  // unit interval.
  return static_cast<double>(value >> 11) * 0x1.0p-53;
}

RingId RingId::FromUnit(double u) {
  // Reduce to [0, 1). fmod of a negative value is negative, so fix up.
  double r = std::fmod(u, 1.0);
  if (r < 0.0) r += 1.0;
  // 2^64 * r < 2^64 because r < 1, but guard the r == 1-ulp rounding edge.
  double scaled = r * 0x1.0p64;
  if (scaled >= 0x1.0p64) return RingId(UINT64_MAX);
  return RingId(static_cast<uint64_t>(scaled));
}

std::string RingId::ToString() const {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(value));
  return std::string(buf);
}

double ArcFraction(RingId a, RingId b) {
  if (a == b) return 1.0;
  return static_cast<double>(ClockwiseDistance(a, b)) * 0x1.0p-64;
}

RingId HashToRing(uint64_t name) { return RingId(SplitMix64(name)); }

}  // namespace ringdde
