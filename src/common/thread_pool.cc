#include "common/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>

#include "common/rng.h"

namespace ringdde {

namespace {
thread_local bool t_in_worker = false;
}  // namespace

/// Shared state of one ParallelFor call. Runner jobs (and the caller)
/// claim indices from `next` until it passes `end`; the last runner to
/// finish signals `done`.
struct ThreadPool::ForLoop {
  const std::function<void(size_t)>* body = nullptr;
  std::atomic<size_t> next{0};
  size_t end = 0;

  std::mutex mu;
  std::condition_variable done;
  size_t active_runners = 0;
  std::exception_ptr first_error;

  void Run() {
    for (;;) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= end) return;
      try {
        (*body)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu);
        if (!first_error) first_error = std::current_exception();
        // Abandon the un-started tail; in-flight indices finish normally.
        next.store(end, std::memory_order_relaxed);
        return;
      }
    }
  }
};

ThreadPool::ThreadPool(size_t workers) {
  threads_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { WorkerMain(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::WorkerMain() {
  t_in_worker = true;
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
  }
}

void ThreadPool::ParallelFor(size_t begin, size_t end,
                             const std::function<void(size_t)>& body) {
  if (begin >= end) return;
  const size_t n = end - begin;
  // Serial fast path: no workers, a single index, or a nested call from a
  // worker thread (outer parallelism already owns the pool).
  if (threads_.empty() || n == 1 || InWorker()) {
    for (size_t i = begin; i < end; ++i) body(i);
    return;
  }

  // Shift to [0, n) internally so `next` can start at 0.
  const std::function<void(size_t)> shifted = [&](size_t i) {
    body(begin + i);
  };
  auto loop = std::make_shared<ForLoop>();
  loop->body = &shifted;
  loop->end = n;

  const size_t runners = std::min(threads_.size(), n - 1);
  {
    std::lock_guard<std::mutex> lock(mu_);
    loop->active_runners = runners;
    for (size_t r = 0; r < runners; ++r) {
      queue_.push_back([loop] {
        loop->Run();
        std::lock_guard<std::mutex> l(loop->mu);
        if (--loop->active_runners == 0) loop->done.notify_all();
      });
    }
  }
  cv_.notify_all();

  loop->Run();  // the caller participates

  std::unique_lock<std::mutex> lock(loop->mu);
  loop->done.wait(lock, [&] { return loop->active_runners == 0; });
  if (loop->first_error) std::rethrow_exception(loop->first_error);
}

bool ThreadPool::InWorker() { return t_in_worker; }

size_t ThreadPool::DefaultConcurrency() {
  if (const char* env = std::getenv("RINGDDE_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool* pool = new ThreadPool(DefaultConcurrency() - 1);
  return *pool;
}

uint64_t DeriveTaskSeed(uint64_t base_seed, uint64_t task_index) {
  // Mix the base first so adjacent task indices of adjacent base seeds do
  // not collide (SplitMix64 is a bijection; xor of two mixes is not).
  return SplitMix64(SplitMix64(base_seed) + 0x9E3779B97F4A7C15ULL * (task_index + 1));
}

}  // namespace ringdde
