#ifndef RINGDDE_COMMON_LOGGING_H_
#define RINGDDE_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace ringdde {

/// Log severity, lowest to highest.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped. Defaults to
/// kWarning so library users and benchmarks are quiet unless they opt in.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Emits one formatted line to stderr (with level tag and source location)
/// if `level` >= the process minimum. Thread-compatible: callers in this
/// single-threaded simulator never race.
void LogMessage(LogLevel level, const char* file, int line,
                const std::string& message);

namespace internal_logging {

/// Stream-style collector used by the RINGDDE_LOG macro.
class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogLine() { LogMessage(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal_logging

/// Usage: RINGDDE_LOG(kInfo) << "joined " << n << " peers";
#define RINGDDE_LOG(severity)                                              \
  ::ringdde::internal_logging::LogLine(::ringdde::LogLevel::severity,      \
                                       __FILE__, __LINE__)

}  // namespace ringdde

#endif  // RINGDDE_COMMON_LOGGING_H_
