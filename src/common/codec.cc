#include "common/codec.h"

#include <bit>
#include <cstring>

namespace ringdde {

void Encoder::PutU8(uint8_t v) { buffer_.push_back(v); }

void Encoder::PutFixed32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buffer_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void Encoder::PutFixed64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buffer_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void Encoder::PutVarint64(uint64_t v) {
  while (v >= 0x80) {
    buffer_.push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buffer_.push_back(static_cast<uint8_t>(v));
}

void Encoder::PutDouble(double v) {
  PutFixed64(std::bit_cast<uint64_t>(v));
}

void Encoder::PutLengthPrefixedBytes(const uint8_t* data, size_t len) {
  PutVarint64(len);
  buffer_.insert(buffer_.end(), data, data + len);
}

Status Decoder::GetU8(uint8_t* v) {
  if (remaining() < 1) return Status::OutOfRange("truncated u8");
  *v = *data_++;
  return Status::OK();
}

Status Decoder::GetFixed32(uint32_t* v) {
  if (remaining() < 4) return Status::OutOfRange("truncated fixed32");
  uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    out |= static_cast<uint32_t>(data_[i]) << (8 * i);
  }
  data_ += 4;
  *v = out;
  return Status::OK();
}

Status Decoder::GetFixed64(uint64_t* v) {
  if (remaining() < 8) return Status::OutOfRange("truncated fixed64");
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<uint64_t>(data_[i]) << (8 * i);
  }
  data_ += 8;
  *v = out;
  return Status::OK();
}

Status Decoder::GetVarint64(uint64_t* v) {
  uint64_t out = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (data_ == end_) return Status::OutOfRange("truncated varint");
    const uint8_t byte = *data_++;
    out |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      // Reject non-canonical overlong encodings of the final byte.
      if (shift == 63 && byte > 1) {
        return Status::OutOfRange("varint overflows 64 bits");
      }
      *v = out;
      return Status::OK();
    }
  }
  return Status::OutOfRange("varint longer than 10 bytes");
}

Status Decoder::GetDouble(double* v) {
  uint64_t bits;
  RINGDDE_RETURN_IF_ERROR(GetFixed64(&bits));
  *v = std::bit_cast<double>(bits);
  return Status::OK();
}

Status Decoder::GetLengthPrefixedBytes(const uint8_t** data, size_t* len) {
  uint64_t n;
  RINGDDE_RETURN_IF_ERROR(GetVarint64(&n));
  if (remaining() < n) return Status::OutOfRange("truncated byte string");
  *data = data_;
  *len = static_cast<size_t>(n);
  data_ += n;
  return Status::OK();
}

size_t VarintLength(uint64_t v) {
  size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

}  // namespace ringdde
