#ifndef RINGDDE_COMMON_MATH_UTIL_H_
#define RINGDDE_COMMON_MATH_UTIL_H_

#include <cstddef>
#include <vector>

namespace ringdde {

/// Compensated (Kahan) summation accumulator. Long simulation runs sum many
/// small increments; naive summation loses precision that then shows up as
/// spurious "estimation error" in accuracy metrics.
class KahanSum {
 public:
  void Add(double x);
  double value() const { return sum_; }
  void Reset();

 private:
  double sum_ = 0.0;
  double compensation_ = 0.0;
};

/// Kahan sum of a vector.
double SumPrecise(const std::vector<double>& xs);

/// Arithmetic mean; 0 for empty input.
double Mean(const std::vector<double>& xs);

/// Sample variance (n-1 denominator); 0 for fewer than two elements.
double Variance(const std::vector<double>& xs);

/// Sample standard deviation.
double Stddev(const std::vector<double>& xs);

/// Linear interpolation: value at t in [0,1] between a (t=0) and b (t=1).
double Lerp(double a, double b, double t);

/// Clamp x into [lo, hi].
double Clamp(double x, double lo, double hi);

/// p-quantile (p in [0,1]) of the values using linear interpolation between
/// order statistics (type-7, the numpy default). Input need not be sorted;
/// a sorted copy is made. Empty input returns 0.
double Quantile(std::vector<double> xs, double p);

/// Largest index i such that sorted_xs[i] <= x, or -1 if all elements exceed
/// x. `sorted_xs` must be ascending.
ptrdiff_t UpperIndex(const std::vector<double>& sorted_xs, double x);

/// Numerically stable log(1 + exp(x)).
double Log1pExp(double x);

/// Standard normal CDF Phi(z).
double StandardNormalCdf(double z);

/// Standard normal density phi(z).
double StandardNormalPdf(double z);

/// Inverse standard normal CDF for p in (0,1): Acklam's rational
/// approximation followed by one Newton step (relative error < 1e-12).
double InverseStandardNormalCdf(double p);

/// True if |a - b| <= tol * max(1, |a|, |b|).
bool ApproxEqual(double a, double b, double tol = 1e-9);

}  // namespace ringdde

#endif  // RINGDDE_COMMON_MATH_UTIL_H_
