#include "data/placement.h"

#include <bit>
#include <cassert>
#include <cstdint>

#include "common/math_util.h"
#include "common/rng.h"

namespace ringdde {

DomainMapper::DomainMapper(double lo, double hi) : lo_(lo), hi_(hi) {
  assert(lo < hi);
}

double DomainMapper::ToUnit(double domain_value) const {
  const double u = (domain_value - lo_) / (hi_ - lo_);
  // [0, 1): the ring id space is half-open.
  return Clamp(u, 0.0, 0x1.fffffffffffffp-1);
}

double DomainMapper::ToDomain(double unit_key) const {
  return lo_ + unit_key * (hi_ - lo_);
}

RingId DomainMapper::ToRing(double domain_value) const {
  return OrderPreservingPlacement(ToUnit(domain_value));
}

RingId OrderPreservingPlacement(double key01) {
  return RingId::FromUnit(key01);
}

RingId HashedPlacement(double key01) {
  return RingId(SplitMix64(std::bit_cast<uint64_t>(key01)));
}

}  // namespace ringdde
