#include "data/distribution.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <numbers>

#include "common/math_util.h"

namespace ringdde {

namespace {

std::string FormatName(const char* fmt, double a, double b) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), fmt, a, b);
  return std::string(buf);
}

}  // namespace

// --- Distribution base -------------------------------------------------------

double Distribution::Quantile(double p) const {
  p = Clamp(p, 0.0, 1.0);
  double lo = support_lo();
  double hi = support_hi();
  if (p <= 0.0) return lo;
  if (p >= 1.0) return hi;
  // 80 bisection steps: interval shrinks below 1e-24, far under double eps
  // over a unit domain.
  for (int i = 0; i < 80; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (Cdf(mid) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

// --- Uniform -----------------------------------------------------------------

UniformDistribution::UniformDistribution(double lo, double hi)
    : lo_(lo), hi_(hi) {
  assert(0.0 <= lo && lo < hi && hi <= 1.0);
}

double UniformDistribution::Sample(Rng& rng) const {
  return rng.UniformDouble(lo_, hi_);
}

double UniformDistribution::Pdf(double x) const {
  if (x < lo_ || x > hi_) return 0.0;
  return 1.0 / (hi_ - lo_);
}

double UniformDistribution::Cdf(double x) const {
  if (x <= lo_) return 0.0;
  if (x >= hi_) return 1.0;
  return (x - lo_) / (hi_ - lo_);
}

double UniformDistribution::Quantile(double p) const {
  return lo_ + Clamp(p, 0.0, 1.0) * (hi_ - lo_);
}

std::string UniformDistribution::Name() const {
  if (lo_ == 0.0 && hi_ == 1.0) return "Uniform";
  return FormatName("Uniform[%.2f,%.2f]", lo_, hi_);
}

// --- Truncated normal ---------------------------------------------------------

TruncatedNormalDistribution::TruncatedNormalDistribution(double mean,
                                                         double stddev)
    : mean_(mean), stddev_(stddev) {
  assert(stddev > 0.0);
  cdf_lo_ = StandardNormalCdf((0.0 - mean_) / stddev_);
  cdf_hi_ = StandardNormalCdf((1.0 - mean_) / stddev_);
  mass_ = cdf_hi_ - cdf_lo_;
  assert(mass_ > 1e-12 && "normal has no mass inside [0,1]");
}

double TruncatedNormalDistribution::Sample(Rng& rng) const {
  // Rejection from the untruncated normal; falls back to inversion if the
  // acceptance region is tiny (pathological parameters).
  for (int attempt = 0; attempt < 64; ++attempt) {
    const double x = rng.Normal(mean_, stddev_);
    if (x >= 0.0 && x <= 1.0) return x;
  }
  return Quantile(rng.UniformDouble());
}

double TruncatedNormalDistribution::Pdf(double x) const {
  if (x < 0.0 || x > 1.0) return 0.0;
  const double z = (x - mean_) / stddev_;
  return StandardNormalPdf(z) / (stddev_ * mass_);
}

double TruncatedNormalDistribution::Cdf(double x) const {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double z = (x - mean_) / stddev_;
  return (StandardNormalCdf(z) - cdf_lo_) / mass_;
}

double TruncatedNormalDistribution::Quantile(double p) const {
  p = Clamp(p, 0.0, 1.0);
  if (p <= 0.0) return 0.0;
  if (p >= 1.0) return 1.0;
  const double z = InverseStandardNormalCdf(cdf_lo_ + p * mass_);
  return Clamp(mean_ + stddev_ * z, 0.0, 1.0);
}

std::string TruncatedNormalDistribution::Name() const {
  return FormatName("Normal(%.2f,%.2f)", mean_, stddev_);
}

// --- Truncated exponential ------------------------------------------------------

TruncatedExponentialDistribution::TruncatedExponentialDistribution(double rate)
    : rate_(rate) {
  assert(rate > 0.0);
  mass_ = 1.0 - std::exp(-rate_);
}

double TruncatedExponentialDistribution::Sample(Rng& rng) const {
  return Quantile(rng.UniformDouble());
}

double TruncatedExponentialDistribution::Pdf(double x) const {
  if (x < 0.0 || x > 1.0) return 0.0;
  return rate_ * std::exp(-rate_ * x) / mass_;
}

double TruncatedExponentialDistribution::Cdf(double x) const {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  return (1.0 - std::exp(-rate_ * x)) / mass_;
}

double TruncatedExponentialDistribution::Quantile(double p) const {
  p = Clamp(p, 0.0, 1.0);
  return Clamp(-std::log(1.0 - p * mass_) / rate_, 0.0, 1.0);
}

std::string TruncatedExponentialDistribution::Name() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "Exp(%.1f)", rate_);
  return std::string(buf);
}

// --- Bounded Pareto --------------------------------------------------------------

BoundedParetoDistribution::BoundedParetoDistribution(double alpha, double lo)
    : alpha_(alpha), lo_(lo) {
  assert(alpha > 0.0 && lo > 0.0 && lo < 1.0);
  norm_ = 1.0 - std::pow(lo_, alpha_);
}

double BoundedParetoDistribution::Sample(Rng& rng) const {
  return Quantile(rng.UniformDouble());
}

double BoundedParetoDistribution::Pdf(double x) const {
  if (x < lo_ || x > 1.0) return 0.0;
  return alpha_ * std::pow(lo_, alpha_) * std::pow(x, -alpha_ - 1.0) / norm_;
}

double BoundedParetoDistribution::Cdf(double x) const {
  if (x <= lo_) return 0.0;
  if (x >= 1.0) return 1.0;
  return (1.0 - std::pow(lo_ / x, alpha_)) / norm_;
}

double BoundedParetoDistribution::Quantile(double p) const {
  p = Clamp(p, 0.0, 1.0);
  const double t = 1.0 - p * norm_;
  return Clamp(lo_ * std::pow(t, -1.0 / alpha_), lo_, 1.0);
}

std::string BoundedParetoDistribution::Name() const {
  return FormatName("Pareto(%.2f,lo=%.2f)", alpha_, lo_);
}

// --- Piecewise constant ------------------------------------------------------------

PiecewiseConstantDistribution::PiecewiseConstantDistribution(
    std::vector<double> masses, std::string name)
    : masses_(std::move(masses)), name_(std::move(name)) {
  assert(!masses_.empty());
  double total = 0.0;
  for (double m : masses_) {
    assert(m >= 0.0);
    total += m;
  }
  assert(total > 0.0);
  cumulative_.reserve(masses_.size());
  double run = 0.0;
  for (double& m : masses_) {
    m /= total;
    run += m;
    cumulative_.push_back(run);
  }
  cumulative_.back() = 1.0;  // kill rounding drift
}

double PiecewiseConstantDistribution::Sample(Rng& rng) const {
  return Quantile(rng.UniformDouble());
}

double PiecewiseConstantDistribution::Pdf(double x) const {
  if (x < 0.0 || x > 1.0) return 0.0;
  const double b = static_cast<double>(masses_.size());
  size_t i = std::min(static_cast<size_t>(x * b), masses_.size() - 1);
  return masses_[i] * b;
}

double PiecewiseConstantDistribution::Cdf(double x) const {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double b = static_cast<double>(masses_.size());
  const size_t i = std::min(static_cast<size_t>(x * b), masses_.size() - 1);
  const double before = i == 0 ? 0.0 : cumulative_[i - 1];
  const double within = (x * b - static_cast<double>(i)) * masses_[i];
  return before + within;
}

double PiecewiseConstantDistribution::Quantile(double p) const {
  p = Clamp(p, 0.0, 1.0);
  // First bin whose cumulative reaches p.
  auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), p);
  if (it == cumulative_.end()) return 1.0;
  const size_t i = static_cast<size_t>(it - cumulative_.begin());
  const double before = i == 0 ? 0.0 : cumulative_[i - 1];
  const double b = static_cast<double>(masses_.size());
  if (masses_[i] <= 0.0) return static_cast<double>(i) / b;
  const double frac = (p - before) / masses_[i];
  return (static_cast<double>(i) + frac) / b;
}

// --- Zipf ----------------------------------------------------------------------------

std::vector<double> ZipfDistribution::ZipfMasses(size_t num_values,
                                                 double theta) {
  assert(num_values > 0);
  std::vector<double> masses(num_values);
  for (size_t i = 0; i < num_values; ++i) {
    masses[i] = 1.0 / std::pow(static_cast<double>(i + 1), theta);
  }
  return masses;
}

ZipfDistribution::ZipfDistribution(size_t num_values, double theta)
    : PiecewiseConstantDistribution(
          ZipfMasses(num_values, theta),
          FormatName("Zipf(%.0f,%.2f)", static_cast<double>(num_values),
                     theta)),
      theta_(theta) {}

// --- Gaussian mixture ------------------------------------------------------------------

GaussianMixtureDistribution::GaussianMixtureDistribution(
    std::vector<Component> components, std::string name)
    : components_(std::move(components)), name_(std::move(name)) {
  assert(!components_.empty());
  double wsum = 0.0;
  for (const Component& c : components_) {
    assert(c.weight > 0.0 && c.stddev > 0.0);
    wsum += c.weight;
  }
  mass_ = 0.0;
  for (Component& c : components_) {
    c.weight /= wsum;
    const double lo = StandardNormalCdf((0.0 - c.mean) / c.stddev);
    const double hi = StandardNormalCdf((1.0 - c.mean) / c.stddev);
    mass_ += c.weight * (hi - lo);
  }
  assert(mass_ > 1e-12 && "mixture has no mass inside [0,1]");
}

double GaussianMixtureDistribution::Sample(Rng& rng) const {
  // Joint rejection over (component, variate): accepted draws follow the
  // jointly renormalized truncated mixture exactly.
  for (int attempt = 0; attempt < 256; ++attempt) {
    double u = rng.UniformDouble();
    const Component* chosen = &components_.back();
    for (const Component& c : components_) {
      if (u < c.weight) {
        chosen = &c;
        break;
      }
      u -= c.weight;
    }
    const double x = rng.Normal(chosen->mean, chosen->stddev);
    if (x >= 0.0 && x <= 1.0) return x;
  }
  return Quantile(rng.UniformDouble());  // generic bisection fallback
}

double GaussianMixtureDistribution::Pdf(double x) const {
  if (x < 0.0 || x > 1.0) return 0.0;
  double raw = 0.0;
  for (const Component& c : components_) {
    const double z = (x - c.mean) / c.stddev;
    raw += c.weight * StandardNormalPdf(z) / c.stddev;
  }
  return raw / mass_;
}

double GaussianMixtureDistribution::Cdf(double x) const {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  double raw = 0.0;
  for (const Component& c : components_) {
    const double at_x = StandardNormalCdf((x - c.mean) / c.stddev);
    const double at_0 = StandardNormalCdf((0.0 - c.mean) / c.stddev);
    raw += c.weight * (at_x - at_0);
  }
  return raw / mass_;
}

// --- Canonical benchmark set ---------------------------------------------------------------

std::vector<std::unique_ptr<Distribution>> StandardBenchmarkDistributions() {
  std::vector<std::unique_ptr<Distribution>> out;
  out.push_back(std::make_unique<UniformDistribution>());
  out.push_back(std::make_unique<TruncatedNormalDistribution>(0.5, 0.15));
  out.push_back(std::make_unique<ZipfDistribution>(1000, 0.9));
  out.push_back(std::make_unique<GaussianMixtureDistribution>(
      std::vector<GaussianMixtureDistribution::Component>{
          {0.4, 0.2, 0.05}, {0.35, 0.55, 0.08}, {0.25, 0.85, 0.04}},
      "Mixture3"));
  return out;
}

}  // namespace ringdde
