#ifndef RINGDDE_DATA_PLACEMENT_H_
#define RINGDDE_DATA_PLACEMENT_H_

#include "common/id.h"

namespace ringdde {

/// Maps an application's real data domain [lo, hi] to the unit key domain
/// [0, 1) used by the overlay, linearly (hence order-preserving).
///
/// The whole distribution-free estimation model rests on order-preserving
/// placement: because ring order equals key order, the cumulative item count
/// around the ring *is* the (unnormalized) global CDF over the data domain.
class DomainMapper {
 public:
  /// Requires lo < hi.
  DomainMapper(double lo, double hi);

  /// Domain value -> unit key, clamped to [0, 1).
  double ToUnit(double domain_value) const;

  /// Unit key -> domain value.
  double ToDomain(double unit_key) const;

  /// Unit key -> ring position (order-preserving placement).
  RingId ToRing(double domain_value) const;

  double lo() const { return lo_; }
  double hi() const { return hi_; }

 private:
  double lo_, hi_;
};

/// Order-preserving placement of a unit-domain key on the ring. This is the
/// placement the library's estimators require.
RingId OrderPreservingPlacement(double key01);

/// Hashed (uniform, order-destroying) placement, provided for contrast: it
/// balances load perfectly but makes the ring useless for CDF sampling
/// because neighboring ring positions no longer hold neighboring keys.
/// Exercised in tests and discussed in DESIGN.md; the overlay itself always
/// uses order-preserving placement.
RingId HashedPlacement(double key01);

}  // namespace ringdde

#endif  // RINGDDE_DATA_PLACEMENT_H_
