#include "data/dataset.h"

#include <algorithm>

#include "common/math_util.h"

namespace ringdde {

Dataset GenerateDataset(const Distribution& dist, size_t n, Rng& rng) {
  Dataset out;
  out.distribution_name = dist.Name();
  out.keys.reserve(n);
  for (size_t i = 0; i < n; ++i) out.keys.push_back(dist.Sample(rng));
  return out;
}

DatasetSummary SummarizeDataset(const Dataset& dataset) {
  DatasetSummary s;
  s.count = dataset.keys.size();
  if (s.count == 0) return s;
  s.min = *std::min_element(dataset.keys.begin(), dataset.keys.end());
  s.max = *std::max_element(dataset.keys.begin(), dataset.keys.end());
  s.mean = Mean(dataset.keys);
  s.stddev = Stddev(dataset.keys);
  s.median = Quantile(dataset.keys, 0.5);
  return s;
}

}  // namespace ringdde
