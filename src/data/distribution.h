#ifndef RINGDDE_DATA_DISTRIBUTION_H_
#define RINGDDE_DATA_DISTRIBUTION_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"

namespace ringdde {

/// An analytic data distribution over the unit key domain [0, 1].
///
/// Every workload distribution exposes its exact pdf/cdf/quantile so
/// experiment accuracy metrics compare estimates against *analytic* ground
/// truth instead of against a finite reference sample. All bundled
/// distributions are supported on (a subset of) [0, 1]; arbitrary real
/// domains are handled by mapping through data::DomainMapper.
class Distribution {
 public:
  virtual ~Distribution() = default;

  /// Draws one variate.
  virtual double Sample(Rng& rng) const = 0;

  /// Density at x; 0 outside the support.
  virtual double Pdf(double x) const = 0;

  /// P(X <= x). 0 below the support, 1 above it.
  virtual double Cdf(double x) const = 0;

  /// Inverse CDF at p in [0,1]. The default implementation bisects Cdf()
  /// over the support; subclasses with closed forms override it.
  virtual double Quantile(double p) const;

  /// Inclusive support bounds within [0, 1].
  virtual double support_lo() const { return 0.0; }
  virtual double support_hi() const { return 1.0; }

  /// Short human-readable name used in experiment tables.
  virtual std::string Name() const = 0;

  /// Deep copy with identical parameters (and therefore an identical
  /// Sample() stream for a given Rng). Lets deployments be replicated
  /// across threads without sharing the prototype object.
  virtual std::unique_ptr<Distribution> Clone() const = 0;
};

/// Uniform over [lo, hi] ⊆ [0,1].
class UniformDistribution : public Distribution {
 public:
  explicit UniformDistribution(double lo = 0.0, double hi = 1.0);
  double Sample(Rng& rng) const override;
  double Pdf(double x) const override;
  double Cdf(double x) const override;
  double Quantile(double p) const override;
  double support_lo() const override { return lo_; }
  double support_hi() const override { return hi_; }
  std::string Name() const override;
  std::unique_ptr<Distribution> Clone() const override {
    return std::make_unique<UniformDistribution>(*this);
  }

 private:
  double lo_, hi_;
};

/// Normal(mean, stddev) truncated to [0, 1], exactly renormalized.
class TruncatedNormalDistribution : public Distribution {
 public:
  TruncatedNormalDistribution(double mean, double stddev);
  double Sample(Rng& rng) const override;
  double Pdf(double x) const override;
  double Cdf(double x) const override;
  double Quantile(double p) const override;
  std::string Name() const override;
  std::unique_ptr<Distribution> Clone() const override {
    return std::make_unique<TruncatedNormalDistribution>(*this);
  }

 private:
  double mean_, stddev_;
  double cdf_lo_, cdf_hi_, mass_;  // of the untruncated normal at 0 and 1
};

/// Exponential(rate) truncated to [0, 1], exactly renormalized.
/// Density decays from 0 toward 1; larger rate = more skew toward 0.
class TruncatedExponentialDistribution : public Distribution {
 public:
  explicit TruncatedExponentialDistribution(double rate);
  double Sample(Rng& rng) const override;
  double Pdf(double x) const override;
  double Cdf(double x) const override;
  double Quantile(double p) const override;
  std::string Name() const override;
  std::unique_ptr<Distribution> Clone() const override {
    return std::make_unique<TruncatedExponentialDistribution>(*this);
  }

 private:
  double rate_;
  double mass_;  // 1 - exp(-rate)
};

/// Bounded Pareto on [lo, 1] with shape alpha (heavy head at lo).
class BoundedParetoDistribution : public Distribution {
 public:
  BoundedParetoDistribution(double alpha, double lo = 0.01);
  double Sample(Rng& rng) const override;
  double Pdf(double x) const override;
  double Cdf(double x) const override;
  double Quantile(double p) const override;
  double support_lo() const override { return lo_; }
  std::string Name() const override;
  std::unique_ptr<Distribution> Clone() const override {
    return std::make_unique<BoundedParetoDistribution>(*this);
  }

 private:
  double alpha_, lo_;
  double norm_;  // 1 - lo^alpha
};

/// Piecewise-constant density over `masses.size()` equal-width bins spanning
/// [0,1]: bin i carries probability masses[i] (they are normalized on
/// construction) spread uniformly within the bin. Exact pdf/cdf/quantile.
class PiecewiseConstantDistribution : public Distribution {
 public:
  PiecewiseConstantDistribution(std::vector<double> masses, std::string name);
  double Sample(Rng& rng) const override;
  double Pdf(double x) const override;
  double Cdf(double x) const override;
  double Quantile(double p) const override;
  std::string Name() const override { return name_; }
  std::unique_ptr<Distribution> Clone() const override {
    return std::make_unique<PiecewiseConstantDistribution>(*this);
  }

  size_t num_bins() const { return masses_.size(); }
  const std::vector<double>& masses() const { return masses_; }

 private:
  std::vector<double> masses_;      // normalized bin probabilities
  std::vector<double> cumulative_;  // cumulative_[i] = P(X <= (i+1)/B)
  std::string name_;
};

/// Zipf-skewed data: V distinct values at bin centers of [0,1], value rank
/// i (1-based) has probability ∝ 1/i^theta, smeared uniformly over its bin
/// so the distribution stays continuous with exact ground truth.
/// theta = 0 degenerates to uniform; theta around 0.8–1.2 is the classic
/// "skewed web data" regime.
class ZipfDistribution : public PiecewiseConstantDistribution {
 public:
  ZipfDistribution(size_t num_values, double theta);
  double theta() const { return theta_; }
  std::unique_ptr<Distribution> Clone() const override {
    return std::make_unique<ZipfDistribution>(*this);
  }

 private:
  static std::vector<double> ZipfMasses(size_t num_values, double theta);
  double theta_;
};

/// Mixture of normals truncated (jointly renormalized) to [0,1].
class GaussianMixtureDistribution : public Distribution {
 public:
  struct Component {
    double weight;
    double mean;
    double stddev;
  };

  explicit GaussianMixtureDistribution(std::vector<Component> components,
                                       std::string name = "Mixture");
  double Sample(Rng& rng) const override;
  double Pdf(double x) const override;
  double Cdf(double x) const override;
  std::string Name() const override { return name_; }
  std::unique_ptr<Distribution> Clone() const override {
    return std::make_unique<GaussianMixtureDistribution>(*this);
  }

 private:
  std::vector<Component> components_;  // weights normalized
  double mass_;                        // truncation mass of the raw mixture
  std::string name_;
};

/// The four canonical workload distributions used throughout the E1–E9
/// benchmarks: Uniform, Normal(0.5, 0.15), Zipf(1000, 0.9), and a trimodal
/// Gaussian mixture.
std::vector<std::unique_ptr<Distribution>> StandardBenchmarkDistributions();

}  // namespace ringdde

#endif  // RINGDDE_DATA_DISTRIBUTION_H_
