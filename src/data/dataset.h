#ifndef RINGDDE_DATA_DATASET_H_
#define RINGDDE_DATA_DATASET_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "data/distribution.h"

namespace ringdde {

/// A generated workload: keys in the unit domain plus provenance.
struct Dataset {
  std::vector<double> keys;
  std::string distribution_name;

  size_t size() const { return keys.size(); }
};

/// Draws `n` i.i.d. keys from `dist`.
Dataset GenerateDataset(const Distribution& dist, size_t n, Rng& rng);

/// Summary statistics of a dataset (for experiment logs).
struct DatasetSummary {
  size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
  double median = 0.0;
};

DatasetSummary SummarizeDataset(const Dataset& dataset);

}  // namespace ringdde

#endif  // RINGDDE_DATA_DATASET_H_
