#include "ring/churn.h"

#include <cassert>

#include "common/logging.h"

namespace ringdde {

ChurnProcess::ChurnProcess(ChordRing* ring, ChurnOptions options)
    : ring_(ring), options_(options), rng_(options.seed) {
  assert(ring != nullptr);
  assert(options_.mean_session_seconds > 0.0);
  assert(options_.stabilize_interval_seconds > 0.0);
}

void ChurnProcess::Start() {
  for (NodeAddr addr : ring_->AliveAddrs()) ScheduleDeparture(addr);
  OnStabilizeTick();
}

void ChurnProcess::ScheduleDeparture(NodeAddr addr) {
  const double session =
      rng_.Exponential(1.0 / options_.mean_session_seconds);
  ring_->network().events().ScheduleAfter(
      session, [this, addr] { OnDeparture(addr); });
}

void ChurnProcess::OnDeparture(NodeAddr addr) {
  if (!ring_->IsAlive(addr)) return;  // already gone (e.g. replaced)
  if (ring_->AliveCount() <= 2) {
    // Too small to churn safely; retry later so the process never stalls.
    ScheduleDeparture(addr);
    return;
  }
  Status s;
  if (rng_.Bernoulli(options_.graceful_fraction)) {
    s = ring_->Leave(addr);
    if (s.ok()) ++leaves_;
  } else {
    s = ring_->Crash(addr);
    if (s.ok()) ++crashes_;
  }
  if (!s.ok()) {
    RINGDDE_LOG(kDebug) << "departure of " << addr
                        << " failed: " << s.ToString();
    return;
  }
  if (options_.maintain_size) {
    Result<NodeAddr> bootstrap = ring_->RandomAliveNode(rng_);
    if (bootstrap.ok()) {
      Result<NodeAddr> fresh = ring_->Join(*bootstrap);
      if (fresh.ok()) {
        ++joins_;
        ScheduleDeparture(*fresh);
      } else {
        ++failed_joins_;
        RINGDDE_LOG(kDebug) << "join failed: " << fresh.status().ToString();
      }
    }
  }
}

void ChurnProcess::OnStabilizeTick() {
  const size_t n = ring_->AliveCount();
  if (n > 0) {
    // Stabilize the cursor-th alive node; the cursor walks the whole ring
    // once per stabilize_interval. Rank selection runs off the segment
    // offset table — O(log S) per tick even while churn dirties the
    // membership, where the old flat alive cache re-copied O(n) addresses
    // on every tick that followed a join or departure. Ranks are
    // ascending-id order, so the victim matches the legacy walk exactly.
    ring_->StabilizeNode(ring_->AliveAddrAtRank(stabilize_cursor_ % n));
    ++stabilize_cursor_;
  }
  const double delay =
      options_.stabilize_interval_seconds / static_cast<double>(n > 0 ? n : 1);
  ring_->network().events().ScheduleAfter(delay,
                                          [this] { OnStabilizeTick(); });
}

}  // namespace ringdde
