#include "ring/chord_ring.h"

#include <algorithm>
#include <cassert>
#include <iterator>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "ring/stabilize_sweep.h"

namespace ringdde {

namespace {
/// Contiguous positions per parallel task: large enough that task dispatch
/// is noise, small enough that chunks balance across workers.
constexpr size_t kSweepChunk = 512;
}  // namespace

ChordRing::ChordRing(Network* network, RingOptions options)
    : network_(network), options_(options), rng_(options.seed) {
  assert(network != nullptr);
}

RingId ChordRing::NewUniqueId() {
  for (;;) {
    RingId id(rng_.NextU64());
    if (used_ids_.insert(id.value).second) return id;
  }
}

void ChordRing::StoreNode(NodeAddr addr, std::unique_ptr<Node> node) {
  // Addresses are dense, but a failed Join burns one without storing a
  // node, so resize (leaving null gaps) rather than push.
  if (addr > nodes_.size()) {
    nodes_.resize(addr);
    alive_.resize(addr, 0);
  }
  nodes_[addr - 1] = std::move(node);
  alive_[addr - 1] = 1;
}

void ChordRing::MarkDead(Node* node) {
  alive_[node->addr() - 1] = 0;
  node->set_alive(false);
}

Status ChordRing::CreateNetwork(size_t n) {
  if (n == 0) return Status::InvalidArgument("network size must be positive");
  if (!nodes_.empty()) {
    return Status::FailedPrecondition("network already created");
  }
  nodes_.reserve(n);
  alive_.reserve(n);
  used_ids_.reserve(n);
  index_.Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    NodeAddr addr = next_addr_++;
    RingId id = NewUniqueId();
    StoreNode(addr, std::make_unique<Node>(addr, id));
    index_.Insert(id.value, addr);
  }
  BumpEpoch();
  StabilizeAll();
  return Status::OK();
}

Result<NodeAddr> ChordRing::OracleOwner(RingId target) const {
  const std::optional<RingIndex::Entry> owner = index_.OwnerOf(target.value);
  if (!owner.has_value()) return Status::NotFound("ring is empty");
  return owner->addr;
}

Status ChordRing::InsertKeyBulk(double key01) {
  Result<NodeAddr> owner = OracleOwner(RingId::FromUnit(key01));
  if (!owner.ok()) return owner.status();
  GetNode(*owner)->InsertKey(key01);
  BumpEpoch();
  return Status::OK();
}

void ChordRing::InsertDatasetBulk(const std::vector<double>& keys01,
                                  ThreadPool* pool) {
  if (index_.empty() || keys01.empty()) return;
  BumpEpoch();
  // Sort once, then split the sorted keys against the sorted node arcs:
  // FromUnit is monotone on [0,1), so node rank r (owning (ids[r-1],
  // ids[r]]) receives exactly the key range [bound[r-1], bound[r]) where
  // bound[r] is the first key position past ids[r] — with rank 0 also
  // taking the wrap tail [bound[n-1], N). The bounds are a merge sweep
  // (O(N + n)), each owner's store is reserved to its exact final size
  // before any insert, and the per-node slice inserts run node-parallel —
  // every node touches only its own pre-computed slice, so the stores are
  // bit-identical at any thread count.
  std::vector<double> sorted(keys01);
  std::sort(sorted.begin(), sorted.end());
  const size_t total = sorted.size();

  const RingIndex::FlatView flat = index_.Flat();
  const std::vector<Node*>& nodes = FlatNodes();
  const size_t n = flat.size;

  // Ring positions of the sorted keys; monotone unless some key fell
  // outside [0,1) and wrapped mod 1.
  std::vector<uint64_t> pos(total);
  bool monotone = true;
  for (size_t i = 0; i < total; ++i) {
    pos[i] = RingId::FromUnit(sorted[i]).value;
    if (i > 0 && pos[i] < pos[i - 1]) monotone = false;
  }

  if (!monotone) {
    // Wrapped positions break the split invariant: fall back to the serial
    // owner-cursor sweep (restarting the cursor at each wrap). Rare.
    size_t i = 0;
    while (i < total) {
      const uint64_t p = pos[i];
      size_t r = index_.LowerBoundRank(p);
      Node* owner = r == n ? nodes[0] : nodes[r];
      const uint64_t hi = r == n ? UINT64_MAX : flat.ids[r];
      size_t j = i + 1;
      while (j < total && pos[j] >= p && pos[j] <= hi) ++j;
      owner->InsertSortedKeys(sorted.data() + i, sorted.data() + j);
      i = j;
    }
    return;
  }

  // bound[r] = first key index with position > flat.ids[r].
  std::vector<size_t> bound(n);
  {
    size_t cursor = 0;
    for (size_t r = 0; r < n; ++r) {
      const uint64_t hi = flat.ids[r];
      while (cursor < total && pos[cursor] <= hi) ++cursor;
      bound[r] = cursor;
    }
  }

  ThreadPool& p = pool != nullptr ? *pool : ThreadPool::Global();
  const size_t chunks = (n + kSweepChunk - 1) / kSweepChunk;
  p.ParallelFor(0, chunks, [&](size_t c) {
    const size_t lo = c * kSweepChunk;
    const size_t hi = std::min(lo + kSweepChunk, n);
    for (size_t r = lo; r < hi; ++r) {
      const size_t kb = r == 0 ? 0 : bound[r - 1];
      const size_t ke = bound[r];
      const size_t tail = r == 0 ? total - bound[n - 1] : 0;
      if (ke == kb && tail == 0) continue;
      Node* owner = nodes[r];
      owner->ReserveAdditionalKeys(ke - kb + tail);
      if (ke > kb) {
        owner->InsertSortedKeys(sorted.data() + kb, sorted.data() + ke);
      }
      // Keys past the largest id wrap to the smallest node.
      if (tail > 0) {
        owner->InsertSortedKeys(sorted.data() + bound[n - 1],
                                sorted.data() + total);
      }
    }
  });
}

void ChordRing::ChargeHop(CostContext& ctx, NodeAddr from,
                          NodeAddr to) const {
  // Query + response round trip.
  network_->Send(ctx, from, to, options_.routing_info_bytes, /*hop_count=*/1);
  network_->Send(ctx, to, from, options_.routing_info_bytes, /*hop_count=*/0);
}

void ChordRing::ChargeTimeout(CostContext& ctx, NodeAddr from,
                              NodeAddr to) const {
  network_->Send(ctx, from, to, options_.routing_info_bytes, /*hop_count=*/0);
}

Result<NodeAddr> ChordRing::Lookup(CostContext& ctx, NodeAddr from,
                                   RingId target) const {
  const Node* start = GetNode(from);
  if (start == nullptr || !start->alive()) {
    return Status::InvalidArgument("lookup origin is not an alive node");
  }
  const auto alive = [this](NodeAddr a) { return IsAlive(a); };

  NodeAddr current = from;
  for (uint32_t hops = 0; hops <= options_.max_lookup_hops; ++hops) {
    const Node* cur = GetNode(current);
    // First alive entry of the successor list; each stale head costs a
    // timed-out ping.
    const NodeEntry* succ = nullptr;
    for (const NodeEntry& e : cur->successors()) {
      if (IsAlive(e.addr)) {
        succ = &e;
        break;
      }
      ChargeTimeout(ctx, current, e.addr);
    }
    if (succ == nullptr) {
      return Status::Unavailable("successor list exhausted (partition)");
    }
    if (InArcOpenClosed(target, cur->id(), succ->id)) {
      // succ owns target (or will after its next stabilize).
      return succ->addr;
    }
    // Biggest legal finger jump; dead candidates cost a timeout each.
    std::vector<NodeEntry> probed_dead;
    std::optional<NodeEntry> next =
        cur->fingers().ClosestPreceding(cur->id(), target, alive,
                                        &probed_dead);
    for (const NodeEntry& d : probed_dead) ChargeTimeout(ctx, current, d.addr);
    if (!next.has_value()) {
      // No finger inside (cur, target): fall through to the successor,
      // which is guaranteed to precede the owner, so progress is made.
      next = *succ;
    }
    ChargeHop(ctx, current, next->addr);
    current = next->addr;
  }
  return Status::TimedOut("lookup exceeded hop budget");
}

Result<NodeAddr> ChordRing::Join(NodeAddr bootstrap) {
  if (!IsAlive(bootstrap)) {
    return Status::InvalidArgument("bootstrap node is not alive");
  }
  const NodeAddr addr = next_addr_++;
  const RingId id = NewUniqueId();
  auto node = std::make_unique<Node>(addr, id);

  // 1. Find the successor: the peer currently owning our id.
  Result<NodeAddr> succ_addr = Lookup(bootstrap, id);
  if (!succ_addr.ok()) return succ_addr.status();
  Node* succ = GetNode(*succ_addr);

  // 2. Splice into the ring: our arc is (succ.pred, id].
  const NodeEntry old_pred = succ->predecessor();
  node->set_predecessor(old_pred);
  node->set_successors(OracleSuccessorList(id));
  succ->set_predecessor(NodeEntry{addr, id});
  // Notify the old predecessor so its successor pointer includes us.
  if (Node* pred_node = GetNode(old_pred.addr);
      pred_node != nullptr && pred_node->alive()) {
    std::vector<NodeEntry> pl = pred_node->successors();
    pl.insert(pl.begin(), NodeEntry{addr, id});
    if (pl.size() > options_.successor_list_size) {
      pl.resize(options_.successor_list_size);
    }
    pred_node->set_successors(std::move(pl));
    ChargeHop(addr, old_pred.addr);
  }

  // 3. Data handover: keys in (old_pred, id] move from succ to us.
  std::vector<double> moved = succ->ExtractKeysInArc(old_pred.id, id);
  network_->Send(*succ_addr, addr, options_.key_bytes * moved.size(),
                 /*hop_count=*/1);
  node->InsertKeys(moved);

  // 4. Bootstrap fingers by copying the successor's table (one message);
  //    periodic fix_fingers repairs the small error later.
  node->fingers() = succ->fingers();
  ChargeHop(addr, *succ_addr);

  StoreNode(addr, std::move(node));
  index_.Insert(id.value, addr);
  BumpEpoch();
  return addr;
}

Status ChordRing::Leave(NodeAddr addr) {
  Node* node = GetNode(addr);
  if (node == nullptr || !node->alive()) {
    return Status::NotFound("no such alive node");
  }
  if (index_.size() == 1) {
    return Status::FailedPrecondition("last node cannot leave");
  }
  index_.Erase(node->id().value);
  MarkDead(node);
  BumpEpoch();

  Result<NodeAddr> succ_addr = OracleOwner(node->id());
  Node* succ = GetNode(*succ_addr);

  // Hand all data to the successor.
  std::vector<double> moved = node->ExtractKeysInArc(node->id(), node->id());
  network_->Send(addr, *succ_addr, options_.key_bytes * moved.size(),
                 /*hop_count=*/1);
  succ->InsertKeys(moved);

  // Pointer handoff: successor inherits our predecessor; predecessor's
  // successor pointer skips us.
  succ->set_predecessor(node->predecessor());
  ChargeHop(addr, *succ_addr);
  if (Node* pred = GetNode(node->predecessor().addr);
      pred != nullptr && pred->alive()) {
    std::vector<NodeEntry> pl = pred->successors();
    std::erase_if(pl, [&](const NodeEntry& e) { return e.addr == addr; });
    pl.insert(pl.begin(), EntryFor(*succ));
    if (pl.size() > options_.successor_list_size) {
      pl.resize(options_.successor_list_size);
    }
    pred->set_successors(std::move(pl));
    ChargeHop(addr, node->predecessor().addr);
  }
  return Status::OK();
}

Status ChordRing::Crash(NodeAddr addr) {
  Node* node = GetNode(addr);
  if (node == nullptr || !node->alive()) {
    return Status::NotFound("no such alive node");
  }
  if (index_.size() == 1) {
    return Status::FailedPrecondition("last node cannot crash");
  }
  index_.Erase(node->id().value);
  MarkDead(node);
  BumpEpoch();

  if (options_.durable_data) {
    // Replication recovery: items re-materialize at the new owner.
    std::vector<double> lost = node->ExtractKeysInArc(node->id(), node->id());
    Result<NodeAddr> succ_addr = OracleOwner(node->id());
    GetNode(*succ_addr)->InsertKeys(lost);
    // The succeeding node also inherits ownership of the crashed arc; fix
    // its predecessor pointer as its next stabilize round would.
    GetNode(*succ_addr)->set_predecessor(node->predecessor());
  } else {
    node->ExtractKeysInArc(node->id(), node->id());  // drop
  }
  return Status::OK();
}

Status ChordRing::InsertKeyRouted(NodeAddr from, double key01) {
  Result<NodeAddr> owner = Lookup(from, RingId::FromUnit(key01));
  if (!owner.ok()) return owner.status();
  network_->Send(from, *owner, options_.key_bytes, /*hop_count=*/1);
  GetNode(*owner)->InsertKey(key01);
  BumpEpoch();
  return Status::OK();
}

Status ChordRing::EraseKeyBulk(double key01) {
  Result<NodeAddr> owner = OracleOwner(RingId::FromUnit(key01));
  if (!owner.ok()) return owner.status();
  if (!GetNode(*owner)->EraseKey(key01)) {
    return Status::NotFound("key not stored at its owner");
  }
  BumpEpoch();
  return Status::OK();
}

Status ChordRing::EraseKeyRouted(NodeAddr from, double key01) {
  Result<NodeAddr> owner = Lookup(from, RingId::FromUnit(key01));
  if (!owner.ok()) return owner.status();
  network_->Send(from, *owner, options_.key_bytes, /*hop_count=*/1);
  if (!GetNode(*owner)->EraseKey(key01)) {
    return Status::NotFound("key not stored at its owner");
  }
  BumpEpoch();
  return Status::OK();
}

std::vector<NodeEntry> ChordRing::OracleSuccessorList(RingId id) const {
  std::vector<NodeEntry> out;
  if (index_.empty()) return out;
  const size_t n = index_.size();
  const size_t distinct_others = n - (index_.Contains(id.value) ? 1 : 0);
  if (distinct_others == 0) {
    // Single-node ring: the node is its own successor.
    out.push_back(EntryOf(index_.AtRank(0)));
    return out;
  }
  const size_t want =
      std::min<size_t>(options_.successor_list_size, distinct_others);
  size_t r = index_.UpperBoundRank(id.value);
  while (out.size() < want) {
    if (r == n) r = 0;  // wrap
    const RingIndex::Entry e = index_.AtRank(r);
    if (e.id != id.value) out.push_back(EntryOf(e));
    ++r;
  }
  return out;
}

void ChordRing::StabilizeNode(NodeAddr addr) {
  Node* node = GetNode(addr);
  if (node == nullptr || !node->alive()) return;
  BumpEpoch();
  const RingId id = node->id();

  node->set_successors(OracleSuccessorList(id));

  // Predecessor: last alive node strictly before id (wrapping). The node
  // itself is in the index, so its own rank's predecessor is rank - 1.
  const size_t r = index_.LowerBoundRank(id.value);
  const RingIndex::Entry pred =
      index_.AtRank((r == 0 ? index_.size() : r) - 1);
  if (RingId(pred.id) == id) {
    node->set_predecessor(EntryFor(*node));  // lone node
  } else {
    node->set_predecessor(EntryOf(pred));
  }

  // fix_fingers: finger k = successor(id + 2^k).
  for (int k = 0; k < FingerTable::kBits; ++k) {
    const std::optional<RingIndex::Entry> owner =
        index_.OwnerOf(FingerTable::FingerStart(id, k).value);
    if (owner.has_value()) node->fingers().Set(k, EntryOf(*owner));
  }
}

void ChordRing::StabilizeAll(ThreadPool* pool) {
  // One flat sorted snapshot of the membership (the cached RingIndex flat
  // arrays — only dirtied segments are re-copied), shared read-only by
  // every chunk. Each node's new state depends only on the snapshot and
  // its own position, and the chunk grid depends only on n — never on the
  // pool — so serial and parallel runs produce byte-identical routing
  // state.
  const size_t n = index_.size();
  if (n == 0) return;
  BumpEpoch();
  const RingIndex::FlatView flat = index_.Flat();
  const std::vector<Node*>& nodes = FlatNodes();
  const size_t chunks = (n + kSweepChunk - 1) / kSweepChunk;
  ThreadPool& p = pool != nullptr ? *pool : ThreadPool::Global();
  p.ParallelFor(0, chunks, [&](size_t c) {
    const size_t chunk_begin = c * kSweepChunk;
    StabilizeSweepRange(flat.ids, flat.addrs, nodes.data(), n,
                        options_.successor_list_size, chunk_begin,
                        std::min(chunk_begin + kSweepChunk, n));
  });
}

const std::vector<Node*>& ChordRing::FlatNodes() const {
  if (flat_nodes_version_ == index_.version() &&
      flat_nodes_.size() == index_.size()) {
    return flat_nodes_;
  }
  const RingIndex::FlatView flat = index_.Flat();
  flat_nodes_.resize(flat.size);
  for (size_t i = 0; i < flat.size; ++i) {
    flat_nodes_[i] = nodes_[flat.addrs[i] - 1].get();
  }
  flat_nodes_version_ = index_.version();
  return flat_nodes_;
}

void ChordRing::PrepareConcurrentReads() const {
  // Materialize every lazy cache the read path may touch, so the query
  // path performs no writes even through `mutable` members: the segment
  // offset table (AtRank / RandomAliveNode), the flat membership snapshot
  // (AliveAddrsView), the flat Node-pointer array, and each node's
  // on-demand key sort (RankOf / quantiles via keys()). The key sorts are
  // per-node independent, so they warm node-parallel.
  index_.WarmCaches();
  const std::vector<Node*>& nodes = FlatNodes();
  const size_t n = nodes.size();
  const size_t chunks = (n + kSweepChunk - 1) / kSweepChunk;
  ThreadPool::Global().ParallelFor(0, chunks, [&](size_t c) {
    const size_t hi = std::min((c + 1) * kSweepChunk, n);
    for (size_t i = c * kSweepChunk; i < hi; ++i) nodes[i]->keys();
  });
}

std::vector<NodeAddr> ChordRing::AliveAddrs() const {
  return index_.FlatAddrs();
}

Result<NodeAddr> ChordRing::RandomAliveNode(Rng& rng) const {
  if (index_.empty()) return Status::NotFound("ring is empty");
  // Rank selection in ascending-id order: picks exactly the node the old
  // O(n) std::advance walk (and the flat alive cache after it) selected.
  const uint64_t k = rng.UniformU64(index_.size());
  return index_.AtRank(static_cast<size_t>(k)).addr;
}

uint64_t ChordRing::TotalItems() const {
  uint64_t total = 0;
  for (const Node* n : FlatNodes()) total += n->item_count();
  return total;
}

std::vector<uint64_t> ChordRing::SnapshotKeyCounts() const {
  const std::vector<Node*>& nodes = FlatNodes();
  std::vector<uint64_t> counts;
  counts.reserve(nodes.size());
  for (const Node* n : nodes) counts.push_back(n->item_count());
  return counts;
}

}  // namespace ringdde
