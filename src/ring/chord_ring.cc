#include "ring/chord_ring.h"

#include <algorithm>
#include <cassert>
#include <iterator>

#include "common/logging.h"

namespace ringdde {

ChordRing::ChordRing(Network* network, RingOptions options)
    : network_(network), options_(options), rng_(options.seed) {
  assert(network != nullptr);
}

RingId ChordRing::NewUniqueId() {
  for (;;) {
    RingId id(rng_.NextU64());
    if (used_ids_.insert(id.value).second) return id;
  }
}

Status ChordRing::CreateNetwork(size_t n) {
  if (n == 0) return Status::InvalidArgument("network size must be positive");
  if (!nodes_.empty()) {
    return Status::FailedPrecondition("network already created");
  }
  for (size_t i = 0; i < n; ++i) {
    NodeAddr addr = next_addr_++;
    RingId id = NewUniqueId();
    nodes_.emplace(addr, std::make_unique<Node>(addr, id));
    index_.emplace(id.value, addr);
  }
  StabilizeAll();
  return Status::OK();
}

Result<NodeAddr> ChordRing::OracleOwner(RingId target) const {
  if (index_.empty()) return Status::NotFound("ring is empty");
  auto it = index_.lower_bound(target.value);
  if (it == index_.end()) it = index_.begin();  // wrap
  return it->second;
}

Status ChordRing::InsertKeyBulk(double key01) {
  Result<NodeAddr> owner = OracleOwner(RingId::FromUnit(key01));
  if (!owner.ok()) return owner.status();
  GetNode(*owner)->InsertKey(key01);
  return Status::OK();
}

void ChordRing::InsertDatasetBulk(const std::vector<double>& keys01) {
  if (index_.empty() || keys01.empty()) return;
  // Sort once, then sweep the sorted keys against the sorted node arcs:
  // FromUnit is monotone on [0,1), so consecutive keys land on the same or
  // a later arc and each node receives one pre-sorted contiguous slice —
  // O(N log N + N + n) instead of a map lookup plus hash churn per key.
  std::vector<double> sorted(keys01);
  std::sort(sorted.begin(), sorted.end());
  const size_t n = sorted.size();
  auto it = index_.begin();
  uint64_t last_pos = 0;
  size_t i = 0;
  while (i < n) {
    const uint64_t pos = RingId::FromUnit(sorted[i]).value;
    if (pos < last_pos) {
      // Wrapped position (key outside [0,1) reduced mod 1): restart the
      // sweep cursor. Rare, so the extra lookup is irrelevant.
      it = index_.lower_bound(pos);
    } else {
      while (it != index_.end() && it->first < pos) ++it;
    }
    last_pos = pos;
    // Owner of pos: first id at or after it, wrapping to the smallest id.
    Node* owner = GetNode(it == index_.end() ? index_.begin()->second
                                             : it->second);
    const uint64_t hi = it == index_.end() ? UINT64_MAX : it->first;
    size_t j = i + 1;
    while (j < n) {
      const uint64_t p = RingId::FromUnit(sorted[j]).value;
      if (p < pos || p > hi) break;
      ++j;
    }
    owner->InsertSortedKeys(sorted.data() + i, sorted.data() + j);
    i = j;
  }
}

void ChordRing::ChargeHop(NodeAddr from, NodeAddr to) {
  // Query + response round trip.
  network_->Send(from, to, options_.routing_info_bytes, /*hop_count=*/1);
  network_->Send(to, from, options_.routing_info_bytes, /*hop_count=*/0);
}

void ChordRing::ChargeTimeout(NodeAddr from, NodeAddr to) {
  network_->Send(from, to, options_.routing_info_bytes, /*hop_count=*/0);
}

Result<NodeAddr> ChordRing::Lookup(NodeAddr from, RingId target) {
  Node* start = GetNode(from);
  if (start == nullptr || !start->alive()) {
    return Status::InvalidArgument("lookup origin is not an alive node");
  }
  const auto alive = [this](NodeAddr a) { return IsAlive(a); };

  NodeAddr current = from;
  for (uint32_t hops = 0; hops <= options_.max_lookup_hops; ++hops) {
    Node* cur = GetNode(current);
    // First alive entry of the successor list; each stale head costs a
    // timed-out ping.
    const NodeEntry* succ = nullptr;
    for (const NodeEntry& e : cur->successors()) {
      if (IsAlive(e.addr)) {
        succ = &e;
        break;
      }
      ChargeTimeout(current, e.addr);
    }
    if (succ == nullptr) {
      return Status::Unavailable("successor list exhausted (partition)");
    }
    if (InArcOpenClosed(target, cur->id(), succ->id)) {
      // succ owns target (or will after its next stabilize).
      return succ->addr;
    }
    // Biggest legal finger jump; dead candidates cost a timeout each.
    std::vector<NodeEntry> probed_dead;
    std::optional<NodeEntry> next =
        cur->fingers().ClosestPreceding(cur->id(), target, alive,
                                        &probed_dead);
    for (const NodeEntry& d : probed_dead) ChargeTimeout(current, d.addr);
    if (!next.has_value()) {
      // No finger inside (cur, target): fall through to the successor,
      // which is guaranteed to precede the owner, so progress is made.
      next = *succ;
    }
    ChargeHop(current, next->addr);
    current = next->addr;
  }
  return Status::TimedOut("lookup exceeded hop budget");
}

Result<NodeAddr> ChordRing::Join(NodeAddr bootstrap) {
  if (!IsAlive(bootstrap)) {
    return Status::InvalidArgument("bootstrap node is not alive");
  }
  const NodeAddr addr = next_addr_++;
  const RingId id = NewUniqueId();
  auto node = std::make_unique<Node>(addr, id);

  // 1. Find the successor: the peer currently owning our id.
  Result<NodeAddr> succ_addr = Lookup(bootstrap, id);
  if (!succ_addr.ok()) return succ_addr.status();
  Node* succ = GetNode(*succ_addr);

  // 2. Splice into the ring: our arc is (succ.pred, id].
  const NodeEntry old_pred = succ->predecessor();
  node->set_predecessor(old_pred);
  node->set_successors(OracleSuccessorList(id));
  succ->set_predecessor(NodeEntry{addr, id});
  // Notify the old predecessor so its successor pointer includes us.
  if (Node* pred_node = GetNode(old_pred.addr);
      pred_node != nullptr && pred_node->alive()) {
    std::vector<NodeEntry> pl = pred_node->successors();
    pl.insert(pl.begin(), NodeEntry{addr, id});
    if (pl.size() > options_.successor_list_size) {
      pl.resize(options_.successor_list_size);
    }
    pred_node->set_successors(std::move(pl));
    ChargeHop(addr, old_pred.addr);
  }

  // 3. Data handover: keys in (old_pred, id] move from succ to us.
  std::vector<double> moved = succ->ExtractKeysInArc(old_pred.id, id);
  network_->Send(*succ_addr, addr, options_.key_bytes * moved.size(),
                 /*hop_count=*/1);
  node->InsertKeys(moved);

  // 4. Bootstrap fingers by copying the successor's table (one message);
  //    periodic fix_fingers repairs the small error later.
  node->fingers() = succ->fingers();
  ChargeHop(addr, *succ_addr);

  index_.emplace(id.value, addr);
  nodes_.emplace(addr, std::move(node));
  return addr;
}

Status ChordRing::Leave(NodeAddr addr) {
  Node* node = GetNode(addr);
  if (node == nullptr || !node->alive()) {
    return Status::NotFound("no such alive node");
  }
  if (index_.size() == 1) {
    return Status::FailedPrecondition("last node cannot leave");
  }
  index_.erase(node->id().value);
  node->set_alive(false);

  Result<NodeAddr> succ_addr = OracleOwner(node->id());
  Node* succ = GetNode(*succ_addr);

  // Hand all data to the successor.
  std::vector<double> moved = node->ExtractKeysInArc(node->id(), node->id());
  network_->Send(addr, *succ_addr, options_.key_bytes * moved.size(),
                 /*hop_count=*/1);
  succ->InsertKeys(moved);

  // Pointer handoff: successor inherits our predecessor; predecessor's
  // successor pointer skips us.
  succ->set_predecessor(node->predecessor());
  ChargeHop(addr, *succ_addr);
  if (Node* pred = GetNode(node->predecessor().addr);
      pred != nullptr && pred->alive()) {
    std::vector<NodeEntry> pl = pred->successors();
    std::erase_if(pl, [&](const NodeEntry& e) { return e.addr == addr; });
    pl.insert(pl.begin(), EntryFor(*succ));
    if (pl.size() > options_.successor_list_size) {
      pl.resize(options_.successor_list_size);
    }
    pred->set_successors(std::move(pl));
    ChargeHop(addr, node->predecessor().addr);
  }
  return Status::OK();
}

Status ChordRing::Crash(NodeAddr addr) {
  Node* node = GetNode(addr);
  if (node == nullptr || !node->alive()) {
    return Status::NotFound("no such alive node");
  }
  if (index_.size() == 1) {
    return Status::FailedPrecondition("last node cannot crash");
  }
  index_.erase(node->id().value);
  node->set_alive(false);

  if (options_.durable_data) {
    // Replication recovery: items re-materialize at the new owner.
    std::vector<double> lost = node->ExtractKeysInArc(node->id(), node->id());
    Result<NodeAddr> succ_addr = OracleOwner(node->id());
    GetNode(*succ_addr)->InsertKeys(lost);
    // The succeeding node also inherits ownership of the crashed arc; fix
    // its predecessor pointer as its next stabilize round would.
    GetNode(*succ_addr)->set_predecessor(node->predecessor());
  } else {
    node->ExtractKeysInArc(node->id(), node->id());  // drop
  }
  return Status::OK();
}

Status ChordRing::InsertKeyRouted(NodeAddr from, double key01) {
  Result<NodeAddr> owner = Lookup(from, RingId::FromUnit(key01));
  if (!owner.ok()) return owner.status();
  network_->Send(from, *owner, options_.key_bytes, /*hop_count=*/1);
  GetNode(*owner)->InsertKey(key01);
  return Status::OK();
}

Status ChordRing::EraseKeyBulk(double key01) {
  Result<NodeAddr> owner = OracleOwner(RingId::FromUnit(key01));
  if (!owner.ok()) return owner.status();
  if (!GetNode(*owner)->EraseKey(key01)) {
    return Status::NotFound("key not stored at its owner");
  }
  return Status::OK();
}

Status ChordRing::EraseKeyRouted(NodeAddr from, double key01) {
  Result<NodeAddr> owner = Lookup(from, RingId::FromUnit(key01));
  if (!owner.ok()) return owner.status();
  network_->Send(from, *owner, options_.key_bytes, /*hop_count=*/1);
  if (!GetNode(*owner)->EraseKey(key01)) {
    return Status::NotFound("key not stored at its owner");
  }
  return Status::OK();
}

std::vector<NodeEntry> ChordRing::OracleSuccessorList(RingId id) const {
  std::vector<NodeEntry> out;
  if (index_.empty()) return out;
  const size_t distinct_others =
      index_.size() - (index_.contains(id.value) ? 1 : 0);
  if (distinct_others == 0) {
    // Single-node ring: the node is its own successor.
    const Node* n = GetNode(index_.begin()->second);
    out.push_back(NodeEntry{n->addr(), n->id()});
    return out;
  }
  const size_t want =
      std::min<size_t>(options_.successor_list_size, distinct_others);
  auto it = index_.upper_bound(id.value);
  while (out.size() < want) {
    if (it == index_.end()) it = index_.begin();
    if (RingId(it->first) != id) {
      const Node* n = GetNode(it->second);
      out.push_back(NodeEntry{n->addr(), n->id()});
    }
    ++it;
  }
  return out;
}

void ChordRing::StabilizeNode(NodeAddr addr) {
  Node* node = GetNode(addr);
  if (node == nullptr || !node->alive()) return;
  const RingId id = node->id();

  node->set_successors(OracleSuccessorList(id));

  // Predecessor: last alive node strictly before id (wrapping).
  auto it = index_.lower_bound(id.value);
  if (it == index_.begin()) it = index_.end();
  --it;
  const Node* pred = GetNode(it->second);
  if (pred->id() == id) {
    node->set_predecessor(EntryFor(*node));  // lone node
  } else {
    node->set_predecessor(EntryFor(*pred));
  }

  // fix_fingers: finger k = successor(id + 2^k).
  for (int k = 0; k < FingerTable::kBits; ++k) {
    Result<NodeAddr> owner = OracleOwner(FingerTable::FingerStart(id, k));
    if (owner.ok()) {
      const Node* f = GetNode(*owner);
      node->fingers().Set(k, NodeEntry{f->addr(), f->id()});
    }
  }
}

void ChordRing::StabilizeAll() {
  for (const auto& [id, addr] : index_) StabilizeNode(addr);
}

Node* ChordRing::GetNode(NodeAddr addr) {
  auto it = nodes_.find(addr);
  return it == nodes_.end() ? nullptr : it->second.get();
}

const Node* ChordRing::GetNode(NodeAddr addr) const {
  auto it = nodes_.find(addr);
  return it == nodes_.end() ? nullptr : it->second.get();
}

bool ChordRing::IsAlive(NodeAddr addr) const {
  const Node* n = GetNode(addr);
  return n != nullptr && n->alive();
}

std::vector<NodeAddr> ChordRing::AliveAddrs() const {
  std::vector<NodeAddr> out;
  out.reserve(index_.size());
  for (const auto& [id, addr] : index_) out.push_back(addr);
  return out;
}

Result<NodeAddr> ChordRing::RandomAliveNode(Rng& rng) const {
  if (index_.empty()) return Status::NotFound("ring is empty");
  // index_ iteration order is deterministic; pick the k-th entry.
  uint64_t k = rng.UniformU64(index_.size());
  auto it = index_.begin();
  std::advance(it, static_cast<ptrdiff_t>(k));
  return it->second;
}

uint64_t ChordRing::TotalItems() const {
  uint64_t total = 0;
  for (const auto& [id, addr] : index_) total += GetNode(addr)->item_count();
  return total;
}

}  // namespace ringdde
