#include "ring/chord_ring.h"

#include <algorithm>
#include <cassert>
#include <iterator>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace ringdde {

ChordRing::ChordRing(Network* network, RingOptions options)
    : network_(network), options_(options), rng_(options.seed) {
  assert(network != nullptr);
}

RingId ChordRing::NewUniqueId() {
  for (;;) {
    RingId id(rng_.NextU64());
    if (used_ids_.insert(id.value).second) return id;
  }
}

Status ChordRing::CreateNetwork(size_t n) {
  if (n == 0) return Status::InvalidArgument("network size must be positive");
  if (!nodes_.empty()) {
    return Status::FailedPrecondition("network already created");
  }
  for (size_t i = 0; i < n; ++i) {
    NodeAddr addr = next_addr_++;
    RingId id = NewUniqueId();
    nodes_.emplace(addr, std::make_unique<Node>(addr, id));
    index_.emplace(id.value, addr);
  }
  InvalidateAliveCache();
  BumpEpoch();
  StabilizeAll();
  return Status::OK();
}

Result<NodeAddr> ChordRing::OracleOwner(RingId target) const {
  if (index_.empty()) return Status::NotFound("ring is empty");
  auto it = index_.lower_bound(target.value);
  if (it == index_.end()) it = index_.begin();  // wrap
  return it->second;
}

Status ChordRing::InsertKeyBulk(double key01) {
  Result<NodeAddr> owner = OracleOwner(RingId::FromUnit(key01));
  if (!owner.ok()) return owner.status();
  GetNode(*owner)->InsertKey(key01);
  BumpEpoch();
  return Status::OK();
}

void ChordRing::InsertDatasetBulk(const std::vector<double>& keys01) {
  if (index_.empty() || keys01.empty()) return;
  BumpEpoch();
  // Sort once, then sweep the sorted keys against the sorted node arcs:
  // FromUnit is monotone on [0,1), so consecutive keys land on the same or
  // a later arc and each node receives one pre-sorted contiguous slice —
  // O(N log N + N + n) instead of a map lookup plus hash churn per key.
  std::vector<double> sorted(keys01);
  std::sort(sorted.begin(), sorted.end());
  const size_t n = sorted.size();
  auto it = index_.begin();
  uint64_t last_pos = 0;
  size_t i = 0;
  while (i < n) {
    const uint64_t pos = RingId::FromUnit(sorted[i]).value;
    if (pos < last_pos) {
      // Wrapped position (key outside [0,1) reduced mod 1): restart the
      // sweep cursor. Rare, so the extra lookup is irrelevant.
      it = index_.lower_bound(pos);
    } else {
      while (it != index_.end() && it->first < pos) ++it;
    }
    last_pos = pos;
    // Owner of pos: first id at or after it, wrapping to the smallest id.
    Node* owner = GetNode(it == index_.end() ? index_.begin()->second
                                             : it->second);
    const uint64_t hi = it == index_.end() ? UINT64_MAX : it->first;
    size_t j = i + 1;
    while (j < n) {
      const uint64_t p = RingId::FromUnit(sorted[j]).value;
      if (p < pos || p > hi) break;
      ++j;
    }
    owner->InsertSortedKeys(sorted.data() + i, sorted.data() + j);
    i = j;
  }
}

void ChordRing::ChargeHop(CostContext& ctx, NodeAddr from,
                          NodeAddr to) const {
  // Query + response round trip.
  network_->Send(ctx, from, to, options_.routing_info_bytes, /*hop_count=*/1);
  network_->Send(ctx, to, from, options_.routing_info_bytes, /*hop_count=*/0);
}

void ChordRing::ChargeTimeout(CostContext& ctx, NodeAddr from,
                              NodeAddr to) const {
  network_->Send(ctx, from, to, options_.routing_info_bytes, /*hop_count=*/0);
}

Result<NodeAddr> ChordRing::Lookup(CostContext& ctx, NodeAddr from,
                                   RingId target) const {
  const Node* start = GetNode(from);
  if (start == nullptr || !start->alive()) {
    return Status::InvalidArgument("lookup origin is not an alive node");
  }
  const auto alive = [this](NodeAddr a) { return IsAlive(a); };

  NodeAddr current = from;
  for (uint32_t hops = 0; hops <= options_.max_lookup_hops; ++hops) {
    const Node* cur = GetNode(current);
    // First alive entry of the successor list; each stale head costs a
    // timed-out ping.
    const NodeEntry* succ = nullptr;
    for (const NodeEntry& e : cur->successors()) {
      if (IsAlive(e.addr)) {
        succ = &e;
        break;
      }
      ChargeTimeout(ctx, current, e.addr);
    }
    if (succ == nullptr) {
      return Status::Unavailable("successor list exhausted (partition)");
    }
    if (InArcOpenClosed(target, cur->id(), succ->id)) {
      // succ owns target (or will after its next stabilize).
      return succ->addr;
    }
    // Biggest legal finger jump; dead candidates cost a timeout each.
    std::vector<NodeEntry> probed_dead;
    std::optional<NodeEntry> next =
        cur->fingers().ClosestPreceding(cur->id(), target, alive,
                                        &probed_dead);
    for (const NodeEntry& d : probed_dead) ChargeTimeout(ctx, current, d.addr);
    if (!next.has_value()) {
      // No finger inside (cur, target): fall through to the successor,
      // which is guaranteed to precede the owner, so progress is made.
      next = *succ;
    }
    ChargeHop(ctx, current, next->addr);
    current = next->addr;
  }
  return Status::TimedOut("lookup exceeded hop budget");
}

Result<NodeAddr> ChordRing::Join(NodeAddr bootstrap) {
  if (!IsAlive(bootstrap)) {
    return Status::InvalidArgument("bootstrap node is not alive");
  }
  const NodeAddr addr = next_addr_++;
  const RingId id = NewUniqueId();
  auto node = std::make_unique<Node>(addr, id);

  // 1. Find the successor: the peer currently owning our id.
  Result<NodeAddr> succ_addr = Lookup(bootstrap, id);
  if (!succ_addr.ok()) return succ_addr.status();
  Node* succ = GetNode(*succ_addr);

  // 2. Splice into the ring: our arc is (succ.pred, id].
  const NodeEntry old_pred = succ->predecessor();
  node->set_predecessor(old_pred);
  node->set_successors(OracleSuccessorList(id));
  succ->set_predecessor(NodeEntry{addr, id});
  // Notify the old predecessor so its successor pointer includes us.
  if (Node* pred_node = GetNode(old_pred.addr);
      pred_node != nullptr && pred_node->alive()) {
    std::vector<NodeEntry> pl = pred_node->successors();
    pl.insert(pl.begin(), NodeEntry{addr, id});
    if (pl.size() > options_.successor_list_size) {
      pl.resize(options_.successor_list_size);
    }
    pred_node->set_successors(std::move(pl));
    ChargeHop(addr, old_pred.addr);
  }

  // 3. Data handover: keys in (old_pred, id] move from succ to us.
  std::vector<double> moved = succ->ExtractKeysInArc(old_pred.id, id);
  network_->Send(*succ_addr, addr, options_.key_bytes * moved.size(),
                 /*hop_count=*/1);
  node->InsertKeys(moved);

  // 4. Bootstrap fingers by copying the successor's table (one message);
  //    periodic fix_fingers repairs the small error later.
  node->fingers() = succ->fingers();
  ChargeHop(addr, *succ_addr);

  index_.emplace(id.value, addr);
  nodes_.emplace(addr, std::move(node));
  InvalidateAliveCache();
  BumpEpoch();
  return addr;
}

Status ChordRing::Leave(NodeAddr addr) {
  Node* node = GetNode(addr);
  if (node == nullptr || !node->alive()) {
    return Status::NotFound("no such alive node");
  }
  if (index_.size() == 1) {
    return Status::FailedPrecondition("last node cannot leave");
  }
  index_.erase(node->id().value);
  InvalidateAliveCache();
  BumpEpoch();
  node->set_alive(false);

  Result<NodeAddr> succ_addr = OracleOwner(node->id());
  Node* succ = GetNode(*succ_addr);

  // Hand all data to the successor.
  std::vector<double> moved = node->ExtractKeysInArc(node->id(), node->id());
  network_->Send(addr, *succ_addr, options_.key_bytes * moved.size(),
                 /*hop_count=*/1);
  succ->InsertKeys(moved);

  // Pointer handoff: successor inherits our predecessor; predecessor's
  // successor pointer skips us.
  succ->set_predecessor(node->predecessor());
  ChargeHop(addr, *succ_addr);
  if (Node* pred = GetNode(node->predecessor().addr);
      pred != nullptr && pred->alive()) {
    std::vector<NodeEntry> pl = pred->successors();
    std::erase_if(pl, [&](const NodeEntry& e) { return e.addr == addr; });
    pl.insert(pl.begin(), EntryFor(*succ));
    if (pl.size() > options_.successor_list_size) {
      pl.resize(options_.successor_list_size);
    }
    pred->set_successors(std::move(pl));
    ChargeHop(addr, node->predecessor().addr);
  }
  return Status::OK();
}

Status ChordRing::Crash(NodeAddr addr) {
  Node* node = GetNode(addr);
  if (node == nullptr || !node->alive()) {
    return Status::NotFound("no such alive node");
  }
  if (index_.size() == 1) {
    return Status::FailedPrecondition("last node cannot crash");
  }
  index_.erase(node->id().value);
  InvalidateAliveCache();
  BumpEpoch();
  node->set_alive(false);

  if (options_.durable_data) {
    // Replication recovery: items re-materialize at the new owner.
    std::vector<double> lost = node->ExtractKeysInArc(node->id(), node->id());
    Result<NodeAddr> succ_addr = OracleOwner(node->id());
    GetNode(*succ_addr)->InsertKeys(lost);
    // The succeeding node also inherits ownership of the crashed arc; fix
    // its predecessor pointer as its next stabilize round would.
    GetNode(*succ_addr)->set_predecessor(node->predecessor());
  } else {
    node->ExtractKeysInArc(node->id(), node->id());  // drop
  }
  return Status::OK();
}

Status ChordRing::InsertKeyRouted(NodeAddr from, double key01) {
  Result<NodeAddr> owner = Lookup(from, RingId::FromUnit(key01));
  if (!owner.ok()) return owner.status();
  network_->Send(from, *owner, options_.key_bytes, /*hop_count=*/1);
  GetNode(*owner)->InsertKey(key01);
  BumpEpoch();
  return Status::OK();
}

Status ChordRing::EraseKeyBulk(double key01) {
  Result<NodeAddr> owner = OracleOwner(RingId::FromUnit(key01));
  if (!owner.ok()) return owner.status();
  if (!GetNode(*owner)->EraseKey(key01)) {
    return Status::NotFound("key not stored at its owner");
  }
  BumpEpoch();
  return Status::OK();
}

Status ChordRing::EraseKeyRouted(NodeAddr from, double key01) {
  Result<NodeAddr> owner = Lookup(from, RingId::FromUnit(key01));
  if (!owner.ok()) return owner.status();
  network_->Send(from, *owner, options_.key_bytes, /*hop_count=*/1);
  if (!GetNode(*owner)->EraseKey(key01)) {
    return Status::NotFound("key not stored at its owner");
  }
  BumpEpoch();
  return Status::OK();
}

std::vector<NodeEntry> ChordRing::OracleSuccessorList(RingId id) const {
  std::vector<NodeEntry> out;
  if (index_.empty()) return out;
  const size_t distinct_others =
      index_.size() - (index_.contains(id.value) ? 1 : 0);
  if (distinct_others == 0) {
    // Single-node ring: the node is its own successor.
    const Node* n = GetNode(index_.begin()->second);
    out.push_back(NodeEntry{n->addr(), n->id()});
    return out;
  }
  const size_t want =
      std::min<size_t>(options_.successor_list_size, distinct_others);
  auto it = index_.upper_bound(id.value);
  while (out.size() < want) {
    if (it == index_.end()) it = index_.begin();
    if (RingId(it->first) != id) {
      const Node* n = GetNode(it->second);
      out.push_back(NodeEntry{n->addr(), n->id()});
    }
    ++it;
  }
  return out;
}

void ChordRing::StabilizeNode(NodeAddr addr) {
  Node* node = GetNode(addr);
  if (node == nullptr || !node->alive()) return;
  BumpEpoch();
  const RingId id = node->id();

  node->set_successors(OracleSuccessorList(id));

  // Predecessor: last alive node strictly before id (wrapping).
  auto it = index_.lower_bound(id.value);
  if (it == index_.begin()) it = index_.end();
  --it;
  const Node* pred = GetNode(it->second);
  if (pred->id() == id) {
    node->set_predecessor(EntryFor(*node));  // lone node
  } else {
    node->set_predecessor(EntryFor(*pred));
  }

  // fix_fingers: finger k = successor(id + 2^k).
  for (int k = 0; k < FingerTable::kBits; ++k) {
    Result<NodeAddr> owner = OracleOwner(FingerTable::FingerStart(id, k));
    if (owner.ok()) {
      const Node* f = GetNode(*owner);
      node->fingers().Set(k, NodeEntry{f->addr(), f->id()});
    }
  }
}

void ChordRing::StabilizeRange(const MembershipSnapshot& snap, size_t begin,
                               size_t end) {
  const size_t n = snap.ids.size();
  const size_t want = std::min<size_t>(options_.successor_list_size,
                                       n > 0 ? n - 1 : 0);
  std::vector<NodeEntry> succ_buf;
  succ_buf.reserve(want);

  // Finger cursors. u[k] is the rank of finger k's current owner in the
  // *virtually doubled* id array — value(u) = ids[u] for u < n and
  // ids[u - n] + 2^64 for u >= n — which linearizes the circular
  // lower_bound-with-wrap: the owner of target id + 2^k is the first rank
  // whose value reaches the (unwrapped, 65-bit) target. Within the range,
  // ids[pos] grows with pos, so every target grows too and each cursor
  // only ever moves forward: one binary search seeds it, then advancing it
  // across all nodes of the range costs amortized O(1) per node per
  // finger. The uint64 comparisons below encode the 65-bit compare via
  // `big` (true iff the target overflowed, i.e. its true value >= 2^64):
  // a first-lap value is >= the target iff !big && ids[u] >= t, a
  // second-lap value iff big ? ids[u - n] >= t : true.
  size_t u[FingerTable::kBits];
  {
    const uint64_t id0 = snap.ids[begin];
    for (int k = 0; k < FingerTable::kBits; ++k) {
      const uint64_t t = FingerTable::FingerStart(RingId(id0), k).value;
      const bool big = t < id0;  // id0 + 2^k wrapped past 2^64
      if (big) {
        // All first-lap values are below the target: search the high lap.
        // A wrapped target always has ids[n-1] >= t, so the search lands.
        size_t lo = n;
        size_t hi = 2 * n;
        while (lo < hi) {
          const size_t mid = lo + (hi - lo) / 2;
          if (snap.ids[mid - n] < t) {
            lo = mid + 1;
          } else {
            hi = mid;
          }
        }
        u[k] = lo;
      } else {
        u[k] = static_cast<size_t>(
            std::lower_bound(snap.ids.begin(), snap.ids.end(), t) -
            snap.ids.begin());  // == n means wrap to ids[0] (rank n)
      }
    }
  }

  for (size_t pos = begin; pos < end; ++pos) {
    Node* node = snap.nodes[pos];
    const RingId id(snap.ids[pos]);

    if (n == 1) {
      node->set_successors({NodeEntry{node->addr(), id}});
      node->set_predecessor(NodeEntry{node->addr(), id});
    } else {
      // Successor list: the next `want` peers clockwise from our position.
      succ_buf.clear();
      for (size_t step = 1; step <= want; ++step) {
        size_t j = pos + step;
        if (j >= n) j -= n;
        succ_buf.push_back(NodeEntry{snap.addrs[j], RingId(snap.ids[j])});
      }
      node->assign_successors(succ_buf.data(), succ_buf.size());

      // Predecessor: the previous snapshot entry, wrapping.
      const size_t j = pos == 0 ? n - 1 : pos - 1;
      node->set_predecessor(NodeEntry{snap.addrs[j], RingId(snap.ids[j])});
    }

    // fix_fingers: finger k = successor(id + 2^k), read off the cursors.
    FingerTable& fingers = node->fingers();
    const uint64_t self = snap.ids[pos];
    for (int k = 0; k < FingerTable::kBits; ++k) {
      const uint64_t t = FingerTable::FingerStart(id, k).value;
      const bool big = t < self;
      size_t uk = u[k];
      while (uk < n ? (big || snap.ids[uk] < t)
                    : (uk < 2 * n && big && snap.ids[uk - n] < t)) {
        ++uk;
      }
      assert(uk < 2 * n && "finger target past the doubled id array");
      u[k] = uk;
      const size_t j = uk >= n ? uk - n : uk;
      fingers.Set(k, NodeEntry{snap.addrs[j], RingId(snap.ids[j])});
    }
  }
}

void ChordRing::StabilizeAll(ThreadPool* pool) {
  // One flat sorted snapshot of the membership, shared read-only by every
  // chunk. Each node's new state depends only on the snapshot and its own
  // position, and the chunk grid depends only on n — never on the pool —
  // so serial and parallel runs produce byte-identical routing state.
  const size_t n = index_.size();
  if (n == 0) return;
  BumpEpoch();
  MembershipSnapshot snap;
  snap.ids.reserve(n);
  snap.addrs.reserve(n);
  snap.nodes.reserve(n);
  for (const auto& [id, addr] : index_) {
    snap.ids.push_back(id);
    snap.addrs.push_back(addr);
    snap.nodes.push_back(GetNode(addr));
  }
  constexpr size_t kChunk = 512;
  const size_t chunks = (n + kChunk - 1) / kChunk;
  ThreadPool& p = pool != nullptr ? *pool : ThreadPool::Global();
  p.ParallelFor(0, chunks, [&](size_t c) {
    const size_t chunk_begin = c * kChunk;
    StabilizeRange(snap, chunk_begin, std::min(chunk_begin + kChunk, n));
  });
}

Node* ChordRing::GetNode(NodeAddr addr) {
  auto it = nodes_.find(addr);
  return it == nodes_.end() ? nullptr : it->second.get();
}

const Node* ChordRing::GetNode(NodeAddr addr) const {
  auto it = nodes_.find(addr);
  return it == nodes_.end() ? nullptr : it->second.get();
}

bool ChordRing::IsAlive(NodeAddr addr) const {
  const Node* n = GetNode(addr);
  return n != nullptr && n->alive();
}

void ChordRing::PrepareConcurrentReads() const {
  // Materialize every lazy cache the read path may touch, so the query
  // path performs no writes even through `mutable` members: the flat
  // alive-address vector (RandomAliveNode / AliveAddrsView) and each
  // node's on-demand key sort (RankOf / quantiles via keys()).
  EnsureAliveCache();
  for (const auto& [id, addr] : index_) GetNode(addr)->keys();
}

void ChordRing::EnsureAliveCache() const {
  if (alive_cache_valid_) return;
  alive_cache_.clear();
  alive_cache_.reserve(index_.size());
  for (const auto& [id, addr] : index_) alive_cache_.push_back(addr);
  alive_cache_valid_ = true;
}

std::vector<NodeAddr> ChordRing::AliveAddrs() const {
  EnsureAliveCache();
  return alive_cache_;
}

Result<NodeAddr> ChordRing::RandomAliveNode(Rng& rng) const {
  if (index_.empty()) return Status::NotFound("ring is empty");
  // The cache holds index_'s values in iteration (ascending-id) order, so
  // picking the k-th element selects exactly the node the old O(n)
  // std::advance walk selected.
  EnsureAliveCache();
  const uint64_t k = rng.UniformU64(alive_cache_.size());
  return alive_cache_[static_cast<size_t>(k)];
}

uint64_t ChordRing::TotalItems() const {
  uint64_t total = 0;
  for (const auto& [id, addr] : index_) total += GetNode(addr)->item_count();
  return total;
}

}  // namespace ringdde
