#include "ring/replication.h"

#include <bit>
#include <cassert>

#include "common/rng.h"

namespace ringdde {

ReplicationManager::ReplicationManager(ChordRing* ring,
                                       ReplicationOptions options)
    : ring_(ring), options_(options) {
  assert(ring != nullptr);
  assert(options_.replication_factor >= 1);
  assert(options_.sync_period_seconds > 0.0);
}

uint64_t ReplicationManager::Fingerprint(const Node& node) const {
  // Order-independent content hash: count mixed with the sum of per-key
  // mixed bit patterns. Collisions only delay a re-push by one cycle.
  uint64_t h = SplitMix64(node.item_count());
  for (double k : node.keys()) {
    h += SplitMix64(std::bit_cast<uint64_t>(k));
  }
  return h;
}

void ReplicationManager::PushReplicas(NodeAddr owner) {
  Node* node = ring_->GetNode(owner);
  if (node == nullptr || !node->alive()) return;
  const std::vector<double>& keys = node->keys();
  uint32_t placed = 0;
  for (const NodeEntry& e : node->successors()) {
    if (placed >= options_.replication_factor) break;
    if (e.addr == owner) continue;
    Node* target = ring_->GetNode(e.addr);
    if (target == nullptr || !target->alive()) continue;
    ring_->network().Send(owner, e.addr,
                          options_.key_bytes * keys.size() + 16,
                          /*hop_count=*/1);
    target->StoreReplica(owner, keys);
    ++placed;
  }
  synced_fingerprints_[owner] = Fingerprint(*node);
}

void ReplicationManager::FullSync() {
  for (NodeAddr addr : ring_->AliveAddrs()) PushReplicas(addr);
  ++syncs_;
}

uint64_t ReplicationManager::IncrementalSync() {
  uint64_t shipped = 0;
  for (NodeAddr addr : ring_->AliveAddrs()) {
    Node* node = ring_->GetNode(addr);
    bool needs_push = false;
    // Content changed since the last push?
    auto it = synced_fingerprints_.find(addr);
    if (it == synced_fingerprints_.end() ||
        it->second != Fingerprint(*node)) {
      needs_push = true;
    }
    if (!needs_push) {
      // Placement decayed? Holders may have departed since the push;
      // re-replicate when fewer than replication_factor of the first
      // successors still hold a copy.
      uint32_t holders = 0;
      uint32_t alive_candidates = 0;
      for (const NodeEntry& e : node->successors()) {
        if (alive_candidates >= options_.replication_factor) break;
        const Node* succ = ring_->GetNode(e.addr);
        if (succ == nullptr || !succ->alive() || e.addr == addr) continue;
        ++alive_candidates;
        if (succ->HasReplica(addr)) ++holders;
      }
      needs_push = holders < alive_candidates;
    }
    if (needs_push) {
      shipped += node->item_count();
      PushReplicas(addr);
    }
  }
  ++syncs_;
  return shipped;
}

void ReplicationManager::Start() {
  if (started_) return;
  started_ = true;
  FullSync();
  // Self-rescheduling periodic incremental sync.
  struct Rearm {
    ReplicationManager* self;
    void operator()() const {
      self->IncrementalSync();
      self->ring_->network().events().ScheduleAfter(
          self->options_.sync_period_seconds, Rearm{self});
    }
  };
  ring_->network().events().ScheduleAfter(options_.sync_period_seconds,
                                          Rearm{this});
}

Result<uint64_t> ReplicationManager::CrashWithRecovery(NodeAddr addr) {
  Node* victim = ring_->GetNode(addr);
  if (victim == nullptr || !victim->alive()) {
    return Status::NotFound("no such alive node");
  }
  if (ring_->options().durable_data) {
    return Status::FailedPrecondition(
        "ring has durable_data oracle recovery enabled; replication "
        "recovery would double-count");
  }
  const uint64_t primary_before = victim->item_count();
  const RingId crashed_id = victim->id();
  // Who would have been consulted for replicas: the victim's successor
  // list as of the crash.
  const std::vector<NodeEntry> candidates = victim->successors();

  RINGDDE_RETURN_IF_ERROR(ring_->Crash(addr));

  // The arc's new owner.
  Result<NodeAddr> owner = ring_->OracleOwner(crashed_id);
  if (!owner.ok()) return owner.status();
  Node* new_owner = ring_->GetNode(*owner);
  // Failure detection doubles as pointer repair, as a stabilize round
  // would: the new owner absorbs the crashed arc.
  new_owner->set_predecessor(victim->predecessor());

  // Find the freshest replica: first alive candidate holding one. The new
  // owner's own copy is free; remote copies cost a fetch.
  uint64_t recovered = 0;
  uint32_t checked = 0;
  for (const NodeEntry& e : candidates) {
    if (checked >= options_.replication_factor) break;
    Node* holder = ring_->GetNode(e.addr);
    if (holder == nullptr || !holder->alive()) continue;
    ++checked;
    std::vector<double> keys;
    if (!holder->TakeReplica(addr, &keys)) continue;
    if (e.addr != *owner) {
      ring_->network().Send(e.addr, *owner,
                            options_.key_bytes * keys.size() + 16,
                            /*hop_count=*/1);
    }
    recovered = keys.size();
    new_owner->InsertKeys(keys);
    break;
  }
  // Drop now-useless copies at the remaining candidates.
  for (const NodeEntry& e : candidates) {
    if (Node* holder = ring_->GetNode(e.addr); holder != nullptr) {
      holder->TakeReplica(addr, nullptr);
    }
  }
  keys_recovered_ += recovered;
  keys_lost_ += primary_before >= recovered ? primary_before - recovered : 0;
  synced_fingerprints_.erase(addr);

  // Re-protect the enlarged owner.
  PushReplicas(*owner);
  return recovered;
}

}  // namespace ringdde
