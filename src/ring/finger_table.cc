#include "ring/finger_table.h"

namespace ringdde {

void FingerTable::Clear() {
  for (auto& f : fingers_) f.reset();
}

std::optional<NodeEntry> FingerTable::ClosestPreceding(
    RingId self, RingId target, const AlivePredicate& alive,
    std::vector<NodeEntry>* probed_dead) const {
  // Scan from the farthest finger down, as in the Chord paper: the first
  // entry inside (self, target) is the biggest legal jump.
  for (int k = kBits - 1; k >= 0; --k) {
    const auto& f = fingers_[k];
    if (!f.has_value()) continue;
    if (!InArcOpenOpen(f->id, self, target)) continue;
    if (alive(f->addr)) return f;
    if (probed_dead != nullptr) probed_dead->push_back(*f);
  }
  return std::nullopt;
}

int FingerTable::PopulatedCount() const {
  int n = 0;
  for (const auto& f : fingers_) {
    if (f.has_value()) ++n;
  }
  return n;
}

}  // namespace ringdde
