#include "ring/ring_stats.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"

namespace ringdde {

std::vector<uint64_t> NodeLoads(const ChordRing& ring) {
  // Ascending-id key counts straight off the flat membership snapshot.
  return ring.SnapshotKeyCounts();
}

std::vector<double> NodeArcs(const ChordRing& ring) {
  const RingIndex::FlatView flat = ring.index().Flat();
  std::vector<double> arcs;
  arcs.reserve(flat.size);
  if (flat.size == 0) return arcs;
  if (flat.size == 1) {
    arcs.push_back(1.0);
    return arcs;
  }
  // Node with id x owns (pred_id, x]; sweep the sorted id array.
  uint64_t prev = flat.ids[flat.size - 1];  // predecessor of the first node
  for (size_t i = 0; i < flat.size; ++i) {
    arcs.push_back(ArcFraction(RingId(prev), RingId(flat.ids[i])));
    prev = flat.ids[i];
  }
  return arcs;
}

double GiniCoefficient(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double total = SumPrecise(values);
  if (total <= 0.0) return 0.0;
  const double n = static_cast<double>(values.size());
  KahanSum weighted;
  for (size_t i = 0; i < values.size(); ++i) {
    weighted.Add((2.0 * static_cast<double>(i + 1) - n - 1.0) * values[i]);
  }
  return weighted.value() / (n * total);
}

RingStatsSummary ComputeRingStats(const ChordRing& ring) {
  RingStatsSummary s;
  s.alive_nodes = ring.AliveCount();
  if (s.alive_nodes == 0) return s;

  const std::vector<double> arcs = NodeArcs(ring);
  s.min_arc = *std::min_element(arcs.begin(), arcs.end());
  s.max_arc = *std::max_element(arcs.begin(), arcs.end());
  s.mean_arc = SumPrecise(arcs) / static_cast<double>(arcs.size());

  const std::vector<uint64_t> loads = NodeLoads(ring);
  std::vector<double> loads_d(loads.begin(), loads.end());
  s.min_load = *std::min_element(loads.begin(), loads.end());
  s.max_load = *std::max_element(loads.begin(), loads.end());
  s.mean_load = SumPrecise(loads_d) / static_cast<double>(loads.size());
  s.load_gini = GiniCoefficient(std::move(loads_d));
  for (uint64_t l : loads) s.total_items += l;
  return s;
}

}  // namespace ringdde
