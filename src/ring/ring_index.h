#ifndef RINGDDE_RING_RING_INDEX_H_
#define RINGDDE_RING_RING_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "sim/network.h"

namespace ringdde {

/// Struct-of-arrays membership index: the sorted alive set of the ring as
/// parallel flat arrays of (id, addr), sharded into fixed id-range segments.
///
/// This replaces the `std::map<uint64_t, NodeAddr>` ground truth of the
/// legacy layout. Design goals, in order:
///  1. *Cache-linear hot paths*: owner searches, rank selection, and the
///     flat snapshot StabilizeAll / bulk-insert sweeps all run over
///     contiguous arrays instead of pointer-chasing a red-black tree.
///  2. *Segment-granular invalidation*: a join/leave touches exactly one
///     shard (ids are uniform, so each shard holds ~n/kShardCount entries);
///     the cached flat snapshot re-copies only the shards at or after the
///     first dirtied one instead of rebuilding from scratch, and rank
///     selection never needs the flat snapshot at all.
///  3. *Bit-identical iteration order*: shards partition the id space in
///     ascending order, so shard-by-shard traversal equals the legacy
///     ascending-id map walk exactly — every consumer sees the same
///     sequence the `std::map` produced.
///
/// Thread-safety follows the ring's existing contract: mutations and lazy
/// cache materialization happen on the owning thread; WarmCaches() (called
/// from ChordRing::PrepareConcurrentReads) makes every subsequent const
/// accessor write-free so concurrent read-only queriers race on nothing.
class RingIndex {
 public:
  /// Shard = top kShardBits of the id: 256 segments. Peer ids are uniform
  /// on the 2^64 ring, so shards stay balanced at ~n/256 entries — small
  /// enough that the memmove of one shard insert/erase is cheap at n=10^6,
  /// large enough that per-shard bookkeeping (two vectors, one offset) is
  /// noise. The count is a compile-time constant so shard assignment is a
  /// single shift and the layout is a pure function of the id set.
  static constexpr int kShardBits = 8;
  static constexpr size_t kShardCount = size_t{1} << kShardBits;

  struct Entry {
    uint64_t id = 0;
    NodeAddr addr = 0;
  };

  /// Contiguous snapshot of the whole membership, ids ascending with addrs
  /// parallel. Pointers remain valid until the next Insert/Erase.
  struct FlatView {
    const uint64_t* ids = nullptr;
    const NodeAddr* addrs = nullptr;
    size_t size = 0;
  };

  /// Telemetry for the segment-granular snapshot cache (satellite of the
  /// deployment-cache hit/miss counters): how often the flat snapshot was
  /// served valid, how many shard spans each rebuild re-copied, and how
  /// many rebuilds had to start at shard 0 (the old "invalidate the whole
  /// cache" behavior, now the worst case instead of the only case).
  struct CacheStats {
    uint64_t flat_hits = 0;
    uint64_t flat_rebuilds = 0;
    uint64_t flat_full_rebuilds = 0;
    uint64_t flat_shards_copied = 0;
    uint64_t shard_invalidations = 0;
  };

  /// Pre-sizes the shards for `n` uniformly distributed ids.
  void Reserve(size_t n);

  /// Inserts one (id, addr); ids are unique by construction (the ring
  /// allocates them from a used-id set). Amortized O(log(n/S) + n/S).
  void Insert(uint64_t id, NodeAddr addr);

  /// Removes the entry for `id`; returns false if absent.
  bool Erase(uint64_t id);

  bool Contains(uint64_t id) const;
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Bumped by every Insert/Erase; consumers caching derived state (the
  /// ring's flat Node-pointer array) compare against it.
  uint64_t version() const { return version_; }

  /// Per-shard mutation counter, bumped whenever shard `s` is dirtied.
  /// Incremental consumers (SnapshotManager) record the versions at capture
  /// time and on the next capture re-copy only from the first shard whose
  /// version moved — the same segment granularity the flat snapshot cache
  /// uses, but across independently-owned snapshots.
  uint64_t shard_version(size_t s) const { return shard_versions_[s]; }

  /// Owner of ring position `target`: the first entry at or after it,
  /// wrapping to the smallest id. The legacy `lower_bound + wrap` in two
  /// binary searches (offset table, then one shard). nullopt iff empty.
  std::optional<Entry> OwnerOf(uint64_t target) const;

  /// Rank (0-based position in ascending-id order) of the first entry with
  /// id >= target (lower_bound) or id > target (upper_bound); size() if
  /// none. No wrap — callers fold the wrap themselves.
  size_t LowerBoundRank(uint64_t target) const;
  size_t UpperBoundRank(uint64_t target) const;

  /// Entry at ascending-id rank `rank` (must be < size()). O(log S) via
  /// the per-shard offset table — never touches the flat snapshot, so
  /// rank-indexed consumers (random node selection, the churn stabilize
  /// cursor) stay cheap under membership churn.
  Entry AtRank(size_t rank) const;

  /// Applies fn(id, addr) to every entry in ascending-id order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Shard& s : shards_) {
      const size_t n = s.ids.size();
      for (size_t i = 0; i < n; ++i) fn(s.ids[i], s.addrs[i]);
    }
  }

  /// The cached contiguous snapshot, rebuilt lazily from the first dirty
  /// shard onward (see CacheStats). The returned pointers alias internal
  /// storage: valid until the next mutation.
  FlatView Flat() const;

  /// The flat addr array behind Flat() as a vector reference (the ring's
  /// AliveAddrsView contract). Same lifetime rules.
  const std::vector<NodeAddr>& FlatAddrs() const;

  /// Materializes every lazy structure (offset table + flat snapshot) so
  /// subsequent const calls perform no writes.
  void WarmCaches() const;

  const CacheStats& cache_stats() const { return stats_; }

 private:
  struct Shard {
    std::vector<uint64_t> ids;    // ascending
    std::vector<NodeAddr> addrs;  // parallel
  };

  static size_t ShardOf(uint64_t id) { return id >> (64 - kShardBits); }

  /// Marks shard `s` dirty for the flat snapshot and stales the offsets.
  void Invalidate(size_t s);
  void EnsureOffsets() const;
  void EnsureFlat() const;

  Shard shards_[kShardCount];
  size_t size_ = 0;
  uint64_t version_ = 0;
  uint64_t shard_versions_[kShardCount] = {};

  // Rank offsets: offsets_[s] = number of entries in shards [0, s). Lazily
  // refreshed after mutations; O(kShardCount) to rebuild.
  mutable std::vector<size_t> offsets_;
  mutable bool offsets_valid_ = false;

  // Flat snapshot cache. first_dirty_shard_ == kShardCount means clean;
  // otherwise shards [first_dirty_shard_, kShardCount) must be re-copied
  // (sizes before it are unchanged, so their spans are still in place).
  mutable std::vector<uint64_t> flat_ids_;
  mutable std::vector<NodeAddr> flat_addrs_;
  mutable size_t first_dirty_shard_ = 0;
  mutable bool flat_built_ = false;

  mutable CacheStats stats_;
};

}  // namespace ringdde

#endif  // RINGDDE_RING_RING_INDEX_H_
