#ifndef RINGDDE_RING_CHURN_H_
#define RINGDDE_RING_CHURN_H_

#include <cstdint>

#include "common/rng.h"
#include "ring/chord_ring.h"

namespace ringdde {

/// Parameters of the churn process.
struct ChurnOptions {
  /// Mean peer session (online) time in seconds; sessions are exponential,
  /// the standard P2P churn model. Smaller means harsher churn.
  double mean_session_seconds = 3600.0;

  /// Fraction of departures that are graceful (Leave with data handover);
  /// the rest are fail-stop crashes.
  double graceful_fraction = 0.5;

  /// Period of each node's stabilize/fix_fingers cycle, in seconds. Nodes
  /// stabilize round-robin so the aggregate rate is n / interval.
  double stabilize_interval_seconds = 30.0;

  /// If true, every departure is matched by a join (constant network size in
  /// expectation, the usual steady-state assumption).
  bool maintain_size = true;

  uint64_t seed = 7;
};

/// Drives joins, departures, and periodic stabilization on the shared event
/// queue. The process keeps the network in flux so estimators can be
/// evaluated against routing-state staleness and data movement.
class ChurnProcess {
 public:
  ChurnProcess(ChordRing* ring, ChurnOptions options = {});

  /// Schedules the initial departure timer for every alive node and the
  /// stabilization cycle. Call once, then run the event queue.
  void Start();

  /// Cumulative event counts since Start().
  uint64_t joins() const { return joins_; }
  uint64_t leaves() const { return leaves_; }
  uint64_t crashes() const { return crashes_; }
  uint64_t failed_joins() const { return failed_joins_; }

  const ChurnOptions& options() const { return options_; }

 private:
  /// Schedules the end of `addr`'s current session.
  void ScheduleDeparture(NodeAddr addr);
  void OnDeparture(NodeAddr addr);
  void OnStabilizeTick();

  ChordRing* ring_;
  ChurnOptions options_;
  Rng rng_;

  uint64_t joins_ = 0;
  uint64_t leaves_ = 0;
  uint64_t crashes_ = 0;
  uint64_t failed_joins_ = 0;

  // Round-robin stabilization cursor (index into the alive set).
  size_t stabilize_cursor_ = 0;
};

}  // namespace ringdde

#endif  // RINGDDE_RING_CHURN_H_
