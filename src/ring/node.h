#ifndef RINGDDE_RING_NODE_H_
#define RINGDDE_RING_NODE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/id.h"
#include "ring/finger_table.h"
#include "sim/network.h"

namespace ringdde {

/// One peer of the ring overlay.
///
/// A node owns the clockwise arc (predecessor.id, id] of the identifier
/// space and stores every data key whose ring position falls in that arc.
/// Keys are kept in a sorted vector: rank queries (the building block of the
/// local CDF summary) are then a binary search, and bulk loads are an append
/// plus one sort — the right trade-off for read-mostly simulation state.
class Node {
 public:
  Node(NodeAddr addr, RingId id);

  NodeAddr addr() const { return addr_; }
  RingId id() const { return id_; }

  bool alive() const { return alive_; }
  void set_alive(bool alive) {
    alive_ = alive;
    ++route_version_;
  }

  // --- Change tracking (epoch snapshot capture) --------------------------
  /// Monotone counters bumped by every mutation of routing state
  /// (predecessor/successors/fingers/liveness) respectively the local data
  /// store. SnapshotManager compares them against the versions recorded in
  /// the previous epoch view to reuse unchanged per-node captures instead
  /// of re-copying them. Finger writes go through the non-const fingers()
  /// reference; every such site (StabilizeNode, the stabilize sweep) also
  /// rewrites the successor list, which bumps — so a moved route_version
  /// covers finger changes too.
  uint64_t route_version() const { return route_version_; }
  uint64_t data_version() const { return data_version_; }

  // --- Routing state ---------------------------------------------------
  const NodeEntry& predecessor() const { return predecessor_; }
  void set_predecessor(NodeEntry e) {
    predecessor_ = e;
    ++route_version_;
  }

  /// Successor list, nearest first. Entry 0 is THE successor.
  const std::vector<NodeEntry>& successors() const { return successors_; }
  void set_successors(std::vector<NodeEntry> succ) {
    successors_ = std::move(succ);
    ++route_version_;
  }

  /// Overwrites the successor list in place, reusing its capacity (the
  /// allocation-free path for repeated stabilization sweeps).
  void assign_successors(const NodeEntry* entries, size_t count) {
    successors_.assign(entries, entries + count);
    ++route_version_;
  }

  FingerTable& fingers() { return fingers_; }
  const FingerTable& fingers() const { return fingers_; }

  /// Fraction of the ring this node owns: the (predecessor, id] arc.
  double OwnedArcFraction() const {
    return ArcFraction(predecessor_.id, id_);
  }

  /// True if ring position x belongs to this node's arc (pred, id].
  bool Owns(RingId x) const {
    return InArcOpenClosed(x, predecessor_.id, id_);
  }

  // --- Local data store -------------------------------------------------
  /// Inserts a data key (already normalized to the unit domain [0,1)).
  void InsertKey(double key);

  /// Bulk-inserts keys; cheaper than repeated InsertKey.
  void InsertKeys(const std::vector<double>& keys);

  /// Bulk-inserts an already ascending-sorted slice [first, last). The
  /// store stays sorted (assignment when empty, in-place merge otherwise)
  /// instead of being re-sorted from scratch on the next read — the fast
  /// path behind ChordRing::InsertDatasetBulk's sorted owner sweep.
  void InsertSortedKeys(const double* first, const double* last);

  /// Pre-sizes the store for `extra` more keys on top of the current count
  /// (bulk loaders know each owner's exact final size from the arc prefix
  /// sums, so the inserts below never reallocate).
  void ReserveAdditionalKeys(size_t extra) {
    keys_.reserve(keys_.size() + extra);
  }

  /// Removes one occurrence; returns false if absent.
  bool EraseKey(double key);

  /// Removes and returns all stored keys whose ring position lies in the
  /// clockwise arc (from, to]. Used for data handover on join/leave.
  std::vector<double> ExtractKeysInArc(RingId from, RingId to);

  /// All keys, ascending.
  const std::vector<double>& keys() const;

  size_t item_count() const { return keys_.size(); }

  /// Number of stored keys strictly less than `key`: the local rank, i.e.
  /// the unnormalized local CDF evaluated at `key`.
  size_t RankOf(double key) const;

  /// Exact local p-quantile via order statistics (p in [0,1]).
  /// Requires a non-empty store.
  double LocalQuantile(double p) const;

  /// Evenly spaced local quantiles (q values at p = 1/(q+1) .. q/(q+1)),
  /// the payload of a probe response. Empty store yields an empty vector.
  std::vector<double> EvenQuantiles(int q) const;

  // --- Replica store (ring/replication.h) --------------------------------
  /// Replaces this node's mirrored copy of `owner`'s keys. Replicas live
  /// beside the primary store and are invisible to item_count()/keys().
  void StoreReplica(NodeAddr owner, std::vector<double> keys);

  /// Removes and returns the replica held for `owner`, if any.
  bool TakeReplica(NodeAddr owner, std::vector<double>* out);

  /// True if a replica for `owner` is held.
  bool HasReplica(NodeAddr owner) const;

  /// Number of distinct owners replicated here.
  size_t replica_owner_count() const { return replicas_.size(); }

  /// Total replicated keys held (across owners).
  size_t replica_key_count() const;

 private:
  void EnsureSorted() const;

  NodeAddr addr_;
  RingId id_;
  bool alive_ = true;
  uint64_t route_version_ = 0;
  uint64_t data_version_ = 0;

  NodeEntry predecessor_;
  std::vector<NodeEntry> successors_;
  FingerTable fingers_;

  // Lazily sorted: bulk inserts set dirty, readers sort on demand.
  mutable std::vector<double> keys_;
  mutable bool sorted_ = true;

  // Mirrored key sets by primary owner address.
  std::unordered_map<NodeAddr, std::vector<double>> replicas_;
};

}  // namespace ringdde

#endif  // RINGDDE_RING_NODE_H_
