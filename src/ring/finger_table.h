#ifndef RINGDDE_RING_FINGER_TABLE_H_
#define RINGDDE_RING_FINGER_TABLE_H_

#include <array>
#include <functional>
#include <optional>
#include <vector>

#include "common/id.h"
#include "sim/network.h"

namespace ringdde {

/// (address, ring id) pair referencing another peer.
struct NodeEntry {
  NodeAddr addr = 0;
  RingId id;

  bool operator==(const NodeEntry&) const = default;
};

/// Classic Chord finger table: finger k of a node with id `self` points to
/// successor(self + 2^k) for k in [0, 64).
///
/// Entries can be stale (pointing at departed peers); liveness is checked at
/// routing time through a caller-supplied predicate, which models contacting
/// the candidate and timing out.
class FingerTable {
 public:
  static constexpr int kBits = 64;

  /// Liveness oracle: returns true if the peer at this address is reachable.
  using AlivePredicate = std::function<bool(NodeAddr)>;

  /// The ring position finger k should cover for a node with id `self`.
  /// Inline: stabilization sweeps compute it kBits times per node.
  static RingId FingerStart(RingId self, int k) {
    return self + (uint64_t{1} << k);
  }

  /// Inline for the same reason: kBits stores per stabilized node.
  void Set(int k, NodeEntry entry) { fingers_[k] = entry; }
  const std::optional<NodeEntry>& Get(int k) const { return fingers_[k]; }
  void Clear();

  /// Closest finger strictly inside the open arc (self, target) that passes
  /// `alive`. This is Chord's closest_preceding_node. Every dead candidate
  /// inspected before the returned one is appended to `probed_dead` (if non
  /// null) so the router can charge timeout messages for them.
  std::optional<NodeEntry> ClosestPreceding(
      RingId self, RingId target, const AlivePredicate& alive,
      std::vector<NodeEntry>* probed_dead = nullptr) const;

  /// Number of populated entries.
  int PopulatedCount() const;

 private:
  std::array<std::optional<NodeEntry>, kBits> fingers_;
};

}  // namespace ringdde

#endif  // RINGDDE_RING_FINGER_TABLE_H_
