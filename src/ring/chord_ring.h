#ifndef RINGDDE_RING_CHORD_RING_H_
#define RINGDDE_RING_CHORD_RING_H_

#include <map>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "ring/node.h"
#include "sim/network.h"

namespace ringdde {

class ThreadPool;

/// Tuning knobs of the overlay simulation.
struct RingOptions {
  /// Length of each node's successor list (Chord recommends O(log n); the
  /// default survives the churn rates exercised in the benchmarks).
  uint32_t successor_list_size = 8;

  /// Routing gives up after this many hops (guards against pathological
  /// stale-state loops; 2^64 ids make 256 a generous budget).
  uint32_t max_lookup_hops = 256;

  /// If true, a crash does not destroy data: the failed node's items
  /// reappear at its successor, modeling successor-list replication whose
  /// maintenance traffic is out of scope. If false, crashed items are lost.
  bool durable_data = true;

  /// Payload size (bytes) of one routing query/response, charged per hop.
  uint64_t routing_info_bytes = 64;

  /// Payload size (bytes) per data key moved during join/leave handover.
  uint64_t key_bytes = 8;

  /// Seed for node-id assignment and protocol randomness.
  uint64_t seed = 1;
};

/// The ring overlay: owns all peers of one simulated deployment and
/// implements the Chord protocols over the sim::Network fabric.
///
/// Two classes of operation:
///  - *Protocol* operations (Lookup, Join, Leave, Crash, routed inserts)
///    charge messages/hops/bytes to the network counters. Routing is
///    iterative: each hop costs 2 messages (query + response); each stale
///    candidate contacted costs 1 timeout message.
///  - *Oracle* operations (CreateNetwork, bulk loads, OracleOwner,
///    Stabilize*) manipulate ground truth for experiment setup and for
///    modeling converged background maintenance; they are cost-free.
///
/// The `index_` map is the ground-truth membership (alive nodes by ring id).
/// Per-node routing state (successor lists, finger tables) is a *cached
/// snapshot* of that truth taken at the node's last stabilization, so
/// between stabilizations routing runs on stale state exactly as a real
/// deployment would.
class ChordRing {
 public:
  explicit ChordRing(Network* network, RingOptions options = {});

  // --- Setup (oracle, cost-free) ----------------------------------------

  /// Creates `n` peers with uniformly random ids and fully converged
  /// routing state. Fails if n == 0.
  Status CreateNetwork(size_t n);

  /// Places one unit-domain key on its owner. Cost-free bulk load.
  Status InsertKeyBulk(double key01);

  /// Bulk-loads a dataset of unit-domain keys (cost-free).
  void InsertDatasetBulk(const std::vector<double>& keys01);

  /// Ground-truth owner of a ring position: the first alive node clockwise
  /// at or after `target`. Fails only on an empty ring.
  Result<NodeAddr> OracleOwner(RingId target) const;

  // --- Protocol operations (cost-accounted) ------------------------------

  /// Iteratively routes from `from` (must be alive) to the owner of
  /// `target`, charging routing cost to `ctx`. Read-only on ring state:
  /// any number of lookups with distinct contexts may run concurrently
  /// over one deployment (warm the caches with PrepareConcurrentReads()
  /// first). Returns the owner's address.
  Result<NodeAddr> Lookup(CostContext& ctx, NodeAddr from,
                          RingId target) const;

  /// Legacy entry point: routes against the network's shared context.
  Result<NodeAddr> Lookup(NodeAddr from, RingId target) {
    return Lookup(network_->shared_context(), from, target);
  }

  /// A new peer joins via `bootstrap`: one lookup to find its successor,
  /// one data-handover message, pointer handshakes with its neighbors, and
  /// a finger-table copy from the successor. Returns the new address.
  Result<NodeAddr> Join(NodeAddr bootstrap);

  /// Graceful departure: hands data to the successor and unlinks.
  Status Leave(NodeAddr addr);

  /// Fail-stop crash: no messages; neighbors discover the death lazily.
  /// Data survives iff options().durable_data.
  Status Crash(NodeAddr addr);

  /// Routed insert of one key starting at `from` (lookup + 1 store message).
  Status InsertKeyRouted(NodeAddr from, double key01);

  /// Removes one occurrence of a key from its owner (oracle-routed,
  /// cost-free; the data-update analogue of InsertKeyBulk). NotFound if the
  /// owner does not store it.
  Status EraseKeyBulk(double key01);

  /// Routed delete (lookup + 1 delete message). NotFound if absent.
  Status EraseKeyRouted(NodeAddr from, double key01);

  // --- Maintenance (oracle-assisted, cost-free) ---------------------------

  /// Refreshes one node's successor list, predecessor, and fingers to
  /// ground truth (models a completed stabilize + fix_fingers cycle).
  /// Incremental path: walks `index_` directly, the right trade-off when
  /// churn repairs one node at a time.
  void StabilizeNode(NodeAddr addr);

  /// Stabilizes every alive node. Builds one flat sorted (id, addr, Node*)
  /// snapshot of `index_` and sweeps it in fixed-size contiguous chunks:
  /// within a chunk the kBits finger targets grow monotonically with the
  /// node position, so each finger's owner is tracked by a forward-only
  /// cursor over the id array — one binary search to seed it per chunk,
  /// then amortized O(1) advancement per node — making the whole sweep
  /// O(n·(s + kBits)) instead of the per-node std::map range walks of
  /// repeated StabilizeNode calls. Chunks run on `pool` (default: the
  /// global pool); the chunk grid depends only on n and every node's state
  /// is a pure function of the read-only snapshot, so the resulting
  /// routing state is byte-identical to a serial sweep at any thread count.
  void StabilizeAll(ThreadPool* pool = nullptr);

  // --- Introspection ------------------------------------------------------

  Node* GetNode(NodeAddr addr);
  const Node* GetNode(NodeAddr addr) const;
  bool IsAlive(NodeAddr addr) const;
  size_t AliveCount() const { return index_.size(); }
  std::vector<NodeAddr> AliveAddrs() const;

  /// Zero-copy view of the alive-address cache (addresses in ascending-id
  /// order, i.e. index_ iteration order). Rebuilds the cache if stale;
  /// the reference is invalidated by the next membership change.
  const std::vector<NodeAddr>& AliveAddrsView() const {
    EnsureAliveCache();
    return alive_cache_;
  }

  /// Warms every lazily materialized cache (the alive-address vector and
  /// each node's sorted key array) so that subsequent const traffic —
  /// Lookup/probe/summary reads — performs no writes at all. Call once
  /// from the owning thread before sharing the ring across read-only
  /// concurrent queriers.
  void PrepareConcurrentReads() const;

  /// Monotone counter bumped by every mutating operation (membership or
  /// data). Two reads returning the same epoch (together with an unchanged
  /// Network::Now()) bracket a window with no ring mutation — the dirty
  /// check replica pools use to decide whether a lease needs a rebuild.
  uint64_t mutation_epoch() const { return mutation_epoch_; }

  /// Uniformly random alive node (for choosing queriers).
  Result<NodeAddr> RandomAliveNode(Rng& rng) const;

  /// Total items stored across alive nodes.
  uint64_t TotalItems() const;

  /// Alive-membership ground truth: ring id -> address, ascending by id.
  const std::map<uint64_t, NodeAddr>& index() const { return index_; }

  Network& network() { return *network_; }
  const RingOptions& options() const { return options_; }
  Rng& rng() { return rng_; }

 private:
  /// Flat sorted view of `index_` (ids ascending; addrs and Node pointers
  /// parallel): the read-only input of one StabilizeAll sweep. Contiguous
  /// arrays make the finger-cursor walks cache-friendly and safely
  /// shareable across worker threads.
  struct MembershipSnapshot {
    std::vector<uint64_t> ids;
    std::vector<NodeAddr> addrs;
    std::vector<Node*> nodes;
  };

  /// Refreshes the nodes at snapshot positions [begin, end) from the
  /// snapshot, carrying the finger cursors forward across the range.
  /// Produces exactly the state StabilizeNode derives from `index_`.
  void StabilizeRange(const MembershipSnapshot& snap, size_t begin,
                      size_t end);

  /// Picks a fresh never-used ring id.
  RingId NewUniqueId();

  NodeEntry EntryFor(const Node& node) const {
    return NodeEntry{node.addr(), node.id()};
  }

  /// Ground-truth successor list for position `id` (excluding `id` itself).
  std::vector<NodeEntry> OracleSuccessorList(RingId id) const;

  /// Charges one routing round trip between two peers.
  void ChargeHop(CostContext& ctx, NodeAddr from, NodeAddr to) const;
  void ChargeHop(NodeAddr from, NodeAddr to) {
    ChargeHop(network_->shared_context(), from, to);
  }
  /// Charges one timed-out probe of a stale candidate.
  void ChargeTimeout(CostContext& ctx, NodeAddr from, NodeAddr to) const;
  void ChargeTimeout(NodeAddr from, NodeAddr to) {
    ChargeTimeout(network_->shared_context(), from, to);
  }

  /// Marks a mutation of ring state (membership, routing tables, or data).
  void BumpEpoch() { ++mutation_epoch_; }

  Network* network_;
  RingOptions options_;
  Rng rng_;

  /// Rebuilds `alive_cache_` from `index_` if a membership change
  /// invalidated it.
  void EnsureAliveCache() const;
  /// Marks the cached alive-address vector stale (any index_ mutation).
  void InvalidateAliveCache() { alive_cache_valid_ = false; }

  std::unordered_map<NodeAddr, std::unique_ptr<Node>> nodes_;  // incl. dead
  std::map<uint64_t, NodeAddr> index_;  // alive nodes by ring id
  std::unordered_set<uint64_t> used_ids_;
  NodeAddr next_addr_ = 1;

  // Flat copy of index_ values (addresses in ascending-id order), rebuilt
  // lazily after membership changes so RandomAliveNode/AliveAddrs stop
  // paying an O(n) map walk per query. Not synchronized: concurrent
  // readers must ensure the cache is warm (StabilizeAll and the bench
  // drivers touch it from the owning thread before fanning out).
  mutable std::vector<NodeAddr> alive_cache_;
  mutable bool alive_cache_valid_ = false;

  /// See mutation_epoch().
  uint64_t mutation_epoch_ = 0;
};

}  // namespace ringdde

#endif  // RINGDDE_RING_CHORD_RING_H_
