#ifndef RINGDDE_RING_CHORD_RING_H_
#define RINGDDE_RING_CHORD_RING_H_

#include <memory>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "ring/node.h"
#include "ring/ring_index.h"
#include "sim/network.h"

namespace ringdde {

class ThreadPool;

/// Tuning knobs of the overlay simulation.
struct RingOptions {
  /// Length of each node's successor list (Chord recommends O(log n); the
  /// default survives the churn rates exercised in the benchmarks).
  uint32_t successor_list_size = 8;

  /// Routing gives up after this many hops (guards against pathological
  /// stale-state loops; 2^64 ids make 256 a generous budget).
  uint32_t max_lookup_hops = 256;

  /// If true, a crash does not destroy data: the failed node's items
  /// reappear at its successor, modeling successor-list replication whose
  /// maintenance traffic is out of scope. If false, crashed items are lost.
  bool durable_data = true;

  /// Payload size (bytes) of one routing query/response, charged per hop.
  uint64_t routing_info_bytes = 64;

  /// Payload size (bytes) per data key moved during join/leave handover.
  uint64_t key_bytes = 8;

  /// Seed for node-id assignment and protocol randomness.
  uint64_t seed = 1;
};

/// The ring overlay: owns all peers of one simulated deployment and
/// implements the Chord protocols over the sim::Network fabric.
///
/// Two classes of operation:
///  - *Protocol* operations (Lookup, Join, Leave, Crash, routed inserts)
///    charge messages/hops/bytes to the network counters. Routing is
///    iterative: each hop costs 2 messages (query + response); each stale
///    candidate contacted costs 1 timeout message.
///  - *Oracle* operations (CreateNetwork, bulk loads, OracleOwner,
///    Stabilize*) manipulate ground truth for experiment setup and for
///    modeling converged background maintenance; they are cost-free.
///
/// Memory layout (struct-of-arrays, sized for n=10^6..10^7 peers):
///  - `index_` is the ground-truth alive membership: sorted parallel
///    (id, addr) flat arrays, sharded into 256 id segments (RingIndex).
///    Owner searches, rank selection, and snapshot sweeps run over these
///    arrays cache-linearly; a join/leave memmoves one ~n/256 segment.
///  - `nodes_` is the dense payload store: every Node ever created (alive
///    or dead), indexed directly by its address (addresses are allocated
///    densely from 1). Key lists, finger tables, and successor lists live
///    only behind this index; the hot paths touch them at most once per
///    peer after resolving ids/addrs/liveness from the flat arrays.
///  - `alive_` is the parallel liveness bitmap over the same address
///    space: IsAlive is one byte load, never a Node dereference.
///
/// Per-node routing state (successor lists, finger tables) is a *cached
/// snapshot* of the ground truth taken at the node's last stabilization,
/// so between stabilizations routing runs on stale state exactly as a real
/// deployment would.
class ChordRing {
 public:
  explicit ChordRing(Network* network, RingOptions options = {});

  // --- Setup (oracle, cost-free) ----------------------------------------

  /// Creates `n` peers with uniformly random ids and fully converged
  /// routing state. Fails if n == 0.
  Status CreateNetwork(size_t n);

  /// Places one unit-domain key on its owner (binary search over the
  /// sorted id array). Cost-free bulk load.
  Status InsertKeyBulk(double key01);

  /// Bulk-loads a dataset of unit-domain keys (cost-free). Sorts once,
  /// computes per-node slice boundaries as prefix sums over the sorted
  /// arcs, reserves each owner's key vector to its final size, and inserts
  /// the slices node-parallel on `pool` (default: the global ThreadPool) —
  /// the resulting stores are bit-identical at any thread count.
  void InsertDatasetBulk(const std::vector<double>& keys01,
                         ThreadPool* pool = nullptr);

  /// Ground-truth owner of a ring position: the first alive node clockwise
  /// at or after `target`. Fails only on an empty ring.
  Result<NodeAddr> OracleOwner(RingId target) const;

  // --- Protocol operations (cost-accounted) ------------------------------

  /// Iteratively routes from `from` (must be alive) to the owner of
  /// `target`, charging routing cost to `ctx`. Read-only on ring state:
  /// any number of lookups with distinct contexts may run concurrently
  /// over one deployment (warm the caches with PrepareConcurrentReads()
  /// first). Returns the owner's address.
  Result<NodeAddr> Lookup(CostContext& ctx, NodeAddr from,
                          RingId target) const;

  /// Legacy entry point: routes against the network's shared context.
  Result<NodeAddr> Lookup(NodeAddr from, RingId target) {
    return Lookup(network_->shared_context(), from, target);
  }

  /// A new peer joins via `bootstrap`: one lookup to find its successor,
  /// one data-handover message, pointer handshakes with its neighbors, and
  /// a finger-table copy from the successor. Returns the new address.
  Result<NodeAddr> Join(NodeAddr bootstrap);

  /// Graceful departure: hands data to the successor and unlinks.
  Status Leave(NodeAddr addr);

  /// Fail-stop crash: no messages; neighbors discover the death lazily.
  /// Data survives iff options().durable_data.
  Status Crash(NodeAddr addr);

  /// Routed insert of one key starting at `from` (lookup + 1 store message).
  Status InsertKeyRouted(NodeAddr from, double key01);

  /// Removes one occurrence of a key from its owner (oracle-routed,
  /// cost-free; the data-update analogue of InsertKeyBulk). NotFound if the
  /// owner does not store it.
  Status EraseKeyBulk(double key01);

  /// Routed delete (lookup + 1 delete message). NotFound if absent.
  Status EraseKeyRouted(NodeAddr from, double key01);

  // --- Maintenance (oracle-assisted, cost-free) ---------------------------

  /// Refreshes one node's successor list, predecessor, and fingers to
  /// ground truth (models a completed stabilize + fix_fingers cycle).
  /// Incremental path: binary searches over the sorted id array, the right
  /// trade-off when churn repairs one node at a time.
  void StabilizeNode(NodeAddr addr);

  /// Stabilizes every alive node: sweeps the struct-of-arrays membership
  /// snapshot (RingIndex::Flat — a cache hit when nothing changed since
  /// the last sweep) in fixed-size contiguous chunks with forward-only
  /// finger cursors (see ring/stabilize_sweep.h) — O(n·(s + kBits)) with
  /// no per-node map walks or hash lookups anywhere. Chunks run on `pool`
  /// (default: the global pool); the chunk grid depends only on n and
  /// every node's state is a pure function of the read-only snapshot, so
  /// the resulting routing state is byte-identical to a serial sweep at
  /// any thread count — and to the legacy map-layout sweep
  /// (ring/reference_stabilize.h).
  void StabilizeAll(ThreadPool* pool = nullptr);

  // --- Introspection ------------------------------------------------------

  Node* GetNode(NodeAddr addr) {
    return addr == 0 || addr > nodes_.size() ? nullptr
                                             : nodes_[addr - 1].get();
  }
  const Node* GetNode(NodeAddr addr) const {
    return addr == 0 || addr > nodes_.size() ? nullptr
                                             : nodes_[addr - 1].get();
  }
  /// One byte load off the liveness array — no Node dereference.
  bool IsAlive(NodeAddr addr) const {
    return addr != 0 && addr <= alive_.size() && alive_[addr - 1] != 0;
  }
  size_t AliveCount() const { return index_.size(); }
  std::vector<NodeAddr> AliveAddrs() const;

  /// Zero-copy view of the alive-address cache (addresses in ascending-id
  /// order). Rebuilds only the dirtied segments if stale; the reference is
  /// invalidated by the next membership change.
  const std::vector<NodeAddr>& AliveAddrsView() const {
    return index_.FlatAddrs();
  }

  /// Address of the alive node at ascending-id rank `rank` (must be
  /// < AliveCount()): a binary search over the segment offset table, never
  /// a flat-cache rebuild — the churn stabilize cursor and random node
  /// selection stay O(log S) under membership churn.
  NodeAddr AliveAddrAtRank(size_t rank) const {
    return index_.AtRank(rank).addr;
  }

  /// Warms every lazily materialized structure (the segment offset table,
  /// the flat membership snapshot, the flat Node-pointer array, and each
  /// node's sorted key array — the key sorts node-parallel on the global
  /// pool) so that subsequent const traffic — Lookup/probe/summary reads —
  /// performs no writes at all. Call once from the owning thread before
  /// sharing the ring across read-only concurrent queriers.
  void PrepareConcurrentReads() const;

  /// Monotone counter bumped by every mutating operation (membership or
  /// data). Two reads returning the same epoch (together with an unchanged
  /// Network::Now()) bracket a window with no ring mutation — the dirty
  /// check replica pools use to decide whether a lease needs a rebuild.
  uint64_t mutation_epoch() const { return mutation_epoch_; }

  /// Uniformly random alive node (for choosing queriers).
  Result<NodeAddr> RandomAliveNode(Rng& rng) const;

  /// Total items stored across alive nodes.
  uint64_t TotalItems() const;

  /// Per-alive-node stored-key counts in ascending-id order (parallel to
  /// index().Flat()): the key-count array consumers sweep instead of
  /// dereferencing every Node themselves.
  std::vector<uint64_t> SnapshotKeyCounts() const;

  /// Alive-membership ground truth: the struct-of-arrays index (sorted
  /// ids/addrs in sharded flat segments). Iterate with ForEach or Flat().
  const RingIndex& index() const { return index_; }

  Network& network() { return *network_; }
  /// The fabric typed as the accounting interface, for protocol layers
  /// (probe, dissemination) that never need sim-only machinery. The ring's
  /// own hot paths keep the concrete Network* so their charges stay
  /// devirtualized.
  Transport& transport() { return *network_; }
  const RingOptions& options() const { return options_; }
  Rng& rng() { return rng_; }

 private:
  /// Picks a fresh never-used ring id.
  RingId NewUniqueId();

  NodeEntry EntryFor(const Node& node) const {
    return NodeEntry{node.addr(), node.id()};
  }
  static NodeEntry EntryOf(const RingIndex::Entry& e) {
    return NodeEntry{e.addr, RingId(e.id)};
  }

  /// Ground-truth successor list for position `id` (excluding `id` itself).
  std::vector<NodeEntry> OracleSuccessorList(RingId id) const;

  /// Registers a freshly created node in the dense payload store and the
  /// liveness array (addresses are allocated densely, so this is a
  /// push_back).
  void StoreNode(NodeAddr addr, std::unique_ptr<Node> node);

  /// Marks `addr` dead in both the liveness array and its payload.
  void MarkDead(Node* node);

  /// The flat Node-pointer array parallel to index().Flat(), rebuilt when
  /// the membership version moved.
  const std::vector<Node*>& FlatNodes() const;

  /// Charges one routing round trip between two peers.
  void ChargeHop(CostContext& ctx, NodeAddr from, NodeAddr to) const;
  void ChargeHop(NodeAddr from, NodeAddr to) {
    ChargeHop(network_->shared_context(), from, to);
  }
  /// Charges one timed-out probe of a stale candidate.
  void ChargeTimeout(CostContext& ctx, NodeAddr from, NodeAddr to) const;
  void ChargeTimeout(NodeAddr from, NodeAddr to) {
    ChargeTimeout(network_->shared_context(), from, to);
  }

  /// Marks a mutation of ring state (membership, routing tables, or data).
  void BumpEpoch() { ++mutation_epoch_; }

  Network* network_;
  RingOptions options_;
  Rng rng_;

  /// Sorted alive membership as sharded parallel (id, addr) arrays.
  RingIndex index_;
  /// Dense payload store: Node at address a lives at slot a-1 (incl. dead).
  std::vector<std::unique_ptr<Node>> nodes_;
  /// Liveness flags parallel to nodes_ (1 = alive).
  std::vector<uint8_t> alive_;
  std::unordered_set<uint64_t> used_ids_;
  NodeAddr next_addr_ = 1;

  // Flat Node pointers parallel to index_.Flat(), rebuilt lazily when the
  // membership version moved (pointers are stable — Nodes live on the
  // heap — so only membership changes invalidate it). Not synchronized:
  // concurrent readers must ensure the cache is warm
  // (PrepareConcurrentReads touches it from the owning thread).
  mutable std::vector<Node*> flat_nodes_;
  mutable uint64_t flat_nodes_version_ = ~uint64_t{0};

  /// See mutation_epoch().
  uint64_t mutation_epoch_ = 0;
};

}  // namespace ringdde

#endif  // RINGDDE_RING_CHORD_RING_H_
