#ifndef RINGDDE_RING_REPLICATION_H_
#define RINGDDE_RING_REPLICATION_H_

#include <cstdint>
#include <unordered_map>

#include "common/status.h"
#include "ring/chord_ring.h"

namespace ringdde {

/// Successor-list replication for the ring's data.
///
/// Each primary's key set is mirrored on its first `replication_factor`
/// alive successors. Crash recovery then becomes a real protocol instead of
/// RingOptions::durable_data's free oracle reassignment: when a primary
/// crashes, its successor *promotes* the replica it holds (and re-protects
/// the promoted keys by pushing them onward), all charged to the network
/// counters. If the replica was stale or missing — the sync period lost the
/// race against the crash — the un-replicated delta is genuinely gone,
/// which makes data survival a measurable function of the replication
/// factor and sync cadence (bench e12).
///
/// Usage: construct next to the ring, call FullSync() after bulk load, then
/// either call HandleCrash() from your churn driver instead of relying on
/// durable_data, or Start() to let it run periodic background syncs on the
/// event queue. The ring must outlive the manager.
struct ReplicationOptions {
  /// Number of successors holding a copy of each primary's keys.
  uint32_t replication_factor = 2;

  /// Period of the background incremental sync when Start()ed. Each cycle
  /// re-pushes the key sets that changed since the last cycle.
  double sync_period_seconds = 30.0;

  /// Bytes per replicated key on the wire.
  uint64_t key_bytes = 8;
};

class ReplicationManager {
 public:
  ReplicationManager(ChordRing* ring, ReplicationOptions options = {});

  /// Pushes every alive primary's key set to its replica set (charged).
  /// Also the recovery path after bulk loads.
  void FullSync();

  /// Schedules periodic incremental syncs on the ring's event queue.
  /// Call at most once.
  void Start();

  /// Crash with protocol recovery: fail-stops `addr` (the ring must be
  /// configured with durable_data = false so the oracle does not resurrect
  /// the data for free), then runs promotion — the crashed primary's
  /// successor takes over the arc and merges the freshest replica it can
  /// find among the first replication_factor successors (each remote fetch
  /// charged), then re-protects the promoted keys. Returns the number of
  /// keys recovered; the shortfall against the pre-crash primary count is
  /// recorded in keys_lost().
  Result<uint64_t> CrashWithRecovery(NodeAddr addr);

  /// Incremental sync: re-pushes only primaries whose stores changed since
  /// the last sync (detected by count+checksum). Returns keys shipped.
  uint64_t IncrementalSync();

  /// Keys lost across all HandleCrash() calls (crashed before any replica
  /// covered them).
  uint64_t keys_lost() const { return keys_lost_; }
  uint64_t keys_recovered() const { return keys_recovered_; }
  uint64_t syncs() const { return syncs_; }

  const ReplicationOptions& options() const { return options_; }

 private:
  /// Pushes `owner`'s current keys to its first replication_factor alive
  /// successors (charged per key). Records the fingerprint.
  void PushReplicas(NodeAddr owner);

  /// Cheap change detector for a primary's store.
  uint64_t Fingerprint(const Node& node) const;

  ChordRing* ring_;
  ReplicationOptions options_;
  bool started_ = false;

  /// Last-synced fingerprint per primary.
  std::unordered_map<NodeAddr, uint64_t> synced_fingerprints_;

  uint64_t keys_lost_ = 0;
  uint64_t keys_recovered_ = 0;
  uint64_t syncs_ = 0;
};

}  // namespace ringdde

#endif  // RINGDDE_RING_REPLICATION_H_
