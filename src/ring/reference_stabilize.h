#ifndef RINGDDE_RING_REFERENCE_STABILIZE_H_
#define RINGDDE_RING_REFERENCE_STABILIZE_H_

#include <map>

#include "ring/chord_ring.h"

namespace ringdde {

class ThreadPool;

/// The pre-RingIndex membership layout: the sorted alive set as a
/// `std::map<id, addr>` plus out-of-band Node pointers. Kept as a *test
/// oracle and benchmark baseline only* — production code runs on the
/// struct-of-arrays RingIndex. Mirroring is O(n log n) map inserts; the
/// reference sweeps below take the mirror so callers can exclude its
/// construction from timing.
struct LegacyMembership {
  std::map<uint64_t, NodeAddr> index;
  std::vector<Node*> nodes_by_rank;  // ascending-id, parallel to the map walk
};

/// Snapshots the ring's current alive membership into the legacy layout.
LegacyMembership MirrorMembership(ChordRing& ring);

/// Per-node oracle stabilization over the legacy map — the original
/// O(n·(s + kBits)·log n) formulation: each node independently derives its
/// successor list (upper_bound walk with wrap), predecessor (lower_bound,
/// step back with wrap), and fingers (one wrapped lower_bound per finger)
/// from the red-black tree. Deliberately shares *no* code with the
/// struct-of-arrays sweep, so agreement between the two is evidence, not
/// tautology.
void ReferenceStabilizeAllMapWalk(const LegacyMembership& legacy,
                                  size_t successor_list_size);

/// The PR2-era snapshot sweep on the legacy layout: walks the map into
/// flat arrays (the per-sweep O(n) pointer chase RingIndex eliminates),
/// then runs the shared chunked StabilizeSweepRange on `pool`. This is the
/// honest before/after baseline for the E18 scale benchmark: same math,
/// same parallelism — only the membership layout differs.
void ReferenceStabilizeAllSnapshot(const LegacyMembership& legacy,
                                   size_t successor_list_size,
                                   ThreadPool* pool = nullptr);

}  // namespace ringdde

#endif  // RINGDDE_RING_REFERENCE_STABILIZE_H_
