#ifndef RINGDDE_RING_RING_STATS_H_
#define RINGDDE_RING_RING_STATS_H_

#include <cstdint>
#include <vector>

#include "ring/chord_ring.h"

namespace ringdde {

/// Ground-truth structural statistics of a ring, for experiment reporting
/// and for validating the overlay substrate itself.
struct RingStatsSummary {
  size_t alive_nodes = 0;
  uint64_t total_items = 0;

  // Arc (ownership span) statistics, as fractions of the ring.
  double min_arc = 0.0;
  double max_arc = 0.0;
  double mean_arc = 0.0;

  // Storage-load statistics (items per node).
  uint64_t min_load = 0;
  uint64_t max_load = 0;
  double mean_load = 0.0;
  double load_gini = 0.0;  ///< Gini coefficient of items-per-node.
};

/// Computes the summary from oracle state (cost-free).
RingStatsSummary ComputeRingStats(const ChordRing& ring);

/// Items-per-node loads, in ring order.
std::vector<uint64_t> NodeLoads(const ChordRing& ring);

/// Owned-arc fractions, in ring order, derived from the oracle index (not
/// from possibly-stale predecessor pointers). Sums to 1.
std::vector<double> NodeArcs(const ChordRing& ring);

/// Gini coefficient of a non-negative load vector; 0 = perfectly even,
/// -> 1 = all load on one node. Empty or all-zero input yields 0.
double GiniCoefficient(std::vector<double> values);

}  // namespace ringdde

#endif  // RINGDDE_RING_RING_STATS_H_
