#include "ring/stabilize_sweep.h"

#include <algorithm>
#include <cassert>
#include <vector>

#include "ring/node.h"

namespace ringdde {

void StabilizeSweepRange(const uint64_t* ids, const NodeAddr* addrs,
                         Node* const* nodes, size_t n,
                         size_t successor_list_size, size_t begin,
                         size_t end) {
  const size_t want = std::min<size_t>(successor_list_size,
                                       n > 0 ? n - 1 : 0);
  std::vector<NodeEntry> succ_buf;
  succ_buf.reserve(want);

  // Finger cursors. u[k] is the rank of finger k's current owner in the
  // *virtually doubled* id array — value(u) = ids[u] for u < n and
  // ids[u - n] + 2^64 for u >= n — which linearizes the circular
  // lower_bound-with-wrap: the owner of target id + 2^k is the first rank
  // whose value reaches the (unwrapped, 65-bit) target. Within the range,
  // ids[pos] grows with pos, so every target grows too and each cursor
  // only ever moves forward: one binary search seeds it, then advancing it
  // across all nodes of the range costs amortized O(1) per node per
  // finger. The uint64 comparisons below encode the 65-bit compare via
  // `big` (true iff the target overflowed, i.e. its true value >= 2^64):
  // a first-lap value is >= the target iff !big && ids[u] >= t, a
  // second-lap value iff big ? ids[u - n] >= t : true.
  size_t u[FingerTable::kBits];
  {
    const uint64_t id0 = ids[begin];
    for (int k = 0; k < FingerTable::kBits; ++k) {
      const uint64_t t = FingerTable::FingerStart(RingId(id0), k).value;
      const bool big = t < id0;  // id0 + 2^k wrapped past 2^64
      if (big) {
        // All first-lap values are below the target: search the high lap.
        // A wrapped target always has ids[n-1] >= t, so the search lands.
        size_t lo = n;
        size_t hi = 2 * n;
        while (lo < hi) {
          const size_t mid = lo + (hi - lo) / 2;
          if (ids[mid - n] < t) {
            lo = mid + 1;
          } else {
            hi = mid;
          }
        }
        u[k] = lo;
      } else {
        u[k] = static_cast<size_t>(std::lower_bound(ids, ids + n, t) -
                                   ids);  // == n means wrap to ids[0]
      }
    }
  }

  for (size_t pos = begin; pos < end; ++pos) {
    Node* node = nodes[pos];
    const RingId id(ids[pos]);

    if (n == 1) {
      node->set_successors({NodeEntry{node->addr(), id}});
      node->set_predecessor(NodeEntry{node->addr(), id});
    } else {
      // Successor list: the next `want` peers clockwise from our position.
      succ_buf.clear();
      for (size_t step = 1; step <= want; ++step) {
        size_t j = pos + step;
        if (j >= n) j -= n;
        succ_buf.push_back(NodeEntry{addrs[j], RingId(ids[j])});
      }
      node->assign_successors(succ_buf.data(), succ_buf.size());

      // Predecessor: the previous snapshot entry, wrapping.
      const size_t j = pos == 0 ? n - 1 : pos - 1;
      node->set_predecessor(NodeEntry{addrs[j], RingId(ids[j])});
    }

    // fix_fingers: finger k = successor(id + 2^k), read off the cursors.
    FingerTable& fingers = node->fingers();
    const uint64_t self = ids[pos];
    for (int k = 0; k < FingerTable::kBits; ++k) {
      const uint64_t t = FingerTable::FingerStart(id, k).value;
      const bool big = t < self;
      size_t uk = u[k];
      while (uk < n ? (big || ids[uk] < t)
                    : (uk < 2 * n && big && ids[uk - n] < t)) {
        ++uk;
      }
      assert(uk < 2 * n && "finger target past the doubled id array");
      u[k] = uk;
      const size_t j = uk >= n ? uk - n : uk;
      fingers.Set(k, NodeEntry{addrs[j], RingId(ids[j])});
    }
  }
}

}  // namespace ringdde
