#include "ring/epoch_snapshot.h"

#include <optional>

#include "ring/ring_index.h"

namespace ringdde {

// --- EpochView --------------------------------------------------------------

void EpochView::ChargeHop(CostContext& ctx, NodeAddr from, NodeAddr to) const {
  // Query + response round trip (mirrors ChordRing::ChargeHop).
  network_->Send(ctx, from, to, options_.routing_info_bytes, /*hop_count=*/1);
  network_->Send(ctx, to, from, options_.routing_info_bytes, /*hop_count=*/0);
}

void EpochView::ChargeTimeout(CostContext& ctx, NodeAddr from,
                              NodeAddr to) const {
  network_->Send(ctx, from, to, options_.routing_info_bytes, /*hop_count=*/0);
}

Result<NodeAddr> EpochView::Lookup(CostContext& ctx, NodeAddr from,
                                   RingId target) const {
  // Structurally identical to ChordRing::Lookup with liveness replaced by
  // epoch membership: same scan order, same charging, same arc tests —
  // which is what makes a quiescent-ring epoch route bit-identical to the
  // live route.
  const EpochNodeView* start = ViewOf(from);
  if (start == nullptr) {
    return Status::InvalidArgument("lookup origin is not an alive node");
  }
  const auto alive = [this](NodeAddr a) { return IsAlive(a); };

  NodeAddr current = from;
  for (uint32_t hops = 0; hops <= options_.max_lookup_hops; ++hops) {
    const EpochNodeView* cur = ViewOf(current);
    // First alive entry of the successor list; each stale head costs a
    // timed-out ping.
    const NodeEntry* succ = nullptr;
    for (const NodeEntry& e : cur->successors()) {
      if (IsAlive(e.addr)) {
        succ = &e;
        break;
      }
      ChargeTimeout(ctx, current, e.addr);
    }
    if (succ == nullptr) {
      return Status::Unavailable("successor list exhausted (partition)");
    }
    if (InArcOpenClosed(target, cur->id(), succ->id)) {
      // succ owns target (or will after its next stabilize).
      return succ->addr;
    }
    // Biggest legal finger jump; dead candidates cost a timeout each.
    std::vector<NodeEntry> probed_dead;
    std::optional<NodeEntry> next =
        cur->fingers().ClosestPreceding(cur->id(), target, alive,
                                        &probed_dead);
    for (const NodeEntry& d : probed_dead) ChargeTimeout(ctx, current, d.addr);
    if (!next.has_value()) {
      // No finger inside (cur, target): fall through to the successor,
      // which is guaranteed to precede the owner, so progress is made.
      next = *succ;
    }
    ChargeHop(ctx, current, next->addr);
    current = next->addr;
  }
  return Status::TimedOut("lookup exceeded hop budget");
}

Result<NodeAddr> EpochView::RandomAliveNode(Rng& rng) const {
  if (addrs_.empty()) return Status::NotFound("ring is empty");
  // Same rank selection (and rng draw) as ChordRing::RandomAliveNode:
  // addrs_ is the ascending-id flat order AtRank indexes.
  const uint64_t k = rng.UniformU64(addrs_.size());
  return addrs_[static_cast<size_t>(k)];
}

// --- SnapshotManager --------------------------------------------------------

SnapshotManager::SnapshotManager(ChordRing* ring)
    : ring_(ring),
      live_count_(std::make_shared<std::atomic<size_t>>(0)),
      reclaimed_(std::make_shared<std::atomic<uint64_t>>(0)) {}

std::shared_ptr<const EpochView> SnapshotManager::Publish() {
  {
    std::lock_guard<std::mutex> lock(head_mu_);
    if (head_ != nullptr && head_->epoch_ == ring_->mutation_epoch()) {
      ++stats_.republish_noops;
      return head_;
    }
  }
  std::shared_ptr<const EpochView> prev = Current();
  std::shared_ptr<const EpochView> view = BuildView(prev.get());
  {
    std::lock_guard<std::mutex> lock(head_mu_);
    head_ = view;
  }
  head_sequence_.store(view->sequence_, std::memory_order_release);
  ++stats_.publishes;
  const RingIndex& index = ring_->index();
  shard_versions_.resize(RingIndex::kShardCount);
  for (size_t s = 0; s < RingIndex::kShardCount; ++s) {
    shard_versions_[s] = index.shard_version(s);
  }
  return view;
}

std::shared_ptr<const EpochView> SnapshotManager::BuildView(
    const EpochView* prev) {
  const RingIndex& index = ring_->index();
  const RingIndex::FlatView flat = index.Flat();

  auto* view = new EpochView();
  view->epoch_ = ring_->mutation_epoch();
  view->sequence_ = next_sequence_++;
  view->published_at_ = ring_->network().Now();
  view->network_ = &ring_->network();
  view->options_ = ring_->options();

  view->ids_.assign(flat.ids, flat.ids + flat.size);
  view->addrs_.assign(flat.addrs, flat.addrs + flat.size);

  // Aligned membership prefix: ranks in id-shards before the first shard
  // whose membership version moved since the previous publish occupy the
  // same positions in the previous view, so their old captures are found
  // by direct rank index (and counted as reused prefix entries).
  size_t prefix_ranks = 0;
  if (prev != nullptr && !shard_versions_.empty()) {
    size_t first_dirty = RingIndex::kShardCount;
    for (size_t s = 0; s < RingIndex::kShardCount; ++s) {
      if (index.shard_version(s) != shard_versions_[s]) {
        first_dirty = s;
        break;
      }
    }
    if (first_dirty == RingIndex::kShardCount) {
      prefix_ranks = flat.size;  // membership untouched (data-only epoch)
    } else if (first_dirty > 0) {
      // Entries of shards [0, first_dirty) are exactly the ids below the
      // dirty shard's id-range start.
      const uint64_t boundary = first_dirty
                                << (64 - RingIndex::kShardBits);
      prefix_ranks = static_cast<size_t>(
          std::lower_bound(flat.ids, flat.ids + flat.size, boundary) -
          flat.ids);
    }
    stats_.prefix_entries_reused += prefix_ranks;
  }

  NodeAddr max_addr = 0;
  for (size_t r = 0; r < flat.size; ++r) {
    max_addr = std::max(max_addr, flat.addrs[r]);
  }
  view->rank_of_addr_.assign(static_cast<size_t>(max_addr) + 1, 0);
  view->views_.resize(flat.size);

  uint64_t total_items = 0;
  for (size_t rank = 0; rank < flat.size; ++rank) {
    const NodeAddr addr = flat.addrs[rank];
    view->rank_of_addr_[addr] = static_cast<uint32_t>(rank + 1);
    const Node* node = ring_->GetNode(addr);

    // Previous capture of this peer, by aligned rank inside the clean
    // prefix, by address lookup past it.
    std::shared_ptr<const EpochNodeView> old;
    if (prev != nullptr) {
      if (rank < prefix_ranks) {
        old = prev->views_[rank];
      } else if (addr < prev->rank_of_addr_.size() &&
                 prev->rank_of_addr_[addr] != 0) {
        old = prev->views_[prev->rank_of_addr_[addr] - 1];
      }
    }

    if (old != nullptr && old->route_version_ == node->route_version() &&
        old->data_version_ == node->data_version()) {
      // Nothing about this peer changed: share the whole capture.
      view->views_[rank] = old;
      ++stats_.node_views_reused;
    } else {
      auto nv = std::make_shared<EpochNodeView>();
      nv->addr_ = addr;
      nv->id_ = node->id();
      nv->predecessor_ = node->predecessor();
      nv->successors_ = node->successors();
      nv->fingers_ = node->fingers();
      nv->route_version_ = node->route_version();
      nv->data_version_ = node->data_version();
      if (old != nullptr && old->data_version_ == node->data_version()) {
        // Routing moved but the store did not: share the key array.
        nv->keys_ = old->keys_;
        ++stats_.key_arrays_reused;
      } else {
        nv->keys_ =
            std::make_shared<const std::vector<double>>(node->keys());
        ++stats_.key_arrays_built;
      }
      view->views_[rank] = std::move(nv);
      ++stats_.node_views_built;
    }
    total_items += view->views_[rank]->item_count();
  }
  view->total_items_ = total_items;

  live_count_->fetch_add(1, std::memory_order_acq_rel);
  auto live = live_count_;
  auto reclaimed = reclaimed_;
  return std::shared_ptr<const EpochView>(
      view, [live, reclaimed](const EpochView* v) {
        delete v;
        reclaimed->fetch_add(1, std::memory_order_acq_rel);
        live->fetch_sub(1, std::memory_order_acq_rel);
      });
}

}  // namespace ringdde
