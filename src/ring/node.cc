#include "ring/node.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ringdde {

Node::Node(NodeAddr addr, RingId id) : addr_(addr), id_(id) {
  // A lone node is its own predecessor/successor (full-ring ownership).
  predecessor_ = NodeEntry{addr, id};
  successors_ = {NodeEntry{addr, id}};
}

void Node::InsertKey(double key) {
  EnsureSorted();
  auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
  keys_.insert(it, key);
  ++data_version_;
}

void Node::InsertKeys(const std::vector<double>& keys) {
  if (keys.empty()) return;
  keys_.insert(keys_.end(), keys.begin(), keys.end());
  sorted_ = false;
  ++data_version_;
}

void Node::InsertSortedKeys(const double* first, const double* last) {
  if (first == last) return;
  ++data_version_;
  if (keys_.empty()) {
    keys_.assign(first, last);
    sorted_ = true;
    return;
  }
  EnsureSorted();
  const size_t mid = keys_.size();
  keys_.insert(keys_.end(), first, last);
  std::inplace_merge(keys_.begin(),
                     keys_.begin() + static_cast<ptrdiff_t>(mid),
                     keys_.end());
}

bool Node::EraseKey(double key) {
  EnsureSorted();
  auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
  if (it == keys_.end() || *it != key) return false;
  keys_.erase(it);
  ++data_version_;
  return true;
}

std::vector<double> Node::ExtractKeysInArc(RingId from, RingId to) {
  EnsureSorted();
  if (!keys_.empty()) ++data_version_;
  if (from == to) {
    // Full-ring arc (the leave/crash handover): everything moves, so the
    // store itself is the result — no copying at all.
    std::vector<double> moved = std::move(keys_);
    keys_.clear();
    return moved;
  }
  // Single partition pass: matching keys append to `moved` (reserved up
  // front so it never reallocates), the rest compact in place — no `kept`
  // side buffer and no element-by-element vector growth. Both outputs stay
  // sorted because the pass is stable.
  std::vector<double> moved;
  moved.reserve(keys_.size());
  auto kept_end = keys_.begin();
  for (double k : keys_) {
    if (InArcOpenClosed(RingId::FromUnit(k), from, to)) {
      moved.push_back(k);
    } else {
      *kept_end++ = k;
    }
  }
  keys_.erase(kept_end, keys_.end());
  return moved;
}

const std::vector<double>& Node::keys() const {
  EnsureSorted();
  return keys_;
}

size_t Node::RankOf(double key) const {
  EnsureSorted();
  return static_cast<size_t>(
      std::lower_bound(keys_.begin(), keys_.end(), key) - keys_.begin());
}

double Node::LocalQuantile(double p) const {
  assert(!keys_.empty());
  EnsureSorted();
  p = std::min(std::max(p, 0.0), 1.0);
  const double h = p * static_cast<double>(keys_.size() - 1);
  const size_t lo = static_cast<size_t>(h);
  const size_t hi = std::min(lo + 1, keys_.size() - 1);
  const double t = h - static_cast<double>(lo);
  return keys_[lo] + (keys_[hi] - keys_[lo]) * t;
}

std::vector<double> Node::EvenQuantiles(int q) const {
  std::vector<double> out;
  if (keys_.empty() || q <= 0) return out;
  out.reserve(static_cast<size_t>(q));
  for (int i = 1; i <= q; ++i) {
    out.push_back(LocalQuantile(static_cast<double>(i) / (q + 1)));
  }
  return out;
}

void Node::StoreReplica(NodeAddr owner, std::vector<double> keys) {
  replicas_[owner] = std::move(keys);
}

bool Node::TakeReplica(NodeAddr owner, std::vector<double>* out) {
  auto it = replicas_.find(owner);
  if (it == replicas_.end()) return false;
  if (out != nullptr) *out = std::move(it->second);
  replicas_.erase(it);
  return true;
}

bool Node::HasReplica(NodeAddr owner) const {
  return replicas_.contains(owner);
}

size_t Node::replica_key_count() const {
  size_t total = 0;
  for (const auto& [owner, keys] : replicas_) total += keys.size();
  return total;
}

void Node::EnsureSorted() const {
  if (!sorted_) {
    std::sort(keys_.begin(), keys_.end());
    sorted_ = true;
  }
}

}  // namespace ringdde
