#include "ring/ring_index.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace ringdde {

void RingIndex::Reserve(size_t n) {
  const size_t per_shard = n / kShardCount + 4;
  for (Shard& s : shards_) {
    s.ids.reserve(per_shard);
    s.addrs.reserve(per_shard);
  }
  offsets_.reserve(kShardCount + 1);
  flat_ids_.reserve(n);
  flat_addrs_.reserve(n);
}

void RingIndex::Invalidate(size_t s) {
  offsets_valid_ = false;
  first_dirty_shard_ = std::min(first_dirty_shard_, s);
  ++stats_.shard_invalidations;
  ++version_;
  ++shard_versions_[s];
}

void RingIndex::Insert(uint64_t id, NodeAddr addr) {
  const size_t si = ShardOf(id);
  Shard& s = shards_[si];
  const size_t pos = static_cast<size_t>(
      std::lower_bound(s.ids.begin(), s.ids.end(), id) - s.ids.begin());
  assert(pos == s.ids.size() || s.ids[pos] != id);
  s.ids.insert(s.ids.begin() + static_cast<ptrdiff_t>(pos), id);
  s.addrs.insert(s.addrs.begin() + static_cast<ptrdiff_t>(pos), addr);
  ++size_;
  Invalidate(si);
}

bool RingIndex::Erase(uint64_t id) {
  const size_t si = ShardOf(id);
  Shard& s = shards_[si];
  const auto it = std::lower_bound(s.ids.begin(), s.ids.end(), id);
  if (it == s.ids.end() || *it != id) return false;
  const size_t pos = static_cast<size_t>(it - s.ids.begin());
  s.ids.erase(it);
  s.addrs.erase(s.addrs.begin() + static_cast<ptrdiff_t>(pos));
  --size_;
  Invalidate(si);
  return true;
}

bool RingIndex::Contains(uint64_t id) const {
  const Shard& s = shards_[ShardOf(id)];
  return std::binary_search(s.ids.begin(), s.ids.end(), id);
}

void RingIndex::EnsureOffsets() const {
  if (offsets_valid_) return;
  offsets_.resize(kShardCount + 1);
  size_t acc = 0;
  for (size_t s = 0; s < kShardCount; ++s) {
    offsets_[s] = acc;
    acc += shards_[s].ids.size();
  }
  offsets_[kShardCount] = acc;
  offsets_valid_ = true;
}

std::optional<RingIndex::Entry> RingIndex::OwnerOf(uint64_t target) const {
  if (size_ == 0) return std::nullopt;
  // First entry at or after target: search the target's shard, then the
  // following non-empty shards, wrapping to the globally smallest entry.
  for (size_t step = 0, si = ShardOf(target); step < kShardCount;
       ++step, si = (si + 1) & (kShardCount - 1)) {
    const Shard& s = shards_[si];
    if (s.ids.empty()) continue;
    if (step == 0) {
      const auto it = std::lower_bound(s.ids.begin(), s.ids.end(), target);
      if (it != s.ids.end()) {
        const size_t pos = static_cast<size_t>(it - s.ids.begin());
        return Entry{s.ids[pos], s.addrs[pos]};
      }
      continue;  // everything in this shard is below target
    }
    return Entry{s.ids[0], s.addrs[0]};
  }
  // target is past every entry: wrap to the smallest id overall.
  for (const Shard& s : shards_) {
    if (!s.ids.empty()) return Entry{s.ids[0], s.addrs[0]};
  }
  return std::nullopt;  // unreachable while size_ > 0
}

size_t RingIndex::LowerBoundRank(uint64_t target) const {
  EnsureOffsets();
  const size_t si = ShardOf(target);
  const Shard& s = shards_[si];
  return offsets_[si] +
         static_cast<size_t>(
             std::lower_bound(s.ids.begin(), s.ids.end(), target) -
             s.ids.begin());
}

size_t RingIndex::UpperBoundRank(uint64_t target) const {
  EnsureOffsets();
  const size_t si = ShardOf(target);
  const Shard& s = shards_[si];
  return offsets_[si] +
         static_cast<size_t>(
             std::upper_bound(s.ids.begin(), s.ids.end(), target) -
             s.ids.begin());
}

RingIndex::Entry RingIndex::AtRank(size_t rank) const {
  assert(rank < size_);
  EnsureOffsets();
  // Shard owning this rank: last offset <= rank.
  const size_t si = static_cast<size_t>(
      std::upper_bound(offsets_.begin(), offsets_.begin() + kShardCount,
                       rank) -
      offsets_.begin() - 1);
  const Shard& s = shards_[si];
  const size_t i = rank - offsets_[si];
  return Entry{s.ids[i], s.addrs[i]};
}

void RingIndex::EnsureFlat() const {
  if (flat_built_ && first_dirty_shard_ == kShardCount) {
    ++stats_.flat_hits;
    return;
  }
  EnsureOffsets();
  const size_t start = flat_built_ ? first_dirty_shard_ : 0;
  // resize() preserves the clean prefix even across a reallocation, so
  // only the spans of shards [start, kShardCount) need re-copying: shards
  // before the first dirtied one kept both their contents and (because
  // sizes before them are unchanged) their offsets.
  flat_ids_.resize(size_);
  flat_addrs_.resize(size_);
  for (size_t si = start; si < kShardCount; ++si) {
    const Shard& s = shards_[si];
    if (s.ids.empty()) continue;
    std::memcpy(flat_ids_.data() + offsets_[si], s.ids.data(),
                s.ids.size() * sizeof(uint64_t));
    std::memcpy(flat_addrs_.data() + offsets_[si], s.addrs.data(),
                s.addrs.size() * sizeof(NodeAddr));
    ++stats_.flat_shards_copied;
  }
  ++stats_.flat_rebuilds;
  if (start == 0) ++stats_.flat_full_rebuilds;
  first_dirty_shard_ = kShardCount;
  flat_built_ = true;
}

RingIndex::FlatView RingIndex::Flat() const {
  EnsureFlat();
  return FlatView{flat_ids_.data(), flat_addrs_.data(), size_};
}

const std::vector<NodeAddr>& RingIndex::FlatAddrs() const {
  EnsureFlat();
  return flat_addrs_;
}

void RingIndex::WarmCaches() const {
  EnsureOffsets();
  EnsureFlat();
}

}  // namespace ringdde
