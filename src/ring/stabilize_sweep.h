#ifndef RINGDDE_RING_STABILIZE_SWEEP_H_
#define RINGDDE_RING_STABILIZE_SWEEP_H_

#include <cstddef>
#include <cstdint>

#include "sim/network.h"

namespace ringdde {

class Node;

/// Refreshes the routing state of the nodes at snapshot positions
/// [begin, end) from a flat sorted membership snapshot (`ids` ascending,
/// `addrs`/`nodes` parallel, `n` entries), carrying forward-only finger
/// cursors across the range: one binary search per finger to seed, then
/// amortized O(1) advancement per node. Produces exactly the state a
/// per-node oracle stabilization derives from the same membership.
///
/// Shared by ChordRing::StabilizeAll (which feeds it the struct-of-arrays
/// snapshot) and the legacy-layout reference sweep in
/// ring/reference_stabilize.h (which feeds it a snapshot walked out of a
/// std::map mirror) — both layouts run the same math, so routing state can
/// never depend on the layout.
void StabilizeSweepRange(const uint64_t* ids, const NodeAddr* addrs,
                         Node* const* nodes, size_t n,
                         size_t successor_list_size, size_t begin,
                         size_t end);

}  // namespace ringdde

#endif  // RINGDDE_RING_STABILIZE_SWEEP_H_
