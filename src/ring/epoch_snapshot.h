#ifndef RINGDDE_RING_EPOCH_SNAPSHOT_H_
#define RINGDDE_RING_EPOCH_SNAPSHOT_H_

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/id.h"
#include "common/rng.h"
#include "common/status.h"
#include "ring/chord_ring.h"
#include "ring/finger_table.h"
#include "sim/network.h"

namespace ringdde {

/// Frozen capture of one alive peer: everything the estimation read path
/// touches (routing state for Lookup, the sorted key store for summaries),
/// decoupled from the live Node so mutators can keep rewriting the ring
/// while readers drain this epoch.
///
/// The accessor surface deliberately mirrors Node's — ComputeLocalSummaryOf
/// and the lookup loop are instantiated over both, so a frozen peer and a
/// quiescent live peer produce bit-identical summaries and routes.
class EpochNodeView {
 public:
  NodeAddr addr() const { return addr_; }
  RingId id() const { return id_; }
  const NodeEntry& predecessor() const { return predecessor_; }
  const std::vector<NodeEntry>& successors() const { return successors_; }
  const FingerTable& fingers() const { return fingers_; }

  /// The peer's keys at capture time, ascending (captured through
  /// Node::keys(), which sorts — so the content equals what a live read
  /// would have seen).
  const std::vector<double>& keys() const { return *keys_; }
  size_t item_count() const { return keys_->size(); }

  /// Exact local p-quantile — the same arithmetic as Node::LocalQuantile,
  /// replicated over the frozen store (bit-identity depends on it).
  double LocalQuantile(double p) const {
    const std::vector<double>& k = *keys_;
    assert(!k.empty());
    p = std::min(std::max(p, 0.0), 1.0);
    const double h = p * static_cast<double>(k.size() - 1);
    const size_t lo = static_cast<size_t>(h);
    const size_t hi = std::min(lo + 1, k.size() - 1);
    const double t = h - static_cast<double>(lo);
    return k[lo] + (k[hi] - k[lo]) * t;
  }

  /// The live Node's change counters at capture time: the next Publish()
  /// compares them against the node's current counters to reuse this
  /// capture (or just its key array) instead of re-copying.
  uint64_t route_version() const { return route_version_; }
  uint64_t data_version() const { return data_version_; }

 private:
  friend class SnapshotManager;

  NodeAddr addr_ = 0;
  RingId id_;
  NodeEntry predecessor_;
  std::vector<NodeEntry> successors_;
  FingerTable fingers_;
  /// Shared with the captures of adjacent epochs when the store did not
  /// change between publishes (the common case under pure membership
  /// churn) — an epoch's marginal memory is then per-node pointers, not
  /// per-node key copies.
  std::shared_ptr<const std::vector<double>> keys_;
  uint64_t route_version_ = 0;
  uint64_t data_version_ = 0;
};

/// One immutable published epoch of the ring: the flat sorted membership
/// (ids ascending, addrs parallel — the same order RingIndex::Flat()
/// produces), per-rank frozen peer captures, and the constants a query
/// needs (RingOptions, the Network for cost accounting, the virtual
/// publish timestamp).
///
/// Readers pin an epoch by holding the shared_ptr handed out by
/// SnapshotManager::Current(); everything reachable from it is immutable,
/// so any number of queries drain one epoch concurrently with zero
/// synchronization while the mutator builds the next epoch off to the
/// side. Dropping the last pin reclaims the epoch (see SnapshotManager).
class EpochView {
 public:
  /// ChordRing::mutation_epoch() at publish: two views with equal epoch()
  /// captured identical ring state.
  uint64_t epoch() const { return epoch_; }

  /// Dense publish counter (1, 2, 3, ...): head_sequence() minus a query's
  /// view sequence is the query's staleness in epochs.
  uint64_t sequence() const { return sequence_; }

  /// Network::Now() at publish. Epoch-pinned queries freeze their fault
  /// clock to this (CostContext::frozen_now) so verdicts are a function of
  /// the view, not of concurrent mutator progress.
  double published_at() const { return published_at_; }

  Network& network() const { return *network_; }
  const RingOptions& options() const { return options_; }

  size_t size() const { return addrs_.size(); }
  uint64_t total_items() const { return total_items_; }

  /// Membership test: was `addr` an alive peer of this epoch? This is the
  /// liveness predicate of every frozen read path (the epoch analogue of
  /// ChordRing::IsAlive — identical on a quiescent ring, by construction).
  bool IsAlive(NodeAddr addr) const {
    return addr != 0 && addr < rank_of_addr_.size() &&
           rank_of_addr_[addr] != 0;
  }

  /// The frozen capture of `addr`, or null if not a member of this epoch.
  const EpochNodeView* ViewOf(NodeAddr addr) const {
    if (!IsAlive(addr)) return nullptr;
    return views_[rank_of_addr_[addr] - 1].get();
  }

  /// Iteratively routes from `from` to the owner of `target` *within this
  /// epoch*, charging routing cost to `ctx` exactly like
  /// ChordRing::Lookup (same hop/timeout charging order, same arc tests,
  /// same hop budget) — the two are bit-identical on a quiescent ring.
  Result<NodeAddr> Lookup(CostContext& ctx, NodeAddr from,
                          RingId target) const;

  /// Uniformly random member (ascending-id rank selection, matching
  /// ChordRing::RandomAliveNode draw-for-draw).
  Result<NodeAddr> RandomAliveNode(Rng& rng) const;

  /// Flat membership, ids ascending / addrs parallel.
  const std::vector<uint64_t>& ids() const { return ids_; }
  const std::vector<NodeAddr>& addrs() const { return addrs_; }

 private:
  friend class SnapshotManager;

  void ChargeHop(CostContext& ctx, NodeAddr from, NodeAddr to) const;
  void ChargeTimeout(CostContext& ctx, NodeAddr from, NodeAddr to) const;

  uint64_t epoch_ = 0;
  uint64_t sequence_ = 0;
  double published_at_ = 0.0;
  Network* network_ = nullptr;
  RingOptions options_;
  uint64_t total_items_ = 0;

  std::vector<uint64_t> ids_;
  std::vector<NodeAddr> addrs_;
  /// Frozen captures parallel to ids_/addrs_ (shared with adjacent epochs
  /// for peers that did not change between publishes).
  std::vector<std::shared_ptr<const EpochNodeView>> views_;
  /// rank_of_addr_[addr] = rank + 1, or 0 when addr is not a member.
  /// Addresses are allocated densely from 1, so this is a direct index.
  std::vector<uint32_t> rank_of_addr_;
};

/// Publishes immutable EpochViews of a live ChordRing and reclaims them
/// when their last reader unpins — the RCU-style rotation layer that lets
/// estimate serving run concurrently with churn and data updates.
///
/// Threading contract:
///  - Publish() runs on the mutator thread only (the thread that owns the
///    ring and its event queue), between mutations.
///  - Current(), head_sequence(), live_views() are safe from any thread.
///  - A reader pins an epoch by keeping the shared_ptr from Current();
///    releasing the last shared_ptr of a superseded epoch destroys it
///    immediately on whichever thread dropped it (cheap: vectors of PODs
///    and refcount decrements on the shared node captures).
///
/// Publish is incremental along two axes:
///  - *Membership prefix* (segment-granular, from RingIndex's per-shard
///    versions): ranks in id-shards before the first shard whose
///    membership changed are positionally unchanged, so the previous
///    epoch's capture for that rank is checked by direct index instead of
///    an addr lookup, and the id/addr prefix is reused wholesale.
///  - *Per-peer change counters*: a peer whose route_version and
///    data_version both match its previous capture reuses the capture
///    object; a peer whose data_version alone matches reuses the key
///    array and re-copies only routing state.
class SnapshotManager {
 public:
  /// Publish/reuse telemetry. Mutator-thread reads only (except
  /// views_reclaimed and the live count, which are atomics because
  /// reclamation runs on reader threads).
  struct Stats {
    uint64_t publishes = 0;
    /// Publish() calls that returned the current head unchanged because
    /// the ring's mutation epoch had not moved.
    uint64_t republish_noops = 0;
    uint64_t node_views_built = 0;
    uint64_t node_views_reused = 0;
    uint64_t key_arrays_built = 0;
    uint64_t key_arrays_reused = 0;
    /// Ranks whose (id, addr) came from the previous epoch's aligned
    /// prefix (membership shards before the first dirty one).
    uint64_t prefix_entries_reused = 0;
  };

  explicit SnapshotManager(ChordRing* ring);

  /// Captures the ring's current state as a new epoch and makes it the
  /// head. Returns the head unchanged (no allocation) when nothing mutated
  /// since the last publish. Mutator thread only.
  std::shared_ptr<const EpochView> Publish();

  /// The current head epoch; the returned shared_ptr IS the reader's pin.
  std::shared_ptr<const EpochView> Current() const {
    std::lock_guard<std::mutex> lock(head_mu_);
    return head_;
  }

  /// Sequence number of the head epoch (0 before the first publish).
  /// Lock-free: readers poll it to decide whether to re-acquire Current().
  uint64_t head_sequence() const {
    return head_sequence_.load(std::memory_order_acquire);
  }

  /// Number of EpochViews currently alive (head + every pinned retired
  /// epoch). Bounded by 1 + concurrent readers, regardless of how many
  /// epochs were ever published — the reclamation guarantee.
  size_t live_views() const {
    return live_count_->load(std::memory_order_acquire);
  }

  /// Total retired epochs already destroyed by their last unpin.
  uint64_t views_reclaimed() const {
    return reclaimed_->load(std::memory_order_acquire);
  }

  const Stats& stats() const { return stats_; }

 private:
  std::shared_ptr<const EpochView> BuildView(const EpochView* prev);

  ChordRing* ring_;

  mutable std::mutex head_mu_;
  std::shared_ptr<const EpochView> head_;
  std::atomic<uint64_t> head_sequence_{0};

  /// Shared with every view's deleter (views can outlive the manager).
  std::shared_ptr<std::atomic<size_t>> live_count_;
  std::shared_ptr<std::atomic<uint64_t>> reclaimed_;

  Stats stats_;
  uint64_t next_sequence_ = 1;
  /// RingIndex per-shard membership versions at the last publish.
  std::vector<uint64_t> shard_versions_;
};

}  // namespace ringdde

#endif  // RINGDDE_RING_EPOCH_SNAPSHOT_H_
