#include "ring/reference_stabilize.h"

#include <algorithm>
#include <vector>

#include "common/thread_pool.h"
#include "ring/stabilize_sweep.h"

namespace ringdde {

LegacyMembership MirrorMembership(ChordRing& ring) {
  LegacyMembership legacy;
  legacy.nodes_by_rank.reserve(ring.AliveCount());
  ring.index().ForEach([&](uint64_t id, NodeAddr addr) {
    legacy.index.emplace(id, addr);
    legacy.nodes_by_rank.push_back(ring.GetNode(addr));
  });
  return legacy;
}

void ReferenceStabilizeAllMapWalk(const LegacyMembership& legacy,
                                  size_t successor_list_size) {
  const std::map<uint64_t, NodeAddr>& index = legacy.index;
  const size_t n = index.size();
  if (n == 0) return;

  size_t rank = 0;
  for (auto node_it = index.begin(); node_it != index.end();
       ++node_it, ++rank) {
    Node* node = legacy.nodes_by_rank[rank];
    const RingId id(node_it->first);

    if (n == 1) {
      node->set_successors({NodeEntry{node->addr(), id}});
      node->set_predecessor(NodeEntry{node->addr(), id});
    } else {
      // Successor list: upper_bound walk with wrap, skipping self.
      const size_t want = std::min<size_t>(successor_list_size, n - 1);
      std::vector<NodeEntry> succ;
      succ.reserve(want);
      auto it = index.upper_bound(id.value);
      while (succ.size() < want) {
        if (it == index.end()) it = index.begin();
        if (it->first != id.value) {
          succ.push_back(NodeEntry{it->second, RingId(it->first)});
        }
        ++it;
      }
      node->set_successors(std::move(succ));

      // Predecessor: last entry strictly before id, wrapping.
      auto pit = index.lower_bound(id.value);
      if (pit == index.begin()) pit = index.end();
      --pit;
      node->set_predecessor(NodeEntry{pit->second, RingId(pit->first)});
    }

    // fix_fingers: finger k = successor(id + 2^k) via wrapped lower_bound.
    for (int k = 0; k < FingerTable::kBits; ++k) {
      const RingId t = FingerTable::FingerStart(id, k);
      auto fit = index.lower_bound(t.value);
      if (fit == index.end()) fit = index.begin();
      node->fingers().Set(k, NodeEntry{fit->second, RingId(fit->first)});
    }
  }
}

void ReferenceStabilizeAllSnapshot(const LegacyMembership& legacy,
                                   size_t successor_list_size,
                                   ThreadPool* pool) {
  const size_t n = legacy.index.size();
  if (n == 0) return;
  // The per-sweep flattening cost of the legacy layout: one full walk of
  // the red-black tree into fresh arrays, every time.
  std::vector<uint64_t> ids;
  std::vector<NodeAddr> addrs;
  ids.reserve(n);
  addrs.reserve(n);
  for (const auto& [id, addr] : legacy.index) {
    ids.push_back(id);
    addrs.push_back(addr);
  }
  constexpr size_t kChunk = 512;
  const size_t chunks = (n + kChunk - 1) / kChunk;
  ThreadPool& p = pool != nullptr ? *pool : ThreadPool::Global();
  p.ParallelFor(0, chunks, [&](size_t c) {
    const size_t begin = c * kChunk;
    StabilizeSweepRange(ids.data(), addrs.data(),
                        legacy.nodes_by_rank.data(), n, successor_list_size,
                        begin, std::min(begin + kChunk, n));
  });
}

}  // namespace ringdde
