// Data-mining demo: discovering cluster structure and hot ranges in the
// network's data from one density estimate.
//
// Scenario: peers store product prices that cluster around three pricing
// tiers. An analytics peer estimates the global density once, then mines
// it locally: how many tiers are there, where, with what share of the
// catalog — and which narrow price windows are hottest (say, for cache
// placement). No further network traffic after the estimate.
#include <cstdio>

#include "apps/density_mining.h"
#include "core/density_estimator.h"
#include "data/dataset.h"
#include "data/distribution.h"
#include "ring/chord_ring.h"
#include "sim/network.h"

using namespace ringdde;

int main() {
  Network network;
  ChordRing ring(&network);
  if (!ring.CreateNetwork(1024).ok()) return 1;

  // Three pricing tiers: budget, mid-range, premium.
  GaussianMixtureDistribution workload(
      {{0.5, 0.15, 0.04}, {0.3, 0.5, 0.06}, {0.2, 0.85, 0.03}}, "Tiers");
  Rng rng(17);
  ring.InsertDatasetBulk(GenerateDataset(workload, 150000, rng).keys);

  DdeOptions options;
  options.num_probes = 384;
  DistributionFreeEstimator estimator(&ring, options);
  auto estimate = estimator.Estimate(*ring.RandomAliveNode(rng));
  if (!estimate.ok()) return 1;
  std::printf("estimated from %zu peers, %llu messages\n\n",
              estimate->peers_probed,
              (unsigned long long)estimate->cost.messages);

  // Cluster discovery.
  auto modes = DetectModes(*estimate);
  if (!modes.ok()) return 1;
  std::printf("discovered %zu pricing tiers (truth: 3 at 0.15/0.50/0.85 "
              "with shares 0.5/0.3/0.2):\n",
              modes->size());
  for (const DensityMode& m : *modes) {
    std::printf("  %s  (~%.0f items)\n", m.ToString().c_str(),
                m.mass * estimate->estimated_total_items);
  }

  // Hot-range mining.
  std::printf("\ntop-4 hottest windows of width 0.05:\n");
  for (const RangeMass& r : HeaviestRanges(estimate->cdf, 0.05, 4)) {
    std::printf("  [%.3f, %.3f]  mass %.3f  (~%.0f items)\n", r.lo, r.hi,
                r.mass, r.mass * estimate->estimated_total_items);
  }
  return 0;
}
