// Churn monitor: keeping a live density estimate in a network that never
// sits still.
//
// Scenario: 512 peers churn with 10-minute mean sessions while the data
// itself shifts (a hotspot migrates across the domain). A monitor peer
// maintains a fresh estimate with incremental refreshes and reports the
// drift it observes — e.g. feeding an auto-partitioner or a dashboard.
#include <cstdio>

#include "core/maintenance.h"
#include "data/dataset.h"
#include "data/distribution.h"
#include "ring/churn.h"
#include "ring/chord_ring.h"
#include "sim/network.h"

using namespace ringdde;

int main() {
  Network network;
  ChordRing ring(&network);
  if (!ring.CreateNetwork(512).ok()) return 1;

  Rng rng(13);
  // Initial data: hotspot on the left.
  TruncatedNormalDistribution initial(0.25, 0.07);
  ring.InsertDatasetBulk(GenerateDataset(initial, 60000, rng).keys);

  // The network churns: exponential sessions, half graceful departures.
  ChurnOptions churn_options;
  churn_options.mean_session_seconds = 600.0;
  churn_options.stabilize_interval_seconds = 30.0;
  ChurnProcess churn(&ring, churn_options);
  churn.Start();

  // The monitor refreshes a quarter of its probe pool every 30 seconds.
  DdeOptions dde_options;
  dde_options.num_probes = 192;
  MaintenanceOptions m_options;
  m_options.refresh_period_seconds = 30.0;
  m_options.incremental = true;
  m_options.incremental_fraction = 0.25;
  EstimateMaintainer monitor(&ring, dde_options, m_options);
  if (!monitor.Start(*ring.RandomAliveNode(rng)).ok()) return 1;

  std::printf("%8s %8s %9s %9s %10s %10s %8s\n", "t(s)", "peers",
              "median", "F(0.5)", "N_est", "churned", "refresh");
  for (int minute = 1; minute <= 20; ++minute) {
    network.events().RunUntil(minute * 60.0);
    // At t=10min the workload shifts: a new hotspot grows on the right.
    if (minute == 10) {
      TruncatedNormalDistribution shifted(0.8, 0.05);
      ring.InsertDatasetBulk(GenerateDataset(shifted, 90000, rng).keys);
      std::printf("-- data shift: 90k new items arrive around 0.8 --\n");
    }
    if (!monitor.current().has_value()) continue;
    const DensityEstimate& e = *monitor.current();
    std::printf("%8d %8zu %9.3f %9.3f %10.0f %10llu %8llu\n", minute * 60,
                ring.AliveCount(), e.Quantile(0.5), e.Cdf(0.5),
                e.estimated_total_items,
                (unsigned long long)(churn.joins() + churn.leaves() +
                                     churn.crashes()),
                (unsigned long long)monitor.refreshes());
  }

  std::printf("\nfinal staleness: %.0fs; failed refreshes: %llu\n",
              monitor.StalenessSeconds(),
              (unsigned long long)monitor.failed_refreshes());
  std::printf("The median drifting from ~0.25 toward ~0.8 after the shift "
              "is the estimate tracking live data through churn.\n");
  return 0;
}
