// Load-balancing demo: analyzing (and fixing) storage imbalance from a
// density estimate.
//
// Scenario: a ring stores Zipf-skewed keys order-preserving, so a few
// peers drown in data. One peer (a) quantifies the imbalance from its
// density estimate alone, and (b) proposes equi-depth partition
// boundaries that would even the load out.
#include <cstdio>

#include "apps/equidepth_partitioner.h"
#include "apps/load_balance.h"
#include "core/density_estimator.h"
#include "data/dataset.h"
#include "data/distribution.h"
#include "ring/chord_ring.h"
#include "ring/ring_stats.h"
#include "sim/network.h"

using namespace ringdde;

int main() {
  Network network;
  ChordRing ring(&network);
  if (!ring.CreateNetwork(1024).ok()) return 1;

  ZipfDistribution workload(1000, 1.0);
  Rng rng(11);
  ring.InsertDatasetBulk(GenerateDataset(workload, 200000, rng).keys);

  // Ground truth (the simulator can peek; a real peer cannot).
  const LoadBalanceReport exact = ExactLoadBalance(ring);
  std::printf("actual load balance   : %s\n", exact.ToString().c_str());

  // The peer's view: estimate density, predict everyone's load.
  DdeOptions options;
  options.num_probes = 256;
  DistributionFreeEstimator estimator(&ring, options);
  auto estimate = estimator.Estimate(*ring.RandomAliveNode(rng));
  if (!estimate.ok()) return 1;
  const LoadBalanceReport predicted = PredictLoadBalance(
      ring, estimate->cdf, estimate->estimated_total_items);
  std::printf("predicted (m=256)     : %s\n", predicted.ToString().c_str());
  std::printf("per-peer prediction err: %.3f of mean load\n\n",
              MeanLoadPredictionError(ring, estimate->cdf,
                                      estimate->estimated_total_items));

  // Partition advisor: 16 equi-depth ranges from the estimated CDF.
  const auto bounds = ProposePartitionBoundaries(estimate->cdf, 16);
  const auto shares = MeasurePartitionShares(ring, bounds);
  const PartitionQuality q = EvaluatePartitionShares(shares);
  std::printf("equi-depth advisor (16 partitions, ideal share 0.0625):\n");
  std::printf("  %s\n", q.ToString().c_str());
  std::printf("  boundaries:");
  for (double b : bounds) std::printf(" %.3f", b);
  std::printf("\n  shares    :");
  for (double s : shares) std::printf(" %.3f", s);
  std::printf("\n\n");

  // Contrast with naive equal-width partitioning.
  std::vector<double> naive;
  for (int i = 1; i < 16; ++i) naive.push_back(i / 16.0);
  const PartitionQuality naive_q =
      EvaluatePartitionShares(MeasurePartitionShares(ring, naive));
  std::printf("equal-width contrast  : %s\n", naive_q.ToString().c_str());
  std::printf("=> advisor imbalance %.2fx vs naive %.2fx\n", q.imbalance,
              naive_q.imbalance);
  return 0;
}
