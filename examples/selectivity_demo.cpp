// Selectivity demo: a P2P query optimizer estimating range-predicate
// selectivities from one density estimate.
//
// Scenario: a 2048-peer ring stores 200k order timestamps (normalized to
// [0,1)) that pile up around two daily rush hours. A peer planning a
// distributed range query wants to know how many items a predicate covers
// BEFORE shipping it, to choose between scanning and index dives.
#include <cstdio>

#include "apps/selectivity.h"
#include "core/density_estimator.h"
#include "data/dataset.h"
#include "data/distribution.h"
#include "ring/chord_ring.h"
#include "sim/network.h"

using namespace ringdde;

int main() {
  Network network;
  ChordRing ring(&network);
  if (!ring.CreateNetwork(2048).ok()) return 1;

  // "Order timestamps": two rush-hour modes plus a uniform trickle.
  GaussianMixtureDistribution workload(
      {{0.45, 0.35, 0.04}, {0.35, 0.72, 0.05}, {0.20, 0.5, 0.28}},
      "RushHours");
  Rng rng(7);
  ring.InsertDatasetBulk(GenerateDataset(workload, 200000, rng).keys);

  // Estimate once...
  DdeOptions options;
  options.num_probes = 256;
  DistributionFreeEstimator estimator(&ring, options);
  auto estimate = estimator.Estimate(*ring.RandomAliveNode(rng));
  if (!estimate.ok()) return 1;
  std::printf("estimation cost: %llu messages, %zu peers probed\n\n",
              (unsigned long long)estimate->cost.messages,
              estimate->peers_probed);

  // ...then answer any number of selectivity questions for free.
  SelectivityEstimator sel(&estimate->cdf);
  std::printf("%-22s %10s %10s %10s\n", "predicate", "est_rows", "true_rows",
              "rel_err");
  const double total = estimate->estimated_total_items;
  struct Query {
    const char* label;
    double lo, hi;
  };
  for (const Query& q : {Query{"morning rush [.30,.40]", 0.30, 0.40},
                         Query{"evening rush [.68,.78]", 0.68, 0.78},
                         Query{"midday lull  [.45,.55]", 0.45, 0.55},
                         Query{"night        [.90,1.0]", 0.90, 1.00},
                         Query{"first half   [0,.50]", 0.00, 0.50},
                         Query{"narrow spike [.35,.36]", 0.35, 0.36}}) {
    const double est = sel.EstimateCount(q.lo, q.hi, total);
    const double exact =
        ExactSelectivity(ring, q.lo, q.hi) * (double)ring.TotalItems();
    const double rel =
        exact > 0 ? std::abs(est - exact) / exact : std::abs(est);
    std::printf("%-22s %10.0f %10.0f %9.1f%%\n", q.label, est, exact,
                rel * 100.0);
  }

  // Aggregate quality over a synthetic query log.
  Rng wrng(99);
  const auto queries = GenerateRangeQueries(1000, 0.08, wrng);
  const SelectivityEvalResult r =
      EvaluateSelectivity(estimate->cdf, ring, queries);
  std::printf("\n1000-query workload: mean |err| = %.4f, p95 = %.4f\n",
              r.mean_abs_error, r.p95_abs_error);
  return 0;
}
