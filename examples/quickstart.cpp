// Quickstart: build a ring, load data, estimate the global density from a
// single peer, and inspect the result.
//
//   $ ./build/examples/quickstart
//
// Walks through the whole public API surface in ~60 lines.
#include <cstdio>

#include "core/density_estimator.h"
#include "core/inversion_sampler.h"
#include "data/dataset.h"
#include "data/distribution.h"
#include "ring/chord_ring.h"
#include "sim/network.h"
#include "stats/metrics.h"

using namespace ringdde;

int main() {
  // 1. A simulated deployment: network fabric + 1024-peer Chord ring.
  Network network;
  ChordRing ring(&network);
  if (Status s = ring.CreateNetwork(1024); !s.ok()) {
    std::fprintf(stderr, "create: %s\n", s.ToString().c_str());
    return 1;
  }

  // 2. A workload the peers store: 100k keys from a bimodal mixture,
  //    placed order-preserving so the ring order equals the key order.
  GaussianMixtureDistribution truth(
      {{0.6, 0.3, 0.06}, {0.4, 0.75, 0.05}}, "Bimodal");
  Rng rng(2024);
  ring.InsertDatasetBulk(GenerateDataset(truth, 100000, rng).keys);

  // 3. One peer estimates the GLOBAL data density by probing 256 random
  //    ring positions (~6% of peers) — no flooding, no global knowledge.
  DdeOptions options;
  options.num_probes = 256;
  DistributionFreeEstimator estimator(&ring, options);
  Result<NodeAddr> querier = ring.RandomAliveNode(rng);
  Result<DensityEstimate> estimate = estimator.Estimate(*querier);
  if (!estimate.ok()) {
    std::fprintf(stderr, "estimate: %s\n",
                 estimate.status().ToString().c_str());
    return 1;
  }

  // 4. What did it cost, and how good is it?
  std::printf("peers probed : %zu of %zu\n", estimate->peers_probed,
              ring.AliveCount());
  std::printf("messages     : %llu (%.1f KiB)\n",
              (unsigned long long)estimate->cost.messages,
              estimate->cost.bytes / 1024.0);
  std::printf("items (est)  : %.0f (true %llu)\n",
              estimate->estimated_total_items,
              (unsigned long long)ring.TotalItems());
  const AccuracyReport acc = CompareCdfToTruth(estimate->cdf, truth);
  std::printf("KS error     : %.4f\n", acc.ks);

  // 5. Use it: evaluate the CDF/quantiles locally, and draw samples from
  //    the estimated distribution via the inversion method.
  std::printf("F(0.5)       : %.3f (true %.3f)\n", estimate->Cdf(0.5),
              truth.Cdf(0.5));
  std::printf("median (est) : %.3f (true %.3f)\n", estimate->Quantile(0.5),
              truth.Quantile(0.5));
  InversionSampler sampler(&estimate->cdf);
  std::printf("5 inversion samples:");
  for (double x : sampler.SampleMany(5, rng)) std::printf(" %.3f", x);
  std::printf("\n");

  // 6. A coarse terminal plot of estimated vs true density.
  std::printf("\n     estimated density (#) vs truth (.)\n");
  for (int row = 8; row >= 1; --row) {
    std::printf("%4.1f ", row * 0.5);
    for (int col = 0; col < 60; ++col) {
      const double x = (col + 0.5) / 60.0;
      const bool est_here = estimate->Pdf(x) >= row * 0.5;
      const bool true_here = truth.Pdf(x) >= row * 0.5;
      std::printf("%c", est_here ? '#' : (true_here ? '.' : ' '));
    }
    std::printf("\n");
  }
  std::printf("     0.0%56s1.0\n", "");
  return 0;
}
