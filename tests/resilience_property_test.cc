// Parameterized resilience sweeps: the estimator's invariants must hold
// across the (churn x loss x replication) adversity grid.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "core/density_estimator.h"
#include "data/dataset.h"
#include "data/distribution.h"
#include "ring/churn.h"
#include "ring/replication.h"
#include "stats/metrics.h"

namespace ringdde {
namespace {

// (mean session seconds [0 = static], loss probability, replication factor
// [0 = oracle durability]).
using ResilienceParam = std::tuple<double, double, uint32_t>;

class ResilienceTest : public ::testing::TestWithParam<ResilienceParam> {
 protected:
  void SetUp() override {
    const auto& [session, loss, factor] = GetParam();
    NetworkOptions nopts;
    nopts.loss_probability = loss;
    nopts.seed = 99;
    net_ = std::make_unique<Network>(nopts);
    RingOptions ropts;
    ropts.durable_data = factor == 0;
    ring_ = std::make_unique<ChordRing>(net_.get(), ropts);
    ASSERT_TRUE(ring_->CreateNetwork(512).ok());
    dist_ = std::make_unique<TruncatedNormalDistribution>(0.5, 0.15);
    Rng rng(3);
    ring_->InsertDatasetBulk(GenerateDataset(*dist_, 50000, rng).keys);

    if (factor > 0) {
      ReplicationOptions opts;
      opts.replication_factor = factor;
      repl_ = std::make_unique<ReplicationManager>(ring_.get(), opts);
      repl_->Start();
    }
    if (session > 0.0) {
      ChurnOptions copts;
      copts.mean_session_seconds = session;
      copts.stabilize_interval_seconds = 20.0;
      // Replication rings handle crashes via the manager, so churn uses
      // graceful departures there; oracle-durable rings take crashes too.
      copts.graceful_fraction = factor > 0 ? 1.0 : 0.5;
      churn_ = std::make_unique<ChurnProcess>(ring_.get(), copts);
      churn_->Start();
      net_->events().RunUntil(240.0);
    }
  }

  std::unique_ptr<Network> net_;
  std::unique_ptr<ChordRing> ring_;
  std::unique_ptr<Distribution> dist_;
  std::unique_ptr<ReplicationManager> repl_;
  std::unique_ptr<ChurnProcess> churn_;
};

TEST_P(ResilienceTest, DataIsConserved) {
  EXPECT_EQ(ring_->TotalItems(), 50000u);
}

TEST_P(ResilienceTest, EstimationSucceedsAndIsSane) {
  DdeOptions opts;
  opts.num_probes = 192;
  opts.seed = 11;
  DistributionFreeEstimator est(ring_.get(), opts);
  Rng rng(13);
  auto e = est.Estimate(*ring_->RandomAliveNode(rng));
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  EXPECT_TRUE(e->cdf.IsNormalized());
  EXPECT_LT(CompareCdfToTruth(e->cdf, *dist_).ks, 0.12);
  EXPECT_NEAR(e->estimated_total_items, 50000.0, 12000.0);
}

TEST_P(ResilienceTest, LossOnlyInflatesCostNeverBreaksAccuracy) {
  const auto& [session, loss, factor] = GetParam();
  DdeOptions opts;
  opts.num_probes = 128;
  opts.seed = 17;
  DistributionFreeEstimator est(ring_.get(), opts);
  Rng rng(19);
  auto e = est.Estimate(*ring_->RandomAliveNode(rng));
  ASSERT_TRUE(e.ok());
  if (loss > 0.0) {
    EXPECT_GT(net_->lost_messages(), 0u);
  } else {
    EXPECT_EQ(net_->lost_messages(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ResilienceTest,
    ::testing::Values(ResilienceParam{0.0, 0.0, 0},
                      ResilienceParam{0.0, 0.2, 0},
                      ResilienceParam{600.0, 0.0, 0},
                      ResilienceParam{600.0, 0.1, 0},
                      ResilienceParam{0.0, 0.0, 2},
                      ResilienceParam{600.0, 0.1, 2}),
    [](const ::testing::TestParamInfo<ResilienceParam>& info) {
      const double session = std::get<0>(info.param);
      const double loss = std::get<1>(info.param);
      const uint32_t factor = std::get<2>(info.param);
      std::string name = session > 0 ? "churn" : "static";
      name += loss > 0 ? "_lossy" : "_clean";
      name += factor > 0 ? "_repl" : "_oracle";
      return name;
    });

}  // namespace
}  // namespace ringdde
