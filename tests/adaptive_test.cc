#include <gtest/gtest.h>

#include <memory>

#include "core/density_estimator.h"
#include "data/dataset.h"
#include "data/distribution.h"
#include "stats/metrics.h"

namespace ringdde {
namespace {

class AdaptiveTest : public ::testing::Test {
 protected:
  void Build(const Distribution& dist, size_t n = 2048,
             size_t items = 100000) {
    net_ = std::make_unique<Network>();
    ring_ = std::make_unique<ChordRing>(net_.get());
    ASSERT_TRUE(ring_->CreateNetwork(n).ok());
    Rng rng(1);
    ring_->InsertDatasetBulk(GenerateDataset(dist, items, rng).keys);
  }

  std::unique_ptr<Network> net_;
  std::unique_ptr<ChordRing> ring_;
};

TEST_F(AdaptiveTest, ConvergesWithoutBudgetTuning) {
  TruncatedNormalDistribution dist(0.5, 0.15);
  Build(dist);
  DistributionFreeEstimator est(ring_.get(), DdeOptions{});
  AdaptiveOptions opts;
  auto e = est.EstimateAdaptive(ring_->AliveAddrs()[0], opts);
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  EXPECT_LT(CompareCdfToTruth(e->cdf, dist).ks, 0.05);
  EXPECT_GT(e->peers_probed, 0u);
}

TEST_F(AdaptiveTest, SpendsMoreOnHarderDistributions) {
  // Heavy skew needs more batches to stabilize than uniform data.
  uint64_t msgs_uniform = 0, msgs_zipf = 0;
  {
    UniformDistribution dist;
    Build(dist);
    DistributionFreeEstimator est(ring_.get(), DdeOptions{});
    auto e = est.EstimateAdaptive(ring_->AliveAddrs()[0], AdaptiveOptions{});
    ASSERT_TRUE(e.ok());
    msgs_uniform = e->cost.messages;
  }
  {
    ZipfDistribution dist(1000, 1.1);
    Build(dist);
    DistributionFreeEstimator est(ring_.get(), DdeOptions{});
    auto e = est.EstimateAdaptive(ring_->AliveAddrs()[0], AdaptiveOptions{});
    ASSERT_TRUE(e.ok());
    msgs_zipf = e->cost.messages;
    EXPECT_LT(CompareCdfToTruth(e->cdf, dist).ks, 0.08);
  }
  EXPECT_GT(msgs_zipf, msgs_uniform);
}

TEST_F(AdaptiveTest, RespectsMaxProbesCeiling) {
  ZipfDistribution dist(1000, 1.2);
  Build(dist);
  DistributionFreeEstimator est(ring_.get(), DdeOptions{});
  AdaptiveOptions opts;
  opts.batch_size = 32;
  opts.max_probes = 64;
  opts.tolerance = 1e-9;  // never satisfied: ceiling must kick in
  auto e = est.EstimateAdaptive(ring_->AliveAddrs()[0], opts);
  ASSERT_TRUE(e.ok());
  EXPECT_LE(e->peers_probed, 64u * 2u);
}

TEST_F(AdaptiveTest, TighterToleranceBuysAccuracy) {
  ZipfDistribution dist(1000, 0.9);
  Build(dist);
  double ks_loose = 0.0, ks_tight = 0.0;
  for (double tol : {0.05, 0.005}) {
    DdeOptions dopts;
    dopts.seed = 77;
    DistributionFreeEstimator est(ring_.get(), dopts);
    AdaptiveOptions opts;
    opts.tolerance = tol;
    auto e = est.EstimateAdaptive(ring_->AliveAddrs()[0], opts);
    ASSERT_TRUE(e.ok());
    (tol == 0.05 ? ks_loose : ks_tight) =
        CompareCdfToTruth(e->cdf, dist).ks;
  }
  EXPECT_LT(ks_tight, ks_loose);
}

TEST_F(AdaptiveTest, DeadQuerierRejected) {
  UniformDistribution dist;
  Build(dist, 64, 1000);
  const NodeAddr victim = ring_->AliveAddrs()[0];
  ASSERT_TRUE(ring_->Crash(victim).ok());
  DistributionFreeEstimator est(ring_.get(), DdeOptions{});
  EXPECT_TRUE(est.EstimateAdaptive(victim, AdaptiveOptions{})
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace ringdde
