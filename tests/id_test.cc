#include "common/id.h"

#include <gtest/gtest.h>

#include <cstdint>

namespace ringdde {
namespace {

TEST(RingIdTest, ToUnitEndpoints) {
  EXPECT_DOUBLE_EQ(RingId(0).ToUnit(), 0.0);
  EXPECT_LT(RingId(UINT64_MAX).ToUnit(), 1.0);
  EXPECT_GT(RingId(UINT64_MAX).ToUnit(), 0.999999);
}

TEST(RingIdTest, FromUnitRoundTrip) {
  for (double u : {0.0, 0.25, 0.5, 0.75, 0.999}) {
    EXPECT_NEAR(RingId::FromUnit(u).ToUnit(), u, 1e-12);
  }
}

TEST(RingIdTest, FromUnitWrapsNegativeAndOverflow) {
  EXPECT_NEAR(RingId::FromUnit(-0.25).ToUnit(), 0.75, 1e-12);
  EXPECT_NEAR(RingId::FromUnit(1.25).ToUnit(), 0.25, 1e-12);
  EXPECT_EQ(RingId::FromUnit(1.0).value, 0u);  // 1.0 wraps to 0
}

TEST(RingIdTest, FromUnitMonotoneWithinUnit) {
  double prev = -1.0;
  for (int i = 0; i < 1000; ++i) {
    const double u = i / 1000.0;
    const double v = RingId::FromUnit(u).ToUnit();
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(RingIdTest, WrappingArithmetic) {
  RingId max_id(UINT64_MAX);
  EXPECT_EQ((max_id + 1).value, 0u);
  EXPECT_EQ((RingId(0) - 1).value, UINT64_MAX);
}

TEST(RingIdTest, ToStringHexPadded) {
  EXPECT_EQ(RingId(0).ToString(), "0000000000000000");
  EXPECT_EQ(RingId(0xABCD).ToString(), "000000000000abcd");
}

TEST(ClockwiseDistanceTest, BasicAndWrap) {
  EXPECT_EQ(ClockwiseDistance(RingId(10), RingId(15)), 5u);
  EXPECT_EQ(ClockwiseDistance(RingId(15), RingId(10)), UINT64_MAX - 4);
  EXPECT_EQ(ClockwiseDistance(RingId(7), RingId(7)), 0u);
}

TEST(ArcTest, OpenClosedMembership) {
  const RingId a(100), b(200);
  EXPECT_FALSE(InArcOpenClosed(RingId(100), a, b));  // lower end exclusive
  EXPECT_TRUE(InArcOpenClosed(RingId(101), a, b));
  EXPECT_TRUE(InArcOpenClosed(RingId(200), a, b));  // upper end inclusive
  EXPECT_FALSE(InArcOpenClosed(RingId(201), a, b));
  EXPECT_FALSE(InArcOpenClosed(RingId(50), a, b));
}

TEST(ArcTest, OpenClosedWrapsAroundZero) {
  const RingId a(UINT64_MAX - 5), b(5);
  EXPECT_TRUE(InArcOpenClosed(RingId(UINT64_MAX), a, b));
  EXPECT_TRUE(InArcOpenClosed(RingId(0), a, b));
  EXPECT_TRUE(InArcOpenClosed(RingId(5), a, b));
  EXPECT_FALSE(InArcOpenClosed(RingId(6), a, b));
  EXPECT_FALSE(InArcOpenClosed(RingId(UINT64_MAX - 5), a, b));
}

TEST(ArcTest, DegenerateArcIsFullRing) {
  const RingId a(42);
  EXPECT_TRUE(InArcOpenClosed(RingId(0), a, a));
  EXPECT_TRUE(InArcOpenClosed(a, a, a));
  EXPECT_TRUE(InArcClosedOpen(RingId(99), a, a));
}

TEST(ArcTest, ClosedOpenMembership) {
  const RingId a(100), b(200);
  EXPECT_TRUE(InArcClosedOpen(RingId(100), a, b));
  EXPECT_FALSE(InArcClosedOpen(RingId(200), a, b));
  EXPECT_TRUE(InArcClosedOpen(RingId(150), a, b));
}

TEST(ArcTest, OpenOpenMembership) {
  const RingId a(100), b(200);
  EXPECT_FALSE(InArcOpenOpen(RingId(100), a, b));
  EXPECT_FALSE(InArcOpenOpen(RingId(200), a, b));
  EXPECT_TRUE(InArcOpenOpen(RingId(150), a, b));
  // Degenerate: full ring minus the point itself.
  EXPECT_TRUE(InArcOpenOpen(RingId(5), a, a));
  EXPECT_FALSE(InArcOpenOpen(a, a, a));
}

TEST(ArcFractionTest, Fractions) {
  EXPECT_DOUBLE_EQ(ArcFraction(RingId(0), RingId(0)), 1.0);
  const RingId half = RingId::FromUnit(0.5);
  EXPECT_NEAR(ArcFraction(RingId(0), half), 0.5, 1e-12);
  EXPECT_NEAR(ArcFraction(half, RingId(0)), 0.5, 1e-12);  // wrap
}

TEST(ArcFractionTest, QuarterWrap) {
  const RingId a = RingId::FromUnit(0.9);
  const RingId b = RingId::FromUnit(0.1);
  EXPECT_NEAR(ArcFraction(a, b), 0.2, 1e-9);
}

TEST(HashToRingTest, DeterministicAndSpread) {
  EXPECT_EQ(HashToRing(1).value, HashToRing(1).value);
  EXPECT_NE(HashToRing(1).value, HashToRing(2).value);
  // Adjacent inputs land far apart (avalanche).
  const uint64_t d = ClockwiseDistance(HashToRing(1), HashToRing(2));
  EXPECT_GT(d, uint64_t{1} << 32);
}

}  // namespace
}  // namespace ringdde
