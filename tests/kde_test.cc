#include "stats/kde.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "data/distribution.h"

namespace ringdde {
namespace {

TEST(KdeTest, BuildRejectsEmpty) {
  EXPECT_FALSE(KernelDensityEstimator::Build({}).ok());
}

TEST(KdeTest, AutoBandwidthIsPositive) {
  auto kde = KernelDensityEstimator::Build({0.1, 0.5, 0.9});
  ASSERT_TRUE(kde.ok());
  EXPECT_GT(kde->bandwidth(), 0.0);
}

TEST(KdeTest, ExplicitBandwidthRespected) {
  auto kde = KernelDensityEstimator::Build({0.5}, KernelType::kGaussian, 0.2);
  ASSERT_TRUE(kde.ok());
  EXPECT_DOUBLE_EQ(kde->bandwidth(), 0.2);
}

TEST(KdeTest, SingleSampleGaussianPeaksAtSample) {
  auto kde = KernelDensityEstimator::Build({0.5}, KernelType::kGaussian, 0.1);
  ASSERT_TRUE(kde.ok());
  EXPECT_GT(kde->Pdf(0.5), kde->Pdf(0.4));
  EXPECT_GT(kde->Pdf(0.5), kde->Pdf(0.6));
  EXPECT_NEAR(kde->Cdf(0.5), 0.5, 1e-9);
}

TEST(KdeTest, PdfIntegratesToOneGaussian) {
  Rng rng(1);
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) xs.push_back(0.3 + 0.1 * rng.Normal());
  auto kde = KernelDensityEstimator::Build(xs, KernelType::kGaussian);
  ASSERT_TRUE(kde.ok());
  double integral = 0.0;
  const int grid = 4000;
  for (int i = 0; i < grid; ++i) {
    integral += kde->Pdf(-1.0 + 3.0 * (i + 0.5) / grid) * 3.0 / grid;
  }
  EXPECT_NEAR(integral, 1.0, 0.01);
}

TEST(KdeTest, PdfIntegratesToOneEpanechnikov) {
  Rng rng(2);
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) xs.push_back(rng.UniformDouble());
  auto kde = KernelDensityEstimator::Build(xs, KernelType::kEpanechnikov);
  ASSERT_TRUE(kde.ok());
  double integral = 0.0;
  const int grid = 4000;
  for (int i = 0; i < grid; ++i) {
    integral += kde->Pdf(-0.5 + 2.0 * (i + 0.5) / grid) * 2.0 / grid;
  }
  EXPECT_NEAR(integral, 1.0, 0.01);
}

TEST(KdeTest, CdfMonotoneZeroToOne) {
  Rng rng(3);
  std::vector<double> xs;
  for (int i = 0; i < 300; ++i) xs.push_back(rng.UniformDouble());
  for (KernelType k : {KernelType::kGaussian, KernelType::kEpanechnikov}) {
    auto kde = KernelDensityEstimator::Build(xs, k);
    ASSERT_TRUE(kde.ok());
    double prev = -1.0;
    for (int i = -10; i <= 110; ++i) {
      const double f = kde->Cdf(i / 100.0);
      EXPECT_GE(f, prev - 1e-12);
      prev = f;
    }
    EXPECT_NEAR(kde->Cdf(-0.5), 0.0, 1e-6);
    EXPECT_NEAR(kde->Cdf(1.5), 1.0, 1e-6);
  }
}

TEST(KdeTest, EpanechnikovCompactSupport) {
  auto kde =
      KernelDensityEstimator::Build({0.5}, KernelType::kEpanechnikov, 0.1);
  ASSERT_TRUE(kde.ok());
  EXPECT_DOUBLE_EQ(kde->Pdf(0.39), 0.0);
  EXPECT_DOUBLE_EQ(kde->Pdf(0.61), 0.0);
  EXPECT_GT(kde->Pdf(0.45), 0.0);
}

TEST(KdeTest, RecoversBimodalShape) {
  GaussianMixtureDistribution truth({{0.5, 0.3, 0.04}, {0.5, 0.7, 0.04}});
  Rng rng(4);
  std::vector<double> xs;
  for (int i = 0; i < 4000; ++i) xs.push_back(truth.Sample(rng));
  auto kde = KernelDensityEstimator::Build(xs);
  ASSERT_TRUE(kde.ok());
  EXPECT_GT(kde->Pdf(0.3), kde->Pdf(0.5) * 1.5);
  EXPECT_GT(kde->Pdf(0.7), kde->Pdf(0.5) * 1.5);
}

TEST(KdeTest, SilvermanShrinksWithSampleSize) {
  Rng rng(5);
  std::vector<double> small, large;
  for (int i = 0; i < 100; ++i) small.push_back(rng.UniformDouble());
  large = small;
  for (int i = 0; i < 9900; ++i) large.push_back(rng.UniformDouble());
  EXPECT_GT(KernelDensityEstimator::SilvermanBandwidth(small),
            KernelDensityEstimator::SilvermanBandwidth(large));
}

TEST(KdeTest, DegenerateSampleStillValid) {
  auto kde = KernelDensityEstimator::Build({0.5, 0.5, 0.5});
  ASSERT_TRUE(kde.ok());
  EXPECT_GT(kde->bandwidth(), 0.0);
  EXPECT_TRUE(std::isfinite(kde->Pdf(0.5)));
}

}  // namespace
}  // namespace ringdde
